#!/usr/bin/env bash
# End-to-end smoke test of the gbserve daemon, exercising the full
# client-visible contract against a real process:
#
#   1. boot, /healthz and /readyz
#   2. the Figure 4 sweep over HTTP is byte-identical to gbbench stdout
#   3. a run job reports the guest's exit code
#   4. per-tenant admission control sheds with 429 + Retry-After and a
#      structured error body
#   5. /metrics exposes fleet, tenant-ledger and simulator counters,
#      latency histograms are populated, and the whole exposition
#      parses under the Prometheus text-format grammar
#   6. /v1/jobs/{id}/trace replays the job's span tree and every
#      response carries an X-Request-Id
#   7. SIGTERM drains gracefully: the process exits 0, logs the drain,
#      and the -spans timeline ends with the drain span
#
# Usage: scripts/serve_smoke.sh [logdir]
# The server log and every intermediate artifact land in logdir
# (default: a temp dir), so CI can upload them on failure.
set -euo pipefail

cd "$(dirname "$0")/.."
logdir=${1:-$(mktemp -d)}
mkdir -p "$logdir"
log="$logdir/gbserve.log"

bin=$(mktemp -d)
srvpid=""
cleanup() {
	if [ -n "$srvpid" ] && kill -0 "$srvpid" 2>/dev/null; then
		kill -9 "$srvpid" 2>/dev/null || true
	fi
	rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/gbserve" ./cmd/gbserve
go build -o "$bin/gbbench" ./cmd/gbbench

# Port 0 lets the kernel pick a free port; the startup log tells us
# which. Tenant "capped" has an in-flight cap of 1 so one slow job is
# enough to trigger load shedding deterministically.
"$bin/gbserve" -addr 127.0.0.1:0 -workers 2 -job-parallelism 2 \
	-tenant smoke=4:0:0 -tenant capped=1:0:0 \
	-spans "$logdir/spans.jsonl" 2>"$log" &
srvpid=$!

port=""
for _ in $(seq 1 100); do
	port=$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "$log" | head -1)
	[ -n "$port" ] && break
	kill -0 "$srvpid" 2>/dev/null || { echo "gbserve died at startup:"; cat "$log"; exit 1; }
	sleep 0.1
done
[ -n "$port" ] || { echo "gbserve never reported its port"; cat "$log"; exit 1; }
base="http://127.0.0.1:$port"

curl -fsS "$base/healthz" | grep -q '^ok$'
curl -fsS "$base/readyz" | grep -q '^ready$'
echo "ok: serving on $base"

# --- 2. fig4 over HTTP, byte-identical to the CLI ---------------------
"$bin/gbbench" -exp fig4 -n 8 >"$logdir/fig4.local.txt"
curl -fsS -X POST "$base/v1/jobs?wait=1" -H 'Content-Type: application/json' \
	-d '{"tenant":"smoke","kind":"fig4","n":8}' >"$logdir/fig4.job.json"
grep -q '"state": "done"' "$logdir/fig4.job.json"
id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$logdir/fig4.job.json" | head -1)
curl -fsS "$base/v1/jobs/$id/output" >"$logdir/fig4.http.txt"
diff "$logdir/fig4.local.txt" "$logdir/fig4.http.txt"
echo "ok: fig4 over HTTP is byte-identical to gbbench stdout"

# --- 3. run job carries the guest exit code ---------------------------
curl -fsS -X POST "$base/v1/jobs?wait=1" -H 'Content-Type: application/json' \
	-d '{"tenant":"smoke","kind":"run","program":"main:\n\tli a0, 42\n\tecall\n"}' \
	>"$logdir/run.job.json"
grep -q '"state": "done"' "$logdir/run.job.json"
grep -q '"exit_code": 42' "$logdir/run.job.json"
echo "ok: run job finished with the guest's exit code"

# --- 4. admission control sheds with 429 + Retry-After ----------------
slow='{"tenant":"capped","kind":"run","program":"main:\n\tli s1, 0\n\tli t0, 100000000\nloop:\n\taddi s1, s1, 1\n\tblt s1, t0, loop\n\tli a0, 0\n\tecall\n"}'
code=$(curl -s -o "$logdir/slow.job.json" -w '%{http_code}' \
	-X POST "$base/v1/jobs" -H 'Content-Type: application/json' -d "$slow")
test "$code" = 202 || { echo "slow job not admitted: $code"; cat "$logdir/slow.job.json"; exit 1; }
slowid=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$logdir/slow.job.json" | head -1)
curl -s -D "$logdir/shed.headers" -o "$logdir/shed.json" \
	-X POST "$base/v1/jobs" -H 'Content-Type: application/json' -d "$slow"
grep -q '429' "$logdir/shed.headers"
grep -qi '^Retry-After:' "$logdir/shed.headers"
grep -q 'too_many_jobs' "$logdir/shed.json"
curl -fsS -X DELETE "$base/v1/jobs/$slowid" >/dev/null
echo "ok: in-flight cap shed with 429 + Retry-After (too_many_jobs)"

# --- 5. metrics expose fleet, ledger and simulator counters -----------
curl -fsS "$base/metrics" >"$logdir/metrics.txt"
for want in \
	'gbserve_jobs_submitted_total' \
	'gbserve_jobs_completed_total{state="done"}' \
	'gbserve_tenant_in_flight{tenant="smoke"}' \
	'gbserve_tenant_rejects_total{tenant="capped"}' \
	'gb_sim_cycles'; do
	grep -q "$want" "$logdir/metrics.txt" || { echo "metrics missing $want"; cat "$logdir/metrics.txt"; exit 1; }
done
grep -q 'gbserve_queue_wait_seconds_bucket{tenant="smoke"' "$logdir/metrics.txt" || {
	echo "queue-wait histogram not populated"; cat "$logdir/metrics.txt"; exit 1; }
grep -q 'gbserve_job_wall_seconds_bucket{tenant="smoke"' "$logdir/metrics.txt" || {
	echo "job-wall histogram not populated"; cat "$logdir/metrics.txt"; exit 1; }
# Full text-format grammar pass: every sample must belong to a family
# announced by # HELP + # TYPE, names must match the Prometheus
# grammar, and histogram buckets must be cumulative with le="+Inf"
# equal to _count.
python3 - "$logdir/metrics.txt" <<'EOF'
import re, sys
name_re = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*$')
families, cur = {}, None
for ln in open(sys.argv[1]):
    ln = ln.rstrip("\n")
    assert ln, "blank line in exposition"
    if ln.startswith("# HELP "):
        cur = ln.split(" ", 3)[2]
        assert name_re.match(cur), cur
        assert cur not in families, f"duplicate family {cur}"
        families[cur] = {"type": None, "buckets": {}}
        continue
    if ln.startswith("# TYPE "):
        _, _, n, t = ln.split(" ", 3)
        assert n == cur and t in ("counter", "gauge", "histogram"), ln
        families[cur]["type"] = t
        continue
    assert not ln.startswith("#"), ln
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', ln)
    assert m, f"unparseable sample: {ln}"
    base = m.group(1)
    for suf in ("_bucket", "_sum", "_count"):
        if base.endswith(suf) and base[: -len(suf)] in families:
            base = base[: -len(suf)]
            break
    assert base == cur, f"sample {m.group(1)} outside its family block (cur={cur})"
    fam = families[cur]
    if fam["type"] == "histogram" and m.group(1).endswith("_bucket"):
        le = re.search(r'le="([^"]*)"', m.group(2))
        series = re.sub(r'le="[^"]*",?', "", m.group(2))
        fam["buckets"].setdefault(series, []).append(float(m.group(3)))
for n, fam in families.items():
    assert fam["type"], f"{n}: # HELP without # TYPE"
    for series, counts in fam["buckets"].items():
        assert counts == sorted(counts), f"{n}{series}: buckets not cumulative"
names = sorted(families)
assert names == list(families), "families not sorted"
hists = [n for n, f in families.items() if f["type"] == "histogram"]
assert "gbserve_queue_wait_seconds" in hists, hists
print(f"ok: {len(families)} families, {len(hists)} histograms, grammar clean")
EOF
echo "ok: metrics carry fleet, tenant-ledger and simulator counters; exposition grammar clean"

# --- 6. per-job trace replay + request-id correlation -----------------
runid=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$logdir/run.job.json" | head -1)
curl -fsS -D "$logdir/trace.headers" "$base/v1/jobs/$runid/trace" >"$logdir/trace.jsonl"
grep -qi '^X-Request-Id:' "$logdir/trace.headers"
grep -qi "^X-Job-Id: $runid" "$logdir/trace.headers"
head -1 "$logdir/trace.jsonl" | grep -q 'ghostbusters/span/v1'
grep -q '"name":"job"' "$logdir/trace.jsonl"
grep -q '"name":"queue-wait"' "$logdir/trace.jsonl"
grep -q '"name":"attempt"' "$logdir/trace.jsonl"
grep -q "rid=" "$log"
echo "ok: trace endpoint replays the span tree; responses carry X-Request-Id"

# --- 7. graceful SIGTERM drain ----------------------------------------
kill -TERM "$srvpid"
rc=0
wait "$srvpid" || rc=$?
srvpid=""
test "$rc" -eq 0 || { echo "drain exited $rc:"; cat "$log"; exit 1; }
grep -q 'draining' "$log"
grep -q 'bye' "$log"
head -1 "$logdir/spans.jsonl" | grep -q 'ghostbusters/span/v1'
tail -1 "$logdir/spans.jsonl" | grep -q '"name":"drain"'
echo "ok: SIGTERM drained cleanly (exit 0); span timeline ends with the drain span"

echo "serve smoke: all checks passed (logs in $logdir)"
