# Development gate for the GhostBusters reproduction.
#
#   make check   gofmt + vet + race-enabled tests (what CI runs)
#   make test    fast test pass
#   make fuzz    run every native fuzz target for FUZZTIME (default 30s)
#   make bench   host-performance benchmarks, benchstat-compatible output
#   make fig4    print the Figure 4 table (parallel harness)
#   make perf    record the Figure 4 perf JSON (BENCH_fig4.json schema)
#   make trace   capture a Perfetto trace of the Spectre v1 PoC
#   make trace-v4  same for Spectre v4 (MCB rollbacks on the timeline)
#   make audit   run the v1 PoC with the leakage audit layer on
#   make detect-eval  score the online attack-phase detector over the
#                labeled corpus (precision/recall/FPR + scored JSON)
#   make serve-smoke  end-to-end smoke of the gbserve daemon
#   make soak    the multi-tenant chaos soak test under the race detector

GO ?= go
FUZZTIME ?= 30s

.PHONY: build fmt test vet race check fuzz bench bench-quick fig4 perf trace trace-v4 audit detect-eval serve-smoke soak

build:
	$(GO) build ./...

# gofmt -l lists nonconforming files; any output fails the gate.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build fmt vet race

# go test -fuzz accepts one target pattern per package invocation, so
# the targets run sequentially. Interesting inputs found here land in
# the build cache; minimal crashers land in testdata/fuzz/ — commit
# those as regression seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$'       -fuzztime $(FUZZTIME) ./internal/riscv
	$(GO) test -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/riscv
	$(GO) test -run '^$$' -fuzz '^FuzzStep$$'         -fuzztime $(FUZZTIME) ./internal/riscv
	$(GO) test -run '^$$' -fuzz '^FuzzInterpVsVLIW$$' -fuzztime $(FUZZTIME) ./internal/dbt
	$(GO) test -run '^$$' -fuzz '^FuzzWindowClassifier$$' -fuzztime $(FUZZTIME) ./internal/detect

# Full benchmark sweep across every package, with allocation counts.
# The output is benchstat-compatible: run it on two checkouts with
# -count as below and feed both logs to benchstat.
#   make bench BENCHFLAGS='-count 10' > new.txt
bench:
	$(GO) test -bench . -benchmem -run '^$$' $(BENCHFLAGS) ./...

# One quick iteration of the top-level table benchmarks only.
bench-quick:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fig4:
	$(GO) run ./cmd/gbbench -exp fig4

perf:
	$(GO) run ./cmd/gbbench -exp fig4 -perfjson BENCH_fig4.json

# Full-detail trace of the Spectre v1 attack, timed in simulated
# cycles. Open trace_v1.json at https://ui.perfetto.dev to watch the
# transient window: flushes, the speculative load of the secret, and
# the probe loop.
trace:
	$(GO) run ./cmd/gbspectre -variant v1 -traceout trace_v1.json -trace-format perfetto
	@echo "wrote trace_v1.json — open it at https://ui.perfetto.dev"

# Same for the v4 variant: the interesting tracks are the spec-squash /
# recovery instants (the MCB repairing architectural state every round
# while the cache still leaks) and the counter tracks — MCB occupancy
# and the ground-truth leaked-bytes staircase (see EXPERIMENTS.md E1a).
trace-v4:
	$(GO) run ./cmd/gbspectre -variant v4 -traceout trace_v4.json -trace-format perfetto
	@echo "wrote trace_v4.json — open it at https://ui.perfetto.dev"

# Leakage audit of the v1 PoC under the mitigation: the explainability
# table (why each load was pinned, with its provenance chain) plus the
# machine-readable document (schema ghostbusters/audit/v1).
audit:
	$(GO) run ./cmd/gbspectre -variant v1 -mode ghostbusters -audit -audit-json audit_v1.json
	@echo "wrote audit_v1.json"

# Detection accuracy over the labeled corpus: every polybench kernel
# (benign) and both Spectre PoCs under every registered mitigation,
# scored against the scoreboard's ground truth. Prints the
# precision/recall/FPR headline and the per-cell verdict table; the
# scored matrix (schema ghostbusters/detect-eval/v1) lands in
# detect_eval.json. -n 8 shrinks the kernels — the benign corpus only
# needs to span many detector windows, not run at full problem sizes.
detect-eval:
	$(GO) run ./cmd/gbbench -exp detect -n 8 -detect-json detect_eval.json
	@echo "wrote detect_eval.json"

# End-to-end smoke of the simulation service: boots a real gbserve
# process, drives the HTTP API (fig4 byte-identity, quotas, metrics)
# and checks the SIGTERM drain. SMOKELOGS keeps the server log and
# intermediate artifacts (default: a temp dir).
serve-smoke:
	./scripts/serve_smoke.sh $(SMOKELOGS)

# The multi-tenant chaos soak under the race detector: hundreds of
# concurrent jobs across quota-limited tenants with fault injection,
# checking ledger invariants and goroutine hygiene afterwards.
soak:
	$(GO) test -race -run TestSoak -count=1 -v ./internal/serve
