# Development gate for the GhostBusters reproduction.
#
#   make check   vet + race-enabled tests (what CI runs)
#   make test    fast test pass
#   make bench   regenerate the paper's tables' benchmarks
#   make fig4    print the Figure 4 table (parallel harness)

GO ?= go

.PHONY: build test vet race check bench fig4

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fig4:
	$(GO) run ./cmd/gbbench -exp fig4
