module ghostbusters

go 1.22
