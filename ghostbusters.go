// Package ghostbusters is a from-scratch reproduction of "GhostBusters:
// Mitigating Spectre Attacks on a DBT-Based Processor" (Simon Rokicki,
// DATE 2020): a complete DBT-based processor model — RV64IM front end,
// profiling dynamic binary translator with superblock/trace construction
// and memory dependency speculation, and an in-order VLIW core with
// hidden registers, a Memory Conflict Buffer and a timed data cache —
// together with the paper's two Spectre proofs of concept and the
// GhostBusters poison-analysis countermeasure.
//
// The package is a thin facade over the implementation packages:
//
//	internal/riscv     guest ISA: assembler, encoder, interpreter
//	internal/ir        the DBT engine's per-block data-flow graphs
//	internal/core      the GhostBusters mitigation (poison analysis)
//	internal/dbt       translator, scheduler, machine dispatch loop
//	internal/vliw      VLIW target ISA and timed in-order executor
//	internal/cache     set-associative timed data cache (the side channel)
//	internal/attack    Spectre v1/v4 proof-of-concept attacks
//	internal/polybench benchmark kernels + Go reference implementations
//	internal/harness   the paper's experiments (Fig. 4, Section V)
//
// Quick start:
//
//	prog, _ := ghostbusters.Assemble(src)
//	m, _ := ghostbusters.NewMachine(ghostbusters.WithMitigation(
//	        ghostbusters.DefaultConfig(), ghostbusters.ModeGhostBusters))
//	m.Load(prog)
//	res, _ := m.Run()
//	fmt.Println(res.Cycles)
package ghostbusters

import (
	"context"
	"io"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/detect"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/trap"
	"ghostbusters/internal/vliw"
)

// Mode selects the Spectre mitigation applied by the DBT engine.
type Mode = core.Mode

// Mitigation modes (paper Section IV and the baselines of Section V).
const (
	// ModeUnsafe speculates freely: the paper's vulnerable baseline.
	ModeUnsafe = core.ModeUnsafe
	// ModeGhostBusters runs the poison analysis and pins only the risky
	// accesses — the paper's contribution.
	ModeGhostBusters = core.ModeGhostBusters
	// ModeFence disables all speculation across a guard where the
	// Spectre pattern is detected (the paper's fence variant).
	ModeFence = core.ModeFence
	// ModeNoSpeculation turns speculation off entirely (the paper's
	// naive countermeasure).
	ModeNoSpeculation = core.ModeNoSpeculation

	// ModeLoadFence pins every load (the blanket LOADLFENCE strawman,
	// ported into the mitigation-pass pipeline).
	ModeLoadFence = core.ModeLoadFence
	// ModeSFIClamp masks each risky address with an inserted predicate
	// chain (Venkman/Swivel-style SFI); the access keeps speculating
	// with a harmless address.
	ModeSFIClamp = core.ModeSFIClamp
	// ModeFenceMin pins the minimal cut of the poison data-flow graph
	// (Blade-style) instead of every sink.
	ModeFenceMin = core.ModeFenceMin
)

// ParseMode resolves a mitigation mode name: "unsafe", "ghostbusters",
// "fence", "nospec", "loadfence", "sfi-clamp" or "fence-min".
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Config describes a machine instance: mitigation mode, cache geometry,
// VLIW core shape, translation thresholds.
type Config = dbt.Config

// DefaultConfig returns the standard 4-issue machine with a 16 KiB data
// cache and the unsafe (fully speculating) DBT engine.
func DefaultConfig() Config { return dbt.DefaultConfig() }

// WithMitigation returns cfg with the mitigation mode set.
func WithMitigation(cfg Config, m Mode) Config {
	cfg.Mitigation = m
	return cfg
}

// CoreConfig describes the VLIW core geometry.
type CoreConfig = vliw.Config

// Core geometries for the issue-width ablation.
var (
	NarrowCore  = vliw.NarrowConfig  // 2-issue
	DefaultCore = vliw.DefaultConfig // 4-issue (Hybrid-DBT shape)
	WideCore    = vliw.WideConfig    // 8-issue
)

// Machine is the simulated DBT-based processor.
type Machine = dbt.Machine

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) { return dbt.New(cfg) }

// Result reports a finished guest run.
type Result = dbt.Result

// Fault is a structured guest trap: the typed error every guest-facing
// failure path of the simulator returns instead of panicking. It
// carries the trap kind, guest PC, faulting address, cycle count and —
// for faults inside translated code — the translated region's entry PC.
type Fault = trap.Fault

// TrapKind classifies a Fault (illegal-instruction, misaligned-access,
// out-of-range-access, invalid-branch-target, translation-failure,
// cycle-budget-exceeded, ...).
type TrapKind = trap.Kind

// AsFault extracts the *Fault from an error chain (nil when the error
// is not a guest trap — e.g. a host-side assembly or I/O failure).
func AsFault(err error) *Fault { return trap.As(err) }

// ErrInterrupted is returned (wrapped) by Machine.Run when the run was
// aborted through Config.Interrupt — the hook tools use for timeouts
// and signal-driven cancellation. Match with errors.Is.
var ErrInterrupted = dbt.ErrInterrupted

// FaultInject configures the deterministic fault-injection layer; set
// Config.FaultInject to enable it.
type FaultInject = dbt.FaultInject

// Stats aggregates machine counters (speculation, recoveries, detected
// Spectre patterns, ...).
type Stats = dbt.Stats

// Audit is the machine-wide poison-provenance audit: for every region
// installed in the translation cache, which loads were analyzed, which
// were found risky and pinned, and the full provenance chain (source
// speculative load → data-flow path → guard) explaining each decision.
// Collected only when Config.Audit is set; read with Machine.Audit.
type Audit = dbt.Audit

// AuditDoc is the audit's stable JSON document (schema AuditSchema),
// written by gbrun -audit-json and gbspectre -audit-json.
type AuditDoc = dbt.AuditDoc

// AuditSchema identifies the audit JSON document format.
const AuditSchema = dbt.AuditSchema

// Tracer is the observability layer's event collector. A nil Tracer (or
// an unset Config.Tracer) costs nothing on the simulator's hot paths;
// an enabled one records typed events — block dispatches, translations,
// deopts, speculative loads and squashes, cache flushes, traps —
// timestamped in simulated cycles. Tracers are single-threaded: never
// share one across parallel Runner cells.
type Tracer = obs.Tracer

// TraceLevel selects event density: TraceOff, TraceBlock (block
// granularity) or TraceSpec (adds per-speculative-load events).
type TraceLevel = obs.Level

// Trace levels, coarsest to finest.
const (
	TraceOff   = obs.LevelOff
	TraceBlock = obs.LevelBlock
	TraceSpec  = obs.LevelSpec
)

// TraceSink consumes batches of trace events (text, JSONL, Perfetto).
type TraceSink = obs.Sink

// NewTracer builds a tracer that forwards events to sink (nil sink:
// retain the most recent events in a ring, read back with Events).
func NewTracer(level TraceLevel, sink TraceSink) *Tracer { return obs.New(level, sink) }

// TraceSinkFor resolves a sink by format name: "text", "jsonl", or
// "perfetto" (alias "chrome").
func TraceSinkFor(format string, w io.Writer) (TraceSink, error) { return obs.SinkFor(format, w) }

// NewTextSink returns the human-readable line sink (the gbrun -trace
// format).
func NewTextSink(w io.Writer) TraceSink { return obs.NewTextSink(w) }

// NewTraceMultiSink fans events out to several sinks.
func NewTraceMultiSink(sinks ...TraceSink) TraceSink { return obs.NewMultiSink(sinks...) }

// NewTraceTee fans one event stream out to a primary sink plus pure
// observers: observer errors are swallowed so a broken observer (or a
// detector) can never poison the primary trace. Use it to attach a
// Detector next to a trace file over the same stream.
func NewTraceTee(primary TraceSink, observers ...TraceSink) TraceSink {
	return obs.NewTee(primary, observers...)
}

// DetectConfig tunes the streaming attack-phase detector. The zero
// value selects the documented defaults.
type DetectConfig = detect.Config

// Detector is the online attack-phase detector: a TraceSink that
// consumes the live event stream and classifies simulated-cycle
// windows into benign / prime / trigger / probe, raising an alarm once
// enough prime→trigger rounds have alternated over enough distinct
// cache lines. Attach it as Config.Tracer's sink (or as a NewTraceTee
// observer next to a trace file); read the verdict with Report after
// the run.
type Detector = detect.Detector

// NewDetector builds a detector (zero cfg = defaults).
func NewDetector(cfg DetectConfig) *Detector { return detect.New(cfg) }

// DetectReport is the detector's typed verdict for one run (schema
// DetectReportSchema): alarm, confidence, evidence counters, and the
// inferred phase timeline on the simulated-cycle axis.
type DetectReport = detect.Report

// DetectReportSchema identifies the detection verdict JSON format.
const DetectReportSchema = detect.ReportSchema

// DetectEvalConfig parameterizes a detector accuracy evaluation: the
// benign corpus (polybench) and the Spectre PoCs under every
// mitigation mode, fanned out over the parallel harness.
type DetectEvalConfig = detect.EvalConfig

// DetectEvalDoc is the scored evaluation matrix (schema
// DetectEvalSchema): per-cell verdicts against ground-truth leakage
// labels, with precision/recall/FPR in the summary.
type DetectEvalDoc = detect.EvalDoc

// DetectEvalSchema identifies the evaluation JSON document format.
const DetectEvalSchema = detect.EvalSchema

// RunDetectEval scores the detector over the labeled corpus (gbbench
// -exp detect).
func RunDetectEval(ctx context.Context, cfg Config, ecfg DetectEvalConfig) (*DetectEvalDoc, error) {
	return detect.Eval(ctx, cfg, ecfg)
}

// Snapshot is the flat metrics map with stable names produced from a
// finished run (Result.Snapshot, gbrun -stats -json, gbbench -perfjson).
type Snapshot = obs.Snapshot

// Program is an assembled guest image.
type Program = riscv.Program

// Assemble translates RV64IM assembly into a guest program.
func Assemble(src string) (*Program, error) { return riscv.Assemble(src) }

// AttackVariant selects a Spectre proof of concept.
type AttackVariant = attack.Variant

// The two variants demonstrated by the paper (Section III).
const (
	SpectreV1 = attack.V1
	SpectreV4 = attack.V4
)

// AttackParams configures a proof-of-concept run.
type AttackParams = attack.Params

// Attacker flush strategies (the Arm version of the paper uses a
// dedicated flush instruction; the RISC-V version flushes line by line).
const (
	FlushAll        = attack.FlushAll
	FlushLineByLine = attack.FlushLineByLine
)

// AttackResult reports how much of the secret leaked.
type AttackResult = attack.Result

// AttackLeakage is the side-channel scoreboard attached to every
// AttackResult: the ground truth of which secret-dependent cache lines
// the victim speculatively filled, separate from what the attacker's
// timing loop recovered.
type AttackLeakage = attack.Leakage

// RunAttack executes a Spectre proof of concept under cfg and reports
// the recovered secret.
func RunAttack(v AttackVariant, cfg Config, p AttackParams) (*AttackResult, error) {
	return attack.Run(v, cfg, p)
}

// Kernel is a benchmark kernel generator.
type Kernel = polybench.Kernel

// Kernels returns the benchmark suite used by the Figure 4 experiment.
func Kernels() []Kernel { return polybench.All() }

// KernelByName resolves a kernel ("gemm", ..., "matmul-ptr").
func KernelByName(name string) (Kernel, error) { return polybench.ByName(name) }

// Row is one benchmark's cycles and slowdowns across mitigation modes.
// Slowdowns require ModeUnsafe among the measured modes; without the
// baseline the Slowdown map stays empty and tables render "n/a".
type Row = harness.Row

// Fig4Modes are the modes the evaluation compares.
var Fig4Modes = harness.Fig4Modes

// AllModes returns every mitigation mode registered in the pass
// pipeline, in mode-value order (the four paper modes plus the ported
// mitigation zoo).
func AllModes() []Mode { return harness.AllModes() }

// Runner is the parallel experiment engine: it fans a (benchmark x
// mode) matrix out over a bounded worker pool, one fresh machine per
// job, with context cancellation, per-run wall-clock timeouts and
// deterministic result ordering. The zero value uses GOMAXPROCS
// workers; set Artifacts to share assembled programs across jobs.
type Runner = harness.Runner

// Bench is one benchmark of a Runner matrix.
type Bench = harness.Bench

// Artifacts is the shared read-mostly cache of generated and assembled
// benchmark programs, deduplicating concurrent builds singleflight-style.
type Artifacts = harness.Artifacts

// NewArtifacts returns an empty artifact cache for use with Runner.
func NewArtifacts() *Artifacts { return harness.NewArtifacts() }

// KernelBench wraps a benchmark kernel for use in a Runner matrix.
func KernelBench(k Kernel, n int) Bench { return harness.KernelBench(k, n) }

// Fig4Benches builds the full Figure 4 benchmark list.
func Fig4Benches(sizeOverride int) []Bench { return harness.Fig4Benches(sizeOverride) }

// RunKernel measures one kernel under the given modes, validating guest
// results against the native reference.
func RunKernel(k Kernel, n int, cfg Config, modes []Mode) (*Row, error) {
	return harness.RunKernel(k, n, cfg, modes)
}

// RunFigure4 runs the full Figure 4 experiment.
func RunFigure4(cfg Config, modes []Mode, sizeOverride int) ([]*Row, error) {
	return harness.Fig4(cfg, modes, sizeOverride)
}

// FormatRows renders a Figure 4-style slowdown table.
func FormatRows(rows []*Row, modes []Mode) string {
	return harness.FormatRows(rows, modes)
}

// RunPoCMatrix runs the Section V-A proof-of-concept matrix — both
// attack variants under every registered mitigation — and renders it as
// a table.
func RunPoCMatrix(cfg Config) (string, error) {
	table, _, err := harness.PoCMatrix(cfg)
	return table, err
}

// LeakMatrix is the machine-readable variants × mitigations leakage
// matrix (schema LeakMatrixSchema): per cell, the scoreboard's
// ground-truth bits leaked and the attack's slowdown versus the unsafe
// baseline.
type LeakMatrix = attack.LeakMatrix

// LeakMatrixSchema identifies the leakage matrix JSON document format.
const LeakMatrixSchema = attack.LeakMatrixSchema

// RunLeakageMatrix runs the proof-of-concept matrix once and returns
// both the rendered table and the machine-readable leakage matrix.
func RunLeakageMatrix(cfg Config) (string, *LeakMatrix, error) {
	table, entries, err := harness.PoCMatrix(cfg)
	if err != nil {
		return "", nil, err
	}
	return table, attack.BuildLeakMatrix(entries), nil
}

// SpanTracer is the host-side span tracing layer: host-wall-clock spans
// (job phases, matrix cells, translate/execute splits) on a second
// clock domain next to the simulated-cycle trace events. A nil
// SpanTracer — and every Span derived from one — is fully inert and
// allocation-free, so span hooks can stay wired unconditionally.
// Unlike the cycle Tracer, a SpanTracer is safe for concurrent use.
type SpanTracer = hspan.Tracer

// Span is one in-flight host-time span (a value; copy freely). The
// zero Span is disabled.
type Span = hspan.Span

// SpanAttr is one typed span attribute (string or int64).
type SpanAttr = hspan.Attr

// SpanRecord is one finished span as parsed back from a span stream.
type SpanRecord = hspan.Record

// SpanSink consumes finished span records (JSONL file, Perfetto doc).
type SpanSink = hspan.Sink

// SpanSchema identifies the span JSONL stream format.
const SpanSchema = hspan.Schema

// NewSpanTracer builds a span tracer over a sink (nil sink: spans are
// timed and observable but not persisted).
func NewSpanTracer(sink SpanSink) *SpanTracer { return hspan.New(sink) }

// SpanStr and SpanInt build typed span attributes.
func SpanStr(key, val string) SpanAttr       { return hspan.Str(key, val) }
func SpanInt(key string, val int64) SpanAttr { return hspan.Int(key, val) }

// NewSpanJSONLSink writes the ghostbusters/span/v1 JSONL stream.
func NewSpanJSONLSink(w io.Writer) SpanSink { return hspan.NewJSONLSink(w) }

// NewSpanMultiSink fans span records out to several sinks.
func NewSpanMultiSink(sinks ...SpanSink) SpanSink { return hspan.NewMultiSink(sinks...) }

// NewSpanPerfettoSink adapts a Perfetto trace sink (TraceSinkFor
// "perfetto") so host-time spans land in the same Perfetto document as
// the simulated-cycle events — one file, two clock domains, rendered
// as separate process tracks. Returns false when doc is not a Perfetto
// sink. The adapter never terminates the document: close the span
// tracer first, then the cycle tracer that owns doc.
func NewSpanPerfettoSink(doc TraceSink) (SpanSink, bool) {
	p, ok := doc.(*obs.PerfettoSink)
	if !ok {
		return nil, false
	}
	return hspan.NewPerfettoSink(p), true
}

// ParseSpanJSONL reads a span/v1 JSONL stream back into records.
func ParseSpanJSONL(r io.Reader) ([]SpanRecord, error) { return hspan.ParseJSONL(r) }

// SpanNode is one node of a reconstructed span tree.
type SpanNode = hspan.Node

// BuildSpanTree reconstructs the span forest from parsed records.
func BuildSpanTree(recs []SpanRecord) []*SpanNode { return hspan.BuildTree(recs) }
