package ghostbusters_test

import (
	"strings"
	"testing"

	"ghostbusters"
)

func TestFacadeAssembleAndRun(t *testing.T) {
	prog, err := ghostbusters.Assemble(`
main:
	li a0, 7
	li a1, 6
	mul a0, a0, a1
	ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ghostbusters.NewMachine(ghostbusters.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit.Code != 42 {
		t.Fatalf("exit = %d, want 42", res.Exit.Code)
	}
	if res.Cycles == 0 || res.Instret == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestFacadeModes(t *testing.T) {
	for _, name := range []string{"unsafe", "ghostbusters", "fence", "nospec"} {
		m, err := ghostbusters.ParseMode(name)
		if err != nil {
			t.Fatalf("ParseMode(%s): %v", name, err)
		}
		cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), m)
		if cfg.Mitigation != m {
			t.Fatalf("WithMitigation did not set the mode")
		}
	}
	if _, err := ghostbusters.ParseMode("nonsense"); err == nil {
		t.Fatal("ParseMode(nonsense) should fail")
	}
}

func TestFacadeAttackRoundTrip(t *testing.T) {
	secret := []byte{0x77, 0x3A}
	res, err := ghostbusters.RunAttack(ghostbusters.SpectreV1,
		ghostbusters.DefaultConfig(),
		ghostbusters.AttackParams{Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("unsafe attack failed: %x", res.Recovered)
	}
	mitigated, err := ghostbusters.RunAttack(ghostbusters.SpectreV1,
		ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), ghostbusters.ModeGhostBusters),
		ghostbusters.AttackParams{Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	if mitigated.BytesCorrect != 0 {
		t.Fatalf("mitigated attack leaked %d bytes", mitigated.BytesCorrect)
	}
}

func TestFacadeKernels(t *testing.T) {
	ks := ghostbusters.Kernels()
	if len(ks) < 12 {
		t.Fatalf("suite has only %d kernels", len(ks))
	}
	k, err := ghostbusters.KernelByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	row, err := ghostbusters.RunKernel(k, 8, ghostbusters.DefaultConfig(),
		[]ghostbusters.Mode{ghostbusters.ModeUnsafe, ghostbusters.ModeNoSpeculation})
	if err != nil {
		t.Fatal(err)
	}
	table := ghostbusters.FormatRows([]*ghostbusters.Row{row},
		[]ghostbusters.Mode{ghostbusters.ModeUnsafe, ghostbusters.ModeNoSpeculation})
	if !strings.Contains(table, "gemm") {
		t.Fatalf("table: %s", table)
	}
}

func TestFacadePoCMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow under -short")
	}
	table, err := ghostbusters.RunPoCMatrix(ghostbusters.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spectre-v1", "spectre-v4", "unsafe", "ghostbusters", "YES", "NO"} {
		if !strings.Contains(table, want) {
			t.Fatalf("matrix missing %q:\n%s", want, table)
		}
	}
}

func TestFacadeCoreGeometries(t *testing.T) {
	for _, mk := range []func() ghostbusters.CoreConfig{
		ghostbusters.NarrowCore, ghostbusters.DefaultCore, ghostbusters.WideCore,
	} {
		cfg := ghostbusters.DefaultConfig()
		cfg.Core = mk()
		m, err := ghostbusters.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prog, _ := ghostbusters.Assemble("main:\n\tli a0, 5\n\tecall\n")
		_ = m.Load(prog)
		res, err := m.Run()
		if err != nil || res.Exit.Code != 5 {
			t.Fatalf("width variant failed: %v %v", res, err)
		}
	}
}
