package dbt

import (
	"encoding/binary"
	"testing"

	"ghostbusters/internal/riscv"
	"ghostbusters/internal/trap"
)

// fuzzBase is the text base of the differential fuzz guests.
const fuzzBase = 0x10000

// fuzzConfig returns a small machine for one differential run. The
// cycle budget is tight: random words love infinite loops, and timing
// is exactly what interpreter and translated execution do NOT agree on,
// so budget exhaustion on either side makes the pair incomparable.
func fuzzConfig() Config {
	cfg := DefaultConfig()
	cfg.MemBase = fuzzBase
	cfg.MemSize = 1 << 20
	cfg.MaxCycles = 200_000
	return cfg
}

// fuzzProgram sanitises raw fuzz bytes into a guest program: up to 40
// instruction words with the cycle/time CSR reads neutralised (the one
// architecturally visible value that legitimately differs between
// execution modes), terminated by an ecall.
func fuzzProgram(data []byte) *riscv.Program {
	const nop = 0x00000013
	n := len(data) / 4
	if n > 40 {
		n = 40
	}
	words := make([]uint32, 0, n+1)
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(data[4*i:])
		switch riscv.Decode(w).Op {
		case riscv.CSRRW, riscv.CSRRS, riscv.CSRRC:
			w = nop
		}
		words = append(words, w)
	}
	words = append(words, 0x00000073) // ecall
	return &riscv.Program{Entry: fuzzBase, TextBase: fuzzBase, Text: words}
}

// fuzzRun executes prog on a fresh machine and reports the outcome plus
// the final architectural state. selfModified reports whether the guest
// overwrote its own text with different words — translated code is
// deliberately not invalidated by guest stores, so such guests may
// legitimately diverge between modes.
func fuzzRun(t *testing.T, cfg Config, prog *riscv.Program) (res *Result, x [32]uint64, ferr *trap.Fault, selfModified bool) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Release()
	if err := m.Load(prog); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err = m.Run()
	if err != nil {
		ferr = trap.As(err)
		if ferr == nil {
			t.Fatalf("Run returned a non-trap error: %v", err)
		}
	}
	x = m.State().X
	for i, w := range prog.Text {
		got, rerr := m.Mem().Read(prog.TextBase+uint64(4*i), 4)
		if rerr != nil || uint32(got) != w {
			selfModified = true
			break
		}
	}
	return res, x, ferr, selfModified
}

// FuzzInterpVsVLIW is the differential fuzzer of the two execution
// modes: random instruction streams must either run to completion with
// identical architectural results (exit code and register file) under
// pure interpretation and under eager translation, or fault on both
// sides. Fault kinds are not compared — speculative scheduling
// legitimately reorders which fault fires first — but a clean exit on
// one side with a fault on the other is a translator bug.
func FuzzInterpVsVLIW(f *testing.F) {
	le := binary.LittleEndian
	seed := func(words ...uint32) []byte {
		b := make([]byte, 4*len(words))
		for i, w := range words {
			le.PutUint32(b[4*i:], w)
		}
		return b
	}
	f.Add(seed(0x00000013))                                     // nop
	f.Add(seed(0x00500513, 0x00A00593, 0x00B50533))             // li a0,5; li a1,10; add
	f.Add(seed(0x06400293, 0xFFF28293, 0xFE029EE3))             // countdown loop
	f.Add(seed(0x00053503))                                     // ld a0, 0(a0): wild load
	f.Add(seed(0x0100006F, 0xFFFFFFFF))                         // jal over an illegal word
	f.Add(seed(0x00A02023, 0x00002503, 0x00150513, 0x00A02223)) // store/load mix

	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		cfgI := fuzzConfig()
		cfgI.DisableTranslation = true
		cfgT := fuzzConfig()
		cfgT.HotThreshold = 1
		cfgT.TraceThreshold = 3

		resI, xI, faultI, modI := fuzzRun(t, cfgI, prog)
		resT, xT, faultT, modT := fuzzRun(t, cfgT, prog)

		// Timing is mode-specific by design: once either side ran out of
		// budget the other may be anywhere. Same for self-modifying
		// guests: translated code is not invalidated by guest stores.
		if trap.IsKind(faultI, trap.CycleBudgetExceeded) || trap.IsKind(faultT, trap.CycleBudgetExceeded) ||
			modI || modT {
			return
		}
		if (faultI == nil) != (faultT == nil) {
			t.Fatalf("fault divergence: interp=%v translated=%v", faultI, faultT)
		}
		if faultI != nil {
			return // both faulted; kinds/order may differ under scheduling
		}
		if resI.Exit.Kind != resT.Exit.Kind || resI.Exit.Code != resT.Exit.Code {
			t.Fatalf("exit divergence: interp kind=%d code=%d, translated kind=%d code=%d",
				resI.Exit.Kind, resI.Exit.Code, resT.Exit.Kind, resT.Exit.Code)
		}
		if xI != xT {
			for i := range xI {
				if xI[i] != xT[i] {
					t.Fatalf("register divergence at x%d: interp %#x, translated %#x", i, xI[i], xT[i])
				}
			}
		}
	})
}
