package dbt

import (
	"fmt"
	"sort"

	"ghostbusters/internal/ir"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/vliw"
)

// The scheduler turns a mitigated IR block into a VLIW schedule. It
// implements the two software speculation mechanisms of the paper:
//
//   - branch speculation: instructions hoisted above a side-exit branch
//     write hidden registers; a commit node at the original program
//     position publishes the architectural value, so taken exits never
//     observe hoisted results;
//   - memory dependency speculation: loads hoisted above stores become
//     MCB-checked lds operations; a chk node stands at the load's
//     original position and branches to DBT-generated recovery code on
//     conflict.
//
// Every instruction in the speculative forward slice of an lds (the
// instructions its recovery may replay) is renamed into a hidden
// register with a commit after the chk: that keeps recovery replayable
// even for self-overwriting guest code (add t0, t0, t1) and guarantees
// the architectural state only ever holds validated values.
//
// Relaxable IR edges that survive the mitigation are dropped here; hard
// edges (including mitigation-inserted guard edges) constrain the list
// scheduler.

type nodeKind uint8

const (
	nInst nodeKind = iota
	nChk
	nCommit
)

// rank orders nodes sharing a program position: the instruction, then
// its chk, then its commit.
func (k nodeKind) rank() int { return int(k) }

type dep struct {
	from int
	lat  uint64
}

type schedNode struct {
	kind  nodeKind
	irIdx int // the IR instruction this node derives from
	pos   int // program position (IR index)

	preds []dep
	succs []int

	sylKind vliw.Kind
	cap     vliw.SlotCap
	lat     uint64
	prio    uint64

	specCtrl   bool // may be scheduled above a side-exit branch
	specMem    bool // lds with MCB tag
	hiddenDest bool // result goes to a hidden register + commit
	tag        uint8
	hidden     uint8 // allocated hidden register when hiddenDest
}

type graph struct {
	b     *ir.Block
	cfg   *vliw.Config
	nodes []schedNode

	chkOf    map[int]int // load IR index -> chk node id
	commitOf map[int]int // inst IR index -> commit node id

	droppedStores   map[int][]int // load IR index -> store IR indices speculated across
	droppedBranches map[int][]int // inst IR index -> branch IR indices speculated across
}

// errHiddenOverflow asks the caller to retry with less speculation.
var errHiddenOverflow = fmt.Errorf("dbt: hidden register pressure too high")

// syllKindFor maps an IR instruction to its base syllable kind.
func syllKindFor(in *ir.Inst) vliw.Kind {
	switch {
	case in.IsLoad():
		return vliw.KLoad
	case in.IsStore():
		return vliw.KStore
	case in.IsBranch():
		return vliw.KBrExit
	case in.Op == riscv.JALR:
		return vliw.KJumpR
	case in.Op == riscv.CSRRW, in.Op == riscv.CSRRS, in.Op == riscv.CSRRC:
		return vliw.KCsr
	case in.Op == riscv.CFLUSH, in.Op == riscv.CFLUSHALL:
		return vliw.KFlush
	case in.Op == riscv.FENCE:
		return vliw.KNop
	case in.A.Kind == ir.OpNone && in.Op == riscv.ADDI:
		return vliw.KMovI
	default:
		fk, _ := in.Op.Info()
		if fk == riscv.FmtR {
			return vliw.KAluRR
		}
		return vliw.KAluRI
	}
}

// hoistEnabledSet marks the instructions branch speculation applies to:
// every value-producing instruction (loads and ALU operations). Stores,
// branches and barriers never move above a side exit; everything else
// may, writing a hidden register until its commit point — full
// superblock scheduling, as in Transmeta-style DBT cores.
func hoistEnabledSet(b *ir.Block) []bool {
	enabled := make([]bool, len(b.Insts))
	for i := range b.Insts {
		in := &b.Insts[i]
		if in.IsLoad() || (!in.IsStore() && !in.IsBranch() && !in.IsBarrier() && in.Op != riscv.JALR) {
			enabled[i] = true
		}
	}
	return enabled
}

// buildGraph assembles the scheduling graph, deciding which relaxable
// edges to exploit. allowCtrlSpec / allowMemSpec disable the respective
// speculation mechanisms (fallbacks when hidden registers run out).
func buildGraph(b *ir.Block, cfg *vliw.Config, allowCtrlSpec, allowMemSpec bool) (*graph, error) {
	g := &graph{
		b: b, cfg: cfg,
		chkOf:           make(map[int]int),
		commitOf:        make(map[int]int),
		droppedStores:   make(map[int][]int),
		droppedBranches: make(map[int][]int),
	}
	n := len(b.Insts)
	enabled := hoistEnabledSet(b)

	// Classify per-instruction speculation.
	specCtrl := make([]bool, n)
	specMem := make([]bool, n)
	tags := make(map[int]uint8)
	nextTag := 0
	for i := range b.Insts {
		in := &b.Insts[i]
		hasRelCtrl, hasRelMem := false, false
		for _, e := range b.Edges {
			if e.To != i || !e.Relaxable {
				continue
			}
			switch e.Kind {
			case ir.EdgeCtrl:
				hasRelCtrl = true
			case ir.EdgeMem:
				hasRelMem = true
			}
		}
		if allowCtrlSpec && hasRelCtrl && enabled[i] && !in.IsStore() && !in.IsBranch() && !in.IsBarrier() && in.Op != riscv.JALR {
			specCtrl[i] = true
		}
		if allowMemSpec && hasRelMem && in.IsLoad() && nextTag < vliw.MCBEntries {
			specMem[i] = true
			tags[i] = uint8(nextTag)
			nextTag++
		}
	}

	// Speculative forward slice of each lds: consumers that may execute
	// before its chk and therefore may be replayed by recovery code.
	// Propagation stops at non-speculative loads — those are pinned
	// behind the chk (validation ordering, below), so neither they nor
	// their descendants ever run on unvalidated data.
	isBarrierLoad := func(i int) bool {
		return b.Insts[i].IsLoad() && !specMem[i] && !specCtrl[i]
	}
	closureOf := func(l int) []bool {
		cl := make([]bool, n)
		cl[l] = true
		for i := l + 1; i < n; i++ {
			if isBarrierLoad(i) {
				continue
			}
			in := &b.Insts[i]
			if in.A.Kind == ir.OpInst && cl[in.A.Inst] {
				cl[i] = true
			}
			if !in.IsLoad() && in.B.Kind == ir.OpInst && cl[in.B.Inst] {
				cl[i] = true
			}
		}
		return cl
	}
	closures := make(map[int][]bool)
	inAnyClosure := make([]bool, n)
	for i := 0; i < n; i++ {
		if specMem[i] {
			cl := closureOf(i)
			closures[i] = cl
			for m, v := range cl {
				if v {
					inAnyClosure[m] = true
				}
			}
		}
	}

	// A node's result goes to a hidden register (published by a commit
	// at its original position) when it may execute speculatively —
	// hoisted above a branch, or part of an lds forward slice — and for
	// every load: renaming load results decouples them from the WAW/WAR
	// chains of recycled guest temporaries, which would otherwise
	// serialize exactly the latency-critical operations. Stores,
	// branches and barriers never produce register results.
	hiddenDest := make([]bool, n)
	for i := 0; i < n; i++ {
		if b.Insts[i].DestArch == ir.TempDest {
			// Mitigation temporaries live only in hidden registers and
			// are never committed (no commit node below).
			hiddenDest[i] = true
			continue
		}
		if b.Insts[i].DestArch <= 0 {
			continue
		}
		if specCtrl[i] || inAnyClosure[i] || b.Insts[i].IsLoad() {
			hiddenDest[i] = true
		}
	}

	// Hidden registers are allocated after scheduling (live-range based
	// linear scan in emit); here nodes are only marked.

	// Instruction nodes.
	for i := range b.Insts {
		in := &b.Insts[i]
		k := syllKindFor(in)
		if specMem[i] {
			k = vliw.KLoadS
		} else if specCtrl[i] && in.IsLoad() {
			k = vliw.KLoadD
		} else if in.IsLoad() && inAnyClosure[i] && !isBarrierLoad(i) {
			k = vliw.KLoadD // dependent load replayed by recovery: dismissable
		}
		node := schedNode{
			kind: nInst, irIdx: i, pos: i,
			sylKind:    k,
			cap:        vliw.CapFor(k, in.Op),
			specCtrl:   specCtrl[i],
			specMem:    specMem[i],
			hiddenDest: hiddenDest[i],
			tag:        tags[i],
		}
		syl := vliw.Syllable{Kind: k, Op: in.Op}
		node.lat = cfg.Latency(&syl)
		if node.cap == 0 {
			node.cap = vliw.CapALU
		}
		g.nodes = append(g.nodes, node)
	}

	addDep := func(to, from int, lat uint64) {
		if to == from {
			return
		}
		g.nodes[to].preds = append(g.nodes[to].preds, dep{from, lat})
		g.nodes[from].succs = append(g.nodes[from].succs, to)
	}

	// IR ordering edges (hard, or relaxable-but-unexploited).
	for _, e := range b.Edges {
		if e.Relaxable {
			switch e.Kind {
			case ir.EdgeCtrl:
				if specCtrl[e.To] {
					g.droppedBranches[e.To] = append(g.droppedBranches[e.To], e.From)
					continue // exploited: hoisting allowed
				}
			case ir.EdgeMem:
				if specMem[e.To] {
					g.droppedStores[e.To] = append(g.droppedStores[e.To], e.From)
					continue // exploited: MCB speculation
				}
			}
		}
		addDep(e.To, e.From, 1)
	}

	// Data dependencies from operands.
	for i := range b.Insts {
		in := &b.Insts[i]
		for _, op := range [2]ir.Operand{in.A, in.B} {
			if op.Kind == ir.OpInst {
				addDep(i, op.Inst, g.nodes[op.Inst].lat)
			}
		}
	}

	// Helper index lists.
	var branchPos []int // branches and terminators, in program order
	var storePos []int
	var barrierPos []int
	for i := range b.Insts {
		in := &b.Insts[i]
		if in.IsBranch() || in.Op == riscv.JALR {
			branchPos = append(branchPos, i)
		}
		if in.IsStore() {
			storePos = append(storePos, i)
		}
		if in.IsBarrier() {
			barrierPos = append(barrierPos, i)
		}
	}

	// Architectural-register writers, in program order. A writer is a
	// direct instruction or the commit node of a hidden-destination
	// instruction; commit node ids are patched in once created.
	type writer struct {
		pos     int
		node    int   // node id; -1 until the commit node exists
		inst    int   // IR instruction index
		chkPins []int // chk nodes that must precede this writer
	}
	writersOf := map[int8][]writer{}
	for i := 0; i < n; i++ {
		d := b.Insts[i].DestArch
		if d <= 0 {
			continue
		}
		node := i
		if hiddenDest[i] {
			node = -1
		}
		writersOf[d] = append(writersOf[d], writer{pos: i, node: node, inst: i})
	}
	nextWriterAfter := func(r int8, pos int) *writer {
		for k := range writersOf[r] {
			if writersOf[r][k].pos > pos {
				return &writersOf[r][k]
			}
		}
		return nil
	}
	firstWriter := func(r int8) *writer {
		if ws := writersOf[r]; len(ws) > 0 {
			return &ws[0]
		}
		return nil
	}

	// Chk nodes for MCB-speculated loads.
	var chkIDs []int
	for i := 0; i < n; i++ {
		if !specMem[i] {
			continue
		}
		id := len(g.nodes)
		g.nodes = append(g.nodes, schedNode{
			kind: nChk, irIdx: i, pos: i,
			sylKind: vliw.KChk, cap: vliw.CapALU, lat: 1,
			tag: tags[i],
		})
		g.chkOf[i] = id
		addDep(id, i, 1) // after the load issues
		for _, s := range g.droppedStores[i] {
			addDep(id, s, 1) // after every store it speculated across
		}
		for _, bp := range branchPos {
			if bp < i {
				addDep(id, bp, 1) // stays in its region
			} else {
				addDep(bp, id, 1) // validates before any later exit
			}
		}
		for _, sp := range storePos {
			if sp > i {
				addDep(sp, id, 1) // later stores must not hit a stale entry
			}
		}
		for _, bp := range barrierPos {
			if bp > i {
				addDep(bp, id, 1)
			}
		}
		for _, prev := range chkIDs {
			addDep(id, prev, 1) // chks validate in program order
		}
		chkIDs = append(chkIDs, id)

		cl := closures[i]

		// Validation ordering: a non-speculative load whose address
		// derives from this lds must not execute until the chk has
		// validated (and possibly repaired) it. This is what makes the
		// GhostBusters guard dependency sound on this backend: a pinned
		// risky load runs strictly after recovery, so its first
		// execution never touches a secret-dependent line.
		for m := i + 1; m < n; m++ {
			if isBarrierLoad(m) && dependsThrough(b, m, cl) {
				addDep(m, id, 1)
			}
		}

		// Recovery liveness: every out-of-slice architectural input the
		// slice reads must survive unredefined until the chk. (Slice
		// results live in hidden registers, so writes need no pinning.)
		pinWriter := func(w *writer) {
			if w == nil {
				return
			}
			if w.node >= 0 {
				addDep(w.node, id, 1)
			} else {
				w.chkPins = append(w.chkPins, id)
			}
		}
		for m := 0; m < n; m++ {
			if !cl[m] {
				continue
			}
			in := &b.Insts[m]
			ops := [2]ir.Operand{in.A, in.B}
			for oi, op := range ops {
				if oi == 1 && in.IsLoad() {
					continue
				}
				switch op.Kind {
				case ir.OpRegIn:
					pinWriter(firstWriter(int8(op.Reg)))
				case ir.OpInst:
					j := op.Inst
					if cl[j] || hiddenDest[j] {
						continue // recomputed in the slice / hidden reg
					}
					pinWriter(nextWriterAfter(b.Insts[j].DestArch, j))
				}
			}
		}
	}

	// Commit nodes for hidden-destination instructions. TempDest
	// temporaries define no architectural register: nothing to publish.
	for i := 0; i < n; i++ {
		if !hiddenDest[i] || b.Insts[i].DestArch == ir.TempDest {
			continue
		}
		id := len(g.nodes)
		g.nodes = append(g.nodes, schedNode{
			kind: nCommit, irIdx: i, pos: i,
			sylKind: vliw.KCommit, cap: vliw.CapALU, lat: cfg.LatALU,
		})
		g.commitOf[i] = id
		addDep(id, i, g.nodes[i].lat)
		for _, bp := range branchPos {
			if bp < i {
				addDep(id, bp, 1) // not above the branches it crossed
			} else {
				addDep(bp, id, 0) // visible at any later exit (same bundle ok)
			}
		}
		// Publish only validated values: after the chk of every lds
		// whose speculative slice contains this instruction.
		for l, cl := range closures {
			if cl[i] {
				addDep(id, g.chkOf[l], 1)
			}
		}
		// Patch the writer table and apply deferred recovery pins.
		ws := writersOf[b.Insts[i].DestArch]
		for k := range ws {
			if ws[k].inst == i {
				ws[k].node = id
				for _, chk := range ws[k].chkPins {
					addDep(id, chk, 1)
				}
				ws[k].chkPins = nil
			}
		}
	}

	// Apply deferred recovery pins that landed on direct writers.
	for _, ws := range writersOf {
		for k := range ws {
			if ws[k].node < 0 {
				return nil, fmt.Errorf("dbt: writer of x%d at pos %d has no node", ws[k].inst, ws[k].pos)
			}
			for _, chk := range ws[k].chkPins {
				addDep(ws[k].node, chk, 1)
			}
			ws[k].chkPins = nil
		}
	}

	// WAW ordering between successive writers of each arch register.
	for _, ws := range writersOf {
		for k := 1; k < len(ws); k++ {
			addDep(ws[k].node, ws[k-1].node, 1)
		}
	}
	// WAR: every reader of an architectural value must read before the
	// next writer of that register.
	for i := range b.Insts {
		in := &b.Insts[i]
		ops := [2]ir.Operand{in.A, in.B}
		for oi, op := range ops {
			if oi == 1 && in.IsLoad() {
				continue
			}
			switch op.Kind {
			case ir.OpRegIn:
				if w := firstWriter(int8(op.Reg)); w != nil {
					addDep(w.node, i, 0)
				}
			case ir.OpInst:
				j := op.Inst
				if hiddenDest[j] {
					continue // reads a hidden register: no WAR hazard
				}
				if w := nextWriterAfter(b.Insts[j].DestArch, j); w != nil {
					addDep(w.node, i, 0)
				}
			}
		}
	}

	// Late exits (Transmeta-style): a load hoisted above a side exit is
	// only useful if it actually issues before the exit resolves, so the
	// branches it speculated across wait for it. This is what "the load
	// instruction moved before a conditional branch" means in the
	// schedule — and it is the window the Spectre v1 attack lives in.
	// The floor computation keeps the graph acyclic: a branch is never
	// delayed behind a load that is itself (transitively) forced after
	// that branch.
	if len(g.droppedBranches) > 0 {
		order, err := g.topoOrder()
		if err != nil {
			return nil, err
		}
		floor := make([]int, len(g.nodes))
		for i := range floor {
			floor[i] = -1
		}
		isBranchNode := func(id int) bool {
			nd := &g.nodes[id]
			if nd.kind != nInst {
				return false
			}
			in := &b.Insts[nd.irIdx]
			return in.IsBranch() || in.Op == riscv.JALR
		}
		for _, id := range order {
			f := floor[id]
			for _, p := range g.nodes[id].preds {
				if isBranchNode(p.from) && g.nodes[p.from].pos > f {
					f = g.nodes[p.from].pos
				}
				if floor[p.from] > f {
					f = floor[p.from]
				}
			}
			floor[id] = f
		}
		for x, brs := range g.droppedBranches {
			if !b.Insts[x].IsLoad() {
				continue
			}
			for _, bi := range brs {
				if bi > floor[x] {
					addDep(bi, x, 1)
				}
			}
		}
	}

	return g, nil
}

// dependsThrough reports whether instruction m transitively consumes a
// value from the closure cl (walking only through its direct operands —
// m itself is outside cl).
func dependsThrough(b *ir.Block, m int, cl []bool) bool {
	in := &b.Insts[m]
	if in.A.Kind == ir.OpInst && cl[in.A.Inst] {
		return true
	}
	if !in.IsLoad() && in.B.Kind == ir.OpInst && cl[in.B.Inst] {
		return true
	}
	return false
}

// topoOrder returns a dependency-respecting order, erroring on cycles
// (which would indicate a construction bug).
func (g *graph) topoOrder() ([]int, error) {
	indeg := make([]int, len(g.nodes))
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].preds)
	}
	var order []int
	var ready []int
	for i := range g.nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		id := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, id)
		for _, s := range g.nodes[id].succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("dbt: dependency cycle in scheduling graph (%d/%d ordered)", len(order), len(g.nodes))
	}
	return order, nil
}

// schedule assigns each node a (bundle, slot) by greedy list scheduling:
// cycle by cycle, highest critical-path priority first, into the least
// capable free slot that supports the operation.
type placement struct {
	cycle int
	slot  int
}

func (g *graph) schedule() ([]placement, int, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, 0, err
	}
	// Critical-path priority.
	for k := len(order) - 1; k >= 0; k-- {
		id := order[k]
		nd := &g.nodes[id]
		nd.prio = nd.lat
		for _, s := range nd.succs {
			if p := g.nodes[s].prio + nd.lat; p > nd.prio {
				nd.prio = p
			}
		}
	}

	// Slot preference: fewer capabilities first, so ALU work does not
	// occupy the memory or branch slot needlessly.
	slotOrder := make([]int, len(g.cfg.Slots))
	for i := range slotOrder {
		slotOrder[i] = i
	}
	popcount := func(c vliw.SlotCap) int {
		n := 0
		for c != 0 {
			n += int(c & 1)
			c >>= 1
		}
		return n
	}
	sort.SliceStable(slotOrder, func(a, b int) bool {
		return popcount(g.cfg.Slots[slotOrder[a]]) < popcount(g.cfg.Slots[slotOrder[b]])
	})

	place := make([]placement, len(g.nodes))
	for i := range place {
		place[i] = placement{cycle: -1}
	}
	unscheduled := len(g.nodes)
	remaining := make([]int, len(g.nodes))
	earliest := make([]int, len(g.nodes))
	for i := range g.nodes {
		remaining[i] = len(g.nodes[i].preds)
	}

	var readyList []int
	for i := range g.nodes {
		if remaining[i] == 0 {
			readyList = append(readyList, i)
		}
	}

	cycle := 0
	const maxCycles = 1 << 16
	for unscheduled > 0 {
		if cycle > maxCycles {
			return nil, 0, fmt.Errorf("dbt: scheduler did not converge")
		}
		// Candidates whose dependencies are satisfied by this cycle.
		var cand []int
		for _, id := range readyList {
			if place[id].cycle == -1 && earliest[id] <= cycle {
				cand = append(cand, id)
			}
		}
		sort.SliceStable(cand, func(a, b int) bool {
			if g.nodes[cand[a]].prio != g.nodes[cand[b]].prio {
				return g.nodes[cand[a]].prio > g.nodes[cand[b]].prio
			}
			return g.nodes[cand[a]].pos < g.nodes[cand[b]].pos
		})
		used := make([]bool, len(g.cfg.Slots))
		for _, id := range cand {
			nd := &g.nodes[id]
			for _, s := range slotOrder {
				if used[s] || g.cfg.Slots[s]&nd.cap == 0 {
					continue
				}
				used[s] = true
				place[id] = placement{cycle: cycle, slot: s}
				unscheduled--
				for _, succ := range nd.succs {
					remaining[succ]--
					if remaining[succ] == 0 {
						readyList = append(readyList, succ)
					}
				}
				break
			}
		}
		// Refresh earliest for nodes that just became ready.
		for _, id := range readyList {
			if place[id].cycle != -1 || remaining[id] != 0 {
				continue
			}
			e := 0
			for _, p := range g.nodes[id].preds {
				pc := place[p.from].cycle + int(p.lat)
				if pc > e {
					e = pc
				}
			}
			earliest[id] = e
		}
		cycle++
	}

	numBundles := 0
	for _, p := range place {
		if p.cycle+1 > numBundles {
			numBundles = p.cycle + 1
		}
	}
	return place, numBundles, nil
}
