// Package dbt implements the Dynamic Binary Translation engine and the
// full DBT-based processor model: profiling-driven translation of RISC-V
// guest code into IR blocks, superblock/trace construction along biased
// branches, GhostBusters mitigation (internal/core) applied to each block
// before scheduling, list scheduling with speculative code motion onto
// the VLIW core, MCB recovery-code generation, and the machine dispatch
// loop that mixes interpretation of cold code with execution of
// translated regions.
package dbt

import (
	"fmt"

	"ghostbusters/internal/ir"
	"ghostbusters/internal/riscv"
)

// fetcher reads guest instruction words (implemented by the machine bus).
type fetcher interface {
	Fetch(addr uint64) (uint32, error)
}

// branchOracle tells the trace builder which way a conditional branch is
// biased. Return (direction, true) to follow it, or (_, false) to end the
// trace at the branch (insufficient bias or no profile).
type branchOracle func(pc uint64) (taken bool, follow bool)

// translateLimits bound trace growth.
type translateLimits struct {
	MaxInsts  int // guest instructions per block
	MaxUnroll int // times the trace may pass through its entry (loop unrolling)
}

func defaultLimits() translateLimits { return translateLimits{MaxInsts: 48, MaxUnroll: 4} }

// errUntranslatable marks guest code the DBT engine leaves to the
// interpreter (blocks starting with ecall/ebreak or unfetchable code).
var errUntranslatable = fmt.Errorf("dbt: untranslatable block")

// invertBranch returns the branch op testing the opposite condition,
// or ok=false for a non-branch op (the caller treats that as an
// untranslatable region rather than crashing the host).
func invertBranch(op riscv.Op) (riscv.Op, bool) {
	switch op {
	case riscv.BEQ:
		return riscv.BNE, true
	case riscv.BNE:
		return riscv.BEQ, true
	case riscv.BLT:
		return riscv.BGE, true
	case riscv.BGE:
		return riscv.BLT, true
	case riscv.BLTU:
		return riscv.BGEU, true
	case riscv.BGEU:
		return riscv.BLTU, true
	}
	return op, false
}

// translate decodes guest code starting at entry into one IR block.
//
// With oracle == nil it builds a plain basic block: decoding stops at the
// first control transfer. With an oracle it builds a superblock/trace:
// biased conditional branches are normalised so that *taken means leaving
// the trace* (inverting the condition when the biased direction is the
// taken one) and decoding continues along the hot path, unrolling loops
// through the entry up to the limits.
func translate(f fetcher, entry uint64, oracle branchOracle, lim translateLimits) (*ir.Block, int, error) {
	bu := ir.NewBuilder(entry)
	pc := entry
	guestInsts := 0
	entryVisits := 0
	visited := map[uint64]int{}

	endAt := func(next uint64) (*ir.Block, int, error) {
		if guestInsts == 0 {
			return nil, 0, errUntranslatable
		}
		bu.SetFallthrough(next, false)
		return bu.Block(), guestInsts, nil
	}

	for {
		if guestInsts >= lim.MaxInsts {
			return endAt(pc)
		}
		if pc == entry && guestInsts > 0 {
			entryVisits++
			if entryVisits >= lim.MaxUnroll {
				return endAt(pc)
			}
			// A fresh pass through the loop: body PCs may repeat.
			visited = map[uint64]int{}
		}
		// Revisiting any non-entry PC within a pass means an inner
		// cycle that does not go through the trace entry: stop.
		if _, seen := visited[pc]; seen && pc != entry {
			return endAt(pc)
		}
		visited[pc] = guestInsts

		word, err := f.Fetch(pc)
		if err != nil {
			return endAt(pc)
		}
		in := riscv.Decode(word)

		switch {
		case in.Op == riscv.OpIllegal, in.Op == riscv.ECALL, in.Op == riscv.EBREAK:
			// Left to the interpreter.
			return endAt(pc)

		case in.Op.IsBranch():
			target := pc + uint64(in.Imm)
			fall := pc + 4
			op := in.Op
			exit := target
			next := fall
			if oracle != nil {
				if taken, follow := oracle(pc); follow {
					if taken {
						// Hot path is the taken side: invert so that the
						// in-trace direction is fall-through.
						inv, ok := invertBranch(op)
						if !ok {
							return nil, 0, fmt.Errorf("%w: cannot invert %s at %#x", errUntranslatable, op, pc)
						}
						op = inv
						exit = fall
						next = target
					}
					bu.Emit(ir.Inst{
						Op: op, A: bu.Reg(in.Rs1), B: bu.Reg(in.Rs2),
						DestArch: -1, PC: pc, BranchExit: exit,
					})
					guestInsts++
					pc = next
					continue
				}
			}
			// Basic-block mode (or weak bias): branch ends the block;
			// fall-through is the in-block direction.
			bu.Emit(ir.Inst{
				Op: op, A: bu.Reg(in.Rs1), B: bu.Reg(in.Rs2),
				DestArch: -1, PC: pc, BranchExit: exit,
			})
			guestInsts++
			return endAt(fall)

		case in.Op == riscv.JAL:
			target := pc + uint64(in.Imm)
			if in.Rd != 0 {
				// Call: materialise the link and end the block.
				bu.Emit(ir.Inst{Op: riscv.ADDI, Imm: int64(pc + 4), DestArch: int8(in.Rd), PC: pc})
				guestInsts++
				return endAt(target)
			}
			guestInsts++
			if oracle != nil {
				// Plain jump: the trace flows through it.
				pc = target
				continue
			}
			return endAt(target)

		case in.Op == riscv.JALR:
			base := bu.Reg(in.Rs1) // capture before the link clobbers rs1
			if in.Rd != 0 {
				bu.Emit(ir.Inst{Op: riscv.ADDI, Imm: int64(pc + 4), DestArch: int8(in.Rd), PC: pc})
			}
			bu.Emit(ir.Inst{Op: riscv.JALR, A: base, Imm: in.Imm, DestArch: -1, PC: pc})
			guestInsts++
			bu.SetFallthrough(0, true) // dynamic target via the JALR inst
			return bu.Block(), guestInsts, nil

		case in.Op.IsLoad():
			dest := int8(-1)
			if in.Rd != 0 {
				dest = int8(in.Rd)
			}
			bu.Emit(ir.Inst{Op: in.Op, A: bu.Reg(in.Rs1), Imm: in.Imm, DestArch: dest, PC: pc})
			guestInsts++
			pc += 4

		case in.Op.IsStore():
			bu.Emit(ir.Inst{Op: in.Op, A: bu.Reg(in.Rs1), B: bu.Reg(in.Rs2), Imm: in.Imm, DestArch: -1, PC: pc})
			guestInsts++
			pc += 4

		case in.Op == riscv.LUI:
			if in.Rd != 0 {
				bu.Emit(ir.Inst{Op: riscv.ADDI, Imm: in.Imm, DestArch: int8(in.Rd), PC: pc})
			}
			guestInsts++
			pc += 4

		case in.Op == riscv.AUIPC:
			if in.Rd != 0 {
				bu.Emit(ir.Inst{Op: riscv.ADDI, Imm: int64(pc) + in.Imm, DestArch: int8(in.Rd), PC: pc})
			}
			guestInsts++
			pc += 4

		case in.Op == riscv.FENCE:
			bu.Emit(ir.Inst{Op: riscv.FENCE, DestArch: -1, PC: pc})
			guestInsts++
			pc += 4

		case in.Op == riscv.CSRRW, in.Op == riscv.CSRRS, in.Op == riscv.CSRRC:
			dest := int8(-1)
			if in.Rd != 0 {
				dest = int8(in.Rd)
			}
			bu.Emit(ir.Inst{Op: in.Op, A: bu.Reg(in.Rs1), Imm: in.Imm, DestArch: dest, PC: pc})
			guestInsts++
			pc += 4

		case in.Op == riscv.CFLUSH:
			bu.Emit(ir.Inst{Op: riscv.CFLUSH, A: bu.Reg(in.Rs1), DestArch: -1, PC: pc})
			guestInsts++
			pc += 4
		case in.Op == riscv.CFLUSHALL:
			bu.Emit(ir.Inst{Op: riscv.CFLUSHALL, DestArch: -1, PC: pc})
			guestInsts++
			pc += 4

		default:
			// Register-register and register-immediate ALU.
			if in.Rd == 0 {
				guestInsts++ // architectural nop
				pc += 4
				continue
			}
			fk, _ := in.Op.Info()
			inst := ir.Inst{Op: in.Op, A: bu.Reg(in.Rs1), DestArch: int8(in.Rd), PC: pc}
			switch fk {
			case riscv.FmtR:
				inst.B = bu.Reg(in.Rs2)
			case riscv.FmtI, riscv.FmtShift64, riscv.FmtShift32:
				inst.Imm = in.Imm
			default:
				return nil, 0, fmt.Errorf("dbt: unexpected format for %s at %#x", in.Op, pc)
			}
			bu.Emit(inst)
			guestInsts++
			pc += 4
		}
	}
}
