package dbt

import (
	"errors"
	"fmt"
	"testing"

	"ghostbusters/internal/riscv"
	"ghostbusters/internal/trap"
)

// A closed Interrupt channel aborts the run with ErrInterrupted once the
// dispatch loop polls it — the hook the harness uses for wall-clock
// timeouts and cancellation.
func TestRunInterrupt(t *testing.T) {
	src := `
main:
	li s1, 0
	li s2, 0
loop:
	add s2, s2, s1
	addi s1, s1, 1
	li t0, 1000000
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`
	prog, err := riscv.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	cfg := DefaultConfig()
	cfg.Interrupt = stop
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run with closed Interrupt returned %v, want ErrInterrupted", err)
	}

	// Without the interrupt the same guest finishes normally.
	cfg.Interrupt = nil
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}
}

// spinSrc is a hot loop that runs long enough for any budget or
// interrupt in these tests to fire while the loop is translated,
// traced and chained.
const spinSrc = `
main:
	li s1, 0
	li s2, 0
	li t0, 50000000
loop:
	add s2, s2, s1
	addi s1, s1, 1
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`

// runSpin runs spinSrc under cfg and returns the run error (nil when
// the guest finished, which these tests treat as a failure).
func runSpin(t *testing.T, cfg Config) (*Machine, error) {
	t.Helper()
	prog, err := riscv.Assemble(spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Run()
	return m, runErr
}

// TestMaxCyclesParityUnderChaining pins the quota contract the serving
// layer's cycle budgets rest on: block chaining must not let a guest
// coast past Config.MaxCycles. The budget check runs once per block
// transfer inside the chain loop — the same cadence as the unchained
// dispatch loop — so the chained and unchained runs must trap at the
// exact same cycle, and the overshoot past the limit is bounded by a
// single block execution, far less than one ChainBudget of blocks.
func TestMaxCyclesParityUnderChaining(t *testing.T) {
	const limit = 100_000

	faults := map[string]*trap.Fault{}
	for name, disable := range map[string]bool{"chained": false, "unchained": true} {
		cfg := DefaultConfig()
		cfg.MaxCycles = limit
		cfg.DisableChaining = disable
		m, err := runSpin(t, cfg)
		f := trap.As(err)
		if f == nil || f.Kind != trap.CycleBudgetExceeded {
			t.Fatalf("%s: error %v, want a %s trap", name, err, trap.CycleBudgetExceeded)
		}
		if f.Cycle <= limit {
			t.Errorf("%s: trap cycle %d did not pass the limit %d", name, f.Cycle, limit)
		}
		if m.stats.Translations == 0 {
			t.Errorf("%s: loop was never translated; the test exercised only the interpreter", name)
		}
		faults[name] = f
	}
	if c, u := faults["chained"].Cycle, faults["unchained"].Cycle; c != u {
		t.Errorf("budget cadence diverges under chaining: chained trap at cycle %d, unchained at %d", c, u)
	}
	// "Promptly" quantified: the overshoot is one block, not one chain.
	if over := faults["chained"].Cycle - limit; over > 5_000 {
		t.Errorf("chained run overshot the budget by %d cycles", over)
	}
}

// TestInterruptParityUnderChaining does the same for the cancellation
// hook: the chain loop shares the outer dispatch loop's poll counter,
// so a pending interrupt stops a chained run at the same cycle as an
// unchained one — the property that makes job deadlines and drain
// cancellation prompt regardless of how hot the guest is.
func TestInterruptParityUnderChaining(t *testing.T) {
	stop := make(chan struct{})
	close(stop)

	cycles := map[string]uint64{}
	for name, disable := range map[string]bool{"chained": false, "unchained": true} {
		cfg := DefaultConfig()
		cfg.Interrupt = stop
		cfg.DisableChaining = disable
		m, err := runSpin(t, cfg)
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("%s: error %v, want ErrInterrupted", name, err)
		}
		var at uint64
		if _, serr := fmt.Sscanf(err.Error(), "dbt: run interrupted at cycle %d", &at); serr != nil {
			t.Fatalf("%s: cannot parse interrupt cycle from %q: %v", name, err, serr)
		}
		if at == 0 || at != m.Cycles() {
			t.Errorf("%s: reported cycle %d, machine at %d", name, at, m.Cycles())
		}
		cycles[name] = at
	}
	if c, u := cycles["chained"], cycles["unchained"]; c != u {
		t.Errorf("interrupt cadence diverges under chaining: chained at cycle %d, unchained at %d", c, u)
	}
}
