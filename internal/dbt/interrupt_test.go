package dbt

import (
	"errors"
	"testing"

	"ghostbusters/internal/riscv"
)

// A closed Interrupt channel aborts the run with ErrInterrupted once the
// dispatch loop polls it — the hook the harness uses for wall-clock
// timeouts and cancellation.
func TestRunInterrupt(t *testing.T) {
	src := `
main:
	li s1, 0
	li s2, 0
loop:
	add s2, s2, s1
	addi s1, s1, 1
	li t0, 1000000
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`
	prog, err := riscv.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	cfg := DefaultConfig()
	cfg.Interrupt = stop
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run with closed Interrupt returned %v, want ErrInterrupted", err)
	}

	// Without the interrupt the same guest finishes normally.
	cfg.Interrupt = nil
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}
}
