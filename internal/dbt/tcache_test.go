package dbt

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/tcache"
)

// hotLoopSrc is a guest that crosses both translation thresholds: the
// loop block is translated, upgraded to a trace and chained, so a warm
// run exercises every cached-install shape.
const hotLoopSrc = `
main:
	li a0, 0
	li s1, 0
	li t0, 200
loop:
	addi a0, a0, 1
	addi s1, s1, 1
	blt s1, t0, loop
	andi a0, a0, 127
	ecall
`

// zeroTCacheStats strips the counters that legitimately differ between
// cold, warm and uncached runs of the same guest: everything else is
// guest-visible and must be bit-identical.
func zeroTCacheStats(s Stats) Stats {
	s.Translations = 0
	s.TCacheHits = 0
	s.TCacheMisses = 0
	return s
}

// A second machine on the same in-memory cache must skip every
// compilation and still be bit-identical to both the cold run and an
// uncached run.
func TestTransCacheWarmRun(t *testing.T) {
	cfg := DefaultConfig()
	base, _ := runSrc(t, hotLoopSrc, cfg)

	tc := tcache.New("")
	cfg.TransCache = tc
	cold, _ := runSrc(t, hotLoopSrc, cfg)
	if cold.Stats.Translations == 0 {
		t.Fatal("cold run translated nothing — the guest is not hot enough to test anything")
	}
	if cold.Stats.TCacheHits != 0 || cold.Stats.TCacheMisses != cold.Stats.Translations {
		t.Errorf("cold run probe counters off: %d hits, %d misses, %d translations",
			cold.Stats.TCacheHits, cold.Stats.TCacheMisses, cold.Stats.Translations)
	}

	warm, _ := runSrc(t, hotLoopSrc, cfg)
	if warm.Stats.Translations != 0 {
		t.Errorf("warm run still compiled %d regions", warm.Stats.Translations)
	}
	if warm.Stats.TCacheHits != cold.Stats.Translations {
		t.Errorf("warm run hit %d cached regions, cold run compiled %d",
			warm.Stats.TCacheHits, cold.Stats.Translations)
	}

	for name, res := range map[string]*Result{"cold": cold, "warm": warm} {
		if res.Exit.Code != base.Exit.Code {
			t.Errorf("%s exit %d, uncached %d", name, res.Exit.Code, base.Exit.Code)
		}
		if res.Cycles != base.Cycles {
			t.Errorf("%s run took %d cycles, uncached %d", name, res.Cycles, base.Cycles)
		}
		if got, want := zeroTCacheStats(res.Stats), zeroTCacheStats(base.Stats); got != want {
			t.Errorf("%s stats diverge from uncached:\n%+v\n%+v", name, got, want)
		}
	}
}

// The on-disk path: a fresh Cache instance (a new process, in effect)
// on the same directory warm-starts; a corrupted document degrades to a
// cold run instead of failing.
func TestTransCacheDisk(t *testing.T) {
	dir := t.TempDir()

	cfg := DefaultConfig()
	cfg.TransCache = tcache.New(dir)
	cold, _ := runSrc(t, hotLoopSrc, cfg)
	if err := cfg.TransCache.Err(); err != nil {
		t.Fatal(err)
	}
	if _, _, persisted := cfg.TransCache.Stats(); persisted == 0 {
		t.Fatal("clean run published no document")
	}

	warmCfg := DefaultConfig()
	warmCfg.TransCache = tcache.New(dir)
	warm, _ := runSrc(t, hotLoopSrc, warmCfg)
	if warm.Stats.Translations != 0 {
		t.Errorf("cross-instance warm run still compiled %d regions", warm.Stats.Translations)
	}
	if warm.Cycles != cold.Cycles || warm.Exit.Code != cold.Exit.Code {
		t.Errorf("warm run diverged: %d cycles exit %d, cold %d cycles exit %d",
			warm.Cycles, warm.Exit.Code, cold.Cycles, cold.Exit.Code)
	}

	// Corrupt every document: the next run must quietly recompile.
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	recCfg := DefaultConfig()
	recCfg.TransCache = tcache.New(dir)
	rec, _ := runSrc(t, hotLoopSrc, recCfg)
	if rec.Stats.Translations == 0 {
		t.Error("corrupted cache still served regions")
	}
	if rec.Cycles != cold.Cycles || rec.Exit.Code != cold.Exit.Code {
		t.Errorf("recovery run diverged: %d cycles exit %d, cold %d cycles exit %d",
			rec.Cycles, rec.Exit.Code, cold.Cycles, cold.Exit.Code)
	}
}

// TestTransCacheTornWrite simulates the two crash shapes of the atomic
// tmp+rename persist protocol and requires both to degrade to a cold
// run with the error (if any) surfacing only through Cache.Err():
//
//   - a crash BETWEEN tmp-write and rename leaves an orphaned .tcache-*
//     file next to the document; loads must ignore it (it is not the
//     document) and runs proceed from the intact document unharmed;
//   - a torn document (truncated mid-JSON, as after a crash that lost
//     the tail of a non-atomic write) must parse-fail into a cold run,
//     and the recompiled regions must then repair the document.
func TestTransCacheTornWrite(t *testing.T) {
	dir := t.TempDir()

	cfg := DefaultConfig()
	cfg.TransCache = tcache.New(dir)
	cold, _ := runSrc(t, hotLoopSrc, cfg)
	if err := cfg.TransCache.Err(); err != nil {
		t.Fatal(err)
	}

	var docs []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		docs = append(docs, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("clean run persisted no document")
	}

	// Crash shape 1: orphaned tmp file beside every document. The
	// orphan even holds valid-looking JSON — nothing may read it.
	for _, doc := range docs {
		orphan := filepath.Join(filepath.Dir(doc), ".tcache-orphan123")
		if err := os.WriteFile(orphan, []byte(`{"schema":"ghostbusters/tcache/v1"}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warmCfg := DefaultConfig()
	warmCfg.TransCache = tcache.New(dir)
	warm, _ := runSrc(t, hotLoopSrc, warmCfg)
	if warm.Stats.Translations != 0 {
		t.Errorf("orphaned tmp file spoiled the warm start: %d recompilations", warm.Stats.Translations)
	}
	if err := warmCfg.TransCache.Err(); err != nil {
		t.Errorf("orphaned tmp file raised an error: %v", err)
	}

	// Crash shape 2: every document torn mid-JSON. The run must come up
	// cold, bit-identical, with the parse failure only in Err().
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(doc, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tornCfg := DefaultConfig()
	tornCfg.TransCache = tcache.New(dir)
	torn, _ := runSrc(t, hotLoopSrc, tornCfg)
	if torn.Stats.Translations == 0 {
		t.Error("torn document still served regions")
	}
	if torn.Cycles != cold.Cycles || torn.Exit.Code != cold.Exit.Code {
		t.Errorf("torn-cache run diverged: %d cycles exit %d, cold %d cycles exit %d",
			torn.Cycles, torn.Exit.Code, cold.Cycles, cold.Exit.Code)
	}
	if err := tornCfg.TransCache.Err(); err == nil {
		t.Error("torn document was not reported through Err()")
	}

	// The cold run republished; the next instance warm-starts again.
	repairedCfg := DefaultConfig()
	repairedCfg.TransCache = tcache.New(dir)
	repaired, _ := runSrc(t, hotLoopSrc, repairedCfg)
	if repaired.Stats.Translations != 0 {
		t.Errorf("repaired document did not warm-start: %d recompilations", repaired.Stats.Translations)
	}
	if err := repairedCfg.TransCache.Err(); err != nil {
		t.Errorf("repaired run raised: %v", err)
	}
}

// Different modes and different configurations must never share cached
// code: the mitigation pass output depends on both.
func TestTransCacheKeySeparation(t *testing.T) {
	tc := tcache.New("")

	cfg := DefaultConfig()
	cfg.TransCache = tc
	runSrc(t, hotLoopSrc, cfg)

	other := DefaultConfig()
	other.TransCache = tc
	other.Mitigation = core.ModeGhostBusters
	res, _ := runSrc(t, hotLoopSrc, other)
	if res.Stats.TCacheHits != 0 {
		t.Errorf("ghostbusters run hit %d regions cached by the unsafe run", res.Stats.TCacheHits)
	}
	if res.Stats.Translations == 0 {
		t.Error("ghostbusters run compiled nothing")
	}

	tweaked := DefaultConfig()
	tweaked.TransCache = tc
	tweaked.MaxUnroll = 2
	res, _ = runSrc(t, hotLoopSrc, tweaked)
	if res.Stats.TCacheHits != 0 {
		t.Errorf("run with a different unroll limit hit %d foreign regions", res.Stats.TCacheHits)
	}
}

// Self-modifying code abandons the cache mid-run: nothing is served
// after the store and nothing is ever published, so a later run of the
// same image cannot pick up translations describing overwritten text.
func TestTransCacheSMC(t *testing.T) {
	newWord, err := riscv.Encode(riscv.Inst{Op: riscv.ADDI, Rd: 10, Rs1: 10, Imm: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(`
main:
	li a0, 0
	li s1, 0
	la s2, patch
	li s3, %d
	li s4, 40
	li t0, 80
loop:
patch:
	addi a0, a0, 1
	bne s1, s4, skip
	sw s3, 0(s2)
skip:
	addi s1, s1, 1
	blt s1, t0, loop
	ecall
`, newWord)
	const wantExit = 41*1 + 39*2

	tc := tcache.New("")
	cfg := DefaultConfig()
	cfg.TransCache = tc

	first, _ := runSrc(t, src, cfg)
	if first.Exit.Code != wantExit {
		t.Fatalf("first run exit %d, want %d", first.Exit.Code, wantExit)
	}
	if first.Stats.TCacheMisses == 0 {
		t.Error("cache never consulted before the store")
	}

	second, _ := runSrc(t, src, cfg)
	if second.Exit.Code != wantExit {
		t.Fatalf("second run exit %d, want %d", second.Exit.Code, wantExit)
	}
	if second.Stats.TCacheHits != 0 {
		t.Errorf("self-modifying run published %d regions that a later run consumed",
			second.Stats.TCacheHits)
	}
	if second.Cycles != first.Cycles {
		t.Errorf("runs diverged: %d vs %d cycles", second.Cycles, first.Cycles)
	}
}

// Runs whose translation schedule is not a pure function of the cache
// key — fault injection, auditing, encoding verification, interpreter
// mode — must bypass the cache entirely.
func TestTransCacheEligibility(t *testing.T) {
	cases := map[string]func(*Config){
		"audit":  func(c *Config) { c.Audit = true },
		"verify": func(c *Config) { c.VerifyEncoding = true },
		"interp": func(c *Config) { c.DisableTranslation = true },
		// An active injector perturbs the translation schedule; note an
		// all-zero-rate injector is inert and deliberately stays eligible.
		"fault-injector": func(c *Config) { c.FaultInject = &FaultInject{Seed: 1, CacheFaultRate: 1e-9} },
	}
	for name, mutate := range cases {
		tc := tcache.New("")
		cfg := DefaultConfig()
		cfg.TransCache = tc
		mutate(&cfg)
		res, _ := runSrc(t, hotLoopSrc, cfg)
		if res.Stats.TCacheHits != 0 || res.Stats.TCacheMisses != 0 {
			t.Errorf("%s: ineligible run touched the cache (%d hits, %d misses)",
				name, res.Stats.TCacheHits, res.Stats.TCacheMisses)
		}
		warm, _ := runSrc(t, hotLoopSrc, cfg)
		if warm.Stats.TCacheHits != 0 {
			t.Errorf("%s: ineligible run published regions", name)
		}
	}
}
