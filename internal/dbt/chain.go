package dbt

import (
	"fmt"
	"sync"

	"ghostbusters/internal/trap"
	"ghostbusters/internal/vliw"
)

// This file implements direct block chaining, the dispatch layer of the
// fast execution backend: once a translated region's successor is
// resolved, block→block transfers run in a tight inner loop that never
// touches the m.trans map or copies the register file — registers live
// in m.vregs across the whole chained run, and the architectural state
// is synchronised only when the chain surfaces (interpreter handoff,
// fault, interrupt, budget exhaustion).
//
// Links are cached per region and validated against Machine.chainEpoch:
// any translation-cache mutation (new install, deopt, blacklist, SMC
// invalidation) bumps the epoch, severing every link at once. A link
// may also carry the successor's profile counter so the per-entry
// profiling of the outer loop (m.entries) is preserved without a map
// lookup per transfer.

// chainLinks is the per-region successor cache size: fall-through,
// branch-taken and a couple of side-exit targets cover almost every
// region; anything beyond round-robins through the slots.
const chainLinks = 4

// defaultChainBudget bounds how many blocks chain back-to-back before
// surfacing to the outer loop (Config.ChainBudget overrides).
const defaultChainBudget = 64

// chainLink is one resolved successor: target entry PC, its translated
// region, and its profile counter (nil when the PC is blacklisted, in
// which case the slow path would not count it either).
type chainLink struct {
	pc  uint64
	e   *transEntry
	cnt *uint64
}

// transState owns the translation-state maps of one machine. The
// harness creates and releases thousands of short-lived machines per
// sweep; pooling keeps the map bucket storage alive across them.
type transState struct {
	entries  map[uint64]*uint64
	branches map[uint64]*brStat
	trans    map[uint64]*transEntry
	noTrans  map[uint64]struct{}
}

var transPool = sync.Pool{New: func() any {
	return &transState{
		entries:  make(map[uint64]*uint64),
		branches: make(map[uint64]*brStat),
		trans:    make(map[uint64]*transEntry),
		noTrans:  make(map[uint64]struct{}),
	}
}}

// install publishes a translated region and invalidates every cached
// chain link (the epoch bump): links resolved against the old contents
// of m.trans must be re-resolved.
func (m *Machine) install(pc uint64, e *transEntry) {
	m.trans[pc] = e
	m.chainEpoch++
	// Both fresh translations and persistent-cache installs route
	// through here, so this is the one place to attribute host-side
	// translation latency to the machine.
	m.transHostNS += e.transNS
	if e.lo < m.transLo {
		m.transLo = e.lo
	}
	if e.hi > m.transHi {
		m.transHi = e.hi
	}
}

// blockExtent computes the guest text range [lo, hi) a translated block
// covers, from the guest PCs stamped on its syllables (traces can reach
// below or above their entry).
func blockExtent(blk *vliw.Block) (lo, hi uint64) {
	lo, hi = blk.EntryPC, blk.EntryPC+4
	scan := func(sy *vliw.Syllable) {
		if sy.GuestPC == 0 {
			return
		}
		if sy.GuestPC < lo {
			lo = sy.GuestPC
		}
		if sy.GuestPC+4 > hi {
			hi = sy.GuestPC + 4
		}
	}
	for _, bun := range blk.Bundles {
		for i := range bun {
			scan(&bun[i])
		}
	}
	for _, rec := range blk.Recoveries {
		for i := range rec {
			scan(&rec[i])
		}
	}
	return lo, hi
}

// onGuestStore is the bus store hook: it invalidates interpreter
// predecode entries and, when the store lands inside guest text covered
// by translated code, drops the overlapping regions and severs chain
// links into them — a stale chained successor must never execute.
func (m *Machine) onGuestStore(addr uint64, size int) {
	if m.pred != nil {
		m.pred.Invalidate(addr, size)
	}
	if m.tcr != nil && addr < m.textHi && addr+uint64(size) > m.textLo {
		// Self-modifying code: the persistent translation cache describes
		// the original image, so stop consulting it and never publish
		// this run's recordings.
		m.tcr = nil
	}
	if addr >= m.transHi || addr+uint64(size) <= m.transLo {
		return
	}
	m.invalidateRange(addr, uint64(size))
}

// invalidateRange drops every translated region overlapping
// [addr, addr+size) and severs all chain links.
func (m *Machine) invalidateRange(addr, size uint64) {
	end := addr + size
	dropped := false
	for pc, e := range m.trans {
		if e.lo < end && addr < e.hi {
			delete(m.trans, pc)
			m.stats.SMCInvalidations++
			dropped = true
		}
	}
	if dropped {
		m.chainEpoch++
	}
}

// chainTo returns the cached link from e to next, or nil when no valid
// link exists. A stale epoch clears the whole link set first.
func (e *transEntry) chainTo(next, epoch uint64) *chainLink {
	if e.linkEpoch != epoch {
		e.links = [chainLinks]chainLink{}
		e.linkVictim = 0
		e.linkEpoch = epoch
		return nil
	}
	for i := range e.links {
		if e.links[i].pc == next && e.links[i].e != nil {
			return &e.links[i]
		}
	}
	return nil
}

// addLink caches a resolved successor on e, evicting round-robin when
// the slots are full.
func (e *transEntry) addLink(next uint64, succ *transEntry, cnt *uint64) {
	for i := range e.links {
		if e.links[i].e == nil {
			e.links[i] = chainLink{pc: next, e: succ, cnt: cnt}
			return
		}
	}
	e.links[e.linkVictim] = chainLink{pc: next, e: succ, cnt: cnt}
	e.linkVictim = (e.linkVictim + 1) % chainLinks
}

// chainStep performs the block-boundary bookkeeping of the outer
// dispatch loop (profile count, translation thresholds) for the
// transfer e→next, and resolves next's translated region. A nil result
// surfaces the chain to the outer loop (next is interpreted, or was
// just translated and will be dispatched there).
func (m *Machine) chainStep(e *transEntry, next uint64) *transEntry {
	if lk := e.chainTo(next, m.chainEpoch); lk != nil {
		if lk.cnt != nil {
			*lk.cnt++
			// Mirror of onEnter's trace-upgrade trigger. The upgrade
			// replaces the entry and bumps the epoch, so resolve the
			// successor fresh from the map.
			if !lk.e.isTrace && !m.cfg.DisableTraces && *lk.cnt >= m.cfg.TraceThreshold {
				m.translateAt(next, true)
				return m.trans[next]
			}
		}
		return lk.e
	}
	// No valid link: run the full entry protocol, then cache the
	// resolution when the successor is translated. onEnter may itself
	// translate (and bump the epoch); re-check before caching so a
	// fresh link is never stamped with a stale epoch.
	m.onEnter(next)
	succ := m.trans[next]
	if succ == nil {
		return nil
	}
	if e.linkEpoch == m.chainEpoch {
		var cnt *uint64
		if _, bad := m.noTrans[next]; !bad {
			cnt = m.entries[next]
		}
		e.addLink(next, succ, cnt)
	}
	return succ
}

// syncState writes the chained register file back to the architectural
// state and parks the PC.
func (m *Machine) syncState(pc uint64) {
	copy(m.state.X[:], m.vregs[:32])
	m.state.X[0] = 0
	m.state.PC = pc
}

// runChain executes translated blocks back-to-back starting at pc/e.
// On return the architectural state is synchronised. A non-nil fault is
// terminal (the caller raises it with the returned PC); a non-nil error
// is an interrupt; both nil means the chain surfaced cleanly and the
// outer loop continues at m.state.PC.
//
// The per-dispatch operation sequence is exactly the outer loop's —
// profile attribution, deopt checks, entry counting, translation
// thresholds, MaxCycles and interrupt polling all behave identically;
// only the map lookups, register-file copies and tracer branches are
// elided. The differential tests pin this equivalence down to exact
// cycle counts and trap identity.
func (m *Machine) runChain(pc uint64, e *transEntry, poll *int, budget int) (*trap.Fault, uint64, error) {
	m.wasTrans = true
	copy(m.vregs[:32], m.state.X[:])
	for n := 1; ; n++ {
		start := m.cycles
		csBefore := m.core.Stats
		ei := m.core.Exec(e.blk, &m.vregs, m.b, &m.cycles)
		m.stats.BlockExecs++
		cs := m.core.Stats
		e.cycles += m.cycles - start
		e.bundles += cs.Bundles - csBefore.Bundles
		e.sideExits += cs.SideExits - csBefore.SideExits
		e.specLoads += cs.SpecLoads - csBefore.SpecLoads
		e.squashes += cs.SpecSquash - csBefore.SpecSquash
		if ei.Fault != nil {
			m.syncState(pc)
			f := ei.Fault
			f.Block = pc
			return f, ei.FaultPC, nil
		}
		e.execs++
		e.recov += cs.Recoveries - csBefore.Recoveries
		if m.cfg.AdaptiveRetranslation && !e.noMemSpec &&
			e.execs >= m.cfg.DeoptWindow &&
			e.recov*100 >= e.execs*m.cfg.DeoptRatioPct {
			m.translateWith(pc, e.isTrace, true)
			m.stats.Deopts++
		}
		next := ei.NextPC
		succ := m.chainStep(e, next)
		if succ == nil || n >= budget {
			m.syncState(next)
			return nil, 0, nil
		}
		// The outer loop's per-iteration guards, inlined for the next
		// transfer (the fault injector is never active under chaining,
		// so only the budget trap and the interrupt channel remain).
		if m.cfg.MaxCycles != 0 && m.cycles > m.cfg.MaxCycles {
			m.syncState(next)
			f := trap.Newf(trap.CycleBudgetExceeded, "cycle budget exceeded (max %d)", m.cfg.MaxCycles)
			return f, next, nil
		}
		if m.cfg.Interrupt != nil {
			if *poll++; *poll >= interruptPollEvery {
				*poll = 0
				select {
				case <-m.cfg.Interrupt:
					m.syncState(next)
					return nil, 0, fmt.Errorf("dbt: %w at cycle %d", ErrInterrupted, m.cycles)
				default:
				}
			}
		}
		pc, e = next, succ
	}
}
