package dbt

import (
	"testing"

	"ghostbusters/internal/riscv"
)

// alwaysConflictSrc stores and immediately reloads the same location
// through two register views the DBT engine cannot prove equal: memory
// speculation hoists the load above the store and the MCB rolls back on
// every single iteration.
const alwaysConflictSrc = `
	.data
cell:	.dword 7
out:	.dword 0
	.text
main:
	la s0, cell
	la s1, cell
	li s2, 0
	li s3, 0
loop:
	mul t0, s2, s2     # slow value for the store
	sd t0, 0(s0)
	ld t1, 0(s1)       # same address, unprovable: speculated, conflicts
	add s3, s3, t1
	addi s2, s2, 1
	li t2, 400
	blt s2, t2, loop
	la t3, out
	sd s3, 0(t3)
	li a0, 0
	ecall
`

func TestAdaptiveRetranslationDeoptimisesRecoveryStorms(t *testing.T) {
	base := DefaultConfig()
	off, _ := runSrc(t, alwaysConflictSrc, base)
	if off.Stats.Recoveries < 300 {
		t.Fatalf("expected a recovery storm, got %d recoveries", off.Stats.Recoveries)
	}

	adaptive := DefaultConfig()
	adaptive.AdaptiveRetranslation = true
	on, _ := runSrc(t, alwaysConflictSrc, adaptive)
	if on.Stats.Deopts == 0 {
		t.Fatal("adaptive machine never deoptimised the conflicting block")
	}
	if on.Stats.Recoveries >= off.Stats.Recoveries/2 {
		t.Errorf("deoptimisation barely reduced recoveries: %d vs %d",
			on.Stats.Recoveries, off.Stats.Recoveries)
	}
	if on.Cycles >= off.Cycles {
		t.Errorf("adaptive retranslation did not pay off: %d vs %d cycles",
			on.Cycles, off.Cycles)
	}
	if off.Exit.Code != on.Exit.Code {
		t.Errorf("exit codes diverge: %d vs %d", off.Exit.Code, on.Exit.Code)
	}
}

func TestAdaptiveRetranslationKeepsResultsCorrect(t *testing.T) {
	// Equivalence across interpreter and adaptive machine.
	p := riscv.MustAssemble(alwaysConflictSrc)
	want := map[string]uint64{}
	for _, adaptive := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.AdaptiveRetranslation = adaptive
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_ = m.Load(p)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		v, _ := m.Mem().Read(p.MustSymbol("out"), 8)
		if !adaptive {
			want["out"] = v
		} else if v != want["out"] {
			t.Fatalf("adaptive result %d != baseline %d", v, want["out"])
		}
	}
}

func TestAdaptiveDoesNotDeoptConflictFreeCode(t *testing.T) {
	src := `
	.data
a:	.space 512
b:	.space 512
	.text
main:
	la s0, a
	la s1, b
	li s2, 0
loop:
	andi t0, s2, 63
	slli t0, t0, 3
	add t1, s0, t0
	sd s2, 0(t1)
	add t2, s1, t0
	ld t3, 0(t2)       # different array: speculation never conflicts
	addi s2, s2, 1
	li t4, 300
	blt s2, t4, loop
	li a0, 0
	ecall
`
	cfg := DefaultConfig()
	cfg.AdaptiveRetranslation = true
	res, _ := runSrc(t, src, cfg)
	if res.Stats.Deopts != 0 {
		t.Errorf("conflict-free code deoptimised %d times", res.Stats.Deopts)
	}
	if res.Stats.SpecLoads == 0 {
		t.Error("speculation should stay enabled")
	}
}
