package dbt

import (
	"strings"
	"testing"

	"ghostbusters/internal/bus"
	"ghostbusters/internal/cache"
	"ghostbusters/internal/core"
	"ghostbusters/internal/guestmem"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/vliw"
)

// fetchFor loads a program into a bus for the translator.
func fetchFor(t *testing.T, src string) (*bus.Bus, *riscv.Program) {
	t.Helper()
	p := riscv.MustAssemble(src)
	mem := guestmem.New(0x10000, 1<<20)
	b := bus.MustNew(mem, cache.DefaultConfig())
	for i, w := range p.Text {
		if err := mem.Write(p.TextBase+uint64(4*i), 4, uint64(w)); err != nil {
			t.Fatal(err)
		}
	}
	return b, p
}

func TestTranslateBasicBlockStopsAtBranch(t *testing.T) {
	b, p := fetchFor(t, `
main:
	addi t0, t0, 1
	addi t1, t1, 2
	beq t0, t1, main
	addi t2, t2, 3
	ecall
`)
	blk, gi, err := translate(b, p.Entry, nil, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if gi != 3 {
		t.Fatalf("guest insts = %d, want 3 (stop at branch)", gi)
	}
	last := blk.Insts[len(blk.Insts)-1]
	if !last.IsBranch() || last.BranchExit != p.Entry {
		t.Fatalf("last inst %v, want branch exiting to main", last)
	}
	if blk.FallPC != p.Entry+12 {
		t.Fatalf("FallPC = %#x, want %#x", blk.FallPC, p.Entry+12)
	}
}

func TestTranslateStopsBeforeEcall(t *testing.T) {
	b, p := fetchFor(t, `
main:
	addi t0, t0, 1
	ecall
`)
	blk, gi, err := translate(b, p.Entry, nil, defaultLimits())
	if err != nil || gi != 1 {
		t.Fatalf("gi=%d err=%v", gi, err)
	}
	if blk.FallPC != p.Entry+4 {
		t.Fatalf("FallPC = %#x (should point at the ecall)", blk.FallPC)
	}
}

func TestTranslateRejectsEcallOnly(t *testing.T) {
	b, p := fetchFor(t, "main:\n\tecall\n")
	if _, _, err := translate(b, p.Entry, nil, defaultLimits()); err != errUntranslatable {
		t.Fatalf("err = %v, want errUntranslatable", err)
	}
}

func TestTranslateNormalisesTakenBranch(t *testing.T) {
	// Oracle says taken: the branch must be inverted so fall-through
	// stays in trace and the exit goes to the not-taken side.
	b, p := fetchFor(t, `
main:
	blt t0, t1, target
	addi t2, t2, 1
	ecall
target:
	addi t3, t3, 1
	ecall
`)
	oracle := func(pc uint64) (bool, bool) { return true, true }
	blk, _, err := translate(b, p.Entry, oracle, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	br := blk.Insts[0]
	if br.Op != riscv.BGE {
		t.Fatalf("branch not inverted: %v", br.Op)
	}
	if br.BranchExit != p.Entry+4 {
		t.Fatalf("exit = %#x, want fall-through %#x", br.BranchExit, p.Entry+4)
	}
	// The trace must continue with the target block's addi t3.
	if blk.Insts[1].DestArch != 28 {
		t.Fatalf("trace did not follow the taken side: %v", blk.Insts[1])
	}
}

func TestTranslateFollowsPlainJumps(t *testing.T) {
	b, p := fetchFor(t, `
main:
	addi t0, t0, 1
	j hop
back:
	ecall
hop:
	addi t1, t1, 1
	j back
`)
	oracle := func(pc uint64) (bool, bool) { return false, false }
	blk, gi, err := translate(b, p.Entry, oracle, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	// addi, j, addi, j = 4 guest insts; IR has the two addis.
	if gi != 4 || len(blk.Insts) != 2 {
		t.Fatalf("gi=%d irLen=%d", gi, len(blk.Insts))
	}
	if blk.FallPC != p.MustSymbol("back") {
		t.Fatalf("FallPC = %#x", blk.FallPC)
	}
}

func TestTranslateCallEndsBlockWithLink(t *testing.T) {
	b, p := fetchFor(t, `
main:
	addi t0, t0, 1
	call fn
	ecall
fn:
	ret
`)
	blk, gi, err := translate(b, p.Entry, nil, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if gi != 2 {
		t.Fatalf("gi = %d", gi)
	}
	link := blk.Insts[len(blk.Insts)-1]
	if link.DestArch != 1 || uint64(link.Imm) != p.Entry+8 {
		t.Fatalf("link inst = %+v", link)
	}
	if blk.FallPC != p.MustSymbol("fn") {
		t.Fatalf("FallPC = %#x", blk.FallPC)
	}
}

func TestTranslateJALRTerminator(t *testing.T) {
	b, p := fetchFor(t, `
main:
	jalr ra, 8(t0)
`)
	blk, _, err := translate(b, p.Entry, nil, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !blk.TerminatorExit {
		t.Fatal("JALR block must be a terminator exit")
	}
	last := blk.Insts[len(blk.Insts)-1]
	if last.Op != riscv.JALR || last.Imm != 8 {
		t.Fatalf("terminator = %+v", last)
	}
	// The link write must capture old t0 semantics: the JALR target
	// operand refers to the pre-link register state.
	if last.A.Kind != 0 && last.A.Kind != 1 { // RegIn expected
		t.Fatalf("jalr base operand %v", last.A)
	}
}

func TestTranslateUnrollCaps(t *testing.T) {
	b, p := fetchFor(t, `
main:
	addi t0, t0, 1
	blt t0, t1, main
	ecall
`)
	oracle := func(pc uint64) (bool, bool) { return true, true }
	lim := translateLimits{MaxInsts: 48, MaxUnroll: 3}
	blk, gi, err := translate(b, p.Entry, oracle, lim)
	if err != nil {
		t.Fatal(err)
	}
	if gi != 6 { // 3 unrolled copies of (addi, blt)
		t.Fatalf("gi = %d, want 6", gi)
	}
	if blk.FallPC != p.Entry {
		t.Fatalf("loop trace must fall back to the entry, got %#x", blk.FallPC)
	}
	nBranches := 0
	for _, in := range blk.Insts {
		if in.IsBranch() {
			nBranches++
		}
	}
	if nBranches != 3 {
		t.Fatalf("branches = %d, want 3", nBranches)
	}
}

func TestTranslateInstLimit(t *testing.T) {
	src := "main:\n"
	for i := 0; i < 100; i++ {
		src += "\taddi t0, t0, 1\n"
	}
	src += "\tecall\n"
	b, p := fetchFor(t, src)
	lim := translateLimits{MaxInsts: 10, MaxUnroll: 4}
	blk, gi, err := translate(b, p.Entry, nil, lim)
	if err != nil {
		t.Fatal(err)
	}
	if gi != 10 {
		t.Fatalf("gi = %d, want 10 (inst cap)", gi)
	}
	if blk.FallPC != p.Entry+40 {
		t.Fatalf("FallPC = %#x", blk.FallPC)
	}
}

func TestTranslateInnerCycleStops(t *testing.T) {
	// A biased branch that jumps backwards to a non-entry PC would spin
	// the translator without the visited check.
	b, p := fetchFor(t, `
main:
	addi t0, t0, 1
inner:
	addi t1, t1, 1
	blt t1, t2, inner
	ecall
`)
	oracle := func(pc uint64) (bool, bool) { return true, true }
	blk, _, err := translate(b, p.Entry, oracle, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if blk.FallPC != p.MustSymbol("inner") {
		t.Fatalf("FallPC = %#x, want inner loop head", blk.FallPC)
	}
}

func TestInvertBranchTotal(t *testing.T) {
	pairs := map[riscv.Op]riscv.Op{
		riscv.BEQ: riscv.BNE, riscv.BNE: riscv.BEQ,
		riscv.BLT: riscv.BGE, riscv.BGE: riscv.BLT,
		riscv.BLTU: riscv.BGEU, riscv.BGEU: riscv.BLTU,
	}
	for op, want := range pairs {
		got, ok := invertBranch(op)
		if !ok || got != want {
			t.Errorf("invert(%s) = %s, %v, want %s", op, got, ok, want)
		}
	}
	if _, ok := invertBranch(riscv.ADD); ok {
		t.Error("invertBranch(ADD) must report ok=false")
	}
}

// Scheduler-level checks on a compiled block.
func TestCompileRespectsSlotCaps(t *testing.T) {
	b, p := fetchFor(t, `
main:
	ld t0, 0(s0)
	ld t1, 8(s0)
	mul t2, t0, t1
	mul t3, t1, t0
	add t4, t2, t3
	sd t4, 16(s0)
	ecall
`)
	blk, gi, err := translate(b, p.Entry, nil, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	cfg := vliw.DefaultConfig()
	res, err := compile(blk, gi, &cfg, core.ModeUnsafe)
	if err != nil {
		t.Fatal(err)
	}
	for bi, bun := range res.Block.Bundles {
		if len(bun) != cfg.Width() {
			t.Fatalf("bundle %d has width %d", bi, len(bun))
		}
		for si, syl := range bun {
			if syl.Kind == vliw.KNop {
				continue
			}
			need := vliw.CapFor(syl.Kind, syl.Op)
			if cfg.Slots[si]&need == 0 {
				t.Errorf("bundle %d slot %d: %s needs cap %#x, slot provides %#x",
					bi, si, syl, need, cfg.Slots[si])
			}
		}
	}
}

func TestCompileOrdersChkBeforeLaterStores(t *testing.T) {
	// lds speculation: the chk must precede any later store so the MCB
	// never sees stale entries.
	b, p := fetchFor(t, `
main:
	sd t0, 0(s0)
	ld t1, 0(s1)
	sd t2, 0(s2)
	ecall
`)
	blk, gi, err := translate(b, p.Entry, nil, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	cfg := vliw.DefaultConfig()
	res, err := compile(blk, gi, &cfg, core.ModeUnsafe)
	if err != nil {
		t.Fatal(err)
	}
	chkCycle, store2Cycle := -1, -1
	storesSeen := 0
	for bi, bun := range res.Block.Bundles {
		for _, syl := range bun {
			switch syl.Kind {
			case vliw.KChk:
				chkCycle = bi
			case vliw.KStore:
				storesSeen++
				if storesSeen == 2 {
					store2Cycle = bi
				}
			}
		}
	}
	if chkCycle < 0 {
		t.Skip("no speculation materialised (alias analysis proved disjoint)")
	}
	if store2Cycle >= 0 && chkCycle >= store2Cycle {
		t.Fatalf("chk at bundle %d not before the later store at %d", chkCycle, store2Cycle)
	}
}

func TestCompileReportsMitigation(t *testing.T) {
	// The Fig. 1 gadget as raw guest code, compiled directly.
	b, p := fetchFor(t, `
main:
	bgeu a0, t0, out
	add t1, s0, a0
	lbu t2, 0(t1)
	slli t2, t2, 7
	add t3, s1, t2
	lbu t4, 0(t3)
out:
	ecall
`)
	oracle := func(pc uint64) (bool, bool) { return false, true } // follow fall-through
	blk, gi, err := translate(b, p.Entry, oracle, defaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	cfg := vliw.DefaultConfig()
	res, err := compile(blk, gi, &cfg, core.ModeGhostBusters)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.PatternFound() {
		t.Fatal("the Fig. 1 gadget must be detected")
	}
	if len(res.Report.RiskyLoads) != 1 {
		t.Fatalf("risky loads = %v", res.Report.RiskyLoads)
	}
	// The translated block must not contain a dismissable form of the
	// risky (second) load: it was pinned.
	text := res.Block.String()
	if !strings.Contains(text, "br.") {
		t.Fatalf("no branch in block:\n%s", text)
	}
}
