package dbt

import (
	"errors"
	"strings"
	"testing"

	"ghostbusters/internal/riscv"
	"ghostbusters/internal/trap"
)

// runForFault assembles src, applies patch to the program (nil = none),
// runs it under cfg and returns the guest trap. It fails the test if the
// run succeeds or dies on a non-trap error.
func runForFault(t *testing.T, src string, patch func(*riscv.Program), cfg Config) (*trap.Fault, *Machine) {
	t.Helper()
	p, err := riscv.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if patch != nil {
		patch(p)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Release)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err == nil {
		t.Fatalf("expected a guest trap, got clean exit code %d", res.Exit.Code)
	}
	f := trap.As(err)
	if f == nil {
		t.Fatalf("expected a *trap.Fault, got %T: %v", err, err)
	}
	return f, m
}

// TestGuestTrapPaths drives each malformed-guest class through both
// execution modes and checks that the surfaced fault carries the right
// kind, guest PC and faulting address.
func TestGuestTrapPaths(t *testing.T) {
	// Text base is 0x10000 and each case puts the faulting instruction
	// at a known offset, so expected PCs are exact.
	cases := []struct {
		name     string
		src      string
		patch    func(*riscv.Program)
		tweak    func(*Config)
		wantKind trap.Kind
		wantPC   uint64 // 0 = don't check
		wantAddr uint64 // 0 = don't check
	}{
		{
			name:     "misaligned load under strict alignment",
			src:      "main:\n\tld t1, 1(zero)\n",
			tweak:    func(c *Config) { c.StrictAlign = true },
			wantKind: trap.MisalignedAccess,
			wantPC:   0x10000,
			wantAddr: 1,
		},
		{
			name: "out-of-range load",
			// lui t0, 0x40000 -> t0 = 0x40000000: aligned, far beyond the
			// 16 MiB guest image, and clear of rv64 lui sign extension.
			src:      "main:\n\tlui t0, 0x40000\n\tld t1, 0(t0)\n",
			wantKind: trap.OutOfRangeAccess,
			wantPC:   0x10004,
			wantAddr: 0x40000000,
		},
		{
			name:     "out-of-range store",
			src:      "main:\n\tlui t0, 0x40000\n\tsd t1, 0(t0)\n",
			wantKind: trap.OutOfRangeAccess,
			wantPC:   0x10004,
			wantAddr: 0x40000000,
		},
		{
			name:     "jump to non-text address",
			src:      "main:\n\tlui t0, 0x9000\n\tjr t0\n",
			wantKind: trap.InvalidBranchTarget,
			wantPC:   0x9000000,
			wantAddr: 0x9000000,
		},
		{
			name: "illegal opcode",
			src:  "main:\n\tnop\n\tnop\n\tnop\n",
			patch: func(p *riscv.Program) {
				p.Text[1] = 0xFFFFFFFF
			},
			wantKind: trap.IllegalInstruction,
			wantPC:   0x10004,
		},
		{
			name:     "cycle budget exhaustion",
			src:      "main:\n\tj main\n",
			tweak:    func(c *Config) { c.MaxCycles = 1000 },
			wantKind: trap.CycleBudgetExceeded,
		},
	}

	modes := map[string]func(*Config){
		"interp":     func(c *Config) { c.DisableTranslation = true },
		"translated": func(c *Config) { c.HotThreshold = 1; c.TraceThreshold = 3 },
	}

	for _, tc := range cases {
		for mname, mtweak := range modes {
			t.Run(tc.name+"/"+mname, func(t *testing.T) {
				cfg := DefaultConfig()
				mtweak(&cfg)
				if tc.tweak != nil {
					tc.tweak(&cfg)
				}
				f, m := runForFault(t, tc.src, tc.patch, cfg)
				if f.Kind != tc.wantKind {
					t.Fatalf("kind = %s, want %s (fault: %v)", f.Kind, tc.wantKind, f)
				}
				if tc.wantPC != 0 && f.PC != tc.wantPC {
					t.Fatalf("pc = %#x, want %#x (fault: %v)", f.PC, tc.wantPC, f)
				}
				if tc.wantAddr != 0 && f.Addr != tc.wantAddr {
					t.Fatalf("addr = %#x, want %#x (fault: %v)", f.Addr, tc.wantAddr, f)
				}
				if f.Cycle == 0 {
					t.Fatalf("fault carries no cycle count: %v", f)
				}
				if f.Injected {
					t.Fatalf("organic fault marked injected: %v", f)
				}
				// Per-kind count, not the total: in translated mode a
				// region containing the bad instruction may additionally
				// record a translation failure before falling back.
				if got := m.stats.Traps.Get(tc.wantKind); got != 1 {
					t.Fatalf("Stats.Traps.Get(%s) = %d, want 1 (%s)", tc.wantKind, got, m.stats.Traps.String())
				}
			})
		}
	}
}

// TestMisalignedAccessDefaultOff checks the default (paper-faithful)
// behaviour: unaligned data accesses are handled in hardware, so a
// misaligned in-range load succeeds unless StrictAlign is set.
func TestMisalignedAccessDefaultOff(t *testing.T) {
	src := "main:\n\tlui t0, 0x10\n\taddi t0, t0, 0x401\n\tld a0, 0(t0)\n\tecall\n"
	res, _ := runSrc(t, src, DefaultConfig())
	if res.Exit.Code != 0 {
		t.Fatalf("misaligned load with StrictAlign off: exit %d", res.Exit.Code)
	}
}

// TestTrapErrorText checks the rendered fault is self-describing: kind,
// pc and the detail all appear in Error().
func TestTrapErrorText(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableTranslation = true
	f, _ := runForFault(t, "main:\n\tlui t0, 0x9000\n\tjr t0\n", nil, cfg)
	msg := f.Error()
	for _, want := range []string{"invalid-branch-target", "0x9000000"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("fault text %q missing %q", msg, want)
		}
	}
}

// TestFaultInjectionDeterminism runs the same guest with the same
// injection seed twice and requires identical faults, then with a
// different seed and requires the PRNG stream to actually differ
// (observable as a different faulting cycle or a clean run).
func TestFaultInjectionDeterminism(t *testing.T) {
	// The loop body does real loads and stores: cache-fault injection
	// hooks architectural bus accesses, so a pure-ALU guest would never
	// give the injector a chance to fire.
	src := `
main:
	li t0, 2000
	lui t1, 0x11
loop:
	sd t0, 0(t1)
	ld t2, 0(t1)
	addi t0, t0, -1
	bnez t0, loop
	li a0, 0
	ecall
`
	run := func(seed uint64) *trap.Fault {
		cfg := DefaultConfig()
		cfg.FaultInject = &FaultInject{Seed: seed, CacheFaultRate: 0.01}
		p, err := riscv.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Release()
		if err := m.Load(p); err != nil {
			t.Fatal(err)
		}
		_, rerr := m.Run()
		if rerr == nil {
			return nil
		}
		f := trap.As(rerr)
		if f == nil {
			t.Fatalf("non-trap error under injection: %v", rerr)
		}
		if !f.Injected || !f.Transient() {
			t.Fatalf("injected fault not marked transient: %v", f)
		}
		return f
	}

	a1, a2 := run(7), run(7)
	if a1 == nil || a2 == nil {
		t.Fatal("expected seed 7 to inject a cache fault in this guest")
	}
	if a1.Kind != a2.Kind || a1.PC != a2.PC || a1.Addr != a2.Addr || a1.Cycle != a2.Cycle {
		t.Fatalf("same seed, different faults:\n  %v\n  %v", a1, a2)
	}
	for seed := uint64(8); seed < 24; seed++ {
		b := run(seed)
		if b == nil || b.Cycle != a1.Cycle || b.Addr != a1.Addr {
			return // stream diverged, as it must
		}
	}
	t.Fatal("16 different seeds reproduced the seed-7 fault exactly; injector ignores the seed")
}

// TestInjectedTranslationFailureFallsBack checks graceful degradation:
// with translation failure injection at 100%, every hot region falls
// back to interpretation and the guest still runs to completion with
// correct architectural results.
func TestInjectedTranslationFailureFallsBack(t *testing.T) {
	src := `
main:
	li t0, 100
	li a0, 0
loop:
	addi a0, a0, 3
	addi t0, t0, -1
	bnez t0, loop
	ecall
`
	cfg := DefaultConfig()
	cfg.HotThreshold = 1
	cfg.TraceThreshold = 3
	cfg.FaultInject = &FaultInject{Seed: 1, TranslationFailureRate: 1}
	res, m := runSrc(t, src, cfg)
	if res.Exit.Code != 300 {
		t.Fatalf("exit = %d, want 300", res.Exit.Code)
	}
	if res.Stats.Blocks != 0 || res.Stats.Traces != 0 {
		t.Fatalf("translation succeeded despite 100%% injected failure: %d blocks, %d traces",
			res.Stats.Blocks, res.Stats.Traces)
	}
	if got := m.stats.Traps.Get(trap.TranslationFailure); got == 0 {
		t.Fatal("no translation-failure traps recorded")
	}
	// Injected failures are transient: the region must NOT be
	// blacklisted the way persistently untranslatable code is.
	if len(m.noTrans) != 0 {
		t.Fatalf("injected translation failures blacklisted %d regions", len(m.noTrans))
	}
}

// TestSpuriousInterruptInjection checks injected interrupts surface as
// transient SpuriousInterrupt faults (so the harness retry path can
// re-run them), not as the cooperative-stop ErrInterrupted.
func TestSpuriousInterruptInjection(t *testing.T) {
	src := "main:\n\tli t0, 100000\nloop:\n\taddi t0, t0, -1\n\tbnez t0, loop\n\tecall\n"
	cfg := DefaultConfig()
	cfg.DisableTranslation = true
	cfg.FaultInject = &FaultInject{Seed: 3, SpuriousInterruptRate: 0.5}
	p, err := riscv.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	_, rerr := m.Run()
	if errors.Is(rerr, ErrInterrupted) {
		t.Fatalf("spurious-interrupt injection surfaced as ErrInterrupted, want a transient fault: %v", rerr)
	}
	f := trap.As(rerr)
	if f == nil || f.Kind != trap.SpuriousInterrupt {
		t.Fatalf("expected a spurious-interrupt fault, got %v", rerr)
	}
	if !f.Injected || !f.Transient() {
		t.Fatalf("spurious interrupt not marked injected+transient: %v", f)
	}
	if got := m.stats.Traps.Get(trap.SpuriousInterrupt); got == 0 {
		t.Fatal("no spurious-interrupt traps recorded")
	}
}
