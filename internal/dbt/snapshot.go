package dbt

import (
	"ghostbusters/internal/obs"
	"ghostbusters/internal/trap"
)

// Snapshot flattens the run's counters into the unified metrics map of
// the observability layer. The names are the stable contract shared by
// `gbrun -stats -json` and the `metrics` field of gbbench's perf JSON
// (see obs.Snapshot): never rename or repurpose one — add a new name
// instead. Trap counters appear as "trap.<kind>" and only when
// non-zero; every other metric is always present.
func (s Stats) Snapshot(cycles uint64) obs.Snapshot {
	snap := obs.Snapshot{
		"sim.cycles":  cycles,
		"sim.instret": s.Instret,

		"interp.insts": s.InterpInsts,

		"dbt.blocks":            uint64(s.Blocks),
		"dbt.traces":            uint64(s.Traces),
		"dbt.block_execs":       s.BlockExecs,
		"dbt.deopts":            uint64(s.Deopts),
		"dbt.compile_errors":    uint64(s.CompileErrs),
		"dbt.translations":      uint64(s.Translations),
		"dbt.smc_invalidations": s.SMCInvalidations,

		"tcache.hits":   uint64(s.TCacheHits),
		"tcache.misses": uint64(s.TCacheMisses),

		"core.bundles":       s.Bundles,
		"core.side_exits":    s.SideExits,
		"core.recoveries":    s.Recoveries,
		"core.spec_loads":    s.SpecLoads,
		"core.spec_squashes": s.SpecSquash,

		"mitigation.static_spec_loads": uint64(s.StaticSpecLoads),
		"mitigation.patterns_found":    uint64(s.PatternsFound),
		"mitigation.risky_loads":       uint64(s.RiskyLoads),
		"mitigation.guard_edges":       uint64(s.GuardEdges),

		"cache.hits":    s.Cache.Hits,
		"cache.misses":  s.Cache.Misses,
		"cache.flushes": s.Cache.Flushes,

		"predecode.hits":          s.Pred.Hits,
		"predecode.fills":         s.Pred.Fills,
		"predecode.bypasses":      s.Pred.Bypasses,
		"predecode.invalidations": s.Pred.Invalidations,
	}
	for k, n := range s.Traps {
		if n != 0 {
			snap["trap."+trap.Kind(k).String()] = n
		}
	}
	return snap
}

// Snapshot returns the run's unified metrics view (see Stats.Snapshot).
func (r *Result) Snapshot() obs.Snapshot { return r.Stats.Snapshot(r.Cycles) }
