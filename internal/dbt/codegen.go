package dbt

import (
	"fmt"
	"sort"

	"ghostbusters/internal/core"
	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/ir"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/vliw"
)

// CompileResult bundles the translated code with the mitigation report.
type CompileResult struct {
	Block  *vliw.Block
	Report core.Report

	// Passes is the per-pass breakdown of the mitigation pipeline the
	// mode resolved to, in application order.
	Passes []pipeline.PassReport

	// Audit carries the per-block provenance report and the mitigated
	// IR block it describes, populated only when compileOpts.Audit is
	// set (Config.Audit); nil otherwise — the unaudited translation
	// path performs no provenance bookkeeping at all.
	Audit   *ir.AuditReport
	AuditIR *ir.Block
}

// compileOpts tweaks the back end per block.
type compileOpts struct {
	// DisableMemSpec forces memory speculation off (adaptive
	// retranslation of blocks with recovery storms).
	DisableMemSpec bool
	// Audit collects the poison-provenance audit report during
	// mitigation and retains the IR block for replay/rendering.
	Audit bool
}

// compile runs the full back end on one IR block: mitigation, graph
// construction, list scheduling, syllable emission, recovery-slice
// generation. guestInsts is the number of guest instructions the block
// covers.
func compile(b *ir.Block, guestInsts int, cfg *vliw.Config, mode core.Mode) (*CompileResult, error) {
	return compileWith(b, guestInsts, cfg, mode, compileOpts{})
}

func compileWith(b *ir.Block, guestInsts int, cfg *vliw.Config, mode core.Mode, opts compileOpts) (*CompileResult, error) {
	if err := b.Verify(); err != nil {
		return nil, err
	}
	pl, err := pipeline.For(mode)
	if err != nil {
		return nil, err
	}
	var rep core.Report
	var aud *ir.AuditReport
	var passes []pipeline.PassReport
	if opts.Audit {
		rep, aud, passes = pl.ApplyAudited(b)
	} else {
		rep, passes = pl.Apply(b)
	}

	try := func(ctrlSpec, memSpec bool) (*vliw.Block, error) {
		memSpec = memSpec && !opts.DisableMemSpec
		g, err := buildGraph(b, cfg, ctrlSpec, memSpec)
		if err != nil {
			return nil, err
		}
		place, numBundles, err := g.schedule()
		if err != nil {
			return nil, err
		}
		return g.emit(place, numBundles, guestInsts)
	}
	blk, err := try(true, true)
	if err == errHiddenOverflow {
		blk, err = try(false, true) // no branch speculation
	}
	if err == errHiddenOverflow {
		blk, err = try(false, false) // no speculation at all
	}
	if err != nil {
		return nil, err
	}
	res := &CompileResult{Block: blk, Report: rep, Passes: passes}
	if opts.Audit {
		res.Audit, res.AuditIR = aud, b
	}
	return res, nil
}

// destPhys returns the physical destination register of an instruction
// node (hidden when speculative, architectural otherwise, 0 if none).
func (g *graph) destPhys(i int) uint8 {
	nd := &g.nodes[i]
	if nd.hiddenDest {
		return nd.hidden
	}
	d := g.b.Insts[i].DestArch
	if d > 0 {
		return uint8(d)
	}
	return 0
}

// operandPhys resolves an IR operand to a physical register.
func (g *graph) operandPhys(op ir.Operand) uint8 {
	switch op.Kind {
	case ir.OpRegIn:
		return op.Reg
	case ir.OpInst:
		return g.destPhys(op.Inst)
	}
	return 0
}

// syllable materialises the VLIW operation for a node.
func (g *graph) syllable(id int) (vliw.Syllable, error) {
	nd := &g.nodes[id]
	switch nd.kind {
	case nChk:
		return vliw.Syllable{Kind: vliw.KChk, Tag: nd.tag, Rec: -1, GuestPC: g.b.Insts[nd.irIdx].PC}, nil
	case nCommit:
		src := &g.nodes[nd.irIdx]
		return vliw.Syllable{
			Kind:    vliw.KCommit,
			Dst:     uint8(g.b.Insts[nd.irIdx].DestArch),
			Ra:      src.hidden,
			GuestPC: g.b.Insts[nd.irIdx].PC,
		}, nil
	}

	in := &g.b.Insts[nd.irIdx]
	s := vliw.Syllable{Kind: nd.sylKind, Op: in.Op, GuestPC: in.PC}
	switch nd.sylKind {
	case vliw.KNop: // fence: ordering only

	case vliw.KMovI:
		s.Dst = g.destPhys(nd.irIdx)
		s.Imm = in.Imm

	case vliw.KAluRR:
		s.Dst = g.destPhys(nd.irIdx)
		s.Ra = g.operandPhys(in.A)
		s.Rb = g.operandPhys(in.B)

	case vliw.KAluRI:
		s.Dst = g.destPhys(nd.irIdx)
		s.Ra = g.operandPhys(in.A)
		s.Imm = in.Imm

	case vliw.KLoad, vliw.KLoadD, vliw.KLoadS:
		s.Dst = g.destPhys(nd.irIdx)
		s.Ra = g.operandPhys(in.A)
		s.Imm = in.Imm
		s.Tag = nd.tag

	case vliw.KStore:
		s.Ra = g.operandPhys(in.A)
		s.Rb = g.operandPhys(in.B)
		s.Imm = in.Imm

	case vliw.KBrExit:
		s.Ra = g.operandPhys(in.A)
		s.Rb = g.operandPhys(in.B)
		s.Imm = int64(in.BranchExit)

	case vliw.KJumpR:
		s.Ra = g.operandPhys(in.A)
		s.Imm = in.Imm

	case vliw.KCsr:
		s.Dst = g.destPhys(nd.irIdx)
		s.Imm = in.Imm

	case vliw.KFlush:
		s.Ra = g.operandPhys(in.A)

	default:
		return s, fmt.Errorf("dbt: cannot emit node kind %v", nd.sylKind)
	}
	return s, nil
}

// emit builds the final vliw.Block: syllables placed into bundles,
// dependent loads promoted to dismissable form, recovery slices attached
// to each chk.
func (g *graph) emit(place []placement, numBundles, guestInsts int) (*vliw.Block, error) {
	blk := &vliw.Block{
		EntryPC:    g.b.EntryPC,
		FallPC:     g.b.FallPC,
		GuestInsts: guestInsts,
	}
	width := g.cfg.Width()
	blk.Bundles = make([]vliw.Bundle, numBundles)
	for i := range blk.Bundles {
		blk.Bundles[i] = make(vliw.Bundle, width)
	}

	// Forward slices: for each MCB-speculated load, every node data-
	// dependent on it that executes no later than its chk. Used both for
	// recovery code and for promoting dependent architectural loads to
	// dismissable form (their first execution may use an unvalidated
	// address).
	sliceOf := make(map[int][]int) // load IR index -> slice node ids (scheduled order)
	inAnySlice := make(map[int]bool)
	// Node order for slice propagation: program position then kind rank.
	order := make([]int, len(g.nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := &g.nodes[order[a]], &g.nodes[order[b]]
		if na.pos != nb.pos {
			return na.pos < nb.pos
		}
		return na.kind.rank() < nb.kind.rank()
	})
	for loadIdx, chkID := range g.chkOf {
		chkCycle := place[chkID].cycle
		depends := make([]bool, len(g.nodes))
		depends[loadIdx] = true
		var slice []int
		for _, id := range order {
			nd := &g.nodes[id]
			dep := depends[id]
			if !dep {
				switch nd.kind {
				case nInst:
					in := &g.b.Insts[nd.irIdx]
					if in.A.Kind == ir.OpInst && depends[in.A.Inst] {
						dep = true
					}
					if !in.IsLoad() && in.B.Kind == ir.OpInst && depends[in.B.Inst] {
						dep = true
					}
					if in.IsLoad() && in.B.Kind == ir.OpInst && depends[in.B.Inst] {
						dep = true
					}
				case nCommit:
					dep = depends[nd.irIdx]
				case nChk:
					dep = false // chks are never replayed
				}
			}
			if !dep {
				continue
			}
			depends[id] = true
			if nd.kind == nChk {
				continue
			}
			if place[id].cycle <= chkCycle {
				if nd.kind == nInst {
					in := &g.b.Insts[nd.irIdx]
					if in.IsStore() || in.IsBranch() || in.Op == riscv.JALR {
						return nil, fmt.Errorf("dbt: dependent %s scheduled before chk (cycle %d <= %d)", in.Op, place[id].cycle, chkCycle)
					}
				}
				slice = append(slice, id)
				inAnySlice[id] = true
			}
		}
		sort.SliceStable(slice, func(a, b int) bool {
			pa, pb := place[slice[a]], place[slice[b]]
			if pa.cycle != pb.cycle {
				return pa.cycle < pb.cycle
			}
			return pa.slot < pb.slot
		})
		sliceOf[loadIdx] = slice
	}

	// Promote architectural loads that may execute with an unvalidated
	// address to dismissable form.
	for id := range g.nodes {
		nd := &g.nodes[id]
		if nd.kind == nInst && nd.sylKind == vliw.KLoad && inAnySlice[id] {
			nd.sylKind = vliw.KLoadD
		}
	}

	// Hidden register allocation: linear scan over live ranges. A hidden
	// value lives from its defining bundle to its last reader — data
	// consumers, its commit, and (for lds forward slices) the chk whose
	// recovery may re-read and re-write it.
	if err := g.allocHidden(place, sliceOf); err != nil {
		return nil, err
	}

	// Recovery sequences, one per chk, in tag order for determinism.
	loads := make([]int, 0, len(g.chkOf))
	for l := range g.chkOf {
		loads = append(loads, l)
	}
	sort.Ints(loads)
	recIdx := make(map[int]int16)
	for _, l := range loads {
		var rec []vliw.Syllable
		for _, id := range sliceOf[l] {
			s, err := g.syllable(id)
			if err != nil {
				return nil, err
			}
			if id == l {
				// The failing load re-executes architecturally.
				s.Kind = vliw.KLoad
				s.Tag = 0
			}
			rec = append(rec, s)
		}
		recIdx[l] = int16(len(blk.Recoveries))
		blk.Recoveries = append(blk.Recoveries, rec)
	}

	// Place syllables.
	for id := range g.nodes {
		s, err := g.syllable(id)
		if err != nil {
			return nil, err
		}
		if g.nodes[id].kind == nChk {
			s.Rec = recIdx[g.nodes[id].irIdx]
		}
		p := place[id]
		if blk.Bundles[p.cycle][p.slot].Kind != vliw.KNop {
			return nil, fmt.Errorf("dbt: slot collision at bundle %d slot %d", p.cycle, p.slot)
		}
		blk.Bundles[p.cycle][p.slot] = s
	}
	return blk, nil
}

// allocHidden assigns physical hidden registers (32..63) to every
// hidden-destination node by linear scan over post-schedule live ranges.
// Reuse requires the previous value's last use to be strictly before the
// new definition's bundle, because MCB recovery code re-reads slice
// values after the write phase of the chk's bundle.
func (g *graph) allocHidden(place []placement, sliceOf map[int][]int) error {
	type rng struct {
		id         int
		start, end int
	}
	end := make(map[int]int)
	for id := range g.nodes {
		nd := &g.nodes[id]
		if nd.kind == nInst && nd.hiddenDest {
			end[id] = place[id].cycle
		}
	}
	extend := func(id, cycle int) {
		if e, ok := end[id]; ok && cycle > e {
			end[id] = cycle
		}
	}
	// Data consumers.
	for i := range g.b.Insts {
		in := &g.b.Insts[i]
		ops := [2]ir.Operand{in.A, in.B}
		for oi, op := range ops {
			if oi == 1 && in.IsLoad() {
				continue
			}
			if op.Kind == ir.OpInst {
				extend(op.Inst, place[i].cycle)
			}
		}
	}
	// Commits read their instruction's hidden register.
	for i, m := range g.commitOf {
		extend(i, place[m].cycle)
	}
	// Recovery keeps slice values (and their out-of-slice hidden inputs)
	// live until the chk.
	for load, slice := range sliceOf {
		chkCycle := place[g.chkOf[load]].cycle
		for _, id := range slice {
			nd := &g.nodes[id]
			if nd.kind != nInst {
				continue
			}
			extend(id, chkCycle)
			in := &g.b.Insts[nd.irIdx]
			ops := [2]ir.Operand{in.A, in.B}
			for oi, op := range ops {
				if oi == 1 && in.IsLoad() {
					continue
				}
				if op.Kind == ir.OpInst {
					extend(op.Inst, chkCycle)
				}
			}
		}
	}

	ranges := make([]rng, 0, len(end))
	for id, e := range end {
		ranges = append(ranges, rng{id: id, start: place[id].cycle, end: e})
	}
	sort.Slice(ranges, func(a, b int) bool {
		if ranges[a].start != ranges[b].start {
			return ranges[a].start < ranges[b].start
		}
		return ranges[a].id < ranges[b].id
	})

	free := make([]uint8, 0, vliw.NumRegs-32)
	for r := uint8(32); r < vliw.NumRegs; r++ {
		free = append(free, r)
	}
	type activeEntry struct {
		end int
		reg uint8
	}
	var active []activeEntry
	for _, r := range ranges {
		kept := active[:0]
		for _, a := range active {
			if a.end < r.start {
				free = append(free, a.reg)
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
		if len(free) == 0 {
			return errHiddenOverflow
		}
		reg := free[0]
		free = free[1:]
		g.nodes[r.id].hidden = reg
		active = append(active, activeEntry{end: r.end, reg: reg})
	}
	return nil
}
