package dbt

import (
	"fmt"
	"math/rand"
	"testing"

	"ghostbusters/internal/bus"
	"ghostbusters/internal/cache"
	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/guestmem"
	"ghostbusters/internal/ir"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/vliw"
)

// Scheduler torture: generate random valid IR blocks, compile them under
// every mitigation mode and core geometry, execute the VLIW code, and
// compare the architectural outcome (registers, memory, next PC) against
// a sequential reference evaluation of the IR. This hits the scheduler,
// register allocator, commit/chk machinery and MCB recovery far harder
// than hand-written cases.

const (
	tortureMemBase = 0x20000
	tortureMemSize = 0x1000
)

// refEval executes the block sequentially with architectural semantics.
func refEval(b *ir.Block, regs *[32]uint64, mem *guestmem.Memory) (nextPC uint64, err error) {
	vals := make([]uint64, len(b.Insts))
	read := func(op ir.Operand) uint64 {
		switch op.Kind {
		case ir.OpRegIn:
			return regs[op.Reg]
		case ir.OpInst:
			return vals[op.Inst]
		}
		return 0
	}
	for i := range b.Insts {
		in := &b.Insts[i]
		switch {
		case in.IsLoad():
			addr := read(in.A) + uint64(in.Imm)
			v, err := mem.Read(addr, in.Op.MemSize())
			if err != nil {
				return 0, err
			}
			vals[i] = riscv.ExtendLoad(in.Op, v)
		case in.IsStore():
			addr := read(in.A) + uint64(in.Imm)
			if err := mem.Write(addr, in.Op.MemSize(), read(in.B)); err != nil {
				return 0, err
			}
		case in.IsBranch():
			if riscv.EvalBranch(in.Op, read(in.A), read(in.B)) {
				// Side exit: architectural state is what we have now.
				flushRegs(b, vals, regs, i)
				return in.BranchExit, nil
			}
		default:
			fk, _ := in.Op.Info()
			if fk == riscv.FmtR {
				vals[i] = riscv.EvalALU(in.Op, read(in.A), read(in.B))
			} else {
				vals[i] = riscv.EvalALUImm(in.Op, read(in.A), in.Imm)
			}
		}
	}
	flushRegs(b, vals, regs, len(b.Insts))
	return b.FallPC, nil
}

// flushRegs applies the architectural register writes of instructions
// before position limit, in program order.
func flushRegs(b *ir.Block, vals []uint64, regs *[32]uint64, limit int) {
	for i := 0; i < limit; i++ {
		if d := b.Insts[i].DestArch; d > 0 {
			regs[d] = vals[i]
		}
	}
}

// genBlock builds a random valid IR block. Memory accesses use the two
// dedicated base registers (s4=r20, s5=r21) with bounded offsets so they
// never fault; everything else is fair game.
func genBlock(r *rand.Rand) *ir.Block {
	bu := ir.NewBuilder(0x10000)
	n := 6 + r.Intn(26)
	aluRR := []riscv.Op{riscv.ADD, riscv.SUB, riscv.XOR, riscv.OR, riscv.AND,
		riscv.SLL, riscv.SRL, riscv.SRA, riscv.MUL, riscv.MULW, riscv.ADDW,
		riscv.SUBW, riscv.SLT, riscv.SLTU}
	aluRI := []riscv.Op{riscv.ADDI, riscv.XORI, riscv.ORI, riscv.ANDI,
		riscv.SLTI, riscv.ADDIW}
	loads := []riscv.Op{riscv.LD, riscv.LW, riscv.LWU, riscv.LH, riscv.LBU, riscv.LB}
	stores := []riscv.Op{riscv.SD, riscv.SW, riscv.SH, riscv.SB}

	// Operands obey the renaming invariant: a register reads its CURRENT
	// in-block definition (FromInst) once redefined, the entry value
	// (RegIn) otherwise — exactly what ir.Builder guarantees. Stale
	// definitions are never referenced.
	curDef := map[uint8]int{}
	operand := func() ir.Operand {
		reg := uint8(5 + r.Intn(11))
		if d, ok := curDef[reg]; ok {
			return ir.FromInst(d)
		}
		return ir.RegIn(reg)
	}
	baseReg := func() ir.Operand { return ir.RegIn(uint8(20 + r.Intn(2))) }
	memOff := func() int64 { return int64(8 * r.Intn(64)) }
	// Destinations rotate over a small set to create WAW/WAR pressure.
	dest := func() int8 { return int8(5 + r.Intn(11)) }
	record := func(id int, d int8) {
		curDef[uint8(d)] = id
	}

	branches := 0
	for i := 0; i < n; i++ {
		switch k := r.Intn(10); {
		case k < 4:
			op := aluRR[r.Intn(len(aluRR))]
			d := dest()
			a, bop := operand(), operand()
			record(bu.Emit(ir.Inst{Op: op, A: a, B: bop, DestArch: d, PC: uint64(0x10000 + 4*i)}), d)
		case k < 6:
			op := aluRI[r.Intn(len(aluRI))]
			d := dest()
			a := operand()
			record(bu.Emit(ir.Inst{Op: op, A: a, Imm: int64(r.Intn(2048) - 1024), DestArch: d, PC: uint64(0x10000 + 4*i)}), d)
		case k < 8:
			op := loads[r.Intn(len(loads))]
			d := dest()
			record(bu.Emit(ir.Inst{Op: op, A: baseReg(), Imm: memOff(), DestArch: d, PC: uint64(0x10000 + 4*i)}), d)
		case k < 9:
			op := stores[r.Intn(len(stores))]
			bu.Emit(ir.Inst{Op: op, A: baseReg(), B: operand(), Imm: memOff(), DestArch: -1, PC: uint64(0x10000 + 4*i)})
		default:
			if branches < 3 {
				branches++
				ops := []riscv.Op{riscv.BEQ, riscv.BNE, riscv.BLT, riscv.BGE, riscv.BLTU, riscv.BGEU}
				bu.Emit(ir.Inst{Op: ops[r.Intn(len(ops))], A: operand(), B: operand(),
					DestArch: -1, PC: uint64(0x10000 + 4*i),
					BranchExit: uint64(0x40000 + 0x100*branches)})
			}
		}
	}
	bu.SetFallthrough(0x30000, false)
	return bu.Block()
}

func TestSchedulerTorture(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	// Every registered mitigation pipeline faces the torture blocks, so
	// a newly ported mitigation is differentially checked automatically.
	modes := pipeline.Modes()
	cores := []vliw.Config{vliw.NarrowConfig(), vliw.DefaultConfig(), vliw.WideConfig()}

	trials := 400
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		blk := genBlock(r)
		if err := blk.Verify(); err != nil {
			t.Fatalf("trial %d: generated block invalid: %v", trial, err)
		}

		// Shared random initial state for all runs of this trial.
		var initRegs [32]uint64
		for i := 1; i < 32; i++ {
			initRegs[i] = r.Uint64()
		}
		initRegs[20] = tortureMemBase
		initRegs[21] = tortureMemBase + 0x400
		initMem := make([]byte, tortureMemSize)
		r.Read(initMem)

		// Reference outcome.
		refMem := guestmem.New(tortureMemBase, tortureMemSize)
		_ = refMem.WriteBytes(tortureMemBase, initMem)
		refRegs := initRegs
		wantPC, err := refEval(blk, &refRegs, refMem)
		if err != nil {
			t.Fatalf("trial %d: reference faulted: %v", trial, err)
		}

		for mi, mode := range modes {
			coreCfg := cores[(trial+mi)%len(cores)]
			// compile mutates edges (mitigation): work on a fresh block.
			blk2 := genBlockCopy(blk)
			res, err := compile(blk2, len(blk2.Insts), &coreCfg, mode)
			if err != nil {
				t.Fatalf("trial %d mode %s: compile: %v\n%s", trial, mode, err, blk)
			}
			mem := guestmem.New(tortureMemBase, tortureMemSize)
			_ = mem.WriteBytes(tortureMemBase, initMem)
			b := bus.MustNew(mem, cache.DefaultConfig())
			cpu := vliw.MustNewCore(coreCfg)
			var regs [vliw.NumRegs]uint64
			copy(regs[:32], initRegs[:])
			var cycles uint64
			ei := cpu.Exec(res.Block, &regs, b, &cycles)
			if ei.Fault != nil {
				t.Fatalf("trial %d mode %s: fault: %v\nIR:\n%s\nVLIW:\n%s",
					trial, mode, ei.Fault, blk, res.Block)
			}
			if ei.NextPC != wantPC {
				t.Fatalf("trial %d mode %s: next pc %#x, want %#x\nIR:\n%s\nVLIW:\n%s",
					trial, mode, ei.NextPC, wantPC, blk, res.Block)
			}
			for i := 1; i < 32; i++ {
				if regs[i] != refRegs[i] {
					t.Fatalf("trial %d mode %s: x%d = %#x, want %#x\nIR:\n%s\nVLIW:\n%s",
						trial, mode, i, regs[i], refRegs[i], blk, res.Block)
				}
			}
			got, _ := mem.ReadBytes(tortureMemBase, tortureMemSize)
			want, _ := refMem.ReadBytes(tortureMemBase, tortureMemSize)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d mode %s: mem[%#x] = %#x, want %#x\nIR:\n%s\nVLIW:\n%s",
						trial, mode, tortureMemBase+i, got[i], want[i], blk, res.Block)
				}
			}
		}
	}
}

// genBlockCopy deep-copies a block (compile's mitigation pass mutates
// edge relaxability).
func genBlockCopy(b *ir.Block) *ir.Block {
	cp := &ir.Block{
		EntryPC:        b.EntryPC,
		FallPC:         b.FallPC,
		TerminatorExit: b.TerminatorExit,
		Insts:          append([]ir.Inst(nil), b.Insts...),
		Edges:          append([]ir.Edge(nil), b.Edges...),
	}
	return cp
}

// Self-modifying code: a guest program that stores over its own text
// must observe the new bytes when the patched instruction is next
// interpreted. This is the correctness contract of the predecode side
// table — a store invalidates the decoded slot via the bus hook, so the
// second pass re-decodes from memory. The patched instruction executes
// once before the store (so it is definitely in the table) and once
// after.
func TestSelfModifyingCode(t *testing.T) {
	// The replacement instruction is encoded by the real encoder and
	// materialised in a register with li, then stored over the patch
	// site: addi a0, a0, 100 replaces addi a0, a0, 1.
	newWord, err := riscv.Encode(riscv.Inst{Op: riscv.ADDI, Rd: 10, Rs1: 10, Imm: 100})
	if err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(`
main:
	li a0, 0
	li s1, 0
	la s2, patch
	li s3, %d
loop:
patch:
	addi a0, a0, 1
	sw s3, 0(s2)
	addi s1, s1, 1
	li t0, 2
	blt s1, t0, loop
	ecall
`, newWord)
	// Pass 1 adds 1, pass 2 runs the patched word and adds 100.
	const wantExit = 101

	cfgs := map[string]Config{}
	cfgs["predecode"] = DefaultConfig()
	noPre := DefaultConfig()
	noPre.DisablePredecode = true
	cfgs["no-predecode"] = noPre
	interp := DefaultConfig()
	interp.DisableTranslation = true
	cfgs["interp-predecode"] = interp
	interpNoPre := interp
	interpNoPre.DisablePredecode = true
	cfgs["interp-no-predecode"] = interpNoPre

	cycles := map[string]uint64{}
	for name, cfg := range cfgs {
		res, m := runSrc(t, src, cfg)
		if res.Exit.Code != wantExit {
			t.Fatalf("%s: exit code %d, want %d (patched instruction not observed)",
				name, res.Exit.Code, wantExit)
		}
		cycles[name] = res.Cycles
		if !cfg.DisablePredecode {
			if st := m.PredecodeStats(); st.Invalidations == 0 {
				t.Errorf("%s: store over text invalidated no predecode slots: %+v", name, st)
			}
		}
	}
	// The side table is a host accelerator: cycle counts must be
	// bit-identical with it on and off.
	if cycles["predecode"] != cycles["no-predecode"] {
		t.Errorf("cycle counts diverge with predecode: %d vs %d",
			cycles["predecode"], cycles["no-predecode"])
	}
	if cycles["interp-predecode"] != cycles["interp-no-predecode"] {
		t.Errorf("interpreter cycle counts diverge with predecode: %d vs %d",
			cycles["interp-predecode"], cycles["interp-no-predecode"])
	}
}

// Ensure the generator actually produces the speculation shapes we care
// about (otherwise the torture proves nothing).
func TestTortureGeneratorCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var relaxMem, relaxCtrl, branches, stores int
	for i := 0; i < 200; i++ {
		blk := genBlock(r)
		for _, e := range blk.Edges {
			if e.Relaxable && e.Kind == ir.EdgeMem {
				relaxMem++
			}
			if e.Relaxable && e.Kind == ir.EdgeCtrl {
				relaxCtrl++
			}
		}
		for i := range blk.Insts {
			if blk.Insts[i].IsBranch() {
				branches++
			}
			if blk.Insts[i].IsStore() {
				stores++
			}
		}
	}
	if relaxMem < 100 || relaxCtrl < 100 || branches < 50 || stores < 100 {
		t.Fatalf("generator coverage too thin: mem=%d ctrl=%d br=%d st=%d",
			relaxMem, relaxCtrl, branches, stores)
	}
	_ = fmt.Sprint()
}

// Self-modifying code under the fast backend: here the patched loop is
// hot — translated, upgraded to a trace and chained to itself — when
// the store lands. The store hook must drop the overlapping regions AND
// sever the cached chain links, or the stale chained successor keeps
// executing the old instruction. The loop adds 1 per iteration until
// iteration 40 patches the site to add 2; a wrong exit code means stale
// code ran after the store.
func TestSelfModifyingCodeChained(t *testing.T) {
	newWord, err := riscv.Encode(riscv.Inst{Op: riscv.ADDI, Rd: 10, Rs1: 10, Imm: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(`
main:
	li a0, 0
	li s1, 0
	la s2, patch
	li s3, %d
	li s4, 40
	li t0, 80
loop:
patch:
	addi a0, a0, 1
	bne s1, s4, skip
	sw s3, 0(s2)
skip:
	addi s1, s1, 1
	blt s1, t0, loop
	ecall
`, newWord)
	// Iterations 0..40 run the original +1 (the store fires at the end
	// of iteration 40, after the patch site executed), 41..79 run the
	// patched +2.
	const wantExit = 41*1 + 39*2

	cfgs := map[string]Config{}
	cfgs["chained"] = DefaultConfig()
	unchained := DefaultConfig()
	unchained.DisableChaining = true
	cfgs["unchained"] = unchained
	blocks := DefaultConfig()
	blocks.DisableTraces = true
	cfgs["blocks"] = blocks
	interp := DefaultConfig()
	interp.DisableTranslation = true
	cfgs["interp"] = interp

	cycles := map[string]uint64{}
	for name, cfg := range cfgs {
		res, _ := runSrc(t, src, cfg)
		if res.Exit.Code != wantExit {
			t.Fatalf("%s: exit code %d, want %d (stale translated code survived the store)",
				name, res.Exit.Code, wantExit)
		}
		cycles[name] = res.Cycles
		if !cfg.DisableTranslation {
			// The loop must actually have been translated before the
			// store hit it, and the store must have dropped regions —
			// otherwise this test exercises nothing.
			if res.Stats.Translations < 2 {
				t.Errorf("%s: only %d translations (loop never retranslated after the patch)",
					name, res.Stats.Translations)
			}
			if res.Stats.SMCInvalidations == 0 {
				t.Errorf("%s: store over hot translated text invalidated no regions: %+v",
					name, res.Stats)
			}
		}
	}
	// Chaining is a pure host-side dispatch accelerator: cycle counts
	// must be bit-identical with it on and off, including across the
	// invalidation.
	if cycles["chained"] != cycles["unchained"] {
		t.Errorf("cycle counts diverge with chaining: %d vs %d",
			cycles["chained"], cycles["unchained"])
	}
}
