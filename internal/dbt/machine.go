package dbt

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ghostbusters/internal/bus"
	"ghostbusters/internal/cache"
	"ghostbusters/internal/core"
	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/guestmem"
	"ghostbusters/internal/ir"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/tcache"
	"ghostbusters/internal/trap"
	"ghostbusters/internal/vliw"
)

// Config describes a complete DBT-based processor instance.
type Config struct {
	Mitigation core.Mode
	Cache      cache.Config
	Core       vliw.Config
	Interp     riscv.Timing

	MemBase uint64
	MemSize uint64

	// HotThreshold executions of a block entry trigger first-pass
	// translation; TraceThreshold executions trigger superblock/trace
	// construction along branches whose bias reaches BiasThreshold.
	HotThreshold     uint64
	TraceThreshold   uint64
	BiasThreshold    float64
	MinBranchProfile uint64 // branch executions before bias is trusted

	MaxTraceInsts int
	MaxUnroll     int

	// TranslateCost charges the guest this many cycles per translated
	// instruction. Hybrid-DBT runs the DBT engine on dedicated hardware
	// concurrently with execution, so the default is 0.
	TranslateCost uint64

	// AdaptiveRetranslation enables Transmeta-style deoptimisation: a
	// block whose MCB speculation conflicts on most executions is
	// retranslated without memory speculation (recovery storms are more
	// expensive than the speculation is worth). Off by default: the
	// paper's machines keep speculating, which is what its Spectre v4
	// attack relies on.
	AdaptiveRetranslation bool
	// DeoptWindow and DeoptRatioPct control the deoptimisation trigger:
	// after DeoptWindow executions, a block is retranslated when
	// recoveries*100 >= executions*DeoptRatioPct. Defaults: 16 and 50.
	DeoptWindow   uint64
	DeoptRatioPct uint64

	DisableTranslation bool // pure interpreter (debugging/reference)
	DisableTraces      bool // first-pass blocks only

	// DisableChaining turns off direct block chaining: every translated
	// block dispatch then goes through the outer loop's translation-
	// cache lookup and register-file copies. Chaining is a pure host-
	// side accelerator — guest-visible behaviour (cycle counts,
	// results, trap identity) is identical either way, and the
	// differential tests assert it. Chaining also disables itself
	// whenever a tracer or fault injector is active, so per-dispatch
	// observation windows stay exact.
	DisableChaining bool

	// ChainBudget caps how many translated blocks may run back-to-back
	// before the chained inner loop surfaces to the outer dispatch
	// loop (profiling fairness and prompt interrupt delivery). 0 means
	// the default of 64.
	ChainBudget int

	// TransCache, when non-nil, is the persistent translation cache:
	// compiled regions are looked up before invoking the DBT engine and
	// recorded after fresh compilations, keyed by guest image, run
	// inputs (TCacheSalt), mitigation mode and the full machine
	// configuration. Correct by the simulator's determinism — a cached
	// region installs at exactly the profiling instant a fresh
	// translation would have, with the same cycle charge and report —
	// so guest-visible behaviour is bit-identical with or without it.
	// The machine ignores the cache whenever that premise is at risk:
	// fault injection, Audit, VerifyEncoding, DisableTranslation, and
	// (mid-run) guest stores into its own text.
	TransCache *tcache.Cache

	// TCacheSalt folds run identity living outside the guest image into
	// the translation-cache key — the harness hashes the input arrays it
	// writes into guest memory after load, since they steer profiling
	// and therefore trace formation. Ignored without TransCache.
	TCacheSalt string

	// DisablePredecode turns off the interpreter's decoded-instruction
	// side table, forcing a fetch+decode on every interpreted
	// instruction. The table is purely a host-side accelerator —
	// guest-visible behaviour (cycle counts, results, attack outcomes)
	// is identical either way, and the differential tests assert it.
	DisablePredecode bool

	// MaxCycles aborts runaway guests. 0 means no limit. Exhaustion is a
	// CycleBudgetExceeded trap carrying the PC and cycle count.
	MaxCycles uint64

	// StrictAlign makes architectural data accesses fault on natural-
	// alignment violations (MisalignedAccess). Off by default: the
	// paper's machines handle unaligned data accesses in hardware, and
	// its Spectre v4 guest performs one. Instruction fetch is always
	// 4-byte aligned regardless.
	StrictAlign bool

	// FaultInject, when non-nil, enables the deterministic fault-
	// injection layer (see FaultInject). Injected faults are marked
	// Transient so harness retries can distinguish them from real ones.
	FaultInject *FaultInject

	// Interrupt, when non-nil, is polled by the dispatch loop; once the
	// channel is closed (or receives), Run aborts with ErrInterrupted.
	// The experiment harness wires a context.Context's Done channel here
	// to give every run a wall-clock guard on top of the MaxCycles guest
	// cycle budget.
	Interrupt <-chan struct{}

	// Tracer, when non-nil, receives typed trace events for the whole
	// run — translation, block dispatch, interp transitions,
	// speculation, cache flushes, traps — timestamped in simulated
	// cycles (see internal/obs). The tracer level selects density:
	// obs.LevelBlock for block-granularity events, obs.LevelSpec to add
	// per-speculative-load issue/squash/recovery events. A nil tracer
	// costs nothing on the hot paths (pinned at 0 allocs/op by tests).
	// Tracers are single-threaded: never share one across the parallel
	// cells of an experiment Runner.
	Tracer *obs.Tracer

	// VerifyEncoding round-trips every translated block through the
	// binary VLIW encoding and executes the decoded form — an integrity
	// check that the code cache contents are fully representable in the
	// target ISA (debug builds; small translation-time cost).
	VerifyEncoding bool

	// Audit collects the leakage audit layer's per-block poison
	// provenance: for every pinned access, the chain from the source
	// speculative load through the data flow to the guards it was
	// anchored to (see ir.AuditReport). Translation-time only — the
	// execution hot paths are untouched — and gated like tracing:
	// disabled auditing costs a single branch per translation and is
	// pinned at 0 allocs/op on the run path. Retrieve with
	// Machine.Audit after (or during) a run.
	Audit bool
}

// DefaultConfig returns the standard machine: 4-issue VLIW, 16 KiB data
// cache, GhostBusters disabled (unsafe baseline).
func DefaultConfig() Config {
	return Config{
		Mitigation:       core.ModeUnsafe,
		Cache:            cache.DefaultConfig(),
		Core:             vliw.DefaultConfig(),
		Interp:           riscv.DefaultTiming(),
		MemBase:          0x10000,
		MemSize:          16 << 20,
		HotThreshold:     10,
		TraceThreshold:   30,
		BiasThreshold:    0.9,
		MinBranchProfile: 8, // must be below HotThreshold: branches stop being interpreted (and profiled) once their block is translated
		MaxTraceInsts:    48,
		MaxUnroll:        4,
		DeoptWindow:      16,
		DeoptRatioPct:    50,
		MaxCycles:        4_000_000_000,
	}
}

// Stats aggregates machine counters.
type Stats struct {
	InterpInsts uint64
	BlockExecs  uint64
	Blocks      int // first-pass translations
	Traces      int
	Deopts      int // adaptive retranslations (memory speculation off)
	CompileErrs int

	// Translations counts fresh compilations by this machine's own DBT
	// engine. It stays behind Blocks+Traces when regions were installed
	// from a persistent translation cache instead of being compiled — a
	// fully warm run reports 0.
	Translations int

	// TCacheHits / TCacheMisses count persistent-translation-cache
	// probes (zero when no cache is configured).
	TCacheHits   int
	TCacheMisses int

	// SMCInvalidations counts translated regions dropped because a
	// guest store overwrote code they cover (self-modifying code).
	SMCInvalidations uint64

	// From the VLIW core.
	Bundles    uint64
	SideExits  uint64
	Recoveries uint64
	SpecLoads  uint64
	SpecSquash uint64

	// Aggregated mitigation reports (static, per translated block).
	StaticSpecLoads int
	PatternsFound   int
	RiskyLoads      int
	GuardEdges      int

	// Traps counts every fault raised during the run by kind — both
	// survivable ones (injected translation failures the machine rode
	// out by staying in the interpreter) and the terminal one, if any.
	Traps trap.Counts

	// Instret is the total guest instructions retired (interpreted plus
	// translated), duplicated from Result.Instret so Stats alone can
	// produce a complete metrics Snapshot.
	Instret uint64

	// Cache and Pred capture the memory-system and interpreter
	// side-table counters at run end, so the unified Snapshot covers
	// every subsystem from one value.
	Cache cache.Stats
	Pred  riscv.PredecodeStats
}

// Result reports a finished guest run.
type Result struct {
	Exit    riscv.Event
	Cycles  uint64
	Instret uint64
	Stats   Stats
}

type transEntry struct {
	blk     *vliw.Block
	isTrace bool

	// lo/hi is the guest text extent [lo, hi) this region was
	// translated from; a guest store into it invalidates the region
	// (self-modifying code).
	lo, hi uint64

	// Direct-chaining link cache: resolved successors of this region,
	// patched lazily on first chained dispatch. linkEpoch validates the
	// links against Machine.chainEpoch — any mutation of the
	// translation cache bumps the epoch and thereby severs every link
	// in one step (see chain.go).
	links      [chainLinks]chainLink
	linkEpoch  uint64
	linkVictim uint8

	// Adaptive-retranslation bookkeeping.
	execs     uint64
	recov     uint64
	noMemSpec bool

	// Cycle-attributed profile, maintained on every dispatch (cheap:
	// a handful of counter subtractions against the core's totals).
	// Retranslation (deopt) replaces the entry and restarts the
	// counters — the profile describes the code currently installed.
	cycles    uint64 // simulated cycles spent inside this region
	bundles   uint64 // bundles executed
	sideExits uint64
	specLoads uint64
	squashes  uint64

	// Static mitigation report and host-side translation latency,
	// recorded at translation time.
	staticSpecLoads int
	riskyLoads      int
	guardEdges      int
	pattern         bool
	transNS         int64

	// Audit retention (Config.Audit only): the provenance report and
	// the mitigated IR block it replays against. Deopts and trace
	// upgrades replace the whole entry, so the audit always describes
	// the code currently installed at this PC.
	audit   *ir.AuditReport
	auditIR *ir.Block
}

type brStat struct{ taken, total uint64 }

// Machine is the DBT-based processor: guest memory and data cache shared
// between the software interpreter (cold code, profiling) and the VLIW
// core (translated code), plus the translation cache.
type Machine struct {
	cfg   Config
	mem   *guestmem.Memory
	b     *bus.Bus
	core  *vliw.Core
	state riscv.State
	vregs [vliw.NumRegs]uint64

	// pred caches decoded instructions for the interpreter over the
	// loaded program's text; nil when disabled or before Load. Guest
	// stores invalidate overlapping entries via the bus store hook.
	pred *riscv.Predecode

	cycles uint64

	// ts owns the translation-state maps below; they are leased from a
	// package pool and returned by Release, so the harness's
	// create/release churn reuses map storage instead of thrashing the
	// GC. entries values are pointers so chain links can bump a
	// block's profile counter without a map lookup.
	ts       *transState
	entries  map[uint64]*uint64
	branches map[uint64]*brStat
	trans    map[uint64]*transEntry
	noTrans  map[uint64]struct{}

	// chainEpoch versions the chain links cached on transEntries: it
	// starts at 1 and is bumped by every translation-cache mutation
	// (install, deopt, blacklist, SMC invalidation), lazily severing
	// all links. transLo/transHi bound the guest text covered by any
	// translated region, so the store hook can reject non-code stores
	// with two compares.
	chainEpoch uint64
	transLo    uint64
	transHi    uint64

	// tcr is this run's view of the persistent translation cache (nil
	// when no cache is configured or the run is ineligible). A guest
	// store into [textLo, textHi) — self-modifying code — abandons it:
	// cached regions describe the original image. textLo/textHi is the
	// loaded program's text extent.
	tcr    *tcache.Run
	textLo uint64
	textHi uint64

	inj *injector

	// tr is the observability tracer (nil when tracing is off);
	// wasTrans tracks the last dispatch mode so translated→interpreter
	// transitions can be traced.
	tr       *obs.Tracer
	wasTrans bool

	// transHostNS accumulates host wall-clock nanoseconds spent
	// translating regions installed on this machine. It lives outside
	// Stats deliberately: Stats is compared by struct equality in
	// determinism tests, and host time is nondeterministic.
	transHostNS int64

	stats Stats
}

// New builds a machine; the configuration is validated eagerly.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Cache.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemSize == 0 {
		return nil, fmt.Errorf("dbt: MemSize must be positive")
	}
	if cfg.BiasThreshold <= 0.5 || cfg.BiasThreshold > 1 {
		return nil, fmt.Errorf("dbt: BiasThreshold %v out of (0.5, 1]", cfg.BiasThreshold)
	}
	mem := guestmem.NewPooled(cfg.MemBase, cfg.MemSize)
	mem.StrictAlign = cfg.StrictAlign
	b, err := bus.New(mem, cfg.Cache)
	if err != nil {
		return nil, err
	}
	c, err := vliw.NewCore(cfg.Core)
	if err != nil {
		return nil, err
	}
	ts := transPool.Get().(*transState)
	m := &Machine{
		cfg:        cfg,
		mem:        mem,
		b:          b,
		core:       c,
		ts:         ts,
		entries:    ts.entries,
		branches:   ts.branches,
		trans:      ts.trans,
		noTrans:    ts.noTrans,
		chainEpoch: 1,
		transLo:    ^uint64(0),
	}
	if cfg.FaultInject.enabled() {
		m.inj = newInjector(*cfg.FaultInject)
		m.b.OnAccess = m.inj.busHook(m)
	}
	if cfg.Tracer.BlockOn() {
		m.tr = cfg.Tracer
		m.core.Tracer = cfg.Tracer
		// Cache flushes (the attacker's half of the side channel) are
		// observed at the cache itself; the closure supplies the cycle
		// timestamp the cache cannot know. m.cycles is live even inside
		// translated blocks: the core advances it through a pointer.
		m.b.DC.OnFlush = func(addr uint64, lines int, all bool) {
			var allArg uint64
			if all {
				allArg = 1
			}
			m.tr.Emit(obs.Event{Kind: obs.EvCacheFlush, Cycle: m.cycles,
				Arg1: uint64(lines), Arg2: allArg, Arg3: addr})
		}
	}
	return m, nil
}

// Mem exposes guest memory (test setup, result extraction).
func (m *Machine) Mem() *guestmem.Memory { return m.mem }

// Bus exposes the memory system (cache inspection in tests).
func (m *Machine) Bus() *bus.Bus { return m.b }

// Cycles returns the current cycle counter.
func (m *Machine) Cycles() uint64 { return m.cycles }

// TranslateHostNS returns the host wall-clock nanoseconds spent
// translating the regions installed on this machine — the
// translate-vs-execute split the harness attributes to each cell's
// host span. Kept off Stats so run results stay comparable by
// struct equality.
func (m *Machine) TranslateHostNS() int64 { return m.transHostNS }

// State returns the architectural register state (for inspection).
func (m *Machine) State() *riscv.State { return &m.state }

// Load places an assembled program into guest memory and points the PC
// at its entry. The stack pointer is set to the top of memory. Unless
// disabled, a predecode table is set up over the text region and wired
// to the bus store hook, so self-modifying code invalidates stale
// entries no matter which execution mode issued the store.
func (m *Machine) Load(p *riscv.Program) error {
	for i, w := range p.Text {
		if err := m.mem.Write(p.TextBase+uint64(4*i), 4, uint64(w)); err != nil {
			return fmt.Errorf("dbt: loading text: %w", err)
		}
	}
	if len(p.Data) > 0 {
		if err := m.mem.WriteBytes(p.DataBase, p.Data); err != nil {
			return fmt.Errorf("dbt: loading data: %w", err)
		}
	}
	if !m.cfg.DisablePredecode {
		m.pred = riscv.NewPredecode(p.TextBase, len(p.Text))
	}
	// The store hook serves two invalidation duties: interpreter
	// predecode entries and translated regions (plus their chain
	// links). It is wired even with predecode disabled — translated
	// code must never survive the guest overwriting it.
	m.b.OnStore = m.onGuestStore
	m.textLo = p.TextBase
	m.textHi = p.TextBase + uint64(4*len(p.Text))
	if m.cfg.TransCache != nil && m.tcacheEligible() {
		key := tcache.RunKey(p, m.cfg.Mitigation.String(), m.tcFingerprint(), m.cfg.TCacheSalt)
		m.tcr = m.cfg.TransCache.Run(key)
	}
	m.state = riscv.State{PC: p.Entry}
	m.state.X[2] = m.mem.Top() - 64 // sp
	return nil
}

// tcacheEligible reports whether this run may use the translation
// cache: anything that perturbs or observes the translation process
// itself (fault injection, auditing, encode-verification) opts out, as
// does a machine that never translates.
func (m *Machine) tcacheEligible() bool {
	return !m.cfg.DisableTranslation && !m.cfg.Audit &&
		!m.cfg.VerifyEncoding && m.inj == nil
}

// tcFingerprint renders every configuration field that can influence
// translation output or the run's translation schedule. Runtime-only
// hooks (tracer, interrupt channel, the cache handle itself) are
// scrubbed; everything else — core geometry, cache model, interpreter
// timing, thresholds, mitigation knobs — is part of the key, so a
// config change can never be served stale code.
func (m *Machine) tcFingerprint() string {
	c := m.cfg
	c.Tracer = nil
	c.Interrupt = nil
	c.FaultInject = nil
	c.TransCache = nil
	c.TCacheSalt = ""
	return fmt.Sprintf("%+v", c)
}

// Release recycles the machine's guest memory and translation state
// into their reuse pools. Call it once all results have been read out
// of the machine; the machine (including Mem) must not be used
// afterwards. Release is idempotent, and skipping it is always safe —
// everything is then simply collected by the GC instead of being
// reused.
func (m *Machine) Release() {
	if m.ts != nil {
		// Return the translation-state maps (entries/branches/trans/
		// noTrans) to the pool with their bucket storage intact; the
		// translated blocks themselves are dropped here.
		clear(m.ts.entries)
		clear(m.ts.branches)
		clear(m.ts.trans)
		clear(m.ts.noTrans)
		transPool.Put(m.ts)
		m.ts = nil
		m.entries, m.branches, m.trans, m.noTrans = nil, nil, nil, nil
	}
	m.pred = nil
	if m.mem == nil {
		return
	}
	m.mem.Recycle()
	m.mem = nil
	m.b = nil
}

// PredecodeStats reports the interpreter side-table counters (zero when
// the table is disabled).
func (m *Machine) PredecodeStats() riscv.PredecodeStats {
	return m.pred.Stats()
}

// oracle reports the biased direction of a profiled branch.
func (m *Machine) oracle(pc uint64) (taken, follow bool) {
	st := m.branches[pc]
	if st == nil || st.total < m.cfg.MinBranchProfile {
		return false, false
	}
	bias := float64(st.taken) / float64(st.total)
	if bias >= m.cfg.BiasThreshold {
		return true, true
	}
	if 1-bias >= m.cfg.BiasThreshold {
		return false, true
	}
	return false, false
}

// onEnter profiles a block entry and triggers translation when the
// thresholds are crossed.
func (m *Machine) onEnter(pc uint64) {
	if m.cfg.DisableTranslation {
		return
	}
	if _, bad := m.noTrans[pc]; bad {
		return
	}
	cnt := m.entries[pc]
	if cnt == nil {
		cnt = new(uint64)
		m.entries[pc] = cnt
	}
	*cnt++
	c := *cnt
	e := m.trans[pc]
	switch {
	case e == nil && c >= m.cfg.HotThreshold:
		m.translateAt(pc, false)
	case e != nil && !e.isTrace && !m.cfg.DisableTraces && c >= m.cfg.TraceThreshold:
		m.translateAt(pc, true)
	}
}

func (m *Machine) translateAt(pc uint64, asTrace bool) {
	m.translateWith(pc, asTrace, false)
}

// transFail records a failed translation attempt at pc as a
// TranslationFailure trap and degrades to interpretation. Real failures
// blacklist the entry point (the region stays interpreted for good);
// injected ones are transient, so the entry stays eligible and a later
// hot-threshold crossing retries the translation.
func (m *Machine) transFail(pc uint64, injected bool, cause error) {
	f := trap.Newf(trap.TranslationFailure, "translation of region %#x failed", pc)
	if cause != nil {
		f.Detail += ": " + cause.Error()
	}
	f.PC = pc
	f.Block = pc
	f.Cycle = m.cycles
	f.Injected = injected
	m.stats.Traps.Record(f.Kind)
	if m.tr.BlockOn() {
		m.tr.Emit(obs.Event{Kind: obs.EvTranslateFail, Cycle: m.cycles, PC: pc, Str: f.Detail})
	}
	if !injected {
		m.noTrans[pc] = struct{}{}
		// Chain links cache a "keep profiling this successor" decision
		// that blacklisting reverses; sever them so the decision is
		// re-made against the updated noTrans set.
		m.chainEpoch++
	}
}

func (m *Machine) translateWith(pc uint64, asTrace, noMemSpec bool) {
	if m.inj.translationFailure() {
		m.transFail(pc, true, nil)
		return
	}
	tron := m.tr.BlockOn()
	if tron {
		var tr uint64
		if asTrace {
			tr = 1
		}
		m.tr.Emit(obs.Event{Kind: obs.EvTranslateStart, Cycle: m.cycles, PC: pc, Arg1: tr})
	}
	t0 := time.Now() // host latency; never charged to the guest clock
	if m.tcr != nil {
		if rg := m.tcr.Lookup(pc, asTrace, noMemSpec); rg != nil {
			m.stats.TCacheHits++
			m.installCached(pc, rg, tron, t0)
			return
		}
		m.stats.TCacheMisses++
	}
	lim := translateLimits{MaxInsts: m.cfg.MaxTraceInsts, MaxUnroll: m.cfg.MaxUnroll}
	var orc branchOracle
	if asTrace {
		orc = m.oracle
	} else {
		lim.MaxInsts = 48 // basic blocks are naturally bounded
	}
	irBlk, guestInsts, err := translate(m.b, pc, orc, lim)
	if err != nil {
		m.transFail(pc, false, err)
		return
	}
	opts := compileOpts{DisableMemSpec: noMemSpec, Audit: m.cfg.Audit}
	res, err := compileWith(irBlk, guestInsts, &m.cfg.Core, m.cfg.Mitigation, opts)
	if err != nil {
		m.stats.CompileErrs++
		m.transFail(pc, false, err)
		return
	}
	blk := res.Block
	if m.cfg.VerifyEncoding {
		data, err := vliw.EncodeBlock(blk)
		if err != nil {
			m.stats.CompileErrs++
			m.transFail(pc, false, err)
			return
		}
		decoded, err := vliw.DecodeBlock(data)
		if err != nil {
			m.stats.CompileErrs++
			m.transFail(pc, false, err)
			return
		}
		blk = decoded // execute the decoded form: the encoding is live
	}
	// The guest extent is computed from the pre-encoding block: the
	// binary encoding drops guest PCs, and SMC invalidation needs them.
	lo, hi := blockExtent(res.Block)
	blk.Prepare() // build the threaded-dispatch table off the hot path
	m.install(pc, &transEntry{
		blk: blk, isTrace: asTrace, noMemSpec: noMemSpec,
		lo: lo, hi: hi,
		staticSpecLoads: res.Report.SpeculativeLoads,
		riskyLoads:      len(res.Report.RiskyLoads),
		guardEdges:      res.Report.GuardEdges,
		pattern:         res.Report.PatternFound(),
		transNS:         time.Since(t0).Nanoseconds(),
		audit:           res.Audit,
		auditIR:         res.AuditIR,
	})
	m.stats.Translations++
	if m.tcr != nil {
		// Record the installed block for publication. With the cache
		// active VerifyEncoding is off, so blk is the pre-encoding block
		// and its guest PCs are intact (SMC invalidation needs them).
		m.tcr.Record(&tcache.Region{
			PC: pc, Trace: asTrace, NoMemSpec: noMemSpec,
			Lo: lo, Hi: hi,
			SpecLoads:  res.Report.SpeculativeLoads,
			RiskyLoads: len(res.Report.RiskyLoads),
			GuardEdges: res.Report.GuardEdges,
			Pattern:    res.Report.PatternFound(),
			Block:      blk,
		})
	}
	if asTrace {
		m.stats.Traces++
	} else {
		m.stats.Blocks++
	}
	m.stats.StaticSpecLoads += res.Report.SpeculativeLoads
	if res.Report.PatternFound() {
		m.stats.PatternsFound++
	}
	m.stats.RiskyLoads += len(res.Report.RiskyLoads)
	m.stats.GuardEdges += res.Report.GuardEdges
	m.cycles += m.cfg.TranslateCost * uint64(guestInsts)
	if tron {
		e := m.trans[pc]
		kind := "block"
		if asTrace {
			kind = "trace"
		}
		m.tr.Emit(obs.Event{Kind: obs.EvMitigation, Cycle: m.cycles, PC: pc,
			Arg1: uint64(res.Report.SpeculativeLoads),
			Arg2: uint64(len(res.Report.RiskyLoads)),
			Arg3: uint64(res.Report.GuardEdges)})
		m.tr.Emit(obs.Event{Kind: obs.EvTranslateDone, Cycle: m.cycles, PC: pc,
			Arg1: uint64(blk.GuestInsts), Arg2: uint64(len(blk.Bundles)),
			Arg3: uint64(e.transNS), Str: kind})
		if m.tr.SpecOn() {
			// Counter track: cumulative Spectre-pattern loads found so
			// far (pinned in every mitigating mode), sampled whenever a
			// translation lands.
			m.tr.Emit(obs.Event{Kind: obs.EvCounter, Cycle: m.cycles,
				Arg1: uint64(m.stats.RiskyLoads), Str: obs.CtrPinnedLoads})
		}
	}
}

// installCached installs a region served by the persistent translation
// cache, mirroring the fresh-compilation path exactly: same statistics,
// same guest cycle charge, same trace events — only Translations stays
// untouched, which is how a warm run reports 0 compilations.
func (m *Machine) installCached(pc uint64, rg *tcache.Region, tron bool, t0 time.Time) {
	blk := rg.Block
	blk.Prepare()
	m.install(pc, &transEntry{
		blk: blk, isTrace: rg.Trace, noMemSpec: rg.NoMemSpec,
		lo: rg.Lo, hi: rg.Hi,
		staticSpecLoads: rg.SpecLoads,
		riskyLoads:      rg.RiskyLoads,
		guardEdges:      rg.GuardEdges,
		pattern:         rg.Pattern,
		transNS:         time.Since(t0).Nanoseconds(),
	})
	if rg.Trace {
		m.stats.Traces++
	} else {
		m.stats.Blocks++
	}
	m.stats.StaticSpecLoads += rg.SpecLoads
	if rg.Pattern {
		m.stats.PatternsFound++
	}
	m.stats.RiskyLoads += rg.RiskyLoads
	m.stats.GuardEdges += rg.GuardEdges
	m.cycles += m.cfg.TranslateCost * uint64(blk.GuestInsts)
	if tron {
		kind := "block"
		if rg.Trace {
			kind = "trace"
		}
		m.tr.Emit(obs.Event{Kind: obs.EvMitigation, Cycle: m.cycles, PC: pc,
			Arg1: uint64(rg.SpecLoads),
			Arg2: uint64(rg.RiskyLoads),
			Arg3: uint64(rg.GuardEdges)})
		m.tr.Emit(obs.Event{Kind: obs.EvTranslateDone, Cycle: m.cycles, PC: pc,
			Arg1: uint64(blk.GuestInsts), Arg2: uint64(len(blk.Bundles)),
			Arg3: uint64(m.trans[pc].transNS), Str: kind})
		if m.tr.SpecOn() {
			m.tr.Emit(obs.Event{Kind: obs.EvCounter, Cycle: m.cycles,
				Arg1: uint64(m.stats.RiskyLoads), Str: obs.CtrPinnedLoads})
		}
	}
}

// ErrInterrupted is returned (wrapped) by Run when the configured
// Interrupt channel fires before the guest exits.
var ErrInterrupted = errors.New("run interrupted")

// interruptPollEvery is how many dispatch-loop iterations pass between
// Interrupt channel polls: frequent enough that a cancelled run stops
// within microseconds, rare enough that the interpreter hot loop does
// not pay a per-instruction channel operation.
const interruptPollEvery = 256

// raise finalises a terminal fault: the machine-level context (cycle
// count, and the PC when the lower layer could not know it) is filled
// in, the trap is counted, and the enriched fault is returned for Run
// to surface.
func (m *Machine) raise(f *trap.Fault, pc uint64) *trap.Fault {
	if f.PC == 0 {
		f.PC = pc
	}
	if f.Cycle == 0 {
		f.Cycle = m.cycles
	}
	m.stats.Traps.Record(f.Kind)
	if m.tr.BlockOn() {
		m.tr.Emit(obs.Event{Kind: obs.EvTrap, Cycle: m.cycles, PC: f.PC,
			Arg1: f.Addr, Str: f.Kind.String()})
	}
	return f
}

// Run executes the loaded guest until it exits (ecall/ebreak), faults,
// exceeds the cycle budget, or is interrupted. Guest-triggered failures
// come back as a *trap.Fault (errors.As-compatible) carrying the guest
// PC, cycle count and — for faults inside translated code — the entry
// PC of the translated region.
func (m *Machine) Run() (*Result, error) {
	m.onEnter(m.state.PC)
	poll := 0
	// Chaining keeps per-dispatch observation out of the loop, so it
	// stands down whenever a tracer or fault injector needs to see (or
	// perturb) every dispatch.
	chainOK := !m.cfg.DisableChaining && m.inj == nil && !m.tr.BlockOn()
	budget := m.cfg.ChainBudget
	if budget <= 0 {
		budget = defaultChainBudget
	}
	for {
		if m.cfg.MaxCycles != 0 && m.cycles > m.cfg.MaxCycles {
			f := trap.Newf(trap.CycleBudgetExceeded, "cycle budget exceeded (max %d)", m.cfg.MaxCycles)
			return nil, m.raise(f, m.state.PC)
		}
		if m.cfg.Interrupt != nil || m.inj != nil {
			if poll++; poll >= interruptPollEvery {
				poll = 0
				if m.cfg.Interrupt != nil {
					select {
					case <-m.cfg.Interrupt:
						return nil, fmt.Errorf("dbt: %w at cycle %d", ErrInterrupted, m.cycles)
					default:
					}
				}
				if m.inj.spuriousInterrupt() {
					f := trap.Newf(trap.SpuriousInterrupt, "injected spurious interrupt")
					f.Injected = true
					return nil, m.raise(f, m.state.PC)
				}
			}
		}
		pc := m.state.PC
		if e := m.trans[pc]; e != nil {
			if chainOK {
				f, fpc, err := m.runChain(pc, e, &poll, budget)
				if err != nil {
					return nil, err
				}
				if f != nil {
					return nil, m.raise(f, fpc)
				}
				continue
			}
			tron := m.tr.BlockOn()
			if tron {
				kind := "block"
				if e.isTrace {
					kind = "trace"
				}
				m.tr.Emit(obs.Event{Kind: obs.EvBlockEnter, Cycle: m.cycles, PC: pc,
					Arg1: uint64(e.blk.GuestInsts), Arg2: uint64(len(e.blk.Bundles)), Str: kind})
			}
			m.wasTrans = true
			start := m.cycles
			csBefore := m.core.Stats
			copy(m.vregs[:32], m.state.X[:])
			ei := m.core.Exec(e.blk, &m.vregs, m.b, &m.cycles)
			copy(m.state.X[:], m.vregs[:32])
			m.state.X[0] = 0
			m.stats.BlockExecs++
			// Attribute what this dispatch cost to the region (the
			// -profile ranking): a handful of counter deltas per
			// dispatch, cheap next to executing the block itself.
			cs := m.core.Stats
			e.cycles += m.cycles - start
			e.bundles += cs.Bundles - csBefore.Bundles
			e.sideExits += cs.SideExits - csBefore.SideExits
			e.specLoads += cs.SpecLoads - csBefore.SpecLoads
			e.squashes += cs.SpecSquash - csBefore.SpecSquash
			if ei.Fault != nil {
				if tron {
					m.tr.Emit(obs.Event{Kind: obs.EvBlockExit, Cycle: m.cycles, PC: pc,
						Arg1: ei.FaultPC, Arg3: 1})
				}
				f := ei.Fault
				f.Block = pc
				return nil, m.raise(f, ei.FaultPC)
			}
			if tron {
				var side uint64
				if ei.SideExit {
					side = 1
				}
				m.tr.Emit(obs.Event{Kind: obs.EvBlockExit, Cycle: m.cycles, PC: pc,
					Arg1: ei.NextPC, Arg2: side})
				if m.tr.SpecOn() {
					// Counter track: running data-cache hit rate, sampled
					// at block granularity — dips line up with the flush
					// phases of an attack in the Perfetto view.
					m.tr.Emit(obs.Event{Kind: obs.EvCounter, Cycle: m.cycles,
						Arg1: m.b.DC.Stats().HitRatePct(), Str: obs.CtrCacheHitRate})
				}
			}
			e.execs++
			e.recov += cs.Recoveries - csBefore.Recoveries
			if m.cfg.AdaptiveRetranslation && !e.noMemSpec &&
				e.execs >= m.cfg.DeoptWindow &&
				e.recov*100 >= e.execs*m.cfg.DeoptRatioPct {
				// Recovery storm: this block's memory speculation loses
				// more to rollbacks than it gains; retranslate without it
				// (Transmeta-style adaptive retranslation).
				if tron {
					m.tr.Emit(obs.Event{Kind: obs.EvDeopt, Cycle: m.cycles, PC: pc})
				}
				m.translateWith(pc, e.isTrace, true)
				m.stats.Deopts++
			}
			m.state.PC = ei.NextPC
			m.onEnter(ei.NextPC)
			continue
		}

		if m.wasTrans {
			m.wasTrans = false
			if m.tr.BlockOn() {
				m.tr.Emit(obs.Event{Kind: obs.EvInterpEnter, Cycle: m.cycles, PC: pc})
			}
		}
		res := riscv.StepPredecoded(&m.state, m.b, m.cfg.Interp, m.cycles, m.pred)
		m.cycles += res.Cycles
		m.stats.InterpInsts++
		switch res.Event.Kind {
		case riscv.EvExit, riscv.EvBreak:
			return m.result(res.Event), nil
		case riscv.EvFault:
			return nil, m.raise(trap.From(res.Event.Err), res.Event.Addr)
		}
		if res.IsBranch {
			if res.Taken && m.tr.BlockOn() {
				m.tr.Emit(obs.Event{Kind: obs.EvInterpBranch, Cycle: m.cycles, PC: pc,
					Arg1: res.Target, Str: res.Inst.Op.String()})
			}
			if res.Inst.Op.IsBranch() {
				st := m.branches[pc]
				if st == nil {
					st = &brStat{}
					m.branches[pc] = st
				}
				st.total++
				if res.Taken {
					st.taken++
				}
			}
			if res.Taken {
				m.onEnter(res.Target)
			}
		}
	}
}

func (m *Machine) result(ev riscv.Event) *Result {
	// A clean guest exit publishes this run's fresh translations to the
	// shared cache (and, when configured, to disk). Faulted or
	// interrupted runs never publish: their recording stopped at an
	// arbitrary instant a complete run would overshoot.
	if m.tcr != nil {
		m.tcr.Publish()
		m.tcr = nil
	}
	s := m.stats
	cs := m.core.Stats
	s.Bundles = cs.Bundles
	s.SideExits = cs.SideExits
	s.Recoveries = cs.Recoveries
	s.SpecLoads = cs.SpecLoads
	s.SpecSquash = cs.SpecSquash
	s.Instret = m.state.Instret + m.core.Instret
	s.Cache = m.b.DC.Stats()
	s.Pred = m.pred.Stats()
	return &Result{
		Exit:    ev,
		Cycles:  m.cycles,
		Instret: s.Instret,
		Stats:   s,
	}
}

// TranslatedAt reports whether pc currently has translated code and
// whether it is a trace (test introspection).
func (m *Machine) TranslatedAt(pc uint64) (exists, isTrace bool) {
	e := m.trans[pc]
	if e == nil {
		return false, false
	}
	return true, e.isTrace
}

// BlockAt returns the translated block at pc, for inspection.
func (m *Machine) BlockAt(pc uint64) *vliw.Block {
	if e := m.trans[pc]; e != nil {
		return e.blk
	}
	return nil
}

// DumpIR re-translates the region at pc the same way the DBT engine did
// (trace when one exists, basic block otherwise), applies the
// configured mitigation, and renders the IR data-flow graph in
// Graphviz format with the audited poison analysis overlaid — poisoned
// nodes outlined blue, pinned accesses red with their guard edges
// (dashed red), guards annotated: the paper's Figure 3 for arbitrary
// guest code, under the machine's own mitigation mode.
func (m *Machine) DumpIR(pc uint64) (string, error) {
	e := m.trans[pc]
	asTrace := e != nil && e.isTrace
	lim := translateLimits{MaxInsts: m.cfg.MaxTraceInsts, MaxUnroll: m.cfg.MaxUnroll}
	var orc branchOracle
	if asTrace {
		orc = m.oracle
	}
	irBlk, _, err := translate(m.b, pc, orc, lim)
	if err != nil {
		return "", fmt.Errorf("dbt: DumpIR(%#x): %w", pc, err)
	}
	pl, err := pipeline.For(m.cfg.Mitigation)
	if err != nil {
		return "", fmt.Errorf("dbt: DumpIR(%#x): %w", pc, err)
	}
	_, aud, _ := pl.ApplyAudited(irBlk)
	return irBlk.Dot(aud.Overlay()), nil
}

// HotRegion summarises one translated entry point for profiling output.
// The dynamic counters (Cycles, BundleExecs, ...) are attributed per
// dispatch, so the report ranks regions by where simulated time
// actually went rather than by how often they were entered.
type HotRegion struct {
	PC         uint64
	Entries    uint64 // profiled entry count (interpreter + dispatch)
	Dispatches uint64 // translated executions of this region
	GuestInsts int
	Bundles    int // static bundle count of the translated code
	IsTrace    bool
	Deopted    bool // retranslated without memory speculation

	// Cycle-attributed dynamic profile.
	Cycles      uint64 // simulated cycles spent inside the region
	BundleExecs uint64
	SideExits   uint64
	SpecLoads   uint64
	Squashes    uint64
	Recoveries  uint64

	// Static mitigation report for the installed code.
	StaticSpecLoads int
	RiskyLoads      int
	GuardEdges      int
	PatternFound    bool

	// TransNS is the host-side translation latency in nanoseconds (a
	// property of the simulator's DBT engine, not of guest time).
	TransNS int64
}

// ProfileReport returns the translated regions sorted by attributed
// simulated cycles (hottest first; dispatch count and PC break ties) —
// the DBT engine's own view of where time goes.
func (m *Machine) ProfileReport() []HotRegion {
	out := make([]HotRegion, 0, len(m.trans))
	for pc, e := range m.trans {
		var entered uint64
		if cnt := m.entries[pc]; cnt != nil {
			entered = *cnt
		}
		out = append(out, HotRegion{
			PC:              pc,
			Entries:         entered,
			Dispatches:      e.execs,
			GuestInsts:      e.blk.GuestInsts,
			Bundles:         len(e.blk.Bundles),
			IsTrace:         e.isTrace,
			Deopted:         e.noMemSpec,
			Cycles:          e.cycles,
			BundleExecs:     e.bundles,
			SideExits:       e.sideExits,
			SpecLoads:       e.specLoads,
			Squashes:        e.squashes,
			Recoveries:      e.recov,
			StaticSpecLoads: e.staticSpecLoads,
			RiskyLoads:      e.riskyLoads,
			GuardEdges:      e.guardEdges,
			PatternFound:    e.pattern,
			TransNS:         e.transNS,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cycles != out[b].Cycles {
			return out[a].Cycles > out[b].Cycles
		}
		if out[a].Dispatches != out[b].Dispatches {
			return out[a].Dispatches > out[b].Dispatches
		}
		return out[a].PC < out[b].PC
	})
	return out
}

// TranslatedPCs returns the entry points that currently have translated
// code, in ascending order (gbdump address validation, tooling).
func (m *Machine) TranslatedPCs() []uint64 {
	pcs := make([]uint64, 0, len(m.trans))
	for pc := range m.trans {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(a, b int) bool { return pcs[a] < pcs[b] })
	return pcs
}
