package dbt

import (
	"fmt"
	"sort"
	"strings"

	"ghostbusters/internal/core"
	"ghostbusters/internal/ir"
)

// AuditSchema identifies the machine-wide audit JSON document emitted
// by gbrun -audit-json / gbspectre -audit-json.
const AuditSchema = "ghostbusters/audit/v1"

// BlockAudit pairs one translated region's provenance report with the
// mitigated IR block it replays against (ir.AuditReport.Verify).
type BlockAudit struct {
	PC      uint64
	IsTrace bool
	Report  *ir.AuditReport
	IR      *ir.Block
}

// Audit is the machine-wide aggregation of per-block audit reports:
// every region currently installed in the translation cache, in PC
// order, under the mitigation mode the machine ran with. Deopts and
// trace upgrades replace their entry's report, so the audit always
// describes the code that is actually installed.
type Audit struct {
	Mode   core.Mode
	Blocks []BlockAudit
}

// Audit returns the machine-wide audit, or nil when Config.Audit was
// off (no provenance was collected). Safe to call after Release: the
// translation cache index survives memory recycling.
func (m *Machine) Audit() *Audit {
	if !m.cfg.Audit {
		return nil
	}
	a := &Audit{Mode: m.cfg.Mitigation}
	for pc, e := range m.trans {
		if e.audit == nil {
			continue
		}
		a.Blocks = append(a.Blocks, BlockAudit{PC: pc, IsTrace: e.isTrace, Report: e.audit, IR: e.auditIR})
	}
	sort.Slice(a.Blocks, func(i, j int) bool { return a.Blocks[i].PC < a.Blocks[j].PC })
	return a
}

// Verify replays every block's report against its retained IR —
// guard-edge-backed in ghostbusters mode. The cross-check behind the
// audit's claims: a chain that does not correspond to real operand
// steps and real edges fails here.
func (a *Audit) Verify() error {
	require := a.Mode == core.ModeGhostBusters
	for _, b := range a.Blocks {
		if b.Report == nil || b.IR == nil {
			return fmt.Errorf("dbt: audit block @%#x has no report/IR", b.PC)
		}
		if err := b.Report.Verify(b.IR, require); err != nil {
			return fmt.Errorf("dbt: audit block @%#x: %w", b.PC, err)
		}
	}
	return nil
}

// AuditTotals summarises the machine-wide audit.
type AuditTotals struct {
	Blocks           int
	LoadsAnalyzed    int
	SpeculativeLoads int
	Poisoned         int
	Pinned           int
	Relaxed          int
	GuardEdges       int
	// DepthHist counts provenance chains (poisoned and pinned) by
	// data-flow depth from their source load.
	DepthHist map[int]int
}

// Totals aggregates the per-block reports.
func (a *Audit) Totals() AuditTotals {
	t := AuditTotals{Blocks: len(a.Blocks), DepthHist: map[int]int{}}
	for _, b := range a.Blocks {
		r := b.Report
		t.LoadsAnalyzed += r.LoadsAnalyzed
		t.SpeculativeLoads += r.SpeculativeLoads
		t.Poisoned += len(r.Poisoned)
		t.Pinned += len(r.Pinned)
		t.Relaxed += r.RelaxedLoads
		t.GuardEdges += r.GuardEdges
		for i := range r.Poisoned {
			t.DepthHist[r.Poisoned[i].Depth()]++
		}
		for i := range r.Pinned {
			t.DepthHist[r.Pinned[i].Depth()]++
		}
	}
	return t
}

// --- JSON document (schema ghostbusters/audit/v1) ---

type auditGuardJSON struct {
	Node int    `json:"node"`
	PC   string `json:"pc"`
	Op   string `json:"op"`
	Kind string `json:"kind"`
}

type auditChainJSON struct {
	Node   int              `json:"node"`
	PC     string           `json:"pc"`
	Op     string           `json:"op"`
	Source int              `json:"source"`
	Depth  int              `json:"depth"`
	Path   []int            `json:"path"`
	Guards []auditGuardJSON `json:"guards,omitempty"`
}

type auditBlockJSON struct {
	PC               string           `json:"pc"`
	Kind             string           `json:"kind"` // "block" or "trace"
	LoadsAnalyzed    int              `json:"loads_analyzed"`
	SpeculativeLoads int              `json:"speculative_loads"`
	Relaxed          int              `json:"relaxed"`
	GuardEdges       int              `json:"guard_edges"`
	Pinned           []auditChainJSON `json:"pinned"`
	Poisoned         []auditChainJSON `json:"poisoned"`
}

type auditTotalsJSON struct {
	Blocks           int            `json:"blocks"`
	LoadsAnalyzed    int            `json:"loads_analyzed"`
	SpeculativeLoads int            `json:"speculative_loads"`
	Poisoned         int            `json:"poisoned"`
	Pinned           int            `json:"pinned"`
	Relaxed          int            `json:"relaxed"`
	GuardEdges       int            `json:"guard_edges"`
	DepthHist        map[string]int `json:"depth_hist"`
}

// AuditDoc is the marshalable machine-wide audit document.
type AuditDoc struct {
	Schema string           `json:"schema"`
	Mode   string           `json:"mode"`
	Totals auditTotalsJSON  `json:"totals"`
	Blocks []auditBlockJSON `json:"blocks"`
}

func chainJSON(c *ir.ProvenanceChain) auditChainJSON {
	out := auditChainJSON{
		Node:   c.Node,
		PC:     fmt.Sprintf("%#x", c.PC),
		Op:     c.Op,
		Source: c.Source,
		Depth:  c.Depth(),
		Path:   c.Path,
	}
	for _, g := range c.Guards {
		out.Guards = append(out.Guards, auditGuardJSON{
			Node: g.Node, PC: fmt.Sprintf("%#x", g.PC), Op: g.Op, Kind: g.Kind.String(),
		})
	}
	return out
}

// Doc renders the audit as its stable JSON document.
func (a *Audit) Doc() *AuditDoc {
	t := a.Totals()
	doc := &AuditDoc{
		Schema: AuditSchema,
		Mode:   a.Mode.String(),
		Totals: auditTotalsJSON{
			Blocks:           t.Blocks,
			LoadsAnalyzed:    t.LoadsAnalyzed,
			SpeculativeLoads: t.SpeculativeLoads,
			Poisoned:         t.Poisoned,
			Pinned:           t.Pinned,
			Relaxed:          t.Relaxed,
			GuardEdges:       t.GuardEdges,
			DepthHist:        map[string]int{},
		},
		Blocks: []auditBlockJSON{},
	}
	for d, n := range t.DepthHist {
		doc.Totals.DepthHist[fmt.Sprintf("%d", d)] = n
	}
	for _, b := range a.Blocks {
		kind := "block"
		if b.IsTrace {
			kind = "trace"
		}
		bj := auditBlockJSON{
			PC:               fmt.Sprintf("%#x", b.PC),
			Kind:             kind,
			LoadsAnalyzed:    b.Report.LoadsAnalyzed,
			SpeculativeLoads: b.Report.SpeculativeLoads,
			Relaxed:          b.Report.RelaxedLoads,
			GuardEdges:       b.Report.GuardEdges,
			Pinned:           []auditChainJSON{},
			Poisoned:         []auditChainJSON{},
		}
		for i := range b.Report.Pinned {
			bj.Pinned = append(bj.Pinned, chainJSON(&b.Report.Pinned[i]))
		}
		for i := range b.Report.Poisoned {
			bj.Poisoned = append(bj.Poisoned, chainJSON(&b.Report.Poisoned[i]))
		}
		doc.Blocks = append(doc.Blocks, bj)
	}
	return doc
}

// --- human-readable table ---

func pathString(path []int) string {
	var sb strings.Builder
	for i, n := range path {
		if i > 0 {
			sb.WriteString("->")
		}
		fmt.Fprintf(&sb, "n%d", n)
	}
	return sb.String()
}

func guardString(gs []ir.GuardRef) string {
	var sb strings.Builder
	for i, g := range gs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "n%d %s @%#x (%s)", g.Node, g.Op, g.PC, g.Kind)
	}
	return sb.String()
}

// Format renders the audit as the human-readable explainability table
// gbrun -audit and gbspectre -audit print: one header line of totals,
// a provenance-depth histogram, then per block every pinned access
// with its full chain (source load → data-flow path → guards) and
// every poisoned node with its witness source.
func (a *Audit) Format() string {
	var sb strings.Builder
	t := a.Totals()
	fmt.Fprintf(&sb, "audit mode=%s: %d regions, %d loads analyzed, %d speculative, %d poisoned, %d pinned, %d relaxed, %d guard edges\n",
		a.Mode, t.Blocks, t.LoadsAnalyzed, t.SpeculativeLoads, t.Poisoned, t.Pinned, t.Relaxed, t.GuardEdges)
	if len(t.DepthHist) > 0 {
		depths := make([]int, 0, len(t.DepthHist))
		for d := range t.DepthHist {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		sb.WriteString("provenance depth histogram:")
		for _, d := range depths {
			fmt.Fprintf(&sb, " %d:%d", d, t.DepthHist[d])
		}
		sb.WriteByte('\n')
	}
	for _, b := range a.Blocks {
		kind := "block"
		if b.IsTrace {
			kind = "trace"
		}
		r := b.Report
		fmt.Fprintf(&sb, "%s @%#x: loads=%d spec=%d pinned=%d relaxed=%d guard-edges=%d\n",
			kind, b.PC, r.LoadsAnalyzed, r.SpeculativeLoads, len(r.Pinned), r.RelaxedLoads, r.GuardEdges)
		for i := range r.Pinned {
			c := &r.Pinned[i]
			src := &b.IR.Insts[c.Source]
			fmt.Fprintf(&sb, "  pinned n%d %s @%#x: addr poisoned by n%d %s @%#x via %s (depth %d); guards: %s\n",
				c.Node, c.Op, c.PC, c.Source, src.Op, src.PC, pathString(c.Path), c.Depth(), guardString(c.Guards))
		}
		for i := range r.Poisoned {
			c := &r.Poisoned[i]
			if c.Depth() == 0 {
				fmt.Fprintf(&sb, "  poisoned n%d %s @%#x: speculative load (source); guards: %s\n",
					c.Node, c.Op, c.PC, guardString(c.Guards))
				continue
			}
			src := &b.IR.Insts[c.Source]
			fmt.Fprintf(&sb, "  poisoned n%d %s @%#x: from n%d %s @%#x via %s (depth %d)\n",
				c.Node, c.Op, c.PC, c.Source, src.Op, src.PC, pathString(c.Path), c.Depth())
		}
	}
	return sb.String()
}
