package dbt

import (
	"encoding/json"
	"strings"
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/core/pipeline"
)

// auditGadgetSrc runs the Fig. 1 gadget hot enough to be translated
// (and trace-formed), so the machine-wide audit has real regions to
// explain: an in-bounds loop around a bounds check feeding a dependent
// load.
const auditGadgetSrc = `
main:
	la s0, buffer
	la s1, arrayVal
	li t0, 16
	li s2, 200
	li s3, 0
loop:
	andi a0, s3, 15
	bgeu a0, t0, skip
	add t1, s0, a0
	lbu t2, 0(t1)
	slli t2, t2, 7
	add t3, s1, t2
	lbu t4, 0(t3)
skip:
	addi s3, s3, 1
	blt s3, s2, loop
	li a0, 0
	ecall

	.data
buffer:
	.space 16
arrayVal:
	.space 32768
`

func runAudited(t *testing.T, mode core.Mode) (*Machine, *Audit) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mitigation = mode
	cfg.Audit = true
	_, m := runSrc(t, auditGadgetSrc, cfg)
	aud := m.Audit()
	if aud == nil {
		t.Fatal("Machine.Audit() nil with Config.Audit set")
	}
	return m, aud
}

// The acceptance cross-check: every pinned access in every translated
// region must be explained by a provenance chain that replays against
// the retained IR block — including the guard edges the mitigation
// inserted.
func TestAuditExplainsEveryPinnedAccess(t *testing.T) {
	m, aud := runAudited(t, core.ModeGhostBusters)
	if len(aud.Blocks) == 0 {
		t.Fatal("no audited regions — gadget never got hot?")
	}
	tot := aud.Totals()
	if tot.Pinned == 0 {
		t.Fatal("gadget produced no pinned accesses")
	}
	// The machine-wide pinned count must agree with the stats counter
	// for currently-installed regions being a subset of all
	// translations ever (deopts replace entries).
	if m.stats.RiskyLoads < tot.Pinned {
		t.Fatalf("audit pinned %d > stats risky loads %d", tot.Pinned, m.stats.RiskyLoads)
	}
	if err := aud.Verify(); err != nil {
		t.Fatalf("audit replay failed: %v", err)
	}
	for _, b := range aud.Blocks {
		for i := range b.Report.Pinned {
			c := &b.Report.Pinned[i]
			if len(c.Path) < 2 || len(c.Guards) == 0 {
				t.Fatalf("pinned chain without path/guards in block @%#x: %+v", b.PC, c)
			}
		}
	}
	// Depth histogram covers every chain.
	chains := 0
	for _, n := range tot.DepthHist {
		chains += n
	}
	if chains != tot.Poisoned+tot.Pinned {
		t.Fatalf("depth histogram covers %d chains, want %d", chains, tot.Poisoned+tot.Pinned)
	}
}

// Audits replay in every mitigation mode (guard edges required only in
// ghostbusters mode).
func TestAuditAllModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeUnsafe, core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation} {
		_, aud := runAudited(t, mode)
		if err := aud.Verify(); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

// Auditing off: nothing retained, Audit() reports nil.
func TestAuditDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mitigation = core.ModeGhostBusters
	_, m := runSrc(t, auditGadgetSrc, cfg)
	if m.Audit() != nil {
		t.Fatal("Audit() non-nil with auditing off")
	}
	for pc, e := range m.trans {
		if e.audit != nil || e.auditIR != nil {
			t.Fatalf("entry @%#x retained audit state with auditing off", pc)
		}
	}
}

// The JSON document: stable schema tag, totals consistent with the
// aggregation, valid JSON round-trip.
func TestAuditDocSchema(t *testing.T) {
	_, aud := runAudited(t, core.ModeGhostBusters)
	doc := aud.Doc()
	if doc.Schema != "ghostbusters/audit/v1" {
		t.Fatalf("schema = %q, want the stable ghostbusters/audit/v1 tag", doc.Schema)
	}
	if doc.Mode != "ghostbusters" {
		t.Fatalf("mode = %q", doc.Mode)
	}
	tot := aud.Totals()
	if doc.Totals.Pinned != tot.Pinned || doc.Totals.LoadsAnalyzed != tot.LoadsAnalyzed {
		t.Fatalf("doc totals %+v disagree with %+v", doc.Totals, tot)
	}
	if len(doc.Blocks) != len(aud.Blocks) {
		t.Fatalf("doc has %d blocks, audit %d", len(doc.Blocks), len(aud.Blocks))
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back AuditDoc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("audit doc does not round-trip: %v", err)
	}
	if back.Totals.DepthHist == nil {
		t.Fatal("depth_hist lost in round-trip")
	}
}

// The human-readable table names every pinned access with its chain.
func TestAuditFormat(t *testing.T) {
	_, aud := runAudited(t, core.ModeGhostBusters)
	out := aud.Format()
	for _, want := range []string{"audit mode=ghostbusters", "provenance depth histogram:", "pinned n", "addr poisoned by", "guards:", "(branch)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit table missing %q:\n%s", want, out)
		}
	}
}

// DumpIR renders the audited overlay under the machine's own
// mitigation mode: pinned nodes and guard edges visible in
// ghostbusters mode.
func TestDumpIROverlay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mitigation = core.ModeGhostBusters
	_, m := runSrc(t, auditGadgetSrc, cfg)
	var pc uint64
	for _, cand := range m.TranslatedPCs() {
		pc = cand
		break
	}
	found := false
	for _, cand := range m.TranslatedPCs() {
		dot, err := m.DumpIR(cand)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(dot, "[pinned]") && strings.Contains(dot, "color=red, style=dashed") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no translated region renders a pinned overlay (first pc %#x)", pc)
	}
}

// gbdump -dot must be reproducible: repeated dumps of the same region
// under every registered mitigation are byte-identical — including the
// passes that insert instructions or pin multi-guard loads, where a
// stray map iteration would reorder nodes or edges.
func TestDumpIRDeterministic(t *testing.T) {
	for _, mode := range pipeline.Modes() {
		cfg := DefaultConfig()
		cfg.Mitigation = mode
		_, m := runSrc(t, auditGadgetSrc, cfg)
		pcs := m.TranslatedPCs()
		if len(pcs) == 0 {
			t.Fatalf("%s: nothing translated", mode)
		}
		for _, pc := range pcs {
			first, err := m.DumpIR(pc)
			if err != nil {
				t.Fatalf("%s @%#x: %v", mode, pc, err)
			}
			for i := 0; i < 3; i++ {
				again, err := m.DumpIR(pc)
				if err != nil {
					t.Fatalf("%s @%#x: %v", mode, pc, err)
				}
				if again != first {
					t.Fatalf("%s @%#x: dump %d differs from the first", mode, pc, i)
				}
			}
		}
	}
}
