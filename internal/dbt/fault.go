package dbt

import "ghostbusters/internal/trap"

// FaultInject configures the deterministic fault-injection layer: a
// seeded PRNG decides, at each injection point, whether to force a
// fault. Rates are probabilities in [0, 1]. The zero value (or a nil
// *FaultInject in Config) injects nothing.
//
// Injection is deterministic: the same seed, guest and configuration
// produce the same faults at the same cycle. Retrying with a different
// seed (what harness.Runner does on transient faults) reshuffles them.
type FaultInject struct {
	Seed uint64

	// TranslationFailureRate forces translation attempts to fail. The
	// machine degrades gracefully: the region stays interpreted (for
	// this attempt — unlike a real translation failure the region is
	// not blacklisted, so a later hot-threshold crossing retries).
	TranslationFailureRate float64

	// CacheFaultRate makes architectural loads/stores fail with a
	// transient CacheFault trap (a flipped tag bit, a timed-out lookup).
	CacheFaultRate float64

	// SpuriousInterruptRate raises a SpuriousInterrupt trap from the
	// dispatch loop's interrupt poll (one chance per poll window, i.e.
	// per interruptPollEvery dispatch iterations).
	SpuriousInterruptRate float64
}

// enabled reports whether any injection point is active.
func (fi *FaultInject) enabled() bool {
	return fi != nil && (fi.TranslationFailureRate > 0 || fi.CacheFaultRate > 0 || fi.SpuriousInterruptRate > 0)
}

// injector is the per-machine instantiation of a FaultInject config:
// the config stays immutable (it is part of Config and may be shared);
// the PRNG state lives here.
type injector struct {
	cfg   FaultInject
	state uint64
}

func newInjector(cfg FaultInject) *injector {
	// splitmix64 handles seed 0 fine, but mix the seed once so that
	// Seed and Seed+1 (the harness retry bump) diverge immediately.
	inj := &injector{cfg: cfg, state: cfg.Seed}
	inj.next()
	return inj
}

// next advances the splitmix64 PRNG — deterministic, allocation-free,
// and independent of math/rand's global state.
func (in *injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fire draws one decision at probability p.
func (in *injector) fire(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	// 53 uniform bits, the float64 mantissa width.
	return float64(in.next()>>11)/(1<<53) < p
}

func (in *injector) translationFailure() bool {
	return in != nil && in.fire(in.cfg.TranslationFailureRate)
}

func (in *injector) spuriousInterrupt() bool {
	return in != nil && in.fire(in.cfg.SpuriousInterruptRate)
}

// busHook returns the bus.OnAccess hook modelling transient cache
// faults, or nil when that injection point is off.
func (in *injector) busHook(m *Machine) func(addr uint64, size int, store bool) error {
	if in == nil || in.cfg.CacheFaultRate <= 0 {
		return nil
	}
	return func(addr uint64, size int, store bool) error {
		if !in.fire(in.cfg.CacheFaultRate) {
			return nil
		}
		op := "load"
		if store {
			op = "store"
		}
		f := trap.Newf(trap.CacheFault, "injected cache fault on %s (size %d)", op, size)
		f.Addr = addr
		f.Injected = true
		return f
	}
}
