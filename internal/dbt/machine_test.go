package dbt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/vliw"
)

// aliases keep the width-equivalence test readable
type vliwConfig = vliw.Config

var (
	vliwNarrow  = vliw.NarrowConfig
	vliwDefault = vliw.DefaultConfig
	vliwWide    = vliw.WideConfig
)

// runSrc assembles and runs a program under cfg, returning the result.
func runSrc(t *testing.T, src string, cfg Config) (*Result, *Machine) {
	t.Helper()
	p, err := riscv.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, m
}

// allConfigs enumerates the execution configurations that must agree
// architecturally.
func allConfigs() map[string]Config {
	cfgs := map[string]Config{}
	interp := DefaultConfig()
	interp.DisableTranslation = true
	cfgs["interp"] = interp

	blocks := DefaultConfig()
	blocks.DisableTraces = true
	cfgs["blocks"] = blocks

	for _, mode := range []core.Mode{core.ModeUnsafe, core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation} {
		c := DefaultConfig()
		c.Mitigation = mode
		cfgs["traces-"+mode.String()] = c
	}
	return cfgs
}

// checkEquivalence runs src under every configuration and requires the
// same exit code and the same final values for the given symbols.
func checkEquivalence(t *testing.T, src string, words []string) {
	t.Helper()
	p, err := riscv.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	type outcome struct {
		code int64
		mem  map[string]uint64
	}
	var ref *outcome
	var refName string
	for name, cfg := range allConfigs() {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(p); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if res.Stats.CompileErrs != 0 {
			t.Fatalf("%s: %d compile errors", name, res.Stats.CompileErrs)
		}
		o := &outcome{code: res.Exit.Code, mem: map[string]uint64{}}
		for _, sym := range words {
			addr := p.MustSymbol(sym)
			v, err := m.Mem().Read(addr, 8)
			if err != nil {
				t.Fatalf("%s: read %s: %v", name, sym, err)
			}
			o.mem[sym] = v
		}
		if ref == nil {
			ref, refName = o, name
			continue
		}
		if o.code != ref.code {
			t.Errorf("%s exit=%d, %s exit=%d", name, o.code, refName, ref.code)
		}
		for _, sym := range words {
			if o.mem[sym] != ref.mem[sym] {
				t.Errorf("%s: %s=%#x, %s: %#x", name, sym, o.mem[sym], refName, ref.mem[sym])
			}
		}
	}
}

func TestEquivFib(t *testing.T) {
	checkEquivalence(t, `
main:
	li a0, 30
	li a1, 1
	li a2, 1
loop:
	add a3, a1, a2
	mv a1, a2
	mv a2, a3
	addi a0, a0, -1
	bgtz a0, loop
	mv a0, a1
	andi a0, a0, 0xff
	ecall
`, nil)
}

func TestEquivMemCopyLoop(t *testing.T) {
	checkEquivalence(t, `
	.equ N, 64
	.data
src:	.space 512
dst:	.space 512
sum:	.dword 0
	.text
main:
	# initialise src[i] = i*3+1
	la t0, src
	li t1, 0
init:
	slli t2, t1, 1
	add t2, t2, t1
	addi t2, t2, 1
	sd t2, 0(t0)
	addi t0, t0, 8
	addi t1, t1, 1
	li t3, N
	blt t1, t3, init
	# copy + accumulate
	la t0, src
	la t4, dst
	li t1, 0
	li a0, 0
copy:
	ld t2, 0(t0)
	sd t2, 0(t4)
	add a0, a0, t2
	addi t0, t0, 8
	addi t4, t4, 8
	addi t1, t1, 1
	blt t1, t3, copy
	la t5, sum
	sd a0, 0(t5)
	andi a0, a0, 0xff
	ecall
`, []string{"sum"})
}

func TestEquivNestedLoopsMul(t *testing.T) {
	checkEquivalence(t, `
	.data
acc:	.dword 0
	.text
main:
	li s0, 0          # acc
	li s1, 0          # i
outer:
	li s2, 0          # j
inner:
	mul t0, s1, s2
	add s0, s0, t0
	addi s2, s2, 1
	li t1, 17
	blt s2, t1, inner
	addi s1, s1, 1
	li t1, 13
	blt s1, t1, outer
	la t2, acc
	sd s0, 0(t2)
	andi a0, s0, 0xff
	ecall
`, []string{"acc"})
}

func TestEquivCallsAndReturns(t *testing.T) {
	checkEquivalence(t, `
main:
	li s0, 0
	li s1, 0
mloop:
	mv a0, s1
	call square
	add s0, s0, a0
	addi s1, s1, 1
	li t0, 50
	blt s1, t0, mloop
	andi a0, s0, 0xff
	ecall
square:
	mul a0, a0, a0
	ret
`, nil)
}

// Aliasing stress: stores and loads to the same buffer through different
// base registers, exercising memory speculation and MCB recovery.
func TestEquivAliasingStoreLoad(t *testing.T) {
	checkEquivalence(t, `
	.data
buf:	.space 256
out:	.dword 0
	.text
main:
	la s0, buf
	la s1, buf        # alias, DBT cannot prove it
	li s2, 0
	li s3, 0
loop:
	andi t0, s2, 7
	slli t0, t0, 3
	add t1, s0, t0    # &buf[k]
	sd s2, 0(t1)      # store through s0 view
	add t2, s1, t0    # same address via s1 view
	ld t3, 0(t2)      # load must see the store
	add s3, s3, t3
	addi s2, s2, 1
	li t4, 200
	blt s2, t4, loop
	la t5, out
	sd s3, 0(t5)
	andi a0, s3, 0xff
	ecall
`, []string{"out"})
}

// Same-iteration read-after-write with shifting offsets (conflicts only
// sometimes), plus loads that usually do not alias: recovery paths fire
// on a subset of iterations.
func TestEquivSometimesAliasing(t *testing.T) {
	checkEquivalence(t, `
	.data
buf:	.space 1024
out:	.dword 0
	.text
main:
	la s0, buf
	li s2, 0
	li s3, 0
loop:
	andi t0, s2, 63
	slli t0, t0, 3
	add t1, s0, t0
	mul t6, s2, s2      # long computation feeding the store
	sd t6, 0(t1)
	andi t2, s2, 31     # different (sometimes equal) slot
	slli t2, t2, 3
	add t3, s0, t2
	ld t4, 0(t3)
	add s3, s3, t4
	addi s2, s2, 1
	li t5, 300
	blt s2, t5, loop
	la t0, out
	sd s3, 0(t0)
	andi a0, s3, 0xff
	ecall
`, []string{"out"})
}

// Branchy code with data-dependent directions: exercises side exits on
// traces trained the other way.
func TestEquivDataDependentBranches(t *testing.T) {
	checkEquivalence(t, `
	.data
out:	.dword 0
	.text
main:
	li s0, 0
	li s1, 0
	li s2, 1234567
loop:
	# xorshift-ish PRNG
	slli t0, s2, 13
	xor s2, s2, t0
	srli t0, s2, 7
	xor s2, s2, t0
	slli t0, s2, 17
	xor s2, s2, t0
	andi t1, s2, 15
	li t2, 13
	blt t1, t2, mostly       # ~81% taken
	addi s0, s0, 7
	j done
mostly:
	addi s0, s0, 1
done:
	addi s1, s1, 1
	li t3, 500
	blt s1, t3, loop
	la t4, out
	sd s0, 0(t4)
	andi a0, s0, 0xff
	ecall
`, []string{"out"})
}

func TestEquivSubWordAccesses(t *testing.T) {
	checkEquivalence(t, `
	.data
buf:	.space 128
out:	.dword 0
	.text
main:
	la s0, buf
	li s1, 0
fill:
	add t0, s0, s1
	andi t1, s1, 0xff
	sb t1, 0(t0)
	addi s1, s1, 1
	li t2, 100
	blt s1, t2, fill
	li s1, 0
	li s3, 0
rd:
	add t0, s0, s1
	lb t1, 0(t0)
	lbu t2, 1(t0)
	lh t3, 0(t0)
	lhu t4, 2(t0)
	lw t5, 0(t0)
	add s3, s3, t1
	add s3, s3, t2
	add s3, s3, t3
	add s3, s3, t4
	add s3, s3, t5
	addi s1, s1, 4
	li t6, 90
	blt s1, t6, rd
	la t0, out
	sd s3, 0(t0)
	andi a0, s3, 0xff
	ecall
`, []string{"out"})
}

func TestEquivDivRem(t *testing.T) {
	checkEquivalence(t, `
main:
	li s0, 0
	li s1, 1
loop:
	li t0, 1000003
	div t1, t0, s1
	rem t2, t0, s1
	add s0, s0, t1
	add s0, s0, t2
	divu t3, s0, s1
	add s0, s0, t3
	addi s1, s1, 1
	li t4, 60
	blt s1, t4, loop
	andi a0, s0, 0xff
	ecall
`, nil)
}

// Random straight-line+loop programs: differential testing against the
// interpreter across all configurations.
func TestEquivRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		src := genRandomProgram(r)
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			checkEquivalence(t, src, []string{"res0", "res1", "res2"})
		})
	}
}

// genRandomProgram emits a loop whose body is a random mix of ALU ops,
// loads and stores into a scratch buffer (same-base and different-base
// addressing to exercise the alias analysis), always terminating.
func genRandomProgram(r *rand.Rand) string {
	aluOps := []string{"add", "sub", "xor", "or", "and", "sll", "srl", "sra",
		"addw", "subw", "mul", "mulw", "sllw", "srlw", "sraw", "slt", "sltu"}
	aluImm := []string{"addi", "xori", "ori", "andi", "slti", "sltiu", "addiw"}
	regs := []string{"t0", "t1", "t2", "t3", "t4", "s2", "s3", "s4", "s5"}

	src := `
	.data
buf:	.space 512
res0:	.dword 0
res1:	.dword 0
res2:	.dword 0
	.text
main:
	la s0, buf
	la s1, buf+256
	li s6, 0
`
	// random init
	for _, reg := range regs {
		src += fmt.Sprintf("\tli %s, %d\n", reg, r.Int63n(1<<30)-(1<<29))
	}
	src += "loop:\n"
	body := 8 + r.Intn(16)
	for i := 0; i < body; i++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			op := aluOps[r.Intn(len(aluOps))]
			src += fmt.Sprintf("\t%s %s, %s, %s\n", op,
				regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))])
		case 4, 5:
			op := aluImm[r.Intn(len(aluImm))]
			src += fmt.Sprintf("\t%s %s, %s, %d\n", op,
				regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], r.Intn(2048)-1024)
		case 6:
			// shift-imm
			src += fmt.Sprintf("\tslli %s, %s, %d\n",
				regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], r.Intn(64))
		case 7:
			// store to a bounded slot through one of the two views
			base := []string{"s0", "s1"}[r.Intn(2)]
			val := regs[r.Intn(len(regs))]
			tmp := "a2"
			src += fmt.Sprintf("\tandi %s, %s, 31\n", tmp, regs[r.Intn(len(regs))])
			src += fmt.Sprintf("\tslli %s, %s, 3\n", tmp, tmp)
			src += fmt.Sprintf("\tadd %s, %s, %s\n", tmp, tmp, base)
			src += fmt.Sprintf("\tsd %s, 0(%s)\n", val, tmp)
		default:
			// load from a bounded slot
			base := []string{"s0", "s1"}[r.Intn(2)]
			dst := regs[r.Intn(len(regs))]
			tmp := "a3"
			src += fmt.Sprintf("\tandi %s, %s, 31\n", tmp, regs[r.Intn(len(regs))])
			src += fmt.Sprintf("\tslli %s, %s, 3\n", tmp, tmp)
			src += fmt.Sprintf("\tadd %s, %s, %s\n", tmp, tmp, base)
			src += fmt.Sprintf("\tld %s, 0(%s)\n", dst, tmp)
		}
	}
	iters := 80 + r.Intn(200)
	src += fmt.Sprintf(`
	addi s6, s6, 1
	li a4, %d
	blt s6, a4, loop
`, iters)
	// fold results into memory
	src += "\tla a5, res0\n"
	for i, reg := range []string{"t0", "s3", "t4"} {
		src += fmt.Sprintf("\tsd %s, %d(a5)\n", reg, 8*i)
	}
	src += "\tli a0, 0\n\tecall\n"
	return src
}

func TestSpeculationHappensAndMitigationStops(t *testing.T) {
	// Load-heavy loop with a store the loads cannot be proven disjoint
	// from: Unsafe must speculate, NoSpeculation must not.
	src := `
	.data
a:	.space 800
b:	.space 800
	.text
main:
	la s0, a
	la s1, b
	li s2, 0
loop:
	andi t0, s2, 63
	slli t0, t0, 3
	add t1, s1, t0
	sd s2, 0(t1)
	ld t2, 0(s0)
	ld t3, 8(s0)
	add t4, t2, t3
	sd t4, 16(s1)
	addi s2, s2, 1
	li t5, 400
	blt s2, t5, loop
	li a0, 0
	ecall
`
	unsafe := DefaultConfig()
	res1, _ := runSrc(t, src, unsafe)
	if res1.Stats.SpecLoads == 0 {
		t.Error("unsafe mode never issued a speculative load")
	}
	if res1.Stats.Traces == 0 {
		t.Error("no traces built")
	}

	nospec := DefaultConfig()
	nospec.Mitigation = core.ModeNoSpeculation
	res2, _ := runSrc(t, src, nospec)
	if res2.Stats.SpecLoads != 0 {
		t.Errorf("nospec issued %d speculative loads", res2.Stats.SpecLoads)
	}
	// Speculation must pay off on this kernel.
	if res1.Cycles >= res2.Cycles {
		t.Errorf("unsafe (%d cycles) not faster than nospec (%d cycles)", res1.Cycles, res2.Cycles)
	}
}

func TestTraceFormation(t *testing.T) {
	src := `
main:
	li s1, 0
	li s2, 0
loop:
	add s2, s2, s1
	addi s1, s1, 1
	li t0, 500
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`
	res, m := runSrc(t, src, DefaultConfig())
	if res.Stats.Traces == 0 {
		t.Fatal("hot loop did not become a trace")
	}
	// The loop head should be a trace with unrolled body.
	p := riscv.MustAssemble(src)
	loopPC := p.MustSymbol("loop")
	if ok, isTrace := m.TranslatedAt(loopPC); !ok || !isTrace {
		t.Fatalf("loop head translated=%v trace=%v", ok, isTrace)
	}
	blk := m.BlockAt(loopPC)
	if blk.GuestInsts <= 6 {
		t.Errorf("trace covers %d guest insts; expected unrolling", blk.GuestInsts)
	}
}

func TestInterpreterOnlyMatchesAndIsSlower(t *testing.T) {
	src := `
main:
	li s1, 0
	li s2, 0
loop:
	add s2, s2, s1
	addi s1, s1, 1
	li t0, 2000
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`
	interp := DefaultConfig()
	interp.DisableTranslation = true
	r1, _ := runSrc(t, src, interp)
	r2, _ := runSrc(t, src, DefaultConfig())
	if r1.Exit.Code != r2.Exit.Code {
		t.Fatalf("exit codes differ: %d vs %d", r1.Exit.Code, r2.Exit.Code)
	}
	if r2.Cycles >= r1.Cycles {
		t.Errorf("DBT (%d cycles) not faster than interpreter (%d)", r2.Cycles, r1.Cycles)
	}
}

func TestMachineConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.MemSize = 0
	if _, err := New(bad); err == nil {
		t.Error("zero MemSize accepted")
	}
	bad2 := DefaultConfig()
	bad2.BiasThreshold = 0.3
	if _, err := New(bad2); err == nil {
		t.Error("bias threshold 0.3 accepted")
	}
	bad3 := DefaultConfig()
	bad3.Cache.Sets = 3
	if _, err := New(bad3); err == nil {
		t.Error("bad cache config accepted")
	}
}

func TestGuestFaultSurfaces(t *testing.T) {
	p := riscv.MustAssemble("main:\n\tli t0, 64\n\tld a0, 0(t0)\n\tecall\n")
	m, _ := New(DefaultConfig())
	_ = m.Load(p)
	if _, err := m.Run(); err == nil {
		t.Fatal("out-of-range load should fail the run")
	}
}

func TestCycleBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 10000
	p := riscv.MustAssemble("main:\nloop:\n\tj loop\n")
	m, _ := New(cfg)
	_ = m.Load(p)
	if _, err := m.Run(); err == nil {
		t.Fatal("infinite loop should hit the cycle budget")
	}
}

// Regression: an architectural effect immediately before a function
// return (indirect-jump terminator) must execute before the block exits.
func TestEquivStoreBeforeReturn(t *testing.T) {
	checkEquivalence(t, `
	.data
slot:	.dword 0
out:	.dword 0
	.text
main:
	li s0, 0
	li s1, 0
loop:
	mv a0, s0
	call put
	call get
	add s1, s1, a0
	addi s0, s0, 1
	li t0, 100
	blt s0, t0, loop
	la t0, out
	sd s1, 0(t0)
	andi a0, s1, 0xff
	ecall
put:
	la t0, slot
	sd a0, 0(t0)
	ret
get:
	la t0, slot
	ld a0, 0(t0)
	ret
`, []string{"out"})
}

// Architectural equivalence across core widths: the schedule changes,
// the results must not.
func TestEquivAcrossIssueWidths(t *testing.T) {
	src := `
	.data
buf:	.space 512
out:	.dword 0
	.text
main:
	la s0, buf
	li s2, 0
	li s3, 0
loop:
	andi t0, s2, 31
	slli t0, t0, 3
	add t1, s0, t0
	mul t2, s2, s2
	sd t2, 0(t1)
	ld t3, 8(t1)
	add s3, s3, t3
	mul t4, s3, s2
	xor s3, s3, t4
	addi s2, s2, 1
	li t5, 250
	blt s2, t5, loop
	la t6, out
	sd s3, 0(t6)
	andi a0, s3, 0xff
	ecall
`
	p := riscv.MustAssemble(src)
	widths := map[string]Config{}
	for name, core := range map[string]func() vliwConfig{
		"narrow": vliwNarrow, "default": vliwDefault, "wide": vliwWide,
	} {
		cfg := DefaultConfig()
		cfg.Core = core()
		widths[name] = cfg
	}
	var want uint64
	first := ""
	for name, cfg := range widths {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_ = m.Load(p)
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v, _ := m.Mem().Read(p.MustSymbol("out"), 8)
		if first == "" {
			first, want = name, v
		} else if v != want {
			t.Fatalf("%s result %#x != %s result %#x", name, v, first, want)
		}
	}
}

func TestProfileReport(t *testing.T) {
	src := `
main:
	li s1, 0
loop:
	addi s1, s1, 1
	li t0, 200
	blt s1, t0, loop
	li a0, 0
	ecall
`
	res, m := runSrc(t, src, DefaultConfig())
	rep := m.ProfileReport()
	if len(rep) == 0 {
		t.Fatal("empty profile")
	}
	if rep[0].Entries == 0 || rep[0].GuestInsts == 0 {
		t.Fatalf("hottest region empty: %+v", rep[0])
	}
	if rep[0].Cycles == 0 || rep[0].Dispatches == 0 {
		t.Fatalf("hottest region has no attributed cycles: %+v", rep[0])
	}
	if rep[0].Cycles > res.Cycles {
		t.Fatalf("region charged %d cycles, whole run took %d", rep[0].Cycles, res.Cycles)
	}
	for i := 1; i < len(rep); i++ {
		if rep[i].Cycles > rep[i-1].Cycles {
			t.Fatal("profile not sorted by attributed cycles")
		}
	}
	hasTrace := false
	for _, r := range rep {
		if r.IsTrace {
			hasTrace = true
		}
	}
	if !hasTrace {
		t.Fatal("no trace in profile")
	}
}

func TestTranslateCostCharged(t *testing.T) {
	src := `
main:
	li s1, 0
loop:
	addi s1, s1, 1
	li t0, 100
	blt s1, t0, loop
	li a0, 0
	ecall
`
	free := DefaultConfig()
	r1, _ := runSrc(t, src, free)
	charged := DefaultConfig()
	charged.TranslateCost = 100
	r2, _ := runSrc(t, src, charged)
	if r2.Cycles <= r1.Cycles {
		t.Fatalf("translate cost not charged: %d vs %d", r2.Cycles, r1.Cycles)
	}
	if r1.Exit.Code != r2.Exit.Code {
		t.Fatal("results diverge")
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	var buf strings.Builder
	tr := obs.New(obs.LevelSpec, obs.NewTextSink(&buf))
	cfg := DefaultConfig()
	cfg.Tracer = tr
	src := `
main:
	li s1, 0
loop:
	addi s1, s1, 1
	li t0, 60
	blt s1, t0, loop
	li a0, 0
	ecall
`
	runSrc(t, src, cfg)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "interp blt") {
		t.Errorf("trace missing interpreted branch events:\n%.300s", out)
	}
	if !strings.Contains(out, "exec trace") && !strings.Contains(out, "exec block") {
		t.Errorf("trace missing dispatch events:\n%.300s", out)
	}
	if !strings.Contains(out, "translate") {
		t.Errorf("trace missing translation events:\n%.300s", out)
	}
}

// Attaching a tracer observes the run without perturbing it: cycles,
// instret and every counter stay identical to the untraced run.
func TestTracingDoesNotChangeTiming(t *testing.T) {
	src := `
	.data
buf:	.space 256
	.text
main:
	la s0, buf
	li s1, 0
loop:
	andi t0, s1, 31
	slli t0, t0, 3
	add t1, s0, t0
	sd s1, 0(t1)
	ld t2, 8(t1)
	add s2, s2, t2
	addi s1, s1, 1
	li t3, 200
	blt s1, t3, loop
	andi a0, s2, 0xff
	ecall
`
	plain, _ := runSrc(t, src, DefaultConfig())
	traced := DefaultConfig()
	tr := obs.New(obs.LevelSpec, nil)
	traced.Tracer = tr
	obsRes, _ := runSrc(t, src, traced)
	if plain.Cycles != obsRes.Cycles || plain.Instret != obsRes.Instret {
		t.Fatalf("tracing changed timing: %d/%d vs %d/%d cycles/instret",
			plain.Cycles, plain.Instret, obsRes.Cycles, obsRes.Instret)
	}
	if plain.Stats != obsRes.Stats {
		t.Fatalf("tracing changed stats:\n%+v\n%+v", plain.Stats, obsRes.Stats)
	}
	if len(tr.Events()) == 0 {
		t.Fatal("tracer recorded nothing")
	}
}

// Stats.Snapshot flattens the run into the stable metric names shared
// with gbrun -stats -json and the gbbench perf JSON.
func TestSnapshotMetrics(t *testing.T) {
	src := `
main:
	li s1, 0
loop:
	addi s1, s1, 1
	li t0, 200
	blt s1, t0, loop
	li a0, 0
	ecall
`
	res, _ := runSrc(t, src, DefaultConfig())
	snap := res.Snapshot()
	if snap["sim.cycles"] != res.Cycles {
		t.Fatalf("sim.cycles %d != %d", snap["sim.cycles"], res.Cycles)
	}
	if snap["sim.instret"] != res.Instret {
		t.Fatalf("sim.instret %d != %d", snap["sim.instret"], res.Instret)
	}
	if snap["dbt.blocks"] != uint64(res.Stats.Blocks) ||
		snap["dbt.block_execs"] != res.Stats.BlockExecs ||
		snap["core.bundles"] != res.Stats.Bundles {
		t.Fatalf("dbt/core metrics wrong: %+v vs %+v", snap, res.Stats)
	}
	if _, ok := snap["cache.hits"]; !ok {
		t.Fatal("cache metrics missing")
	}
	for _, name := range snap.Names() {
		if strings.Contains(name, " ") || strings.ToLower(name) != name {
			t.Fatalf("metric name %q not lower-case dot-separated", name)
		}
	}
	// Trap counters appear only when non-zero; a clean run has none.
	for _, name := range snap.Names() {
		if strings.HasPrefix(name, "trap.") {
			t.Fatalf("clean run grew trap counter %s", name)
		}
	}
}

// The simulator is fully deterministic: identical programs produce
// identical cycle counts and statistics run-to-run (the attack tests and
// the experiment tables depend on this).
func TestDeterminism(t *testing.T) {
	src := `
	.data
buf:	.space 256
	.text
main:
	la s0, buf
	li s1, 0
loop:
	andi t0, s1, 31
	slli t0, t0, 3
	add t1, s0, t0
	sd s1, 0(t1)
	ld t2, 8(t1)
	add s2, s2, t2
	addi s1, s1, 1
	li t3, 300
	blt s1, t3, loop
	andi a0, s2, 0xff
	ecall
`
	r1, _ := runSrc(t, src, DefaultConfig())
	r2, _ := runSrc(t, src, DefaultConfig())
	if r1.Cycles != r2.Cycles || r1.Instret != r2.Instret {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/instret",
			r1.Cycles, r1.Instret, r2.Cycles, r2.Instret)
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
}

// With VerifyEncoding the machine executes blocks that went through the
// binary VLIW encoding: results must be identical.
func TestVerifyEncodingRoundTripsLive(t *testing.T) {
	src := `
	.data
out:	.dword 0
	.text
main:
	li s1, 0
	li s2, 0
loop:
	mul t0, s1, s1
	add s2, s2, t0
	addi s1, s1, 1
	li t1, 150
	blt s1, t1, loop
	la t2, out
	sd s2, 0(t2)
	andi a0, s2, 0xff
	ecall
`
	plain, _ := runSrc(t, src, DefaultConfig())
	cfg := DefaultConfig()
	cfg.VerifyEncoding = true
	encoded, _ := runSrc(t, src, cfg)
	if plain.Exit.Code != encoded.Exit.Code || plain.Cycles != encoded.Cycles {
		t.Fatalf("encoded execution diverges: %d/%d vs %d/%d",
			plain.Exit.Code, plain.Cycles, encoded.Exit.Code, encoded.Cycles)
	}
	if encoded.Stats.CompileErrs != 0 {
		t.Fatalf("encode round trip failed %d times", encoded.Stats.CompileErrs)
	}
}
