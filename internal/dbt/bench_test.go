package dbt

import (
	"testing"

	"ghostbusters/internal/riscv"
)

// interpLoopSrc is a tight interpreted loop: every instruction goes
// through fetch+decode (or the predecode table), so the pair of
// sub-benchmarks below isolates exactly what the side table buys.
const interpLoopSrc = `
main:
	li s1, 0
	li s2, 0
loop:
	add s2, s2, s1
	xor s3, s2, s1
	slli s4, s3, 3
	srli s5, s4, 2
	addi s1, s1, 1
	li t0, 5000
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`

func benchInterp(b *testing.B, disablePredecode bool) {
	p := riscv.MustAssemble(interpLoopSrc)
	cfg := DefaultConfig()
	cfg.DisableTranslation = true
	cfg.DisablePredecode = disablePredecode
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(p); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}

func BenchmarkInterpLoop(b *testing.B) {
	b.Run("predecode", func(b *testing.B) { benchInterp(b, false) })
	b.Run("no-predecode", func(b *testing.B) { benchInterp(b, true) })
}

// BenchmarkMachineSteadyState measures the whole machine on a hot loop
// that translates to a trace: dispatch, Exec and the timed cache path,
// with guest memory recycled through the pool each iteration.
func BenchmarkMachineSteadyState(b *testing.B) {
	src := `
main:
	li s1, 0
	li s2, 0
	li s4, 0x20000
loop:
	ld s3, 0(s4)
	add s2, s2, s3
	sd s2, 8(s4)
	addi s1, s1, 1
	li t0, 20000
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`
	p := riscv.MustAssemble(src)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(p); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}
