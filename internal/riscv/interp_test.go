package riscv_test

import (
	"math/big"
	"math/rand"
	"testing"

	"ghostbusters/internal/bus"
	"ghostbusters/internal/cache"
	"ghostbusters/internal/guestmem"
	"ghostbusters/internal/riscv"
)

// newBus builds a standard test memory system.
func newBus() *bus.Bus {
	mem := guestmem.New(0x10000, 1<<20)
	return bus.MustNew(mem, cache.DefaultConfig())
}

// loadProgram copies an assembled image into memory.
func loadProgram(t *testing.T, b *bus.Bus, p *riscv.Program) {
	t.Helper()
	for i, w := range p.Text {
		if err := b.Mem.Write(p.TextBase+uint64(4*i), 4, uint64(w)); err != nil {
			t.Fatalf("load text: %v", err)
		}
	}
	if len(p.Data) > 0 {
		if err := b.Mem.WriteBytes(p.DataBase, p.Data); err != nil {
			t.Fatalf("load data: %v", err)
		}
	}
}

// run interprets until exit/fault or the step limit.
func run(t *testing.T, b *bus.Bus, p *riscv.Program, maxSteps int) (*riscv.State, riscv.Event, uint64) {
	t.Helper()
	loadProgram(t, b, p)
	st := &riscv.State{PC: p.Entry}
	st.X[2] = b.Mem.Top() - 64 // sp
	tm := riscv.DefaultTiming()
	var cycles uint64
	for i := 0; i < maxSteps; i++ {
		res := riscv.Step(st, b, tm, cycles)
		cycles += res.Cycles
		if res.Event.Kind != riscv.EvNone {
			return st, res.Event, cycles
		}
	}
	t.Fatalf("program did not terminate in %d steps", maxSteps)
	return nil, riscv.Event{}, 0
}

func TestInterpArithmeticProgram(t *testing.T) {
	src := `
main:
	li a0, 20
	li a1, 1
	li a2, 1
loop:                        # fib(20) iteratively
	add a3, a1, a2
	mv a1, a2
	mv a2, a3
	addi a0, a0, -1
	bgtz a0, loop
	mv a0, a1
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 10000)
	if ev.Kind != riscv.EvExit {
		t.Fatalf("event = %+v, want exit", ev)
	}
	// fib: a1,a2 start 1,1; after 20 iterations a1 = fib(21) = 10946
	if ev.Code != 10946 {
		t.Fatalf("fib exit code = %d, want 10946", ev.Code)
	}
}

func TestInterpMemoryOps(t *testing.T) {
	src := `
	.data
buf:	.space 64
vals:	.dword 0x1122334455667788
	.text
main:
	la t0, vals
	ld t1, 0(t0)
	la t2, buf
	sd t1, 0(t2)
	lb a0, 7(t2)       # sign-extended 0x11
	lbu a1, 0(t2)      # 0x88
	lh a2, 0(t2)       # sign-extended 0x7788
	lhu a3, 6(t2)      # 0x1122
	lw a4, 0(t2)       # sign-extended 0x55667788
	lwu a5, 4(t2)      # 0x11223344
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	st, ev, _ := run(t, b, p, 1000)
	if ev.Kind != riscv.EvExit {
		t.Fatalf("event = %+v", ev)
	}
	want := map[int]uint64{
		10: 0x11,
		11: 0x88,
		12: 0x7788,
		13: 0x1122,
		14: 0x55667788,
		15: 0x11223344,
	}
	for r, w := range want {
		if st.X[r] != w {
			t.Errorf("x%d = %#x, want %#x", r, st.X[r], w)
		}
	}
}

func TestInterpBranches(t *testing.T) {
	// Exercise every branch op both ways.
	src := `
main:
	li a0, 0
	li t0, -5
	li t1, 3
	beq t0, t1, fail
	bne t0, t0, fail
	bge t0, t1, fail
	blt t1, t0, fail
	bltu t1, t0, ok1   # unsigned: 3 < 0xFF..FB
fail:
	li a0, 1
	ecall
ok1:
	bgeu t0, t1, ok2
	j fail
ok2:
	li a0, 42
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 1000)
	if ev.Code != 42 {
		t.Fatalf("exit = %d, want 42", ev.Code)
	}
}

func TestInterpJalLink(t *testing.T) {
	src := `
main:
	call fn
	mv a0, t5
	ecall
fn:
	li t5, 99
	ret
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 100)
	if ev.Code != 99 {
		t.Fatalf("exit = %d, want 99", ev.Code)
	}
}

func TestInterpRdcycleMonotonic(t *testing.T) {
	src := `
main:
	rdcycle t0
	li t2, 100
l:	addi t2, t2, -1
	bgtz t2, l
	rdcycle t1
	sub a0, t1, t0
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 10000)
	if ev.Code <= 0 {
		t.Fatalf("cycle delta = %d, want positive", ev.Code)
	}
}

func TestInterpFaults(t *testing.T) {
	// out-of-range load
	p := riscv.MustAssemble("main:\n\tli t0, 0x10\n\tld a0, 0(t0)\n\tecall\n")
	b := newBus()
	_, ev, _ := run(t, b, p, 100)
	if ev.Kind != riscv.EvFault {
		t.Fatalf("expected fault, got %+v", ev)
	}

	// protected-region load faults architecturally
	p2 := riscv.MustAssemble(`
	.data
secret:	.dword 0xdeadbeef
	.text
main:
	la t0, secret
	ld a0, 0(t0)
	ecall
`)
	b2 := newBus()
	sec := p2.MustSymbol("secret")
	b2.Mem.Protect(sec, sec+8)
	_, ev2, _ := run(t, b2, p2, 100)
	if ev2.Kind != riscv.EvFault {
		t.Fatalf("expected protection fault, got %+v", ev2)
	}
}

func TestSpeculativeLoadSquashesButFills(t *testing.T) {
	mem := guestmem.New(0x10000, 1<<20)
	b := bus.MustNew(mem, cache.DefaultConfig())
	sec := uint64(0x20000)
	if err := mem.Write(sec, 8, 0x1234); err != nil {
		t.Fatal(err)
	}
	mem.Protect(sec, sec+8)

	// Architectural load faults.
	if _, _, err := b.Load(sec, 8); err == nil {
		t.Fatal("architectural load of protected region should fault")
	}
	if b.DC.Probe(sec) {
		t.Fatal("faulting load must not fill the cache")
	}
	// Speculative load squashes the fault but returns the value and fills.
	v, _, ok := b.LoadSpeculative(sec, 8)
	if !ok || v != 0x1234 {
		t.Fatalf("speculative load = %#x ok=%v, want 0x1234 true", v, ok)
	}
	if !b.DC.Probe(sec) {
		t.Fatal("speculative load must fill the cache (the leak)")
	}
	// Fully out-of-range speculative load is squashed with no fill.
	if _, _, ok := b.LoadSpeculative(1<<40, 8); ok {
		t.Fatal("out-of-range speculative load must squash")
	}
}

func TestEbreakEvent(t *testing.T) {
	p := riscv.MustAssemble("main:\n\tebreak\n")
	b := newBus()
	_, ev, _ := run(t, b, p, 10)
	if ev.Kind != riscv.EvBreak {
		t.Fatalf("expected break, got %+v", ev)
	}
}

func TestCflushAffectsTiming(t *testing.T) {
	src := `
	.data
buf:	.dword 1
	.text
main:
	la t0, buf
	ld t1, 0(t0)       # miss, fill
	rdcycle t2
	ld t1, 0(t0)       # hit
	rdcycle t3
	sub s0, t3, t2     # hit time
	cflush t0
	rdcycle t2
	ld t1, 0(t0)       # miss again
	rdcycle t3
	sub s1, t3, t2     # miss time
	sub a0, s1, s0     # positive iff flush worked
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 100)
	if ev.Code <= 0 {
		t.Fatalf("miss-hit delta = %d, want positive", ev.Code)
	}
}

// Property: MULH/MULHU/MULHSU match math/big reference.
func TestMulHighAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := r.Uint64(), r.Uint64()
		// mulhu
		ref := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		wantHU := new(big.Int).Rsh(ref, 64).Uint64()
		if got := riscv.EvalALU(riscv.MULHU, a, b); got != wantHU {
			t.Fatalf("mulhu(%#x,%#x) = %#x, want %#x", a, b, got, wantHU)
		}
		// mulh
		refS := new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(b)))
		wantH := uint64(new(big.Int).Rsh(refS, 64).Int64())
		if got := riscv.EvalALU(riscv.MULH, a, b); got != wantH {
			t.Fatalf("mulh(%#x,%#x) = %#x, want %#x", a, b, got, wantH)
		}
		// mulhsu
		refSU := new(big.Int).Mul(big.NewInt(int64(a)), new(big.Int).SetUint64(b))
		wantSU := uint64(new(big.Int).Rsh(refSU, 64).Int64())
		if got := riscv.EvalALU(riscv.MULHSU, a, b); got != wantSU {
			t.Fatalf("mulhsu(%#x,%#x) = %#x, want %#x", a, b, got, wantSU)
		}
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	minI := uint64(1) << 63
	cases := []struct {
		op      riscv.Op
		a, b, w uint64
	}{
		{riscv.DIV, 7, 0, ^uint64(0)},
		{riscv.DIVU, 7, 0, ^uint64(0)},
		{riscv.REM, 7, 0, 7},
		{riscv.REMU, 7, 0, 7},
		{riscv.DIV, minI, ^uint64(0), minI},
		{riscv.REM, minI, ^uint64(0), 0},
		{riscv.DIV, uint64(^uint64(0) - 19), 5, uint64(^uint64(0) - 3)}, // -20/5 = -4
		{riscv.REM, uint64(^uint64(0) - 19), 7, uint64(^uint64(0) - 5)}, // -20%7 = -6
		{riscv.DIVW, 7, 0, ^uint64(0)},
		{riscv.REMW, ^uint64(0) - 6, 0, ^uint64(0) - 6},
		{riscv.DIVW, uint64(uint32(1) << 31), ^uint64(0), 0xFFFFFFFF80000000},
		{riscv.REMW, uint64(uint32(1) << 31), ^uint64(0), 0},
		{riscv.DIVUW, 100, 7, 14},
		{riscv.REMUW, 100, 7, 2},
	}
	for _, c := range cases {
		if got := riscv.EvalALU(c.op, c.a, c.b); got != c.w {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.w)
		}
	}
}

// Property: W-form results are always sign-extended 32-bit values.
func TestWFormsSignExtended(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	wOps := []riscv.Op{riscv.ADDW, riscv.SUBW, riscv.SLLW, riscv.SRLW, riscv.SRAW,
		riscv.MULW, riscv.DIVW, riscv.DIVUW, riscv.REMW, riscv.REMUW}
	for i := 0; i < 5000; i++ {
		op := wOps[r.Intn(len(wOps))]
		a, b := r.Uint64(), r.Uint64()
		got := riscv.EvalALU(op, a, b)
		if got != uint64(int64(int32(got))) {
			t.Fatalf("%s(%#x,%#x) = %#x not sign-extended", op, a, b, got)
		}
	}
}

func TestJALRClearsLowBit(t *testing.T) {
	// jalr targets have bit 0 cleared per the ISA.
	src := `
main:
	la t0, target
	ori t0, t0, 1
	jalr ra, 0(t0)
	ecall
target:
	li a0, 77
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 100)
	if ev.Code != 77 {
		t.Fatalf("exit = %d, want 77 (low bit must be cleared)", ev.Code)
	}
}

func TestCSRWritesIgnoredOnCounters(t *testing.T) {
	// cycle/instret are read-only: csrrw/csrrc attempts are ignored but
	// still return the counter value.
	src := `
main:
	li t0, 999
	csrrw t1, 0xc00, t0
	csrrc t2, 0xc02, t0
	li a0, 1
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	st, ev, _ := run(t, b, p, 100)
	if ev.Kind != riscv.EvExit {
		t.Fatalf("event %+v", ev)
	}
	if st.X[6] == 999 || st.X[7] == 999 {
		t.Fatal("csr read returned the written value; counters must be read-only")
	}
}

func TestUnknownCSRReadsZero(t *testing.T) {
	src := "main:\n\tcsrr a0, 0x123\n\taddi a0, a0, 5\n\tecall\n"
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 100)
	if ev.Code != 5 {
		t.Fatalf("exit = %d, want 5 (unknown CSR reads 0)", ev.Code)
	}
}

func TestInstretCounts(t *testing.T) {
	src := `
main:
	rdinstret t0
	addi t1, t1, 1
	addi t1, t1, 1
	rdinstret t2
	sub a0, t2, t0
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 100)
	if ev.Code != 3 { // addi, addi, rdinstret itself not yet retired at read
		t.Fatalf("instret delta = %d, want 3", ev.Code)
	}
}
