package riscv_test

import (
	"testing"

	"ghostbusters/internal/riscv"
)

// instEqual compares decoded instructions field by field, ignoring Raw
// (the one field that legitimately differs between a fuzzed word and
// its canonical re-encoding: don't-care bits are not preserved).
func instEqual(a, b riscv.Inst) bool {
	return a.Op == b.Op && a.Rd == b.Rd && a.Rs1 == b.Rs1 && a.Rs2 == b.Rs2 && a.Imm == b.Imm
}

// FuzzDecode asserts the decoder's two core robustness properties on
// arbitrary 32-bit words: it never panics (unrecognised words decode to
// OpIllegal), and decoding is a canonical form — every legally decoded
// instruction re-encodes, and the re-encoded word decodes to the same
// instruction (modulo Raw).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0x00000013)) // nop
	f.Add(uint32(0x00000073)) // ecall
	f.Add(uint32(0x00100073)) // ebreak
	f.Add(uint32(0xFFFFFFFF)) // illegal
	f.Add(uint32(0x0000006F)) // jal x0, 0
	f.Add(uint32(0xC0002573)) // rdcycle a0
	f.Add(uint32(0x0000000F)) // fence
	f.Fuzz(func(t *testing.T, w uint32) {
		in := riscv.Decode(w)
		if in.Raw != w {
			t.Fatalf("Decode(%#08x).Raw = %#08x", w, in.Raw)
		}
		if in.Op == riscv.OpIllegal {
			if _, err := riscv.Encode(in); err == nil {
				t.Fatalf("Encode accepted illegal word %#08x", w)
			}
			return
		}
		enc, err := riscv.Encode(in)
		if err != nil {
			t.Fatalf("decoded %#08x to %s but Encode failed: %v", w, in, err)
		}
		re := riscv.Decode(enc)
		if !instEqual(in, re) {
			t.Fatalf("roundtrip %#08x: decoded %+v, re-encoded %#08x decodes to %+v", w, in, enc, re)
		}
	})
}

// FuzzAsmRoundTrip feeds arbitrary text to the assembler: it must
// return a program or an error, never panic; and on success every
// emitted text word must decode to a legal instruction whose canonical
// re-encoding is byte-identical (the assembler only emits canonical
// words).
func FuzzAsmRoundTrip(f *testing.F) {
	f.Add("main:\n\tli a0, 0\n\tecall\n")
	f.Add("main:\n\tla t0, x\n\tld t1, 0(t0)\n\t.data\nx:\t.dword 42\n")
	f.Add("loop:\n\taddi t0, t0, 1\n\tblt t0, t1, loop\n\tret\n")
	f.Add(".equ N, 4\n\t.text\nmain:\n\tli a0, N\n\tecall\n")
	f.Add("main:\n\trdcycle t0\n\tcflushall\n\tebreak\n")
	f.Add("\t.data\n\t.align 6\nbuf:\t.space 128\n\t.text\nmain: call main\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := riscv.Assemble(src)
		if err != nil {
			return
		}
		for i, w := range prog.Text {
			in := riscv.Decode(w)
			if in.Op == riscv.OpIllegal {
				t.Fatalf("assembled word %d (%#08x) decodes illegal", i, w)
			}
			enc, encErr := riscv.Encode(in)
			if encErr != nil {
				t.Fatalf("assembled word %d (%#08x, %s) does not re-encode: %v", i, w, in, encErr)
			}
			if enc != w {
				t.Fatalf("assembled word %d not canonical: %#08x re-encodes to %#08x", i, w, enc)
			}
		}
	})
}

// FuzzStep runs arbitrary words through one interpreter step over a
// tiny memory image: whatever the word and register state, Step must
// return a result or a well-formed fault event, never panic.
func FuzzStep(f *testing.F) {
	f.Add(uint32(0x00000013), uint64(0), uint64(0))
	f.Add(uint32(0xFF0000E7), uint64(1<<40), uint64(3)) // jalr into the void
	f.Add(uint32(0x00053503), uint64(0xFFFFFFFFFFFF), uint64(0))
	f.Fuzz(func(t *testing.T, w uint32, r10, r11 uint64) {
		b := newBus()
		st := riscv.State{PC: 0x10000}
		st.X[10], st.X[11] = r10, r11
		if err := b.Mem.Write(0x10000, 4, uint64(w)); err != nil {
			t.Fatal(err)
		}
		res := riscv.Step(&st, b, riscv.DefaultTiming(), 0)
		if res.Event.Kind == riscv.EvFault && res.Event.Err == nil {
			t.Fatal("fault event with nil error")
		}
	})
}
