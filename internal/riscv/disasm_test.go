package riscv

import (
	"math/rand"
	"strings"
	"testing"
)

// Every encodable op must disassemble to text that reassembles to the
// identical word (full-ISA round trip, complementing the sample-based
// test in asm_test.go).
func TestDisasmFullISARoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for op := Op(1); op < numOps; op++ {
		for trial := 0; trial < 50; trial++ {
			in := randInst(r, op)
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("%s: encode: %v", op, err)
			}
			text := Disasm(Decode(w))
			p, err := Assemble("x:\n\t" + text + "\n")
			if err != nil {
				t.Fatalf("%s: reassemble %q: %v", op, text, err)
			}
			if p.Text[0] != w {
				t.Fatalf("%s: %q: %#08x -> %#08x", op, text, w, p.Text[0])
			}
		}
	}
}

func TestDisasmIllegal(t *testing.T) {
	out := Disasm(Decode(0xFFFFFFFF))
	if !strings.HasPrefix(out, ".word") {
		t.Fatalf("illegal word disassembled as %q", out)
	}
}

func TestDisasmReadableForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: LD, Rd: 10, Rs1: 2, Imm: 16}, "ld a0, 16(sp)"},
		{Inst{Op: SD, Rs1: 2, Rs2: 10, Imm: -8}, "sd a0, -8(sp)"},
		{Inst{Op: ADD, Rd: 5, Rs1: 6, Rs2: 7}, "add t0, t1, t2"},
		{Inst{Op: BEQ, Rs1: 10, Rs2: 11, Imm: 64}, "beq a0, a1, 64"},
		{Inst{Op: JALR, Rd: 1, Rs1: 5, Imm: 0}, "jalr ra, 0(t0)"},
		{Inst{Op: ECALL}, "ecall"},
		{Inst{Op: CFLUSH, Rs1: 9}, "cflush s1"},
		{Inst{Op: CFLUSHALL}, "cflushall"},
	}
	for _, c := range cases {
		if got := Disasm(c.in); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
