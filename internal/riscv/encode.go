package riscv

import "fmt"

// Encode packs a decoded instruction into its 32-bit machine word.
// It validates field ranges so the assembler surfaces out-of-range
// immediates instead of silently producing wrong code.
func Encode(in Inst) (uint32, error) {
	if in.Op == OpIllegal || in.Op >= numOps {
		return 0, fmt.Errorf("riscv: cannot encode illegal op %d", in.Op)
	}
	info := opTable[in.Op]
	if in.Rd > 31 || in.Rs1 > 31 || in.Rs2 > 31 {
		return 0, fmt.Errorf("riscv: %s: register out of range", info.name)
	}
	w := info.opcode
	rd := uint32(in.Rd)
	rs1 := uint32(in.Rs1)
	rs2 := uint32(in.Rs2)

	switch info.format {
	case FmtR:
		w |= rd<<7 | info.funct3<<12 | rs1<<15 | rs2<<20 | info.funct7<<25

	case FmtI:
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("riscv: %s: immediate %d out of I-range", info.name, in.Imm)
		}
		w |= rd<<7 | info.funct3<<12 | rs1<<15 | uint32(in.Imm&0xFFF)<<20

	case FmtShift64:
		if in.Imm < 0 || in.Imm > 63 {
			return 0, fmt.Errorf("riscv: %s: shamt %d out of range", info.name, in.Imm)
		}
		w |= rd<<7 | info.funct3<<12 | rs1<<15 | uint32(in.Imm)<<20 | (info.funct7>>1)<<26

	case FmtShift32:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("riscv: %s: shamt %d out of range", info.name, in.Imm)
		}
		w |= rd<<7 | info.funct3<<12 | rs1<<15 | uint32(in.Imm)<<20 | info.funct7<<25

	case FmtS:
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("riscv: %s: immediate %d out of S-range", info.name, in.Imm)
		}
		imm := uint32(in.Imm & 0xFFF)
		w |= (imm&0x1F)<<7 | info.funct3<<12 | rs1<<15 | rs2<<20 | (imm>>5)<<25

	case FmtB:
		if in.Imm < -4096 || in.Imm > 4095 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("riscv: %s: branch offset %d invalid", info.name, in.Imm)
		}
		imm := uint32(in.Imm & 0x1FFF)
		w |= (imm>>11&1)<<7 | (imm>>1&0xF)<<8 | info.funct3<<12 | rs1<<15 | rs2<<20 |
			(imm>>5&0x3F)<<25 | (imm>>12&1)<<31

	case FmtU:
		if in.Imm < -(1<<31) || in.Imm >= 1<<31 || in.Imm&0xFFF != 0 {
			return 0, fmt.Errorf("riscv: %s: U immediate %#x invalid", info.name, in.Imm)
		}
		w |= rd<<7 | uint32(in.Imm)&0xFFFFF000

	case FmtJ:
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("riscv: %s: jump offset %d invalid", info.name, in.Imm)
		}
		imm := uint32(in.Imm & 0x1FFFFF)
		w |= rd<<7 | (imm>>12&0xFF)<<12 | (imm>>11&1)<<20 | (imm>>1&0x3FF)<<21 | (imm>>20&1)<<31

	case FmtSys:
		w |= info.funct3<<12 | info.funct7<<20

	case FmtCSR:
		if in.Imm < 0 || in.Imm > 0xFFF {
			return 0, fmt.Errorf("riscv: %s: csr %#x out of range", info.name, in.Imm)
		}
		w |= rd<<7 | info.funct3<<12 | rs1<<15 | uint32(in.Imm)<<20

	default:
		return 0, fmt.Errorf("riscv: %s: unknown format", info.name)
	}
	return w, nil
}

// MustEncode is Encode for instructions known valid by construction.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
