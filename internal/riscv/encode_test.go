package riscv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// golden encodings cross-checked against the RISC-V ISA manual.
func TestEncodeGolden(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint32
	}{
		{Inst{Op: ADDI}, 0x00000013}, // nop
		{Inst{Op: ECALL}, 0x00000073},
		{Inst{Op: EBREAK}, 0x00100073},
		{Inst{Op: LUI, Rd: 5, Imm: int64(int32(0x12345 << 12))}, 0x123452B7},
		{Inst{Op: JAL}, 0x0000006F},
		{Inst{Op: JALR, Rs1: 1}, 0x00008067}, // ret
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, 0x003100B3},
		{Inst{Op: SD, Rs1: 3, Rs2: 2, Imm: 8}, 0x0021B423},
		{Inst{Op: LW, Rd: 10, Rs1: 11, Imm: -4}, 0xFFC5A503},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: -8}, 0xFE208CE3},
		{Inst{Op: SRAI, Rd: 7, Rs1: 7, Imm: 63}, 0x43F3D393},
		{Inst{Op: MUL, Rd: 4, Rs1: 5, Rs2: 6}, 0x02628233},
		{Inst{Op: CSRRS, Rd: 10, Imm: CSRCycle}, 0xC0002573}, // rdcycle a0
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in, got, c.want)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Imm: 4096},
		{Op: ADDI, Imm: -2049},
		{Op: SLLI, Imm: 64},
		{Op: SLLIW, Imm: 32},
		{Op: BEQ, Imm: 3},    // misaligned
		{Op: BEQ, Imm: 8192}, // out of range
		{Op: JAL, Imm: 1 << 21},
		{Op: LUI, Imm: 4}, // low bits set
		{Op: SD, Imm: 2048},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v): expected range error", in)
		}
	}
}

// randInst builds a random valid instruction for op.
func randInst(r *rand.Rand, op Op) Inst {
	in := Inst{Op: op}
	fmtK, _ := op.Info()
	reg := func() uint8 { return uint8(r.Intn(32)) }
	switch fmtK {
	case FmtR:
		switch op {
		case CFLUSH:
			in.Rs1 = reg()
		case CFLUSHALL:
		default:
			in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
		}
	case FmtI:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64(r.Intn(4096) - 2048)
	case FmtShift64:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64(r.Intn(64))
	case FmtShift32:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64(r.Intn(32))
	case FmtS, FmtB:
		in.Rs1, in.Rs2 = reg(), reg()
		if fmtK == FmtS {
			in.Imm = int64(r.Intn(4096) - 2048)
		} else {
			in.Imm = int64(r.Intn(4096)-2048) * 2
		}
	case FmtU:
		in.Rd = reg()
		in.Imm = int64(int32(uint32(r.Intn(1<<20)) << 12))
	case FmtJ:
		in.Rd = reg()
		in.Imm = int64(r.Intn(1<<20)-1<<19) * 2
	case FmtSys:
	case FmtCSR:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64([]int{CSRCycle, CSRTime, CSRInstret}[r.Intn(3)])
	}
	return in
}

// Property: Encode then Decode is the identity on decoded fields.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		op := Op(1 + r.Intn(int(numOps)-1))
		in := randInst(r, op)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got := Decode(w)
		in.Raw = w
		// Unused register fields decode as zero; normalise the input the
		// same way Encode/Decode treats them.
		if got != in {
			t.Fatalf("round trip failed:\n in  %+v\n got %+v (word %#08x)", in, got, w)
		}
	}
}

// Property: Decode never panics and either returns OpIllegal or an
// instruction that re-encodes to an equivalent decode.
func TestDecodeTotal(t *testing.T) {
	f := func(w uint32) bool {
		in := Decode(w)
		if in.Op == OpIllegal {
			return true
		}
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2 := Decode(w2)
		in2.Raw = 0
		in.Raw = 0
		return in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpPredicates(t *testing.T) {
	if !LW.IsLoad() || LW.IsStore() || LW.MemSize() != 4 {
		t.Error("LW predicates wrong")
	}
	if !SD.IsStore() || SD.IsLoad() || SD.MemSize() != 8 {
		t.Error("SD predicates wrong")
	}
	if !BLTU.IsBranch() || ADD.IsBranch() {
		t.Error("branch predicates wrong")
	}
	if ADD.MemSize() != 0 {
		t.Error("ADD MemSize should be 0")
	}
	if LBU.MemSize() != 1 || LH.MemSize() != 2 {
		t.Error("sub-word sizes wrong")
	}
}

func TestRegNames(t *testing.T) {
	for i := uint8(0); i < 32; i++ {
		name := RegName(i)
		r, ok := RegByName(name)
		if !ok || r != i {
			t.Errorf("RegByName(RegName(%d)) = %d, %v", i, r, ok)
		}
	}
	if r, ok := RegByName("fp"); !ok || r != 8 {
		t.Error("fp alias broken")
	}
	if _, ok := RegByName("x32"); ok {
		t.Error("x32 should not resolve")
	}
}
