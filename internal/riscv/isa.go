// Package riscv implements the RV64IM guest ISA used by the DBT-based
// processor: instruction encoding and decoding, a two-pass assembler, a
// disassembler, and a reference in-order interpreter with cycle accounting.
//
// The subset matches the paper's evaluation target ("RISC-V binaries using
// the rv64im ISA"): the full RV64I base, the M extension, the cycle CSR
// (rdcycle) used for the cache side channel, and a custom cflush
// instruction standing in for the explicit line-by-line cache flush the
// paper performs on the RISC-V version of the attack.
package riscv

import "fmt"

// Op enumerates the decoded operations of the RV64IM subset.
type Op uint8

const (
	// OpIllegal is the zero Op; decoding an unknown word yields it.
	OpIllegal Op = iota

	// RV64I upper-immediate and jumps.
	LUI
	AUIPC
	JAL
	JALR

	// Conditional branches.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Loads.
	LB
	LH
	LW
	LD
	LBU
	LHU
	LWU

	// Stores.
	SB
	SH
	SW
	SD

	// Integer register-immediate.
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADDIW
	SLLIW
	SRLIW
	SRAIW

	// Integer register-register.
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	ADDW
	SUBW
	SLLW
	SRLW
	SRAW

	// M extension.
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU
	MULW
	DIVW
	DIVUW
	REMW
	REMUW

	// System.
	FENCE
	ECALL
	EBREAK
	CSRRW
	CSRRS
	CSRRC

	// CFLUSH is a custom-0 instruction flushing the data-cache line that
	// contains the address in rs1. The paper's RISC-V attack flushes the
	// cache "line by line"; this is the per-line flush primitive.
	CFLUSH
	// CFLUSHALL is a custom-0 instruction flushing the whole data cache.
	CFLUSHALL

	numOps
)

// Format describes the bit layout of an encoded instruction.
type Format uint8

const (
	FmtR Format = iota
	FmtI
	FmtS
	FmtB
	FmtU
	FmtJ
	FmtShift64 // I-format with 6-bit shamt (RV64 shifts)
	FmtShift32 // I-format with 5-bit shamt (*W shifts)
	FmtSys     // ecall/ebreak: fixed imm, no operands
	FmtCSR     // I-format where imm is a CSR number
)

// CSR numbers implemented by the machine.
const (
	CSRCycle   = 0xC00
	CSRTime    = 0xC01
	CSRInstret = 0xC02
)

// opInfo is the per-opcode encoding metadata.
type opInfo struct {
	name   string
	format Format
	opcode uint32 // 7-bit major opcode
	funct3 uint32
	funct7 uint32 // also holds funct6<<1 for 64-bit shifts, imm for Sys
}

const (
	opcLoad   = 0x03
	opcOpImm  = 0x13
	opcAuipc  = 0x17
	opcOpImmW = 0x1B
	opcStore  = 0x23
	opcOp     = 0x33
	opcLui    = 0x37
	opcOpW    = 0x3B
	opcBranch = 0x63
	opcJalr   = 0x67
	opcJal    = 0x6F
	opcMiscM  = 0x0F
	opcSystem = 0x73
	opcCustom = 0x0B // custom-0: cflush / cflushall
)

var opTable = [numOps]opInfo{
	LUI:   {"lui", FmtU, opcLui, 0, 0},
	AUIPC: {"auipc", FmtU, opcAuipc, 0, 0},
	JAL:   {"jal", FmtJ, opcJal, 0, 0},
	JALR:  {"jalr", FmtI, opcJalr, 0, 0},

	BEQ:  {"beq", FmtB, opcBranch, 0, 0},
	BNE:  {"bne", FmtB, opcBranch, 1, 0},
	BLT:  {"blt", FmtB, opcBranch, 4, 0},
	BGE:  {"bge", FmtB, opcBranch, 5, 0},
	BLTU: {"bltu", FmtB, opcBranch, 6, 0},
	BGEU: {"bgeu", FmtB, opcBranch, 7, 0},

	LB:  {"lb", FmtI, opcLoad, 0, 0},
	LH:  {"lh", FmtI, opcLoad, 1, 0},
	LW:  {"lw", FmtI, opcLoad, 2, 0},
	LD:  {"ld", FmtI, opcLoad, 3, 0},
	LBU: {"lbu", FmtI, opcLoad, 4, 0},
	LHU: {"lhu", FmtI, opcLoad, 5, 0},
	LWU: {"lwu", FmtI, opcLoad, 6, 0},

	SB: {"sb", FmtS, opcStore, 0, 0},
	SH: {"sh", FmtS, opcStore, 1, 0},
	SW: {"sw", FmtS, opcStore, 2, 0},
	SD: {"sd", FmtS, opcStore, 3, 0},

	ADDI:  {"addi", FmtI, opcOpImm, 0, 0},
	SLTI:  {"slti", FmtI, opcOpImm, 2, 0},
	SLTIU: {"sltiu", FmtI, opcOpImm, 3, 0},
	XORI:  {"xori", FmtI, opcOpImm, 4, 0},
	ORI:   {"ori", FmtI, opcOpImm, 6, 0},
	ANDI:  {"andi", FmtI, opcOpImm, 7, 0},
	SLLI:  {"slli", FmtShift64, opcOpImm, 1, 0x00},
	SRLI:  {"srli", FmtShift64, opcOpImm, 5, 0x00},
	SRAI:  {"srai", FmtShift64, opcOpImm, 5, 0x20},
	ADDIW: {"addiw", FmtI, opcOpImmW, 0, 0},
	SLLIW: {"slliw", FmtShift32, opcOpImmW, 1, 0x00},
	SRLIW: {"srliw", FmtShift32, opcOpImmW, 5, 0x00},
	SRAIW: {"sraiw", FmtShift32, opcOpImmW, 5, 0x20},

	ADD:  {"add", FmtR, opcOp, 0, 0x00},
	SUB:  {"sub", FmtR, opcOp, 0, 0x20},
	SLL:  {"sll", FmtR, opcOp, 1, 0x00},
	SLT:  {"slt", FmtR, opcOp, 2, 0x00},
	SLTU: {"sltu", FmtR, opcOp, 3, 0x00},
	XOR:  {"xor", FmtR, opcOp, 4, 0x00},
	SRL:  {"srl", FmtR, opcOp, 5, 0x00},
	SRA:  {"sra", FmtR, opcOp, 5, 0x20},
	OR:   {"or", FmtR, opcOp, 6, 0x00},
	AND:  {"and", FmtR, opcOp, 7, 0x00},
	ADDW: {"addw", FmtR, opcOpW, 0, 0x00},
	SUBW: {"subw", FmtR, opcOpW, 0, 0x20},
	SLLW: {"sllw", FmtR, opcOpW, 1, 0x00},
	SRLW: {"srlw", FmtR, opcOpW, 5, 0x00},
	SRAW: {"sraw", FmtR, opcOpW, 5, 0x20},

	MUL:    {"mul", FmtR, opcOp, 0, 0x01},
	MULH:   {"mulh", FmtR, opcOp, 1, 0x01},
	MULHSU: {"mulhsu", FmtR, opcOp, 2, 0x01},
	MULHU:  {"mulhu", FmtR, opcOp, 3, 0x01},
	DIV:    {"div", FmtR, opcOp, 4, 0x01},
	DIVU:   {"divu", FmtR, opcOp, 5, 0x01},
	REM:    {"rem", FmtR, opcOp, 6, 0x01},
	REMU:   {"remu", FmtR, opcOp, 7, 0x01},
	MULW:   {"mulw", FmtR, opcOpW, 0, 0x01},
	DIVW:   {"divw", FmtR, opcOpW, 4, 0x01},
	DIVUW:  {"divuw", FmtR, opcOpW, 5, 0x01},
	REMW:   {"remw", FmtR, opcOpW, 6, 0x01},
	REMUW:  {"remuw", FmtR, opcOpW, 7, 0x01},

	FENCE:  {"fence", FmtSys, opcMiscM, 0, 0},
	ECALL:  {"ecall", FmtSys, opcSystem, 0, 0},
	EBREAK: {"ebreak", FmtSys, opcSystem, 0, 1},
	CSRRW:  {"csrrw", FmtCSR, opcSystem, 1, 0},
	CSRRS:  {"csrrs", FmtCSR, opcSystem, 2, 0},
	CSRRC:  {"csrrc", FmtCSR, opcSystem, 3, 0},

	CFLUSH:    {"cflush", FmtR, opcCustom, 0, 0},
	CFLUSHALL: {"cflushall", FmtR, opcCustom, 1, 0},
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op == OpIllegal || op >= numOps {
		return "illegal"
	}
	return opTable[op].name
}

// Info returns the encoding format metadata for op.
func (op Op) Info() (Format, bool) {
	if op == OpIllegal || op >= numOps {
		return 0, false
	}
	return opTable[op].format, true
}

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool {
	return op >= LB && op <= LWU
}

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool {
	return op >= SB && op <= SD
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool {
	return op >= BEQ && op <= BGEU
}

// MemSize returns the access size in bytes for a load or store, or 0.
func (op Op) MemSize() int {
	switch op {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, LWU, SW:
		return 4
	case LD, SD:
		return 8
	}
	return 0
}

// Inst is a decoded instruction. Imm holds the sign-extended immediate
// (the CSR number for CSR ops, the shamt for shift-immediates).
type Inst struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Imm          int64
	Raw          uint32
}

func (in Inst) String() string { return Disasm(in) }

// ABI register names, indexed by register number.
var regNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegName returns the ABI name of register r.
func RegName(r uint8) string {
	if r < 32 {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// regByName maps every accepted register spelling to its number.
var regByName = func() map[string]uint8 {
	m := make(map[string]uint8, 96)
	for i, n := range regNames {
		m[n] = uint8(i)
		m[fmt.Sprintf("x%d", i)] = uint8(i)
	}
	m["fp"] = 8 // alias for s0
	return m
}()

// RegByName resolves an ABI or xN register name.
func RegByName(name string) (uint8, bool) {
	r, ok := regByName[name]
	return r, ok
}

// opByName maps mnemonics to opcodes, for the assembler.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Op(1); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
