package riscv

import "fmt"

// Disasm renders a decoded instruction in assembler syntax. The output
// round-trips through the assembler for all instruction forms the
// assembler accepts.
func Disasm(in Inst) string {
	if in.Op == OpIllegal || in.Op >= numOps {
		return fmt.Sprintf(".word %#08x", in.Raw)
	}
	info := opTable[in.Op]
	rd, rs1, rs2 := RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2)

	switch info.format {
	case FmtR:
		switch in.Op {
		case CFLUSH:
			return fmt.Sprintf("cflush %s", rs1)
		case CFLUSHALL:
			return "cflushall"
		}
		return fmt.Sprintf("%s %s, %s, %s", info.name, rd, rs1, rs2)
	case FmtI:
		if in.Op.IsLoad() {
			return fmt.Sprintf("%s %s, %d(%s)", info.name, rd, in.Imm, rs1)
		}
		if in.Op == JALR {
			return fmt.Sprintf("jalr %s, %d(%s)", rd, in.Imm, rs1)
		}
		return fmt.Sprintf("%s %s, %s, %d", info.name, rd, rs1, in.Imm)
	case FmtShift64, FmtShift32:
		return fmt.Sprintf("%s %s, %s, %d", info.name, rd, rs1, in.Imm)
	case FmtS:
		return fmt.Sprintf("%s %s, %d(%s)", info.name, rs2, in.Imm, rs1)
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", info.name, rs1, rs2, in.Imm)
	case FmtU:
		return fmt.Sprintf("%s %s, %#x", info.name, rd, uint32(in.Imm)>>12)
	case FmtJ:
		return fmt.Sprintf("jal %s, %d", rd, in.Imm)
	case FmtSys:
		return info.name
	case FmtCSR:
		return fmt.Sprintf("%s %s, %#x, %s", info.name, rd, in.Imm, rs1)
	}
	return fmt.Sprintf(".word %#08x", in.Raw)
}
