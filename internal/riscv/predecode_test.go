package riscv

import (
	"fmt"
	"testing"
)

// memBus is a minimal Bus for interpreter tests: flat memory, no timing.
type memBus struct {
	base uint64
	data []byte
}

func newMemBus(base uint64, size int) *memBus {
	return &memBus{base: base, data: make([]byte, size)}
}

func (b *memBus) word(addr uint64) (uint32, bool) {
	off := int(addr - b.base)
	if addr < b.base || off+4 > len(b.data) {
		return 0, false
	}
	return uint32(b.data[off]) | uint32(b.data[off+1])<<8 |
		uint32(b.data[off+2])<<16 | uint32(b.data[off+3])<<24, true
}

func (b *memBus) Fetch(addr uint64) (uint32, error) {
	w, ok := b.word(addr)
	if !ok {
		return 0, fmt.Errorf("fetch out of range at %#x", addr)
	}
	return w, nil
}

func (b *memBus) Load(addr uint64, size int) (uint64, uint64, error) {
	var v uint64
	for i := 0; i < size; i++ {
		off := int(addr-b.base) + i
		if addr < b.base || off >= len(b.data) {
			return 0, 0, fmt.Errorf("load out of range at %#x", addr)
		}
		v |= uint64(b.data[off]) << (8 * i)
	}
	return v, 1, nil
}

func (b *memBus) Store(addr uint64, size int, val uint64) (uint64, error) {
	for i := 0; i < size; i++ {
		off := int(addr-b.base) + i
		if addr < b.base || off >= len(b.data) {
			return 0, fmt.Errorf("store out of range at %#x", addr)
		}
		b.data[off] = byte(val >> (8 * i))
	}
	return 1, nil
}

func (b *memBus) putWord(addr uint64, w uint32) {
	_, _ = b.Store(addr, 4, uint64(w))
}

func (b *memBus) FlushLine(uint64) {}
func (b *memBus) FlushAll()        {}

func encodeOrDie(t *testing.T, in Inst) uint32 {
	t.Helper()
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPredecodeFillHitInvalidate(t *testing.T) {
	const base = 0x1000
	b := newMemBus(base, 64)
	addi := encodeOrDie(t, Inst{Op: ADDI, Rd: 5, Rs1: 5, Imm: 1})
	b.putWord(base, addi)

	pd := NewPredecode(base, 4)
	in, err := pd.fetch(base, b)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != ADDI || in.Imm != 1 {
		t.Fatalf("first fetch decoded %v", in)
	}
	if s := pd.Stats(); s.Fills != 1 || s.Hits != 0 {
		t.Fatalf("after fill: %+v", s)
	}

	// Second fetch is a table hit even though memory now differs — until
	// a store invalidates the slot, exactly like a hardware predecode
	// buffer without coherence would behave. (The machine always routes
	// stores through Invalidate, so this state is unreachable there.)
	b.putWord(base, encodeOrDie(t, Inst{Op: ADDI, Rd: 5, Rs1: 5, Imm: 2}))
	in, err = pd.fetch(base, b)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != 1 {
		t.Fatalf("cached fetch decoded imm %d, want stale 1", in.Imm)
	}
	if s := pd.Stats(); s.Hits != 1 {
		t.Fatalf("after hit: %+v", s)
	}

	// Invalidate the slot: the next fetch re-decodes the new bytes.
	pd.Invalidate(base+2, 1) // partial overlap still kills the slot
	in, err = pd.fetch(base, b)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != 2 {
		t.Fatalf("post-invalidate fetch decoded imm %d, want 2", in.Imm)
	}
	if s := pd.Stats(); s.Invalidations != 1 || s.Fills != 2 {
		t.Fatalf("after invalidate: %+v", s)
	}
}

func TestPredecodeBypass(t *testing.T) {
	const base = 0x1000
	b := newMemBus(base, 64)
	addi := encodeOrDie(t, Inst{Op: ADDI, Rd: 5, Rs1: 5, Imm: 3})
	b.putWord(base+32, addi)

	pd := NewPredecode(base, 4) // covers [0x1000, 0x1010)
	in, err := pd.fetch(base+32, b)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != ADDI {
		t.Fatalf("bypass fetch decoded %v", in)
	}
	if s := pd.Stats(); s.Bypasses != 1 || s.Fills != 0 {
		t.Fatalf("stats after out-of-range fetch: %+v", s)
	}

	// Misaligned PCs also bypass (no slot corresponds to them).
	b.putWord(base+2, 0) // garbage; decode result irrelevant
	if _, err := pd.fetch(base+2, b); err != nil {
		t.Fatal(err)
	}
	if s := pd.Stats(); s.Bypasses != 2 {
		t.Fatalf("stats after misaligned fetch: %+v", s)
	}
}

func TestPredecodeNil(t *testing.T) {
	const base = 0x1000
	b := newMemBus(base, 64)
	b.putWord(base, encodeOrDie(t, Inst{Op: ADDI, Rd: 5, Rs1: 0, Imm: 7}))

	var pd *Predecode
	in, err := pd.fetch(base, b)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != ADDI || in.Imm != 7 {
		t.Fatalf("nil predecode fetch decoded %v", in)
	}
	pd.Invalidate(base, 8) // must not panic
	pd.InvalidateAll()
	if s := pd.Stats(); s != (PredecodeStats{}) {
		t.Fatalf("nil stats: %+v", s)
	}
}

func TestPredecodeInvalidateRanges(t *testing.T) {
	const base = 0x1000
	b := newMemBus(base, 64)
	for i := 0; i < 4; i++ {
		b.putWord(base+uint64(4*i), encodeOrDie(t, Inst{Op: ADDI, Rd: 5, Rs1: 5, Imm: int64(i)}))
	}
	pd := NewPredecode(base, 4)
	for i := 0; i < 4; i++ {
		if _, err := pd.fetch(base+uint64(4*i), b); err != nil {
			t.Fatal(err)
		}
	}

	// A store entirely outside the table clears nothing.
	pd.Invalidate(base-16, 8)
	pd.Invalidate(base+64, 8)
	if s := pd.Stats(); s.Invalidations != 0 {
		t.Fatalf("out-of-range store invalidated %d slots", s.Invalidations)
	}

	// An 8-byte store spanning slots 1 and 2 clears exactly those.
	pd.Invalidate(base+4, 8)
	if s := pd.Stats(); s.Invalidations != 2 {
		t.Fatalf("spanning store invalidated %d slots, want 2", s.Invalidations)
	}
	// Slots 0 and 3 still hit; 1 and 2 refill.
	hitsBefore := pd.Stats().Hits
	for i := 0; i < 4; i++ {
		if _, err := pd.fetch(base+uint64(4*i), b); err != nil {
			t.Fatal(err)
		}
	}
	s := pd.Stats()
	if s.Hits != hitsBefore+2 || s.Fills != 6 {
		t.Fatalf("after refill: %+v", s)
	}

	pd.InvalidateAll()
	if s := pd.Stats(); s.Invalidations != 2+4 {
		t.Fatalf("after InvalidateAll: %+v", s)
	}
}

// StepPredecoded and Step must agree instruction by instruction,
// including on stores that overwrite code already in the table.
func TestStepPredecodedMatchesStep(t *testing.T) {
	const base = 0x1000
	build := func() *memBus {
		b := newMemBus(base, 256)
		words := []Inst{
			{Op: ADDI, Rd: 5, Rs1: 0, Imm: 40},  // t0 = 40
			{Op: ADDI, Rd: 6, Rs1: 5, Imm: 2},   // t1 = 42
			{Op: SD, Rs1: 2, Rs2: 6, Imm: 0},    // [sp] = t1
			{Op: LD, Rd: 7, Rs1: 2, Imm: 0},     // t2 = [sp]
			{Op: ADD, Rd: 10, Rs1: 7, Rs2: 6},   // a0 = t2 + t1
			{Op: BEQ, Rs1: 10, Rs2: 10, Imm: 8}, // always taken, skip next
			{Op: ADDI, Rd: 10, Rs1: 0, Imm: -1}, // skipped
			{Op: ECALL},                         //
		}
		for i, in := range words {
			b.putWord(base+uint64(4*i), encodeOrDie(t, in))
		}
		return b
	}

	run := func(pd *Predecode, b *memBus) (State, []StepResult) {
		st := State{PC: base}
		st.X[2] = base + 128 // sp inside the bus memory
		var log []StepResult
		for i := 0; i < 64; i++ {
			res := StepPredecoded(&st, b, DefaultTiming(), uint64(i), pd)
			log = append(log, res)
			if res.Event.Kind != EvNone {
				break
			}
		}
		return st, log
	}

	stPlain, logPlain := run(nil, build())
	bp := build()
	stPred, logPred := run(NewPredecode(base, 64), bp)

	if stPlain != stPred {
		t.Fatalf("states differ:\nplain %+v\npred  %+v", stPlain, stPred)
	}
	if len(logPlain) != len(logPred) {
		t.Fatalf("step counts differ: %d vs %d", len(logPlain), len(logPred))
	}
	for i := range logPlain {
		if logPlain[i].Inst != logPred[i].Inst || logPlain[i].Cycles != logPred[i].Cycles ||
			logPlain[i].Taken != logPred[i].Taken || logPlain[i].Target != logPred[i].Target {
			t.Fatalf("step %d differs:\nplain %+v\npred  %+v", i, logPlain[i], logPred[i])
		}
	}
}
