package riscv

import (
	"math/bits"

	"ghostbusters/internal/trap"
)

// State is the RISC-V architectural state of the guest.
type State struct {
	PC      uint64
	X       [32]uint64
	Instret uint64
}

// Bus is the memory system seen by the interpreter (and by the VLIW core):
// a flat guest memory behind a timed data cache. Load returns the
// zero-extended value plus the access latency in cycles.
type Bus interface {
	Fetch(addr uint64) (uint32, error)
	Load(addr uint64, size int) (val uint64, latency uint64, err error)
	Store(addr uint64, size int, val uint64) (latency uint64, err error)
	FlushLine(addr uint64)
	FlushAll()
}

// EventKind classifies why execution left the normal instruction stream.
type EventKind uint8

const (
	EvNone  EventKind = iota
	EvExit            // ecall: guest requested exit, code in a0
	EvBreak           // ebreak
	EvFault           // illegal instruction or memory fault
)

// Event describes an execution event raised by Step.
type Event struct {
	Kind EventKind
	Code int64  // exit code for EvExit
	Err  error  // fault cause for EvFault
	Addr uint64 // faulting PC
}

// Timing holds the interpreter cost model. A DBT-based processor
// interprets cold code in software, so each interpreted instruction costs
// several cycles of the underlying VLIW core before translation kicks in.
type Timing struct {
	BaseCPI  uint64 // cycles per interpreted instruction (dispatch cost)
	MulExtra uint64 // extra cycles for multiply
	DivExtra uint64 // extra cycles for divide/remainder
}

// DefaultTiming returns the standard interpreter cost model.
func DefaultTiming() Timing {
	return Timing{BaseCPI: 3, MulExtra: 2, DivExtra: 16}
}

// StepResult reports one interpreted instruction.
type StepResult struct {
	Inst   Inst
	Cycles uint64
	Event  Event
	// Branch profiling feedback for the DBT engine.
	IsBranch bool
	Taken    bool
	Target   uint64 // branch/jump destination when taken
}

// fetchFault classifies a failed instruction fetch: control reached an
// address that does not hold executable code (out of range, misaligned,
// or otherwise unreadable), i.e. a branch or jump to an invalid target.
func fetchFault(pc uint64, err error) Event {
	f := trap.Newf(trap.InvalidBranchTarget, "instruction fetch failed: %s", trap.From(err).Detail)
	f.PC = pc
	f.Addr = pc
	return Event{Kind: EvFault, Err: f, Addr: pc}
}

// Step interprets the instruction at st.PC, advancing the state. now is
// the machine cycle counter before this instruction (visible via rdcycle).
func Step(st *State, bus Bus, tm Timing, now uint64) StepResult {
	pc := st.PC
	word, err := bus.Fetch(pc)
	if err != nil {
		return StepResult{Event: fetchFault(pc, err)}
	}
	return stepDecoded(st, bus, tm, now, Decode(word))
}

// StepPredecoded is Step with a predecode side table: the instruction at
// st.PC is served from pd when cached there, decoded (and cached) on
// first touch, and fetched uncached when pc is outside pd's coverage. A
// nil pd degrades to plain Step. Architectural behaviour is identical to
// Step in every case — pd only removes redundant decode work.
func StepPredecoded(st *State, bus Bus, tm Timing, now uint64, pd *Predecode) StepResult {
	pc := st.PC
	in, err := pd.fetch(pc, bus)
	if err != nil {
		return StepResult{Event: fetchFault(pc, err)}
	}
	return stepDecoded(st, bus, tm, now, in)
}

// stepDecoded executes one already-decoded instruction at pc == st.PC.
func stepDecoded(st *State, bus Bus, tm Timing, now uint64, in Inst) StepResult {
	pc := st.PC
	res := StepResult{Inst: in, Cycles: tm.BaseCPI}
	if in.Op == OpIllegal {
		f := trap.Newf(trap.IllegalInstruction, "illegal instruction %#08x", in.Raw)
		f.PC = pc
		res.Event = Event{Kind: EvFault, Err: f, Addr: pc}
		return res
	}

	x := func(r uint8) uint64 {
		return st.X[r]
	}
	setX := func(r uint8, v uint64) {
		if r != 0 {
			st.X[r] = v
		}
	}
	nextPC := pc + 4

	switch in.Op {
	case LUI:
		setX(in.Rd, uint64(in.Imm))
	case AUIPC:
		setX(in.Rd, pc+uint64(in.Imm))
	case JAL:
		setX(in.Rd, pc+4)
		nextPC = pc + uint64(in.Imm)
		res.IsBranch, res.Taken, res.Target = true, true, nextPC
	case JALR:
		t := (x(in.Rs1) + uint64(in.Imm)) &^ 1
		setX(in.Rd, pc+4)
		nextPC = t
		res.IsBranch, res.Taken, res.Target = true, true, nextPC

	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		res.IsBranch = true
		res.Target = pc + uint64(in.Imm)
		if EvalBranch(in.Op, x(in.Rs1), x(in.Rs2)) {
			res.Taken = true
			nextPC = res.Target
		}

	case LB, LH, LW, LD, LBU, LHU, LWU:
		addr := x(in.Rs1) + uint64(in.Imm)
		size := in.Op.MemSize()
		v, lat, err := bus.Load(addr, size)
		res.Cycles += lat
		if err != nil {
			f := trap.From(err)
			f.PC = pc
			res.Event = Event{Kind: EvFault, Err: f, Addr: pc}
			return res
		}
		setX(in.Rd, ExtendLoad(in.Op, v))

	case SB, SH, SW, SD:
		addr := x(in.Rs1) + uint64(in.Imm)
		lat, err := bus.Store(addr, in.Op.MemSize(), x(in.Rs2))
		res.Cycles += lat
		if err != nil {
			f := trap.From(err)
			f.PC = pc
			res.Event = Event{Kind: EvFault, Err: f, Addr: pc}
			return res
		}

	case ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI, ADDIW, SLLIW, SRLIW, SRAIW:
		setX(in.Rd, EvalALUImm(in.Op, x(in.Rs1), in.Imm))

	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND, ADDW, SUBW, SLLW, SRLW, SRAW:
		setX(in.Rd, EvalALU(in.Op, x(in.Rs1), x(in.Rs2)))

	case MUL, MULH, MULHSU, MULHU, MULW:
		res.Cycles += tm.MulExtra
		setX(in.Rd, EvalALU(in.Op, x(in.Rs1), x(in.Rs2)))
	case DIV, DIVU, REM, REMU, DIVW, DIVUW, REMW, REMUW:
		res.Cycles += tm.DivExtra
		setX(in.Rd, EvalALU(in.Op, x(in.Rs1), x(in.Rs2)))

	case FENCE:
		// memory ordering: no-op in this in-order model

	case ECALL:
		res.Event = Event{Kind: EvExit, Code: int64(x(10))}
		st.Instret++
		st.PC = nextPC
		return res
	case EBREAK:
		res.Event = Event{Kind: EvBreak}
		st.Instret++
		st.PC = nextPC
		return res

	case CSRRW, CSRRS, CSRRC:
		var v uint64
		switch in.Imm {
		case CSRCycle, CSRTime:
			v = now
		case CSRInstret:
			v = st.Instret
		}
		// cycle/time/instret are read-only; write side is ignored.
		setX(in.Rd, v)

	case CFLUSH:
		bus.FlushLine(x(in.Rs1))
	case CFLUSHALL:
		bus.FlushAll()

	default:
		f := trap.Newf(trap.IllegalInstruction, "unimplemented op %s", in.Op)
		f.PC = pc
		res.Event = Event{Kind: EvFault, Err: f, Addr: pc}
		return res
	}

	st.Instret++
	st.PC = nextPC
	return res
}

// EvalBranch evaluates a conditional branch condition.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int64(a) < int64(b)
	case BGE:
		return int64(a) >= int64(b)
	case BLTU:
		return a < b
	case BGEU:
		return a >= b
	}
	return false
}

// ExtendLoad sign- or zero-extends a raw loaded value according to op.
func ExtendLoad(op Op, v uint64) uint64 {
	switch op {
	case LB:
		return uint64(int64(int8(v)))
	case LH:
		return uint64(int64(int16(v)))
	case LW:
		return uint64(int64(int32(v)))
	case LD, LBU, LHU, LWU:
		return v
	}
	return v
}

// EvalALUImm computes a register-immediate ALU operation.
func EvalALUImm(op Op, a uint64, imm int64) uint64 {
	switch op {
	case ADDI:
		return a + uint64(imm)
	case SLTI:
		if int64(a) < imm {
			return 1
		}
		return 0
	case SLTIU:
		if a < uint64(imm) {
			return 1
		}
		return 0
	case XORI:
		return a ^ uint64(imm)
	case ORI:
		return a | uint64(imm)
	case ANDI:
		return a & uint64(imm)
	case SLLI:
		return a << uint(imm&63)
	case SRLI:
		return a >> uint(imm&63)
	case SRAI:
		return uint64(int64(a) >> uint(imm&63))
	case ADDIW:
		return uint64(int64(int32(a + uint64(imm))))
	case SLLIW:
		return uint64(int64(int32(uint32(a) << uint(imm&31))))
	case SRLIW:
		return uint64(int64(int32(uint32(a) >> uint(imm&31))))
	case SRAIW:
		return uint64(int64(int32(a) >> uint(imm&31)))
	}
	return 0
}

// EvalALU computes a register-register ALU or M-extension operation with
// the exact RV64IM semantics (including division edge cases).
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case SLL:
		return a << (b & 63)
	case SLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case SLTU:
		if a < b {
			return 1
		}
		return 0
	case XOR:
		return a ^ b
	case SRL:
		return a >> (b & 63)
	case SRA:
		return uint64(int64(a) >> (b & 63))
	case OR:
		return a | b
	case AND:
		return a & b
	case ADDW:
		return uint64(int64(int32(a + b)))
	case SUBW:
		return uint64(int64(int32(a - b)))
	case SLLW:
		return uint64(int64(int32(uint32(a) << (b & 31))))
	case SRLW:
		return uint64(int64(int32(uint32(a) >> (b & 31))))
	case SRAW:
		return uint64(int64(int32(a) >> (b & 31)))

	case MUL:
		return a * b
	case MULH:
		hi, _ := bits.Mul64(a, b)
		if int64(a) < 0 {
			hi -= b
		}
		if int64(b) < 0 {
			hi -= a
		}
		return hi
	case MULHSU:
		hi, _ := bits.Mul64(a, b)
		if int64(a) < 0 {
			hi -= b
		}
		return hi
	case MULHU:
		hi, _ := bits.Mul64(a, b)
		return hi
	case DIV:
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a
		}
		return uint64(int64(a) / int64(b))
	case DIVU:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case REM:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case REMU:
		if b == 0 {
			return a
		}
		return a % b
	case MULW:
		return uint64(int64(int32(a * b)))
	case DIVW:
		x, y := int32(a), int32(b)
		if y == 0 {
			return ^uint64(0)
		}
		if x == -1<<31 && y == -1 {
			return uint64(int64(x))
		}
		return uint64(int64(x / y))
	case DIVUW:
		x, y := uint32(a), uint32(b)
		if y == 0 {
			return ^uint64(0)
		}
		return uint64(int64(int32(x / y)))
	case REMW:
		x, y := int32(a), int32(b)
		if y == 0 {
			return uint64(int64(x))
		}
		if x == -1<<31 && y == -1 {
			return 0
		}
		return uint64(int64(x % y))
	case REMUW:
		x, y := uint32(a), uint32(b)
		if y == 0 {
			return uint64(int64(int32(x)))
		}
		return uint64(int64(int32(x % y)))
	}
	return 0
}
