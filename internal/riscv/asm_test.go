package riscv_test

import (
	"math/rand"
	"strings"
	"testing"

	"ghostbusters/internal/riscv"
)

func TestAssembleSymbolsAndLayout(t *testing.T) {
	src := `
	.text
main:
	nop
	nop
after:
	ecall
	.data
v0:	.dword 7
v1:	.word 1, 2
v2:	.byte 0xff
	.align 3
v3:	.dword 9
`
	p, err := riscv.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry = %#x, want text base %#x", p.Entry, p.TextBase)
	}
	if got := p.MustSymbol("after"); got != p.TextBase+8 {
		t.Errorf("after = %#x, want %#x", got, p.TextBase+8)
	}
	if got := p.MustSymbol("v1"); got != p.DataBase+8 {
		t.Errorf("v1 = %#x, want %#x", got, p.DataBase+8)
	}
	if got := p.MustSymbol("v3"); got%8 != 0 {
		t.Errorf("v3 = %#x not 8-aligned", got)
	}
	if p.DataBase%0x1000 != 0 || p.DataBase < p.TextBase+uint64(4*len(p.Text)) {
		t.Errorf("bad data base %#x", p.DataBase)
	}
	// data content
	if p.Data[0] != 7 || p.Data[8] != 1 || p.Data[12] != 2 || p.Data[16] != 0xff {
		t.Errorf("data bytes wrong: % x", p.Data[:17])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"main:\n\tbadop a0, a1\n",
		"main:\n\taddi a0, a1\n",        // missing operand
		"main:\n\taddi a0, a1, 10000\n", // imm out of range
		"main:\n\tld a0, a1\n",          // bad memory operand
		"dup:\nnop\ndup:\nnop\n",        // duplicate label
		"\t.data\n\tnop\n",              // instruction in .data
		"main:\n\tj nowhere\n",          // undefined label -> parse imm fails
		"main:\n\tli a0, nope\n",        // li needs constant
	}
	for _, src := range cases {
		if _, err := riscv.Assemble(src); err == nil {
			t.Errorf("Assemble(%q): expected error", src)
		}
	}
}

func TestAssembleEqu(t *testing.T) {
	src := `
	.equ N, 32
main:
	li a0, N
	ecall
`
	p := riscv.MustAssemble(src)
	b := newBus()
	_, ev, _ := run(t, b, p, 100)
	if ev.Code != 32 {
		t.Fatalf("exit = %d, want 32", ev.Code)
	}
}

// Property: li materialises arbitrary 64-bit constants exactly.
func TestLiMaterialization(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	values := []int64{0, 1, -1, 2047, -2048, 2048, -2049, 1 << 12, 1<<31 - 1,
		-1 << 31, 1 << 31, 0x7FFFF800, 0x7FFFFFFF, -1 << 63, 1<<63 - 1,
		0x123456789ABCDEF0 - 1<<63, 0x0000444400004444}
	for i := 0; i < 300; i++ {
		values = append(values, int64(r.Uint64()))
	}
	for _, v := range values {
		src := "main:\n\tli a0, " + itoa(v) + "\n\tebreak\n"
		p, err := riscv.Assemble(src)
		if err != nil {
			t.Fatalf("li %d: %v", v, err)
		}
		b := newBus()
		st, ev, _ := run(t, b, p, 100)
		if ev.Kind != riscv.EvBreak {
			t.Fatalf("li %d: event %+v", v, ev)
		}
		if got := int64(st.X[10]); got != v {
			t.Fatalf("li %d materialised %d", v, got)
		}
	}
}

func itoa(v int64) string {
	if v >= 0 {
		return uitoa(uint64(v))
	}
	return "-" + uitoa(uint64(-v)) // careful: -MinInt64 wraps to itself, still correct bits
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestAssembleLaRoundTrip(t *testing.T) {
	src := `
	.data
x:	.space 4096
y:	.dword 0xabcdef
	.text
main:
	la t0, y
	ld a0, 0(t0)
	ebreak
`
	p := riscv.MustAssemble(src)
	b := newBus()
	st, ev, _ := run(t, b, p, 100)
	if ev.Kind != riscv.EvBreak || st.X[10] != 0xabcdef {
		t.Fatalf("la/ld: a0 = %#x, ev %+v", st.X[10], ev)
	}
}

func TestAssembleSymbolPlusOffset(t *testing.T) {
	src := `
	.data
arr:	.dword 1, 2, 3
	.text
main:
	la t0, arr+16
	ld a0, 0(t0)
	ebreak
`
	p := riscv.MustAssemble(src)
	b := newBus()
	st, _, _ := run(t, b, p, 100)
	if st.X[10] != 3 {
		t.Fatalf("arr+16 load = %d, want 3", st.X[10])
	}
}

func TestAssembleHiLo(t *testing.T) {
	src := `
	.data
val:	.dword 55
	.text
main:
	lui t0, %hi(val)
	ld a0, %lo(val)(t0)
	ebreak
`
	p := riscv.MustAssemble(src)
	b := newBus()
	st, _, _ := run(t, b, p, 100)
	if st.X[10] != 55 {
		t.Fatalf("%%hi/%%lo load = %d, want 55", st.X[10])
	}
}

func TestAssembleAsciz(t *testing.T) {
	src := `
	.data
s:	.asciz "hi\n"
	.text
main:	ebreak
`
	p := riscv.MustAssemble(src)
	if string(p.Data[:4]) != "hi\n\x00" {
		t.Fatalf("asciz = %q", p.Data[:4])
	}
}

// Disassembly of every assembled instruction re-assembles to the same word.
func TestDisasmRoundTrip(t *testing.T) {
	src := `
main:
	addi a0, a1, -5
	lui t0, 0x12345
	auipc t1, 0x1
	ld a2, 16(sp)
	sb a3, -1(gp)
	beq a0, a1, main
	jal ra, main
	jalr ra, 8(t0)
	slli s2, s3, 63
	sraiw s4, s5, 31
	mulhsu a4, a5, a6
	divuw a7, s6, s7
	csrrs t2, 0xc00, zero
	cflush t3
	cflushall
	fence
	ecall
	ebreak
`
	p := riscv.MustAssemble(src)
	for i, w := range p.Text {
		in := riscv.Decode(w)
		if in.Op == riscv.OpIllegal {
			t.Fatalf("word %d illegal: %#08x", i, w)
		}
		text := riscv.Disasm(in)
		// Branch/jump offsets disassemble as numeric offsets relative to
		// the instruction; reassemble in isolation.
		p2, err := riscv.Assemble("x:\n\t" + text + "\n")
		if err != nil {
			t.Fatalf("reassemble %q: %v", text, err)
		}
		if p2.Text[0] != w {
			t.Fatalf("disasm round trip %q: %#08x -> %#08x", text, w, p2.Text[0])
		}
	}
	_ = strings.TrimSpace("")
}
