package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled guest image.
type Program struct {
	Entry    uint64
	TextBase uint64
	Text     []uint32 // instruction words
	DataBase uint64
	Data     []byte
	Symbols  map[string]uint64
}

// Symbol returns the address of a label defined in the program.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// MustSymbol is Symbol for labels known to exist.
func (p *Program) MustSymbol(name string) uint64 {
	a, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("riscv: undefined symbol %q", name))
	}
	return a
}

// AsmOptions configures image layout.
type AsmOptions struct {
	TextBase  uint64 // default 0x10000
	DataAlign uint64 // data section alignment after text, default 0x1000
}

// DefaultAsmOptions returns the standard layout.
func DefaultAsmOptions() AsmOptions {
	return AsmOptions{TextBase: 0x10000, DataAlign: 0x1000}
}

// AsmError reports an assembly failure with its source line.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

// stmt is one parsed source statement.
type stmt struct {
	line     int
	labels   []string
	mnemonic string   // "" for label-only lines
	args     []string // comma-separated operands
}

// item is a pass-1 placed statement.
type item struct {
	stmt
	sec  section
	off  uint64 // offset within section
	size uint64 // bytes
}

type assembler struct {
	opts     AsmOptions
	items    []item
	symbols  map[string]uint64 // final addresses
	equs     map[string]int64  // .equ constants
	textSz   uint64
	dataSz   uint64
	dataBase uint64
}

// Assemble translates RV64IM assembly source into a Program. The dialect
// supports labels, the usual pseudo-instructions (li, la, mv, call, ret,
// beqz, ...), and the data directives .text/.data/.align/.byte/.half/
// .word/.dword/.space/.asciz/.equ. Entry is the address of "main" or
// "_start" when defined, else the start of .text.
func Assemble(src string, opts ...AsmOptions) (*Program, error) {
	o := DefaultAsmOptions()
	if len(opts) > 0 {
		o = opts[0]
		if o.TextBase == 0 {
			o.TextBase = 0x10000
		}
		if o.DataAlign == 0 {
			o.DataAlign = 0x1000
		}
	}
	a := &assembler{
		opts:    o,
		symbols: make(map[string]uint64),
		equs:    make(map[string]int64),
	}
	stmts, err := parseSource(src)
	if err != nil {
		return nil, err
	}
	if err := a.layout(stmts); err != nil {
		return nil, err
	}
	return a.emit()
}

// MustAssemble is Assemble for sources known valid (generated code, tests).
func MustAssemble(src string, opts ...AsmOptions) *Program {
	p, err := Assemble(src, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// parseSource splits the source into statements.
func parseSource(src string) ([]stmt, error) {
	var out []stmt
	for i, line := range strings.Split(src, "\n") {
		ln := i + 1
		if idx := strings.IndexAny(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var s stmt
		s.line = ln
		// Peel off leading labels.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if !isIdent(head) {
				break
			}
			s.labels = append(s.labels, head)
			line = strings.TrimSpace(line[idx+1:])
		}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			s.mnemonic = strings.ToLower(strings.TrimSpace(fields[0]))
			if len(fields) == 2 {
				s.args = splitArgs(fields[1])
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// splitArgs splits an operand list on top-level commas, honouring quotes.
func splitArgs(s string) []string {
	var args []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" || len(args) > 0 {
		args = append(args, t)
	}
	return args
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// layout is pass 1: compute sizes, place statements, define symbols.
func (a *assembler) layout(stmts []stmt) error {
	sec := secText
	offs := map[section]uint64{}
	pending := map[string]struct {
		sec section
		off uint64
	}{}

	for _, s := range stmts {
		for _, lbl := range s.labels {
			if _, dup := pending[lbl]; dup {
				return &AsmError{s.line, fmt.Sprintf("duplicate label %q", lbl)}
			}
			pending[lbl] = struct {
				sec section
				off uint64
			}{sec, offs[sec]}
		}
		if s.mnemonic == "" {
			continue
		}
		switch s.mnemonic {
		case ".text":
			sec = secText
			continue
		case ".data":
			sec = secData
			continue
		case ".global", ".globl", ".section", ".type", ".size":
			continue
		case ".equ":
			if len(s.args) != 2 {
				return &AsmError{s.line, ".equ needs name, value"}
			}
			v, err := a.parseImm(s.args[1], s.line)
			if err != nil {
				return err
			}
			a.equs[s.args[0]] = v
			continue
		}
		size, err := a.stmtSize(s, sec)
		if err != nil {
			return err
		}
		// Alignment directives adjust the current offset directly.
		if s.mnemonic == ".align" || s.mnemonic == ".balign" {
			if len(s.args) != 1 {
				return &AsmError{s.line, s.mnemonic + " needs one alignment argument"}
			}
			al, err := a.parseImm(s.args[0], s.line)
			if err != nil {
				return err
			}
			n := uint64(al)
			if s.mnemonic == ".align" {
				n = uint64(1) << uint(al)
			}
			if n == 0 || n&(n-1) != 0 {
				return &AsmError{s.line, "alignment must be a power of two"}
			}
			pad := (n - offs[sec]%n) % n
			if pad > 0 {
				a.items = append(a.items, item{stmt: stmt{line: s.line, mnemonic: ".space", args: []string{strconv.FormatUint(pad, 10)}}, sec: sec, off: offs[sec], size: pad})
				offs[sec] += pad
			}
			// Re-pin any labels that pointed at the pre-pad offset.
			for lbl, p := range pending {
				if p.sec == sec && p.off == offs[sec]-pad {
					pending[lbl] = struct {
						sec section
						off uint64
					}{sec, offs[sec]}
				}
			}
			continue
		}
		a.items = append(a.items, item{stmt: s, sec: sec, off: offs[sec], size: size})
		offs[sec] += size
	}
	a.textSz = offs[secText]
	a.dataSz = offs[secData]
	a.dataBase = alignUp(a.opts.TextBase+a.textSz, a.opts.DataAlign)
	for lbl, p := range pending {
		if p.sec == secText {
			a.symbols[lbl] = a.opts.TextBase + p.off
		} else {
			a.symbols[lbl] = a.dataBase + p.off
		}
	}
	return nil
}

func alignUp(v, n uint64) uint64 { return (v + n - 1) &^ (n - 1) }

// stmtSize returns the byte size a statement occupies.
func (a *assembler) stmtSize(s stmt, sec section) (uint64, error) {
	if strings.HasPrefix(s.mnemonic, ".") {
		switch s.mnemonic {
		case ".byte":
			return uint64(len(s.args)), nil
		case ".half":
			return uint64(2 * len(s.args)), nil
		case ".word":
			return uint64(4 * len(s.args)), nil
		case ".dword", ".quad":
			return uint64(8 * len(s.args)), nil
		case ".space", ".zero":
			if len(s.args) != 1 {
				return 0, &AsmError{s.line, s.mnemonic + " needs one size argument"}
			}
			n, err := a.parseImm(s.args[0], s.line)
			if err != nil {
				return 0, err
			}
			if n < 0 {
				return 0, &AsmError{s.line, ".space size negative"}
			}
			return uint64(n), nil
		case ".asciz", ".string":
			if len(s.args) != 1 {
				return 0, &AsmError{s.line, s.mnemonic + " needs one string argument"}
			}
			str, err := parseString(s.args[0], s.line)
			if err != nil {
				return 0, err
			}
			return uint64(len(str) + 1), nil
		case ".ascii":
			if len(s.args) != 1 {
				return 0, &AsmError{s.line, ".ascii needs one string argument"}
			}
			str, err := parseString(s.args[0], s.line)
			if err != nil {
				return 0, err
			}
			return uint64(len(str)), nil
		case ".align", ".balign":
			return 0, nil // handled by caller
		}
		return 0, &AsmError{s.line, fmt.Sprintf("unknown directive %s", s.mnemonic)}
	}
	if sec != secText {
		return 0, &AsmError{s.line, "instruction outside .text"}
	}
	n, err := a.expandCount(s)
	if err != nil {
		return 0, err
	}
	return 4 * uint64(n), nil
}

// expandCount returns how many machine instructions a mnemonic expands to.
func (a *assembler) expandCount(s stmt) (int, error) {
	switch s.mnemonic {
	case "li":
		if len(s.args) != 2 {
			return 0, &AsmError{s.line, "li needs rd, imm"}
		}
		v, err := a.parseImm(s.args[1], s.line)
		if err != nil {
			return 0, &AsmError{s.line, "li requires a constant immediate"}
		}
		return len(liSeq(0, v)), nil
	case "la":
		return 2, nil
	default:
		return 1, nil
	}
}

// emit is pass 2: encode every statement.
func (a *assembler) emit() (*Program, error) {
	p := &Program{
		TextBase: a.opts.TextBase,
		DataBase: a.dataBase,
		Text:     make([]uint32, a.textSz/4),
		Data:     make([]byte, a.dataSz),
		Symbols:  a.symbols,
	}
	for _, it := range a.items {
		if it.sec == secData || strings.HasPrefix(it.mnemonic, ".") {
			if err := a.emitData(p, it); err != nil {
				return nil, err
			}
			continue
		}
		pc := a.opts.TextBase + it.off
		insts, err := a.expand(it.stmt, pc)
		if err != nil {
			return nil, err
		}
		if uint64(4*len(insts)) != it.size {
			return nil, &AsmError{it.line, "internal: pass1/pass2 size mismatch"}
		}
		for i, in := range insts {
			w, err := Encode(in)
			if err != nil {
				return nil, &AsmError{it.line, err.Error()}
			}
			p.Text[(it.off/4)+uint64(i)] = w
		}
	}
	p.Entry = p.TextBase
	if e, ok := a.symbols["main"]; ok {
		p.Entry = e
	}
	if e, ok := a.symbols["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

func (a *assembler) emitData(p *Program, it item) error {
	if it.sec == secText && !strings.HasPrefix(it.mnemonic, ".") {
		return &AsmError{it.line, "internal: data emit of instruction"}
	}
	var buf []byte
	if it.sec == secText {
		// directives in .text: only .space padding is supported
		if it.mnemonic != ".space" && it.mnemonic != ".zero" {
			return &AsmError{it.line, fmt.Sprintf("%s not supported in .text", it.mnemonic)}
		}
		// padding in text becomes nop words (size must be multiple of 4)
		if it.size%4 != 0 {
			return &AsmError{it.line, "text padding must be a multiple of 4"}
		}
		nop := MustEncode(Inst{Op: ADDI})
		for i := uint64(0); i < it.size/4; i++ {
			p.Text[it.off/4+i] = nop
		}
		return nil
	}
	writeLE := func(v uint64, n int) {
		for i := 0; i < n; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	switch it.mnemonic {
	case ".byte", ".half", ".word", ".dword", ".quad":
		n := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".dword": 8, ".quad": 8}[it.mnemonic]
		for _, arg := range it.args {
			v, err := a.resolveValue(arg, it.line)
			if err != nil {
				return err
			}
			writeLE(uint64(v), n)
		}
	case ".space", ".zero":
		buf = make([]byte, it.size)
	case ".asciz", ".string":
		str, err := parseString(it.args[0], it.line)
		if err != nil {
			return err
		}
		buf = append([]byte(str), 0)
	case ".ascii":
		str, err := parseString(it.args[0], it.line)
		if err != nil {
			return err
		}
		buf = []byte(str)
	default:
		return &AsmError{it.line, fmt.Sprintf("unknown data directive %s", it.mnemonic)}
	}
	copy(p.Data[it.off:], buf)
	return nil
}

func parseString(arg string, line int) (string, error) {
	if len(arg) < 2 || arg[0] != '"' || arg[len(arg)-1] != '"' {
		return "", &AsmError{line, "expected quoted string"}
	}
	s, err := strconv.Unquote(arg)
	if err != nil {
		return "", &AsmError{line, "bad string literal"}
	}
	return s, nil
}

// parseImm parses an integer literal or .equ constant.
func (a *assembler) parseImm(s string, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case strings.HasPrefix(s, "0b"):
		v, err = strconv.ParseUint(s[2:], 2, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, &AsmError{line, fmt.Sprintf("bad immediate %q", s)}
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// resolveValue resolves an immediate, %hi/%lo expression, or symbol address.
func (a *assembler) resolveValue(s string, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		v, err := a.resolveValue(s[4:len(s)-1], line)
		if err != nil {
			return 0, err
		}
		return hi20Page(v), nil
	}
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		v, err := a.resolveValue(s[4:len(s)-1], line)
		if err != nil {
			return 0, err
		}
		return lo12(v), nil
	}
	if addr, ok := a.symbols[s]; ok {
		return int64(addr), nil
	}
	// symbol+offset
	if i := strings.LastIndexAny(s, "+-"); i > 0 {
		if addr, ok := a.symbols[strings.TrimSpace(s[:i])]; ok {
			off, err := a.parseImm(strings.TrimSpace(s[i+1:]), line)
			if err != nil {
				return 0, err
			}
			if s[i] == '-' {
				off = -off
			}
			return int64(addr) + off, nil
		}
	}
	return a.parseImm(s, line)
}

// hi20 returns the LUI immediate (already shifted and sign-extended, as
// stored in Inst.Imm) for absolute address v.
func hi20(v int64) int64 {
	h := (v + 0x800) >> 12
	return int64(int32(h << 12))
}

// hi20Page returns the 20-bit page value of v as written in assembly
// (lui/auipc operands and %hi(...) take the unshifted 20-bit form).
func hi20Page(v int64) int64 {
	return int64(uint32(hi20(v))>>12) & 0xFFFFF
}

// lo12 returns the matching low 12 bits, sign-extended.
func lo12(v int64) int64 {
	return ((v & 0xFFF) ^ 0x800) - 0x800
}

// liSeq builds the canonical materialisation sequence for li rd, imm.
func liSeq(rd uint8, imm int64) []Inst {
	if imm == int64(int32(imm)) {
		lo := lo12(imm)
		hiv := imm - lo
		if hiv == int64(int32(hiv)) {
			var out []Inst
			if hiv != 0 {
				out = append(out, Inst{Op: LUI, Rd: rd, Imm: int64(int32(hiv))})
				if lo != 0 {
					out = append(out, Inst{Op: ADDIW, Rd: rd, Rs1: rd, Imm: lo})
				}
				return out
			}
			return []Inst{{Op: ADDI, Rd: rd, Imm: lo}}
		}
	}
	lo := lo12(imm)
	rest := (imm - lo) >> 12
	out := liSeq(rd, rest)
	out = append(out, Inst{Op: SLLI, Rd: rd, Rs1: rd, Imm: 12})
	if lo != 0 {
		out = append(out, Inst{Op: ADDI, Rd: rd, Rs1: rd, Imm: lo})
	}
	return out
}
