package riscv

// Predecode is the interpreter's decoded-instruction side table: a dense
// array covering one contiguous text region, filled lazily the first time
// each PC is interpreted. Revisiting a PC — the common case in the
// profile-then-translate loop of a DBT system — becomes a table load
// instead of a memory fetch plus a full field-by-field decode, the same
// trick Transmeta's CMS and QEMU's TCG apply one level up with translated
// code.
//
// Correctness mirrors the DBT engine's self-modifying-code discipline:
// every guest store is reported to Invalidate (the dbt.Machine wires the
// bus's store hook here), so a program that writes over its own text sees
// the new bytes the next time the line is interpreted. PCs outside the
// covered region (or misaligned ones) simply fall back to fetch+decode,
// so the table is an accelerator, never a semantic change.
type Predecode struct {
	base  uint64 // first covered PC, 4-byte aligned
	limit uint64 // one past the last covered byte
	insts []Inst
	valid []bool

	stats PredecodeStats
}

// PredecodeStats counts side-table effectiveness.
type PredecodeStats struct {
	Hits          uint64 // instructions served from the table
	Fills         uint64 // decodes that populated a slot
	Bypasses      uint64 // PCs outside the covered region (fetch+decode)
	Invalidations uint64 // slots cleared by stores over text
}

// NewPredecode builds a table covering words instructions starting at
// base. A nil *Predecode is valid everywhere below and always bypasses.
func NewPredecode(base uint64, words int) *Predecode {
	if words < 0 {
		words = 0
	}
	return &Predecode{
		base:  base &^ 3,
		limit: (base &^ 3) + 4*uint64(words),
		insts: make([]Inst, words),
		valid: make([]bool, words),
	}
}

// Covers reports whether pc is a cacheable slot of the table.
func (p *Predecode) Covers(pc uint64) bool {
	return p != nil && pc >= p.base && pc < p.limit && (pc-p.base)&3 == 0
}

// Stats returns a copy of the counters.
func (p *Predecode) Stats() PredecodeStats {
	if p == nil {
		return PredecodeStats{}
	}
	return p.stats
}

// fetch returns the decoded instruction at pc, serving it from the table
// when possible and populating the slot on first touch. Out-of-range or
// misaligned PCs bypass the table entirely.
func (p *Predecode) fetch(pc uint64, bus Bus) (Inst, error) {
	if !p.Covers(pc) {
		if p != nil {
			p.stats.Bypasses++
		}
		word, err := bus.Fetch(pc)
		if err != nil {
			return Inst{}, err
		}
		return Decode(word), nil
	}
	i := (pc - p.base) >> 2
	if p.valid[i] {
		p.stats.Hits++
		return p.insts[i], nil
	}
	word, err := bus.Fetch(pc)
	if err != nil {
		return Inst{}, err
	}
	in := Decode(word)
	p.insts[i] = in
	p.valid[i] = true
	p.stats.Fills++
	return in, nil
}

// Invalidate clears every slot overlapping the stored bytes
// [addr, addr+size). It is called on every guest store (the bus hook), so
// the fast path is a single range rejection for the overwhelmingly common
// case of data stores.
func (p *Predecode) Invalidate(addr uint64, size int) {
	if p == nil || size <= 0 || addr >= p.limit || addr+uint64(size) <= p.base {
		return
	}
	lo := addr
	if lo < p.base {
		lo = p.base
	}
	hi := addr + uint64(size)
	if hi > p.limit {
		hi = p.limit
	}
	for i := (lo - p.base) >> 2; i <= (hi-1-p.base)>>2; i++ {
		if p.valid[i] {
			p.valid[i] = false
			p.stats.Invalidations++
		}
	}
}

// InvalidateAll clears the whole table.
func (p *Predecode) InvalidateAll() {
	if p == nil {
		return
	}
	for i := range p.valid {
		if p.valid[i] {
			p.valid[i] = false
			p.stats.Invalidations++
		}
	}
}
