package riscv

// signExtend extends the low n bits of v as a signed value.
func signExtend(v uint32, n uint) int64 {
	shift := 64 - n
	return int64(uint64(v)<<shift) >> shift
}

// Decode unpacks a 32-bit machine word. Unrecognised words decode to an
// Inst with Op == OpIllegal (Raw preserved) rather than an error, so the
// interpreter can raise a precise illegal-instruction fault.
func Decode(w uint32) Inst {
	in := Inst{Raw: w}
	opcode := w & 0x7F
	rd := uint8(w >> 7 & 0x1F)
	funct3 := w >> 12 & 0x7
	rs1 := uint8(w >> 15 & 0x1F)
	rs2 := uint8(w >> 20 & 0x1F)
	funct7 := w >> 25 & 0x7F

	immI := signExtend(w>>20, 12)
	immS := signExtend(w>>25<<5|w>>7&0x1F, 12)
	immB := signExtend((w>>31&1)<<12|(w>>7&1)<<11|(w>>25&0x3F)<<5|(w>>8&0xF)<<1, 13)
	immU := int64(int32(w & 0xFFFFF000))
	immJ := signExtend((w>>31&1)<<20|(w>>12&0xFF)<<12|(w>>20&1)<<11|(w>>21&0x3FF)<<1, 21)

	switch opcode {
	case opcLui:
		return Inst{Op: LUI, Rd: rd, Imm: immU, Raw: w}
	case opcAuipc:
		return Inst{Op: AUIPC, Rd: rd, Imm: immU, Raw: w}
	case opcJal:
		return Inst{Op: JAL, Rd: rd, Imm: immJ, Raw: w}
	case opcJalr:
		if funct3 != 0 {
			return in
		}
		return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}

	case opcBranch:
		var op Op
		switch funct3 {
		case 0:
			op = BEQ
		case 1:
			op = BNE
		case 4:
			op = BLT
		case 5:
			op = BGE
		case 6:
			op = BLTU
		case 7:
			op = BGEU
		default:
			return in
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB, Raw: w}

	case opcLoad:
		var op Op
		switch funct3 {
		case 0:
			op = LB
		case 1:
			op = LH
		case 2:
			op = LW
		case 3:
			op = LD
		case 4:
			op = LBU
		case 5:
			op = LHU
		case 6:
			op = LWU
		default:
			return in
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}

	case opcStore:
		var op Op
		switch funct3 {
		case 0:
			op = SB
		case 1:
			op = SH
		case 2:
			op = SW
		case 3:
			op = SD
		default:
			return in
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS, Raw: w}

	case opcOpImm:
		switch funct3 {
		case 0:
			return Inst{Op: ADDI, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}
		case 2:
			return Inst{Op: SLTI, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}
		case 3:
			return Inst{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}
		case 4:
			return Inst{Op: XORI, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}
		case 6:
			return Inst{Op: ORI, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}
		case 7:
			return Inst{Op: ANDI, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}
		case 1:
			if funct7>>1 != 0 {
				return in
			}
			return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 0x3F), Raw: w}
		case 5:
			switch funct7 >> 1 {
			case 0x00:
				return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 0x3F), Raw: w}
			case 0x10:
				return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 0x3F), Raw: w}
			}
		}
		return in

	case opcOpImmW:
		switch funct3 {
		case 0:
			return Inst{Op: ADDIW, Rd: rd, Rs1: rs1, Imm: immI, Raw: w}
		case 1:
			if funct7 != 0 {
				return in
			}
			return Inst{Op: SLLIW, Rd: rd, Rs1: rs1, Imm: int64(rs2), Raw: w}
		case 5:
			switch funct7 {
			case 0x00:
				return Inst{Op: SRLIW, Rd: rd, Rs1: rs1, Imm: int64(rs2), Raw: w}
			case 0x20:
				return Inst{Op: SRAIW, Rd: rd, Rs1: rs1, Imm: int64(rs2), Raw: w}
			}
		}
		return in

	case opcOp, opcOpW:
		for op := ADD; op <= REMUW; op++ {
			info := opTable[op]
			if info.format == FmtR && info.opcode == opcode &&
				info.funct3 == funct3 && info.funct7 == funct7 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Raw: w}
			}
		}
		return in

	case opcMiscM:
		if funct3 == 0 {
			return Inst{Op: FENCE, Raw: w}
		}
		return in

	case opcSystem:
		switch funct3 {
		case 0:
			switch w >> 20 {
			case 0:
				if rd == 0 && rs1 == 0 {
					return Inst{Op: ECALL, Raw: w}
				}
			case 1:
				if rd == 0 && rs1 == 0 {
					return Inst{Op: EBREAK, Raw: w}
				}
			}
		case 1:
			return Inst{Op: CSRRW, Rd: rd, Rs1: rs1, Imm: int64(w >> 20), Raw: w}
		case 2:
			return Inst{Op: CSRRS, Rd: rd, Rs1: rs1, Imm: int64(w >> 20), Raw: w}
		case 3:
			return Inst{Op: CSRRC, Rd: rd, Rs1: rs1, Imm: int64(w >> 20), Raw: w}
		}
		return in

	case opcCustom:
		if funct7 != 0 || rd != 0 || rs2 != 0 {
			return in
		}
		switch funct3 {
		case 0:
			return Inst{Op: CFLUSH, Rs1: rs1, Raw: w}
		case 1:
			if rs1 != 0 {
				return in
			}
			return Inst{Op: CFLUSHALL, Raw: w}
		}
		return in
	}
	return in
}
