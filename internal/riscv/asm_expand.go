package riscv

import (
	"fmt"
	"strings"
)

// expand turns one source statement into machine instructions, resolving
// registers, immediates, memory operands, and label references. pc is the
// address of the first emitted instruction (for pc-relative branches).
func (a *assembler) expand(s stmt, pc uint64) ([]Inst, error) {
	reg := func(i int) (uint8, error) {
		if i >= len(s.args) {
			return 0, &AsmError{s.line, fmt.Sprintf("%s: missing operand %d", s.mnemonic, i+1)}
		}
		r, ok := RegByName(s.args[i])
		if !ok {
			return 0, &AsmError{s.line, fmt.Sprintf("%s: bad register %q", s.mnemonic, s.args[i])}
		}
		return r, nil
	}
	imm := func(i int) (int64, error) {
		if i >= len(s.args) {
			return 0, &AsmError{s.line, fmt.Sprintf("%s: missing operand %d", s.mnemonic, i+1)}
		}
		return a.resolveValue(s.args[i], s.line)
	}
	// branch/jump target: label or literal offset
	target := func(i int) (int64, error) {
		if i >= len(s.args) {
			return 0, &AsmError{s.line, fmt.Sprintf("%s: missing target", s.mnemonic)}
		}
		arg := s.args[i]
		if addr, ok := a.symbols[arg]; ok {
			return int64(addr) - int64(pc), nil
		}
		return a.parseImm(arg, s.line)
	}
	// off(reg) memory operand
	memOp := func(i int) (int64, uint8, error) {
		if i >= len(s.args) {
			return 0, 0, &AsmError{s.line, fmt.Sprintf("%s: missing memory operand", s.mnemonic)}
		}
		arg := s.args[i]
		open := strings.LastIndexByte(arg, '(')
		if open < 0 || !strings.HasSuffix(arg, ")") {
			return 0, 0, &AsmError{s.line, fmt.Sprintf("%s: bad memory operand %q", s.mnemonic, arg)}
		}
		base, ok := RegByName(strings.TrimSpace(arg[open+1 : len(arg)-1]))
		if !ok {
			return 0, 0, &AsmError{s.line, fmt.Sprintf("%s: bad base register in %q", s.mnemonic, arg)}
		}
		offStr := strings.TrimSpace(arg[:open])
		var off int64
		if offStr != "" {
			var err error
			off, err = a.resolveValue(offStr, s.line)
			if err != nil {
				return 0, 0, err
			}
		}
		return off, base, nil
	}
	one := func(in Inst, err error) ([]Inst, error) {
		if err != nil {
			return nil, err
		}
		return []Inst{in}, nil
	}
	need := func(n int) error {
		if len(s.args) != n {
			return &AsmError{s.line, fmt.Sprintf("%s: expected %d operands, got %d", s.mnemonic, n, len(s.args))}
		}
		return nil
	}

	// Native mnemonics.
	if op, ok := opByName[s.mnemonic]; ok {
		info := opTable[op]
		switch info.format {
		case FmtR:
			switch op {
			case CFLUSH:
				if err := need(1); err != nil {
					return nil, err
				}
				rs1, err := reg(0)
				return one(Inst{Op: op, Rs1: rs1}, err)
			case CFLUSHALL:
				if err := need(0); err != nil {
					return nil, err
				}
				return one(Inst{Op: op}, nil)
			}
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			rs1, err := reg(1)
			if err != nil {
				return nil, err
			}
			rs2, err := reg(2)
			return one(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, err)

		case FmtI:
			if op.IsLoad() || op == JALR {
				// "ld rd, off(rs1)"; also accept "jalr rd, rs1, imm".
				if op == JALR && len(s.args) == 3 && !strings.Contains(s.args[1], "(") {
					rd, err := reg(0)
					if err != nil {
						return nil, err
					}
					rs1, err := reg(1)
					if err != nil {
						return nil, err
					}
					iv, err := imm(2)
					return one(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: iv}, err)
				}
				if err := need(2); err != nil {
					return nil, err
				}
				rd, err := reg(0)
				if err != nil {
					return nil, err
				}
				off, base, err := memOp(1)
				return one(Inst{Op: op, Rd: rd, Rs1: base, Imm: off}, err)
			}
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			rs1, err := reg(1)
			if err != nil {
				return nil, err
			}
			iv, err := imm(2)
			return one(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: iv}, err)

		case FmtShift64, FmtShift32:
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			rs1, err := reg(1)
			if err != nil {
				return nil, err
			}
			iv, err := imm(2)
			return one(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: iv}, err)

		case FmtS:
			if err := need(2); err != nil {
				return nil, err
			}
			rs2, err := reg(0)
			if err != nil {
				return nil, err
			}
			off, base, err := memOp(1)
			return one(Inst{Op: op, Rs1: base, Rs2: rs2, Imm: off}, err)

		case FmtB:
			if err := need(3); err != nil {
				return nil, err
			}
			rs1, err := reg(0)
			if err != nil {
				return nil, err
			}
			rs2, err := reg(1)
			if err != nil {
				return nil, err
			}
			off, err := target(2)
			return one(Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, err)

		case FmtU:
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			iv, err := imm(1)
			if err != nil {
				return nil, err
			}
			// The operand is the unshifted 20-bit page value (GNU syntax).
			if iv < -(1<<19) || iv > 0xFFFFF {
				return nil, &AsmError{s.line, "lui/auipc immediate must be a 20-bit page value"}
			}
			return one(Inst{Op: op, Rd: rd, Imm: int64(int32(uint32(iv) << 12))}, nil)

		case FmtJ:
			// jal rd, target  |  jal target (rd=ra)
			rd := uint8(1)
			ti := 0
			if len(s.args) == 2 {
				r, err := reg(0)
				if err != nil {
					return nil, err
				}
				rd = r
				ti = 1
			}
			off, err := target(ti)
			return one(Inst{Op: JAL, Rd: rd, Imm: off}, err)

		case FmtSys:
			return one(Inst{Op: op}, need(0))

		case FmtCSR:
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			csr, err := imm(1)
			if err != nil {
				return nil, err
			}
			rs1, err := reg(2)
			return one(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: csr}, err)
		}
	}

	// Pseudo-instructions.
	switch s.mnemonic {
	case "nop":
		return one(Inst{Op: ADDI}, need(0))
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: ADDI, Rd: rd, Rs1: rs}, err)
	case "not":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: XORI, Rd: rd, Rs1: rs, Imm: -1}, err)
	case "neg":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: SUB, Rd: rd, Rs2: rs}, err)
	case "negw":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: SUBW, Rd: rd, Rs2: rs}, err)
	case "sext.w":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: ADDIW, Rd: rd, Rs1: rs}, err)
	case "seqz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: SLTIU, Rd: rd, Rs1: rs, Imm: 1}, err)
	case "snez":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: SLTU, Rd: rd, Rs2: rs}, err)
	case "sltz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: SLT, Rd: rd, Rs1: rs}, err)
	case "sgtz":
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		return one(Inst{Op: SLT, Rd: rd, Rs2: rs}, err)

	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, err := target(1)
		if err != nil {
			return nil, err
		}
		switch s.mnemonic {
		case "beqz":
			return one(Inst{Op: BEQ, Rs1: rs, Imm: off}, nil)
		case "bnez":
			return one(Inst{Op: BNE, Rs1: rs, Imm: off}, nil)
		case "blez":
			return one(Inst{Op: BGE, Rs2: rs, Imm: off}, nil)
		case "bgez":
			return one(Inst{Op: BGE, Rs1: rs, Imm: off}, nil)
		case "bltz":
			return one(Inst{Op: BLT, Rs1: rs, Imm: off}, nil)
		default: // bgtz
			return one(Inst{Op: BLT, Rs2: rs, Imm: off}, nil)
		}

	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, err
		}
		r1, err := reg(0)
		if err != nil {
			return nil, err
		}
		r2, err := reg(1)
		if err != nil {
			return nil, err
		}
		off, err := target(2)
		if err != nil {
			return nil, err
		}
		switch s.mnemonic {
		case "bgt":
			return one(Inst{Op: BLT, Rs1: r2, Rs2: r1, Imm: off}, nil)
		case "ble":
			return one(Inst{Op: BGE, Rs1: r2, Rs2: r1, Imm: off}, nil)
		case "bgtu":
			return one(Inst{Op: BLTU, Rs1: r2, Rs2: r1, Imm: off}, nil)
		default: // bleu
			return one(Inst{Op: BGEU, Rs1: r2, Rs2: r1, Imm: off}, nil)
		}

	case "j", "tail":
		off, err := target(0)
		return one(Inst{Op: JAL, Imm: off}, err)
	case "call":
		off, err := target(0)
		return one(Inst{Op: JAL, Rd: 1, Imm: off}, err)
	case "jr":
		rs, err := reg(0)
		return one(Inst{Op: JALR, Rs1: rs}, err)
	case "ret":
		return one(Inst{Op: JALR, Rs1: 1}, need(0))

	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := a.parseImm(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return liSeq(rd, v), nil

	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := a.resolveValue(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		// Absolute addressing: lui+addi always, so the size is fixed.
		return []Inst{
			{Op: LUI, Rd: rd, Imm: hi20(v)},
			{Op: ADDI, Rd: rd, Rs1: rd, Imm: lo12(v)},
		}, nil

	case "rdcycle":
		rd, err := reg(0)
		return one(Inst{Op: CSRRS, Rd: rd, Imm: CSRCycle}, err)
	case "rdinstret":
		rd, err := reg(0)
		return one(Inst{Op: CSRRS, Rd: rd, Imm: CSRInstret}, err)
	case "csrr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		csr, err := imm(1)
		return one(Inst{Op: CSRRS, Rd: rd, Imm: csr}, err)
	}

	return nil, &AsmError{s.line, fmt.Sprintf("unknown mnemonic %q", s.mnemonic)}
}
