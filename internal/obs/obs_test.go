package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
)

// The disabled-tracer hot path — exactly the guard+emit pattern the
// machine and core compile in — must be free: no allocations, ever.
// This is the gate behind "zero-cost when disabled".
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer // nil: tracing off
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.BlockOn() {
			tr.Emit(Event{Kind: EvBlockEnter, Cycle: 1, PC: 0x100})
		}
		if tr.SpecOn() {
			tr.Emit(Event{Kind: EvSpecLoad, Cycle: 2, PC: 0x104, Arg1: 0x2000})
		}
		if tr.SpecOn() { // counter emissions use the same gate
			tr.Emit(Event{Kind: EvCounter, Cycle: 3, Arg1: 4, Str: CtrMCBOccupancy})
		}
		tr.Emit(Event{Kind: EvTrap}) // even an unguarded emit is free
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f objects/op, want 0", allocs)
	}
}

// An enabled ring tracer (no sink) must also run allocation-free in
// steady state: the buffer is preallocated and wraps in place.
func TestEnabledRingZeroAllocs(t *testing.T) {
	tr := NewSized(LevelSpec, nil, 64)
	for i := 0; i < 128; i++ { // warm past the first wrap
		tr.Emit(Event{Kind: EvSpecLoad, Cycle: uint64(i)})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: EvSpecLoad, Cycle: 1, PC: 0x100, Arg1: 0x2000})
	})
	if allocs != 0 {
		t.Fatalf("enabled ring emit allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRingRetainsLastEvents(t *testing.T) {
	tr := NewSized(LevelBlock, nil, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvBlockEnter, Cycle: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Cycle != want {
			t.Fatalf("ring event %d has cycle %d, want %d (oldest-first order)", i, e.Cycle, want)
		}
	}
}

func TestLevelGates(t *testing.T) {
	if (*Tracer)(nil).BlockOn() || (*Tracer)(nil).SpecOn() {
		t.Fatal("nil tracer reports enabled")
	}
	if New(LevelOff, nil).BlockOn() {
		t.Fatal("LevelOff reports block events enabled")
	}
	b := New(LevelBlock, nil)
	if !b.BlockOn() || b.SpecOn() {
		t.Fatal("LevelBlock gates wrong")
	}
	s := New(LevelSpec, nil)
	if !s.BlockOn() || !s.SpecOn() {
		t.Fatal("LevelSpec gates wrong")
	}
	off := New(LevelOff, nil)
	off.Emit(Event{Kind: EvTrap})
	if len(off.Events()) != 0 {
		t.Fatal("LevelOff recorded an event")
	}
}

// sampleEvents is one of everything, cycles strictly increasing.
func sampleEvents() []Event {
	return []Event{
		{Kind: EvTranslateStart, Cycle: 10, PC: 0x100, Arg1: 0},
		{Kind: EvMitigation, Cycle: 10, PC: 0x100, Arg1: 3, Arg2: 1, Arg3: 2},
		{Kind: EvTranslateDone, Cycle: 11, PC: 0x100, Arg1: 7, Arg2: 5, Arg3: 1234, Str: "block"},
		{Kind: EvBlockEnter, Cycle: 12, PC: 0x100, Arg1: 7, Arg2: 5, Str: "block"},
		{Kind: EvSpecLoad, Cycle: 13, PC: 0x104, Arg1: 0x20000},
		{Kind: EvSpecSquash, Cycle: 13, PC: 0x104, Arg1: 0x20000},
		{Kind: EvSideExit, Cycle: 15, PC: 0x110, Arg1: 0x200},
		{Kind: EvBlockExit, Cycle: 15, PC: 0x100, Arg1: 0x200, Arg2: 1},
		{Kind: EvInterpEnter, Cycle: 16, PC: 0x200},
		{Kind: EvInterpBranch, Cycle: 18, PC: 0x204, Arg1: 0x100, Str: "blt"},
		{Kind: EvRecovery, Cycle: 20, PC: 0x108, Arg1: 0},
		{Kind: EvCacheFlush, Cycle: 22, Arg1: 16, Arg2: 1},
		{Kind: EvTranslateFail, Cycle: 25, PC: 0x300, Str: `bad "op"`},
		{Kind: EvDeopt, Cycle: 30, PC: 0x100},
		{Kind: EvTrap, Cycle: 31, PC: 0x118, Arg1: 0x9000, Str: "out-of-range-access"},
		{Kind: EvCounter, Cycle: 32, Arg1: 97, Str: CtrCacheHitRate},
		{Kind: EvCounter, Cycle: 33, Arg1: 2, Str: CtrMCBOccupancy},
	}
}

func TestTextSinkKeepsLegacyLineFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelSpec, NewTextSink(&buf))
	for _, e := range sampleEvents() {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The two line shapes the old gbrun -trace logger printed must
	// survive verbatim so existing eyeballs and scripts keep working.
	if !strings.Contains(out, "] exec block @0x100 (7 insts, 5 bundles)") {
		t.Errorf("legacy dispatch line missing:\n%s", out)
	}
	if !strings.Contains(out, "] interp blt @0x204 -> 0x100") {
		t.Errorf("legacy interp line missing:\n%s", out)
	}
	// +1: Close re-samples cache-hit-rate (last seen at cycle 32) at the
	// final cycle 33; mcb-occupancy is already at 33 and not duplicated.
	if n := strings.Count(out, "\n"); n != len(sampleEvents())+1 {
		t.Errorf("got %d lines, want %d", n, len(sampleEvents())+1)
	}
}

func TestJSONLSinkEmitsValidJSONPerLine(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelSpec, NewJSONLSink(&buf))
	for _, e := range sampleEvents() {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// +1 for the final cache-hit-rate sample Close emits at cycle 33.
	if len(lines) != len(sampleEvents())+1 {
		t.Fatalf("got %d lines, want %d", len(lines), len(sampleEvents())+1)
	}
	lines = lines[:len(sampleEvents())]
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{"kind", "cycle", "pc"} {
			if _, ok := obj[key]; !ok {
				t.Fatalf("line %d missing %q: %s", i, key, line)
			}
		}
		// Zero-valued args are omitted, non-zero ones round-trip.
		want := sampleEvents()[i]
		for key, v := range map[string]uint64{"a1": want.Arg1, "a2": want.Arg2, "a3": want.Arg3} {
			got, ok := obj[key]
			if ok != (v != 0) {
				t.Fatalf("line %d %s present=%v want non-zero=%v: %s", i, key, ok, v != 0, line)
			}
			if ok && uint64(got.(float64)) != v {
				t.Fatalf("line %d %s = %v, want %d", i, key, got, v)
			}
		}
	}
	// The escaped detail string must round-trip.
	var fail map[string]any
	if err := json.Unmarshal([]byte(lines[12]), &fail); err != nil {
		t.Fatal(err)
	}
	if fail["s"] != `bad "op"` {
		t.Fatalf("detail string mangled: %v", fail["s"])
	}
}

// chromeTrace is the trace-event document shape Perfetto loads.
type chromeTrace struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		TS   float64         `json:"ts"`
		PID  int             `json:"pid"`
		TID  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

// The golden Perfetto test: the sink's output must parse as a valid
// Chrome trace-event document, carry monotone simulated-cycle
// timestamps, balance its B/E spans, and attribute events to guest PCs.
func TestPerfettoSinkProducesValidTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewSized(LevelSpec, NewPerfettoSink(&buf), 4) // tiny buffer: exercise batching
	for _, e := range sampleEvents() {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) < len(sampleEvents()) {
		t.Fatalf("only %d trace events for %d emitted", len(doc.TraceEvents), len(sampleEvents()))
	}
	lastTS := -1.0
	depth := 0
	sawPC := false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "B":
			depth++
		case "E":
			depth--
		case "i", "C":
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.TS < lastTS {
			t.Fatalf("timestamps not monotone: %v after %v", ev.TS, lastTS)
		}
		lastTS = ev.TS
		if strings.Contains(ev.Name, "@0x") {
			sawPC = true
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced B/E spans: depth %d at end of trace", depth)
	}
	if !sawPC {
		t.Fatal("no event attributed to a guest PC")
	}
}

// An empty trace must still close to a valid document (a run that traps
// before the first event, or a level that filters everything).
func TestPerfettoSinkEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelSpec, NewPerfettoSink(&buf))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty perfetto trace invalid: %v\n%s", err, buf.String())
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	var a, b bytes.Buffer
	tr := New(LevelSpec, NewMultiSink(NewTextSink(&a), NewJSONLSink(&b)))
	tr.Emit(Event{Kind: EvBlockEnter, Cycle: 5, PC: 0x40, Arg1: 1, Arg2: 1, Str: "block"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatalf("multi-sink skipped a sink: text=%d jsonl=%d bytes", a.Len(), b.Len())
	}
}

func TestSinkFor(t *testing.T) {
	for _, f := range []string{"text", "jsonl", "perfetto"} {
		if _, err := SinkFor(f, io.Discard); err != nil {
			t.Errorf("SinkFor(%q): %v", f, err)
		}
	}
	if _, err := SinkFor("xml", io.Discard); err == nil {
		t.Error("SinkFor accepted unknown format")
	}
}

func TestSnapshotHelpers(t *testing.T) {
	s := Snapshot{"b.x": 1, "a.y": 2}
	if names := s.Names(); !(len(names) == 2 && names[0] == "a.y" && names[1] == "b.x") {
		t.Fatalf("Names not sorted: %v", names)
	}
	if !s.Equal(Snapshot{"a.y": 2, "b.x": 1}) {
		t.Fatal("Equal false for identical snapshots")
	}
	if s.Equal(Snapshot{"a.y": 2, "b.x": 3}) || s.Equal(Snapshot{"a.y": 2}) {
		t.Fatal("Equal true for differing snapshots")
	}
	// JSON round-trip: the -stats -json / perf `metrics` contract.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(back) {
		t.Fatalf("snapshot JSON round-trip lost data: %v vs %v", s, back)
	}
}

// A sink error must not kill tracing, only be latched for Flush/Close.
type failingSink struct{ n int }

func (f *failingSink) WriteEvents(evs []Event) error { f.n += len(evs); return fmt.Errorf("disk full") }
func (f *failingSink) Close() error                  { return nil }

func TestSinkErrorIsLatchedNotFatal(t *testing.T) {
	sink := &failingSink{}
	tr := NewSized(LevelBlock, sink, 2)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvBlockEnter, Cycle: uint64(i)})
	}
	if err := tr.Close(); err == nil {
		t.Fatal("sink error not surfaced by Close")
	}
	if sink.n == 0 {
		t.Fatal("sink never saw a batch")
	}
}
