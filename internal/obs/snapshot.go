package obs

import "sort"

// Snapshot is the unified metrics view of one simulator run: a flat map
// of stable metric names to counter values. The names form the
// observability contract — `gbrun -stats -json`, the `metrics` field of
// gbbench's perf JSON, and any future exporter all spell the same
// counter the same way. Producers (dbt.Stats.Snapshot) add names; they
// never rename or repurpose existing ones.
//
// Naming convention: dot-separated "<subsystem>.<counter>" in
// snake_case, e.g. "core.spec_loads", "cache.misses", "trap.<kind>".
// Zero-valued trap counters are omitted; every other metric is always
// present so consumers can rely on the key set.
type Snapshot map[string]uint64

// Names returns the metric names in sorted order (stable iteration for
// renderers and tests).
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Add accumulates another snapshot into this one, summing counters
// name by name (names only one side carries are kept/adopted). It is
// how a long-running service folds per-run snapshots into one
// fleet-wide metrics view: every counter in the contract is a
// monotonically increasing total, so addition is the right merge.
func (s Snapshot) Add(o Snapshot) {
	for k, v := range o {
		s[k] += v
	}
}

// Equal reports whether two snapshots carry identical metrics.
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}
