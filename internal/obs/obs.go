// Package obs is the simulator's observability layer: a typed,
// ring-buffered trace-event pipeline and a unified metrics snapshot.
//
// Every interesting simulator action — translation, block dispatch,
// speculative load issue and squash, side exits, MCB recoveries, cache
// flushes, traps — is an Event timestamped in *simulated cycles* and
// emitted through a Tracer. The Tracer batches events in a fixed,
// preallocated buffer and hands full batches to a Sink (human-readable
// text, JSONL, or Chrome trace-event/Perfetto JSON). With no sink
// attached the buffer degrades to a retain-last ring for post-mortem
// inspection.
//
// The whole layer is zero-cost when disabled: a nil *Tracer is a valid
// receiver for every method, the hot-path guards (BlockOn, SpecOn)
// compile down to a nil check plus a byte compare, and the disabled
// emit path is pinned at 0 allocs/op by the package tests.
//
// # Tracer ownership
//
// A Tracer is single-owner, single-goroutine state: it belongs to
// exactly one machine, and only the goroutine driving that machine may
// call Emit/Flush/Close on it. There is no internal locking — the emit
// path is a plain store into a preallocated buffer precisely so that
// tracing at LevelSpec stays cheap. Under the parallel experiment
// harness this means each worker cell must construct its own Tracer
// (and its own Sink, unless the sink is independently synchronized)
// inside its Run function; sharing one Tracer between cells, or
// between a machine and a background reader, is a data race. The
// harness race test (internal/harness, -race with 8 workers) pins this
// contract: N concurrent machines, N private tracers, zero shared
// mutable state.
package obs

import "sort"

// Level selects how much the tracer records.
type Level uint8

const (
	// LevelOff records nothing (equivalent to a nil Tracer).
	LevelOff Level = iota
	// LevelBlock records block-granularity events: translation
	// start/done/fail, deoptimisation, mitigation reports, block
	// enter/exit, interp transitions and taken branches, side exits,
	// cache flushes and traps.
	LevelBlock
	// LevelSpec additionally records per-speculative-load events:
	// issue, squash and MCB recovery. The densest (and most
	// Spectre-relevant) view.
	LevelSpec
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvTranslateStart: the DBT engine began translating a region.
	// PC = region entry; Arg1 = 1 when building a trace/superblock.
	EvTranslateStart EventKind = iota
	// EvTranslateDone: translation succeeded. PC = entry;
	// Arg1 = guest instructions; Arg2 = bundles; Arg3 = host
	// translation latency in nanoseconds; Str = "block" or "trace".
	EvTranslateDone
	// EvTranslateFail: translation failed and the region degraded to
	// interpretation. PC = entry; Str = cause.
	EvTranslateFail
	// EvDeopt: adaptive retranslation dropped memory speculation for a
	// storming block. PC = entry.
	EvDeopt
	// EvMitigation: the per-block mitigation report at translation
	// time. PC = entry; Arg1 = speculative loads; Arg2 = risky loads
	// (Spectre patterns); Arg3 = guard edges inserted.
	EvMitigation
	// EvBlockEnter: the machine dispatched a translated region.
	// PC = entry; Arg1 = guest instructions; Arg2 = bundles;
	// Str = "block" or "trace".
	EvBlockEnter
	// EvBlockExit: the dispatched region finished. PC = entry;
	// Arg1 = next guest PC; Arg2 = 1 when it left via a side exit;
	// Arg3 = 1 when it faulted.
	EvBlockExit
	// EvInterpEnter: execution fell back from translated code to the
	// interpreter. PC = first interpreted PC.
	EvInterpEnter
	// EvInterpBranch: the interpreter took a branch or jump.
	// PC = branch PC; Arg1 = target; Str = mnemonic.
	EvInterpBranch
	// EvSpecLoad: the VLIW core issued a dismissable (speculative)
	// load. PC = guest PC; Arg1 = effective address.
	EvSpecLoad
	// EvSpecSquash: a dismissable load's fault was squashed and its
	// destination poisoned. PC = guest PC; Arg1 = effective address.
	EvSpecSquash
	// EvSideExit: a trace side exit was taken (static misprediction).
	// PC = exit branch guest PC; Arg1 = exit target.
	EvSideExit
	// EvRecovery: an MCB conflict triggered the block's recovery
	// sequence. PC = guest PC of the recovered load; Arg1 = recovery
	// sequence index.
	EvRecovery
	// EvCacheFlush: the data cache was flushed. Arg1 = lines actually
	// invalidated; Arg2 = 1 for cflushall, 0 for cflush;
	// Arg3 = flushed address (line flush only).
	EvCacheFlush
	// EvTrap: a guest fault was raised. PC = faulting guest PC;
	// Arg1 = faulting address; Str = trap kind name.
	EvTrap
	// EvCounter: a sampled counter value, rendered by the Perfetto
	// sink as a counter track ("C" phase) on the simulated-cycle
	// axis. Str = counter track name (one of the Ctr* constants, or
	// any other static string); Arg1 = value.
	EvCounter

	numEventKinds
)

// Counter track names carried in Event.Str by EvCounter events. They
// are package-level constants so every emission site shares one static
// string (the emit path stays allocation-free) and every consumer sees
// one stable spelling.
const (
	// CtrCacheHitRate: data-cache hit rate in percent (0..100),
	// sampled at block exits.
	CtrCacheHitRate = "cache-hit-rate"
	// CtrMCBOccupancy: outstanding Memory Conflict Buffer entries,
	// sampled when a dismissable load inserts and when a check
	// consumes.
	CtrMCBOccupancy = "mcb-occupancy"
	// CtrPinnedLoads: cumulative count of risky (Spectre-pattern)
	// loads the mitigation pinned, sampled after each translation.
	CtrPinnedLoads = "pinned-loads"
	// CtrLeakedBytes: cumulative secret bytes whose probe line was
	// speculatively filled, sampled by the attack scoreboard at the
	// leaking load.
	CtrLeakedBytes = "leaked-bytes"
	// CtrDetectPhase: the online detector's window classification as a
	// step track (0 benign, 1 prime, 2 trigger, 3 probe), emitted from
	// a detect.Report after the run so the inferred attack timeline
	// overlays the counters it was derived from.
	CtrDetectPhase = "detect-phase"
	// CtrDetectRounds: the detector's cumulative prime→trigger round
	// count at each phase boundary.
	CtrDetectRounds = "detect-rounds"
	// CtrDetectAlarm: 1 at the cycle the detector first raised an
	// attack alarm.
	CtrDetectAlarm = "detect-alarm"
)

// NumEventKinds is the number of defined event kinds.
const NumEventKinds = int(numEventKinds)

var kindNames = [NumEventKinds]string{
	EvTranslateStart: "translate-start",
	EvTranslateDone:  "translate-done",
	EvTranslateFail:  "translate-fail",
	EvDeopt:          "deopt",
	EvMitigation:     "mitigation",
	EvBlockEnter:     "block-enter",
	EvBlockExit:      "block-exit",
	EvInterpEnter:    "interp-enter",
	EvInterpBranch:   "interp-branch",
	EvSpecLoad:       "spec-load",
	EvSpecSquash:     "spec-squash",
	EvSideExit:       "side-exit",
	EvRecovery:       "recovery",
	EvCacheFlush:     "cache-flush",
	EvTrap:           "trap",
	EvCounter:        "counter",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. It is a fixed-size value — emitting one
// never allocates. Cycle is the simulated machine cycle at emission, so
// a whole trace is timed in guest time, not host time; the per-kind
// meaning of PC, Arg1..Arg3 and Str is documented on the EventKind
// constants. Str is always either empty or a reference to a static
// string (mnemonic tables, kind names), never a formatted one, to keep
// the emit path allocation-free.
type Event struct {
	Kind  EventKind
	Cycle uint64
	PC    uint64
	Arg1  uint64
	Arg2  uint64
	Arg3  uint64
	Str   string
}

// Tracer collects events into a fixed buffer. With a sink attached the
// buffer is a batch: filling it flushes all buffered events to the sink
// in emission order. Without a sink it is a retain-last ring: old events
// are overwritten and Events returns the surviving tail.
//
// A nil *Tracer is valid everywhere and records nothing. Tracers are
// not safe for concurrent use; attach one tracer per machine (the
// experiment Runner's parallel cells must not share one).
type Tracer struct {
	level   Level
	sink    Sink
	buf     []Event
	n       int
	wrapped bool
	err     error

	// Counter bookkeeping for the end-of-run samples (sink mode only):
	// every EvCounter that passes through flush records its track's
	// last value and cycle, and the latest cycle of any event is kept,
	// so Close can re-emit each active counter once at the final cycle.
	// Without this, a counter sampled early in a short or interrupted
	// run renders as a track that stops mid-timeline in Perfetto.
	counters map[string]counterSample
	maxCycle uint64
}

// counterSample is the last observed value of one counter track.
type counterSample struct {
	value uint64
	cycle uint64
}

// DefaultBufferEvents is the event capacity of New's batch buffer.
const DefaultBufferEvents = 4096

// New builds a tracer at the given level. sink may be nil, turning the
// buffer into a retain-last ring (inspect with Events).
func New(level Level, sink Sink) *Tracer {
	return NewSized(level, sink, DefaultBufferEvents)
}

// NewSized is New with an explicit buffer capacity (minimum 1).
func NewSized(level Level, sink Sink, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{level: level, sink: sink, buf: make([]Event, capacity)}
}

// Level returns the tracer's level (LevelOff for a nil tracer).
func (t *Tracer) Level() Level {
	if t == nil {
		return LevelOff
	}
	return t.level
}

// BlockOn reports whether block-granularity events should be emitted.
// The nil receiver makes the disabled check a branch, not a crash.
func (t *Tracer) BlockOn() bool { return t != nil && t.level >= LevelBlock }

// SpecOn reports whether per-speculative-load events should be emitted.
func (t *Tracer) SpecOn() bool { return t != nil && t.level >= LevelSpec }

// Emit records one event. On a nil or LevelOff tracer it is a no-op.
// The buffered path never allocates; a full buffer either flushes to
// the sink or wraps the ring. The body is kept small enough to inline
// at the simulator's hot emit sites — store, bump, rare spill.
func (t *Tracer) Emit(e Event) {
	if t == nil || t.level == LevelOff {
		return
	}
	t.buf[t.n] = e
	t.n++
	if t.n == len(t.buf) {
		t.spill()
	}
}

// spill empties a just-filled buffer: batch-flush with a sink attached,
// wrap in place in ring mode. Kept out of line so Emit itself fits the
// compiler's inlining budget — spill runs once per buffer fill, Emit
// runs per event.
//
//go:noinline
func (t *Tracer) spill() {
	if t.sink != nil {
		t.flush()
	} else {
		t.n = 0
		t.wrapped = true
	}
}

// flush hands the buffered batch to the sink. The first sink error is
// latched (returned by Flush/Close) and tracing continues lossily: a
// broken trace file must not abort the simulated run.
func (t *Tracer) flush() {
	if t.n == 0 || t.sink == nil {
		return
	}
	// Counter tracking happens here, off the per-event hot path: one
	// pass over the batch, once per buffer fill.
	for i := 0; i < t.n; i++ {
		e := &t.buf[i]
		if e.Cycle > t.maxCycle {
			t.maxCycle = e.Cycle
		}
		if e.Kind == EvCounter && e.Str != "" {
			if t.counters == nil {
				t.counters = make(map[string]counterSample, 8)
			}
			t.counters[e.Str] = counterSample{value: e.Arg1, cycle: e.Cycle}
		}
	}
	if err := t.sink.WriteEvents(t.buf[:t.n]); err != nil && t.err == nil {
		t.err = err
	}
	t.n = 0
}

// Flush pushes any buffered events to the sink and reports the first
// sink error seen so far. No-op without a sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.flush()
	return t.err
}

// Close flushes, emits one final sample of every active counter at the
// run's last observed cycle, and closes the sink. The final samples
// make counter tracks span the whole timeline even for short or
// truncated (interrupted, exit-code-4) runs, where a track would
// otherwise end at its last organic sample and render as a stub in
// Perfetto. The tracer must not be used after Close.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.flush()
	t.finalCounterSamples()
	if t.sink != nil {
		if err := t.sink.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// finalCounterSamples re-emits the last value of each counter track at
// the latest cycle the trace reached, in sorted track order so output
// is deterministic. Counters already sampled at the final cycle are
// not duplicated.
func (t *Tracer) finalCounterSamples() {
	if t.sink == nil || len(t.counters) == 0 {
		return
	}
	names := make([]string, 0, len(t.counters))
	for name, s := range t.counters {
		if s.cycle < t.maxCycle {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	final := make([]Event, len(names))
	for i, name := range names {
		final[i] = Event{Kind: EvCounter, Cycle: t.maxCycle,
			Arg1: t.counters[name].value, Str: name}
	}
	if err := t.sink.WriteEvents(final); err != nil && t.err == nil {
		t.err = err
	}
}

// Events returns the retained events in emission order. Only meaningful
// in ring mode (no sink); with a sink attached it returns whatever has
// not been flushed yet.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.n:]...)
	out = append(out, t.buf[:t.n]...)
	return out
}
