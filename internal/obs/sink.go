package obs

import (
	"fmt"
	"io"
	"strconv"
)

// Sink consumes batches of trace events. WriteEvents receives events in
// emission order; the slice is only valid for the duration of the call.
// Close finalises the output (document terminators); it does not close
// the underlying writer (the caller owns the file).
//
// The built-in sinks format each batch with append helpers into a
// reusable scratch buffer and hand it to the writer in one Write call —
// at block granularity a benchmark run emits millions of events, and
// both per-event fmt formatting and per-line buffered writes were
// dominant costs of tracing.
type Sink interface {
	WriteEvents([]Event) error
	Close() error
}

// SinkFor builds the sink named by format ("text", "jsonl" or
// "perfetto") over w. It is the single resolver behind every CLI's
// -trace-format flag, so the accepted names stay consistent.
func SinkFor(format string, w io.Writer) (Sink, error) {
	switch format {
	case "text":
		return NewTextSink(w), nil
	case "jsonl":
		return NewJSONLSink(w), nil
	case "perfetto", "chrome":
		return NewPerfettoSink(w), nil
	default:
		return nil, fmt.Errorf("obs: unknown trace format %q (want text|jsonl|perfetto)", format)
	}
}

// MultiSink fans each batch out to several sinks (e.g. the
// human-readable stderr log plus a Perfetto file). The first error from
// any sink is returned, but every sink still sees every batch.
type MultiSink []Sink

// NewMultiSink bundles sinks into one.
func NewMultiSink(sinks ...Sink) MultiSink { return MultiSink(sinks) }

func (m MultiSink) WriteEvents(evs []Event) error {
	var first error
	for _, s := range m {
		if err := s.WriteEvents(evs); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Tee fans each batch out to a primary sink plus passive observers
// (the online attack detector rides the trace stream this way). Unlike
// MultiSink, observer errors are swallowed: a monitoring consumer must
// never poison the trace file, and conversely a broken trace file
// still feeds the observers. Only the primary's errors propagate.
//
// A Tee inherits the tracer's ownership contract: it is driven by the
// single goroutine that owns the tracer, so observers need no internal
// locking. When tracing is disabled no tee exists at all — the
// disabled emit path stays the pinned 0 allocs/op.
type Tee struct {
	primary   Sink
	observers []Sink
}

// NewTee wires observers in front of primary. primary may be nil
// (observers only — e.g. detection without a trace file).
func NewTee(primary Sink, observers ...Sink) *Tee {
	return &Tee{primary: primary, observers: observers}
}

func (t *Tee) WriteEvents(evs []Event) error {
	for _, o := range t.observers {
		_ = o.WriteEvents(evs) // observers never fail the stream
	}
	if t.primary == nil {
		return nil
	}
	return t.primary.WriteEvents(evs)
}

func (t *Tee) Close() error {
	for _, o := range t.observers {
		_ = o.Close()
	}
	if t.primary == nil {
		return nil
	}
	return t.primary.Close()
}

// digits2 is the 00..99 lookup pair table for appendDec.
const digits2 = "00010203040506070809" +
	"10111213141516171819" +
	"20212223242526272829" +
	"30313233343536373839" +
	"40414243444546474849" +
	"50515253545556575859" +
	"60616263646566676869" +
	"70717273747576777879" +
	"80818283848586878889" +
	"90919293949596979899"

// appendDec renders v in decimal, two digits per division — what
// strconv.AppendUint(b, v, 10) does minus the generic-base dispatch,
// worth it because a block-granularity trace formats several integers
// per event, millions of times per run.
func appendDec(b []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for v >= 100 {
		q := v / 100
		r := (v - q*100) * 2
		i -= 2
		tmp[i] = digits2[r]
		tmp[i+1] = digits2[r+1]
		v = q
	}
	i--
	tmp[i] = digits2[v*2+1]
	if v >= 10 {
		i--
		tmp[i] = digits2[v*2]
	}
	return append(b, tmp[i:]...)
}

// appendCycle renders the classic "[%12d] " line prefix.
func appendCycle(b []byte, v uint64) []byte {
	var tmp [20]byte
	n := appendDec(tmp[:0], v)
	b = append(b, '[')
	for i := len(n); i < 12; i++ {
		b = append(b, ' ')
	}
	b = append(b, n...)
	return append(b, ']', ' ')
}

const hexDigits = "0123456789abcdef"

// appendHex renders v the way fmt's %#x does ("0x1a"; zero is "0x0").
func appendHex(b []byte, v uint64) []byte {
	b = append(b, '0', 'x')
	if v == 0 {
		return append(b, '0')
	}
	var tmp [16]byte
	i := len(tmp)
	for v != 0 {
		i--
		tmp[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return append(b, tmp[i:]...)
}

// appendJSONString renders s as a quoted JSON string. Almost every
// Event.Str is a static-table mnemonic that needs no escaping — one
// cheap byte scan instead of strconv.AppendQuote's rune walk — and
// only free text (translate-fail details) takes the slow path.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.AppendQuote(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// TextSink renders events as the human-readable line format gbrun
// -trace has always printed ("[cycle] exec block @pc ..."), formatting
// each batch into a reusable scratch buffer and writing it in one call
// rather than one write per line.
type TextSink struct {
	w   io.Writer
	buf []byte // batch scratch, reused across WriteEvents calls
}

// NewTextSink builds a text sink over w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

func (s *TextSink) WriteEvents(evs []Event) error {
	b := s.buf[:0]
	for i := range evs {
		e := &evs[i]
		b = appendCycle(b, e.Cycle)
		switch e.Kind {
		case EvBlockEnter:
			// The legacy gbrun -trace dispatch line, verbatim.
			b = append(b, "exec "...)
			b = append(b, e.Str...)
			b = append(b, " @"...)
			b = appendHex(b, e.PC)
			b = append(b, " ("...)
			b = appendDec(b, e.Arg1)
			b = append(b, " insts, "...)
			b = appendDec(b, e.Arg2)
			b = append(b, " bundles)"...)
		case EvInterpBranch:
			// The legacy interpreted-control-transfer line, verbatim.
			b = append(b, "interp "...)
			b = append(b, e.Str...)
			b = append(b, " @"...)
			b = appendHex(b, e.PC)
			b = append(b, " -> "...)
			b = appendHex(b, e.Arg1)
		case EvBlockExit:
			b = append(b, "exit @"...)
			b = appendHex(b, e.PC)
			b = append(b, " -> "...)
			b = appendHex(b, e.Arg1)
			b = append(b, " (side-exit="...)
			b = appendDec(b, e.Arg2)
			b = append(b, " fault="...)
			b = appendDec(b, e.Arg3)
			b = append(b, ')')
		case EvTranslateStart:
			b = append(b, "translate-start @"...)
			b = appendHex(b, e.PC)
			b = append(b, " (trace="...)
			b = appendDec(b, e.Arg1)
			b = append(b, ')')
		case EvTranslateDone:
			b = append(b, "translate-done "...)
			b = append(b, e.Str...)
			b = append(b, " @"...)
			b = appendHex(b, e.PC)
			b = append(b, " ("...)
			b = appendDec(b, e.Arg1)
			b = append(b, " insts, "...)
			b = appendDec(b, e.Arg2)
			b = append(b, " bundles, "...)
			b = appendDec(b, e.Arg3)
			b = append(b, "ns host)"...)
		case EvTranslateFail:
			b = append(b, "translate-fail @"...)
			b = appendHex(b, e.PC)
			b = append(b, ": "...)
			b = append(b, e.Str...)
		case EvDeopt:
			b = append(b, "deopt @"...)
			b = appendHex(b, e.PC)
			b = append(b, " (memory speculation off)"...)
		case EvMitigation:
			b = append(b, "mitigation @"...)
			b = appendHex(b, e.PC)
			b = append(b, ": spec-loads="...)
			b = appendDec(b, e.Arg1)
			b = append(b, " risky="...)
			b = appendDec(b, e.Arg2)
			b = append(b, " guard-edges="...)
			b = appendDec(b, e.Arg3)
		case EvInterpEnter:
			b = append(b, "interp-enter @"...)
			b = appendHex(b, e.PC)
		case EvSpecLoad:
			b = append(b, "spec-load @"...)
			b = appendHex(b, e.PC)
			b = append(b, " addr="...)
			b = appendHex(b, e.Arg1)
		case EvSpecSquash:
			b = append(b, "spec-squash @"...)
			b = appendHex(b, e.PC)
			b = append(b, " addr="...)
			b = appendHex(b, e.Arg1)
		case EvSideExit:
			b = append(b, "side-exit @"...)
			b = appendHex(b, e.PC)
			b = append(b, " -> "...)
			b = appendHex(b, e.Arg1)
		case EvRecovery:
			b = append(b, "recovery @"...)
			b = appendHex(b, e.PC)
			b = append(b, " (seq "...)
			b = appendDec(b, e.Arg1)
			b = append(b, ')')
		case EvCacheFlush:
			b = append(b, "cache-flush lines="...)
			b = appendDec(b, e.Arg1)
			b = append(b, " all="...)
			b = appendDec(b, e.Arg2)
			b = append(b, " addr="...)
			b = appendHex(b, e.Arg3)
		case EvTrap:
			b = append(b, "trap "...)
			b = append(b, e.Str...)
			b = append(b, " @"...)
			b = appendHex(b, e.PC)
			b = append(b, " addr="...)
			b = appendHex(b, e.Arg1)
		case EvCounter:
			b = append(b, "counter "...)
			b = append(b, e.Str...)
			b = append(b, '=')
			b = appendDec(b, e.Arg1)
		default:
			b = append(b, e.Kind.String()...)
			b = append(b, " @"...)
			b = appendHex(b, e.PC)
		}
		b = append(b, '\n')
	}
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// Close is a no-op: every batch is written eagerly, nothing buffers.
func (s *TextSink) Close() error { return nil }

// JSONLSink renders one JSON object per event per line — the
// machine-readable stream for ad-hoc tooling (jq, scripts). Every
// object has the same shape: kind, cycle, pc (hex string), a1..a3
// (omitted when zero), and s when non-empty.
//
// The sink formats each batch into one reusable scratch buffer and
// hands it to the writer in a single Write — tracing at block
// granularity produces millions of lines, and a per-line buffered
// write (bufio round-trip plus copy) was measurably slower than one
// large write per 4096-event batch.
type JSONLSink struct {
	w   io.Writer
	buf []byte // batch scratch, reused across WriteEvents calls
}

// NewJSONLSink builds a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

func (s *JSONLSink) WriteEvents(evs []Event) error {
	b := s.buf[:0]
	for i := range evs {
		e := &evs[i]
		b = append(b, `{"kind":"`...)
		b = append(b, e.Kind.String()...) // static table, no escaping needed
		b = append(b, `","cycle":`...)
		b = appendDec(b, e.Cycle)
		b = append(b, `,"pc":"`...)
		b = appendHex(b, e.PC)
		b = append(b, '"')
		if e.Arg1 != 0 {
			b = append(b, `,"a1":`...)
			b = appendDec(b, e.Arg1)
		}
		if e.Arg2 != 0 {
			b = append(b, `,"a2":`...)
			b = appendDec(b, e.Arg2)
		}
		if e.Arg3 != 0 {
			b = append(b, `,"a3":`...)
			b = appendDec(b, e.Arg3)
		}
		if e.Str != "" {
			b = append(b, `,"s":`...)
			b = appendJSONString(b, e.Str)
		}
		b = append(b, '}', '\n')
	}
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// Close is a no-op: every batch is written eagerly, nothing buffers.
func (s *JSONLSink) Close() error { return nil }

// PerfettoSink renders the trace in the Chrome trace-event JSON format,
// loadable by ui.perfetto.dev and chrome://tracing. Timestamps are
// *simulated cycles* (the format's nominal microseconds), so the
// viewer's timeline is guest time: a Spectre PoC's probe-loop
// speculation shows up exactly where the simulated machine spent its
// cycles, independent of host speed.
//
// Tracks: tid 0 "execution" carries block enter/exit spans plus interp
// and trap instants; tid 1 "translation" the DBT engine's events; tid 2
// "speculation" the per-load issue/squash/recovery instants; tid 3
// "memory" cache flushes. EvCounter events render as "C"-phase counter
// tracks (one per counter name — cache hit rate, MCB occupancy, pinned
// loads, leaked bytes), so the attack timeline and the leakage it
// causes share one simulated-cycle axis in the viewer.
type PerfettoSink struct {
	w     io.Writer
	buf   []byte // batch scratch, reused across WriteEvents calls
	wrote bool   // at least one event element emitted (comma handling)
	open  bool   // preamble written
}

// NewPerfettoSink builds a Chrome trace-event sink over w.
func NewPerfettoSink(w io.Writer) *PerfettoSink {
	return &PerfettoSink{w: w}
}

const (
	tidExec  = 0
	tidTrans = 1
	tidSpec  = 2
	tidMem   = 3
	tidCtr   = 4
)

// lane maps each event kind to its trace-event phase and track.
var lane = [NumEventKinds]struct {
	ph  byte
	tid uint8
}{
	EvTranslateStart: {'i', tidTrans},
	EvTranslateDone:  {'i', tidTrans},
	EvTranslateFail:  {'i', tidTrans},
	EvDeopt:          {'i', tidTrans},
	EvMitigation:     {'i', tidTrans},
	EvBlockEnter:     {'B', tidExec},
	EvBlockExit:      {'E', tidExec},
	EvInterpEnter:    {'i', tidExec},
	EvInterpBranch:   {'i', tidExec},
	EvSpecLoad:       {'i', tidSpec},
	EvSpecSquash:     {'i', tidSpec},
	EvSideExit:       {'i', tidExec},
	EvRecovery:       {'i', tidSpec},
	EvCacheFlush:     {'i', tidMem},
	EvTrap:           {'i', tidExec},
	EvCounter:        {'C', tidCtr},
}

func (s *PerfettoSink) preamble() error {
	if s.open {
		return nil
	}
	s.open = true
	if _, err := io.WriteString(s.w, `{"displayTimeUnit":"ns","otherData":{"timestamps":"simulated cycles"},"traceEvents":[`+"\n"); err != nil {
		return err
	}
	// Name the process and tracks so the viewer shows semantic lanes.
	meta := []struct {
		name string
		tid  int
	}{{"execution", tidExec}, {"translation", tidTrans}, {"speculation", tidSpec}, {"memory", tidMem}, {"counters", tidCtr}}
	if _, err := fmt.Fprintf(s.w, `{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"ghostbusters-sim"}}`); err != nil {
		return err
	}
	for _, m := range meta {
		if _, err := fmt.Fprintf(s.w, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":%q}}", m.tid, m.name); err != nil {
			return err
		}
	}
	s.wrote = true
	return nil
}

// appendName renders `name@0xPC`. Names come from static tables (op
// mnemonics, kind names, trap kinds), never free text, so they need no
// JSON escaping.
func appendName(b []byte, name string, pc uint64) []byte {
	b = append(b, name...)
	b = append(b, '@')
	return appendHex(b, pc)
}

// appendHexField renders `"key":"0x.."` (no separators — the caller
// places commas and braces).
func appendHexField(b []byte, key string, v uint64) []byte {
	b = append(b, '"')
	b = append(b, key...)
	b = append(b, `":"`...)
	b = appendHex(b, v)
	return append(b, '"')
}

// appendIntField renders `"key":v`.
func appendIntField(b []byte, key string, v uint64) []byte {
	b = append(b, '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return appendDec(b, v)
}

func (s *PerfettoSink) WriteEvents(evs []Event) error {
	if err := s.preamble(); err != nil {
		return err
	}
	b := s.buf[:0]
	for i := range evs {
		e := &evs[i]
		ln := lane[0]
		if int(e.Kind) < len(lane) {
			ln = lane[e.Kind]
		}
		if ln.ph == 0 {
			ln.ph, ln.tid = 'i', tidExec
		}

		if s.wrote {
			b = append(b, ',', '\n')
		}
		s.wrote = true
		// Common envelope first; JSON objects are unordered, so name and
		// args trail where one switch can build both.
		b = append(b, `{"cat":"sim","ph":"`...)
		b = append(b, ln.ph)
		b = append(b, `","ts":`...)
		b = appendDec(b, e.Cycle)
		b = append(b, `,"pid":0,"tid":`...)
		b = appendDec(b, uint64(ln.tid))
		if ln.ph == 'i' {
			b = append(b, `,"s":"t"`...)
		}
		b = append(b, `,"name":"`...)
		switch e.Kind {
		case EvBlockEnter:
			b = appendName(b, e.Str, e.PC)
			b = append(b, `","args":{`...)
			b = appendIntField(b, "guest_insts", e.Arg1)
			b = append(b, ',')
			b = appendIntField(b, "bundles", e.Arg2)
			b = append(b, '}')
		case EvBlockExit:
			b = append(b, `","args":{`...) // span ends carry no name
			b = appendHexField(b, "next_pc", e.Arg1)
			b = append(b, ',')
			b = appendIntField(b, "side_exit", e.Arg2)
			b = append(b, ',')
			b = appendIntField(b, "fault", e.Arg3)
			b = append(b, '}')
		case EvInterpEnter:
			b = appendName(b, "interp", e.PC)
			b = append(b, '"')
		case EvInterpBranch:
			b = appendName(b, e.Str, e.PC)
			b = append(b, `","args":{`...)
			b = appendHexField(b, "target", e.Arg1)
			b = append(b, '}')
		case EvTranslateStart:
			b = appendName(b, "translate-start", e.PC)
			b = append(b, `","args":{`...)
			b = appendIntField(b, "trace", e.Arg1)
			b = append(b, '}')
		case EvTranslateDone:
			b = appendName(b, "translate-done", e.PC)
			b = append(b, `","args":{"kind":"`...)
			b = append(b, e.Str...)
			b = append(b, `",`...)
			b = appendIntField(b, "guest_insts", e.Arg1)
			b = append(b, ',')
			b = appendIntField(b, "bundles", e.Arg2)
			b = append(b, ',')
			b = appendIntField(b, "host_ns", e.Arg3)
			b = append(b, '}')
		case EvTranslateFail:
			b = appendName(b, "translate-fail", e.PC)
			b = append(b, `","args":{"cause":`...)
			b = appendJSONString(b, e.Str)
			b = append(b, '}')
		case EvDeopt:
			b = appendName(b, "deopt", e.PC)
			b = append(b, '"')
		case EvMitigation:
			b = appendName(b, "mitigation", e.PC)
			b = append(b, `","args":{`...)
			b = appendIntField(b, "spec_loads", e.Arg1)
			b = append(b, ',')
			b = appendIntField(b, "risky_loads", e.Arg2)
			b = append(b, ',')
			b = appendIntField(b, "guard_edges", e.Arg3)
			b = append(b, '}')
		case EvSpecLoad:
			b = appendName(b, "spec-load", e.PC)
			b = append(b, `","args":{`...)
			b = appendHexField(b, "addr", e.Arg1)
			b = append(b, '}')
		case EvSpecSquash:
			b = appendName(b, "squash", e.PC)
			b = append(b, `","args":{`...)
			b = appendHexField(b, "addr", e.Arg1)
			b = append(b, '}')
		case EvSideExit:
			b = appendName(b, "side-exit", e.PC)
			b = append(b, `","args":{`...)
			b = appendHexField(b, "target", e.Arg1)
			b = append(b, '}')
		case EvRecovery:
			b = appendName(b, "recovery", e.PC)
			b = append(b, `","args":{`...)
			b = appendIntField(b, "seq", e.Arg1)
			b = append(b, '}')
		case EvCacheFlush:
			b = append(b, `cache-flush","args":{`...)
			b = appendIntField(b, "lines", e.Arg1)
			b = append(b, ',')
			b = appendIntField(b, "all", e.Arg2)
			b = append(b, ',')
			b = appendHexField(b, "addr", e.Arg3)
			b = append(b, '}')
		case EvTrap:
			b = append(b, "trap:"...)
			b = appendName(b, e.Str, e.PC)
			b = append(b, `","args":{`...)
			b = appendHexField(b, "addr", e.Arg1)
			b = append(b, '}')
		case EvCounter:
			// Counter tracks are keyed by name: every sample of the
			// same counter lands on one track, value in args.
			b = append(b, e.Str...)
			b = append(b, `","args":{`...)
			b = appendIntField(b, "value", e.Arg1)
			b = append(b, '}')
		default:
			b = append(b, e.Kind.String()...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// WriteRawEvent appends one pre-rendered trace-event object to the
// document, handling the preamble and comma placement exactly like
// WriteEvents. obj must be a complete JSON object with no trailing
// separators. This is the seam that lets a second clock domain — the
// host-nanosecond span sink in internal/hspan — interleave its events
// into the same Perfetto file the simulated-cycle tracer owns, so one
// document carries both track sets.
func (s *PerfettoSink) WriteRawEvent(obj []byte) error {
	if err := s.preamble(); err != nil {
		return err
	}
	b := s.buf[:0]
	if s.wrote {
		b = append(b, ',', '\n')
	}
	s.wrote = true
	b = append(b, obj...)
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// Close terminates the JSON document. A trace with no events still
// closes to a valid (metadata-only) document.
func (s *PerfettoSink) Close() error {
	if err := s.preamble(); err != nil {
		return err
	}
	_, err := io.WriteString(s.w, "\n]}\n")
	return err
}
