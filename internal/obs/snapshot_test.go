package obs

import "testing"

func TestSnapshotAdd(t *testing.T) {
	total := Snapshot{"sim.cycles": 100, "cache.hits": 5}
	total.Add(Snapshot{"sim.cycles": 50, "trap.cache-fault": 2})
	want := Snapshot{"sim.cycles": 150, "cache.hits": 5, "trap.cache-fault": 2}
	if !total.Equal(want) {
		t.Fatalf("Add produced %v, want %v", total, want)
	}
	// Adding an empty snapshot is the identity.
	total.Add(nil)
	if !total.Equal(want) {
		t.Fatalf("Add(nil) changed the snapshot: %v", total)
	}
}
