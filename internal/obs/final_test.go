package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// A truncated run leaves counters sampled mid-timeline; Close must
// re-emit every active counter at the last observed cycle, in sorted
// track order, so Perfetto renders complete tracks. The full JSONL
// output is pinned against a golden file.
func TestFinalCounterSamplesGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelSpec, NewJSONLSink(&buf))
	// Two counters sampled early, then the run races ahead and is
	// "interrupted" at cycle 9000 without any further samples.
	tr.Emit(Event{Kind: EvBlockEnter, Cycle: 100, PC: 0x100, Arg1: 4, Arg2: 2, Str: "block"})
	tr.Emit(Event{Kind: EvCounter, Cycle: 120, Arg1: 97, Str: CtrCacheHitRate})
	tr.Emit(Event{Kind: EvCounter, Cycle: 150, Arg1: 3, Str: CtrMCBOccupancy})
	tr.Emit(Event{Kind: EvBlockExit, Cycle: 9000, PC: 0x100, Arg1: 0x200})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "final_counters.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("final-counter JSONL drifted from golden:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// A counter already sampled at the final cycle must not be duplicated,
// and a trace with no counters gets no synthetic events at all.
func TestFinalCounterSamplesNoDuplicates(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelSpec, NewJSONLSink(&buf))
	tr.Emit(Event{Kind: EvCounter, Cycle: 50, Arg1: 1, Str: CtrPinnedLoads})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 1 {
		t.Fatalf("counter at the final cycle duplicated: %d lines\n%s", n, buf.Bytes())
	}

	buf.Reset()
	tr = New(LevelSpec, NewJSONLSink(&buf))
	tr.Emit(Event{Kind: EvBlockEnter, Cycle: 10, PC: 0x100})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 1 {
		t.Fatalf("counter-free trace grew synthetic events: %d lines\n%s", n, buf.Bytes())
	}
}

// countingSink records batches; failNext makes WriteEvents error once.
type countingSink struct {
	events []Event
	closed bool
	fail   bool
}

func (c *countingSink) WriteEvents(evs []Event) error {
	c.events = append(c.events, evs...)
	if c.fail {
		c.fail = false
		return errTest
	}
	return nil
}
func (c *countingSink) Close() error { c.closed = true; return nil }

var errTest = os.ErrInvalid

// The tee forwards every batch to primary and observers alike, and an
// observer failure must never reach the primary stream or the tracer.
func TestTeeObserverErrorsAreSwallowed(t *testing.T) {
	primary := &countingSink{}
	observer := &countingSink{fail: true}
	tr := New(LevelSpec, NewTee(primary, observer))
	tr.Emit(Event{Kind: EvSpecLoad, Cycle: 1, PC: 0x100, Arg1: 0x2000})
	if err := tr.Close(); err != nil {
		t.Fatalf("observer error leaked through the tee: %v", err)
	}
	if len(primary.events) != 1 || len(observer.events) != 1 {
		t.Fatalf("tee fan-out wrong: primary %d events, observer %d events",
			len(primary.events), len(observer.events))
	}
	if !primary.closed || !observer.closed {
		t.Fatal("tee did not close both sinks")
	}
}

// A tee with no primary (detection without a trace file) is valid.
func TestTeeNilPrimary(t *testing.T) {
	observer := &countingSink{}
	tr := New(LevelSpec, NewTee(nil, observer))
	tr.Emit(Event{Kind: EvSpecLoad, Cycle: 1, PC: 0x100})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(observer.events) != 1 {
		t.Fatalf("observer saw %d events, want 1", len(observer.events))
	}
}
