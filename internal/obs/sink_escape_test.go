package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// appendJSONString has two regimes: a fast path that byte-scans and
// copies static-table strings verbatim, and a strconv.AppendQuote
// fallback for anything containing quotes, backslashes, control bytes
// or non-ASCII. This golden table locks both regimes in byte-for-byte,
// and checks every rendering parses back to the original via
// encoding/json — the property the JSONL and Perfetto sinks rely on.
//
// Event.Str carries static, printable Go strings (mnemonic tables,
// kind names, counter names, translate-fail causes); the table covers
// that contract's worst cases, not arbitrary binary.
func TestAppendJSONStringGolden(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		// Fast path: plain printable ASCII copies verbatim.
		{"", `""`},
		{"block", `"block"`},
		{"cache-hit-rate", `"cache-hit-rate"`},
		{"out-of-range-access", `"out-of-range-access"`},
		// Slow path: quotes.
		{`bad "op"`, `"bad \"op\""`},
		{`"`, `"\""`},
		// Slow path: backslashes.
		{`C:\trace\out`, `"C:\\trace\\out"`},
		{`a\"b`, `"a\\\"b"`},
		// Slow path: control characters with JSON shorthand escapes.
		{"line1\nline2", `"line1\nline2"`},
		{"tab\tsep", `"tab\tsep"`},
		{"cr\rlf", `"cr\rlf"`},
		// Slow path: printable non-ASCII stays literal UTF-8 (valid
		// JSON, and what Perfetto renders as-is).
		{"café-π", `"café-π"`},
		{"日本語カウンタ", `"日本語カウンタ"`},
		{"naïve → fancy", `"naïve → fancy"`},
	}
	for _, c := range cases {
		got := string(appendJSONString(nil, c.in))
		if got != c.want {
			t.Errorf("appendJSONString(%q) = %s, want %s", c.in, got, c.want)
		}
		var back string
		if err := json.Unmarshal([]byte(got), &back); err != nil {
			t.Errorf("appendJSONString(%q) produced invalid JSON %s: %v", c.in, got, err)
		} else if back != c.in {
			t.Errorf("appendJSONString(%q) round-trips to %q", c.in, back)
		}
	}
	// The helper appends: an existing prefix must survive untouched.
	if got := string(appendJSONString([]byte(`{"s":`), `x"y`)); got != `{"s":"x\"y"` {
		t.Errorf("append prefix mangled: %s", got)
	}
}

// hostileStrings is free text no static table would produce — the
// sinks must still emit parseable JSON for it.
var hostileStrings = []string{
	`cause with "quotes"`,
	`back\slash`,
	"non-ascii: héllo, 世界",
	"newline\nin cause",
}

func TestJSONLSinkEscapesHostileStrings(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelBlock, NewJSONLSink(&buf))
	for _, s := range hostileStrings {
		tr.Emit(Event{Kind: EvTranslateFail, Cycle: 1, PC: 0x100, Str: s})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(hostileStrings) {
		t.Fatalf("got %d lines, want %d", len(lines), len(hostileStrings))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, line)
		}
		if obj["s"] != hostileStrings[i] {
			t.Fatalf("line %d: s = %q, want %q", i, obj["s"], hostileStrings[i])
		}
	}
}

func TestPerfettoSinkEscapesHostileStrings(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelBlock, NewPerfettoSink(&buf))
	for _, s := range hostileStrings {
		tr.Emit(Event{Kind: EvTranslateFail, Cycle: 1, PC: 0x100, Str: s})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Args struct {
				Cause string `json:"cause"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto doc with hostile causes invalid: %v\n%s", err, buf.String())
	}
	var causes []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" {
			causes = append(causes, ev.Args.Cause)
		}
	}
	if len(causes) != len(hostileStrings) {
		t.Fatalf("got %d translate-fail events, want %d", len(causes), len(hostileStrings))
	}
	for i, c := range causes {
		if c != hostileStrings[i] {
			t.Fatalf("cause %d = %q, want %q", i, c, hostileStrings[i])
		}
	}
}

// Counter events must land on "C"-phase counter tracks with the value
// in args, on the dedicated counters thread, alongside a thread_name
// metadata record — that is what makes ui.perfetto.dev draw them as
// line graphs over the same simulated-cycle axis as the spans.
func TestPerfettoCounterTracks(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelSpec, NewPerfettoSink(&buf))
	samples := []struct {
		name string
		v    uint64
	}{
		{CtrCacheHitRate, 97},
		{CtrMCBOccupancy, 2},
		{CtrPinnedLoads, 1},
		{CtrLeakedBytes, 5},
	}
	for i, s := range samples {
		tr.Emit(Event{Kind: EvCounter, Cycle: uint64(10 + i), Arg1: s.v, Str: s.name})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
			Args struct {
				Value *uint64 `json:"value"`
				Name  string  `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("counter trace invalid: %v\n%s", err, buf.String())
	}
	got := map[string]uint64{}
	sawThreadName := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Args.Name == "counters" {
			sawThreadName = true
		}
		if ev.Ph != "C" {
			continue
		}
		if ev.Args.Value == nil {
			t.Fatalf("counter %q has no args.value", ev.Name)
		}
		got[ev.Name] = *ev.Args.Value
	}
	for _, s := range samples {
		if got[s.name] != s.v {
			t.Fatalf("counter %q = %d, want %d (got map %v)", s.name, got[s.name], s.v, got)
		}
	}
	if !sawThreadName {
		t.Fatal("no thread_name metadata for the counters track")
	}
}

func TestTextSinkRendersCounters(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LevelSpec, NewTextSink(&buf))
	tr.Emit(Event{Kind: EvCounter, Cycle: 42, Arg1: 97, Str: CtrCacheHitRate})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "counter cache-hit-rate=97") {
		t.Fatalf("text counter line missing:\n%s", buf.String())
	}
}
