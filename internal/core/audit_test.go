package core

import (
	"reflect"
	"strings"
	"testing"

	"ghostbusters/internal/ir"
)

// The v1 pattern's pinned chain must name the exact witness path the
// paper's Fig. 3 draws: secret load n2 → shift n3 → leaking load n4,
// guarded by the bounds-check branch n1.
func TestAuditV1Provenance(t *testing.T) {
	b := spectreV1Block(t)
	rep, aud := ApplyAudited(b, ModeGhostBusters)
	if !rep.PatternFound() {
		t.Fatal("v1 pattern not detected")
	}
	if len(aud.Pinned) != 1 {
		t.Fatalf("Pinned = %+v, want exactly one chain", aud.Pinned)
	}
	c := aud.Pinned[0]
	if c.Node != 4 || c.Source != 2 {
		t.Fatalf("pinned chain node=%d source=%d, want node=4 source=2", c.Node, c.Source)
	}
	if want := []int{2, 3, 4}; !reflect.DeepEqual(c.Path, want) {
		t.Fatalf("pinned path = %v, want %v", c.Path, want)
	}
	if c.Depth() != 2 {
		t.Fatalf("pinned depth = %d, want 2", c.Depth())
	}
	if len(c.Guards) != 1 || c.Guards[0].Node != 1 || c.Guards[0].Kind != ir.GuardBranch {
		t.Fatalf("pinned guards = %+v, want the branch n1", c.Guards)
	}
	if aud.LoadsAnalyzed != 2 || aud.SpeculativeLoads != 2 || aud.RelaxedLoads != 1 {
		t.Fatalf("load accounting = %d/%d/%d, want 2 analyzed, 2 speculative, 1 relaxed", aud.LoadsAnalyzed, aud.SpeculativeLoads, aud.RelaxedLoads)
	}
	if aud.GuardEdges != rep.GuardEdges || aud.GuardEdges == 0 {
		t.Fatalf("GuardEdges = %d (report %d), want equal and non-zero", aud.GuardEdges, rep.GuardEdges)
	}
	// The replay check: every claimed step and guard edge must be real.
	if err := aud.Verify(b, true); err != nil {
		t.Fatalf("audit does not replay against the block: %v", err)
	}
}

func TestAuditV4Provenance(t *testing.T) {
	b := spectreV4Block(t)
	_, aud := ApplyAudited(b, ModeGhostBusters)
	if len(aud.Pinned) != 1 {
		t.Fatalf("Pinned = %+v, want one chain", aud.Pinned)
	}
	c := aud.Pinned[0]
	if want := []int{2, 3, 4}; !reflect.DeepEqual(c.Path, want) {
		t.Fatalf("pinned path = %v, want %v", c.Path, want)
	}
	if len(c.Guards) != 1 || c.Guards[0].Node != 1 || c.Guards[0].Kind != ir.GuardStore {
		t.Fatalf("pinned guards = %+v, want the store n1 (v4's speculation source)", c.Guards)
	}
	if err := aud.Verify(b, true); err != nil {
		t.Fatal(err)
	}
}

// Poisoned chains cover every poisoned node, at the right depths: the
// source loads explain themselves at depth 0.
func TestAuditPoisonedChains(t *testing.T) {
	b := benignBlock(t)
	rep, aud := AnalyzeAudited(b)
	if len(aud.Pinned) != 0 {
		t.Fatalf("benign block has pinned chains: %+v", aud.Pinned)
	}
	if len(aud.Poisoned) != rep.PoisonedInsts {
		t.Fatalf("got %d poisoned chains for %d poisoned insts", len(aud.Poisoned), rep.PoisonedInsts)
	}
	if aud.RelaxedLoads != 2 {
		t.Fatalf("RelaxedLoads = %d, want 2 (both loads proven safe)", aud.RelaxedLoads)
	}
	byNode := map[int]ir.ProvenanceChain{}
	for _, c := range aud.Poisoned {
		byNode[c.Node] = c
	}
	for _, load := range []int{2, 3} {
		c, ok := byNode[load]
		if !ok || c.Source != load || c.Depth() != 0 {
			t.Fatalf("source load n%d chain wrong: %+v", load, c)
		}
		if len(c.Guards) != 1 || c.Guards[0].Node != 1 {
			t.Fatalf("source load n%d guards = %+v, want the branch", load, c.Guards)
		}
	}
	// n4 consumes both poisoned loads; the witness path goes through
	// its A operand (n2).
	if c := byNode[4]; c.Source != 2 || c.Depth() != 1 {
		t.Fatalf("dependent add chain wrong: %+v", byNode[4])
	}
	if err := aud.Verify(b, false); err != nil {
		t.Fatal(err)
	}
}

// Every mode's audit must replay against the block it mutated —
// requireGuardEdges only in ghostbusters mode, where pins materialise
// as guard edges.
func TestAuditReplaysUnderAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeUnsafe, ModeGhostBusters, ModeFence, ModeNoSpeculation} {
		for _, mk := range []func(*testing.T) *ir.Block{spectreV1Block, spectreV4Block, benignBlock} {
			b := mk(t)
			_, aud := ApplyAudited(b, mode)
			if err := aud.Verify(b, mode == ModeGhostBusters); err != nil {
				t.Fatalf("mode %s: %v", mode, err)
			}
		}
	}
}

// The audit must be a pure observer: audited and unaudited analysis
// agree on every report field.
func TestAuditedReportMatchesPlain(t *testing.T) {
	for _, mk := range []func(*testing.T) *ir.Block{spectreV1Block, spectreV4Block, benignBlock} {
		plain := Analyze(mk(t))
		audited, _ := AnalyzeAudited(mk(t))
		if !reflect.DeepEqual(plain, audited) {
			t.Fatalf("audited analysis diverged:\nplain   %+v\naudited %+v", plain, audited)
		}
	}
}

// Verify is a real checker, not a formality: corrupt each part of a
// chain and it must object.
func TestAuditVerifyCatchesTampering(t *testing.T) {
	fresh := func() (*ir.Block, *ir.AuditReport) {
		b := spectreV1Block(t)
		_, aud := ApplyAudited(b, ModeGhostBusters)
		return b, aud
	}
	tampers := []func(*ir.AuditReport){
		func(a *ir.AuditReport) { a.Pinned[0].Path = []int{2, 4} },             // skip a data-flow step
		func(a *ir.AuditReport) { a.Pinned[0].Source = 3 },                     // claim a non-load source
		func(a *ir.AuditReport) { a.Pinned[0].Guards[0].Kind = ir.GuardStore }, // misclassify the guard
		func(a *ir.AuditReport) { a.Pinned[0].Guards[0].Node = 0 },             // point at a non-guard
		func(a *ir.AuditReport) { a.Pinned[0].Guards = nil },                   // pinned without guards
		func(a *ir.AuditReport) { a.Poisoned[0].PC++ },                         // mismatched PC
	}
	for i, tamper := range tampers {
		b, aud := fresh()
		tamper(aud)
		if err := aud.Verify(b, true); err == nil {
			t.Errorf("tamper %d not caught", i)
		}
	}
	// A guard whose edge was never inserted must fail the replay in
	// ghostbusters mode.
	b, aud := fresh()
	kept := b.Edges[:0]
	for _, e := range b.Edges {
		if e.Kind != ir.EdgeGuard {
			kept = append(kept, e)
		}
	}
	b.Edges = kept
	if err := aud.Verify(b, true); err == nil {
		t.Error("missing guard edge not caught")
	}
}

// The overlay derived from an audit marks exactly the analysis's
// conclusions for Dot rendering.
func TestAuditOverlay(t *testing.T) {
	b := spectreV1Block(t)
	_, aud := ApplyAudited(b, ModeGhostBusters)
	ov := aud.Overlay()
	if !ov.Pinned[4] || !ov.Guards[1] {
		t.Fatalf("overlay misses pin/guard: %+v", ov)
	}
	if !ov.Poisoned[2] || !ov.Poisoned[3] {
		t.Fatalf("overlay misses poisoned nodes: %+v", ov)
	}
	dot := b.Dot(ov)
	for _, want := range []string{"[pinned]", "[guard]", "color=red, style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot overlay missing %q", want)
		}
	}
}
