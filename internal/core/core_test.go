package core

import (
	"reflect"
	"testing"

	"ghostbusters/internal/ir"
	"ghostbusters/internal/riscv"
)

// spectreV1Block models Fig. 1: bounds check branch, then the two
// dependent loads (secret read + leaking access).
func spectreV1Block(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder(0x1000)
	n0 := bu.Emit(ir.Inst{Op: riscv.SLTU, A: ir.RegIn(10), B: ir.RegIn(11), DestArch: 5})
	bu.Emit(ir.Inst{Op: riscv.BEQ, A: ir.FromInst(n0), DestArch: -1, BranchExit: 0x2000})
	n2 := bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.RegIn(12), DestArch: 6})
	n3 := bu.Emit(ir.Inst{Op: riscv.SLLI, A: ir.FromInst(n2), Imm: 7, DestArch: 7})
	bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(n3), DestArch: 28})
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	return b
}

// spectreV4Block models Fig. 2: slow store then dependent double load.
func spectreV4Block(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder(0x3000)
	n0 := bu.Emit(ir.Inst{Op: riscv.MUL, A: ir.RegIn(5), B: ir.RegIn(6), DestArch: 7})
	bu.Emit(ir.Inst{Op: riscv.SD, A: ir.RegIn(8), B: ir.FromInst(n0), DestArch: -1})
	n2 := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(9), DestArch: 10})
	n3 := bu.Emit(ir.Inst{Op: riscv.ADD, A: ir.FromInst(n2), B: ir.RegIn(11), DestArch: 12})
	bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(n3), DestArch: 13})
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	return b
}

// benignBlock has speculation opportunities but no Spectre pattern: two
// independent loads after a branch, addresses derived from entry regs.
func benignBlock(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder(0x5000)
	n0 := bu.Emit(ir.Inst{Op: riscv.SLT, A: ir.RegIn(10), B: ir.RegIn(11), DestArch: 5})
	bu.Emit(ir.Inst{Op: riscv.BEQ, A: ir.FromInst(n0), DestArch: -1, BranchExit: 0x6000})
	n2 := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(12), DestArch: 6})
	n3 := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(13), Imm: 8, DestArch: 7})
	bu.Emit(ir.Inst{Op: riscv.ADD, A: ir.FromInst(n2), B: ir.FromInst(n3), DestArch: 8})
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAnalyzeDetectsV1(t *testing.T) {
	b := spectreV1Block(t)
	rep := Analyze(b)
	if !rep.PatternFound() {
		t.Fatal("v1 pattern not detected")
	}
	if len(rep.RiskyLoads) != 1 || rep.RiskyLoads[0] != 4 {
		t.Fatalf("RiskyLoads = %v, want [4] (only the dependent load)", rep.RiskyLoads)
	}
	if len(rep.Guards) != 1 || rep.Guards[0] != 1 {
		t.Fatalf("Guards = %v, want [1] (the branch)", rep.Guards)
	}
	if rep.SpeculativeLoads != 2 {
		t.Fatalf("SpeculativeLoads = %d, want 2", rep.SpeculativeLoads)
	}
	// Analyze must not mutate.
	if !b.HasRelaxableIn(4) {
		t.Fatal("Analyze mutated the block")
	}
}

func TestAnalyzeDetectsV4(t *testing.T) {
	b := spectreV4Block(t)
	rep := Analyze(b)
	if !rep.PatternFound() {
		t.Fatal("v4 pattern not detected")
	}
	if len(rep.RiskyLoads) != 1 || rep.RiskyLoads[0] != 4 {
		t.Fatalf("RiskyLoads = %v, want [4]", rep.RiskyLoads)
	}
	if len(rep.Guards) != 1 || rep.Guards[0] != 1 {
		t.Fatalf("Guards = %v, want [1] (the store)", rep.Guards)
	}
}

func TestAnalyzeBenign(t *testing.T) {
	b := benignBlock(t)
	rep := Analyze(b)
	if rep.PatternFound() {
		t.Fatalf("benign block flagged: %+v", rep)
	}
	if rep.SpeculativeLoads != 2 {
		t.Fatalf("SpeculativeLoads = %d, want 2", rep.SpeculativeLoads)
	}
	// Both load values are poisoned, and so is the dependent add.
	if rep.PoisonedInsts != 3 {
		t.Fatalf("PoisonedInsts = %d, want 3", rep.PoisonedInsts)
	}
}

func TestApplyGhostBustersPinsOnlyRiskyLoad(t *testing.T) {
	b := spectreV1Block(t)
	rep := Apply(b, ModeGhostBusters)
	if !rep.PatternFound() || rep.GuardEdges == 0 {
		t.Fatalf("report = %+v", rep)
	}
	// The leaking load (n4) is pinned...
	if b.HasRelaxableIn(4) {
		t.Fatal("risky load still speculative after mitigation")
	}
	// ...but the secret-reading load (n2) may still speculate: that is
	// the fine-grained property that keeps the countermeasure free.
	if !b.HasRelaxableIn(2) {
		t.Fatal("fine-grained mitigation pinned a non-leaking load")
	}
	// A guard edge branch->n4 exists.
	found := false
	for _, e := range b.Edges {
		if e.Kind == ir.EdgeGuard && e.From == 1 && e.To == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("guard edge not inserted")
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyGhostBustersV4(t *testing.T) {
	b := spectreV4Block(t)
	Apply(b, ModeGhostBusters)
	if b.HasRelaxableIn(4) {
		t.Fatal("risky load still speculative")
	}
	if !b.HasRelaxableIn(2) {
		t.Fatal("first load should stay speculative (it only reads, never leaks)")
	}
}

func TestApplyFencePinsWholeGuard(t *testing.T) {
	b := spectreV1Block(t)
	Apply(b, ModeFence)
	// Fence at the branch: neither load may cross it any more.
	if b.HasRelaxableIn(2) || b.HasRelaxableIn(4) {
		t.Fatal("fence left speculation across the guard")
	}
}

func TestApplyFenceBenignKeepsSpeculation(t *testing.T) {
	b := benignBlock(t)
	Apply(b, ModeFence)
	// No pattern, no fence: speculation preserved (paper: fence variant
	// costs nothing on the standard suite because the pattern is rare).
	if !b.HasRelaxableIn(2) || !b.HasRelaxableIn(3) {
		t.Fatal("fence mode pinned a pattern-free block")
	}
}

func TestApplyNoSpecPinsEverything(t *testing.T) {
	b := benignBlock(t)
	Apply(b, ModeNoSpeculation)
	for _, e := range b.Edges {
		if e.Relaxable {
			t.Fatal("nospec left a relaxable edge")
		}
	}
}

func TestApplyUnsafeChangesNothing(t *testing.T) {
	b := spectreV1Block(t)
	before := len(b.Edges)
	rep := Apply(b, ModeUnsafe)
	if !rep.PatternFound() {
		t.Fatal("unsafe mode should still report detection")
	}
	if len(b.Edges) != before || !b.HasRelaxableIn(4) {
		t.Fatal("unsafe mode modified the block")
	}
}

func TestApplyIdempotent(t *testing.T) {
	b := spectreV1Block(t)
	Apply(b, ModeGhostBusters)
	edges := len(b.Edges)
	rep := Apply(b, ModeGhostBusters)
	if len(b.Edges) != edges {
		t.Fatalf("second Apply added %d edges", len(b.Edges)-edges)
	}
	// After pinning, the load is no longer speculative, so the pattern
	// is gone on re-analysis.
	if rep.PatternFound() {
		t.Fatalf("pattern still found after mitigation: %+v", rep)
	}
}

// Deep chain: poison must propagate through arbitrary ALU chains.
func TestPoisonPropagatesThroughChains(t *testing.T) {
	bu := ir.NewBuilder(0)
	n0 := bu.Emit(ir.Inst{Op: riscv.ADD, A: ir.RegIn(5), B: ir.RegIn(6), DestArch: 7})
	bu.Emit(ir.Inst{Op: riscv.SD, A: ir.RegIn(8), B: ir.FromInst(n0), DestArch: -1})
	cur := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(9), DestArch: 10})
	for i := 0; i < 10; i++ {
		cur = bu.Emit(ir.Inst{Op: riscv.XORI, A: ir.FromInst(cur), Imm: int64(i), DestArch: 10})
	}
	leak := bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(cur), DestArch: 11})
	b := bu.Block()
	rep := Analyze(b)
	if len(rep.RiskyLoads) != 1 || rep.RiskyLoads[0] != leak {
		t.Fatalf("RiskyLoads = %v, want [%d]", rep.RiskyLoads, leak)
	}
	if rep.PoisonedInsts < 10 {
		t.Fatalf("PoisonedInsts = %d, want >= 10", rep.PoisonedInsts)
	}
}

// Store data poisoning is not a leak (only addresses index the cache).
func TestPoisonedStoreDataIsNotAPattern(t *testing.T) {
	bu := ir.NewBuilder(0)
	bu.Emit(ir.Inst{Op: riscv.SD, A: ir.RegIn(8), B: ir.RegIn(5), DestArch: -1})
	n1 := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(9), DestArch: 10})
	bu.Emit(ir.Inst{Op: riscv.SD, A: ir.RegIn(8), B: ir.FromInst(n1), Imm: 8, DestArch: -1})
	rep := Analyze(bu.Block())
	if rep.PatternFound() {
		t.Fatalf("store with poisoned data flagged: %+v", rep)
	}
}

func TestModeParseAndString(t *testing.T) {
	for _, m := range []Mode{ModeUnsafe, ModeGhostBusters, ModeFence, ModeNoSpeculation, ModeLoadFence, ModeSFIClamp, ModeFenceMin} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) should fail")
	}
}

// multiGuardBlock has a risky load guarded by TWO branches: the secret
// read crosses both, so the leaking load's guard set has two members.
func multiGuardBlock(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder(0x7000)
	n0 := bu.Emit(ir.Inst{Op: riscv.SLT, A: ir.RegIn(10), B: ir.RegIn(11), DestArch: 5})
	bu.Emit(ir.Inst{Op: riscv.BEQ, A: ir.FromInst(n0), DestArch: -1, BranchExit: 0x7100})
	n2 := bu.Emit(ir.Inst{Op: riscv.SLTU, A: ir.RegIn(12), B: ir.RegIn(13), DestArch: 6})
	bu.Emit(ir.Inst{Op: riscv.BNE, A: ir.FromInst(n2), DestArch: -1, BranchExit: 0x7200})
	n4 := bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.RegIn(14), DestArch: 7})
	bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(n4), DestArch: 8})
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	return b
}

// Regression: applyWith used to range over the guard-set map when
// pinning a risky load, so with more than one guard the inserted guard
// edges landed in map-iteration order — two runs on identical blocks
// could disagree on b.Edges and on the rendered DOT. The pinning now
// walks sorted guard indices; repeated applications must be
// byte-identical.
func TestApplyGhostBustersDeterministic(t *testing.T) {
	apply := func() ([]ir.Edge, string) {
		b := multiGuardBlock(t)
		rep, aud := ApplyAudited(b, ModeGhostBusters)
		if len(rep.RiskyLoads) != 1 {
			t.Fatalf("RiskyLoads = %v, want one", rep.RiskyLoads)
		}
		if rep.GuardEdges < 2 {
			t.Fatalf("GuardEdges = %d, want >= 2 (the block must exercise multi-guard pinning)", rep.GuardEdges)
		}
		return b.Edges, b.Dot(aud.Overlay())
	}
	edges0, dot0 := apply()
	for i := 1; i < 8; i++ {
		edges, dot := apply()
		if !reflect.DeepEqual(edges, edges0) {
			t.Fatalf("run %d produced different edges:\n%v\nvs\n%v", i, edges, edges0)
		}
		if dot != dot0 {
			t.Fatalf("run %d produced a different DOT rendering", i)
		}
	}
}

// Two independent patterns in one block are both pinned.
func TestMultiplePatterns(t *testing.T) {
	bu := ir.NewBuilder(0)
	n0 := bu.Emit(ir.Inst{Op: riscv.SLT, A: ir.RegIn(10), B: ir.RegIn(11), DestArch: 5})
	bu.Emit(ir.Inst{Op: riscv.BEQ, A: ir.FromInst(n0), DestArch: -1, BranchExit: 0x10})
	a := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(12), DestArch: 6})
	l1 := bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(a), DestArch: 7})
	c := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(13), DestArch: 8})
	l2 := bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(c), DestArch: 9})
	b := bu.Block()
	rep := Apply(b, ModeGhostBusters)
	if len(rep.RiskyLoads) != 2 || rep.RiskyLoads[0] != l1 || rep.RiskyLoads[1] != l2 {
		t.Fatalf("RiskyLoads = %v, want [%d %d]", rep.RiskyLoads, l1, l2)
	}
	if b.HasRelaxableIn(l1) || b.HasRelaxableIn(l2) {
		t.Fatal("not all risky loads pinned")
	}
	if !b.HasRelaxableIn(a) || !b.HasRelaxableIn(c) {
		t.Fatal("address-producing loads should stay speculative")
	}
}
