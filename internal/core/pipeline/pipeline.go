// Package pipeline turns the DBT engine's single hardcoded mitigation
// step into a registry of named, ordered, independently-testable IR
// passes. A core.Mode no longer selects a branch inside core.applyWith;
// it selects a Pipeline — an ordered list of passes applied to the
// block before scheduling — so alternative mitigations from the related
// work (blanket load fencing, SFI-style address clamping, Blade-style
// minimal cuts) plug in next to the paper's modes without touching the
// back end.
//
// Determinism contract: a pass may only mutate the block through
// deterministic iteration (program-order loops, sorted guard lists), so
// repeated applications to equal blocks yield byte-identical b.Edges,
// b.Insts and DOT renderings. Every pass must also be idempotent:
// applying a pipeline to an already-mitigated block changes nothing —
// passes that insert instructions mark them with ir.TempDest and skip
// accesses that already carry their rewrite.
//
// Audit attribution: one ir.AuditReport spans the whole pipeline. After
// each pass runs, the provenance chains it appended are stamped with
// the pass name and an ir.PassAttribution entry records its share of
// the mitigation work, in application order.
package pipeline

import (
	"fmt"
	"sort"

	"ghostbusters/internal/core"
	"ghostbusters/internal/ir"
)

// PassReport is what one pass did to one block.
type PassReport struct {
	// Pass is the registered pass name (stamped by the pipeline runner).
	Pass string
	// Report is the pass's detection/mitigation report in core.Report
	// terms. For analysis-bearing passes this is the poison analysis
	// result plus the pass's own GuardEdges count.
	Report core.Report
	// PinnedEdges counts relaxable edges the pass made hard outside of
	// the guard-edge mechanism (fences, blanket pins, cut pins).
	PinnedEdges int
	// InsertedInsts counts instructions the pass added to the block
	// (mask chains and similar rewrites).
	InsertedInsts int
}

// Pass is one named mitigation step over an IR block. Apply mutates the
// block in place; aud is nil when the caller did not ask for
// provenance bookkeeping. Apply must be deterministic and idempotent
// (see the package comment).
type Pass struct {
	Name  string
	Apply func(b *ir.Block, aud *ir.AuditReport) PassReport
}

// Pipeline is the ordered pass list a mitigation mode resolves to,
// plus the metadata the docs and leakage matrix render.
type Pipeline struct {
	Mode      core.Mode
	Name      string // mode name (matches core.ParseMode)
	Mechanism string // one-line description of how it mitigates
	Lineage   string // paper lineage of the technique
	// Fig4 marks the four legacy modes the paper's Figure 4 compares;
	// harness.Fig4Modes derives from this flag so the byte-identity and
	// -checkperf gates keep covering exactly the seed modes.
	Fig4   bool
	Passes []Pass
}

// Apply runs every pass in order without audit bookkeeping and returns
// the aggregate report plus the per-pass reports.
func (p *Pipeline) Apply(b *ir.Block) (core.Report, []PassReport) {
	return p.run(b, nil)
}

// ApplyAudited is Apply with a pipeline-spanning audit report: chains
// are stamped with the pass that produced them and aud.Passes records
// each pass's attribution in application order.
func (p *Pipeline) ApplyAudited(b *ir.Block) (core.Report, *ir.AuditReport, []PassReport) {
	aud := &ir.AuditReport{}
	rep, prs := p.run(b, aud)
	return rep, aud, prs
}

func (p *Pipeline) run(b *ir.Block, aud *ir.AuditReport) (core.Report, []PassReport) {
	var agg core.Report
	out := make([]PassReport, 0, len(p.Passes))
	for k := range p.Passes {
		pass := &p.Passes[k]
		chainsBefore := 0
		if aud != nil {
			chainsBefore = len(aud.Pinned)
		}
		pr := pass.Apply(b, aud)
		pr.Pass = pass.Name
		out = append(out, pr)
		if k == 0 {
			// Detection counters describe the block once (the first
			// analysis-bearing pass owns them); mitigation counters
			// accumulate across passes.
			agg = pr.Report
		} else {
			agg.GuardEdges += pr.Report.GuardEdges
		}
		if aud != nil {
			for i := chainsBefore; i < len(aud.Pinned); i++ {
				aud.Pinned[i].Pass = pass.Name
			}
			aud.Passes = append(aud.Passes, ir.PassAttribution{
				Pass:          pass.Name,
				RiskyLoads:    len(pr.Report.RiskyLoads),
				GuardEdges:    pr.Report.GuardEdges,
				PinnedEdges:   pr.PinnedEdges,
				InsertedInsts: pr.InsertedInsts,
			})
		}
	}
	if aud != nil {
		aud.GuardEdges = agg.GuardEdges
	}
	return agg, out
}

var (
	byMode = map[core.Mode]*Pipeline{}
	byName = map[string]*Pipeline{}
	order  []core.Mode // registration order (mode-value order for the built-ins)
)

// Register adds a pipeline to the registry. It panics on duplicate
// mode or name — registration is an init-time programming act, not a
// runtime input.
func Register(p *Pipeline) {
	if p.Name == "" || len(p.Passes) == 0 {
		panic(fmt.Sprintf("pipeline: registering %q with no name or no passes", p.Name))
	}
	if _, dup := byMode[p.Mode]; dup {
		panic(fmt.Sprintf("pipeline: duplicate registration for mode %v", p.Mode))
	}
	if _, dup := byName[p.Name]; dup {
		panic(fmt.Sprintf("pipeline: duplicate registration for name %q", p.Name))
	}
	byMode[p.Mode] = p
	byName[p.Name] = p
	order = append(order, p.Mode)
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
}

// For resolves a mode to its registered pipeline.
func For(mode core.Mode) (*Pipeline, error) {
	p, ok := byMode[mode]
	if !ok {
		return nil, fmt.Errorf("pipeline: no pipeline registered for mode %v", mode)
	}
	return p, nil
}

// MustFor is For for callers holding a mode that ParseMode accepted.
func MustFor(mode core.Mode) *Pipeline {
	p, err := For(mode)
	if err != nil {
		panic(err)
	}
	return p
}

// ByName resolves a registered pipeline by its mode name.
func ByName(name string) (*Pipeline, error) {
	p, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("pipeline: no pipeline registered as %q", name)
	}
	return p, nil
}

// Modes returns every registered mode in mode-value order. Harness
// matrices, torture tests and the leakage matrix derive their mode
// lists from this, so a newly registered mitigation appears everywhere
// automatically.
func Modes() []core.Mode {
	return append([]core.Mode(nil), order...)
}

// Fig4Modes returns the registered modes flagged as part of the paper's
// Figure 4 comparison, in mode-value order (the four legacy modes).
func Fig4Modes() []core.Mode {
	var out []core.Mode
	for _, m := range order {
		if byMode[m].Fig4 {
			out = append(out, m)
		}
	}
	return out
}

// All returns every registered pipeline in mode-value order.
func All() []*Pipeline {
	out := make([]*Pipeline, 0, len(order))
	for _, m := range order {
		out = append(out, byMode[m])
	}
	return out
}
