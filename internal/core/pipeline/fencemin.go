package pipeline

import (
	"sort"

	"ghostbusters/internal/core"
	"ghostbusters/internal/ir"
)

// fenceMin places the minimal number of pins that cuts every
// source→sink path in the poison data-flow graph, Blade-style, instead
// of pinning every sink the way ghostbusters does.
//
// Sources are speculative loads that generate poison; sinks are
// speculative accesses whose address that poison reaches (the Spectre
// pattern). Any source→sink flow can be cut on either end: pin the
// sink (ghostbusters' choice) or pin the source — a pinned source
// reads architecturally-correct data, so every address derived from it
// is clean and the sinks it fed may keep their speculative schedule.
// When one source feeds many sinks, cutting at the source needs one
// pin where ghostbusters needs many. The optimal selection is a
// minimum vertex cover of the bipartite source/sink graph, obtained
// via maximum matching (Kuhn) and König's theorem.
//
// Covered sinks get the full ghostbusters treatment (pin + guard
// edges); covered pure sources only need their relaxable in-edges
// pinned. A sink left uncovered is safe because every source feeding
// it is covered; a source left uncovered only feeds covered sinks.
func fenceMin(b *ir.Block, aud *ir.AuditReport) PassReport {
	rep, _ := core.AnalyzePins(b, aud)
	pr := PassReport{Report: rep}

	sinkSrcs, sinkGuards := poisonFlow(b)
	if len(sinkSrcs) == 0 {
		return pr
	}

	cover := minVertexCover(sinkSrcs)
	for _, node := range cover {
		if guards, isSink := sinkGuards[node]; isSink {
			pr.Report.GuardEdges += core.PinRisky(b, node, guards)
		} else {
			for _, e := range b.InEdges(node) {
				if b.Edges[e].Relaxable {
					b.Edges[e].Relaxable = false
					pr.PinnedEdges++
				}
			}
		}
	}
	return pr
}

// poisonFlow runs the poison propagation tracking, for every sink, the
// set of sources whose poison reaches its address and the guard set
// the mitigation must order it after. It mirrors core's analysis with
// one deliberate difference: a sink's own value stays poisoned (with
// the sink itself as a fresh source), because the min-cut may leave
// the sink speculating — only core's analysis, which always pins every
// sink, may assume a pinned access reads clean data.
func poisonFlow(b *ir.Block) (sinkSrcs map[int][]int, sinkGuards map[int][]int) {
	n := len(b.Insts)
	type set map[int]struct{}
	union := func(dst, src set) set {
		if len(src) == 0 {
			return dst
		}
		if dst == nil {
			dst = make(set, len(src))
		}
		for k := range src {
			dst[k] = struct{}{}
		}
		return dst
	}
	sorted := func(s set) []int {
		out := make([]int, 0, len(s))
		for k := range s {
			out = append(out, k)
		}
		sort.Ints(out)
		return out
	}

	selfGuards := make([]set, n)
	for _, e := range b.Edges {
		if e.Relaxable && b.Insts[e.To].IsLoad() {
			if selfGuards[e.To] == nil {
				selfGuards[e.To] = make(set)
			}
			selfGuards[e.To][e.From] = struct{}{}
		}
	}

	srcs := make([]set, n)   // poison origins reaching each value
	guards := make([]set, n) // speculation causes that poison is conditional on
	opSrcs := func(op ir.Operand) set {
		if op.Kind == ir.OpInst {
			return srcs[op.Inst]
		}
		return nil
	}
	opGuards := func(op ir.Operand) set {
		if op.Kind == ir.OpInst {
			return guards[op.Inst]
		}
		return nil
	}

	sinkSrcs = make(map[int][]int)
	sinkGuards = make(map[int][]int)
	for i := range b.Insts {
		in := &b.Insts[i]
		var s, g set
		s = union(s, opSrcs(in.A))
		g = union(g, opGuards(in.A))
		if !in.IsLoad() { // a load's B operand is unused; stores leak via address only
			s = union(s, opSrcs(in.B))
			g = union(g, opGuards(in.B))
		}
		if in.IsLoad() && len(selfGuards[i]) > 0 {
			if len(opSrcs(in.A)) > 0 {
				// The Spectre pattern. Record the flow; the value stays
				// poisoned with i as a fresh source (see doc comment).
				sinkSrcs[i] = sorted(opSrcs(in.A))
				var pg set
				pg = union(pg, opGuards(in.A))
				pg = union(pg, selfGuards[i])
				sinkGuards[i] = sorted(pg)
				srcs[i] = set{i: {}}
				guards[i] = pg
				continue
			}
			// Clean-address speculative load: a poison source.
			s = union(s, set{i: {}})
			g = union(g, selfGuards[i])
		}
		srcs[i], guards[i] = s, g
	}
	return sinkSrcs, sinkGuards
}

// minVertexCover computes a minimum vertex cover of the bipartite
// sink/source graph via Kuhn's maximum matching and König's theorem,
// returning the covered instruction indices sorted. All iteration
// orders are sorted, so the cover is deterministic.
func minVertexCover(sinkSrcs map[int][]int) []int {
	sinks := make([]int, 0, len(sinkSrcs))
	for t := range sinkSrcs {
		sinks = append(sinks, t)
	}
	sort.Ints(sinks)

	matchOfSink := map[int]int{} // sink -> matched source
	matchOfSrc := map[int]int{}  // source -> matched sink
	var augment func(t int, visited map[int]bool) bool
	augment = func(t int, visited map[int]bool) bool {
		for _, s := range sinkSrcs[t] {
			if visited[s] {
				continue
			}
			visited[s] = true
			u, taken := matchOfSrc[s]
			if !taken || augment(u, visited) {
				matchOfSrc[s] = t
				matchOfSink[t] = s
				return true
			}
		}
		return false
	}
	for _, t := range sinks {
		augment(t, map[int]bool{})
	}

	// König: alternate from unmatched sinks (non-matching edge to a
	// source, matching edge back to a sink). Cover = sinks not reached
	// ∪ sources reached.
	zSink := map[int]bool{}
	zSrc := map[int]bool{}
	var queue []int
	for _, t := range sinks {
		if _, ok := matchOfSink[t]; !ok {
			zSink[t] = true
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, s := range sinkSrcs[t] {
			if matchOfSink[t] == s || zSrc[s] {
				continue
			}
			zSrc[s] = true
			if u, ok := matchOfSrc[s]; ok && !zSink[u] {
				zSink[u] = true
				queue = append(queue, u)
			}
		}
	}

	coverSet := map[int]bool{}
	for _, t := range sinks {
		if !zSink[t] {
			coverSet[t] = true
		}
	}
	for s := range zSrc {
		coverSet[s] = true
	}
	cover := make([]int, 0, len(coverSet))
	for v := range coverSet {
		cover = append(cover, v)
	}
	sort.Ints(cover)
	return cover
}
