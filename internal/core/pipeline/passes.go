package pipeline

import (
	"ghostbusters/internal/core"
	"ghostbusters/internal/ir"
	"ghostbusters/internal/riscv"
)

// The built-in pipelines. The four legacy modes wrap core.Apply so the
// pipeline path stays byte-identical with the seed behaviour (the
// differential tests and the fig4 byte-identity gate rely on it); the
// ported mitigations are implemented as native passes.
func init() {
	Register(&Pipeline{
		Mode: core.ModeUnsafe, Name: "unsafe",
		Mechanism: "detection only; full speculation",
		Lineage:   "Rokicki DATE'20 baseline",
		Fig4:      true,
		Passes:    []Pass{legacyPass("detect", core.ModeUnsafe)},
	})
	Register(&Pipeline{
		Mode: core.ModeGhostBusters, Name: "ghostbusters",
		Mechanism: "pin each risky access behind fine-grained guard edges",
		Lineage:   "Rokicki DATE'20 (the paper's contribution)",
		Fig4:      true,
		Passes:    []Pass{legacyPass("ghostbusters", core.ModeGhostBusters)},
	})
	Register(&Pipeline{
		Mode: core.ModeFence, Name: "fence",
		Mechanism: "forbid all speculation across each implicated guard",
		Lineage:   "Rokicki DATE'20 fence baseline (lfence-on-detect)",
		Fig4:      true,
		Passes:    []Pass{legacyPass("fence", core.ModeFence)},
	})
	Register(&Pipeline{
		Mode: core.ModeNoSpeculation, Name: "nospec",
		Mechanism: "disable both speculation mechanisms globally",
		Lineage:   "Rokicki DATE'20 no-speculation baseline",
		Fig4:      true,
		Passes:    []Pass{legacyPass("nospec", core.ModeNoSpeculation)},
	})
	Register(&Pipeline{
		Mode: core.ModeLoadFence, Name: "loadfence",
		Mechanism: "pin every load; no load ever executes speculatively",
		Lineage:   "blanket LOADLFENCE strawman (Bălucea & Irofti catalog)",
		Passes:    []Pass{{Name: "loadfence", Apply: loadFence}},
	})
	Register(&Pipeline{
		Mode: core.ModeSFIClamp, Name: "sfi-clamp",
		Mechanism: "mask risky addresses with an inserted predicate chain",
		Lineage:   "Venkman/Swivel SFI, SLH-style masking",
		Passes:    []Pass{{Name: "sfi-clamp", Apply: sfiClamp}},
	})
	Register(&Pipeline{
		Mode: core.ModeFenceMin, Name: "fence-min",
		Mechanism: "min-cut pin placement over the poison data-flow graph",
		Lineage:   "Blade (Vassena et al. POPL'21)",
		Passes:    []Pass{{Name: "fence-min", Apply: fenceMin}},
	})
}

// legacyPass wraps one core.Apply mode as a single pipeline pass.
func legacyPass(name string, mode core.Mode) Pass {
	return Pass{Name: name, Apply: func(b *ir.Block, aud *ir.AuditReport) PassReport {
		before := relaxableEdges(b)
		rep := core.ApplyInto(b, mode, aud)
		return PassReport{Report: rep, PinnedEdges: before - relaxableEdges(b)}
	}}
}

func relaxableEdges(b *ir.Block) int {
	n := 0
	for _, e := range b.Edges {
		if e.Relaxable {
			n++
		}
	}
	return n
}

// loadFence pins every load with a relaxable incoming edge: no load
// ever executes speculatively, so no poison is ever generated and the
// Spectre pattern cannot arise. ALU work keeps speculating, which
// keeps it cheaper than nospec. The detection analysis still runs for
// the report (and the audit explanation of what would have leaked).
func loadFence(b *ir.Block, aud *ir.AuditReport) PassReport {
	rep, _ := core.AnalyzePins(b, aud)
	pr := PassReport{Report: rep}
	for k := range b.Edges {
		e := &b.Edges[k]
		if e.Relaxable && b.Insts[e.To].IsLoad() {
			e.Relaxable = false
			pr.PinnedEdges++
		}
	}
	return pr
}

// sfiClamp rewrites each risky access to use a clamped address instead
// of pinning it: for every guard branch the pass materialises the
// fall-through predicate from the branch's own operands, ANDs the
// predicates together, expands the result to an all-ones/all-zero mask
// (mask = 0 - p) and masks the access's address base with it. On the
// architectural path the mask is all ones and the address is untouched;
// on any path where a guard would exit, the address clamps to the load
// offset alone, which is below the guest memory base — the dismissable
// load squashes without filling a cache line, so misspeculation leaks
// nothing while the access keeps its speculative schedule.
//
// Inserted instructions carry ir.TempDest: their values live only in
// hidden registers, are never committed, and mark an already-clamped
// access for idempotence. Accesses guarded by a store (the v4 pattern —
// no predicate to materialise) fall back to ghostbusters pinning.
func sfiClamp(b *ir.Block, aud *ir.AuditReport) PassReport {
	rep, pins := core.AnalyzePins(b, aud)
	pr := PassReport{Report: rep}

	var masked []int // risky loads to clamp, program order
	for _, load := range rep.RiskyLoads {
		switch {
		case isClamped(b, load):
			// already carries a mask chain from a previous application
		case branchGuardsOnly(b, pins[load]):
			masked = append(masked, load)
		default:
			pr.Report.GuardEdges += core.PinRisky(b, load, pins[load])
		}
	}

	// Insert mask chains back to front so pending (smaller) indices in
	// masked/pins stay valid while later chains are placed.
	type insertion struct{ at, n int }
	var ins []insertion // descending at
	for k := len(masked) - 1; k >= 0; k-- {
		load := masked[k]
		chain := maskChain(b, load, pins[load])
		b.InsertInsts(load, chain)
		// The access now reads the clamped address (the chain's final
		// AND, immediately before the shifted load).
		b.Insts[load+len(chain)].A = ir.FromInst(load + len(chain) - 1)
		pr.InsertedInsts += len(chain)
		ins = append(ins, insertion{at: load, n: len(chain)})
	}
	if len(ins) == 0 {
		return pr
	}

	// InsertInsts renumbered the block; renumber the report and audit
	// the same way. remap is evaluated against original indices: each
	// insertion shifts exactly the indices at or above its point, and
	// since ins is descending the running value only crosses an `at`
	// it had already passed originally.
	remap := func(i int) int {
		for _, s := range ins {
			if i >= s.at {
				i += s.n
			}
		}
		return i
	}
	remapAll := func(xs []int) {
		for i := range xs {
			xs[i] = remap(xs[i])
		}
	}
	remapAll(pr.Report.Poisoned)
	remapAll(pr.Report.RiskyLoads)
	remapAll(pr.Report.Guards)
	if aud != nil {
		wasMasked := make(map[int]bool, len(masked))
		for _, l := range masked {
			wasMasked[remap(l)] = true
		}
		remapChains(aud.Poisoned, remap, nil)
		remapChains(aud.Pinned, remap, wasMasked)
	}
	return pr
}

// remapChains renumbers provenance chains after instruction insertion.
// For chains explaining a masked access, the final data-flow step now
// runs through the inserted AND (the access's rewritten address
// operand), so the AND is spliced into the path to keep the chain
// structurally verifiable.
func remapChains(chains []ir.ProvenanceChain, remap func(int) int, masked map[int]bool) {
	for i := range chains {
		c := &chains[i]
		c.Node = remap(c.Node)
		c.Source = remap(c.Source)
		for k := range c.Path {
			c.Path[k] = remap(c.Path[k])
		}
		for k := range c.Guards {
			c.Guards[k].Node = remap(c.Guards[k].Node)
		}
		if masked != nil && masked[c.Node] && len(c.Path) >= 2 {
			// addr -> load became addr -> ... -> AND -> load; the AND
			// sits immediately before the (shifted) load.
			c.Path = append(c.Path[:len(c.Path)-1], c.Node-1, c.Node)
		}
	}
}

// isClamped reports whether the access already reads a mitigation-
// inserted address (its base operand is a TempDest temporary).
func isClamped(b *ir.Block, load int) bool {
	a := b.Insts[load].A
	return a.Kind == ir.OpInst && b.Insts[a.Inst].DestArch == ir.TempDest
}

// branchGuardsOnly reports whether every guard is a conditional branch
// the pass knows how to turn into a predicate.
func branchGuardsOnly(b *ir.Block, guards []int) bool {
	if len(guards) == 0 {
		return false
	}
	for _, g := range guards {
		switch b.Insts[g].Op {
		case riscv.BEQ, riscv.BNE, riscv.BLT, riscv.BGE, riscv.BLTU, riscv.BGEU:
		default:
			return false
		}
	}
	return true
}

// maskChain builds the TempDest instruction sequence computing the
// clamped address base for the access at index `at`, to be inserted at
// `at`. Operands referencing existing instructions use pre-insertion
// indices (all guards and their operands precede the access); chain
// elements reference each other by their final, post-insertion index
// at+k. Branches are normalised so taken == leave the trace, so each
// per-guard predicate is 1 exactly on the fall-through path.
func maskChain(b *ir.Block, at int, guards []int) []ir.Inst {
	var chain []ir.Inst
	pc := b.Insts[at].PC
	tmp := func(op riscv.Op, a, bop ir.Operand, imm int64) int {
		chain = append(chain, ir.Inst{Op: op, A: a, B: bop, Imm: imm, DestArch: ir.TempDest, PC: pc})
		return len(chain) - 1
	}
	ref := func(k int) ir.Operand { return ir.FromInst(at + k) }
	none := ir.Operand{} // reads as the constant zero

	var preds []int // chain positions holding each guard's 0/1 predicate
	for _, g := range guards {
		gi := &b.Insts[g]
		var p int
		switch gi.Op {
		case riscv.BEQ: // exits when a == b: p = (a ^ b) != 0
			t := tmp(riscv.XOR, gi.A, gi.B, 0)
			p = tmp(riscv.SLTU, none, ref(t), 0)
		case riscv.BNE: // exits when a != b: p = (a ^ b) == 0
			t := tmp(riscv.XOR, gi.A, gi.B, 0)
			p = tmp(riscv.SLTIU, ref(t), ir.Operand{}, 1)
		case riscv.BLT: // exits when a < b (signed): p = !(a < b)
			t := tmp(riscv.SLT, gi.A, gi.B, 0)
			p = tmp(riscv.XORI, ref(t), ir.Operand{}, 1)
		case riscv.BGE: // exits when a >= b (signed): p = a < b
			p = tmp(riscv.SLT, gi.A, gi.B, 0)
		case riscv.BLTU: // exits when a < b (unsigned): p = !(a < b)
			t := tmp(riscv.SLTU, gi.A, gi.B, 0)
			p = tmp(riscv.XORI, ref(t), ir.Operand{}, 1)
		case riscv.BGEU: // exits when a >= b (unsigned): p = a < b
			p = tmp(riscv.SLTU, gi.A, gi.B, 0)
		}
		preds = append(preds, p)
	}

	acc := preds[0]
	for _, p := range preds[1:] {
		acc = tmp(riscv.AND, ref(acc), ref(p), 0)
	}
	// Expand the 0/1 predicate to an all-ones/all-zero mask.
	mask := tmp(riscv.SUB, none, ref(acc), 0)
	// Clamp the access's address base.
	tmp(riscv.AND, b.Insts[at].A, ref(mask), 0)
	return chain
}
