package pipeline

import (
	"reflect"
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/ir"
	"ghostbusters/internal/riscv"
)

// v1Block models Fig. 1: bounds-check branch, secret read, dependent
// leaking load.
func v1Block(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder(0x1000)
	n0 := bu.Emit(ir.Inst{Op: riscv.SLTU, A: ir.RegIn(10), B: ir.RegIn(11), DestArch: 5})
	bu.Emit(ir.Inst{Op: riscv.BEQ, A: ir.FromInst(n0), DestArch: -1, BranchExit: 0x2000})
	n2 := bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.RegIn(12), DestArch: 6})
	n3 := bu.Emit(ir.Inst{Op: riscv.SLLI, A: ir.FromInst(n2), Imm: 7, DestArch: 7})
	bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(n3), DestArch: 28})
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	return b
}

// v4Block models Fig. 2: slow store, then a dependent double load that
// may bypass it.
func v4Block(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder(0x3000)
	n0 := bu.Emit(ir.Inst{Op: riscv.MUL, A: ir.RegIn(5), B: ir.RegIn(6), DestArch: 7})
	bu.Emit(ir.Inst{Op: riscv.SD, A: ir.RegIn(8), B: ir.FromInst(n0), DestArch: -1})
	n2 := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(9), DestArch: 10})
	n3 := bu.Emit(ir.Inst{Op: riscv.ADD, A: ir.FromInst(n2), B: ir.RegIn(11), DestArch: 12})
	bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(n3), DestArch: 13})
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	return b
}

var blockMakers = map[string]func(*testing.T) *ir.Block{
	"v1": v1Block,
	"v4": v4Block,
}

func TestRegistryCoversAllModes(t *testing.T) {
	modes := Modes()
	if len(modes) < 7 {
		t.Fatalf("registry has %d modes, want the four paper modes plus >= 3 ported mitigations", len(modes))
	}
	for i := 1; i < len(modes); i++ {
		if modes[i-1] >= modes[i] {
			t.Fatalf("Modes() not in ascending mode-value order: %v", modes)
		}
	}
	for _, m := range modes {
		pl := MustFor(m)
		if pl.Mode != m {
			t.Errorf("MustFor(%v).Mode = %v", m, pl.Mode)
		}
		if pl.Name != m.String() {
			t.Errorf("pipeline name %q != mode name %q", pl.Name, m.String())
		}
		byN, err := ByName(pl.Name)
		if err != nil || byN != pl {
			t.Errorf("ByName(%q) = %v, %v", pl.Name, byN, err)
		}
		if pl.Mechanism == "" || pl.Lineage == "" {
			t.Errorf("%s: missing Mechanism/Lineage metadata", pl.Name)
		}
		// ParseMode and the registry agree: every registered name resolves.
		if parsed, err := core.ParseMode(pl.Name); err != nil || parsed != m {
			t.Errorf("core.ParseMode(%q) = %v, %v", pl.Name, parsed, err)
		}
	}
	if _, err := For(core.Mode(99)); err == nil {
		t.Error("For(unregistered mode) should fail")
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
}

func TestFig4ModesAreTheSeedFour(t *testing.T) {
	want := []core.Mode{core.ModeUnsafe, core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation}
	if got := Fig4Modes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Fig4Modes() = %v, want %v (the byte-identity gate covers exactly the seed modes)", got, want)
	}
}

// The four legacy pipelines must transform a block exactly as the
// monolithic core.Apply does: same instructions, same edges, same
// report. This is the differential gate behind the fig4 byte-identity
// guarantee.
func TestLegacyPipelinesMatchCoreApply(t *testing.T) {
	for _, mode := range Fig4Modes() {
		for variant, mk := range blockMakers {
			legacy, piped := mk(t), mk(t)
			repL := core.Apply(legacy, mode)
			repP, passes := MustFor(mode).Apply(piped)
			if !reflect.DeepEqual(repL, repP) {
				t.Errorf("%s/%s: report diverged:\nlegacy   %+v\npipeline %+v", mode, variant, repL, repP)
			}
			if !reflect.DeepEqual(legacy.Insts, piped.Insts) {
				t.Errorf("%s/%s: instructions diverged", mode, variant)
			}
			if !reflect.DeepEqual(legacy.Edges, piped.Edges) {
				t.Errorf("%s/%s: edges diverged:\nlegacy   %v\npipeline %v", mode, variant, legacy.Edges, piped.Edges)
			}
			if len(passes) == 0 {
				t.Errorf("%s/%s: no pass reports", mode, variant)
			}
		}
	}
}

// Every registered pipeline must be idempotent: a second application to
// the already-mitigated block changes neither instructions nor edges.
func TestPipelinesIdempotent(t *testing.T) {
	for _, pl := range All() {
		for variant, mk := range blockMakers {
			b := mk(t)
			pl.Apply(b)
			insts := append([]ir.Inst(nil), b.Insts...)
			edges := append([]ir.Edge(nil), b.Edges...)
			pl.Apply(b)
			if !reflect.DeepEqual(b.Insts, insts) {
				t.Errorf("%s/%s: second application changed instructions (%d -> %d)",
					pl.Name, variant, len(insts), len(b.Insts))
			}
			if !reflect.DeepEqual(b.Edges, edges) {
				t.Errorf("%s/%s: second application changed edges (%d -> %d)",
					pl.Name, variant, len(edges), len(b.Edges))
			}
			if err := b.Verify(); err != nil {
				t.Errorf("%s/%s: mitigated block fails Verify: %v", pl.Name, variant, err)
			}
		}
	}
}

func TestUnsafePipelineIsNoOp(t *testing.T) {
	b := v1Block(t)
	insts := append([]ir.Inst(nil), b.Insts...)
	edges := append([]ir.Edge(nil), b.Edges...)
	rep, _ := MustFor(core.ModeUnsafe).Apply(b)
	if !rep.PatternFound() {
		t.Error("unsafe pipeline should still report the detected pattern")
	}
	if !reflect.DeepEqual(b.Insts, insts) || !reflect.DeepEqual(b.Edges, edges) {
		t.Fatal("unsafe pipeline mutated the block")
	}
}

// loadfence pins every speculative load — the blanket strawman.
func TestLoadFencePinsEveryLoad(t *testing.T) {
	b := v1Block(t)
	_, passes := MustFor(core.ModeLoadFence).Apply(b)
	for i, in := range b.Insts {
		if in.IsLoad() && b.HasRelaxableIn(i) {
			t.Errorf("load n%d still speculative under loadfence", i)
		}
	}
	if passes[len(passes)-1].PinnedEdges == 0 {
		t.Error("loadfence reports no pinned edges on a speculating block")
	}
}

// sfi-clamp keeps the risky load speculative but rewrites its address
// to a mask-chain result: the leak is neutralised without losing the
// speculation.
func TestSFIClampMasksInsteadOfPinning(t *testing.T) {
	b := v1Block(t)
	rep, passes := MustFor(core.ModeSFIClamp).Apply(b)
	if len(rep.RiskyLoads) != 1 {
		t.Fatalf("RiskyLoads = %v", rep.RiskyLoads)
	}
	load := rep.RiskyLoads[0]
	if !b.HasRelaxableIn(load) {
		t.Error("sfi-clamp pinned the risky load; it should keep speculating")
	}
	a := b.Insts[load].A
	if a.Kind != ir.OpInst || b.Insts[a.Inst].DestArch != ir.TempDest {
		t.Fatalf("risky load address not rewritten to a TempDest mask (A = %v)", a)
	}
	var inserted int
	for _, in := range b.Insts {
		if in.DestArch == ir.TempDest {
			inserted++
		}
	}
	if last := passes[len(passes)-1]; last.InsertedInsts != inserted {
		t.Errorf("pass reports %d inserted insts, block has %d TempDest insts", last.InsertedInsts, inserted)
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

// v4's guard is a store, not a branch: there is no predicate to mask
// with, so sfi-clamp must fall back to pinning rather than leave the
// bypass open.
func TestSFIClampFallsBackOnStoreGuards(t *testing.T) {
	b := v4Block(t)
	rep, _ := MustFor(core.ModeSFIClamp).Apply(b)
	if len(rep.RiskyLoads) != 1 {
		t.Fatalf("RiskyLoads = %v", rep.RiskyLoads)
	}
	if b.HasRelaxableIn(rep.RiskyLoads[0]) {
		t.Error("store-guarded risky load left speculative without a mask")
	}
	if rep.GuardEdges == 0 {
		t.Error("fallback pin inserted no guard edges")
	}
}

// fence-min pins a vertex cut of the poison flow: after the pass,
// re-analysis must find no remaining Spectre pattern.
func TestFenceMinCutsThePattern(t *testing.T) {
	for variant, mk := range blockMakers {
		b := mk(t)
		rep, _ := MustFor(core.ModeFenceMin).Apply(b)
		if !rep.PatternFound() {
			t.Fatalf("%s: pattern not detected", variant)
		}
		if after := core.Analyze(b); after.PatternFound() {
			t.Errorf("%s: pattern survives fence-min: %+v", variant, after)
		}
	}
}

// One audit report spans the pipeline: chains carry the pass that made
// them, and aud.Passes records one attribution per pass in order.
func TestAuditAttribution(t *testing.T) {
	for _, pl := range All() {
		b := v1Block(t)
		rep, aud, passes := pl.ApplyAudited(b)
		if len(aud.Passes) != len(passes) || len(passes) != len(pl.Passes) {
			t.Fatalf("%s: %d attributions, %d pass reports, %d passes",
				pl.Name, len(aud.Passes), len(passes), len(pl.Passes))
		}
		for i, pa := range aud.Passes {
			if pa.Pass != pl.Passes[i].Name {
				t.Errorf("%s: attribution %d is %q, want %q", pl.Name, i, pa.Pass, pl.Passes[i].Name)
			}
		}
		for _, c := range aud.Pinned {
			if c.Pass == "" {
				t.Errorf("%s: provenance chain without a pass stamp", pl.Name)
			}
		}
		if aud.GuardEdges != rep.GuardEdges {
			t.Errorf("%s: audit GuardEdges %d != report %d", pl.Name, aud.GuardEdges, rep.GuardEdges)
		}
		if err := aud.Verify(b, pl.Mode == core.ModeGhostBusters); err != nil {
			t.Errorf("%s: audit fails verification: %v", pl.Name, err)
		}
	}
}

// The pipeline mutates blocks only through deterministic iteration:
// repeated applications to equal blocks must agree byte-for-byte.
func TestPipelinesDeterministic(t *testing.T) {
	for _, pl := range All() {
		for variant, mk := range blockMakers {
			ref := mk(t)
			pl.Apply(ref)
			for i := 0; i < 4; i++ {
				b := mk(t)
				pl.Apply(b)
				if !reflect.DeepEqual(b.Insts, ref.Insts) || !reflect.DeepEqual(b.Edges, ref.Edges) {
					t.Fatalf("%s/%s: run %d diverged from the first application", pl.Name, variant, i)
				}
			}
		}
	}
}
