// Package core implements the paper's primary contribution: the
// GhostBusters mitigation of Spectre attacks on a DBT-based processor
// (Rokicki, DATE 2020, Section IV).
//
// Before instruction scheduling, the DBT engine runs a poisoning
// analysis over the data-flow graph of the block it is about to
// optimise:
//
//  1. every load that could be scheduled speculatively — hoisted above a
//     conditional branch (trace scheduling) or above a store with an
//     unprovably-disjoint address (memory dependency speculation) —
//     generates a *poisoned* value;
//  2. any instruction using a poisoned operand produces a poisoned value;
//  3. a speculative memory access whose *address* is poisoned is the
//     Spectre leak pattern: it would push a secret-dependent line into
//     the data cache while misspeculating.
//
// Where the pattern is found, the mitigation inserts a control
// dependency between the risky access and the instructions that cause
// the speculation (the guards), pinning only that access — everything
// else in the block keeps speculating, which is why the countermeasure
// is nearly free. The package also implements the two baselines the
// paper compares against: a fence at the guard (no speculation may cross
// it) and turning speculation off entirely.
//
// Because a DBT engine only speculates inside one IR block, the whole
// analysis is block-local (contrast with whole-binary tools like oo7).
package core

import (
	"fmt"
	"sort"

	"ghostbusters/internal/ir"
)

// Mode selects the mitigation strategy applied to each block before
// scheduling.
type Mode uint8

const (
	// ModeUnsafe performs no analysis: full speculation (the paper's
	// baseline, vulnerable to both Spectre variants).
	ModeUnsafe Mode = iota
	// ModeGhostBusters runs the poison analysis and pins only the risky
	// accesses with fine-grained control dependencies (the paper's
	// contribution, "our approach" in Fig. 4).
	ModeGhostBusters
	// ModeFence runs the same detection but, where a pattern is found,
	// forbids all speculation across the guard (the paper's third
	// experiment: "a fence whenever the Spectre pattern is detected").
	ModeFence
	// ModeNoSpeculation disables both speculation mechanisms globally
	// (the paper's naive countermeasure, "No speculation" in Fig. 4).
	ModeNoSpeculation
)

var modeNames = map[Mode]string{
	ModeUnsafe:        "unsafe",
	ModeGhostBusters:  "ghostbusters",
	ModeFence:         "fence",
	ModeNoSpeculation: "nospec",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode resolves a mode name used by CLIs and config files.
func ParseMode(s string) (Mode, error) {
	for m, n := range modeNames {
		if n == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mitigation mode %q (want unsafe|ghostbusters|fence|nospec)", s)
}

// Report describes what the analysis found and changed in one block.
type Report struct {
	// SpeculativeLoads counts loads the scheduler could execute
	// speculatively (at least one relaxable incoming edge).
	SpeculativeLoads int
	// PoisonedInsts counts instructions whose value may derive from a
	// misspeculated load.
	PoisonedInsts int
	// Poisoned lists the instructions whose values may derive from a
	// misspeculated load, in program order (for Fig. 3-style rendering
	// via ir.Block.Dot).
	Poisoned []int
	// RiskyLoads lists the instructions matching the Spectre pattern
	// (speculative memory access with poisoned address), in program
	// order.
	RiskyLoads []int
	// Guards lists the instructions causing the speculation of the risky
	// loads (branches and stores), in program order.
	Guards []int
	// GuardEdges counts control dependencies inserted by the mitigation.
	GuardEdges int
}

// PatternFound reports whether the block contains the Spectre pattern.
func (r Report) PatternFound() bool { return len(r.RiskyLoads) > 0 }

// guardSet is a small set of instruction indices.
type guardSet map[int]struct{}

func (g guardSet) union(o guardSet) guardSet {
	if len(o) == 0 {
		return g
	}
	if g == nil {
		g = make(guardSet, len(o))
	}
	for k := range o {
		g[k] = struct{}{}
	}
	return g
}

// Analyze runs the poison analysis without modifying the block. It
// returns the detection report (used by ModeUnsafe callers that still
// want statistics, by tests, and by the ablation benchmarks).
func Analyze(b *ir.Block) Report {
	rep, _ := analyze(b)
	return rep
}

// analyze computes the report plus, for every risky load, the guard set
// that must order it.
func analyze(b *ir.Block) (Report, map[int]guardSet) {
	var rep Report

	// selfGuards[i]: guards instruction i could speculate across
	// (sources of its relaxable in-edges). Only loads generate poison
	// (paper: "Speculative instructions can be either load instructions
	// moved before a conditional branch or load instructions moved
	// before a memory write").
	selfGuards := make([]guardSet, len(b.Insts))
	for _, e := range b.Edges {
		if !e.Relaxable {
			continue
		}
		if !b.Insts[e.To].IsLoad() {
			continue
		}
		if selfGuards[e.To] == nil {
			selfGuards[e.To] = make(guardSet)
		}
		selfGuards[e.To][e.From] = struct{}{}
	}

	poison := make([]guardSet, len(b.Insts))
	pins := make(map[int]guardSet)
	operandPoison := func(op ir.Operand) guardSet {
		if op.Kind == ir.OpInst {
			return poison[op.Inst]
		}
		return nil
	}

	for i := range b.Insts {
		in := &b.Insts[i]
		var p guardSet
		p = p.union(operandPoison(in.A))
		if !in.IsLoad() { // a load's B operand is unused; stores leak via address only
			p = p.union(operandPoison(in.B))
		}

		if in.IsLoad() && len(selfGuards[i]) > 0 {
			rep.SpeculativeLoads++
			if len(operandPoison(in.A)) > 0 {
				// The Spectre pattern: a speculative memory access whose
				// address is poisoned. Pin it behind the guards that
				// poisoned the address and behind its own guards.
				g := make(guardSet)
				g = g.union(operandPoison(in.A))
				g = g.union(selfGuards[i])
				pins[i] = g
				rep.RiskyLoads = append(rep.RiskyLoads, i)
				// Once ordered after its guards, the load reads
				// architecturally-correct data: its value is clean.
				poison[i] = nil
				continue
			}
			// Clean-address speculative load: its value is poisoned.
			p = p.union(selfGuards[i])
		}
		poison[i] = p
	}

	for i, p := range poison {
		if len(p) > 0 {
			rep.PoisonedInsts++
			rep.Poisoned = append(rep.Poisoned, i)
		}
	}
	guards := make(guardSet)
	for _, g := range pins {
		guards = guards.union(g)
	}
	rep.Guards = sortedKeys(guards)
	return rep, pins
}

func sortedKeys(g guardSet) []int {
	out := make([]int, 0, len(g))
	for k := range g {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Apply runs the mitigation for the selected mode, modifying the block's
// edges in place, and returns the report.
//
//   - ModeUnsafe: detection only (report), no changes.
//   - ModeGhostBusters: each risky load is made non-speculative
//     (PinInto) and receives a hard guard edge from every instruction
//     that caused the poisoning — the paper's fine-grained control
//     dependency (Fig. 3C).
//   - ModeFence: all speculation across each implicated guard is
//     disabled (PinFrom) — coarse fence semantics.
//   - ModeNoSpeculation: every relaxable edge is pinned; no analysis
//     needed, but the detection report is still returned for symmetry.
func Apply(b *ir.Block, mode Mode) Report {
	if mode == ModeNoSpeculation {
		rep := Analyze(b)
		b.PinAll()
		return rep
	}
	rep, pins := analyze(b)
	switch mode {
	case ModeUnsafe:
		// report only
	case ModeGhostBusters:
		for _, load := range rep.RiskyLoads {
			b.PinInto(load)
			for g := range pins[load] {
				if !hasGuardEdge(b, g, load) {
					b.AddEdge(ir.Edge{From: g, To: load, Kind: ir.EdgeGuard})
					rep.GuardEdges++
				}
			}
		}
	case ModeFence:
		for _, g := range rep.Guards {
			b.PinFrom(g)
		}
	}
	return rep
}

func hasGuardEdge(b *ir.Block, from, to int) bool {
	for _, e := range b.Edges {
		if e.Kind == ir.EdgeGuard && e.From == from && e.To == to {
			return true
		}
	}
	return false
}
