// Package core implements the paper's primary contribution: the
// GhostBusters mitigation of Spectre attacks on a DBT-based processor
// (Rokicki, DATE 2020, Section IV).
//
// Before instruction scheduling, the DBT engine runs a poisoning
// analysis over the data-flow graph of the block it is about to
// optimise:
//
//  1. every load that could be scheduled speculatively — hoisted above a
//     conditional branch (trace scheduling) or above a store with an
//     unprovably-disjoint address (memory dependency speculation) —
//     generates a *poisoned* value;
//  2. any instruction using a poisoned operand produces a poisoned value;
//  3. a speculative memory access whose *address* is poisoned is the
//     Spectre leak pattern: it would push a secret-dependent line into
//     the data cache while misspeculating.
//
// Where the pattern is found, the mitigation inserts a control
// dependency between the risky access and the instructions that cause
// the speculation (the guards), pinning only that access — everything
// else in the block keeps speculating, which is why the countermeasure
// is nearly free. The package also implements the two baselines the
// paper compares against: a fence at the guard (no speculation may cross
// it) and turning speculation off entirely.
//
// Because a DBT engine only speculates inside one IR block, the whole
// analysis is block-local (contrast with whole-binary tools like oo7).
package core

import (
	"fmt"
	"sort"

	"ghostbusters/internal/ir"
)

// Mode selects the mitigation strategy applied to each block before
// scheduling.
type Mode uint8

const (
	// ModeUnsafe performs no analysis: full speculation (the paper's
	// baseline, vulnerable to both Spectre variants).
	ModeUnsafe Mode = iota
	// ModeGhostBusters runs the poison analysis and pins only the risky
	// accesses with fine-grained control dependencies (the paper's
	// contribution, "our approach" in Fig. 4).
	ModeGhostBusters
	// ModeFence runs the same detection but, where a pattern is found,
	// forbids all speculation across the guard (the paper's third
	// experiment: "a fence whenever the Spectre pattern is detected").
	ModeFence
	// ModeNoSpeculation disables both speculation mechanisms globally
	// (the paper's naive countermeasure, "No speculation" in Fig. 4).
	ModeNoSpeculation

	// The modes below are alternative mitigations ported into the pass
	// pipeline (internal/core/pipeline) from the related work; they are
	// not part of the paper's Figure 4 comparison.

	// ModeLoadFence pins every load (no load ever executes
	// speculatively) — the blanket LOADLFENCE strawman: analysis-free,
	// safe, and between ghostbusters and nospec in cost.
	ModeLoadFence
	// ModeSFIClamp clamps the address of each risky access with an
	// inserted predicate/mask chain (Venkman/Swivel-style SFI, SLH's
	// masking applied to the DBT IR); the access keeps speculating with
	// a harmless address. Store-guarded (v4) patterns fall back to
	// ghostbusters pinning.
	ModeSFIClamp
	// ModeFenceMin places the minimal set of pins that cuts every
	// source→sink path in the poison data-flow graph (Blade-style
	// min-cut) instead of pinning every sink.
	ModeFenceMin
)

var modeNames = map[Mode]string{
	ModeUnsafe:        "unsafe",
	ModeGhostBusters:  "ghostbusters",
	ModeFence:         "fence",
	ModeNoSpeculation: "nospec",
	ModeLoadFence:     "loadfence",
	ModeSFIClamp:      "sfi-clamp",
	ModeFenceMin:      "fence-min",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode resolves a mode name used by CLIs and config files.
func ParseMode(s string) (Mode, error) {
	for m, n := range modeNames {
		if n == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mitigation mode %q (want unsafe|ghostbusters|fence|nospec|loadfence|sfi-clamp|fence-min)", s)
}

// Report describes what the analysis found and changed in one block.
type Report struct {
	// SpeculativeLoads counts loads the scheduler could execute
	// speculatively (at least one relaxable incoming edge).
	SpeculativeLoads int
	// PoisonedInsts counts instructions whose value may derive from a
	// misspeculated load.
	PoisonedInsts int
	// Poisoned lists the instructions whose values may derive from a
	// misspeculated load, in program order (for Fig. 3-style rendering
	// via ir.Block.Dot).
	Poisoned []int
	// RiskyLoads lists the instructions matching the Spectre pattern
	// (speculative memory access with poisoned address), in program
	// order.
	RiskyLoads []int
	// Guards lists the instructions causing the speculation of the risky
	// loads (branches and stores), in program order.
	Guards []int
	// GuardEdges counts control dependencies inserted by the mitigation.
	GuardEdges int
}

// PatternFound reports whether the block contains the Spectre pattern.
func (r Report) PatternFound() bool { return len(r.RiskyLoads) > 0 }

// guardSet is a small set of instruction indices.
type guardSet map[int]struct{}

func (g guardSet) union(o guardSet) guardSet {
	if len(o) == 0 {
		return g
	}
	if g == nil {
		g = make(guardSet, len(o))
	}
	for k := range o {
		g[k] = struct{}{}
	}
	return g
}

// Analyze runs the poison analysis without modifying the block. It
// returns the detection report (used by ModeUnsafe callers that still
// want statistics, by tests, and by the ablation benchmarks).
func Analyze(b *ir.Block) Report {
	rep, _ := analyze(b, nil)
	return rep
}

// AnalyzeAudited is Analyze plus the per-block audit report: a
// provenance chain for every poisoned node and every risky access. The
// audit costs one extra allocation pass over the block and is only
// paid when asked for — the plain Analyze/Apply entry points hand
// analyze a nil collector and skip all provenance bookkeeping.
func AnalyzeAudited(b *ir.Block) (Report, *ir.AuditReport) {
	aud := &ir.AuditReport{}
	rep, _ := analyze(b, aud)
	return rep, aud
}

// analyze computes the report plus, for every risky load, the guard set
// that must order it. With a non-nil aud it additionally records, for
// every instruction the poison reaches, where the poison came from —
// the source speculative load and the operand step it arrived through —
// and assembles the provenance chains of the audit report. When poison
// reaches a node through more than one operand the chain records one
// witness path (A-then-B operand order), not every path.
func analyze(b *ir.Block, aud *ir.AuditReport) (Report, map[int]guardSet) {
	var rep Report

	// Provenance shadow state, allocated only when auditing:
	// provSrc[i] is the source speculative load whose poison reached i
	// (-1 when i is clean), provPred[i] the operand producer the poison
	// stepped through to get here (-1 at the source itself).
	var provSrc, provPred []int
	if aud != nil {
		provSrc = make([]int, len(b.Insts))
		provPred = make([]int, len(b.Insts))
		for i := range provSrc {
			provSrc[i], provPred[i] = -1, -1
		}
	}

	// selfGuards[i]: guards instruction i could speculate across
	// (sources of its relaxable in-edges). Only loads generate poison
	// (paper: "Speculative instructions can be either load instructions
	// moved before a conditional branch or load instructions moved
	// before a memory write").
	selfGuards := make([]guardSet, len(b.Insts))
	for _, e := range b.Edges {
		if !e.Relaxable {
			continue
		}
		if !b.Insts[e.To].IsLoad() {
			continue
		}
		if selfGuards[e.To] == nil {
			selfGuards[e.To] = make(guardSet)
		}
		selfGuards[e.To][e.From] = struct{}{}
	}

	poison := make([]guardSet, len(b.Insts))
	pins := make(map[int]guardSet)
	operandPoison := func(op ir.Operand) guardSet {
		if op.Kind == ir.OpInst {
			return poison[op.Inst]
		}
		return nil
	}

	for i := range b.Insts {
		in := &b.Insts[i]
		var p guardSet
		p = p.union(operandPoison(in.A))
		if !in.IsLoad() { // a load's B operand is unused; stores leak via address only
			p = p.union(operandPoison(in.B))
		}

		if in.IsLoad() && len(selfGuards[i]) > 0 {
			rep.SpeculativeLoads++
			if len(operandPoison(in.A)) > 0 {
				// The Spectre pattern: a speculative memory access whose
				// address is poisoned. Pin it behind the guards that
				// poisoned the address and behind its own guards.
				g := make(guardSet)
				g = g.union(operandPoison(in.A))
				g = g.union(selfGuards[i])
				pins[i] = g
				rep.RiskyLoads = append(rep.RiskyLoads, i)
				// Once ordered after its guards, the load reads
				// architecturally-correct data: its value is clean.
				poison[i] = nil
				continue
			}
			// Clean-address speculative load: its value is poisoned.
			p = p.union(selfGuards[i])
			if aud != nil {
				provSrc[i], provPred[i] = i, -1 // poison originates here
			}
			poison[i] = p
			continue
		}
		if aud != nil && len(p) > 0 {
			// The witness step the poison took to reach i: the first
			// poisoned operand in A-then-B order.
			if in.A.Kind == ir.OpInst && len(poison[in.A.Inst]) > 0 {
				provSrc[i], provPred[i] = provSrc[in.A.Inst], in.A.Inst
			} else if in.B.Kind == ir.OpInst && len(poison[in.B.Inst]) > 0 {
				provSrc[i], provPred[i] = provSrc[in.B.Inst], in.B.Inst
			}
		}
		poison[i] = p
	}

	for i, p := range poison {
		if len(p) > 0 {
			rep.PoisonedInsts++
			rep.Poisoned = append(rep.Poisoned, i)
		}
	}
	guards := make(guardSet)
	for _, g := range pins {
		guards = guards.union(g)
	}
	rep.Guards = sortedKeys(guards)

	if aud != nil {
		aud.EntryPC = b.EntryPC
		for i := range b.Insts {
			if b.Insts[i].IsLoad() {
				aud.LoadsAnalyzed++
			}
		}
		aud.SpeculativeLoads = rep.SpeculativeLoads
		aud.RelaxedLoads = rep.SpeculativeLoads - len(rep.RiskyLoads)
		for _, i := range rep.Poisoned {
			c := chainTo(b, provSrc, provPred, i)
			c.Guards = guardRefs(b, poison[i])
			aud.Poisoned = append(aud.Poisoned, c)
		}
		for _, load := range rep.RiskyLoads {
			// The pinned access's chain runs through its poisoned
			// address operand and ends at the access itself.
			c := chainTo(b, provSrc, provPred, b.Insts[load].A.Inst)
			c.Path = append(c.Path, load)
			c.Node = load
			c.PC = b.Insts[load].PC
			c.Op = b.Insts[load].Op.String()
			c.Guards = guardRefs(b, pins[load])
			aud.Pinned = append(aud.Pinned, c)
		}
	}
	return rep, pins
}

// chainTo reconstructs the witness provenance path ending at node i by
// walking the recorded predecessor steps back to the source load.
func chainTo(b *ir.Block, provSrc, provPred []int, i int) ir.ProvenanceChain {
	path := []int{i}
	for j := i; provPred[j] >= 0; j = provPred[j] {
		path = append(path, provPred[j])
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return ir.ProvenanceChain{
		Node:   i,
		PC:     b.Insts[i].PC,
		Op:     b.Insts[i].Op.String(),
		Source: provSrc[i],
		Path:   path,
	}
}

// guardRefs renders a guard set as sorted, classified references.
func guardRefs(b *ir.Block, g guardSet) []ir.GuardRef {
	out := make([]ir.GuardRef, 0, len(g))
	for _, n := range sortedKeys(g) {
		in := &b.Insts[n]
		kind := ir.GuardBranch
		if in.IsStore() {
			kind = ir.GuardStore
		}
		out = append(out, ir.GuardRef{Node: n, PC: in.PC, Op: in.Op.String(), Kind: kind})
	}
	return out
}

func sortedKeys(g guardSet) []int {
	out := make([]int, 0, len(g))
	for k := range g {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Apply runs the mitigation for the selected mode, modifying the block's
// edges in place, and returns the report.
//
//   - ModeUnsafe: detection only (report), no changes.
//   - ModeGhostBusters: each risky load is made non-speculative
//     (PinInto) and receives a hard guard edge from every instruction
//     that caused the poisoning — the paper's fine-grained control
//     dependency (Fig. 3C).
//   - ModeFence: all speculation across each implicated guard is
//     disabled (PinFrom) — coarse fence semantics.
//   - ModeNoSpeculation: every relaxable edge is pinned; no analysis
//     needed, but the detection report is still returned for symmetry.
func Apply(b *ir.Block, mode Mode) Report {
	return applyWith(b, mode, nil)
}

// ApplyAudited is Apply plus the audit report. In ghostbusters mode
// the report's pinned chains are backed by the guard edges Apply just
// inserted, so aud.Verify(b, true) holds on the returned block; other
// modes keep the same chains as explanations of what the analysis
// detected (and, for fence/nospec, pinned by coarser means).
func ApplyAudited(b *ir.Block, mode Mode) (Report, *ir.AuditReport) {
	aud := &ir.AuditReport{}
	rep := applyWith(b, mode, aud)
	return rep, aud
}

// ApplyInto is Apply writing the audit into a caller-owned report (nil
// aud skips all provenance bookkeeping). The pass pipeline uses it so
// one AuditReport spans every pass applied to the block.
func ApplyInto(b *ir.Block, mode Mode, aud *ir.AuditReport) Report {
	return applyWith(b, mode, aud)
}

func applyWith(b *ir.Block, mode Mode, aud *ir.AuditReport) Report {
	if mode == ModeNoSpeculation {
		rep, _ := analyze(b, aud)
		b.PinAll()
		return rep
	}
	rep, pins := analyze(b, aud)
	switch mode {
	case ModeUnsafe:
		// report only
	case ModeGhostBusters:
		for _, load := range rep.RiskyLoads {
			// Guard order must be deterministic: b.Edges order decides
			// gbdump -dot bytes and every audit guard-edge scan.
			rep.GuardEdges += PinRisky(b, load, sortedKeys(pins[load]))
		}
	case ModeFence:
		for _, g := range rep.Guards {
			b.PinFrom(g)
		}
	}
	if aud != nil {
		aud.GuardEdges = rep.GuardEdges
	}
	return rep
}

// AnalyzePins runs the poison analysis and additionally returns, for
// every risky load, the sorted guard list the mitigation must order it
// after. aud may be nil (no provenance bookkeeping). This is the
// entry point the pass pipeline builds alternative mitigations on.
func AnalyzePins(b *ir.Block, aud *ir.AuditReport) (Report, map[int][]int) {
	rep, pins := analyze(b, aud)
	out := make(map[int][]int, len(pins))
	for load, g := range pins {
		out[load] = sortedKeys(g)
	}
	return rep, out
}

// PinRisky applies the ghostbusters treatment to one risky load: the
// load is made non-speculative and receives a hard guard edge from
// every listed guard (deduplicated). It returns the number of guard
// edges inserted. guards must be in the order edges should append —
// callers pass sorted lists so b.Edges stays deterministic.
func PinRisky(b *ir.Block, load int, guards []int) int {
	b.PinInto(load)
	added := 0
	for _, g := range guards {
		if !hasGuardEdge(b, g, load) {
			b.AddEdge(ir.Edge{From: g, To: load, Kind: ir.EdgeGuard})
			added++
		}
	}
	return added
}

func hasGuardEdge(b *ir.Block, from, to int) bool {
	for _, e := range b.Edges {
		if e.Kind == ir.EdgeGuard && e.From == from && e.To == to {
			return true
		}
	}
	return false
}
