package harness

import (
	"context"
	"testing"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/tcache"
)

// The predecode side table is a host-side accelerator: every guest-
// visible quantity must be bit-identical with it disabled. This
// differential test runs the entire Figure 4 matrix (every kernel plus
// both Spectre applications) and the Section V-A proof-of-concept
// matrix both ways and compares cycles, statistics and the rendered
// tables byte for byte.
func TestPredecodeDifferential(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 4
	}

	runFig4 := func(disable bool) ([]*Row, string, string) {
		t.Helper()
		cfg := dbt.DefaultConfig()
		cfg.DisablePredecode = disable
		r := &Runner{Artifacts: NewArtifacts()}
		rows, err := r.Fig4(context.Background(), cfg, Fig4Modes, n)
		if err != nil {
			t.Fatalf("fig4 (predecode disabled=%v): %v", disable, err)
		}
		return rows, FormatRows(rows, Fig4Modes), CSV(rows, Fig4Modes)
	}

	rowsOn, tableOn, csvOn := runFig4(false)
	rowsOff, tableOff, csvOff := runFig4(true)

	if tableOn != tableOff {
		t.Errorf("rendered Figure 4 tables differ:\npredecode on:\n%s\npredecode off:\n%s", tableOn, tableOff)
	}
	if csvOn != csvOff {
		t.Errorf("Figure 4 CSVs differ:\npredecode on:\n%s\npredecode off:\n%s", csvOn, csvOff)
	}
	if len(rowsOn) != len(rowsOff) {
		t.Fatalf("row counts differ: %d vs %d", len(rowsOn), len(rowsOff))
	}
	for i := range rowsOn {
		on, off := rowsOn[i], rowsOff[i]
		if on.Name != off.Name {
			t.Fatalf("row %d name: %q vs %q", i, on.Name, off.Name)
		}
		for _, m := range Fig4Modes {
			if on.Cycles[m] != off.Cycles[m] {
				t.Errorf("%s (%s): cycles %d with predecode, %d without",
					on.Name, m, on.Cycles[m], off.Cycles[m])
			}
			// The predecode counters describe the accelerator itself
			// (hits/fills of the host-side table), so they naturally
			// differ between the two runs; every other field is
			// guest-visible and must match exactly.
			sOn, sOff := on.Stats[m], off.Stats[m]
			sOn.Pred = riscv.PredecodeStats{}
			sOff.Pred = riscv.PredecodeStats{}
			if sOn != sOff {
				t.Errorf("%s (%s): stats diverge:\non:  %+v\noff: %+v",
					on.Name, m, sOn, sOff)
			}
		}
	}

	// The attack outcomes (leaked bytes per variant and mode) must also
	// be identical: the side channel lives in simulated time, which the
	// table must not perturb.
	pocTable := func(disable bool) string {
		t.Helper()
		cfg := dbt.DefaultConfig()
		cfg.DisablePredecode = disable
		table, entries, err := PoCMatrix(cfg)
		if err != nil {
			t.Fatalf("poc matrix (predecode disabled=%v): %v", disable, err)
		}
		if len(entries) == 0 {
			t.Fatal("poc matrix produced no entries")
		}
		return table
	}
	if on, off := pocTable(false), pocTable(true); on != off {
		t.Errorf("PoC matrices differ:\npredecode on:\n%s\npredecode off:\n%s", on, off)
	}

	// Sanity: an accelerated run actually uses the table (otherwise this
	// test proves nothing). Run one kernel by hand and inspect the
	// counters — the interpreter warm-up phase must hit the table.
	cfg := dbt.DefaultConfig()
	k := polybench.All()[0]
	art, err := NewArtifacts().Kernel(k, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dbt.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if err := m.Load(art.Prog); err != nil {
		t.Fatal(err)
	}
	for i, a := range art.Spec.Arrays {
		if err := art.place[i].Init(m.Mem(), art.Spec.Inputs[a.Name]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if st := m.PredecodeStats(); st.Hits == 0 || st.Fills == 0 {
		t.Errorf("predecode table unused during a kernel run: %+v", st)
	}
}

// Direct block chaining is the dispatch layer of the fast backend:
// registers stay in the chained register file across regions and the
// outer-loop bookkeeping is inlined, so every guest-visible quantity —
// cycles, statistics, rendered tables, attack outcomes — must be
// bit-identical with chaining disabled. Unlike the predecode
// differential there is nothing to mask: chaining owns no counters.
func TestChainingDifferential(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 4
	}

	runFig4 := func(disable bool) ([]*Row, string, string) {
		t.Helper()
		cfg := dbt.DefaultConfig()
		cfg.DisableChaining = disable
		r := &Runner{Artifacts: NewArtifacts()}
		rows, err := r.Fig4(context.Background(), cfg, Fig4Modes, n)
		if err != nil {
			t.Fatalf("fig4 (chaining disabled=%v): %v", disable, err)
		}
		return rows, FormatRows(rows, Fig4Modes), CSV(rows, Fig4Modes)
	}

	rowsOn, tableOn, csvOn := runFig4(false)
	rowsOff, tableOff, csvOff := runFig4(true)

	if tableOn != tableOff {
		t.Errorf("rendered Figure 4 tables differ:\nchaining on:\n%s\nchaining off:\n%s", tableOn, tableOff)
	}
	if csvOn != csvOff {
		t.Errorf("Figure 4 CSVs differ:\nchaining on:\n%s\nchaining off:\n%s", csvOn, csvOff)
	}
	if len(rowsOn) != len(rowsOff) {
		t.Fatalf("row counts differ: %d vs %d", len(rowsOn), len(rowsOff))
	}
	for i := range rowsOn {
		on, off := rowsOn[i], rowsOff[i]
		for _, m := range Fig4Modes {
			if on.Cycles[m] != off.Cycles[m] {
				t.Errorf("%s (%s): cycles %d chained, %d unchained",
					on.Name, m, on.Cycles[m], off.Cycles[m])
			}
			if on.Stats[m] != off.Stats[m] {
				t.Errorf("%s (%s): stats diverge:\nchained:   %+v\nunchained: %+v",
					on.Name, m, on.Stats[m], off.Stats[m])
			}
		}
	}

	// The attack outcomes (leaked bits per variant and mode) must be
	// identical: the side channel lives in simulated time, which the
	// dispatch strategy must not perturb.
	pocTable := func(disable bool) string {
		t.Helper()
		cfg := dbt.DefaultConfig()
		cfg.DisableChaining = disable
		table, entries, err := PoCMatrix(cfg)
		if err != nil {
			t.Fatalf("poc matrix (chaining disabled=%v): %v", disable, err)
		}
		if len(entries) == 0 {
			t.Fatal("poc matrix produced no entries")
		}
		return table
	}
	if on, off := pocTable(false), pocTable(true); on != off {
		t.Errorf("PoC matrices differ:\nchaining on:\n%s\nchaining off:\n%s", on, off)
	}
}

// The persistent translation cache must be invisible in guest time: a
// cold cached sweep, a fully warm sweep and an uncached sweep all
// render the same Figure 4 byte for byte. Only the engine-side counters
// (Translations, TCacheHits/Misses) may differ.
func TestTransCacheDifferential(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 4
	}

	runFig4 := func(tc *tcache.Cache, arts *Artifacts) ([]*Row, string, string) {
		t.Helper()
		r := &Runner{Artifacts: arts, TransCache: tc}
		rows, err := r.Fig4(context.Background(), dbt.DefaultConfig(), Fig4Modes, n)
		if err != nil {
			t.Fatalf("fig4 (tcache=%v): %v", tc != nil, err)
		}
		return rows, FormatRows(rows, Fig4Modes), CSV(rows, Fig4Modes)
	}

	rowsBase, tableBase, csvBase := runFig4(nil, NewArtifacts())
	tc := tcache.New("")
	arts := NewArtifacts()
	rowsCold, tableCold, csvCold := runFig4(tc, arts)
	rowsWarm, tableWarm, csvWarm := runFig4(tc, arts)

	hits, misses, _ := tc.Stats()
	if misses == 0 {
		t.Fatal("cold sweep never missed — the cache was not consulted")
	}
	if hits < misses {
		t.Errorf("warm sweep hit only %d of %d compiled regions", hits, misses)
	}
	for i := range rowsWarm {
		for _, m := range Fig4Modes {
			if tr := rowsWarm[i].Stats[m].Translations; tr != 0 {
				t.Errorf("%s (%s): warm sweep still compiled %d regions", rowsWarm[i].Name, m, tr)
			}
		}
	}

	for name, got := range map[string][2]string{
		"cold": {tableCold, csvCold},
		"warm": {tableWarm, csvWarm},
	} {
		if got[0] != tableBase {
			t.Errorf("%s cached Figure 4 table differs from uncached:\n%s\nvs\n%s", name, got[0], tableBase)
		}
		if got[1] != csvBase {
			t.Errorf("%s cached Figure 4 CSV differs from uncached:\n%s\nvs\n%s", name, got[1], csvBase)
		}
	}
	zero := func(s dbt.Stats) dbt.Stats {
		s.Translations = 0
		s.TCacheHits = 0
		s.TCacheMisses = 0
		return s
	}
	for i := range rowsBase {
		for _, m := range Fig4Modes {
			b, c, w := rowsBase[i], rowsCold[i], rowsWarm[i]
			if b.Cycles[m] != c.Cycles[m] || b.Cycles[m] != w.Cycles[m] {
				t.Errorf("%s (%s): cycles %d uncached, %d cold, %d warm",
					b.Name, m, b.Cycles[m], c.Cycles[m], w.Cycles[m])
			}
			if zero(c.Stats[m]) != zero(b.Stats[m]) || zero(w.Stats[m]) != zero(b.Stats[m]) {
				t.Errorf("%s (%s): stats diverge under the cache:\nuncached: %+v\ncold:     %+v\nwarm:     %+v",
					b.Name, m, zero(b.Stats[m]), zero(c.Stats[m]), zero(w.Stats[m]))
			}
		}
	}
}
