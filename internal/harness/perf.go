package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"ghostbusters/internal/core"
	"ghostbusters/internal/obs"
)

// PerfSchema identifies the perf-report JSON format. Bump it when the
// shape of PerfReport changes incompatibly; ReadPerf rejects reports
// with a different schema so a stale checker never silently compares
// apples to oranges.
const PerfSchema = "ghostbusters/bench/v1"

// PerfEntry is one (benchmark, mode) measurement. SimCycles is the
// deterministic guest-visible cost — the quantity the regression check
// compares. HostNS is this machine's wall clock for the same run; it is
// recorded for trend inspection but never compared across machines.
// Metrics is the cell's full stable-name snapshot (obs.Snapshot) —
// informational context for humans and dashboards; CheckPerf compares
// exactly SimCycles and nothing in Metrics, and baselines written
// before the field existed still load (it is optional).
type PerfEntry struct {
	Benchmark string       `json:"benchmark"`
	Mode      string       `json:"mode"`
	SimCycles uint64       `json:"sim_cycles"`
	HostNS    int64        `json:"host_ns"`
	Metrics   obs.Snapshot `json:"metrics,omitempty"`
}

// PerfReport is the file format behind gbbench -perfjson / -checkperf.
type PerfReport struct {
	Schema  string      `json:"schema"`
	Entries []PerfEntry `json:"entries"`
}

// PerfFromRows flattens measured rows into a report, one entry per
// (benchmark, mode) in the given order. Cells that were tolerated as
// faulted (no Cycles entry) get no Metrics either.
func PerfFromRows(rows []*Row, modes []core.Mode) *PerfReport {
	rep := &PerfReport{Schema: PerfSchema}
	for _, r := range rows {
		for _, m := range modes {
			e := PerfEntry{
				Benchmark: r.Name,
				Mode:      m.String(),
				SimCycles: r.Cycles[m],
				HostNS:    r.HostNS[m],
			}
			if c, ok := r.Cycles[m]; ok {
				e.Metrics = r.Stats[m].Snapshot(c)
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep
}

// WriteFile writes the report as indented JSON with a trailing newline.
func (r *PerfReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding perf report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerf loads and validates a perf report.
func ReadPerf(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: reading perf baseline: %w", err)
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("harness: parsing perf baseline %s: %w", path, err)
	}
	if rep.Schema != PerfSchema {
		return nil, fmt.Errorf("harness: perf baseline %s has schema %q, want %q",
			path, rep.Schema, PerfSchema)
	}
	return &rep, nil
}

// CheckPerf compares current measurements against a baseline. Simulated
// cycles are deterministic, so a regression is exact: any (benchmark,
// mode) pair whose SimCycles exceeds the baseline fails. Pairs missing
// from the current report also fail (a benchmark silently dropped is
// not a pass); pairs new in the current report are fine — they have no
// expectation yet. Host time is never compared: it varies by machine.
// All violations are reported together, not just the first.
func CheckPerf(current, baseline *PerfReport) error {
	type key struct{ bench, mode string }
	got := make(map[key]PerfEntry, len(current.Entries))
	for _, e := range current.Entries {
		got[key{e.Benchmark, e.Mode}] = e
	}
	var errs []error
	for _, want := range baseline.Entries {
		e, ok := got[key{want.Benchmark, want.Mode}]
		if !ok {
			errs = append(errs, fmt.Errorf("harness: perf: %s (%s) in baseline but not measured",
				want.Benchmark, want.Mode))
			continue
		}
		if e.SimCycles > want.SimCycles {
			errs = append(errs, fmt.Errorf("harness: perf regression: %s (%s): %d simulated cycles, baseline %d (+%.2f%%)",
				e.Benchmark, e.Mode, e.SimCycles, want.SimCycles,
				100*(float64(e.SimCycles)/float64(want.SimCycles)-1)))
		}
	}
	return errors.Join(errs...)
}
