package harness

import (
	"context"
	"strings"
	"sync"
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/trap"
)

// flakyBench fails its first failures calls with fault (per mode), then
// succeeds. It also records the injection seed of every attempt.
type flakyBench struct {
	mu       sync.Mutex
	failures int
	fault    func() *trap.Fault
	calls    map[core.Mode]int
	seeds    []uint64
}

func (fb *flakyBench) bench(name string) Bench {
	return Bench{
		Name: name,
		Run: func(_ context.Context, cfg dbt.Config, _ *Artifacts) (*KernelRun, error) {
			fb.mu.Lock()
			defer fb.mu.Unlock()
			if fb.calls == nil {
				fb.calls = map[core.Mode]int{}
			}
			fb.calls[cfg.Mitigation]++
			if cfg.FaultInject != nil {
				fb.seeds = append(fb.seeds, cfg.FaultInject.Seed)
			}
			if fb.calls[cfg.Mitigation] <= fb.failures {
				return nil, fb.fault()
			}
			return &KernelRun{Name: name, Mode: cfg.Mitigation, Cycles: 1000}, nil
		},
	}
}

func transientFault() *trap.Fault {
	f := trap.Newf(trap.CacheFault, "injected cache parity fault")
	f.Injected = true
	return f
}

func realFault() *trap.Fault {
	return trap.Newf(trap.IllegalInstruction, "illegal instruction")
}

// TestRunnerRetriesTransientFaults: a cell that fails twice with an
// injected fault succeeds on the third attempt when Retries >= 2, and
// each retry runs with a reseeded injector.
func TestRunnerRetriesTransientFaults(t *testing.T) {
	fb := &flakyBench{failures: 2, fault: transientFault}
	r := &Runner{Workers: 1, Retries: 2}
	base := dbt.DefaultConfig()
	base.FaultInject = &dbt.FaultInject{Seed: 5, CacheFaultRate: 0.5}

	rows, err := r.RunMatrix(context.Background(), base, []Bench{fb.bench("flaky")}, []core.Mode{core.ModeUnsafe})
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	if got := fb.calls[core.ModeUnsafe]; got != 3 {
		t.Fatalf("bench ran %d times, want 3 (1 + 2 retries)", got)
	}
	if want := []uint64{5, 6, 7}; len(fb.seeds) != 3 || fb.seeds[0] != want[0] || fb.seeds[1] != want[1] || fb.seeds[2] != want[2] {
		t.Fatalf("injector seeds per attempt = %v, want %v", fb.seeds, want)
	}
	if rows[0].Cycles[core.ModeUnsafe] != 1000 {
		t.Fatalf("recovered cell has wrong cycles: %d", rows[0].Cycles[core.ModeUnsafe])
	}
}

// TestRunnerRetriesExhausted: when the transient fault outlives the
// retry budget it surfaces as the matrix error (no TolerateFaults).
func TestRunnerRetriesExhausted(t *testing.T) {
	fb := &flakyBench{failures: 10, fault: transientFault}
	r := &Runner{Workers: 1, Retries: 2}
	_, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(), []Bench{fb.bench("flaky")}, []core.Mode{core.ModeUnsafe})
	if err == nil {
		t.Fatal("expected the exhausted cell to fail the matrix")
	}
	if f := trap.As(err); f == nil || f.Kind != trap.CacheFault {
		t.Fatalf("matrix error does not carry the guest trap: %v", err)
	}
	if got := fb.calls[core.ModeUnsafe]; got != 3 {
		t.Fatalf("bench ran %d times, want 3", got)
	}
}

// TestRunnerNeverRetriesRealFaults: deterministic guest faults are
// properties of the guest, not bad luck — one attempt only.
func TestRunnerNeverRetriesRealFaults(t *testing.T) {
	fb := &flakyBench{failures: 10, fault: realFault}
	r := &Runner{Workers: 1, Retries: 5}
	_, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(), []Bench{fb.bench("broken")}, []core.Mode{core.ModeUnsafe})
	if err == nil {
		t.Fatal("expected the real fault to fail the matrix")
	}
	if got := fb.calls[core.ModeUnsafe]; got != 1 {
		t.Fatalf("real fault was retried: bench ran %d times, want 1", got)
	}
}

// TestRunnerTolerateFaults: a persistently faulted cell degrades to an
// n/a entry (Row.Faults) while the rest of the matrix completes, and
// both renderers print "n/a" for it.
func TestRunnerTolerateFaults(t *testing.T) {
	good := (&flakyBench{}).bench("good")
	bad := &flakyBench{failures: 1 << 30, fault: realFault}
	modes := []core.Mode{core.ModeUnsafe, core.ModeGhostBusters}

	r := &Runner{Workers: 2, TolerateFaults: true}
	rows, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(),
		[]Bench{good, bad.bench("bad")}, modes)
	if err != nil {
		t.Fatalf("RunMatrix with TolerateFaults: %v", err)
	}
	if rows[0].Cycles[core.ModeUnsafe] != 1000 || len(rows[0].Faults) != 0 {
		t.Fatalf("good row damaged: %+v", rows[0])
	}
	badRow := rows[1]
	for _, m := range modes {
		if _, ok := badRow.Cycles[m]; ok {
			t.Fatalf("faulted cell %s has cycles", m)
		}
		f := badRow.Faults[m]
		if f == nil || f.Kind != trap.IllegalInstruction {
			t.Fatalf("faulted cell %s: Faults entry = %v", m, f)
		}
	}
	table := FormatRows(rows, modes)
	if !strings.Contains(table, "n/a") {
		t.Fatalf("FormatRows does not render faulted cells as n/a:\n%s", table)
	}
	csv := CSV(rows, modes)
	if !strings.Contains(csv, "n/a") {
		t.Fatalf("CSV does not render faulted cells as n/a:\n%s", csv)
	}
}

// TestRunnerTolerateFaultsHostErrors: TolerateFaults forgives guest
// traps only — host-side errors still fail the matrix.
func TestRunnerTolerateFaultsHostErrors(t *testing.T) {
	hostErr := Bench{
		Name: "hosterr",
		Run: func(context.Context, dbt.Config, *Artifacts) (*KernelRun, error) {
			return nil, context.DeadlineExceeded
		},
	}
	r := &Runner{Workers: 1, TolerateFaults: true}
	_, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(), []Bench{hostErr}, []core.Mode{core.ModeUnsafe})
	if err == nil {
		t.Fatal("host error was tolerated")
	}
}
