package harness

import (
	"context"
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/polybench"
)

// Every provenance chain the audit reports for the benchmark kernels
// must replay against the installed IR: the path must be a real
// def-use walk from a speculative load, and every pinned access must
// name the guards that forced the pin. The Figure 4 suite pins nothing
// (that is the paper's point — the pattern rarely fires on benign
// code), so matmul-ptr, the gadget-carrying kernel, rides along to
// make sure the replay exercises at least one real chain.
func TestFig4KernelsAuditReplays(t *testing.T) {
	arts := NewArtifacts()
	kernels := polybench.All()
	gadget, err := polybench.ByName("matmul-ptr")
	if err != nil {
		t.Fatal(err)
	}
	kernels = append(kernels, gadget)
	pinned := 0
	for _, k := range kernels {
		cfg := dbt.DefaultConfig()
		cfg.Mitigation = core.ModeGhostBusters
		cfg.Audit = true
		art, err := arts.Kernel(k, 6, cfg)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		m, err := dbt.New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if err := m.Load(art.Prog); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for i, a := range art.Spec.Arrays {
			if err := art.place[i].Init(m.Mem(), art.Spec.Inputs[a.Name]); err != nil {
				t.Fatalf("%s: init %s: %v", k.Name, a.Name, err)
			}
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		aud := m.Audit()
		if aud == nil {
			t.Fatalf("%s: audit enabled but none collected", k.Name)
		}
		if err := aud.Verify(); err != nil {
			t.Errorf("%s: audit replay: %v", k.Name, err)
		}
		pinned += aud.Totals().Pinned
		m.Release()
	}
	if pinned == 0 {
		t.Fatal("no Figure 4 kernel pinned a load; the audit never exercised a provenance chain")
	}
}

// Auditing is translation-time only: turning it on must not move a
// single cycle of the Figure 4 experiment. The table and CSV are
// byte-identical with Config.Audit on and off — the audit acceptance
// criterion guarding the fig4 baseline.
func TestFig4OutputUnchangedByAuditing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark matrix twice")
	}
	n := 6
	run := func(audit bool) (string, string) {
		t.Helper()
		cfg := dbt.DefaultConfig()
		cfg.Audit = audit
		r := &Runner{Artifacts: NewArtifacts()}
		rows, err := r.Fig4(context.Background(), cfg, Fig4Modes, n)
		if err != nil {
			t.Fatalf("fig4 (audit=%v): %v", audit, err)
		}
		return FormatRows(rows, Fig4Modes), CSV(rows, Fig4Modes)
	}
	tablePlain, csvPlain := run(false)
	tableAudited, csvAudited := run(true)
	if tablePlain != tableAudited {
		t.Errorf("Figure 4 table changed under auditing:\noff:\n%s\non:\n%s", tablePlain, tableAudited)
	}
	if csvPlain != csvAudited {
		t.Errorf("Figure 4 CSV changed under auditing:\noff:\n%s\non:\n%s", csvPlain, csvAudited)
	}
}

// BenchmarkFig4Audited complements BenchmarkFig4Untraced /
// BenchmarkFig4BlockTraced: the cost of collecting full poison
// provenance for every translated region (translation-time only, so
// the delta should be small — compare with benchstat).
func BenchmarkFig4Audited(b *testing.B) {
	arts := NewArtifacts()
	for i := 0; i < b.N; i++ {
		cfg := dbt.DefaultConfig()
		cfg.Audit = true
		r := &Runner{Workers: 1, Artifacts: arts}
		if _, err := r.Fig4(context.Background(), cfg, Fig4Modes, 0); err != nil {
			b.Fatal(err)
		}
	}
}
