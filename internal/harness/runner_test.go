package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/polybench"
)

func testBenches(t *testing.T) []Bench {
	t.Helper()
	gemm, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	atax, err := polybench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	return []Bench{KernelBench(gemm, 6), KernelBench(atax, 8)}
}

// The tentpole guarantee: fanning the matrix out over many workers
// changes only the wall clock. Cycle counts, stats and rendered tables
// are bit-identical to a sequential run.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	benches := testBenches(t)
	modes := []core.Mode{core.ModeUnsafe, core.ModeGhostBusters, core.ModeNoSpeculation}
	base := dbt.DefaultConfig()

	seq := &Runner{Workers: 1, Artifacts: NewArtifacts()}
	seqRows, err := seq.RunMatrix(context.Background(), base, benches, modes)
	if err != nil {
		t.Fatal(err)
	}
	par := &Runner{Workers: 8, Artifacts: NewArtifacts()}
	parRows, err := par.RunMatrix(context.Background(), base, benches, modes)
	if err != nil {
		t.Fatal(err)
	}
	// Host wall clock is the one legitimately nondeterministic field:
	// check it was measured, then blank it for the bit-identity compare.
	for _, rows := range [][]*Row{seqRows, parRows} {
		for _, r := range rows {
			for _, m := range modes {
				if r.HostNS[m] <= 0 {
					t.Fatalf("%s (%s): host time not measured", r.Name, m)
				}
			}
			r.HostNS = nil
		}
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatalf("parallel rows differ from sequential:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
	if a, b := FormatRows(seqRows, modes), FormatRows(parRows, modes); a != b {
		t.Fatalf("tables differ:\n%s\nvs\n%s", a, b)
	}
	if a, b := CSV(seqRows, modes), CSV(parRows, modes); a != b {
		t.Fatalf("CSV differs:\n%s\nvs\n%s", a, b)
	}
}

// One artifact serves the whole N-mode sweep: exactly one build (miss)
// per kernel, every other lookup a hit.
func TestRunnerSharesArtifactsAcrossModes(t *testing.T) {
	gemm, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	arts := NewArtifacts()
	r := &Runner{Workers: 4, Artifacts: arts}
	modes := []core.Mode{core.ModeUnsafe, core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation}
	if _, err := r.RunKernel(context.Background(), gemm, 6, dbt.DefaultConfig(), modes); err != nil {
		t.Fatal(err)
	}
	hits, misses := arts.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (one assemble per kernel)", misses)
	}
	if hits != uint64(len(modes)-1) {
		t.Fatalf("hits = %d, want %d", hits, len(modes)-1)
	}
	if arts.Len() != 1 {
		t.Fatalf("cache holds %d artifacts, want 1", arts.Len())
	}
}

func TestRunnerCollectAllErrors(t *testing.T) {
	bad := func(name string) Bench {
		return Bench{Name: name, Run: func(context.Context, dbt.Config, *Artifacts) (*KernelRun, error) {
			return nil, fmt.Errorf("boom-%s", name)
		}}
	}
	good := Bench{Name: "good", Run: func(_ context.Context, cfg dbt.Config, _ *Artifacts) (*KernelRun, error) {
		return &KernelRun{Name: "good", Mode: cfg.Mitigation, Cycles: 1}, nil
	}}
	r := &Runner{Workers: 2}
	_, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(),
		[]Bench{bad("first"), good, bad("second")}, []core.Mode{core.ModeUnsafe})
	if err == nil {
		t.Fatal("expected joined errors")
	}
	for _, want := range []string{"boom-first", "boom-second"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("collect-all error missing %q: %v", want, err)
		}
	}
}

func TestRunnerFailFast(t *testing.T) {
	boom := errors.New("boom")
	bad := Bench{Name: "bad", Run: func(context.Context, dbt.Config, *Artifacts) (*KernelRun, error) {
		return nil, boom
	}}
	slow := Bench{Name: "slow", Run: func(ctx context.Context, cfg dbt.Config, _ *Artifacts) (*KernelRun, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return &KernelRun{Name: "slow", Mode: cfg.Mitigation, Cycles: 1}, nil
		}
	}}
	r := &Runner{Workers: 2, FailFast: true}
	start := time.Now()
	_, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(),
		[]Bench{bad, slow}, []core.Mode{core.ModeUnsafe})
	if !errors.Is(err, boom) {
		t.Fatalf("fail-fast error = %v, want the root cause %v", err, boom)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("fail-fast did not cancel the slow job (took %v)", elapsed)
	}
}

// The wall-clock guard reaches into the machine's dispatch loop via
// Config.Interrupt: a run that blows its timeout aborts mid-simulation.
func TestRunnerTimeout(t *testing.T) {
	gemm, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 1, Timeout: time.Nanosecond, Artifacts: NewArtifacts()}
	_, err = r.RunKernel(context.Background(), gemm, 8, dbt.DefaultConfig(), []core.Mode{core.ModeUnsafe})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestRunnerHonoursParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gemm, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Artifacts: NewArtifacts()}
	_, err = r.RunKernel(ctx, gemm, 6, dbt.DefaultConfig(), Fig4Modes)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// Hammer the shared artifact cache from many goroutines (run with
// -race): every caller for one key must get the identical artifact, and
// the build must happen exactly once per key.
func TestArtifactsSingleflight(t *testing.T) {
	gemm, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	arts := NewArtifacts()
	cfg := dbt.DefaultConfig()
	const goroutines = 32
	got := make([]*Artifact, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two keys interleaved: n=6 and n=7.
			n := 6 + i%2
			art, err := arts.Kernel(gemm, n, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = art
		}(i)
	}
	wg.Wait()
	for i := 2; i < goroutines; i++ {
		if got[i] != got[i%2] {
			t.Fatalf("goroutine %d got a different artifact pointer", i)
		}
	}
	hits, misses := arts.Stats()
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (one build per key)", misses)
	}
	if hits+misses != goroutines {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, goroutines)
	}
	if arts.Len() != 2 {
		t.Fatalf("cache holds %d artifacts, want 2", arts.Len())
	}
}

// A nil cache is valid: artifacts build uncached.
func TestArtifactsNilBuildsUncached(t *testing.T) {
	gemm, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	var arts *Artifacts
	art, err := arts.Kernel(gemm, 6, dbt.DefaultConfig())
	if err != nil || art == nil {
		t.Fatalf("nil-cache build failed: %v", err)
	}
	if h, m := arts.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache reported stats %d/%d", h, m)
	}
}
