package harness

import (
	"context"
	"testing"
	"time"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
)

// TestBackoffSchedule: the deterministic shape of the capped exponential
// schedule — doubling from Base, capped at Max, jitter within [d/2, d),
// and reproducible for the same (seed, key, attempt).
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Seed: 7}
	uncapped := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond, // attempt 2
		40 * time.Millisecond, // attempt 3 hits the cap
		40 * time.Millisecond, // and stays there
		40 * time.Millisecond,
	}
	for i, want := range uncapped {
		attempt := i + 1
		d := b.Delay(attempt, "cell")
		if d < want/2 || d >= want {
			t.Errorf("attempt %d: delay %v outside jitter window [%v, %v)", attempt, d, want/2, want)
		}
		if again := b.Delay(attempt, "cell"); again != d {
			t.Errorf("attempt %d: delay not deterministic: %v then %v", attempt, d, again)
		}
	}

	// Distinct seeds and distinct keys draw distinct jitter (with the
	// window only 5ms wide per attempt, collisions across all five
	// attempts at once would mean the stream is not keyed at all).
	same, sameKey := 0, 0
	for attempt := 1; attempt <= 5; attempt++ {
		if b.Delay(attempt, "cell") == (Backoff{Base: b.Base, Max: b.Max, Seed: 8}).Delay(attempt, "cell") {
			same++
		}
		if b.Delay(attempt, "cell") == b.Delay(attempt, "other") {
			sameKey++
		}
	}
	if same == 5 {
		t.Error("jitter ignores the seed")
	}
	if sameKey == 5 {
		t.Error("jitter ignores the key")
	}
}

// TestBackoffDefaults: zero Base disables sleeping, zero Max defaults to
// 8×Base, and out-of-range attempts cost nothing.
func TestBackoffDefaults(t *testing.T) {
	if d := (Backoff{}).Delay(3, "x"); d != 0 {
		t.Errorf("zero policy sleeps %v", d)
	}
	if d := (Backoff{Base: time.Second}).Delay(0, "x"); d != 0 {
		t.Errorf("attempt 0 sleeps %v", d)
	}
	b := Backoff{Base: 10 * time.Millisecond} // implied cap: 80ms
	for attempt := 1; attempt <= 12; attempt++ {
		if d := b.Delay(attempt, "x"); d >= 80*time.Millisecond {
			t.Errorf("attempt %d: delay %v above the implied 8×Base cap", attempt, d)
		}
	}
}

// TestBackoffSleepCancellation: a cancelled context interrupts the
// backoff sleep immediately instead of letting it run out.
func TestBackoffSleepCancellation(t *testing.T) {
	b := Backoff{Base: time.Minute, Max: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- b.Sleep(ctx, 1, "cell") }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Sleep returned nil after cancellation")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("Sleep took %v to notice the cancellation", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
}

// TestRunnerBackoffCancellation: cancelling the matrix mid-backoff ends
// the run promptly — the retry pause does not hold the matrix hostage.
func TestRunnerBackoffCancellation(t *testing.T) {
	attempted := make(chan struct{}, 16)
	fb := Bench{
		Name: "flaky",
		Run: func(context.Context, dbt.Config, *Artifacts) (*KernelRun, error) {
			select {
			case attempted <- struct{}{}:
			default:
			}
			return nil, transientFault()
		},
	}
	r := &Runner{Workers: 1, Retries: 3, Backoff: time.Minute, BackoffMax: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.RunMatrix(ctx, dbt.DefaultConfig(), []Bench{fb}, []core.Mode{core.ModeUnsafe})
		done <- err
	}()
	<-attempted // first attempt has failed; the worker is now in backoff
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled matrix returned nil error")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("matrix took %v to wind down after cancel (backoff was 1m)", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("matrix did not return after cancellation during backoff")
	}
}

// TestRunMatrixPartialRows: a matrix that fails still reports the cells
// that completed, so interrupted tools can emit partial results.
func TestRunMatrixPartialRows(t *testing.T) {
	good := Bench{
		Name: "good",
		Run: func(_ context.Context, cfg dbt.Config, _ *Artifacts) (*KernelRun, error) {
			return &KernelRun{Name: "good", Mode: cfg.Mitigation, Cycles: 1234}, nil
		},
	}
	bad := Bench{
		Name: "bad",
		Run: func(context.Context, dbt.Config, *Artifacts) (*KernelRun, error) {
			return nil, realFault()
		},
	}
	r := &Runner{Workers: 2}
	rows, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(),
		[]Bench{good, bad}, []core.Mode{core.ModeUnsafe})
	if err == nil {
		t.Fatal("matrix with a failing cell returned nil error")
	}
	if len(rows) != 2 {
		t.Fatalf("partial rows: got %d, want 2", len(rows))
	}
	if rows[0].Cycles[core.ModeUnsafe] != 1234 {
		t.Fatalf("completed cell missing from partial rows: %+v", rows[0])
	}
	if _, ok := rows[1].Cycles[core.ModeUnsafe]; ok {
		t.Fatalf("failed cell has a cycles entry: %+v", rows[1])
	}
}
