package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/kbuild"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/riscv"
)

// Artifact is a fully prepared benchmark program: the generated kernel
// spec, the assembled guest image, and the resolved array placements.
// Everything in it is read-only after construction, so one Artifact is
// safely shared between concurrently running machines — each run gets
// its own dbt.Machine and guest memory; the Artifact only provides the
// bits to load into it.
type Artifact struct {
	Spec  *polybench.Spec
	Prog  *riscv.Program
	place []kbuild.Placement

	// Salt identifies the run inputs that live outside the assembled
	// image — the arrays written into guest memory after load. It feeds
	// the persistent translation cache's key (dbt.Config.TCacheSalt):
	// inputs steer profiling and trace formation, so runs with
	// different inputs must never share cached translations.
	Salt string
}

// placeFor returns the placement of the named array. validateSpec
// guarantees every declared output has one, but specs constructed by
// hand can miss the invariant — that is a descriptive error propagated
// through the run, not a crash.
func (art *Artifact) placeFor(name string) (kbuild.Placement, error) {
	for _, p := range art.place {
		if p.Arr.Name == name {
			return p, nil
		}
	}
	return kbuild.Placement{}, fmt.Errorf("harness: %s: no placement for %q", art.Spec.Name, name)
}

// BuildArtifact validates the spec, assembles its source and resolves
// the array placements.
func BuildArtifact(spec *polybench.Spec) (*Artifact, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	prog, err := riscv.Assemble(spec.Source)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: assemble: %w", spec.Name, err)
	}
	place, err := kbuild.Resolve(prog, spec.Arrays)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", spec.Name, err)
	}
	return &Artifact{Spec: spec, Prog: prog, place: place, Salt: inputSalt(spec)}, nil
}

// inputSalt hashes a spec's input arrays deterministically (sorted by
// array name, values in declaration order).
func inputSalt(spec *polybench.Spec) string {
	names := make([]string, 0, len(spec.Inputs))
	for name := range spec.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	var w [8]byte
	for _, name := range names {
		fmt.Fprintf(h, "%s:%d;", name, len(spec.Inputs[name]))
		for _, v := range spec.Inputs[name] {
			binary.LittleEndian.PutUint64(w[:], uint64(v))
			h.Write(w[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// ConfigFingerprint summarises the configuration fields that influence
// artifact generation — the guest memory layout the program is assembled
// and placed into. The mitigation mode is deliberately excluded: the
// guest binary is identical across modes (exactly like the paper's
// experiment), so one artifact serves the whole N-mode sweep.
func ConfigFingerprint(cfg dbt.Config) string {
	return fmt.Sprintf("mem:%#x+%#x", cfg.MemBase, cfg.MemSize)
}

// Artifacts is a shared, read-mostly cache of prepared benchmark
// artifacts keyed by (kernel name, problem size, config fingerprint).
// Builds are deduplicated singleflight-style: when many goroutines ask
// for the same key at once, exactly one assembles the program and the
// rest wait for it. A nil *Artifacts is valid and simply builds every
// artifact uncached.
type Artifacts struct {
	mu      sync.RWMutex
	entries map[string]*artifactEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type artifactEntry struct {
	ready chan struct{} // closed once art/err are set
	art   *Artifact
	err   error
}

// NewArtifacts returns an empty artifact cache.
func NewArtifacts() *Artifacts {
	return &Artifacts{entries: make(map[string]*artifactEntry)}
}

// Kernel returns the prepared artifact for k at size n (0 = DefaultN),
// building it at most once per (kernel, n, config fingerprint) key.
func (a *Artifacts) Kernel(k polybench.Kernel, n int, cfg dbt.Config) (*Artifact, error) {
	if n == 0 {
		n = k.DefaultN
	}
	if a == nil {
		return buildKernelArtifact(k, n)
	}
	key := k.CacheKey(n) + "|" + ConfigFingerprint(cfg)

	a.mu.RLock()
	e := a.entries[key]
	a.mu.RUnlock()
	if e == nil {
		a.mu.Lock()
		e = a.entries[key]
		if e == nil {
			// This goroutine owns the build; everyone else waits on ready.
			e = &artifactEntry{ready: make(chan struct{})}
			a.entries[key] = e
			a.mu.Unlock()
			a.misses.Add(1)
			e.art, e.err = buildKernelArtifact(k, n)
			close(e.ready)
			return e.art, e.err
		}
		a.mu.Unlock()
	}
	a.hits.Add(1)
	<-e.ready
	return e.art, e.err
}

func buildKernelArtifact(k polybench.Kernel, n int) (*Artifact, error) {
	spec, err := k.Make(n)
	if err != nil {
		return nil, err
	}
	return BuildArtifact(spec)
}

// Stats reports cache effectiveness: lookups served from a (possibly
// in-flight) entry vs. builds performed.
func (a *Artifacts) Stats() (hits, misses uint64) {
	if a == nil {
		return 0, 0
	}
	return a.hits.Load(), a.misses.Load()
}

// Len returns the number of cached artifacts.
func (a *Artifacts) Len() int {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.entries)
}
