package harness

import (
	"bytes"
	"context"
	"testing"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/polybench"
)

// TestSpansDoNotPerturbResults pins the acceptance criterion that span
// tracing is observation-only: the same small matrix run with and
// without a span tracer renders byte-identical tables, and the span
// stream itself reconstructs into one cell tree per matrix cell with
// the translate/execute split present for kernel cells.
func TestSpansDoNotPerturbResults(t *testing.T) {
	atax, err := polybench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	benches := []Bench{KernelBench(atax, 6), SpectreBench(attack.V1)}
	modes := Fig4Modes

	run := func(span hspan.Span) string {
		r := &Runner{Workers: 4, Artifacts: NewArtifacts(), Span: span}
		rows, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(), benches, modes)
		if err != nil {
			t.Fatalf("matrix: %v", err)
		}
		SortRows(rows)
		return FormatRows(rows, modes)
	}

	plain := run(hspan.Span{})

	var buf bytes.Buffer
	tr := hspan.New(hspan.NewJSONLSink(&buf))
	root := tr.Start("matrix")
	sweep := root.Child("sweep")
	traced := run(sweep)
	sweep.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("span close: %v", err)
	}

	if plain != traced {
		t.Fatalf("table changed under span tracing:\nplain:\n%s\ntraced:\n%s", plain, traced)
	}

	recs, err := hspan.ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("parse spans: %v", err)
	}
	roots := hspan.BuildTree(recs)
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1", len(roots))
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "sweep" {
		t.Fatalf("root children = %+v, want one sweep", roots[0].Children)
	}
	cells := roots[0].Children[0].Children
	if want := len(benches) * len(modes); len(cells) != want {
		t.Fatalf("got %d cell spans, want %d", len(cells), want)
	}
	kernelSplits := 0
	for _, c := range cells {
		if c.Name != "cell" {
			t.Fatalf("unexpected child %q under sweep", c.Name)
		}
		bench, ok := c.Attr("bench")
		if !ok {
			t.Fatalf("cell missing bench attr: %+v", c.Record)
		}
		if len(c.Children) == 0 {
			t.Fatalf("cell %s has no attempt span", bench.Str)
		}
		for _, a := range c.Children {
			if a.Name != "attempt" {
				continue
			}
			for _, ph := range a.Children {
				if ph.Name == "translate" {
					kernelSplits++
				}
			}
		}
	}
	// Every kernel cell (machine-backed) carries the split; the Spectre
	// PoC bench has no machine access and legitimately has none.
	if kernelSplits != len(modes) {
		t.Fatalf("translate splits on %d cells, want %d (one per kernel cell)", kernelSplits, len(modes))
	}
}
