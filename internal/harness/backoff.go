package harness

import (
	"context"
	"time"
)

// Backoff is the retry pacing policy: capped exponential delays with
// deterministic jitter. Attempt k (1-based) waits
//
//	min(Base << (k-1), Max) * j,   j ∈ [0.5, 1.0)
//
// where j is drawn from a splitmix64 stream seeded by (Seed, key,
// attempt). The jitter is deterministic — the same seed, key and
// attempt always produce the same delay — so retry schedules are
// reproducible run to run while distinct keys (matrix cells, tenants)
// still decorrelate and avoid thundering-herd retries.
type Backoff struct {
	// Base is the uncapped delay of the first retry. Zero disables
	// sleeping entirely (retries go back-to-back).
	Base time.Duration

	// Max caps the exponential growth. Zero or negative means the
	// conventional cap of 8×Base (three doublings).
	Max time.Duration

	// Seed selects the deterministic jitter stream.
	Seed uint64
}

// Delay returns the pause before retry attempt (attempt >= 1) of the
// work identified by key. Attempt values < 1 return 0.
func (b Backoff) Delay(attempt int, key string) time.Duration {
	if b.Base <= 0 || attempt < 1 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		max = 8 * b.Base
	}
	d := b.Base
	for i := 1; i < attempt; i++ {
		if d >= max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter factor in [0.5, 1.0): full-jitter halves are known to
	// synchronise badly, so keep at least half the deterministic delay.
	x := splitmix64(b.Seed ^ hashKey(key) ^ uint64(attempt)*0x9E3779B97F4A7C15)
	frac := float64(x>>11) / float64(1<<53) // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac/2))
}

// Sleep pauses for the attempt's delay or until ctx is cancelled,
// whichever comes first — a cancelled context interrupts the backoff
// sleep immediately instead of letting it run out. It returns ctx.Err()
// when the sleep was cut short, nil when it completed.
func (b Backoff) Sleep(ctx context.Context, attempt int, key string) error {
	d := b.Delay(attempt, key)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the standard SplitMix64 output function — the same
// generator the fault-injection layer uses, chosen for determinism, not
// cryptography.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashKey folds a string into the jitter seed (FNV-1a).
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
