package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ghostbusters/internal/core"
)

func perfRow(name string, cycles uint64) *Row {
	r := newRow(name)
	r.Cycles[core.ModeUnsafe] = cycles
	r.HostNS[core.ModeUnsafe] = 123
	return r
}

func TestPerfRoundTrip(t *testing.T) {
	rows := []*Row{perfRow("gemm", 1000), perfRow("atax", 2000)}
	rep := PerfFromRows(rows, []core.Mode{core.ModeUnsafe})
	if rep.Schema != PerfSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Entries) != 2 || rep.Entries[0].SimCycles != 1000 || rep.Entries[0].HostNS != 123 {
		t.Fatalf("entries: %+v", rep.Entries)
	}
	// Measured cells embed the full metrics snapshot, consistent with
	// the headline sim_cycles figure.
	if rep.Entries[0].Metrics == nil || rep.Entries[0].Metrics["sim.cycles"] != 1000 {
		t.Fatalf("metrics snapshot missing or inconsistent: %+v", rep.Entries[0].Metrics)
	}

	path := filepath.Join(t.TempDir(), "perf.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPerf(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || len(back.Entries) != 2 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i := range back.Entries {
		g, w := back.Entries[i], rep.Entries[i]
		if g.Benchmark != w.Benchmark || g.Mode != w.Mode ||
			g.SimCycles != w.SimCycles || g.HostNS != w.HostNS || !g.Metrics.Equal(w.Metrics) {
			t.Fatalf("round trip mismatch at entry %d:\n%+v\n%+v", i, g, w)
		}
	}
}

// An old baseline without the metrics field still loads (the field is
// optional) — the regression check never depends on it.
func TestReadPerfAcceptsBaselineWithoutMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf.json")
	old := `{"schema":"ghostbusters/bench/v1","entries":[{"benchmark":"gemm","mode":"unsafe","sim_cycles":1000,"host_ns":1}]}`
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadPerf(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].Metrics != nil {
		t.Fatalf("unexpected entries: %+v", rep.Entries)
	}
}

func TestReadPerfRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf.json")
	rep := &PerfReport{Schema: "ghostbusters/bench/v0"}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerf(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestCheckPerf(t *testing.T) {
	baseline := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 1000},
		{Benchmark: "atax", Mode: "unsafe", SimCycles: 500},
	}}

	// Identical cycles pass; host time differences are irrelevant.
	same := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 1000, HostNS: 99999},
		{Benchmark: "atax", Mode: "unsafe", SimCycles: 500},
	}}
	if err := CheckPerf(same, baseline); err != nil {
		t.Fatalf("identical cycles flagged: %v", err)
	}

	// Improvements pass; new benchmarks without expectations pass.
	better := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 900},
		{Benchmark: "atax", Mode: "unsafe", SimCycles: 500},
		{Benchmark: "new-kernel", Mode: "unsafe", SimCycles: 1 << 40},
	}}
	if err := CheckPerf(better, baseline); err != nil {
		t.Fatalf("improvement flagged: %v", err)
	}

	// A single extra cycle is a regression, and a dropped benchmark is
	// an error, and both are reported together.
	worse := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 1001},
	}}
	err := CheckPerf(worse, baseline)
	if err == nil {
		t.Fatal("regression not flagged")
	}
	if !strings.Contains(err.Error(), "gemm") || !strings.Contains(err.Error(), "atax") {
		t.Fatalf("expected both violations in error, got: %v", err)
	}
}
