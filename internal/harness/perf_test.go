package harness

import (
	"path/filepath"
	"strings"
	"testing"

	"ghostbusters/internal/core"
)

func perfRow(name string, cycles uint64) *Row {
	r := newRow(name)
	r.Cycles[core.ModeUnsafe] = cycles
	r.HostNS[core.ModeUnsafe] = 123
	return r
}

func TestPerfRoundTrip(t *testing.T) {
	rows := []*Row{perfRow("gemm", 1000), perfRow("atax", 2000)}
	rep := PerfFromRows(rows, []core.Mode{core.ModeUnsafe})
	if rep.Schema != PerfSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Entries) != 2 || rep.Entries[0].SimCycles != 1000 || rep.Entries[0].HostNS != 123 {
		t.Fatalf("entries: %+v", rep.Entries)
	}

	path := filepath.Join(t.TempDir(), "perf.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPerf(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || len(back.Entries) != 2 ||
		back.Entries[0] != rep.Entries[0] || back.Entries[1] != rep.Entries[1] {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestReadPerfRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf.json")
	rep := &PerfReport{Schema: "ghostbusters/bench/v0"}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerf(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestCheckPerf(t *testing.T) {
	baseline := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 1000},
		{Benchmark: "atax", Mode: "unsafe", SimCycles: 500},
	}}

	// Identical cycles pass; host time differences are irrelevant.
	same := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 1000, HostNS: 99999},
		{Benchmark: "atax", Mode: "unsafe", SimCycles: 500},
	}}
	if err := CheckPerf(same, baseline); err != nil {
		t.Fatalf("identical cycles flagged: %v", err)
	}

	// Improvements pass; new benchmarks without expectations pass.
	better := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 900},
		{Benchmark: "atax", Mode: "unsafe", SimCycles: 500},
		{Benchmark: "new-kernel", Mode: "unsafe", SimCycles: 1 << 40},
	}}
	if err := CheckPerf(better, baseline); err != nil {
		t.Fatalf("improvement flagged: %v", err)
	}

	// A single extra cycle is a regression, and a dropped benchmark is
	// an error, and both are reported together.
	worse := &PerfReport{Schema: PerfSchema, Entries: []PerfEntry{
		{Benchmark: "gemm", Mode: "unsafe", SimCycles: 1001},
	}}
	err := CheckPerf(worse, baseline)
	if err == nil {
		t.Fatal("regression not flagged")
	}
	if !strings.Contains(err.Error(), "gemm") || !strings.Contains(err.Error(), "atax") {
		t.Fatalf("expected both violations in error, got: %v", err)
	}
}
