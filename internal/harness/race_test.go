package harness

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/tcache"
)

// tracedBench wraps a kernel so every matrix cell builds and owns a
// private tracer writing into a private buffer — the ownership contract
// from the internal/obs package comment (one tracer per machine, one
// goroutine, no sharing across cells). traced accumulates the bytes
// each cell's trace produced, proving the tracers actually ran.
func tracedBench(k polybench.Kernel, n int, traced *atomic.Int64) Bench {
	return Bench{
		Name: k.Name,
		Run: func(_ context.Context, cfg dbt.Config, arts *Artifacts) (*KernelRun, error) {
			var buf bytes.Buffer
			sink, err := obs.SinkFor("jsonl", &buf)
			if err != nil {
				return nil, err
			}
			tr := obs.New(obs.LevelSpec, sink)
			cfg.Tracer = tr
			art, err := arts.Kernel(k, n, cfg)
			if err != nil {
				return nil, err
			}
			run, err := runArtifact(art, cfg)
			if cerr := tr.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if err != nil {
				return nil, err
			}
			traced.Add(int64(buf.Len()))
			return run, nil
		},
	}
}

// The tracer ownership contract under the race detector: a parallel
// matrix at 8 workers where every cell owns its private tracer must be
// race-free (run with -race; a shared tracer here would trip it). This
// is the supported way to trace a parallel experiment — never put one
// tracer in the base config of a multi-worker Runner.
func TestPerCellTracersParallel(t *testing.T) {
	var traced atomic.Int64
	n := 6
	var benches []Bench
	for _, k := range polybench.All()[:4] {
		benches = append(benches, tracedBench(k, n, &traced))
	}
	r := &Runner{Workers: 8, Artifacts: NewArtifacts()}
	rows, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(), benches, Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(benches) {
		t.Fatalf("got %d rows, want %d", len(rows), len(benches))
	}
	if traced.Load() == 0 {
		t.Fatal("no cell produced any trace output")
	}
	// The parallel traced run still yields the same cycles as a
	// sequential untraced one: tracing and parallelism are both
	// perturbation-free.
	seq := &Runner{Workers: 1, Artifacts: NewArtifacts()}
	plain := make([]Bench, 0, len(benches))
	for _, k := range polybench.All()[:4] {
		plain = append(plain, KernelBench(k, n))
	}
	want, err := seq.RunMatrix(context.Background(), dbt.DefaultConfig(), plain, Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for _, mode := range Fig4Modes {
			if rows[i].Cycles[mode] != want[i].Cycles[mode] {
				t.Errorf("%s/%s: traced parallel %d cycles, plain sequential %d",
					rows[i].Name, mode, rows[i].Cycles[mode], want[i].Cycles[mode])
			}
		}
	}
}

// The translation cache's sharing contract under the race detector: a
// parallel matrix where every cell probes, records and publishes into
// ONE cache — with the bench list duplicated so identical cells race on
// the very same cache key, concurrently executing shared *vliw.Block
// pointers — must be race-free and bit-identical to a sequential
// uncached run. A second (fully warm) pass re-executes the cached
// blocks across 8 goroutines at once.
func TestSharedTransCacheParallel(t *testing.T) {
	n := 6
	kernels := polybench.All()[:3]
	var benches []Bench
	for _, k := range kernels {
		benches = append(benches, KernelBench(k, n))
	}
	for _, k := range kernels {
		benches = append(benches, KernelBench(k, n))
	}

	tc := tcache.New("")
	r := &Runner{Workers: 8, Artifacts: NewArtifacts(), TransCache: tc}
	cold, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(), benches, Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.RunMatrix(context.Background(), dbt.DefaultConfig(), benches, Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := tc.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("shared cache unused: hits=%d misses=%d", hits, misses)
	}
	for i := range warm {
		for _, mode := range Fig4Modes {
			if tr := warm[i].Stats[mode].Translations; tr != 0 {
				t.Errorf("%s/%s: warm parallel pass still compiled %d regions",
					warm[i].Name, mode, tr)
			}
		}
	}

	seq := &Runner{Workers: 1, Artifacts: NewArtifacts()}
	want, err := seq.RunMatrix(context.Background(), dbt.DefaultConfig(), benches[:len(kernels)], Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range benches {
		ref := want[i%len(kernels)]
		for _, mode := range Fig4Modes {
			if cold[i].Cycles[mode] != ref.Cycles[mode] {
				t.Errorf("%s/%s: cold shared-cache parallel %d cycles, sequential uncached %d",
					cold[i].Name, mode, cold[i].Cycles[mode], ref.Cycles[mode])
			}
			if warm[i].Cycles[mode] != ref.Cycles[mode] {
				t.Errorf("%s/%s: warm shared-cache parallel %d cycles, sequential uncached %d",
					warm[i].Name, mode, warm[i].Cycles[mode], ref.Cycles[mode])
			}
		}
	}
}
