// Package harness drives the paper's experiments: it runs the generated
// benchmark kernels and the Spectre proof-of-concept applications under
// each mitigation mode, validates guest results against the native Go
// references, and renders the evaluation tables (the proof-of-concept
// matrix of Section V-A and the slowdown comparison of Figure 4,
// including the fence variant and the pointer-layout matmul of Section
// V-B).
package harness

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/core"
	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/kbuild"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/trap"
)

// KernelRun is one kernel execution under one configuration.
type KernelRun struct {
	Name   string
	Mode   core.Mode
	Cycles uint64
	Stats  dbt.Stats
	// HostNS is host wall-clock time for the run in nanoseconds,
	// measured by the Runner around the whole job (build, load, run,
	// validate). Zero when the run was not produced by a Runner. Host
	// time is a property of the simulator, not the simulated machine:
	// it feeds the perf-regression layer, never the guest.
	HostNS int64
	// TransNS is the host time the machine spent translating regions
	// (dbt.Machine.TranslateHostNS) — the translate-vs-execute split
	// host spans attribute per cell. Zero for runs without machine
	// access (the Spectre PoC bench).
	TransNS int64
}

// RunSpec executes a kernel spec on a fresh machine and validates every
// output array against the reference. A mismatch is an error: the
// benchmark harness doubles as an end-to-end correctness check.
func RunSpec(spec *polybench.Spec, cfg dbt.Config) (*KernelRun, error) {
	art, err := BuildArtifact(spec)
	if err != nil {
		return nil, err
	}
	return runArtifact(art, cfg)
}

// runArtifact executes a prepared artifact on a fresh machine. The
// artifact is read-only, so many runArtifact calls may share it
// concurrently.
func runArtifact(art *Artifact, cfg dbt.Config) (*KernelRun, error) {
	spec := art.Spec
	if cfg.TransCache != nil {
		// Key the translation cache by this artifact's inputs as well as
		// its image (the inputs are written into guest memory below,
		// after Load, so the image hash alone cannot see them).
		cfg.TCacheSalt = art.Salt
	}
	m, err := dbt.New(cfg)
	if err != nil {
		return nil, err
	}
	// Recycle the guest memory once the outputs have been validated
	// (Placement.Read copies): a matrix sweep then reuses one image per
	// worker instead of allocating a fresh multi-megabyte one per cell.
	defer m.Release()
	if err := m.Load(art.Prog); err != nil {
		return nil, err
	}
	for i, a := range spec.Arrays {
		if err := art.place[i].Init(m.Mem(), spec.Inputs[a.Name]); err != nil {
			return nil, fmt.Errorf("harness: %s: init %s: %w", spec.Name, a.Name, err)
		}
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("harness: %s (%s): %w", spec.Name, cfg.Mitigation, err)
	}
	if res.Exit.Code != 0 {
		return nil, fmt.Errorf("harness: %s: guest exit code %d", spec.Name, res.Exit.Code)
	}
	if res.Stats.CompileErrs != 0 {
		return nil, fmt.Errorf("harness: %s: %d DBT compile errors", spec.Name, res.Stats.CompileErrs)
	}
	for _, out := range spec.Outputs {
		pl, err := art.placeFor(out)
		if err != nil {
			return nil, err
		}
		got, err := pl.Read(m.Mem())
		if err != nil {
			return nil, err
		}
		want := spec.Expected[out]
		for i := range want {
			if got[i] != want[i] {
				return nil, fmt.Errorf("harness: %s (%s): output %s[%d] = %d, reference %d",
					spec.Name, cfg.Mitigation, out, i, got[i], want[i])
			}
		}
	}
	return &KernelRun{Name: spec.Name, Mode: cfg.Mitigation, Cycles: res.Cycles,
		Stats: res.Stats, TransNS: m.TranslateHostNS()}, nil
}

// validateSpec checks the spec's internal consistency up front — most
// importantly that every named output is actually declared in Arrays, so
// a typo surfaces as a descriptive error instead of a nil dereference
// mid-run.
func validateSpec(spec *polybench.Spec) error {
	for _, out := range spec.Outputs {
		if findArray(spec, out) == nil {
			return fmt.Errorf("harness: %s: output %q is not declared in Arrays", spec.Name, out)
		}
	}
	return nil
}

func findArray(spec *polybench.Spec, name string) *kbuild.Array {
	for _, a := range spec.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Row is one benchmark's cycles and slowdowns across modes.
//
// Slowdowns are relative to the ModeUnsafe baseline; when the measured
// mode list does not include ModeUnsafe there is nothing to normalise
// against, the Slowdown map stays empty, and the renderers print "n/a"
// instead of a misleading 0.0%.
type Row struct {
	Name     string
	Cycles   map[core.Mode]uint64
	Slowdown map[core.Mode]float64 // relative to ModeUnsafe; empty without the baseline
	Stats    map[core.Mode]dbt.Stats
	HostNS   map[core.Mode]int64 // host wall clock per run (perf layer; not rendered in tables)

	// Faults holds the guest trap that killed a cell when the Runner ran
	// with TolerateFaults; such cells have no Cycles/Stats entry and the
	// renderers print "n/a" for them.
	Faults map[core.Mode]*trap.Fault
}

func newRow(name string) *Row {
	return &Row{
		Name:     name,
		Cycles:   map[core.Mode]uint64{},
		Slowdown: map[core.Mode]float64{},
		Stats:    map[core.Mode]dbt.Stats{},
		HostNS:   map[core.Mode]int64{},
		Faults:   map[core.Mode]*trap.Fault{},
	}
}

// normalize computes slowdowns relative to the ModeUnsafe baseline. It
// is a no-op when the baseline was not measured.
func (r *Row) normalize() {
	if unsafe, ok := r.Cycles[core.ModeUnsafe]; ok && unsafe > 0 {
		for mode, c := range r.Cycles {
			r.Slowdown[mode] = float64(c) / float64(unsafe)
		}
	}
}

// Fig4Modes are the modes the paper's Figure 4 compares (plus the fence
// variant from the text's third experiment). The list derives from the
// mitigation-pass registry so the byte-identity and -checkperf gates
// keep covering exactly the pipelines flagged as part of the paper's
// comparison — the four legacy modes.
var Fig4Modes = pipeline.Fig4Modes()

// AllModes returns every registered mitigation mode, in mode-value
// order. A mitigation registered in the pass pipeline automatically
// appears in the full benchmark and leakage matrices through this.
func AllModes() []core.Mode { return pipeline.Modes() }

// RunKernel measures one kernel under the given modes. The modes fan
// out over the default worker pool, sharing one assembled artifact.
func RunKernel(k polybench.Kernel, n int, base dbt.Config, modes []core.Mode) (*Row, error) {
	r := &Runner{Artifacts: NewArtifacts()}
	return r.RunKernel(context.Background(), k, n, base, modes)
}

// RunSpectreApp measures a Spectre PoC application as a benchmark (the
// paper's Figure 4 includes "Spectre v1" and "Spectre v4" applications).
func RunSpectreApp(v attack.Variant, base dbt.Config, modes []core.Mode) (*Row, error) {
	rows, err := (&Runner{}).RunMatrix(context.Background(), base, []Bench{SpectreBench(v)}, modes)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// Fig4 runs the whole Figure 4 experiment: every Polybench kernel plus
// the two Spectre applications, under the requested modes. The matrix
// fans out over a default-sized worker pool; use a Runner directly to
// control parallelism, timeouts and error policy.
func Fig4(base dbt.Config, modes []core.Mode, sizeOverride int) ([]*Row, error) {
	r := &Runner{Artifacts: NewArtifacts()}
	return r.Fig4(context.Background(), base, modes, sizeOverride)
}

// GeoMean returns the geometric-mean slowdown for a mode over rows.
func GeoMean(rows []*Row, mode core.Mode) float64 {
	prod := 1.0
	n := 0
	for _, r := range rows {
		if s, ok := r.Slowdown[mode]; ok && s > 0 {
			prod *= s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// FormatRows renders the slowdown table the way Figure 4 reports it
// (percent of unsafe execution time; lower is better). Slowdowns require
// the ModeUnsafe baseline among the measured modes; without it the
// percentage cells read "n/a".
func FormatRows(rows []*Row, modes []core.Mode) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", "benchmark")
	for _, m := range modes {
		fmt.Fprintf(&sb, " %14s", m)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s", r.Name)
		for _, m := range modes {
			if m == core.ModeUnsafe {
				if c, ok := r.Cycles[m]; ok {
					fmt.Fprintf(&sb, " %11d cy", c)
				} else {
					fmt.Fprintf(&sb, " %14s", "n/a")
				}
				continue
			}
			if s, ok := r.Slowdown[m]; ok {
				fmt.Fprintf(&sb, " %13.1f%%", 100*s)
			} else {
				fmt.Fprintf(&sb, " %14s", "n/a")
			}
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-12s", "geo-mean")
	for _, m := range modes {
		if m == core.ModeUnsafe {
			fmt.Fprintf(&sb, " %14s", "(baseline)")
			continue
		}
		if g := GeoMean(rows, m); g > 0 {
			fmt.Fprintf(&sb, " %13.1f%%", 100*g)
		} else {
			fmt.Fprintf(&sb, " %14s", "n/a")
		}
	}
	sb.WriteString("\n")
	return sb.String()
}

// PoCMatrix renders the Section V-A proof-of-concept result matrix,
// extended across every registered mitigation: each cell reports the
// attacker's recovery, the scoreboard's ground-truth bits leaked, and
// the attack's slowdown relative to the unsafe baseline.
func PoCMatrix(base dbt.Config) (string, []attack.MatrixEntry, error) {
	entries, err := attack.RunMatrix(base, attack.Params{})
	if err != nil {
		return "", nil, err
	}
	lm := attack.BuildLeakMatrix(entries)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-14s %-10s %-10s %-10s %-9s %s\n",
		"attack", "mitigation", "leaked", "bytes", "bits-gt", "slowdown", "notes")
	for i, e := range entries {
		cell := lm.Cells[i]
		leaked := "NO"
		if e.Result.Success() {
			leaked = "YES"
		} else if e.Result.BytesCorrect > 0 {
			leaked = "PARTIAL"
		}
		slow := "n/a"
		if cell.Slowdown > 0 {
			slow = fmt.Sprintf("%.2fx", cell.Slowdown)
		}
		notes := fmt.Sprintf("specloads=%d recoveries=%d patterns=%d",
			e.Result.Stats.SpecLoads, e.Result.Stats.Recoveries, e.Result.Stats.PatternsFound)
		fmt.Fprintf(&sb, "%-12s %-14s %-10s %2d/%-7d %-10d %-9s %s\n",
			e.Variant, e.Mode, leaked, e.Result.BytesCorrect, len(e.Result.Secret), cell.BitsLeaked, slow, notes)
	}
	return sb.String(), entries, nil
}

// SortRows orders rows by name for stable output.
func SortRows(rows []*Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}

// CSV renders rows machine-readably (one line per benchmark/mode pair):
// benchmark,mode,cycles,slowdown,spec_loads,recoveries,patterns. The
// slowdown column requires the ModeUnsafe baseline among the measured
// modes and renders "n/a" without it.
func CSV(rows []*Row, modes []core.Mode) string {
	var sb strings.Builder
	sb.WriteString("benchmark,mode,cycles,slowdown,spec_loads,recoveries,patterns_found,risky_loads\n")
	for _, r := range rows {
		for _, m := range modes {
			cyc := "n/a"
			if c, ok := r.Cycles[m]; ok {
				cyc = fmt.Sprintf("%d", c)
			}
			st := r.Stats[m]
			slow := "n/a"
			if s, ok := r.Slowdown[m]; ok {
				slow = fmt.Sprintf("%.4f", s)
			}
			fmt.Fprintf(&sb, "%s,%s,%s,%s,%d,%d,%d,%d\n",
				r.Name, m, cyc, slow,
				st.SpecLoads, st.Recoveries, st.PatternsFound, st.RiskyLoads)
		}
	}
	return sb.String()
}
