// Package harness drives the paper's experiments: it runs the generated
// benchmark kernels and the Spectre proof-of-concept applications under
// each mitigation mode, validates guest results against the native Go
// references, and renders the evaluation tables (the proof-of-concept
// matrix of Section V-A and the slowdown comparison of Figure 4,
// including the fence variant and the pointer-layout matmul of Section
// V-B).
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/kbuild"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/riscv"
)

// KernelRun is one kernel execution under one configuration.
type KernelRun struct {
	Name   string
	Mode   core.Mode
	Cycles uint64
	Stats  dbt.Stats
}

// RunSpec executes a kernel spec on a fresh machine and validates every
// output array against the reference. A mismatch is an error: the
// benchmark harness doubles as an end-to-end correctness check.
func RunSpec(spec *polybench.Spec, cfg dbt.Config) (*KernelRun, error) {
	prog, err := riscv.Assemble(spec.Source)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: assemble: %w", spec.Name, err)
	}
	m, err := dbt.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Load(prog); err != nil {
		return nil, err
	}
	for _, a := range spec.Arrays {
		if err := kbuild.InitArray(m.Mem(), prog, a, spec.Inputs[a.Name]); err != nil {
			return nil, fmt.Errorf("harness: %s: init %s: %w", spec.Name, a.Name, err)
		}
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("harness: %s (%s): %w", spec.Name, cfg.Mitigation, err)
	}
	if res.Exit.Code != 0 {
		return nil, fmt.Errorf("harness: %s: guest exit code %d", spec.Name, res.Exit.Code)
	}
	if res.Stats.CompileErrs != 0 {
		return nil, fmt.Errorf("harness: %s: %d DBT compile errors", spec.Name, res.Stats.CompileErrs)
	}
	for _, out := range spec.Outputs {
		arr := findArray(spec, out)
		got, err := kbuild.ReadArray(m.Mem(), prog, arr)
		if err != nil {
			return nil, err
		}
		want := spec.Expected[out]
		for i := range want {
			if got[i] != want[i] {
				return nil, fmt.Errorf("harness: %s (%s): output %s[%d] = %d, reference %d",
					spec.Name, cfg.Mitigation, out, i, got[i], want[i])
			}
		}
	}
	return &KernelRun{Name: spec.Name, Mode: cfg.Mitigation, Cycles: res.Cycles, Stats: res.Stats}, nil
}

func findArray(spec *polybench.Spec, name string) *kbuild.Array {
	for _, a := range spec.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Row is one benchmark's cycles and slowdowns across modes.
type Row struct {
	Name     string
	Cycles   map[core.Mode]uint64
	Slowdown map[core.Mode]float64 // relative to ModeUnsafe
	Stats    map[core.Mode]dbt.Stats
}

// Fig4Modes are the modes the paper's Figure 4 compares (plus the fence
// variant from the text's third experiment).
var Fig4Modes = []core.Mode{core.ModeUnsafe, core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation}

// RunKernel measures one kernel under the given modes.
func RunKernel(k polybench.Kernel, n int, base dbt.Config, modes []core.Mode) (*Row, error) {
	if n == 0 {
		n = k.DefaultN
	}
	row := &Row{
		Name:     k.Name,
		Cycles:   map[core.Mode]uint64{},
		Slowdown: map[core.Mode]float64{},
		Stats:    map[core.Mode]dbt.Stats{},
	}
	for _, mode := range modes {
		spec, err := k.Make(n)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Mitigation = mode
		run, err := RunSpec(spec, cfg)
		if err != nil {
			return nil, err
		}
		row.Cycles[mode] = run.Cycles
		row.Stats[mode] = run.Stats
	}
	if unsafe, ok := row.Cycles[core.ModeUnsafe]; ok && unsafe > 0 {
		for mode, c := range row.Cycles {
			row.Slowdown[mode] = float64(c) / float64(unsafe)
		}
	}
	return row, nil
}

// RunSpectreApp measures a Spectre PoC application as a benchmark (the
// paper's Figure 4 includes "Spectre v1" and "Spectre v4" applications).
func RunSpectreApp(v attack.Variant, base dbt.Config, modes []core.Mode) (*Row, error) {
	row := &Row{
		Name:     v.String(),
		Cycles:   map[core.Mode]uint64{},
		Slowdown: map[core.Mode]float64{},
		Stats:    map[core.Mode]dbt.Stats{},
	}
	for _, mode := range modes {
		cfg := base
		cfg.Mitigation = mode
		res, err := attack.Run(v, cfg, attack.Params{Secret: []byte{0x5A, 0xC3}})
		if err != nil {
			return nil, err
		}
		row.Cycles[mode] = res.Cycles
		row.Stats[mode] = res.Stats
	}
	if unsafe := row.Cycles[core.ModeUnsafe]; unsafe > 0 {
		for mode, c := range row.Cycles {
			row.Slowdown[mode] = float64(c) / float64(unsafe)
		}
	}
	return row, nil
}

// Fig4 runs the whole Figure 4 experiment: every Polybench kernel plus
// the two Spectre applications, under the requested modes.
func Fig4(base dbt.Config, modes []core.Mode, sizeOverride int) ([]*Row, error) {
	var rows []*Row
	for _, k := range polybench.All() {
		row, err := RunKernel(k, sizeOverride, base, modes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, v := range []attack.Variant{attack.V1, attack.V4} {
		row, err := RunSpectreApp(v, base, modes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeoMean returns the geometric-mean slowdown for a mode over rows.
func GeoMean(rows []*Row, mode core.Mode) float64 {
	prod := 1.0
	n := 0
	for _, r := range rows {
		if s, ok := r.Slowdown[mode]; ok && s > 0 {
			prod *= s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// FormatRows renders the slowdown table the way Figure 4 reports it
// (percent of unsafe execution time; lower is better).
func FormatRows(rows []*Row, modes []core.Mode) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", "benchmark")
	for _, m := range modes {
		fmt.Fprintf(&sb, " %14s", m)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s", r.Name)
		for _, m := range modes {
			if m == core.ModeUnsafe {
				fmt.Fprintf(&sb, " %11d cy", r.Cycles[m])
				continue
			}
			fmt.Fprintf(&sb, " %13.1f%%", 100*r.Slowdown[m])
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-12s", "geo-mean")
	for _, m := range modes {
		if m == core.ModeUnsafe {
			fmt.Fprintf(&sb, " %14s", "(baseline)")
			continue
		}
		fmt.Fprintf(&sb, " %13.1f%%", 100*GeoMean(rows, m))
	}
	sb.WriteString("\n")
	return sb.String()
}

// PoCMatrix renders the Section V-A proof-of-concept result matrix.
func PoCMatrix(base dbt.Config) (string, []attack.MatrixEntry, error) {
	entries, err := attack.RunMatrix(base, attack.Params{})
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-14s %-10s %-18s %s\n", "attack", "mitigation", "leaked", "bytes", "notes")
	for _, e := range entries {
		leaked := "NO"
		if e.Result.Success() {
			leaked = "YES"
		} else if e.Result.BytesCorrect > 0 {
			leaked = "PARTIAL"
		}
		notes := fmt.Sprintf("specloads=%d recoveries=%d patterns=%d",
			e.Result.Stats.SpecLoads, e.Result.Stats.Recoveries, e.Result.Stats.PatternsFound)
		fmt.Fprintf(&sb, "%-12s %-14s %-10s %2d/%-15d %s\n",
			e.Variant, e.Mode, leaked, e.Result.BytesCorrect, len(e.Result.Secret), notes)
	}
	return sb.String(), entries, nil
}

// SortRows orders rows by name for stable output.
func SortRows(rows []*Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}

// CSV renders rows machine-readably (one line per benchmark/mode pair):
// benchmark,mode,cycles,slowdown,spec_loads,recoveries,patterns.
func CSV(rows []*Row, modes []core.Mode) string {
	var sb strings.Builder
	sb.WriteString("benchmark,mode,cycles,slowdown,spec_loads,recoveries,patterns_found,risky_loads\n")
	for _, r := range rows {
		for _, m := range modes {
			st := r.Stats[m]
			fmt.Fprintf(&sb, "%s,%s,%d,%.4f,%d,%d,%d,%d\n",
				r.Name, m, r.Cycles[m], r.Slowdown[m],
				st.SpecLoads, st.Recoveries, st.PatternsFound, st.RiskyLoads)
		}
	}
	return sb.String()
}
