package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/tcache"
	"ghostbusters/internal/trap"
)

// Runner is the parallel experiment engine: it fans a (benchmark × mode)
// matrix out as independent jobs over a bounded worker pool. Every job
// runs on its own dbt.Machine, so no simulator state is shared and the
// per-job results are bit-identical to a sequential run — only the wall
// clock changes. The zero value is ready to use: GOMAXPROCS workers, no
// timeout, collect-all error policy, uncached artifacts.
type Runner struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int

	// Timeout is the wall-clock guard per job (0 = none). It complements
	// the guest-cycle budget in Config.MaxCycles: MaxCycles bounds the
	// simulated work, Timeout bounds host time. A job that exceeds it
	// fails with context.DeadlineExceeded (the machine aborts via the
	// Config.Interrupt hook).
	Timeout time.Duration

	// FailFast cancels all outstanding jobs as soon as one fails and
	// returns that job's error. The default (false) runs the whole
	// matrix and returns every failure joined together.
	FailFast bool

	// Artifacts, when non-nil, memoizes generated kernel sources and
	// assembled programs across jobs, so an N-mode sweep assembles each
	// kernel once instead of N times.
	Artifacts *Artifacts

	// Retries is how many extra attempts a job gets after failing with a
	// transient fault (one the fault-injection layer raised). Each retry
	// reseeds the injector (Seed + attempt) so the same deterministic
	// fault does not simply recur. Real guest faults are never retried:
	// they are deterministic properties of the guest, not bad luck.
	Retries int

	// Backoff is the base pause of the retry schedule: attempt k waits
	// min(Backoff << (k-1), BackoffMax) scaled by deterministic jitter
	// in [0.5, 1.0) — capped exponential, not linear, so a burst of
	// transient faults backs off quickly without ever sleeping past the
	// cap. The sleep is context-aware: cancelling the matrix interrupts
	// a backoff pause immediately. Zero disables sleeping.
	Backoff time.Duration

	// BackoffMax caps the exponential schedule; 0 means 8×Backoff.
	BackoffMax time.Duration

	// BackoffSeed selects the deterministic jitter stream (see Backoff
	// in backoff.go); each matrix cell decorrelates further by keying
	// the stream with its benchmark name and mode.
	BackoffSeed uint64

	// TolerateFaults keeps the matrix going when a job exhausts its
	// retries on a guest trap: instead of failing the whole matrix, the
	// cell is recorded in Row.Faults and rendered as "n/a". Host-side
	// errors (assembly, validation, timeouts) still fail the matrix.
	TolerateFaults bool

	// TransCache, when non-nil, is the persistent translation cache
	// every job's machine shares (dbt.Config.TransCache); the per-job
	// key separates images, inputs, modes and configurations, so the
	// fan-out stays bit-identical to uncached runs. A cache already set
	// on the base config is left alone.
	TransCache *tcache.Cache

	// OnCell, when non-nil, is called from the worker goroutines as
	// each matrix cell starts (Done == false) and finishes (Done ==
	// true, with the run or error). It must be safe for concurrent
	// use; the Runner guarantees nothing about ordering across cells,
	// only start-before-finish within one. Consumers: gbserve's
	// per-job event stream and detect.Eval's progress reporting.
	OnCell func(CellUpdate)

	// Span, when enabled, parents the host-time span tree the matrix
	// emits: one "cell" child per (bench, mode) with per-attempt and
	// backoff children and a translate/execute split from the
	// machine's own translation-latency accounting. The zero Span
	// disables all of it at 0 allocs per cell.
	Span hspan.Span
}

// CellUpdate is one progress notification from the matrix fan-out.
type CellUpdate struct {
	Bench string
	Mode  core.Mode
	// Index is the cell's position in deterministic job order
	// (bench-major); Total is the matrix size.
	Index int
	Total int
	// Done distinguishes the start notification (false) from the
	// finish one (true). Run and Err are only set on finish; Run is
	// nil when the cell failed.
	Done bool
	Run  *KernelRun
	Err  error
}

// Bench is one benchmark of the experiment matrix: a named job factory
// the Runner instantiates once per mitigation mode. Run must be safe to
// call concurrently (each call receives its own Config and must build
// its own machine).
type Bench struct {
	Name string
	Run  func(ctx context.Context, cfg dbt.Config, arts *Artifacts) (*KernelRun, error)
}

// KernelBench wraps a polybench kernel (n = 0 means the kernel's
// DefaultN). The generated and assembled artifact is shared through the
// runner's artifact cache.
func KernelBench(k polybench.Kernel, n int) Bench {
	if n == 0 {
		n = k.DefaultN
	}
	return Bench{
		Name: k.Name,
		Run: func(_ context.Context, cfg dbt.Config, arts *Artifacts) (*KernelRun, error) {
			art, err := arts.Kernel(k, n, cfg)
			if err != nil {
				return nil, err
			}
			return runArtifact(art, cfg)
		},
	}
}

// SpectreBench wraps a Spectre proof-of-concept application as a
// benchmark, with the fixed secret the Figure 4 runs use.
func SpectreBench(v attack.Variant) Bench {
	return Bench{
		Name: v.String(),
		Run: func(_ context.Context, cfg dbt.Config, _ *Artifacts) (*KernelRun, error) {
			res, err := attack.Run(v, cfg, attack.Params{Secret: []byte{0x5A, 0xC3}})
			if err != nil {
				return nil, err
			}
			return &KernelRun{Name: v.String(), Mode: cfg.Mitigation, Cycles: res.Cycles, Stats: res.Stats}, nil
		},
	}
}

// Fig4Benches builds the full Figure 4 benchmark list: every Polybench
// kernel plus the two Spectre applications, in the paper's order.
func Fig4Benches(sizeOverride int) []Bench {
	var benches []Bench
	for _, k := range polybench.All() {
		benches = append(benches, KernelBench(k, sizeOverride))
	}
	for _, v := range []attack.Variant{attack.V1, attack.V4} {
		benches = append(benches, SpectreBench(v))
	}
	return benches
}

// Fig4 runs the whole Figure 4 matrix on the runner's worker pool.
func (r *Runner) Fig4(ctx context.Context, base dbt.Config, modes []core.Mode, sizeOverride int) ([]*Row, error) {
	return r.RunMatrix(ctx, base, Fig4Benches(sizeOverride), modes)
}

// RunKernel measures one kernel under the given modes, fanning the
// modes out over the pool.
func (r *Runner) RunKernel(ctx context.Context, k polybench.Kernel, n int, base dbt.Config, modes []core.Mode) (*Row, error) {
	rows, err := r.RunMatrix(ctx, base, []Bench{KernelBench(k, n)}, modes)
	if len(rows) > 0 {
		// Like RunMatrix, the partial row rides along with the error so
		// an interrupted sweep can still emit what completed.
		return rows[0], err
	}
	return nil, err
}

// RunMatrix fans benches × modes out as independent jobs and folds the
// completed runs into one Row per bench. Row order follows the benches
// argument regardless of completion order, so output is deterministic at
// any worker count.
//
// On failure the returned rows are non-nil and carry every cell that
// did complete (failed cells simply have no entry), so an interrupted
// sweep can still render or persist its partial results; the error
// reports what went wrong as before.
func (r *Runner) RunMatrix(ctx context.Context, base dbt.Config, benches []Bench, modes []core.Mode) ([]*Row, error) {
	nb, nm := len(benches), len(modes)
	if nb == 0 || nm == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nb*nm {
		workers = nb * nm
	}

	type job struct{ bi, mi int }
	jobs := make(chan job)
	runs := make([]*KernelRun, nb*nm)
	errs := make([]error, nb*nm)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				idx := j.bi*nm + j.mi
				if ctx.Err() != nil {
					errs[idx] = fmt.Errorf("harness: %s (%s): skipped: %w",
						benches[j.bi].Name, modes[j.mi], ctx.Err())
					if r.OnCell != nil {
						r.OnCell(CellUpdate{Bench: benches[j.bi].Name, Mode: modes[j.mi],
							Index: idx, Total: nb * nm, Done: true, Err: errs[idx]})
					}
					continue
				}
				if r.OnCell != nil {
					r.OnCell(CellUpdate{Bench: benches[j.bi].Name, Mode: modes[j.mi],
						Index: idx, Total: nb * nm})
				}
				runs[idx], errs[idx] = r.runOne(ctx, base, benches[j.bi], modes[j.mi])
				if r.OnCell != nil {
					r.OnCell(CellUpdate{Bench: benches[j.bi].Name, Mode: modes[j.mi],
						Index: idx, Total: nb * nm, Done: true, Run: runs[idx], Err: errs[idx]})
				}
				if errs[idx] != nil && r.FailFast {
					cancel()
				}
			}
		}()
	}
	for bi := range benches {
		for mi := range modes {
			jobs <- job{bi, mi}
		}
	}
	close(jobs)
	wg.Wait()

	// With TolerateFaults, cells that died on a guest trap (after any
	// retries) degrade to "n/a" entries instead of failing the matrix.
	faults := make([]*trap.Fault, nb*nm)
	if r.TolerateFaults {
		for idx, err := range errs {
			if f := trap.As(err); f != nil {
				faults[idx] = f
				errs[idx] = nil
			}
		}
	}

	// Fold completed runs into rows even when some cells failed: a
	// cancelled or partially failed matrix still reports what finished,
	// so interrupted tools can emit partial results alongside the error.
	rows := make([]*Row, nb)
	for bi, b := range benches {
		row := newRow(b.Name)
		for mi, mode := range modes {
			idx := bi*nm + mi
			if f := faults[idx]; f != nil {
				row.Faults[mode] = f
				continue
			}
			if run := runs[idx]; run != nil {
				row.Cycles[mode] = run.Cycles
				row.Stats[mode] = run.Stats
				row.HostNS[mode] = run.HostNS
			}
		}
		row.normalize()
		rows[bi] = row
	}

	// Collect failures in deterministic job order. The partial rows ride
	// along with the error; callers that only care about complete
	// matrices keep ignoring them.
	var errList []error
	for _, err := range errs {
		if err != nil {
			errList = append(errList, err)
		}
	}
	if len(errList) > 0 {
		if r.FailFast {
			// The root cause is the first error that is not a
			// cancellation ripple from the fail-fast cancel itself.
			for _, err := range errList {
				if !errors.Is(err, context.Canceled) {
					return rows, err
				}
			}
			return rows, errList[0]
		}
		return rows, errors.Join(errList...)
	}
	return rows, nil
}

// runOne executes a single matrix cell: its own config (mode applied),
// its own wall-clock guard, its own machine. Transient (injected)
// faults are retried up to r.Retries times with capped exponential
// backoff and a reseeded injector; any fault still standing afterwards
// is surfaced.
func (r *Runner) runOne(ctx context.Context, base dbt.Config, b Bench, mode core.Mode) (*KernelRun, error) {
	bo := Backoff{Base: r.Backoff, Max: r.BackoffMax, Seed: r.BackoffSeed}
	key := b.Name + "|" + mode.String()
	cell := r.Span.Child("cell", hspan.Str("bench", b.Name), hspan.Str("mode", mode.String()))
	var lastErr error
	for attempt := 0; attempt <= r.Retries; attempt++ {
		if attempt > 0 {
			bs := cell.Child("backoff", hspan.Int("attempt", int64(attempt)))
			err := bo.Sleep(ctx, attempt, key)
			bs.End()
			if err != nil {
				break // cancellation interrupts the backoff pause itself
			}
		}
		as := cell.Child("attempt", hspan.Int("attempt", int64(attempt)))
		run, err := r.attemptOne(ctx, base, b, mode, attempt)
		if err == nil {
			endAttempt(as, run)
			cell.End(hspan.Str("outcome", "ok"))
			return run, nil
		}
		as.End(hspan.Str("outcome", "error"))
		lastErr = err
		if f := trap.As(err); f == nil || !f.Transient() {
			break // real fault or host error: deterministic, retrying is futile
		}
	}
	cell.End(hspan.Str("outcome", "error"))
	return nil, lastErr
}

// endAttempt finishes a successful attempt's span, splitting it into
// the translation and execution phases from the machine's own
// accounting. The split renders the two as consecutive intervals —
// translation actually interleaves with execution — so the children
// are attributed durations on the cell timeline, not precise phases.
func endAttempt(as hspan.Span, run *KernelRun) {
	if !as.Enabled() {
		return
	}
	if t := as.Tracer(); t != nil && run.TransNS > 0 {
		start := as.StartNS()
		as.Emit("translate", start, start+run.TransNS, hspan.Int("ns", run.TransNS))
		as.Emit("execute", start+run.TransNS, t.Now(), hspan.Int("cycles", int64(run.Cycles)))
	}
	as.End(hspan.Str("outcome", "ok"), hspan.Int("cycles", int64(run.Cycles)))
}

// attemptOne is one try of a matrix cell. attempt > 0 reseeds the fault
// injector so the retried run draws a fresh fault schedule.
func (r *Runner) attemptOne(ctx context.Context, base dbt.Config, b Bench, mode core.Mode, attempt int) (*KernelRun, error) {
	runCtx := ctx
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	cfg := base
	cfg.Mitigation = mode
	cfg.Interrupt = runCtx.Done()
	if cfg.TransCache == nil {
		cfg.TransCache = r.TransCache
	}
	if cfg.FaultInject != nil && attempt > 0 {
		fi := *cfg.FaultInject
		fi.Seed += uint64(attempt)
		cfg.FaultInject = &fi
	}
	start := time.Now()
	run, err := b.Run(runCtx, cfg, r.Artifacts)
	hostNS := time.Since(start).Nanoseconds()
	if err != nil {
		prefix := ""
		if !strings.HasPrefix(err.Error(), "harness: ") {
			prefix = fmt.Sprintf("harness: %s (%s): ", b.Name, mode)
		}
		if cerr := runCtx.Err(); cerr != nil {
			return nil, fmt.Errorf("%s%w: %v", prefix, cerr, err)
		}
		return nil, fmt.Errorf("%s%w", prefix, err)
	}
	run.HostNS = hostNS
	return run, nil
}
