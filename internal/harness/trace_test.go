package harness

import (
	"context"
	"io"
	"testing"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/obs"
)

// Attaching a tracer must not perturb the experiment: the Figure 4
// table and CSV are byte-identical with tracing off and with full
// speculation-level tracing on. Tracers are single-threaded, so the
// traced run pins Workers to 1 — sharing one tracer across parallel
// cells is a usage error, not something this test legitimises.
func TestFig4OutputUnchangedByTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark matrix twice")
	}
	n := 6
	run := func(tr *obs.Tracer) (string, string) {
		t.Helper()
		cfg := dbt.DefaultConfig()
		cfg.Tracer = tr
		r := &Runner{Workers: 1, Artifacts: NewArtifacts()}
		rows, err := r.Fig4(context.Background(), cfg, Fig4Modes, n)
		if err != nil {
			t.Fatalf("fig4 (traced=%v): %v", tr != nil, err)
		}
		return FormatRows(rows, Fig4Modes), CSV(rows, Fig4Modes)
	}

	tablePlain, csvPlain := run(nil)

	sink, err := obs.SinkFor("jsonl", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.LevelSpec, sink)
	tableTraced, csvTraced := run(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if tablePlain != tableTraced {
		t.Errorf("Figure 4 table changed under tracing:\noff:\n%s\non:\n%s", tablePlain, tableTraced)
	}
	if csvPlain != csvTraced {
		t.Errorf("Figure 4 CSV changed under tracing:\noff:\n%s\non:\n%s", csvPlain, csvTraced)
	}
}

// benchFig4 runs the full Figure 4 matrix once per iteration, with the
// tracer built by mk attached to every cell (sequentially: tracers are
// single-threaded).
func benchFig4(b *testing.B, mk func() *obs.Tracer) {
	arts := NewArtifacts()
	for i := 0; i < b.N; i++ {
		cfg := dbt.DefaultConfig()
		tr := mk()
		cfg.Tracer = tr
		r := &Runner{Workers: 1, Artifacts: arts}
		if _, err := r.Fig4(context.Background(), cfg, Fig4Modes, 0); err != nil {
			b.Fatal(err)
		}
		if tr != nil {
			if err := tr.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// The pair below documents the tracing overhead budget: block-level
// tracing of the whole Figure 4 experiment must stay within ~10% of
// the untraced wall clock (compare with benchstat).
func BenchmarkFig4Untraced(b *testing.B) {
	benchFig4(b, func() *obs.Tracer { return nil })
}

func BenchmarkFig4BlockTraced(b *testing.B) {
	benchFig4(b, func() *obs.Tracer {
		sink, err := obs.SinkFor("jsonl", io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		return obs.New(obs.LevelBlock, sink)
	})
}

func BenchmarkFig4SpecTraced(b *testing.B) {
	benchFig4(b, func() *obs.Tracer {
		sink, err := obs.SinkFor("jsonl", io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		return obs.New(obs.LevelSpec, sink)
	})
}
