package harness

import (
	"strings"
	"testing"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/polybench"
)

func TestRunSpecValidatesOutputs(t *testing.T) {
	spec, err := polybench.MakeGemm(8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunSpec(spec, dbt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if run.Cycles == 0 || run.Name != "gemm" {
		t.Fatalf("run = %+v", run)
	}
}

// An output name that is not declared in Arrays must surface as a
// descriptive error up front — not a nil-pointer panic mid-validation.
func TestRunSpecUndeclaredOutput(t *testing.T) {
	spec, err := polybench.MakeGemm(6)
	if err != nil {
		t.Fatal(err)
	}
	spec.Outputs = append(spec.Outputs, "ghost")
	_, err = RunSpec(spec, dbt.DefaultConfig())
	if err == nil {
		t.Fatal("RunSpec accepted an undeclared output")
	}
	if !strings.Contains(err.Error(), "ghost") || !strings.Contains(err.Error(), "not declared") {
		t.Fatalf("error not descriptive: %v", err)
	}
}

// Slowdowns require the ModeUnsafe baseline: without it the Slowdown
// map stays empty and renderers print n/a rather than a bogus 0.0%.
func TestSlowdownRequiresBaseline(t *testing.T) {
	k, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	modes := []core.Mode{core.ModeGhostBusters, core.ModeNoSpeculation}
	row, err := RunKernel(k, 6, dbt.DefaultConfig(), modes)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Slowdown) != 0 {
		t.Fatalf("slowdowns computed without a baseline: %v", row.Slowdown)
	}
	table := FormatRows([]*Row{row}, modes)
	if !strings.Contains(table, "n/a") {
		t.Fatalf("table should render n/a without a baseline:\n%s", table)
	}
	if strings.Contains(table, "0.0%") {
		t.Fatalf("table renders a bogus 0.0%% slowdown:\n%s", table)
	}
	csv := CSV([]*Row{row}, modes)
	if !strings.Contains(csv, ",n/a,") {
		t.Fatalf("csv should render n/a without a baseline:\n%s", csv)
	}
	if strings.Contains(csv, ",0.0000,") {
		t.Fatalf("csv renders a bogus 0.0000 slowdown:\n%s", csv)
	}
}

func TestRunSpecDetectsWrongReference(t *testing.T) {
	spec, err := polybench.MakeGemm(6)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the expected output: RunSpec must fail.
	spec.Expected["C"][0]++
	if _, err := RunSpec(spec, dbt.DefaultConfig()); err == nil {
		t.Fatal("RunSpec accepted a wrong result")
	}
}

func TestRunKernelSlowdowns(t *testing.T) {
	k, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunKernel(k, 8, dbt.DefaultConfig(), Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	if row.Slowdown[core.ModeUnsafe] != 1.0 {
		t.Fatalf("unsafe slowdown = %v, want 1.0", row.Slowdown[core.ModeUnsafe])
	}
	for _, m := range Fig4Modes {
		if row.Cycles[m] == 0 {
			t.Fatalf("no cycles for %s", m)
		}
		if s := row.Slowdown[m]; s < 0.5 || s > 3 {
			t.Fatalf("implausible slowdown %v for %s", s, m)
		}
	}
	// NoSpeculation must never beat the speculating baseline on this
	// load-bound kernel.
	if row.Slowdown[core.ModeNoSpeculation] < 1.0 {
		t.Errorf("nospec faster than unsafe: %v", row.Slowdown[core.ModeNoSpeculation])
	}
}

func TestRunSpectreApp(t *testing.T) {
	row, err := RunSpectreApp(attack.V1, dbt.DefaultConfig(), []core.Mode{core.ModeUnsafe, core.ModeGhostBusters})
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "spectre-v1" || row.Cycles[core.ModeUnsafe] == 0 {
		t.Fatalf("row = %+v", row)
	}
}

func TestFormatRows(t *testing.T) {
	k, _ := polybench.ByName("atax")
	row, err := RunKernel(k, 8, dbt.DefaultConfig(), Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatRows([]*Row{row}, Fig4Modes)
	for _, want := range []string{"atax", "geo-mean", "%", "cy"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestGeoMean(t *testing.T) {
	rows := []*Row{
		{Slowdown: map[core.Mode]float64{core.ModeNoSpeculation: 2.0}},
		{Slowdown: map[core.Mode]float64{core.ModeNoSpeculation: 0.5}},
	}
	if g := GeoMean(rows, core.ModeNoSpeculation); g < 0.99 || g > 1.01 {
		t.Fatalf("geomean(2, 0.5) = %v, want 1", g)
	}
	if g := GeoMean(nil, core.ModeNoSpeculation); g != 0 {
		t.Fatalf("geomean(empty) = %v", g)
	}
}

func TestPoCMatrixShape(t *testing.T) {
	table, entries, err := PoCMatrix(dbt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(AllModes()); len(entries) != want {
		t.Fatalf("entries = %d, want %d (2 variants x all registered modes)", len(entries), want)
	}
	if !strings.Contains(table, "spectre-v1") || !strings.Contains(table, "ghostbusters") {
		t.Fatalf("table malformed:\n%s", table)
	}
	// Count leaks: exactly the two unsafe rows.
	leaks := 0
	for _, e := range entries {
		if e.Result.Success() {
			leaks++
			if e.Mode != core.ModeUnsafe {
				t.Errorf("leak under %s", e.Mode)
			}
		}
	}
	if leaks != 2 {
		t.Fatalf("leaks = %d, want 2", leaks)
	}
}

func TestSortRows(t *testing.T) {
	rows := []*Row{{Name: "z"}, {Name: "a"}, {Name: "m"}}
	SortRows(rows)
	if rows[0].Name != "a" || rows[2].Name != "z" {
		t.Fatalf("rows not sorted: %v %v %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
}

func TestCSV(t *testing.T) {
	k, _ := polybench.ByName("gemm")
	row, err := RunKernel(k, 8, dbt.DefaultConfig(), []core.Mode{core.ModeUnsafe, core.ModeNoSpeculation})
	if err != nil {
		t.Fatal(err)
	}
	out := CSV([]*Row{row}, []core.Mode{core.ModeUnsafe, core.ModeNoSpeculation})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[1], "gemm,unsafe,") {
		t.Fatalf("csv row malformed: %s", lines[1])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 7 {
			t.Fatalf("csv row has %d commas: %s", got, line)
		}
	}
}
