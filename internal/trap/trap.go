// Package trap defines the structured guest-fault model of the simulated
// DBT-based processor. Every error the simulator can raise on behalf of
// guest-controlled input — malformed instructions, wild loads, runaway
// loops, translation failures — is a typed *Fault carrying the guest PC,
// the machine cycle, the faulting address and the identity of the
// translated block (when one was executing). The process-level contract
// is: adversarial guest code makes Run return a *Fault; it never panics
// the simulator.
package trap

import (
	"errors"
	"fmt"
)

// Kind classifies a guest trap.
type Kind uint8

const (
	// IllegalInstruction: the guest executed a word that does not decode
	// to a supported RV64IM instruction.
	IllegalInstruction Kind = iota
	// MisalignedAccess: a scalar load or store whose address is not a
	// multiple of its size.
	MisalignedAccess
	// OutOfRangeAccess: a load or store outside guest physical memory.
	OutOfRangeAccess
	// ProtectedAccess: an architectural read of the protected region
	// (the "location which should not be readable" of the Spectre PoC).
	ProtectedAccess
	// InvalidBranchTarget: control transferred to a PC that cannot be
	// fetched — outside memory, or not 4-byte aligned.
	InvalidBranchTarget
	// TranslationFailure: the DBT engine could not translate a region.
	// The machine degrades gracefully — the region stays interpreted —
	// so this kind is recorded in the run's trap counts rather than
	// terminating execution.
	TranslationFailure
	// CycleBudgetExceeded: the guest ran past Config.MaxCycles.
	CycleBudgetExceeded
	// DeferredFault: architectural use of a poisoned value — a squashed
	// speculative load's exception delivered at the original program
	// position (the NaT-style deferred exception of the VLIW core).
	DeferredFault
	// CacheFault: a transient failure of the memory system. Only raised
	// by the fault-injection layer in this model.
	CacheFault
	// SpuriousInterrupt: an asynchronous interrupt not requested by the
	// host. Only raised by the fault-injection layer.
	SpuriousInterrupt
	// Internal: a simulator invariant was violated (translator or
	// scheduler bug). Never the guest's fault, but still returned as an
	// error instead of panicking so one bad cell cannot kill a sweep.
	Internal

	numKinds
)

// NumKinds is the number of defined trap kinds (for dense counters).
const NumKinds = int(numKinds)

var kindNames = [NumKinds]string{
	IllegalInstruction:  "illegal-instruction",
	MisalignedAccess:    "misaligned-access",
	OutOfRangeAccess:    "out-of-range-access",
	ProtectedAccess:     "protected-access",
	InvalidBranchTarget: "invalid-branch-target",
	TranslationFailure:  "translation-failure",
	CycleBudgetExceeded: "cycle-budget-exceeded",
	DeferredFault:       "deferred-fault",
	CacheFault:          "cache-fault",
	SpuriousInterrupt:   "spurious-interrupt",
	Internal:            "internal",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is a structured guest trap. The zero values of the context
// fields mean "unknown/not applicable": lower layers (guest memory, the
// cache) fill in what they know (Kind, Addr) and each layer above
// enriches the same fault in place — the interpreter and VLIW core add
// the guest PC, the machine dispatch loop adds the cycle count and the
// translated-block identity.
type Fault struct {
	Kind  Kind
	PC    uint64 // guest PC of the faulting instruction
	Addr  uint64 // faulting data address or branch target
	Cycle uint64 // machine cycle when the fault was raised

	// Block is the entry PC of the translated region that was executing,
	// 0 when the fault was raised from interpreted code.
	Block uint64

	// Injected marks faults raised by the deterministic fault-injection
	// layer. Injected faults are transient by construction: retrying the
	// run with a different injector seed may succeed.
	Injected bool

	Detail string // human-readable cause ("read of protected region", ...)
}

// Error renders the fault with every populated context field, so a bare
// %v in a log line already carries the full diagnosis.
func (f *Fault) Error() string {
	s := "trap: " + f.Kind.String()
	if f.Detail != "" {
		s += ": " + f.Detail
	}
	s += fmt.Sprintf(" (pc=%#x", f.PC)
	if f.Addr != 0 || f.Kind == MisalignedAccess || f.Kind == OutOfRangeAccess {
		s += fmt.Sprintf(" addr=%#x", f.Addr)
	}
	s += fmt.Sprintf(" cycle=%d", f.Cycle)
	if f.Block != 0 {
		s += fmt.Sprintf(" block=%#x", f.Block)
	}
	if f.Injected {
		s += " injected"
	}
	return s + ")"
}

// Transient reports whether retrying the same run could plausibly
// succeed. Only injected faults are transient in this deterministic
// simulator; the distinction is what the harness retry policy keys on.
func (f *Fault) Transient() bool { return f.Injected }

// Newf builds a fault with a formatted detail string.
func Newf(kind Kind, format string, args ...any) *Fault {
	return &Fault{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// As extracts a *Fault from err's chain, nil when there is none.
func As(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return nil
}

// IsKind reports whether err carries a fault of the given kind.
func IsKind(err error, kind Kind) bool {
	f := As(err)
	return f != nil && f.Kind == kind
}

// From adapts an arbitrary error into a fault: an existing *Fault in the
// chain is returned as-is (so context enrichment survives wrapping), any
// other error becomes an Internal fault.
func From(err error) *Fault {
	if f := As(err); f != nil {
		return f
	}
	return &Fault{Kind: Internal, Detail: err.Error()}
}

// Counts is a dense per-kind trap counter. It is a fixed-size array so
// structs embedding it stay comparable and copyable (dbt.Stats).
type Counts [NumKinds]uint64

// Record increments the counter for k.
func (c *Counts) Record(k Kind) {
	if int(k) < NumKinds {
		c[k]++
	}
}

// Get returns the recorded count for k.
func (c *Counts) Get(k Kind) uint64 {
	if int(k) < NumKinds {
		return c[k]
	}
	return 0
}

// Total returns the number of recorded traps across all kinds.
func (c *Counts) Total() uint64 {
	var t uint64
	for _, n := range c {
		t += n
	}
	return t
}

// String renders the non-zero counters ("illegal-instruction=2 ..."),
// or "none".
func (c *Counts) String() string {
	s := ""
	for k, n := range c {
		if n == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", Kind(k), n)
	}
	if s == "" {
		return "none"
	}
	return s
}
