package trap_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ghostbusters/internal/trap"
)

func TestKindStrings(t *testing.T) {
	for k := 0; k < trap.NumKinds; k++ {
		s := trap.Kind(k).String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind(%d) has no name: %q", k, s)
		}
	}
	if got := trap.Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestFaultErrorCarriesContext(t *testing.T) {
	f := &trap.Fault{
		Kind:   trap.OutOfRangeAccess,
		PC:     0x10008,
		Addr:   0x40,
		Cycle:  1234,
		Block:  0x10000,
		Detail: "load past end of memory",
	}
	msg := f.Error()
	for _, want := range []string{"out-of-range-access", "pc=0x10008", "addr=0x40", "cycle=1234", "block=0x10000", "load past end"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "injected") {
		t.Errorf("non-injected fault renders injected: %q", msg)
	}
	f.Injected = true
	if !strings.Contains(f.Error(), "injected") {
		t.Errorf("injected fault not marked: %q", f.Error())
	}
}

func TestAsAndIsKindThroughWrapping(t *testing.T) {
	f := trap.Newf(trap.IllegalInstruction, "word %#x", 0xffffffff)
	wrapped := fmt.Errorf("harness: gemm (unsafe): %w", fmt.Errorf("dbt: %w", f))
	if got := trap.As(wrapped); got != f {
		t.Fatalf("As(wrapped) = %v, want the original fault", got)
	}
	if !trap.IsKind(wrapped, trap.IllegalInstruction) {
		t.Error("IsKind(wrapped, IllegalInstruction) = false")
	}
	if trap.IsKind(wrapped, trap.MisalignedAccess) {
		t.Error("IsKind matched the wrong kind")
	}
	if trap.As(errors.New("plain")) != nil {
		t.Error("As(plain error) should be nil")
	}
}

func TestFrom(t *testing.T) {
	f := &trap.Fault{Kind: trap.CacheFault, PC: 0x10}
	if got := trap.From(fmt.Errorf("wrap: %w", f)); got != f {
		t.Errorf("From should unwrap to the original fault, got %v", got)
	}
	adapted := trap.From(errors.New("scheduler invariant broken"))
	if adapted.Kind != trap.Internal || !strings.Contains(adapted.Detail, "scheduler invariant") {
		t.Errorf("From(plain) = %+v, want Internal fault with detail", adapted)
	}
}

func TestTransient(t *testing.T) {
	if (&trap.Fault{Kind: trap.CacheFault}).Transient() {
		t.Error("non-injected fault must not be transient")
	}
	if !(&trap.Fault{Kind: trap.CacheFault, Injected: true}).Transient() {
		t.Error("injected fault must be transient")
	}
}

func TestCounts(t *testing.T) {
	var c trap.Counts
	if c.Total() != 0 || c.String() != "none" {
		t.Fatalf("zero Counts: total=%d str=%q", c.Total(), c.String())
	}
	c.Record(trap.TranslationFailure)
	c.Record(trap.TranslationFailure)
	c.Record(trap.SpuriousInterrupt)
	c.Record(trap.Kind(250)) // out of range: ignored, no panic
	if c.Total() != 3 {
		t.Errorf("Total = %d, want 3", c.Total())
	}
	s := c.String()
	if !strings.Contains(s, "translation-failure=2") || !strings.Contains(s, "spurious-interrupt=1") {
		t.Errorf("String = %q", s)
	}
	// Counts must stay comparable (it is embedded in dbt.Stats).
	d := c
	if d != c {
		t.Error("Counts copies must compare equal")
	}
}
