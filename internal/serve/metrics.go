package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"ghostbusters/internal/obs"
)

// serverMetrics holds the service-level counters behind its own mutex
// (lock order: s.mu may be held when taking metrics.mu, never the
// reverse).
type serverMetrics struct {
	mu        sync.Mutex
	submitted uint64
	rejected  map[string]uint64 // by rejection code
	completed map[string]uint64 // by terminal state
	panics    uint64
	sim       obs.Snapshot // fleet-wide aggregate of run snapshots
}

func (m *serverMetrics) init() {
	m.rejected = make(map[string]uint64)
	m.completed = make(map[string]uint64)
	m.sim = make(obs.Snapshot)
}

func (m *serverMetrics) submit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *serverMetrics) reject(code string) {
	m.mu.Lock()
	m.rejected[code]++
	m.mu.Unlock()
}

func (m *serverMetrics) complete(state string) {
	m.mu.Lock()
	m.completed[state]++
	m.mu.Unlock()
}

func (m *serverMetrics) panic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

func (m *serverMetrics) addRun(snap obs.Snapshot) {
	m.mu.Lock()
	m.sim.Add(snap)
	m.mu.Unlock()
}

// promName maps an obs stable name (dots and dashes) onto the
// Prometheus grammar.
func promName(name string) string {
	return "gb_" + strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

// handleMetrics renders the Prometheus text exposition: server gauges
// and counters under gbserve_*, per-tenant ledgers labelled by tenant,
// and the fleet-wide simulator aggregate under gb_*. Output order is
// deterministic (sorted) so scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	s.mu.Lock()
	draining := 0
	if s.draining {
		draining = 1
	}
	fmt.Fprintf(&b, "gbserve_draining %d\n", draining)
	fmt.Fprintf(&b, "gbserve_jobs_queued %d\n", s.queued)
	fmt.Fprintf(&b, "gbserve_jobs_running %d\n", s.running)
	fmt.Fprintf(&b, "gbserve_queue_depth %d\n", cap(s.queue))
	fmt.Fprintf(&b, "gbserve_workers %d\n", s.workers)
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tenants[name]
		fmt.Fprintf(&b, "gbserve_tenant_in_flight{tenant=%q} %d\n", name, t.inFlight)
		fmt.Fprintf(&b, "gbserve_tenant_cycles_used{tenant=%q} %d\n", name, t.cyclesUsed)
		fmt.Fprintf(&b, "gbserve_tenant_cycles_reserved{tenant=%q} %d\n", name, t.cyclesReserved)
		fmt.Fprintf(&b, "gbserve_tenant_mem_used_bytes{tenant=%q} %d\n", name, t.memUsed)
		fmt.Fprintf(&b, "gbserve_tenant_rejects_total{tenant=%q} %d\n", name, t.rejects)
		fmt.Fprintf(&b, "gb_detect_alarms_total{tenant=%q} %d\n", name, t.detectAlarms)
	}
	s.mu.Unlock()

	s.metrics.mu.Lock()
	fmt.Fprintf(&b, "gbserve_jobs_submitted_total %d\n", s.metrics.submitted)
	fmt.Fprintf(&b, "gbserve_job_panics_total %d\n", s.metrics.panics)
	for _, kv := range sortedCounts(s.metrics.rejected) {
		fmt.Fprintf(&b, "gbserve_jobs_rejected_total{code=%q} %d\n", kv.k, kv.v)
	}
	for _, kv := range sortedCounts(s.metrics.completed) {
		fmt.Fprintf(&b, "gbserve_jobs_completed_total{state=%q} %d\n", kv.k, kv.v)
	}
	simNames := make([]string, 0, len(s.metrics.sim))
	for name := range s.metrics.sim {
		simNames = append(simNames, name)
	}
	sort.Strings(simNames)
	for _, name := range simNames {
		fmt.Fprintf(&b, "%s %d\n", promName(name), s.metrics.sim[name])
	}
	s.metrics.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

type kv struct {
	k string
	v uint64
}

func sortedCounts(m map[string]uint64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
