package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ghostbusters/internal/hspan"
	"ghostbusters/internal/obs"
)

// cellKey labels a cell-host-time histogram: one distribution per
// (tenant, mitigation mode), so the slowdown story the Fig. 4 matrix
// tells in guest cycles has its host-time counterpart per mode.
type cellKey struct {
	tenant string
	mode   string
}

// serverMetrics holds the service-level counters and latency
// histograms behind its own mutex (lock order: s.mu may be held when
// taking metrics.mu, never the reverse).
type serverMetrics struct {
	mu        sync.Mutex
	submitted uint64
	rejected  map[string]uint64 // by rejection code
	completed map[string]uint64 // by terminal state
	panics    uint64
	sim       obs.Snapshot // fleet-wide aggregate of run snapshots

	// Latency distributions, log-bucketed (hspan.Histogram): how long
	// jobs sat in the admission queue, how long they took wall-clock,
	// and how long individual matrix cells cost the host.
	queueWait map[string]*hspan.Histogram // by tenant
	jobWall   map[string]*hspan.Histogram // by tenant
	cellHost  map[cellKey]*hspan.Histogram
}

func (m *serverMetrics) init() {
	m.rejected = make(map[string]uint64)
	m.completed = make(map[string]uint64)
	m.sim = make(obs.Snapshot)
	m.queueWait = make(map[string]*hspan.Histogram)
	m.jobWall = make(map[string]*hspan.Histogram)
	m.cellHost = make(map[cellKey]*hspan.Histogram)
}

func (m *serverMetrics) submit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *serverMetrics) reject(code string) {
	m.mu.Lock()
	m.rejected[code]++
	m.mu.Unlock()
}

func (m *serverMetrics) complete(state string) {
	m.mu.Lock()
	m.completed[state]++
	m.mu.Unlock()
}

func (m *serverMetrics) panic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

func (m *serverMetrics) addRun(snap obs.Snapshot) {
	m.mu.Lock()
	m.sim.Add(snap)
	m.mu.Unlock()
}

func (m *serverMetrics) observeQueueWait(tenant string, ns int64) {
	m.mu.Lock()
	h := m.queueWait[tenant]
	if h == nil {
		h = &hspan.Histogram{}
		m.queueWait[tenant] = h
	}
	h.Observe(ns)
	m.mu.Unlock()
}

func (m *serverMetrics) observeJobWall(tenant string, ns int64) {
	m.mu.Lock()
	h := m.jobWall[tenant]
	if h == nil {
		h = &hspan.Histogram{}
		m.jobWall[tenant] = h
	}
	h.Observe(ns)
	m.mu.Unlock()
}

func (m *serverMetrics) observeCellHost(tenant, mode string, ns int64) {
	m.mu.Lock()
	k := cellKey{tenant, mode}
	h := m.cellHost[k]
	if h == nil {
		h = &hspan.Histogram{}
		m.cellHost[k] = h
	}
	h.Observe(ns)
	m.mu.Unlock()
}

// promName maps an obs stable name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every rune outside the grammar
// becomes '_', not just the dots and dashes stable names use today —
// a future stable name (or a unit suffix like "bytes/s") must degrade
// to a scrapable name, never to a family strict scrapers drop. The
// "gb_" prefix keeps the first-rune class satisfied even for names
// that start with a digit.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 3)
	b.WriteString("gb_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// family is one exposition family: its # HELP and # TYPE header plus
// fully rendered sample lines. Families render sorted by name and
// empty families are skipped, so the exposition stays deterministic
// and every sample is preceded by its metadata — the grammar the
// smoke test validates.
type family struct {
	name string
	typ  string // gauge | counter | histogram
	help string
	rows []string
}

func renderFamilies(b *strings.Builder, fams []family) {
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if len(f.rows) == 0 {
			continue
		}
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
		for _, r := range f.rows {
			b.WriteString(r)
			b.WriteByte('\n')
		}
	}
}

// formatSeconds renders a nanosecond quantity as seconds the way
// Prometheus clients do (shortest float that round-trips).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// histRows renders one labelled histogram in Prometheus exposition:
// cumulative _bucket{...,le="..."} lines in seconds, then _sum and
// _count. labels is the pre-rendered label list without braces.
func histRows(rows []string, name, labels string, h *hspan.Histogram) []string {
	bounds := hspan.HistBounds()
	cum := h.BucketCounts()
	for i, bound := range bounds {
		rows = append(rows, fmt.Sprintf("%s_bucket{%s,le=%q} %d", name, labels, formatSeconds(bound), cum[i]))
	}
	rows = append(rows, fmt.Sprintf("%s_bucket{%s,le=\"+Inf\"} %d", name, labels, cum[len(cum)-1]))
	rows = append(rows, fmt.Sprintf("%s_sum{%s} %s", name, labels, formatSeconds(h.Sum())))
	rows = append(rows, fmt.Sprintf("%s_count{%s} %d", name, labels, h.Count()))
	return rows
}

// tenantHistFamily renders a by-tenant histogram map as one family.
func tenantHistFamily(name, help string, m map[string]*hspan.Histogram) family {
	f := family{name: name, typ: "histogram", help: help}
	tenants := make([]string, 0, len(m))
	for t := range m {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		f.rows = histRows(f.rows, name, fmt.Sprintf("tenant=%q", t), m[t])
	}
	return f
}

// handleMetrics renders the Prometheus text exposition: server gauges
// and counters under gbserve_*, per-tenant ledgers labelled by tenant,
// latency histograms, and the fleet-wide simulator aggregate under
// gb_*. Every family carries # HELP and # TYPE metadata, families are
// sorted by name, and samples within a family are sorted by label, so
// scrapes diff cleanly and strict scrapers stay quiet.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var fams []family
	gauge1 := func(name, help string, v int) {
		fams = append(fams, family{name: name, typ: "gauge", help: help,
			rows: []string{fmt.Sprintf("%s %d", name, v)}})
	}

	s.mu.Lock()
	draining := 0
	if s.draining {
		draining = 1
	}
	gauge1("gbserve_draining", "Whether the server is draining (1) or accepting jobs (0).", draining)
	gauge1("gbserve_jobs_queued", "Jobs admitted and waiting in the queue.", s.queued)
	gauge1("gbserve_jobs_running", "Jobs currently executing on the worker fleet.", s.running)
	gauge1("gbserve_queue_depth", "Capacity of the admission queue.", cap(s.queue))
	gauge1("gbserve_workers", "Size of the worker fleet.", s.workers)
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	inFlight := family{name: "gbserve_tenant_in_flight", typ: "gauge",
		help: "Jobs queued or running per tenant."}
	cyclesUsed := family{name: "gbserve_tenant_cycles_used", typ: "counter",
		help: "Settled simulated cycles of finished jobs per tenant."}
	cyclesReserved := family{name: "gbserve_tenant_cycles_reserved", typ: "gauge",
		help: "Cycle allowances of admitted, unfinished jobs per tenant."}
	memUsed := family{name: "gbserve_tenant_mem_used_bytes", typ: "counter",
		help: "Cumulative guest-memory bytes charged per tenant."}
	rejects := family{name: "gbserve_tenant_rejects_total", typ: "counter",
		help: "Admission rejections per tenant."}
	alarms := family{name: "gb_detect_alarms_total", typ: "counter",
		help: "Online attack-phase detector alarms across finished jobs per tenant."}
	for _, name := range names {
		t := s.tenants[name]
		inFlight.rows = append(inFlight.rows, fmt.Sprintf("gbserve_tenant_in_flight{tenant=%q} %d", name, t.inFlight))
		cyclesUsed.rows = append(cyclesUsed.rows, fmt.Sprintf("gbserve_tenant_cycles_used{tenant=%q} %d", name, t.cyclesUsed))
		cyclesReserved.rows = append(cyclesReserved.rows, fmt.Sprintf("gbserve_tenant_cycles_reserved{tenant=%q} %d", name, t.cyclesReserved))
		memUsed.rows = append(memUsed.rows, fmt.Sprintf("gbserve_tenant_mem_used_bytes{tenant=%q} %d", name, t.memUsed))
		rejects.rows = append(rejects.rows, fmt.Sprintf("gbserve_tenant_rejects_total{tenant=%q} %d", name, t.rejects))
		alarms.rows = append(alarms.rows, fmt.Sprintf("gb_detect_alarms_total{tenant=%q} %d", name, t.detectAlarms))
	}
	fams = append(fams, inFlight, cyclesUsed, cyclesReserved, memUsed, rejects, alarms)
	s.mu.Unlock()

	s.metrics.mu.Lock()
	fams = append(fams, family{name: "gbserve_jobs_submitted_total", typ: "counter",
		help: "Jobs admitted since start.",
		rows: []string{fmt.Sprintf("gbserve_jobs_submitted_total %d", s.metrics.submitted)}})
	fams = append(fams, family{name: "gbserve_job_panics_total", typ: "counter",
		help: "Job panics caught by the isolation boundary.",
		rows: []string{fmt.Sprintf("gbserve_job_panics_total %d", s.metrics.panics)}})
	rejected := family{name: "gbserve_jobs_rejected_total", typ: "counter",
		help: "Admission rejections by structured error code."}
	for _, kv := range sortedCounts(s.metrics.rejected) {
		rejected.rows = append(rejected.rows, fmt.Sprintf("gbserve_jobs_rejected_total{code=%q} %d", kv.k, kv.v))
	}
	completed := family{name: "gbserve_jobs_completed_total", typ: "counter",
		help: "Finished jobs by terminal state."}
	for _, kv := range sortedCounts(s.metrics.completed) {
		completed.rows = append(completed.rows, fmt.Sprintf("gbserve_jobs_completed_total{state=%q} %d", kv.k, kv.v))
	}
	fams = append(fams, rejected, completed)

	fams = append(fams, tenantHistFamily("gbserve_queue_wait_seconds",
		"Time jobs spent in the admission queue, per tenant.", s.metrics.queueWait))
	fams = append(fams, tenantHistFamily("gbserve_job_wall_seconds",
		"Job wall time from admission to terminal state, per tenant.", s.metrics.jobWall))
	cellHost := family{name: "gbserve_cell_host_seconds", typ: "histogram",
		help: "Host time per matrix cell, by tenant and mitigation mode."}
	cellKeys := make([]cellKey, 0, len(s.metrics.cellHost))
	for k := range s.metrics.cellHost {
		cellKeys = append(cellKeys, k)
	}
	sort.Slice(cellKeys, func(i, j int) bool {
		if cellKeys[i].tenant != cellKeys[j].tenant {
			return cellKeys[i].tenant < cellKeys[j].tenant
		}
		return cellKeys[i].mode < cellKeys[j].mode
	})
	for _, k := range cellKeys {
		cellHost.rows = histRows(cellHost.rows, "gbserve_cell_host_seconds",
			fmt.Sprintf("tenant=%q,mode=%q", k.tenant, k.mode), s.metrics.cellHost[k])
	}
	fams = append(fams, cellHost)

	simNames := make([]string, 0, len(s.metrics.sim))
	for name := range s.metrics.sim {
		simNames = append(simNames, name)
	}
	sort.Strings(simNames)
	for _, name := range simNames {
		pn := promName(name)
		fams = append(fams, family{name: pn, typ: "counter",
			help: fmt.Sprintf("Simulator metric %s aggregated across completed runs.", name),
			rows: []string{fmt.Sprintf("%s %d", pn, s.metrics.sim[name])}})
	}
	s.metrics.mu.Unlock()

	var b strings.Builder
	renderFamilies(&b, fams)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

type kv struct {
	k string
	v uint64
}

func sortedCounts(m map[string]uint64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
