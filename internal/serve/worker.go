package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/detect"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/trap"
)

// worker is one fleet goroutine: it drains the admission queue until
// Shutdown closes it. Every job runs inside the panic-isolation
// boundary of execute, so a poisoned request ends one job, never a
// worker.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob moves a job queued→running→terminal and keeps the ledgers
// straight on every path.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	s.queued--
	if j.ctx.Err() != nil {
		s.mu.Unlock()
		j.queueSpan.End(hspan.Str("outcome", "canceled"))
		s.finish(j, 0, nil, &APIError{Code: CodeCanceled, Message: "job canceled before it started"})
		return
	}
	j.state = StateRunning
	s.running++
	s.mu.Unlock()
	waitNS := s.spans.Now() - j.queueSpan.StartNS()
	j.queueSpan.End()
	s.metrics.observeQueueWait(j.Tenant, waitNS)

	res, spent, aerr := s.execute(j)
	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	s.finish(j, spent, res, aerr)
}

// finish records a job's terminal state, settles its tenant ledger and
// releases its context. Results are "flushed" here: the terminal state
// is logged and visible to status polls the instant the lock drops.
func (s *Server) finish(j *Job, spent uint64, res *JobResult, aerr *APIError) {
	s.mu.Lock()
	switch {
	case aerr == nil:
		j.state = StateDone
		j.result = res
		if len(res.Metrics) > 0 {
			s.metrics.addRun(res.Metrics)
		}
	case aerr.Code == CodeCanceled:
		j.state = StateCanceled
		j.apiErr = aerr
	default:
		j.state = StateFailed
		j.apiErr = aerr
	}
	t := s.tenant(j.Tenant)
	t.inFlight--
	if t.quota.CycleBudget > 0 {
		if spent > j.cycleAllowance && j.cycleAllowance > 0 {
			spent = j.cycleAllowance
		}
		t.cyclesReserved -= j.cycleAllowance
		t.cyclesUsed += spent
	}
	if res != nil {
		t.detectAlarms += uint64(res.DetectAlarms)
	}
	s.metrics.complete(j.state)
	// The terminal event lands under the same lock that sets the
	// terminal state, so a drained event stream is a complete one.
	s.appendEventLocked(j, JobEvent{Type: EventJobFinished, State: j.state})
	state := j.state
	s.mu.Unlock()
	// The root span ends outside s.mu (its observer wakes /trace
	// readers under the job's span lock); its record marks the job's
	// trace complete, so it must land after every child span has.
	wallNS := s.spans.Now() - j.root.StartNS()
	j.root.End(hspan.Str("state", state), hspan.Int("cycles_charged", int64(spent)))
	s.metrics.observeJobWall(j.Tenant, wallNS)
	j.cancel() // release the job context's resources on every path
	close(j.done)
	if aerr != nil {
		s.log.Printf("serve: %s %s: %s (%d cycles charged)", j.ID, state, aerr.Error(), spent)
	} else {
		s.log.Printf("serve: %s %s (%d cycles charged)", j.ID, state, spent)
	}
}

// execute runs one job inside the panic-isolation boundary and returns
// its result, the simulated cycles it consumed, and its failure.
func (s *Server) execute(j *Job) (res *JobResult, spent uint64, aerr *APIError) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panic()
			res = nil
			spent = j.cycleAllowance // mid-run state unknown: charge conservatively
			aerr = &APIError{Code: CodePanic, Message: fmt.Sprintf("job panicked (isolated): %v", r)}
			s.log.Printf("serve: %s PANIC isolated: %v", j.ID, r)
		}
	}()
	if s.testHookBeforeRun != nil {
		s.testHookBeforeRun(j)
	}
	ctx, cancel := context.WithTimeout(j.ctx, s.jobTimeout(&j.Req))
	defer cancel()

	cfg := s.base
	cfg.TransCache = s.cfg.TransCache
	if j.Req.Kind == KindRun {
		return s.executeRun(ctx, j, cfg)
	}
	return s.executeSweep(ctx, j, cfg)
}

// injectFor builds the job's fault injector for one attempt (reseeded
// per retry, like the harness).
func injectFor(spec *InjectSpec, attempt int) *dbt.FaultInject {
	if spec == nil {
		return nil
	}
	return &dbt.FaultInject{
		Seed:                   spec.Seed + uint64(attempt),
		TranslationFailureRate: spec.TranslationRate,
		CacheFaultRate:         spec.CacheRate,
		SpuriousInterruptRate:  spec.InterruptRate,
	}
}

// retryBudget resolves a job's transient-fault retry count.
func (s *Server) retryBudget(j *Job) int {
	if j.Req.Retries > 0 {
		return j.Req.Retries
	}
	return s.cfg.Retries
}

// executeRun assembles and runs an untrusted guest program. The
// tenant's cycle allowance is enforced by MaxCycles across all
// attempts together: each retry runs under whatever remains.
func (s *Server) executeRun(ctx context.Context, j *Job, cfg dbt.Config) (*JobResult, uint64, *APIError) {
	prog, err := riscv.Assemble(j.Req.Program)
	if err != nil {
		return nil, 0, &APIError{Code: CodeInvalid, Message: fmt.Sprintf("assembly failed: %v", err)}
	}
	cfg.Mitigation = j.modes[0]
	cfg.Interrupt = ctx.Done()
	bo := harness.Backoff{Base: s.cfg.Backoff, Max: s.cfg.BackoffMax, Seed: s.cfg.BackoffSeed}
	retries := s.retryBudget(j)

	s.appendEvent(j, JobEvent{Type: EventCellStarted, Bench: "program", Mode: j.modes[0].String(), Total: 1})
	var total uint64
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			bs := j.root.Child("backoff", hspan.Int("attempt", int64(attempt)))
			err := bo.Sleep(ctx, attempt, j.ID)
			bs.End()
			if err != nil {
				return nil, total, s.ctxError(ctx)
			}
		}
		if j.cycleAllowance > 0 {
			remaining := j.cycleAllowance - total
			if total >= j.cycleAllowance {
				return nil, total, &APIError{
					Code:     CodeGuestTrap,
					Message:  fmt.Sprintf("cycle allowance %d exhausted across %d attempts", j.cycleAllowance, attempt),
					TrapKind: trap.CycleBudgetExceeded.String(),
				}
			}
			cfg.MaxCycles = remaining
		}
		cfg.FaultInject = injectFor(j.Req.Inject, attempt)

		// Detection is per attempt: each retry gets a fresh detector,
		// so the verdict describes exactly the run that succeeded.
		var det *detect.Detector
		cfg.Tracer = nil
		if j.Req.Detect {
			det = detect.New(detect.Config{})
			cfg.Tracer = obs.New(obs.LevelSpec, det)
		}
		as := j.root.Child("attempt", hspan.Int("attempt", int64(attempt)))
		res, cycles, transNS, runErr := runGuest(cfg, prog)
		_ = cfg.Tracer.Close() // flush the stream's tail into the detector
		total += cycles
		if transNS > 0 {
			// Attribute the attempt's host time to its translate and
			// execute phases (consecutive intervals — translation
			// actually interleaves; see harness.endAttempt).
			start := as.StartNS()
			as.Emit("translate", start, start+transNS, hspan.Int("ns", transNS))
			as.Emit("execute", start+transNS, s.spans.Now(), hspan.Int("cycles", int64(cycles)))
		}
		outcome := "ok"
		if runErr != nil {
			outcome = "error"
		}
		hostNS := s.spans.Now() - as.StartNS()
		as.End(hspan.Str("outcome", outcome), hspan.Int("cycles", int64(cycles)))
		s.metrics.observeCellHost(j.Tenant, j.modes[0].String(), hostNS)
		if runErr == nil {
			out := &JobResult{
				ExitCode: int(res.Exit.Code),
				Cycles:   res.Cycles,
				Instret:  res.Instret,
				Metrics:  res.Snapshot(),
			}
			if det != nil {
				rep := det.Report()
				out.Detect = rep
				rep.AddMetrics(out.Metrics)
				if rep.Alarm {
					out.DetectAlarms = 1
					s.appendEvent(j, JobEvent{Type: EventDetectAlarm, Bench: "program",
						Mode: j.modes[0].String(), Alarm: true,
						Confidence: rep.Confidence, AlarmCycle: rep.AlarmCycle})
				}
			}
			s.appendEvent(j, JobEvent{Type: EventCellFinished, Bench: "program",
				Mode: j.modes[0].String(), Total: 1, Cycles: res.Cycles})
			return out, total, nil
		}
		if f := trap.As(runErr); f != nil {
			if f.Transient() && attempt < retries && ctx.Err() == nil {
				continue
			}
			return nil, total, trapError(f)
		}
		if errors.Is(runErr, dbt.ErrInterrupted) || ctx.Err() != nil {
			return nil, total, s.ctxError(ctx)
		}
		return nil, total, &APIError{Code: CodeHostError, Message: runErr.Error()}
	}
}

// runGuest is one machine lifecycle: build, load, run, release. The
// returned cycle count is what the guest consumed regardless of
// outcome (faulted and interrupted runs are metered too); the third
// return is the machine's host-side translation time for the span
// layer's translate/execute split.
func runGuest(cfg dbt.Config, prog *riscv.Program) (*dbt.Result, uint64, int64, error) {
	m, err := dbt.New(cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	defer m.Release()
	if err := m.Load(prog); err != nil {
		return nil, 0, 0, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, m.Cycles(), m.TranslateHostNS(), err
	}
	return res, res.Cycles, m.TranslateHostNS(), nil
}

// executeSweep runs a kernel or fig4 matrix job on a harness Runner
// that shares the server-wide artifact and translation caches. The
// cycle allowance is split evenly across the matrix cells and enforced
// per cell through MaxCycles.
func (s *Server) executeSweep(ctx context.Context, j *Job, cfg dbt.Config) (*JobResult, uint64, *APIError) {
	var benches []harness.Bench
	switch j.Req.Kind {
	case KindKernel:
		k, err := polybench.ByName(j.Req.Kernel)
		if err != nil {
			return nil, 0, &APIError{Code: CodeInvalid, Message: err.Error()}
		}
		benches = []harness.Bench{harness.KernelBench(k, j.Req.N)}
	case KindFig4:
		benches = harness.Fig4Benches(j.Req.N)
	}
	if j.cycleAllowance > 0 {
		per := j.cycleAllowance / uint64(j.cells)
		if per == 0 {
			per = 1 // allowance smaller than the matrix: every cell traps immediately
		}
		cfg.MaxCycles = per
	}
	cfg.FaultInject = injectFor(j.Req.Inject, 0)

	var alarms atomic.Int64
	if j.Req.Detect {
		for i := range benches {
			benches[i] = s.detectBench(j, benches[i], &alarms)
		}
	}
	runner := &harness.Runner{
		Workers:     s.cfg.JobParallelism,
		Artifacts:   s.arts,
		Retries:     s.retryBudget(j),
		Backoff:     s.cfg.Backoff,
		BackoffMax:  s.cfg.BackoffMax,
		BackoffSeed: s.cfg.BackoffSeed,
		TransCache:  s.cfg.TransCache,
		Span:        j.root, // per-cell spans land in the job's trace
		OnCell: func(u harness.CellUpdate) {
			ev := JobEvent{Type: EventCellStarted, Bench: u.Bench, Mode: u.Mode.String(),
				Index: u.Index, Total: u.Total}
			if u.Done {
				ev.Type = EventCellFinished
				if u.Run != nil {
					ev.Cycles = u.Run.Cycles
					s.metrics.observeCellHost(j.Tenant, u.Mode.String(), u.Run.HostNS)
				}
				if u.Err != nil {
					ev.Error = u.Err.Error()
				}
			}
			s.appendEvent(j, ev)
		},
	}
	rows, err := runner.RunMatrix(ctx, cfg, benches, j.modes)
	spent := sweepCycles(rows, j.modes)
	if err != nil {
		if f := trap.As(err); f != nil {
			return nil, spent, trapError(f)
		}
		if ctx.Err() != nil || errors.Is(err, dbt.ErrInterrupted) {
			return nil, spent, s.ctxError(ctx)
		}
		return nil, spent, &APIError{Code: CodeHostError, Message: err.Error()}
	}

	res := &JobResult{
		Table:   renderTable(j.Req.Kind, rows, j.modes),
		Cells:   len(rows) * len(j.modes),
		Metrics: obs.Snapshot{},
	}
	for _, r := range rows {
		for _, m := range j.modes {
			if c, ok := r.Cycles[m]; ok {
				res.Metrics.Add(r.Stats[m].Snapshot(c))
			}
		}
	}
	if j.Req.Detect {
		res.DetectAlarms = int(alarms.Load())
		res.Metrics["detect.alarms"] = uint64(res.DetectAlarms)
	}
	return res, spent, nil
}

// detectBench wraps one sweep bench so each of its cells runs with a
// private online detector teed into the machine's event stream. An
// alarm increments the job's count and lands on the event stream; the
// cell's guest-visible results are untouched (the tracer rides the
// observability plane — cycle counts are pinned identical by the
// harness differential tests).
func (s *Server) detectBench(j *Job, b harness.Bench, alarms *atomic.Int64) harness.Bench {
	inner := b.Run
	return harness.Bench{
		Name: b.Name,
		Run: func(ctx context.Context, cfg dbt.Config, arts *harness.Artifacts) (*harness.KernelRun, error) {
			det := detect.New(detect.Config{})
			cfg.Tracer = obs.New(obs.LevelSpec, det)
			run, err := inner(ctx, cfg, arts)
			_ = cfg.Tracer.Close()
			if err != nil {
				return nil, err
			}
			if rep := det.Report(); rep.Alarm {
				alarms.Add(1)
				s.appendEvent(j, JobEvent{Type: EventDetectAlarm, Bench: b.Name,
					Mode: cfg.Mitigation.String(), Alarm: true,
					Confidence: rep.Confidence, AlarmCycle: rep.AlarmCycle})
			}
			return run, nil
		},
	}
}

// sweepCycles totals the simulated cycles of every completed cell —
// partial rows from a failed or interrupted matrix are metered too.
func sweepCycles(rows []*harness.Row, modes []core.Mode) uint64 {
	var total uint64
	for _, r := range rows {
		for _, m := range modes {
			total += r.Cycles[m]
		}
	}
	return total
}

// renderTable renders a sweep result byte-identically to the gbbench
// stdout for the same experiment — the contract the serve smoke test
// diffs against a local run.
func renderTable(kind string, rows []*harness.Row, modes []core.Mode) string {
	table := harness.FormatRows(rows, modes)
	if kind == KindFig4 {
		return "Figure 4 — slowdown vs. unsafe execution (lower is better)\n" +
			"columns: unsafe baseline cycles; then % of unsafe time per countermeasure\n" +
			"\n" + table
	}
	return table
}

// trapError maps a structured guest trap onto the wire.
func trapError(f *trap.Fault) *APIError {
	return &APIError{
		Code:     CodeGuestTrap,
		Message:  f.Error(),
		TrapKind: f.Kind.String(),
		GuestPC:  f.PC,
		Cycle:    f.Cycle,
	}
}

// ctxError distinguishes a deadline kill from a cancellation.
func (s *Server) ctxError(ctx context.Context) *APIError {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return &APIError{Code: CodeDeadline, Message: "job deadline exceeded; machine interrupted and released"}
	}
	return &APIError{Code: CodeCanceled, Message: "job canceled; machine interrupted and released"}
}
