package serve

import (
	"context"
	"io"
	"log"
	"strings"
	"testing"
	"time"

	"ghostbusters/internal/trap"
)

// quickProg exits immediately with code 42.
const quickProg = "main:\n\tli a0, 42\n\tecall\n"

// slowProg loops for ~hundreds of millions of cycles — far past any
// budget or deadline a test sets, so only the enforcement hook can end
// it promptly.
const slowProg = `
main:
	li s1, 0
	li s2, 100000000
loop:
	addi s1, s1, 1
	blt s1, s2, loop
	li a0, 7
	ecall
`

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Workers:    2,
		QueueDepth: 8,
		JobTimeout: 30 * time.Second,
		Log:        log.New(io.Discard, "", 0),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// waitJob blocks until the job is terminal and returns its wire view.
func waitJob(t *testing.T, s *Server, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status()
}

func TestAdmissionValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"no tenant", JobRequest{Kind: KindRun, Program: quickProg}},
		{"unknown kind", JobRequest{Tenant: "a", Kind: "mystery"}},
		{"run without program", JobRequest{Tenant: "a", Kind: KindRun}},
		{"kernel without name", JobRequest{Tenant: "a", Kind: KindKernel}},
		{"bad mode", JobRequest{Tenant: "a", Kind: KindRun, Program: quickProg, Mode: "warp-speed"}},
		{"bad sweep mode", JobRequest{Tenant: "a", Kind: KindFig4, Modes: []string{"nope"}}},
		{"duplicate mode", JobRequest{Tenant: "a", Kind: KindFig4, Modes: []string{"unsafe", "unsafe"}}},
		{"negative n", JobRequest{Tenant: "a", Kind: KindFig4, N: -1}},
		{"negative retries", JobRequest{Tenant: "a", Kind: KindRun, Program: quickProg, Retries: -1}},
		{"inject rate > 1", JobRequest{Tenant: "a", Kind: KindRun, Program: quickProg, Inject: &InjectSpec{CacheRate: 1.5}}},
		{"oversized program", JobRequest{Tenant: "a", Kind: KindRun, Program: "main:\n" + strings.Repeat("\tnop\n", 1<<19)}},
	}
	for _, tc := range cases {
		j, status, aerr := s.admit(tc.req)
		if j != nil || status != 400 || aerr == nil || aerr.Code != CodeInvalid {
			t.Errorf("%s: admit = (%v, %d, %v), want 400 %s", tc.name, j, status, aerr, CodeInvalid)
		}
	}
}

func TestMaxInFlightQuota(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Tenants = map[string]Quota{"small": {MaxInFlight: 1}}
	})
	s.testHookBeforeRun = func(*Job) { <-gate }

	first, status, aerr := s.admit(JobRequest{Tenant: "small", Kind: KindRun, Program: quickProg})
	if aerr != nil {
		t.Fatalf("first admit rejected: %d %v", status, aerr)
	}
	_, status, aerr = s.admit(JobRequest{Tenant: "small", Kind: KindRun, Program: quickProg})
	if status != 429 || aerr == nil || aerr.Code != CodeTooManyJobs {
		t.Fatalf("second admit = (%d, %v), want 429 %s", status, aerr, CodeTooManyJobs)
	}
	if aerr.RetryAfterSec <= 0 {
		t.Fatalf("load-shed rejection has no Retry-After hint: %+v", aerr)
	}
	// Another tenant is not affected by small's cap.
	other, status, aerr := s.admit(JobRequest{Tenant: "big", Kind: KindRun, Program: quickProg})
	if aerr != nil {
		t.Fatalf("other tenant rejected: %d %v", status, aerr)
	}
	close(gate)
	if st := waitJob(t, s, first); st.State != StateDone {
		t.Fatalf("first job ended %s (%v), want done", st.State, st.Error)
	}
	if st := waitJob(t, s, other); st.State != StateDone {
		t.Fatalf("other job ended %s (%v), want done", st.State, st.Error)
	}
	// The slot is free again after settlement.
	if _, status, aerr = s.admit(JobRequest{Tenant: "small", Kind: KindRun, Program: quickProg}); aerr != nil {
		t.Fatalf("post-settle admit rejected: %d %v", status, aerr)
	}
}

func TestCycleBudgetEnforcedBySimulator(t *testing.T) {
	const budget = 50_000
	s := newTestServer(t, func(c *Config) {
		c.Tenants = map[string]Quota{"metered": {CycleBudget: budget}}
	})
	j, _, aerr := s.admit(JobRequest{Tenant: "metered", Kind: KindRun, Program: slowProg})
	if aerr != nil {
		t.Fatalf("admit: %v", aerr)
	}
	if j.cycleAllowance != budget {
		t.Fatalf("allowance = %d, want the full budget %d", j.cycleAllowance, budget)
	}
	st := waitJob(t, s, j)
	if st.State != StateFailed || st.Error == nil || st.Error.TrapKind != trap.CycleBudgetExceeded.String() {
		t.Fatalf("over-budget job ended %s (%+v), want failed with %s", st.State, st.Error, trap.CycleBudgetExceeded)
	}

	// The ledger settled at the clamped allowance, so the tenant is now
	// exhausted and further work is refused with a structured 403.
	s.mu.Lock()
	used := s.tenants["metered"].cyclesUsed
	reserved := s.tenants["metered"].cyclesReserved
	s.mu.Unlock()
	if used != budget || reserved != 0 {
		t.Fatalf("ledger used=%d reserved=%d, want used=%d reserved=0", used, reserved, budget)
	}
	_, status, aerr := s.admit(JobRequest{Tenant: "metered", Kind: KindRun, Program: quickProg})
	if status != 403 || aerr == nil || aerr.Code != CodeCycleExhausted {
		t.Fatalf("post-exhaustion admit = (%d, %v), want 403 %s", status, aerr, CodeCycleExhausted)
	}
}

func TestRequestMaxCyclesOnlyTightens(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Tenants = map[string]Quota{
			"free":    {},
			"metered": {CycleBudget: 1000},
		}
	})
	// An unmetered tenant's own cap becomes the allowance.
	j, _, aerr := s.admit(JobRequest{Tenant: "free", Kind: KindRun, Program: slowProg, MaxCycles: 20_000})
	if aerr != nil {
		t.Fatalf("admit: %v", aerr)
	}
	if j.cycleAllowance != 20_000 {
		t.Fatalf("self-capped allowance = %d, want 20000", j.cycleAllowance)
	}
	if st := waitJob(t, s, j); st.State != StateFailed || st.Error.TrapKind != trap.CycleBudgetExceeded.String() {
		t.Fatalf("self-capped job ended %+v, want cycle-budget trap", st)
	}
	// A metered tenant cannot widen its allowance past the budget.
	j2, _, aerr := s.admit(JobRequest{Tenant: "metered", Kind: KindRun, Program: quickProg, MaxCycles: 1 << 40})
	if aerr != nil {
		t.Fatalf("admit: %v", aerr)
	}
	if j2.cycleAllowance != 1000 {
		t.Fatalf("widened allowance = %d, want clamp at 1000", j2.cycleAllowance)
	}
	waitJob(t, s, j2)
}

func TestMemBudgetIsCumulative(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Tenants = map[string]Quota{"tight": {MemBudget: 16 << 20}} // exactly one machine
	})
	j, _, aerr := s.admit(JobRequest{Tenant: "tight", Kind: KindRun, Program: quickProg})
	if aerr != nil {
		t.Fatalf("first admit: %v", aerr)
	}
	if st := waitJob(t, s, j); st.State != StateDone {
		t.Fatalf("first job: %+v", st)
	}
	// The charge is cumulative: finishing the first job does not refund
	// its memory, so the second is refused.
	_, status, aerr := s.admit(JobRequest{Tenant: "tight", Kind: KindRun, Program: quickProg})
	if status != 403 || aerr == nil || aerr.Code != CodeMemExhausted {
		t.Fatalf("second admit = (%d, %v), want 403 %s", status, aerr, CodeMemExhausted)
	}
}

func TestQueueFullShedsLoad(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	s.testHookBeforeRun = func(*Job) { <-gate }

	// First job occupies the lone worker; second fills the queue.
	if _, _, aerr := s.admit(JobRequest{Tenant: "a", Kind: KindRun, Program: quickProg}); aerr != nil {
		t.Fatalf("first admit: %v", aerr)
	}
	deadline := time.After(10 * time.Second)
	for {
		s.mu.Lock()
		running := s.running
		s.mu.Unlock()
		if running == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("worker never picked up the first job")
		case <-time.After(time.Millisecond):
		}
	}
	if _, _, aerr := s.admit(JobRequest{Tenant: "b", Kind: KindRun, Program: quickProg}); aerr != nil {
		t.Fatalf("second admit: %v", aerr)
	}
	_, status, aerr := s.admit(JobRequest{Tenant: "c", Kind: KindRun, Program: quickProg})
	if status != 429 || aerr == nil || aerr.Code != CodeQueueFull {
		t.Fatalf("third admit = (%d, %v), want 429 %s", status, aerr, CodeQueueFull)
	}
	if aerr.RetryAfterSec <= 0 {
		t.Fatalf("queue-full rejection has no Retry-After hint: %+v", aerr)
	}
}

func TestDrainingRejectsSubmits(t *testing.T) {
	s := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, status, aerr := s.admit(JobRequest{Tenant: "a", Kind: KindRun, Program: quickProg})
	if status != 503 || aerr == nil || aerr.Code != CodeDraining {
		t.Fatalf("admit while draining = (%d, %v), want 503 %s", status, aerr, CodeDraining)
	}
}
