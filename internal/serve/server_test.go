package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
)

func postJob(t *testing.T, ts *httptest.Server, req JobRequest, query string) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
	}
	return resp, st
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestRunJobOverHTTP(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindRun, Program: quickProg}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job = %+v, want done with a result", st)
	}
	if st.Result.ExitCode != 42 || st.Result.Cycles == 0 {
		t.Fatalf("result = %+v, want exit 42 and nonzero cycles", st.Result)
	}
	if len(st.Result.Metrics) == 0 {
		t.Fatalf("result has no metrics snapshot")
	}

	// Status and output are retrievable after the fact.
	code, body := getBody(t, ts, "/v1/jobs/"+st.ID)
	if code != http.StatusOK || !strings.Contains(body, `"state": "done"`) {
		t.Fatalf("status endpoint: %d %q", code, body)
	}
	code, body = getBody(t, ts, "/v1/jobs/"+st.ID+"/output")
	if code != http.StatusOK || !strings.HasPrefix(body, "exit=42 cycles=") {
		t.Fatalf("output endpoint: %d %q", code, body)
	}
	if code, _ := getBody(t, ts, "/v1/jobs/j-999999"); code != http.StatusNotFound {
		t.Fatalf("missing job status = %d, want 404", code)
	}
}

// TestFig4OverHTTPMatchesLocal is the wire contract: the fig4 table a
// job returns must be byte-identical to what gbbench prints for the
// same experiment locally.
func TestFig4OverHTTPMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig4 matrix in -short mode")
	}
	const n = 4
	s := newTestServer(t, func(c *Config) { c.JobTimeout = 120 * time.Second })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Local reference, computed the way gbbench -exp fig4 does.
	runner := &harness.Runner{Workers: 2, Artifacts: harness.NewArtifacts()}
	rows, err := runner.RunMatrix(context.Background(), dbt.DefaultConfig(), harness.Fig4Benches(n), harness.Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	want := "Figure 4 — slowdown vs. unsafe execution (lower is better)\n" +
		"columns: unsafe baseline cycles; then % of unsafe time per countermeasure\n" +
		"\n" + harness.FormatRows(rows, harness.Fig4Modes)

	resp, st := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindFig4, N: n}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("fig4 job = %d %+v", resp.StatusCode, st)
	}
	code, got := getBody(t, ts, "/v1/jobs/"+st.ID+"/output")
	if code != http.StatusOK {
		t.Fatalf("output status %d", code)
	}
	if got != want {
		t.Fatalf("fig4 over HTTP diverges from local run:\n--- local ---\n%s\n--- http ---\n%s", want, got)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindRun, Program: slowProg}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}
	final := waitJob(t, s, s.lookup(st.ID))
	if final.State != StateCanceled || final.Error == nil || final.Error.Code != CodeCanceled {
		t.Fatalf("canceled job = %+v, want canceled state", final)
	}
}

func TestJobDeadline(t *testing.T) {
	s := newTestServer(t, nil)
	j, _, aerr := s.admit(JobRequest{Tenant: "alice", Kind: KindRun, Program: slowProg, TimeoutMS: 50})
	if aerr != nil {
		t.Fatal(aerr)
	}
	st := waitJob(t, s, j)
	if st.State != StateFailed || st.Error == nil || st.Error.Code != CodeDeadline {
		t.Fatalf("deadline job = %+v, want failed %s", st, CodeDeadline)
	}
}

func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, nil)
	s.testHookBeforeRun = func(j *Job) {
		if j.Req.Kind == KindRun && strings.Contains(j.Req.Program, "li a0, 13") {
			panic("poisoned request")
		}
	}
	poison, _, aerr := s.admit(JobRequest{Tenant: "mallory", Kind: KindRun, Program: "main:\n\tli a0, 13\n\tecall\n"})
	if aerr != nil {
		t.Fatal(aerr)
	}
	st := waitJob(t, s, poison)
	if st.State != StateFailed || st.Error == nil || st.Error.Code != CodePanic {
		t.Fatalf("poisoned job = %+v, want failed %s", st, CodePanic)
	}
	// The worker that recovered is still serving.
	for i := 0; i < 4; i++ {
		j, _, aerr := s.admit(JobRequest{Tenant: "alice", Kind: KindRun, Program: quickProg})
		if aerr != nil {
			t.Fatal(aerr)
		}
		if st := waitJob(t, s, j); st.State != StateDone {
			t.Fatalf("job after panic = %+v, want done", st)
		}
	}
	s.metrics.mu.Lock()
	panics := s.metrics.panics
	s.metrics.mu.Unlock()
	if panics != 1 {
		t.Fatalf("panic counter = %d, want 1", panics)
	}
}

func TestFaultInjectionFailsAfterRetries(t *testing.T) {
	s := newTestServer(t, nil)
	// A certain spurious interrupt every poll window kills every
	// attempt, so the retry budget runs dry and the transient trap is
	// surfaced (translation failures degrade to interpretation instead).
	j, _, aerr := s.admit(JobRequest{
		Tenant: "chaos", Kind: KindRun, Program: slowProg,
		Inject:  &InjectSpec{Seed: 7, InterruptRate: 1},
		Retries: 2,
	})
	if aerr != nil {
		t.Fatal(aerr)
	}
	st := waitJob(t, s, j)
	if st.State != StateFailed || st.Error == nil || st.Error.Code != CodeGuestTrap {
		t.Fatalf("always-faulting job = %+v, want failed %s", st, CodeGuestTrap)
	}
}

func TestHealthReadyAndMetrics(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Tenants = map[string]Quota{"alice": {CycleBudget: 1 << 30}}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := getBody(t, ts, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := getBody(t, ts, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("readyz = %d %q", code, body)
	}

	resp, st := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindRun, Program: quickProg}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("job = %d %+v", resp.StatusCode, st)
	}
	code, body := getBody(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, line := range []string{
		"gbserve_jobs_submitted_total 1",
		`gbserve_jobs_completed_total{state="done"} 1`,
		`gbserve_tenant_in_flight{tenant="alice"} 0`,
		`gbserve_tenant_cycles_used{tenant="alice"} `,
		"gbserve_draining 0",
		"gb_sim_cycles ",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics missing %q:\n%s", line, body)
		}
	}

	// Drain: readyz flips, metrics report it, submits shed.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := getBody(t, ts, "/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("readyz while draining = %d %q", code, body)
	}
	if resp, _ := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindRun, Program: quickProg}, ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if code, body := getBody(t, ts, "/metrics"); code != 200 || !strings.Contains(body, "gbserve_draining 1") {
		t.Fatalf("metrics while draining: %d\n%s", code, body)
	}
}

func TestDrainCancelsStragglers(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DrainTimeout = 200 * time.Millisecond
	})
	j, _, aerr := s.admit(JobRequest{Tenant: "alice", Kind: KindRun, Program: slowProg})
	if aerr != nil {
		t.Fatal(aerr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("drain took %v; the straggler was not cancelled", elapsed)
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	if st.State != StateCanceled {
		t.Fatalf("straggler ended %+v, want canceled", st)
	}
}

func TestKernelSweepOverHTTP(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.JobTimeout = 120 * time.Second })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{
		Tenant: "alice", Kind: KindKernel, Kernel: "gemm", N: 4,
		Modes: []string{"unsafe", "ghostbusters"},
	}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone || st.Result == nil {
		t.Fatalf("kernel job = %d %+v", resp.StatusCode, st)
	}
	if st.Result.Cells != 2 {
		t.Fatalf("cells = %d, want 2", st.Result.Cells)
	}
	if !strings.Contains(st.Result.Table, "gemm") {
		t.Fatalf("table does not mention the kernel:\n%s", st.Result.Table)
	}
	if st.Result.Metrics["sim.cycles"] == 0 {
		t.Fatalf("sweep metrics have no cycles: %v", st.Result.Metrics)
	}
}

func TestSubmitRejectsMalformedJSON(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error *APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == nil || e.Error.Code != CodeInvalid {
		t.Fatalf("malformed submit body: %+v err=%v", e, err)
	}
}

func TestRetryAfterHeaderOnShedding(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	s.testHookBeforeRun = func(*Job) { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJob(t, ts, JobRequest{Tenant: "a", Kind: KindRun, Program: quickProg}, "")
	deadline := time.After(10 * time.Second)
	for {
		s.mu.Lock()
		running := s.running
		s.mu.Unlock()
		if running == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("worker never started")
		case <-time.After(time.Millisecond):
		}
	}
	postJob(t, ts, JobRequest{Tenant: "b", Kind: KindRun, Program: quickProg}, "")
	resp, _ := postJob(t, ts, JobRequest{Tenant: "c", Kind: KindRun, Program: quickProg}, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response has no Retry-After header")
	}
}
