package serve

import (
	"encoding/json"
	"net/http"
)

// Job event types streamed by GET /v1/jobs/{id}/events.
const (
	// EventCellStarted / EventCellFinished bracket one matrix cell
	// (run jobs are a single cell).
	EventCellStarted  = "cell_started"
	EventCellFinished = "cell_finished"
	// EventDetectAlarm is emitted when a cell's online detector fired
	// (jobs submitted with "detect": true).
	EventDetectAlarm = "detect_alarm"
	// EventJobFinished is always the stream's last event.
	EventJobFinished = "job_finished"
)

// JobEvent is one NDJSON row of a job's progress stream. Seq is a
// dense per-job sequence number, so a reconnecting client can detect
// gaps (the buffer is capped; see maxJobEvents).
type JobEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`

	// Cell identity, for cell_* and detect_alarm events.
	Bench string `json:"bench,omitempty"`
	Mode  string `json:"mode,omitempty"`
	Index int    `json:"index,omitempty"`
	Total int    `json:"total,omitempty"`

	// cell_finished detail.
	Cycles uint64 `json:"cycles,omitempty"`
	Error  string `json:"error,omitempty"`

	// detect_alarm detail.
	Alarm      bool    `json:"alarm,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	AlarmCycle uint64  `json:"alarm_cycle,omitempty"`

	// job_finished detail: the terminal state.
	State string `json:"state,omitempty"`
}

// maxJobEvents bounds the per-job event buffer (a fig4 sweep is ~300
// events; the cap only matters for adversarial mode lists). Once full,
// further cell events are dropped — the terminal job_finished event is
// always appended, so streams still end cleanly.
const maxJobEvents = 4096

// appendEventLocked records one event and wakes every streaming
// reader; the caller holds s.mu.
func (s *Server) appendEventLocked(j *Job, ev JobEvent) {
	if len(j.events) >= maxJobEvents && ev.Type != EventJobFinished {
		return
	}
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
}

// appendEvent is appendEventLocked for callers not holding s.mu — the
// harness worker goroutines' OnCell callbacks land here.
func (s *Server) appendEvent(j *Job, ev JobEvent) {
	s.mu.Lock()
	s.appendEventLocked(j, ev)
	s.mu.Unlock()
}

// handleEvents streams a job's progress as NDJSON: everything buffered
// so far immediately, then live events as they happen, ending with the
// job_finished row. Reconnecting replays the full buffer (events are
// retained with the job).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	w.Header().Set("X-Job-Id", j.ID)
	w.Header().Set("X-Tenant", j.Tenant)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := 0
	for {
		s.mu.Lock()
		pending := j.events[next:] // append-only: the snapshot is stable
		wake := j.wake
		terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
		s.mu.Unlock()

		for _, ev := range pending {
			if err := enc.Encode(ev); err != nil {
				return
			}
			next++
		}
		if len(pending) > 0 && flusher != nil {
			flusher.Flush()
		}
		// finish() appends job_finished under the same lock that sets
		// the terminal state, so a drained buffer on a terminal job is
		// complete.
		if terminal && len(pending) == 0 {
			return
		}
		if len(pending) > 0 {
			continue // drain everything buffered before sleeping
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
