package serve

import (
	"context"
	"fmt"
	"time"

	"ghostbusters/internal/hspan"
	"ghostbusters/internal/polybench"
)

// Quota bounds one tenant. Zero fields take the package defaults noted
// per field; a budget of 0 means unlimited (quotas restrict, they do
// not meter by default).
type Quota struct {
	// MaxInFlight caps the tenant's jobs that are queued or running at
	// once — the admission-time form of "max concurrent runs" (a job
	// occupies a worker only while running, but a tenant cannot stage
	// unbounded work either). 0 means 8, < 0 means unlimited.
	MaxInFlight int

	// CycleBudget is the tenant's cumulative simulated-cycle budget
	// across all of its jobs. Admission carves a per-job allowance out
	// of the remainder and enforces it through the machine's MaxCycles
	// hook, so the sum of all simulated work can never exceed the
	// budget. 0 = unlimited.
	CycleBudget uint64

	// MemBudget is the tenant's cumulative guest-memory budget in
	// bytes: every matrix cell charges the machine's MemSize at
	// admission. 0 = unlimited.
	MemBudget uint64

	// MaxJobCycles clamps the per-job cycle allowance below the
	// remaining budget (0 = no extra clamp).
	MaxJobCycles uint64
}

func (q Quota) maxInFlight() int {
	switch {
	case q.MaxInFlight == 0:
		return 8
	case q.MaxInFlight < 0:
		return 1 << 30
	default:
		return q.MaxInFlight
	}
}

// tenantState is the server-side ledger of one tenant.
type tenantState struct {
	name  string
	quota Quota

	inFlight int

	cyclesUsed     uint64 // settled simulated cycles of finished jobs
	cyclesReserved uint64 // allowances of admitted, unfinished jobs
	memUsed        uint64 // cumulative guest-memory bytes charged
	rejects        uint64
	detectAlarms   uint64 // detector alarms across the tenant's finished jobs
}

// tenant returns (creating on first use) the ledger for a name; caller
// holds s.mu.
func (s *Server) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		q, ok := s.cfg.Tenants[name]
		if !ok {
			q = s.cfg.DefaultQuota
		}
		t = &tenantState{name: name, quota: q}
		s.tenants[name] = t
	}
	return t
}

// cellCount is how many matrix cells a validated request will run —
// the unit both budgets are charged in.
func (s *Server) cellCount(req *JobRequest, nmodes int) int {
	switch req.Kind {
	case KindRun:
		return 1
	case KindKernel:
		return nmodes
	default: // KindFig4: every kernel plus the two Spectre PoCs
		return (len(polybench.All()) + 2) * nmodes
	}
}

// admit validates the request, applies the tenant's quotas, reserves
// its grants and enqueues the job. The returned APIError (with its
// HTTP status) is the structured rejection; admitted jobs come back in
// the queued state.
func (s *Server) admit(req JobRequest) (*Job, int, *APIError) {
	admitStart := s.spans.Now()
	modes, aerr := req.validate()
	if aerr != nil {
		return nil, 400, aerr
	}
	cells := s.cellCount(&req, len(modes))
	memCharge := uint64(cells) * s.base.MemSize

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 503, &APIError{Code: CodeDraining, Message: "server is draining; not accepting jobs"}
	}
	t := s.tenant(req.Tenant)

	if t.inFlight >= t.quota.maxInFlight() {
		t.rejects++
		s.metrics.reject(CodeTooManyJobs)
		return nil, 429, &APIError{
			Code:          CodeTooManyJobs,
			Message:       fmt.Sprintf("tenant %s has %d jobs in flight (max %d)", t.name, t.inFlight, t.quota.maxInFlight()),
			RetryAfterSec: 1,
		}
	}
	if t.quota.MemBudget > 0 && t.memUsed+memCharge > t.quota.MemBudget {
		t.rejects++
		s.metrics.reject(CodeMemExhausted)
		return nil, 403, &APIError{
			Code: CodeMemExhausted,
			Message: fmt.Sprintf("tenant %s guest-memory budget exhausted: %d of %d bytes used, job needs %d",
				t.name, t.memUsed, t.quota.MemBudget, memCharge),
		}
	}
	var allowance uint64 // 0 = unlimited
	if t.quota.CycleBudget > 0 {
		remaining := t.quota.CycleBudget - t.cyclesUsed - t.cyclesReserved
		if t.cyclesUsed+t.cyclesReserved >= t.quota.CycleBudget {
			remaining = 0
		}
		if remaining == 0 {
			t.rejects++
			s.metrics.reject(CodeCycleExhausted)
			return nil, 403, &APIError{
				Code: CodeCycleExhausted,
				Message: fmt.Sprintf("tenant %s cycle budget exhausted: %d used + %d reserved of %d",
					t.name, t.cyclesUsed, t.cyclesReserved, t.quota.CycleBudget),
			}
		}
		allowance = remaining
		if t.quota.MaxJobCycles > 0 && allowance > t.quota.MaxJobCycles {
			allowance = t.quota.MaxJobCycles
		}
	}
	if req.MaxCycles > 0 && (allowance == 0 || req.MaxCycles < allowance) {
		// The request may tighten its own cap, never widen it. When the
		// tenant is unmetered this *is* the allowance.
		allowance = req.MaxCycles
	}

	s.nextID++
	ctx, cancel := context.WithCancel(s.rootCtx)
	j := &Job{
		ID:             fmt.Sprintf("j-%06d", s.nextID),
		Tenant:         req.Tenant,
		Req:            req,
		ctx:            ctx,
		cancel:         cancel,
		done:           make(chan struct{}),
		wake:           make(chan struct{}),
		spanWake:       make(chan struct{}),
		cycleAllowance: allowance,
		memCharge:      memCharge,
		cells:          cells,
		modes:          modes,
		state:          StateQueued,
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		t.rejects++
		s.metrics.reject(CodeQueueFull)
		return nil, 429, &APIError{
			Code:          CodeQueueFull,
			Message:       fmt.Sprintf("admission queue full (%d deep); retry shortly", cap(s.queue)),
			RetryAfterSec: 2,
		}
	}
	// The job is in: reserve its grants and register it.
	t.inFlight++
	if t.quota.CycleBudget > 0 {
		t.cyclesReserved += allowance
	}
	t.memUsed += memCharge
	s.jobs[j.ID] = j
	s.queued++
	s.metrics.submit()
	// Open the job's span tree: a fork whose observer is the job's
	// /trace buffer (safe under s.mu — appendSpan takes only the leaf
	// spanMu), the admission decision as an already-finished child, and
	// the queue-wait span the dequeuing worker will close. Everything
	// the job's execution emits hangs off j.root.
	jt := s.spans.Fork(j.appendSpan)
	j.root = jt.Start("job",
		hspan.Str("job", j.ID), hspan.Str("tenant", j.Tenant),
		hspan.Str("kind", req.Kind), hspan.Int("cells", int64(cells)))
	j.rootID = j.root.ID()
	j.root.Emit("admission", admitStart, jt.Now(), hspan.Int("allowance", int64(allowance)))
	j.queueSpan = j.root.Child("queue-wait")
	s.log.Printf("serve: %s admitted: tenant=%s kind=%s cells=%d allowance=%d", j.ID, j.Tenant, req.Kind, cells, allowance)
	return j, 202, nil
}

// jobTimeout resolves a request's effective deadline: the server's job
// timeout by default, and never more than it.
func (s *Server) jobTimeout(req *JobRequest) time.Duration {
	if req.TimeoutMS > 0 {
		d := time.Duration(req.TimeoutMS) * time.Millisecond
		if d < s.timeout {
			return d
		}
	}
	return s.timeout
}
