package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ghostbusters/internal/hspan"
)

// traceTree fetches a job's trace and reconstructs the span forest.
func traceTree(t *testing.T, ts *httptest.Server, id string) []*hspan.Node {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Job-Id"); got != id {
		t.Fatalf("trace X-Job-Id = %q, want %q", got, id)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("trace response has no X-Request-Id")
	}
	recs, err := hspan.ParseJSONL(resp.Body)
	if err != nil {
		t.Fatalf("parsing trace: %v", err)
	}
	return hspan.BuildTree(recs)
}

// requireChild finds exactly-one child span by name under a node.
func requireChild(t *testing.T, n *hspan.Node, name string) *hspan.Node {
	t.Helper()
	var found *hspan.Node
	for _, c := range n.Children {
		if c.Name == name {
			if found != nil {
				t.Fatalf("span %q has multiple %q children", n.Name, name)
			}
			found = c
		}
	}
	if found == nil {
		names := make([]string, 0, len(n.Children))
		for _, c := range n.Children {
			names = append(names, c.Name)
		}
		t.Fatalf("span %q has no %q child (children: %v)", n.Name, name, names)
	}
	return found
}

// hotProg loops long enough for its block to cross the translation
// threshold, so the attempt span carries a translate/execute split
// (quickProg is interpreted end to end and never translates).
const hotProg = `
main:
	li s1, 0
	li s2, 20000
loop:
	addi s1, s1, 1
	blt s1, s2, loop
	li a0, 5
	ecall
`

// TestTraceReplayAfterCompletion proves the replay path: a finished
// job's trace is the complete span tree — admission, queue wait, the
// attempt with its translate/execute split — terminated by the root
// record, and a second fetch replays it identically.
func TestTraceReplayAfterCompletion(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindRun, Program: hotProg}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("job = %d %+v", resp.StatusCode, st)
	}
	if got := resp.Header.Get("X-Job-Id"); got != st.ID {
		t.Fatalf("submit X-Job-Id = %q, want %q", got, st.ID)
	}
	if got := resp.Header.Get("X-Tenant"); got != "alice" {
		t.Fatalf("submit X-Tenant = %q", got)
	}

	for fetch := 0; fetch < 2; fetch++ {
		roots := traceTree(t, ts, st.ID)
		if len(roots) != 1 || roots[0].Name != "job" {
			t.Fatalf("fetch %d: got %d roots, want one job span", fetch, len(roots))
		}
		root := roots[0]
		if a, ok := root.Attr("tenant"); !ok || a.Str != "alice" {
			t.Fatalf("root tenant attr = %+v", a)
		}
		if a, ok := root.Attr("state"); !ok || a.Str != StateDone {
			t.Fatalf("root state attr = %+v, want done", a)
		}
		requireChild(t, root, "admission")
		qw := requireChild(t, root, "queue-wait")
		if qw.End < qw.Start {
			t.Fatalf("queue-wait span runs backwards: %d..%d", qw.Start, qw.End)
		}
		at := requireChild(t, root, "attempt")
		if a, ok := at.Attr("outcome"); !ok || a.Str != "ok" {
			t.Fatalf("attempt outcome = %+v", a)
		}
		tr := requireChild(t, at, "translate")
		ex := requireChild(t, at, "execute")
		if tr.End != ex.Start {
			t.Fatalf("translate/execute not consecutive: translate ends %d, execute starts %d", tr.End, ex.Start)
		}
		if _, ok := ex.Attr("cycles"); !ok {
			t.Fatal("execute span has no cycles attr")
		}
	}
}

// TestTraceLiveStream opens the trace while the job is still running:
// the stream must deliver the buffered prefix immediately, stay open,
// then terminate on its own once the root record lands.
func TestTraceLiveStream(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()

	s := newTestServer(t, nil)
	s.testHookBeforeRun = func(*Job) { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{Tenant: "bob", Kind: KindRun, Program: quickProg}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	tr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	sc := bufio.NewScanner(tr.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	// Header plus the admission record are available before the job has
	// run at all (the worker is gated).
	if !sc.Scan() {
		t.Fatalf("no header line: %v", sc.Err())
	}
	if !strings.Contains(sc.Text(), hspan.Schema) {
		t.Fatalf("header %q does not carry the schema", sc.Text())
	}
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	if !strings.Contains(sc.Text(), `"admission"`) {
		t.Fatalf("first record %q, want the admission span", sc.Text())
	}

	// Release the worker; the stream must terminate with the root last.
	release()
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("stream ended without further records")
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"name":"job"`) {
		t.Fatalf("last record %q, want the job root span", last)
	}
}

// TestTraceCanceledJob: a job canceled before it ran still yields a
// complete, terminated trace whose root carries the canceled state.
func TestTraceCanceledJob(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()

	// One worker, gated: the second job is guaranteed to be canceled
	// while still queued.
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	s.testHookBeforeRun = func(*Job) { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first := postJob(t, ts, JobRequest{Tenant: "carol", Kind: KindRun, Program: quickProg}, "")
	_, second := postJob(t, ts, JobRequest{Tenant: "carol", Kind: KindRun, Program: quickProg}, "")

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	release()

	for _, id := range []string{first.ID, second.ID} {
		j := s.lookup(id)
		waitJob(t, s, j)
	}

	roots := traceTree(t, ts, second.ID)
	if len(roots) != 1 {
		t.Fatalf("canceled job: %d roots, want 1", len(roots))
	}
	root := roots[0]
	if a, ok := root.Attr("state"); !ok || a.Str != StateCanceled {
		t.Fatalf("canceled root state attr = %+v", a)
	}
	qw := requireChild(t, root, "queue-wait")
	if a, ok := qw.Attr("outcome"); !ok || a.Str != "canceled" {
		t.Fatalf("queue-wait outcome = %+v, want canceled", a)
	}
}

// TestTraceNotFound: unknown job IDs 404 like every other job route.
func TestTraceNotFound(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := getBody(t, ts, "/v1/jobs/j-999999/trace"); code != http.StatusNotFound {
		t.Fatalf("missing job trace = %d, want 404", code)
	}
}

// TestTraceConcurrent runs many jobs on an 8-worker fleet with a live
// trace reader per job — the lock discipline (s.mu vs the per-job span
// lock) is the real subject; run it under -race.
func TestTraceConcurrent(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 8
		c.QueueDepth = 64
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const jobs = 24
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%4)
			j, _, aerr := s.admit(JobRequest{Tenant: tenant, Kind: KindRun, Program: quickProg})
			if aerr != nil {
				errs <- fmt.Errorf("admit: %v", aerr)
				return
			}
			resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + j.ID + "/trace")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			recs, err := hspan.ParseJSONL(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("%s: %v", j.ID, err)
				return
			}
			roots := hspan.BuildTree(recs)
			if len(roots) != 1 || roots[0].Name != "job" {
				errs <- fmt.Errorf("%s: %d roots", j.ID, len(roots))
				return
			}
			if a, ok := roots[0].Attr("tenant"); !ok || a.Str != tenant {
				errs <- fmt.Errorf("%s: tenant attr %+v", j.ID, a)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("concurrent trace readers did not finish")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
