// Package serve implements gbserve's core: a hardened, multi-tenant
// simulation service that accepts guest programs and experiment specs
// over HTTP/JSON and runs them on a bounded worker fleet built on the
// experiment harness.
//
// The service treats every submitted guest image as adversarial input.
// The robustness stack underneath it is the point of the package:
//
//   - Admission control and quotas (admission.go): per-tenant caps on
//     in-flight jobs and cumulative simulated-cycle and guest-memory
//     budgets. Cycle budgets are enforced through the machine's own
//     MaxCycles hook — a job is admitted with an allowance carved out
//     of its tenant's remaining budget and is killed by the simulator
//     itself if it tries to exceed it, so a tenant can never consume
//     more cycles than it was granted. A full queue sheds load with
//     429 + Retry-After instead of accepting unbounded work.
//
//   - Job lifecycle (worker.go): per-job deadlines, cancellation that
//     tears the machine down through the Interrupt hook (guest memory
//     is recycled via Machine.Release on every path), transient-fault
//     retries with the harness's capped exponential backoff, and a
//     panic-isolation boundary per job — one poisoned request returns
//     a structured error while the fleet keeps serving.
//
//   - Degradation paths: generated kernels and translated code are
//     shared across tenants through harness.Artifacts and the
//     persistent translation cache (keyed by image hash, so tenants
//     running the same image warm each other up); a corrupt cache
//     degrades to cold translation, never to an error.
//
//   - Lifecycle (drain): Shutdown stops admitting (readyz flips to
//     503), lets in-flight and queued jobs finish within the drain
//     grace, then cancels stragglers through their contexts, and only
//     returns when every worker has exited — no goroutine leaks, which
//     the soak test pins down under -race.
//
//   - Observability (metrics.go): /metrics renders the server counters
//     and the fleet-wide aggregate of every run's stable-name metrics
//     snapshot (obs.Snapshot) in Prometheus text format; /healthz and
//     /readyz separate liveness from admission readiness.
package serve

import (
	"context"
	"fmt"
	"io"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/tcache"
)

// Config parameterises a Server. The zero value is usable: default
// machine config, GOMAXPROCS workers, a 64-deep queue, permissive
// default quotas and no persistence.
type Config struct {
	// Base is the machine configuration every job starts from. The
	// zero value means dbt.DefaultConfig(). Per-job knobs (mitigation
	// mode, MaxCycles allowance, fault injection, Interrupt) are
	// layered on top per request.
	Base *dbt.Config

	// Workers is the job-fleet size (concurrently executing jobs).
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int

	// JobParallelism bounds the harness worker pool inside one sweep
	// job (a fig4 sweep fans its matrix out over this many workers).
	// <= 0 means 2.
	JobParallelism int

	// QueueDepth bounds the global admission queue; a submit that finds
	// it full is shed with 429 + Retry-After. <= 0 means 64.
	QueueDepth int

	// DefaultQuota applies to tenants not listed in Tenants. Zero
	// fields fall back to the package defaults (see Quota).
	DefaultQuota Quota

	// Tenants maps tenant names to their quotas.
	Tenants map[string]Quota

	// JobTimeout is the default and maximum per-job wall-clock
	// deadline; requests may ask for less, never more. <= 0 means 60s.
	JobTimeout time.Duration

	// DrainTimeout is how long Shutdown waits for in-flight and queued
	// jobs before cancelling them. <= 0 means 10s.
	DrainTimeout time.Duration

	// Retries / Backoff / BackoffMax / BackoffSeed configure the
	// transient-fault retry policy applied to jobs that run with fault
	// injection (see harness.Backoff). Retries <= 0 disables retrying
	// unless the request asks for its own.
	Retries     int
	Backoff     time.Duration
	BackoffMax  time.Duration
	BackoffSeed uint64

	// TransCache, when non-nil, is shared by every job of every tenant:
	// the cache key includes the image hash, inputs, mode and machine
	// configuration, so cross-tenant sharing is safe by construction
	// and a corrupt document degrades to a cold translation.
	TransCache *tcache.Cache

	// Spans, when non-nil, receives the fleet's host-time span tree
	// (job / admission / queue-wait / attempt / backoff / cell spans,
	// plus drain). nil still gets a sinkless tracer internally: spans
	// are always timed so latency histograms and the per-job
	// /v1/jobs/{id}/trace stream work without a span file configured.
	Spans *hspan.Tracer

	// Log receives service events (job lifecycle, drain progress).
	// nil discards them.
	Log *log.Logger
}

// Server is the simulation service. Create with New, expose Handler()
// over HTTP, stop with Shutdown.
type Server struct {
	cfg     Config
	base    dbt.Config
	arts    *harness.Artifacts
	log     *log.Logger
	timeout time.Duration
	workers int

	rootCtx    context.Context
	rootCancel context.CancelFunc

	// spans is never nil: Config.Spans or a sinkless fallback tracer,
	// so span timing, histograms and /trace work unconditionally.
	spans  *hspan.Tracer
	reqSeq atomic.Uint64 // request-log correlation IDs

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	tenants  map[string]*tenantState
	nextID   uint64
	queue    chan *Job
	queued   int // jobs sitting in the queue (gauge)
	running  int // jobs currently executing (gauge)

	wg sync.WaitGroup // worker fleet

	metrics serverMetrics

	// testHookBeforeRun, when set, runs inside the worker's panic
	// boundary just before a job executes — tests use it to prove the
	// isolation boundary holds.
	testHookBeforeRun func(j *Job)
}

// New validates the configuration and starts the worker fleet. The
// server is accepting as soon as New returns.
func New(cfg Config) (*Server, error) {
	base := dbt.DefaultConfig()
	if cfg.Base != nil {
		base = *cfg.Base
	}
	if base.MemSize == 0 {
		return nil, fmt.Errorf("serve: base config has MemSize 0")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = 2
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	timeout := cfg.JobTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	spans := cfg.Spans
	if spans == nil {
		spans = hspan.New(nil)
	}
	s := &Server{
		cfg:        cfg,
		base:       base,
		arts:       harness.NewArtifacts(),
		log:        logger,
		timeout:    timeout,
		workers:    workers,
		rootCtx:    ctx,
		rootCancel: cancel,
		spans:      spans,
		jobs:       make(map[string]*Job),
		tenants:    make(map[string]*tenantState),
		queue:      make(chan *Job, depth),
	}
	s.metrics.init()
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.log.Printf("serve: fleet up: %d workers, queue depth %d", workers, depth)
	return s, nil
}

// Snapshot returns the fleet-wide aggregate of every completed run's
// metrics snapshot (the stable-name observability contract).
func (s *Server) Snapshot() obs.Snapshot {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	out := make(obs.Snapshot, len(s.metrics.sim))
	out.Add(s.metrics.sim)
	return out
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the service: admission stops immediately (submits
// and readyz return 503), in-flight and queued jobs get the drain
// grace to finish, stragglers are cancelled through their contexts,
// and the call returns once every worker has exited. Shutdown is
// idempotent; ctx bounds the wait on top of the configured
// DrainTimeout.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	if !already {
		s.draining = true
		close(s.queue) // admission is gated on draining; no sends can race this
	}
	inFlight := s.queued + s.running
	s.mu.Unlock()
	var drainSpan hspan.Span
	if !already {
		drainSpan = s.spans.Start("drain", hspan.Int("in_flight", int64(inFlight)))
		s.log.Printf("serve: draining: %d jobs in flight, grace %v", inFlight, s.cfg.DrainTimeout)
	}
	defer drainSpan.End()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	grace := time.NewTimer(s.cfg.DrainTimeout)
	defer grace.Stop()
	select {
	case <-done:
	case <-grace.C:
		s.log.Printf("serve: drain grace expired, cancelling in-flight jobs")
		s.rootCancel()
		select {
		case <-done:
		case <-ctx.Done():
			return fmt.Errorf("serve: shutdown: %w", ctx.Err())
		}
	case <-ctx.Done():
		s.rootCancel()
		<-done
	}
	s.rootCancel() // release the root context either way
	s.log.Printf("serve: drained")
	return nil
}
