package serve

import (
	"net/http"

	"ghostbusters/internal/hspan"
)

// handleTrace streams a job's host-span tree as NDJSON in the
// ghostbusters/span/v1 format: the schema header line first, then one
// record per finished span — everything buffered so far immediately,
// live spans as they finish, ending when the job's root span record
// lands (always the trace's last record; finish emits it after every
// child). Reconnecting replays the full buffer, exactly like the
// events stream: spans are retained with the job.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	w.Header().Set("X-Job-Id", j.ID)
	w.Header().Set("X-Tenant", j.Tenant)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	buf := append(hspan.HeaderJSON(s.spans.Base()), '\n')
	if _, err := w.Write(buf); err != nil {
		return
	}

	next := 0
	for {
		j.spanMu.Lock()
		pending := j.spans[next:] // append-only: the snapshot is stable
		wake := j.spanWake
		done := j.spansDone
		j.spanMu.Unlock()

		for i := range pending {
			buf = pending[i].AppendJSON(buf[:0])
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
			next++
		}
		if len(pending) > 0 && flusher != nil {
			flusher.Flush()
		}
		// The root record is emitted after every child span, so a
		// drained buffer with spansDone set is the complete tree.
		if done && len(pending) == 0 {
			return
		}
		if len(pending) > 0 {
			continue // drain everything buffered before sleeping
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
