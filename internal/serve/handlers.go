package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit (202, or structured 4xx/5xx rejection)
//	GET    /v1/jobs/{id}        status (?wait=1 blocks until terminal)
//	GET    /v1/jobs/{id}/output rendered output of a finished job (text/plain)
//	GET    /v1/jobs/{id}/events live NDJSON progress stream (cells, detector alarms)
//	GET    /v1/jobs/{id}/trace  the job's host-span tree (span/v1 NDJSON, live + replay)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness (always 200 while the process serves)
//	GET    /readyz              admission readiness (503 once draining)
//	GET    /metrics             Prometheus text exposition
//
// The returned handler wraps the mux in structured request logging:
// every request is assigned a sequential X-Request-Id, and the access
// line carries the job/tenant correlation IDs the handlers annotate
// via response headers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/output", s.handleOutput)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

// logResponseWriter captures status and byte count for the access log.
// Flush is forwarded so the NDJSON streaming endpoints (events, trace)
// keep flushing per row through the wrapper.
type logResponseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *logResponseWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *logResponseWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *logResponseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests is the access-log middleware: one structured line per
// request with a sequential request ID, method, path, status, bytes,
// duration, and the job/tenant correlation IDs the handler attached
// as X-Job-Id / X-Tenant response headers.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := s.reqSeq.Add(1)
		lw := &logResponseWriter{ResponseWriter: w, status: http.StatusOK}
		lw.Header().Set("X-Request-Id", strconv.FormatUint(rid, 10))
		start := time.Now()
		next.ServeHTTP(lw, r)
		job := lw.Header().Get("X-Job-Id")
		if job == "" {
			job = "-"
		}
		tenant := lw.Header().Get("X-Tenant")
		if tenant == "" {
			tenant = "-"
		}
		s.log.Printf("serve: http rid=%d method=%s path=%s status=%d bytes=%d dur=%s job=%s tenant=%s",
			rid, r.Method, r.URL.Path, lw.status, lw.bytes, time.Since(start).Round(time.Microsecond), job, tenant)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, aerr *APIError) {
	if aerr.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(aerr.RetryAfterSec))
	}
	writeJSON(w, status, struct {
		Error *APIError `json:"error"`
	}{aerr})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	body := http.MaxBytesReader(w, r.Body, 2<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				&APIError{Code: CodeInvalid, Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeError(w, http.StatusBadRequest,
			&APIError{Code: CodeInvalid, Message: "malformed JSON: " + err.Error()})
		return
	}
	j, status, aerr := s.admit(req)
	if aerr != nil {
		writeError(w, status, aerr)
		return
	}
	w.Header().Set("X-Job-Id", j.ID)
	w.Header().Set("X-Tenant", j.Tenant)
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout,
				&APIError{Code: CodeCanceled, Message: "client went away while waiting; job continues", RetryAfterSec: 1})
			return
		}
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, status, st)
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	w.Header().Set("X-Job-Id", j.ID)
	w.Header().Set("X-Tenant", j.Tenant)
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
		}
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleOutput renders a finished job's primary output as text/plain:
// the sweep table for kernel/fig4 jobs (byte-identical to the gbbench
// stdout for the same experiment) or the gbrun-style summary line for
// run jobs.
func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	w.Header().Set("X-Job-Id", j.ID)
	w.Header().Set("X-Tenant", j.Tenant)
	s.mu.Lock()
	state, res, aerr := j.state, j.result, j.apiErr
	s.mu.Unlock()
	switch state {
	case StateDone:
	case StateFailed, StateCanceled:
		writeError(w, http.StatusConflict, aerr)
		return
	default:
		writeError(w, http.StatusConflict,
			&APIError{Code: CodeInvalid, Message: "job is " + state + "; output exists once it is done", RetryAfterSec: 1})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if j.Req.Kind == KindRun {
		fmt.Fprintf(w, "exit=%d cycles=%d instret=%d\n", res.ExitCode, res.Cycles, res.Instret)
		return
	}
	_, _ = w.Write([]byte(res.Table))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	w.Header().Set("X-Job-Id", j.ID)
	w.Header().Set("X-Tenant", j.Tenant)
	j.cancel()
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
