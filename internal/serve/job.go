package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"ghostbusters/internal/core"
	"ghostbusters/internal/detect"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/obs"
)

// Job kinds: an arbitrary guest program, a single-kernel sweep, or the
// full Figure 4 matrix.
const (
	KindRun    = "run"
	KindKernel = "kernel"
	KindFig4   = "fig4"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// API error codes. Admission rejections (queue_full, too_many_jobs,
// *_exhausted) never create a job; execution failures (guest_trap,
// deadline, panic, ...) are recorded on the job they killed.
const (
	CodeInvalid        = "invalid_request"
	CodeQueueFull      = "queue_full"
	CodeTooManyJobs    = "too_many_jobs"
	CodeCycleExhausted = "cycle_budget_exhausted"
	CodeMemExhausted   = "mem_budget_exhausted"
	CodeDraining       = "draining"
	CodeGuestTrap      = "guest_trap"
	CodeDeadline       = "deadline_exceeded"
	CodeCanceled       = "canceled"
	CodePanic          = "panic"
	CodeHostError      = "host_error"
	CodeNotFound       = "not_found"
)

// APIError is the structured error body every failure path returns —
// machine-readable code first, human detail second.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSec is set on load-shedding rejections (the header
	// carries the same value).
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// Trap detail, when the failure was a structured guest trap.
	TrapKind string `json:"trap_kind,omitempty"`
	GuestPC  uint64 `json:"guest_pc,omitempty"`
	Cycle    uint64 `json:"cycle,omitempty"`
}

func (e *APIError) Error() string { return e.Code + ": " + e.Message }

// InjectSpec enables deterministic fault injection for a job (chaos
// engineering over the wire; rates in [0, 1]).
type InjectSpec struct {
	Seed            uint64  `json:"seed"`
	TranslationRate float64 `json:"translation_rate,omitempty"`
	CacheRate       float64 `json:"cache_rate,omitempty"`
	InterruptRate   float64 `json:"interrupt_rate,omitempty"`
}

// JobRequest is the submit body.
type JobRequest struct {
	Tenant string `json:"tenant"`
	Kind   string `json:"kind"`

	// KindRun: the guest program (assembly source) and its mitigation
	// mode (default unsafe).
	Program string `json:"program,omitempty"`
	Mode    string `json:"mode,omitempty"`

	// KindKernel: the polybench kernel name. N overrides the problem
	// size for kernel and fig4 jobs (0 = default).
	Kernel string `json:"kernel,omitempty"`
	N      int    `json:"n,omitempty"`

	// Modes lists the mitigation sweep for kernel/fig4 jobs; empty
	// means the paper's Figure 4 set.
	Modes []string `json:"modes,omitempty"`

	// MaxCycles asks for a per-run simulated-cycle cap below the
	// tenant's allowance (0 = allowance only).
	MaxCycles uint64 `json:"max_cycles,omitempty"`

	// TimeoutMS asks for a deadline shorter than the server's job
	// timeout (0 = server default; larger values are clamped).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Inject turns on deterministic fault injection; Retries gives the
	// job that many transient-fault retries (capped exponential
	// backoff, per the server policy).
	Inject  *InjectSpec `json:"inject,omitempty"`
	Retries int         `json:"retries,omitempty"`

	// Detect attaches the online attack-phase detector to every cell:
	// run jobs return the full verdict in result.detect, sweep jobs
	// count alarmed cells in result.detect_alarms, and every alarm is
	// a detect_alarm row on the job's event stream. Guest-visible
	// behaviour (cycles, results) is unchanged; detection rides the
	// observability plane.
	Detect bool `json:"detect,omitempty"`
}

// JobResult is the success payload.
type JobResult struct {
	// KindRun fields.
	ExitCode int    `json:"exit_code,omitempty"`
	Cycles   uint64 `json:"cycles,omitempty"`
	Instret  uint64 `json:"instret,omitempty"`

	// Sweep fields: the rendered table (byte-identical to the gbbench
	// stdout for the same experiment) and the number of matrix cells.
	Table string `json:"table,omitempty"`
	Cells int    `json:"cells,omitempty"`

	// Metrics is the run's stable-name snapshot (summed across cells
	// for sweeps).
	Metrics obs.Snapshot `json:"metrics,omitempty"`

	// Detect is the run job's full detector verdict; DetectAlarms
	// counts cells whose detector fired (1 at most for run jobs, up
	// to Cells for sweeps). Both only present when the request asked
	// for detection.
	Detect       *detect.Report `json:"detect,omitempty"`
	DetectAlarms int            `json:"detect_alarms,omitempty"`
}

// JobStatus is the wire view of a job.
type JobStatus struct {
	ID     string     `json:"id"`
	Tenant string     `json:"tenant"`
	Kind   string     `json:"kind"`
	State  string     `json:"state"`
	Error  *APIError  `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// Job is one admitted unit of work. Mutable fields are guarded by the
// server mutex; the context is cancelled by DELETE, deadline expiry or
// server drain.
type Job struct {
	ID     string
	Tenant string
	Req    JobRequest

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	// Admission grants, released/settled when the job finishes.
	cycleAllowance uint64 // total simulated-cycle grant (0 = unlimited)
	memCharge      uint64 // guest-memory bytes charged at admission
	cells          int    // matrix cells this job runs (1 for KindRun)
	modes          []core.Mode

	state  string
	result *JobResult
	apiErr *APIError

	// events is the append-only progress buffer handleEvents streams;
	// wake is closed and replaced on every append (broadcast). Both
	// are guarded by the server mutex.
	events []JobEvent
	wake   chan struct{}

	// Host-span state. root is the job's span (started at admission,
	// ended in finish); queueSpan covers admission→dequeue. The buffer
	// below feeds GET /v1/jobs/{id}/trace the way events feeds the
	// events stream, but under its own leaf lock: spans are emitted
	// from paths that already hold s.mu (admission) and from harness
	// worker goroutines, so they must not take the server mutex.
	// Lock order: s.mu → spanMu, never the reverse.
	root      hspan.Span
	rootID    uint64
	queueSpan hspan.Span

	spanMu    sync.Mutex
	spans     []hspan.Record
	spanWake  chan struct{}
	spansDone bool // the root record has landed: the trace is complete
}

// maxJobSpans bounds the per-job span buffer; like maxJobEvents, the
// cap only matters for adversarial workloads, and the root record is
// always kept so /trace streams still terminate.
const maxJobSpans = 4096

// appendSpan is the job's span observer (wired via hspan.Tracer.Fork
// at admission): it buffers the record and wakes every /trace reader.
func (j *Job) appendSpan(r hspan.Record) {
	j.spanMu.Lock()
	if len(j.spans) < maxJobSpans || r.ID == j.rootID {
		j.spans = append(j.spans, r)
	}
	if r.ID == j.rootID {
		j.spansDone = true
	}
	close(j.spanWake)
	j.spanWake = make(chan struct{})
	j.spanMu.Unlock()
}

// Status renders the wire view (caller holds the server mutex or owns
// the job exclusively).
func (j *Job) status() JobStatus {
	return JobStatus{
		ID: j.ID, Tenant: j.Tenant, Kind: j.Req.Kind,
		State: j.state, Error: j.apiErr, Result: j.result,
	}
}

// validate normalises and checks a request at admission time, resolving
// the mode list. Invalid requests are rejected before they consume any
// quota.
func (r *JobRequest) validate() ([]core.Mode, *APIError) {
	if r.Tenant == "" {
		return nil, &APIError{Code: CodeInvalid, Message: "tenant is required"}
	}
	if r.N < 0 {
		return nil, &APIError{Code: CodeInvalid, Message: "n must be >= 0"}
	}
	if r.Retries < 0 || r.Retries > 16 {
		return nil, &APIError{Code: CodeInvalid, Message: "retries must be in [0, 16]"}
	}
	if r.TimeoutMS < 0 {
		return nil, &APIError{Code: CodeInvalid, Message: "timeout_ms must be >= 0"}
	}
	if r.Inject != nil {
		for _, rate := range []float64{r.Inject.TranslationRate, r.Inject.CacheRate, r.Inject.InterruptRate} {
			if rate < 0 || rate > 1 {
				return nil, &APIError{Code: CodeInvalid, Message: "inject rates must be in [0, 1]"}
			}
		}
	}
	switch r.Kind {
	case KindRun:
		if strings.TrimSpace(r.Program) == "" {
			return nil, &APIError{Code: CodeInvalid, Message: "run job needs a program"}
		}
		if len(r.Program) > 1<<20 {
			return nil, &APIError{Code: CodeInvalid, Message: "program exceeds 1 MiB"}
		}
		mode := r.Mode
		if mode == "" {
			mode = core.ModeUnsafe.String()
		}
		m, err := core.ParseMode(mode)
		if err != nil {
			return nil, &APIError{Code: CodeInvalid, Message: err.Error()}
		}
		return []core.Mode{m}, nil
	case KindKernel:
		if r.Kernel == "" {
			return nil, &APIError{Code: CodeInvalid, Message: "kernel job needs a kernel name"}
		}
		return parseModeList(r.Modes)
	case KindFig4:
		return parseModeList(r.Modes)
	default:
		return nil, &APIError{Code: CodeInvalid, Message: fmt.Sprintf("unknown kind %q", r.Kind)}
	}
}

func parseModeList(names []string) ([]core.Mode, *APIError) {
	if len(names) == 0 {
		return harness.Fig4Modes, nil
	}
	seen := map[core.Mode]bool{}
	modes := make([]core.Mode, 0, len(names))
	for _, name := range names {
		m, err := core.ParseMode(strings.TrimSpace(name))
		if err != nil {
			return nil, &APIError{Code: CodeInvalid, Message: err.Error()}
		}
		if seen[m] {
			return nil, &APIError{Code: CodeInvalid, Message: fmt.Sprintf("mode %s listed twice", m)}
		}
		seen[m] = true
		modes = append(modes, m)
	}
	return modes, nil
}
