package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"sim.cycles", "gb_sim_cycles"},
		{"dbt.trans-count", "gb_dbt_trans_count"},
		{"already_fine", "gb_already_fine"},
		{"colons:ok", "gb_colons:ok"},
		{"9starts.with.digit", "gb_9starts_with_digit"},
		{"bytes/s", "gb_bytes_s"},
		{"spaces and tabs\t", "gb_spaces_and_tabs_"},
		{"unicode-λ-rune", "gb_unicode___rune"},
		{`quotes"and{braces}`, "gb_quotes_and_braces_"},
		{"", "gb_"},
	}
	for _, tc := range cases {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Everything promName emits must satisfy the metric-name grammar.
	grammar := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for _, tc := range cases {
		if got := promName(tc.in); !grammar.MatchString(got) {
			t.Errorf("promName(%q) = %q violates the name grammar", tc.in, got)
		}
	}
}

// TestMetricsExpositionGrammar scrapes a server that has done real work
// and validates the whole exposition: every sample belongs to a family
// announced by # HELP and # TYPE immediately above it, names satisfy
// the grammar, families arrive sorted, and histogram families carry
// the _bucket/_sum/_count triple with cumulative bucket counts.
func TestMetricsExpositionGrammar(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindRun, Program: quickProg}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("job = %d %+v", resp.StatusCode, st)
	}
	code, body := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}

	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? [0-9eE.+-]+$`)
	type fam struct{ help, typ bool }
	families := map[string]*fam{}
	var current string
	var order []string
	samples := map[string]int{}

	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := nameRe.FindString(strings.TrimPrefix(line, "# HELP "))
			if name == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			if families[name] != nil {
				t.Fatalf("family %s announced twice", name)
			}
			families[name] = &fam{help: true}
			current = name
			order = append(order, name)
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name := nameRe.FindString(rest)
			typ := strings.TrimSpace(strings.TrimPrefix(rest, name))
			if name != current {
				t.Fatalf("TYPE for %s but current family is %s", name, current)
			}
			switch typ {
			case "gauge", "counter", "histogram":
			default:
				t.Fatalf("family %s has unknown type %q", name, typ)
			}
			families[name].typ = true
		case line == "":
			t.Fatal("exposition contains a blank line")
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample line: %q", line)
			}
			base := m[1]
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				trimmed := strings.TrimSuffix(base, suffix)
				if trimmed != base && families[trimmed] != nil {
					base = trimmed
					break
				}
			}
			f := families[base]
			if f == nil || !f.help || !f.typ {
				t.Fatalf("sample %q not announced by # HELP and # TYPE (family %s)", line, base)
			}
			if base != current {
				t.Fatalf("sample %q outside its family block (current %s)", line, current)
			}
			samples[base]++
		}
	}

	// Families are sorted and none announced without samples.
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Errorf("families out of order: %s before %s", order[i-1], order[i])
		}
	}
	for name, f := range families {
		if !f.help || !f.typ {
			t.Errorf("family %s missing HELP or TYPE", name)
		}
		if samples[name] == 0 {
			t.Errorf("family %s announced but has no samples", name)
		}
	}

	// A completed job must have populated all three latency histograms.
	for _, h := range []string{"gbserve_queue_wait_seconds", "gbserve_job_wall_seconds", "gbserve_cell_host_seconds"} {
		if samples[h] == 0 {
			t.Errorf("histogram family %s absent after a completed job", h)
		}
		if !strings.Contains(body, h+`_bucket{`) ||
			!strings.Contains(body, h+"_sum{") ||
			!strings.Contains(body, h+"_count{") {
			t.Errorf("histogram family %s missing its _bucket/_sum/_count triple", h)
		}
		if !strings.Contains(body, h+`_bucket{tenant="alice"`) || !strings.Contains(body, `le="+Inf"`) {
			t.Errorf("histogram family %s has no alice series with a +Inf bucket", h)
		}
	}

	// Bucket counts are cumulative: non-decreasing per series, +Inf
	// equal to _count.
	checkCumulative(t, body, `gbserve_queue_wait_seconds`, `tenant="alice"`)

	// The scrape is deterministic: an immediately repeated scrape of a
	// quiet server is byte-identical.
	_, again := getBody(t, ts, "/metrics")
	if body != again {
		t.Error("repeated scrape of a quiet server differs")
	}
}

func checkCumulative(t *testing.T, body, name, labels string) {
	t.Helper()
	prefix := name + "_bucket{" + labels + ","
	var prev uint64
	buckets := 0
	var last uint64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q (%d after %d)", line, v, prev)
		}
		prev, last = v, v
		buckets++
	}
	if buckets == 0 {
		t.Fatalf("no buckets found for %s{%s}", name, labels)
	}
	countLine := name + "_count{" + labels + "} " + fmt.Sprint(last)
	if !strings.Contains(body, countLine) {
		t.Fatalf("+Inf bucket (%d) disagrees with _count (wanted line %q)", last, countLine)
	}
}
