package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/dbt"
)

// readEvents drains a job's full NDJSON event stream (the job must be
// terminal or become terminal while reading).
func readEvents(t *testing.T, ts *httptest.Server, id string) []JobEvent {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var evs []JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// A sweep job's event stream carries one started and one finished row
// per matrix cell, densely sequenced, and ends with job_finished.
func TestJobEventStreamForSweep(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{
		Tenant: "alice", Kind: KindKernel, Kernel: "gemm", N: 4,
		Modes: []string{"unsafe", "ghostbusters"},
	}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("job = %d %+v", resp.StatusCode, st)
	}

	evs := readEvents(t, ts, st.ID)
	var started, finished int
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d; stream not dense", i, ev.Seq)
		}
		switch ev.Type {
		case EventCellStarted:
			started++
		case EventCellFinished:
			finished++
			if ev.Cycles == 0 {
				t.Errorf("cell_finished without cycles: %+v", ev)
			}
		}
	}
	if started != 2 || finished != 2 {
		t.Errorf("cell events = %d started, %d finished, want 2/2:\n%+v", started, finished, evs)
	}
	last := evs[len(evs)-1]
	if last.Type != EventJobFinished || last.State != StateDone {
		t.Errorf("stream does not end with job_finished done: %+v", last)
	}

	// The stream replays in full on reconnect.
	if again := readEvents(t, ts, st.ID); len(again) != len(evs) {
		t.Errorf("replay returned %d events, want %d", len(again), len(evs))
	}
}

// The event stream is live: a reader connected while the job runs
// sees rows before the job is terminal, and a canceled job still ends
// the stream with job_finished.
func TestJobEventStreamLive(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{Tenant: "alice", Kind: KindRun, Program: slowProg}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	eresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	sc := bufio.NewScanner(eresp.Body)
	if !sc.Scan() {
		t.Fatalf("no live event before cancel: %v", sc.Err())
	}
	var first JobEvent
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Type != EventCellStarted {
		t.Fatalf("first live event = %+v, want cell_started", first)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if _, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	got := make(chan JobEvent, 8)
	go func() {
		for sc.Scan() {
			var ev JobEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				got <- ev
			}
		}
		close(got)
	}()
	for {
		select {
		case ev, ok := <-got:
			if !ok {
				t.Fatal("stream ended without job_finished")
			}
			if ev.Type == EventJobFinished {
				if ev.State != StateCanceled {
					t.Fatalf("job_finished state %q, want canceled", ev.State)
				}
				return
			}
		case <-deadline:
			t.Fatal("timed out waiting for job_finished")
		}
	}
}

// Submitting the paper's Spectre v1 gadget as a run job with detection
// on must alarm, surface the verdict in the result, stream a
// detect_alarm event, and bump the tenant's gb_detect_alarms_total;
// a benign program with detection on must do none of that.
func TestDetectOverHTTP(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	src, err := attack.Source(attack.V1, dbt.DefaultConfig(), attack.Params{Secret: []byte{0x5A, 0xC3}})
	if err != nil {
		t.Fatal(err)
	}
	resp, st := postJob(t, ts, JobRequest{
		Tenant: "mallory", Kind: KindRun, Program: src, Mode: "unsafe", Detect: true,
	}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("attack job = %d %+v", resp.StatusCode, st)
	}
	if st.Result.Detect == nil || !st.Result.Detect.Alarm {
		t.Fatalf("unsafe attack run did not alarm: %+v", st.Result.Detect)
	}
	if st.Result.DetectAlarms != 1 {
		t.Errorf("detect_alarms = %d, want 1", st.Result.DetectAlarms)
	}
	if st.Result.Metrics["detect.alarm"] != 1 {
		t.Errorf("metrics detect.alarm = %d, want 1", st.Result.Metrics["detect.alarm"])
	}
	var sawAlarm bool
	for _, ev := range readEvents(t, ts, st.ID) {
		if ev.Type == EventDetectAlarm {
			sawAlarm = true
			if !ev.Alarm || ev.AlarmCycle == 0 {
				t.Errorf("malformed detect_alarm event: %+v", ev)
			}
		}
	}
	if !sawAlarm {
		t.Error("no detect_alarm event on the stream")
	}

	// Benign control: same plumbing, no alarm.
	resp, st = postJob(t, ts, JobRequest{
		Tenant: "alice", Kind: KindRun, Program: quickProg, Detect: true,
	}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("benign job = %d %+v", resp.StatusCode, st)
	}
	if st.Result.Detect == nil {
		t.Fatal("benign run with detect has no verdict")
	}
	if st.Result.Detect.Alarm || st.Result.DetectAlarms != 0 {
		t.Fatalf("benign run alarmed: %+v", st.Result.Detect)
	}

	code, body := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if !strings.Contains(body, `gb_detect_alarms_total{tenant="mallory"} 1`) {
		t.Errorf("metrics missing mallory's alarm:\n%s", body)
	}
	if !strings.Contains(body, `gb_detect_alarms_total{tenant="alice"} 0`) {
		t.Errorf("metrics missing alice's zero counter:\n%s", body)
	}
}

// A sweep with detection counts alarmed cells: the v1 kernel matrix is
// benign, so a kernel sweep reports zero even with detection on.
func TestDetectSweepCountsAlarms(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, JobRequest{
		Tenant: "alice", Kind: KindKernel, Kernel: "gemm", N: 4,
		Modes: []string{"unsafe", "ghostbusters"}, Detect: true,
	}, "?wait=1")
	if resp.StatusCode != http.StatusAccepted || st.State != StateDone {
		t.Fatalf("job = %d %+v", resp.StatusCode, st)
	}
	if st.Result.DetectAlarms != 0 {
		t.Errorf("benign kernel sweep alarmed %d cells", st.Result.DetectAlarms)
	}
	if _, ok := st.Result.Metrics["detect.alarms"]; !ok {
		t.Error("sweep metrics missing detect.alarms")
	}
}
