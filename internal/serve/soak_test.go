package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSoak hammers one server with hundreds of concurrent jobs from
// several tenants — quick runs, budget-capped runs, kernel sweeps,
// chaos jobs under fault injection, and mid-flight cancellations — and
// then proves the robustness contract held:
//
//   - every admitted job reached a terminal state with either a result
//     or a structured error,
//   - every rejection was structured (a known code, never a panic),
//   - no tenant exceeded its cycle or memory budget,
//   - the ledgers settled to zero reservations and zero in-flight,
//   - and the fleet drained without leaking a single goroutine.
//
// Run it under -race: the point is as much the locking as the counts.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	settle := func() int {
		n := runtime.NumGoroutine()
		for i := 0; i < 100; i++ {
			time.Sleep(10 * time.Millisecond)
			m := runtime.NumGoroutine()
			if m >= n {
				return m
			}
			n = m
		}
		return n
	}
	before := settle()

	const (
		cycleBudget = 2_000_000
		memBudget   = 40 * (16 << 20) // 40 machines
	)
	s := newTestServer(t, func(c *Config) {
		c.Workers = 8
		c.QueueDepth = 256
		c.JobTimeout = 60 * time.Second
		c.Backoff = time.Millisecond
		c.BackoffMax = 4 * time.Millisecond
		c.Tenants = map[string]Quota{
			"free":    {MaxInFlight: -1},
			"metered": {MaxInFlight: -1, CycleBudget: cycleBudget},
			"bursty":  {MaxInFlight: 4},
			"memcap":  {MaxInFlight: -1, MemBudget: memBudget},
			"chaos":   {MaxInFlight: -1},
		}
	})

	type outcome struct {
		tenant string
		state  string // terminal job state, or "" for a rejection
		code   string // error code, if any
	}
	const perTenant = 50 // 5 tenants x 50 = 250 concurrent submissions
	results := make(chan outcome, 5*perTenant)
	var wg sync.WaitGroup

	submit := func(tenant string, req JobRequest, cancelIt bool) {
		defer wg.Done()
		req.Tenant = tenant
		j, _, aerr := s.admit(req)
		if aerr != nil {
			results <- outcome{tenant: tenant, code: aerr.Code}
			return
		}
		if cancelIt {
			j.cancel()
		}
		select {
		case <-j.done:
		case <-time.After(120 * time.Second):
			t.Errorf("soak: %s (%s) never finished", j.ID, tenant)
			results <- outcome{tenant: tenant, state: "stuck"}
			return
		}
		s.mu.Lock()
		st := j.status()
		s.mu.Unlock()
		o := outcome{tenant: tenant, state: st.State}
		if st.Error != nil {
			o.code = st.Error.Code
		}
		results <- o
	}

	for i := 0; i < perTenant; i++ {
		wg.Add(5)
		// free: plain quick runs, a few of them cancelled mid-flight.
		go submit("free", JobRequest{Kind: KindRun, Program: quickProg}, i%10 == 0)
		// metered: runs that would exceed the shared cycle budget — the
		// early ones are killed by their allowance, the late ones are
		// refused at admission.
		go submit("metered", JobRequest{Kind: KindRun, Program: slowProg}, false)
		// bursty: more concurrency than the in-flight cap allows.
		go submit("bursty", JobRequest{Kind: KindRun, Program: quickProg, MaxCycles: 100_000}, false)
		// memcap: every machine charges 16 MiB against a 40-machine budget.
		go submit("memcap", JobRequest{Kind: KindRun, Program: quickProg}, false)
		// chaos: fault injection with retries; spurious interrupts and
		// cache faults at moderate rates, deterministic per-index seed.
		go submit("chaos", JobRequest{
			Kind: KindRun, Program: slowProg, MaxCycles: 50_000,
			Inject:  &InjectSpec{Seed: uint64(i), InterruptRate: 0.2, CacheRate: 0.001},
			Retries: 2,
		}, false)
	}
	wg.Wait()
	close(results)

	perState := map[string]int{}
	perCode := map[string]int{}
	admitted := 0
	for o := range results {
		if o.state == "stuck" {
			continue // already failed the test above
		}
		if o.state == "" {
			perCode[o.code]++
			switch o.code {
			case CodeTooManyJobs, CodeQueueFull, CodeCycleExhausted, CodeMemExhausted:
			default:
				t.Errorf("soak: unexpected rejection code %q", o.code)
			}
			continue
		}
		admitted++
		perState[o.state]++
		switch o.state {
		case StateDone, StateFailed, StateCanceled:
		default:
			t.Errorf("soak: job ended in non-terminal state %q", o.state)
		}
	}
	t.Logf("soak: %d admitted %v, %d rejected %v", admitted, perState, 5*perTenant-admitted, perCode)
	if admitted == 0 || perState[StateDone] == 0 {
		t.Fatalf("soak ran nothing: admitted=%d states=%v", admitted, perState)
	}

	// Quota invariants: budgets were never exceeded and every ledger
	// settled.
	s.mu.Lock()
	for name, ts := range s.tenants {
		if ts.inFlight != 0 || ts.cyclesReserved != 0 {
			t.Errorf("tenant %s ledger did not settle: inFlight=%d reserved=%d", name, ts.inFlight, ts.cyclesReserved)
		}
	}
	if used := s.tenants["metered"].cyclesUsed; used > cycleBudget {
		t.Errorf("metered tenant used %d cycles, budget %d", used, cycleBudget)
	}
	if used := s.tenants["memcap"].memUsed; used > memBudget {
		t.Errorf("memcap tenant charged %d bytes, budget %d", used, memBudget)
	}
	bursty := s.tenants["bursty"].rejects
	s.mu.Unlock()
	if bursty == 0 {
		t.Errorf("bursty tenant (cap 4, %d concurrent submits) was never shed", perTenant)
	}

	// Latency histograms populated under load: every tenant that got
	// work admitted has a queue-wait distribution with a meaningful p99
	// (250 submissions onto 8 workers guarantees real queueing).
	s.metrics.mu.Lock()
	if len(s.metrics.queueWait) == 0 {
		t.Error("soak produced no queue-wait histograms")
	}
	for tenant, h := range s.metrics.queueWait {
		if h.Count() == 0 {
			t.Errorf("tenant %s queue-wait histogram is empty", tenant)
			continue
		}
		if p99 := h.Quantile(0.99); p99 <= 0 {
			t.Errorf("tenant %s queue-wait p99 = %d ns, want > 0", tenant, p99)
		}
	}
	for tenant, h := range s.metrics.jobWall {
		if h.Count() == 0 || h.Quantile(0.5) <= 0 {
			t.Errorf("tenant %s job-wall histogram unpopulated (count=%d)", tenant, h.Count())
		}
	}
	s.metrics.mu.Unlock()

	// Drain and prove no goroutine outlived the fleet.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.After(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		select {
		case <-deadline:
			buf := make([]byte, 1<<20)
			n := runtime.NumGoroutine()
			stack := buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before soak, %d after drain\n%s", before, n, limit(string(stack), 8000))
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func limit(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + fmt.Sprintf("\n... (%d bytes truncated)", len(s)-n)
}
