// Package kbuild is a small kernel-builder DSL that generates rv64im
// assembly for dense integer loop kernels (the Polybench-style workloads
// of the paper's Figure 4). It deliberately produces straightforward
// code — materialised addresses, no CSE — leaving the optimisation work
// to the DBT engine, exactly like the unoptimised guest binaries a
// DBT-based processor ingests.
//
// Arrays are int64. 2-D arrays come in two layouts: flat row-major, and
// a row-pointer table (Array2DPtr) — the representation the paper
// switches matrix multiplication to in its last experiment, because the
// double indirection creates the Spectre pattern in hot loops.
package kbuild

import (
	"fmt"
	"strings"
)

// Array describes a guest data array.
type Array struct {
	Name string
	Rows int
	Cols int  // 1 for 1-D
	Ptr  bool // row-pointer-table layout
}

// Elems returns the number of int64 elements.
func (a *Array) Elems() int { return a.Rows * a.Cols }

// Var is a value kept in a callee-saved register for the whole kernel
// (loop indices, accumulators, cached base pointers).
type Var struct{ reg string }

// Val is a temporary expression result; it is consumed by the operation
// that uses it.
type Val struct{ reg string }

// Op is an operand: an int (immediate), int64, Var, or Val.
type Op interface{}

// Builder assembles one kernel program.
type Builder struct {
	name   string
	arrays []*Array
	text   strings.Builder
	data   strings.Builder

	temps  []string
	locals []string
	label  int
	err    error
}

// New starts a kernel named name.
func New(name string) *Builder {
	b := &Builder{name: name}
	b.temps = []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "a0", "a1", "a2", "a3", "a4", "a5"}
	b.locals = []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "s0"}
	return b
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("kbuild: %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) emit(format string, args ...interface{}) {
	fmt.Fprintf(&b.text, "\t"+format+"\n", args...)
}

func (b *Builder) newLabel(stem string) string {
	b.label++
	return fmt.Sprintf("%s_%s_%d", b.name, stem, b.label)
}

func (b *Builder) takeTemp() string {
	if len(b.temps) == 0 {
		b.fail("out of temporary registers")
		return "t0"
	}
	r := b.temps[0]
	b.temps = b.temps[1:]
	return r
}

func (b *Builder) releaseTemp(r string) {
	b.temps = append(b.temps, r)
}

func (b *Builder) takeLocal() string {
	if len(b.locals) == 0 {
		b.fail("out of local registers")
		return "s1"
	}
	r := b.locals[0]
	b.locals = b.locals[1:]
	return r
}

// Array declares a 1-D int64 array.
func (b *Builder) Array(name string, elems int) *Array {
	a := &Array{Name: name, Rows: elems, Cols: 1}
	b.arrays = append(b.arrays, a)
	return a
}

// Array2D declares a flat row-major 2-D int64 array.
func (b *Builder) Array2D(name string, rows, cols int) *Array {
	a := &Array{Name: name, Rows: rows, Cols: cols}
	b.arrays = append(b.arrays, a)
	return a
}

// Array2DPtr declares a 2-D array stored as a table of row pointers —
// every access becomes a double indirection (the paper's modified
// matmul representation).
func (b *Builder) Array2DPtr(name string, rows, cols int) *Array {
	a := &Array{Name: name, Rows: rows, Cols: cols, Ptr: true}
	b.arrays = append(b.arrays, a)
	return a
}

// operand materialises op into a register. owned reports whether the
// caller must release it.
func (b *Builder) operand(op Op) (reg string, owned bool) {
	switch v := op.(type) {
	case int:
		r := b.takeTemp()
		b.emit("li %s, %d", r, v)
		return r, true
	case int64:
		r := b.takeTemp()
		b.emit("li %s, %d", r, v)
		return r, true
	case Var:
		return v.reg, false
	case Val:
		return v.reg, true
	default:
		b.fail("bad operand %T", op)
		return "zero", false
	}
}

func (b *Builder) release(reg string, owned bool) {
	if owned {
		b.releaseTemp(reg)
	}
}

// Local allocates a callee-saved variable initialised to init.
func (b *Builder) Local(init Op) Var {
	r := b.takeLocal()
	src, owned := b.operand(init)
	b.emit("mv %s, %s", r, src)
	b.release(src, owned)
	return Var{reg: r}
}

// Set assigns x to local v.
func (b *Builder) Set(v Var, x Op) {
	src, owned := b.operand(x)
	b.emit("mv %s, %s", v.reg, src)
	b.release(src, owned)
}

// BasePtr caches an array's base (the row-pointer table for Ptr arrays)
// in a local register.
func (b *Builder) BasePtr(a *Array) Var {
	r := b.takeLocal()
	b.emit("la %s, %s", r, dataLabel(a))
	return Var{reg: r}
}

func dataLabel(a *Array) string {
	if a.Ptr {
		return a.Name + "_rows"
	}
	return a.Name
}

// binary emits a three-operand ALU op, reusing an owned input register
// for the result where possible.
func (b *Builder) binary(mn string, x, y Op) Val {
	xr, xo := b.operand(x)
	yr, yo := b.operand(y)
	var dst string
	switch {
	case xo:
		dst = xr
	case yo:
		dst = yr
	default:
		dst = b.takeTemp()
	}
	b.emit("%s %s, %s, %s", mn, dst, xr, yr)
	if xo && dst != xr {
		b.releaseTemp(xr)
	}
	if yo && dst != yr {
		b.releaseTemp(yr)
	}
	return Val{reg: dst}
}

// Add returns x + y.
func (b *Builder) Add(x, y Op) Val { return b.binary("add", x, y) }

// Sub returns x - y.
func (b *Builder) Sub(x, y Op) Val { return b.binary("sub", x, y) }

// Mul returns x * y.
func (b *Builder) Mul(x, y Op) Val { return b.binary("mul", x, y) }

// Div returns x / y (signed).
func (b *Builder) Div(x, y Op) Val { return b.binary("div", x, y) }

// And returns x & y.
func (b *Builder) And(x, y Op) Val { return b.binary("and", x, y) }

// Or returns x | y.
func (b *Builder) Or(x, y Op) Val { return b.binary("or", x, y) }

// Xor returns x ^ y.
func (b *Builder) Xor(x, y Op) Val { return b.binary("xor", x, y) }

// Min returns min(x, y) branchlessly (sub / arithmetic-shift mask / and),
// so kernels stay straight-line inside their loop bodies.
func (b *Builder) Min(x, y Op) Val {
	xr, xo := b.operand(x)
	yr, yo := b.operand(y)
	d := b.takeTemp()
	b.emit("sub %s, %s, %s", d, xr, yr) // d = x - y
	m := b.takeTemp()
	b.emit("srai %s, %s, 63", m, d)   // m = x < y ? -1 : 0
	b.emit("and %s, %s, %s", d, d, m) // d = x < y ? x-y : 0
	b.releaseTemp(m)
	var dst string
	switch {
	case yo:
		dst = yr
	case xo:
		dst = xr
	default:
		dst = b.takeTemp()
	}
	b.emit("add %s, %s, %s", dst, yr, d) // y + (x-y | 0) = min
	b.releaseTemp(d)
	if xo && dst != xr {
		b.releaseTemp(xr)
	}
	if yo && dst != yr {
		b.releaseTemp(yr)
	}
	return Val{reg: dst}
}

// Shr returns x >> k (arithmetic).
func (b *Builder) Shr(x Op, k uint) Val {
	xr, xo := b.operand(x)
	dst := xr
	if !xo {
		dst = b.takeTemp()
	}
	b.emit("srai %s, %s, %d", dst, xr, k)
	return Val{reg: dst}
}

// AddTo accumulates v += x.
func (b *Builder) AddTo(v Var, x Op) {
	xr, xo := b.operand(x)
	b.emit("add %s, %s, %s", v.reg, v.reg, xr)
	b.release(xr, xo)
}

// Drop releases a value without using it.
func (b *Builder) Drop(v Val) { b.releaseTemp(v.reg) }

// Free returns a local variable's register to the pool (between phases
// of multi-nest kernels). The variable must not be used afterwards.
func (b *Builder) Free(v Var) {
	b.locals = append([]string{v.reg}, b.locals...)
}

// address computes the element address of a[idx...] into an owned temp.
// base must be a cached BasePtr local of a.
func (b *Builder) address(a *Array, base Var, idx []Op) string {
	switch {
	case a.Cols == 1 && !a.Ptr:
		if len(idx) != 1 {
			b.fail("%s: 1-D array needs one index", a.Name)
			return b.takeTemp()
		}
		ir, io := b.operand(idx[0])
		addr := b.takeTemp()
		b.emit("slli %s, %s, 3", addr, ir)
		b.release(ir, io)
		b.emit("add %s, %s, %s", addr, addr, base.reg)
		return addr

	case !a.Ptr:
		if len(idx) != 2 {
			b.fail("%s: 2-D array needs two indices", a.Name)
			return b.takeTemp()
		}
		ir, io := b.operand(idx[0])
		jr, jo := b.operand(idx[1])
		addr := b.takeTemp()
		b.emit("li %s, %d", addr, a.Cols)
		b.emit("mul %s, %s, %s", addr, addr, ir)
		b.emit("add %s, %s, %s", addr, addr, jr)
		b.emit("slli %s, %s, 3", addr, addr)
		b.emit("add %s, %s, %s", addr, addr, base.reg)
		b.release(ir, io)
		b.release(jr, jo)
		return addr

	default:
		if len(idx) != 2 {
			b.fail("%s: 2-D array needs two indices", a.Name)
			return b.takeTemp()
		}
		ir, io := b.operand(idx[0])
		addr := b.takeTemp()
		// row = rows[i]: the first indirection
		b.emit("slli %s, %s, 3", addr, ir)
		b.release(ir, io)
		b.emit("add %s, %s, %s", addr, addr, base.reg)
		b.emit("ld %s, 0(%s)", addr, addr)
		// elem address = row + j*8: the second indirection's address
		// depends on the first load — the Spectre pattern when both are
		// speculated.
		jr, jo := b.operand(idx[1])
		off := b.takeTemp()
		b.emit("slli %s, %s, 3", off, jr)
		b.release(jr, jo)
		b.emit("add %s, %s, %s", addr, addr, off)
		b.releaseTemp(off)
		return addr
	}
}

// Load reads a[idx...] via the cached base pointer.
func (b *Builder) Load(a *Array, base Var, idx ...Op) Val {
	addr := b.address(a, base, idx)
	b.emit("ld %s, 0(%s)", addr, addr)
	return Val{reg: addr}
}

// Store writes val to a[idx...].
func (b *Builder) Store(a *Array, base Var, val Op, idx ...Op) {
	vr, vo := b.operand(val)
	addr := b.address(a, base, idx)
	b.emit("sd %s, 0(%s)", vr, addr)
	b.releaseTemp(addr)
	b.release(vr, vo)
}

// For emits a counted loop for idx in [lo, hi) and runs body with the
// index variable. hi may be an int or a Var (triangular loops).
func (b *Builder) For(lo int, hi Op, body func(Var)) {
	idx := Var{reg: b.takeLocal()}
	var bound Var
	releaseBound := false
	switch h := hi.(type) {
	case int:
		bound = Var{reg: b.takeLocal()}
		b.emit("li %s, %d", bound.reg, h)
		releaseBound = true
	case Var:
		bound = h
	default:
		b.fail("For: bound must be int or Var, got %T", hi)
		return
	}
	start := b.newLabel("body")
	check := b.newLabel("check")
	b.emit("li %s, %d", idx.reg, lo)
	b.emit("j %s", check)
	b.text.WriteString(start + ":\n")
	body(idx)
	b.emit("addi %s, %s, 1", idx.reg, idx.reg)
	b.text.WriteString(check + ":\n")
	b.emit("blt %s, %s, %s", idx.reg, bound.reg, start)
	// Loop registers are freed for reuse by sibling loops.
	b.locals = append([]string{idx.reg}, b.locals...)
	if releaseBound {
		b.locals = append([]string{bound.reg}, b.locals...)
	}
}

// Program finalises the kernel into an assembly source.
func (b *Builder) Program() (string, error) {
	if b.err != nil {
		return "", b.err
	}
	var out strings.Builder
	out.WriteString("\t.data\n")
	for _, a := range b.arrays {
		if a.Ptr {
			fmt.Fprintf(&out, "%s_rows:\t.space %d\n", a.Name, a.Rows*8)
			fmt.Fprintf(&out, "%s_data:\t.space %d\n", a.Name, a.Elems()*8)
		} else {
			fmt.Fprintf(&out, "%s:\t.space %d\n", a.Name, a.Elems()*8)
		}
	}
	out.WriteString("\t.text\nmain:\n")
	out.WriteString(b.text.String())
	out.WriteString("\tli a0, 0\n\tecall\n")
	return out.String(), nil
}

// Arrays returns the declared arrays (for host-side init and readback).
func (b *Builder) Arrays() []*Array { return b.arrays }

// Max returns max(x, y) branchlessly (the dual of Min).
func (b *Builder) Max(x, y Op) Val {
	xr, xo := b.operand(x)
	yr, yo := b.operand(y)
	d := b.takeTemp()
	b.emit("sub %s, %s, %s", d, xr, yr) // d = x - y
	m := b.takeTemp()
	b.emit("srai %s, %s, 63", m, d) // m = x < y ? -1 : 0
	b.emit("not %s, %s", m, m)      // m = x >= y ? -1 : 0
	b.emit("and %s, %s, %s", d, d, m)
	b.releaseTemp(m)
	var dst string
	switch {
	case yo:
		dst = yr
	case xo:
		dst = xr
	default:
		dst = b.takeTemp()
	}
	b.emit("add %s, %s, %s", dst, yr, d) // y + (x-y if x>=y else 0)
	b.releaseTemp(d)
	if xo && dst != xr {
		b.releaseTemp(xr)
	}
	if yo && dst != yr {
		b.releaseTemp(yr)
	}
	return Val{reg: dst}
}
