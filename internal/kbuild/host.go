package kbuild

import (
	"fmt"

	"ghostbusters/internal/guestmem"
	"ghostbusters/internal/riscv"
)

// Host-side helpers: the experiment harness initialises kernel inputs by
// writing guest memory directly before the run (the paper's benchmarks
// arrive with initialised data; generating init loops in the guest would
// only add warm-up noise) and reads results back afterwards.

// Placement is an array's resolved location within one assembled program
// image. The harness resolves placements once per artifact and shares
// them between runs: a Placement is read-only after Resolve and safe for
// concurrent use from many machines.
type Placement struct {
	Arr   *Array
	Base  uint64 // element data
	Table uint64 // row-pointer table (Ptr arrays only)
}

// Resolve locates every array in prog's symbol table.
func Resolve(prog *riscv.Program, arrays []*Array) ([]Placement, error) {
	out := make([]Placement, len(arrays))
	for i, a := range arrays {
		p := Placement{Arr: a}
		if a.Ptr {
			table, ok := prog.Symbol(a.Name + "_rows")
			if !ok {
				return nil, fmt.Errorf("kbuild: %s: missing row table symbol", a.Name)
			}
			data, ok := prog.Symbol(a.Name + "_data")
			if !ok {
				return nil, fmt.Errorf("kbuild: %s: missing data symbol", a.Name)
			}
			p.Table, p.Base = table, data
		} else {
			base, ok := prog.Symbol(a.Name)
			if !ok {
				return nil, fmt.Errorf("kbuild: %s: missing symbol", a.Name)
			}
			p.Base = base
		}
		out[i] = p
	}
	return out, nil
}

// Init writes values into the placed guest array. For row-pointer arrays
// it also fills the pointer table.
func (p Placement) Init(mem *guestmem.Memory, values []int64) error {
	a := p.Arr
	if len(values) != a.Elems() {
		return fmt.Errorf("kbuild: %s: %d values for %d elements", a.Name, len(values), a.Elems())
	}
	if a.Ptr {
		for r := 0; r < a.Rows; r++ {
			rowAddr := p.Base + uint64(r*a.Cols*8)
			if err := mem.Write(p.Table+uint64(8*r), 8, rowAddr); err != nil {
				return err
			}
		}
	}
	for i, v := range values {
		if err := mem.Write(p.Base+uint64(8*i), 8, uint64(v)); err != nil {
			return err
		}
	}
	return nil
}

// Read fetches the current contents of the placed guest array.
func (p Placement) Read(mem *guestmem.Memory) ([]int64, error) {
	out := make([]int64, p.Arr.Elems())
	for i := range out {
		v, err := mem.Read(p.Base+uint64(8*i), 8)
		if err != nil {
			return nil, err
		}
		out[i] = int64(v)
	}
	return out, nil
}

// InitArray writes values into the guest array, resolving its placement
// on the fly (one-shot convenience around Resolve + Placement.Init).
func InitArray(mem *guestmem.Memory, prog *riscv.Program, a *Array, values []int64) error {
	pl, err := Resolve(prog, []*Array{a})
	if err != nil {
		return err
	}
	return pl[0].Init(mem, values)
}

// ReadArray fetches the current contents of a guest array.
func ReadArray(mem *guestmem.Memory, prog *riscv.Program, a *Array) ([]int64, error) {
	pl, err := Resolve(prog, []*Array{a})
	if err != nil {
		return nil, err
	}
	return pl[0].Read(mem)
}
