package kbuild

import (
	"fmt"

	"ghostbusters/internal/guestmem"
	"ghostbusters/internal/riscv"
)

// Host-side helpers: the experiment harness initialises kernel inputs by
// writing guest memory directly before the run (the paper's benchmarks
// arrive with initialised data; generating init loops in the guest would
// only add warm-up noise) and reads results back afterwards.

// InitArray writes values into the guest array. For row-pointer arrays
// it also fills the pointer table.
func InitArray(mem *guestmem.Memory, prog *riscv.Program, a *Array, values []int64) error {
	if len(values) != a.Elems() {
		return fmt.Errorf("kbuild: %s: %d values for %d elements", a.Name, len(values), a.Elems())
	}
	if a.Ptr {
		table, ok := prog.Symbol(a.Name + "_rows")
		if !ok {
			return fmt.Errorf("kbuild: %s: missing row table symbol", a.Name)
		}
		data, ok := prog.Symbol(a.Name + "_data")
		if !ok {
			return fmt.Errorf("kbuild: %s: missing data symbol", a.Name)
		}
		for r := 0; r < a.Rows; r++ {
			rowAddr := data + uint64(r*a.Cols*8)
			if err := mem.Write(table+uint64(8*r), 8, rowAddr); err != nil {
				return err
			}
		}
		for i, v := range values {
			if err := mem.Write(data+uint64(8*i), 8, uint64(v)); err != nil {
				return err
			}
		}
		return nil
	}
	base, ok := prog.Symbol(a.Name)
	if !ok {
		return fmt.Errorf("kbuild: %s: missing symbol", a.Name)
	}
	for i, v := range values {
		if err := mem.Write(base+uint64(8*i), 8, uint64(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadArray fetches the current contents of a guest array.
func ReadArray(mem *guestmem.Memory, prog *riscv.Program, a *Array) ([]int64, error) {
	var base uint64
	var ok bool
	if a.Ptr {
		base, ok = prog.Symbol(a.Name + "_data")
	} else {
		base, ok = prog.Symbol(a.Name)
	}
	if !ok {
		return nil, fmt.Errorf("kbuild: %s: missing symbol", a.Name)
	}
	out := make([]int64, a.Elems())
	for i := range out {
		v, err := mem.Read(base+uint64(8*i), 8)
		if err != nil {
			return nil, err
		}
		out[i] = int64(v)
	}
	return out, nil
}
