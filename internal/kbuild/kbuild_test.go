package kbuild_test

import (
	"strings"
	"testing"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/kbuild"
	"ghostbusters/internal/riscv"
)

// runKernel assembles a generated kernel, initialises its arrays, runs
// it on the machine and returns the final array contents.
func runKernel(t *testing.T, b *kbuild.Builder, init map[string][]int64) map[string][]int64 {
	t.Helper()
	src, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := riscv.Assemble(src)
	if err != nil {
		t.Fatalf("generated source does not assemble: %v\n%s", err, src)
	}
	m, err := dbt.New(dbt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	for _, a := range b.Arrays() {
		vals := init[a.Name]
		if vals == nil {
			vals = make([]int64, a.Elems())
		}
		if err := kbuild.InitArray(m.Mem(), prog, a, vals); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit.Code != 0 {
		t.Fatalf("kernel exited %d", res.Exit.Code)
	}
	out := map[string][]int64{}
	for _, a := range b.Arrays() {
		v, err := kbuild.ReadArray(m.Mem(), prog, a)
		if err != nil {
			t.Fatal(err)
		}
		out[a.Name] = v
	}
	return out
}

func TestVectorAdd(t *testing.T) {
	b := kbuild.New("vadd")
	A := b.Array("A", 16)
	B2 := b.Array("B", 16)
	C := b.Array("C", 16)
	bA, bB, bC := b.BasePtr(A), b.BasePtr(B2), b.BasePtr(C)
	b.For(0, 16, func(i kbuild.Var) {
		b.Store(C, bC, b.Add(b.Load(A, bA, i), b.Load(B2, bB, i)), i)
	})
	av := make([]int64, 16)
	bv := make([]int64, 16)
	for i := range av {
		av[i], bv[i] = int64(i), int64(100*i)
	}
	out := runKernel(t, b, map[string][]int64{"A": av, "B": bv})
	for i, c := range out["C"] {
		if want := int64(i + 100*i); c != want {
			t.Fatalf("C[%d] = %d, want %d", i, c, want)
		}
	}
}

func Test2DFlatIndexing(t *testing.T) {
	b := kbuild.New("t2d")
	M := b.Array2D("M", 5, 7)
	bM := b.BasePtr(M)
	b.For(0, 5, func(i kbuild.Var) {
		b.For(0, 7, func(j kbuild.Var) {
			v := b.Add(b.Mul(i, 100), j)
			b.Store(M, bM, v, i, j)
		})
	})
	out := runKernel(t, b, nil)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if got, want := out["M"][i*7+j], int64(100*i+j); got != want {
				t.Fatalf("M[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestPtrLayoutIndexing(t *testing.T) {
	b := kbuild.New("tptr")
	M := b.Array2DPtr("M", 4, 4)
	O := b.Array("O", 16)
	bM, bO := b.BasePtr(M), b.BasePtr(O)
	idx := b.Local(0)
	b.For(0, 4, func(i kbuild.Var) {
		b.For(0, 4, func(j kbuild.Var) {
			b.Store(O, bO, b.Load(M, bM, i, j), idx)
			b.Set(idx, b.Add(idx, 1))
		})
	})
	in := make([]int64, 16)
	for i := range in {
		in[i] = int64(i * 3)
	}
	out := runKernel(t, b, map[string][]int64{"M": in})
	for i := range in {
		if out["O"][i] != in[i] {
			t.Fatalf("O[%d] = %d, want %d", i, out["O"][i], in[i])
		}
	}
}

func TestTriangularLoop(t *testing.T) {
	b := kbuild.New("tri")
	C := b.Array("C", 8)
	bC := b.BasePtr(C)
	cnt := b.Local(0)
	b.For(0, 8, func(i kbuild.Var) {
		b.Set(cnt, 0)
		b.For(0, i, func(j kbuild.Var) {
			b.Set(cnt, b.Add(cnt, 1))
		})
		b.Store(C, bC, cnt, i)
	})
	out := runKernel(t, b, nil)
	for i, v := range out["C"] {
		if v != int64(i) {
			t.Fatalf("C[%d] = %d, want %d (triangular bound)", i, v, i)
		}
	}
}

func TestMinBranchless(t *testing.T) {
	b := kbuild.New("tmin")
	A := b.Array("A", 8)
	B2 := b.Array("B", 8)
	C := b.Array("C", 8)
	bA, bB, bC := b.BasePtr(A), b.BasePtr(B2), b.BasePtr(C)
	b.For(0, 8, func(i kbuild.Var) {
		b.Store(C, bC, b.Min(b.Load(A, bA, i), b.Load(B2, bB, i)), i)
	})
	av := []int64{-5, 3, 7, -100, 0, 42, 9, -9}
	bv := []int64{5, -3, 7, 100, 1, -42, 10, -8}
	out := runKernel(t, b, map[string][]int64{"A": av, "B": bv})
	for i := range av {
		want := av[i]
		if bv[i] < want {
			want = bv[i]
		}
		if out["C"][i] != want {
			t.Fatalf("min(%d,%d) = %d, want %d", av[i], bv[i], out["C"][i], want)
		}
	}
}

func TestArithmeticOps(t *testing.T) {
	b := kbuild.New("tops")
	C := b.Array("C", 8)
	bC := b.BasePtr(C)
	x := b.Local(21)
	b.Store(C, bC, b.Add(x, 4), 0)
	b.Store(C, bC, b.Sub(x, 4), 1)
	b.Store(C, bC, b.Mul(x, 3), 2)
	b.Store(C, bC, b.Div(x, 4), 3)
	b.Store(C, bC, b.And(x, 12), 4)
	b.Store(C, bC, b.Or(x, 8), 5)
	b.Store(C, bC, b.Xor(x, 1), 6)
	b.Store(C, bC, b.Shr(b.Mul(x, 4), 3), 7)
	out := runKernel(t, b, nil)
	want := []int64{25, 17, 63, 5, 4, 29, 20, 10}
	for i, w := range want {
		if out["C"][i] != w {
			t.Fatalf("C[%d] = %d, want %d", i, out["C"][i], w)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	// Out of locals.
	b := kbuild.New("toom")
	for i := 0; i < 13; i++ {
		b.Local(0)
	}
	if _, err := b.Program(); err == nil {
		t.Error("local exhaustion not reported")
	}
	// Wrong index arity.
	b2 := kbuild.New("tarity")
	A := b2.Array2D("A", 4, 4)
	bA := b2.BasePtr(A)
	v := b2.Load(A, bA, 0) // needs two indices
	_ = v
	if _, err := b2.Program(); err == nil {
		t.Error("index arity error not reported")
	}
	// Bad For bound type.
	b3 := kbuild.New("tbound")
	b3.For(0, "nope", func(kbuild.Var) {})
	if _, err := b3.Program(); err == nil {
		t.Error("bad bound type not reported")
	}
}

func TestHostInitErrors(t *testing.T) {
	b := kbuild.New("thost")
	A := b.Array("A", 4)
	src, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog := riscv.MustAssemble(src)
	m, _ := dbt.New(dbt.DefaultConfig())
	_ = m.Load(prog)
	if err := kbuild.InitArray(m.Mem(), prog, A, make([]int64, 3)); err == nil {
		t.Error("wrong length accepted")
	}
	ghost := &kbuild.Array{Name: "nope", Rows: 1, Cols: 1}
	if err := kbuild.InitArray(m.Mem(), prog, ghost, make([]int64, 1)); err == nil {
		t.Error("missing symbol accepted")
	}
	if _, err := kbuild.ReadArray(m.Mem(), prog, ghost); err == nil {
		t.Error("missing symbol accepted on read")
	}
}

func TestGeneratedSourceShape(t *testing.T) {
	b := kbuild.New("tshape")
	b.Array("A", 4)
	b.Array2DPtr("P", 2, 2)
	src, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".data", "A:\t.space 32", "P_rows:", "P_data:", "main:", "ecall"} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
}

func TestMaxBranchless(t *testing.T) {
	b := kbuild.New("tmax")
	A := b.Array("A", 8)
	B2 := b.Array("B", 8)
	C := b.Array("C", 8)
	bA, bB, bC := b.BasePtr(A), b.BasePtr(B2), b.BasePtr(C)
	b.For(0, 8, func(i kbuild.Var) {
		b.Store(C, bC, b.Max(b.Load(A, bA, i), b.Load(B2, bB, i)), i)
	})
	av := []int64{-5, 3, 7, -100, 0, 42, 9, -9}
	bv := []int64{5, -3, 7, 100, 1, -42, 10, -8}
	out := runKernel(t, b, map[string][]int64{"A": av, "B": bv})
	for i := range av {
		want := av[i]
		if bv[i] > want {
			want = bv[i]
		}
		if out["C"][i] != want {
			t.Fatalf("max(%d,%d) = %d, want %d", av[i], bv[i], out["C"][i], want)
		}
	}
}
