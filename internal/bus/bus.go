// Package bus wires the flat guest memory and the timed data cache into
// the memory system seen by both the interpreter and the VLIW core. One
// Bus instance is shared by every execution mode of the machine, so cache
// state (the side channel) persists across interpreted and translated
// code, exactly as on the real processor.
package bus

import (
	"ghostbusters/internal/cache"
	"ghostbusters/internal/guestmem"
)

// Bus is the standard memory system: guest memory behind a data cache.
// Accesses are timed at line granularity of the first byte; the model
// does not split line-crossing accesses (guest code keeps natural
// alignment).
type Bus struct {
	Mem *guestmem.Memory
	DC  *cache.Cache

	// OnStore, when non-nil, observes every successful architectural
	// store (address, size) regardless of which execution mode issued it.
	// The DBT machine hooks the interpreter's predecode table here so
	// self-modifying guest code invalidates stale decoded entries; the
	// hook must be cheap (it runs on the store hot path).
	OnStore func(addr uint64, size int)

	// OnAccess, when non-nil, is consulted before every architectural
	// load and store; a non-nil error aborts the access with that fault.
	// The DBT machine wires its deterministic fault injector here to
	// model transient cache-lookup failures. Speculative loads bypass
	// the hook: an injected fault there would just be squashed anyway.
	OnAccess func(addr uint64, size int, store bool) error

	// OnLoad, when non-nil, observes every successful architectural
	// load after the cache access. The attack scoreboard counts the
	// probe loop's architectural touches of secret-dependent lines
	// here. Must be cheap: it runs on the load hot path, and the
	// disabled (nil) check is pinned at 0 allocs/op.
	OnLoad func(addr uint64)

	// OnSpecLoad, when non-nil, observes every successful dismissable
	// (speculative) load. The bus cannot know the issuing guest PC or
	// the cycle, so the VLIW core — the only producer of speculative
	// loads — invokes the hook itself with that context; it is
	// declared here because the scoreboard attaches to the machine's
	// memory system, not to the core.
	OnSpecLoad func(pc, addr, cycle uint64)
}

// New builds a Bus over mem with a cache configured by cfg, rejecting
// invalid cache geometry with an error.
func New(mem *guestmem.Memory, cfg cache.Config) (*Bus, error) {
	dc, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Bus{Mem: mem, DC: dc}, nil
}

// MustNew is New for configurations known valid (tests, benchmarks).
func MustNew(mem *guestmem.Memory, cfg cache.Config) *Bus {
	b, err := New(mem, cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Fetch reads an instruction word. Instruction fetch is not timed through
// the data cache (the modelled side channel is the D-cache only).
func (b *Bus) Fetch(addr uint64) (uint32, error) {
	return b.Mem.ReadWord32(addr)
}

// Load performs an architectural load: protection is enforced, the cache
// is filled, and the latency is returned.
func (b *Bus) Load(addr uint64, size int) (uint64, uint64, error) {
	if b.OnAccess != nil {
		if err := b.OnAccess(addr, size, false); err != nil {
			return 0, 0, err
		}
	}
	v, err := b.Mem.Read(addr, size)
	if err != nil {
		return 0, 0, err
	}
	lat, _ := b.DC.Access(addr)
	if b.OnLoad != nil {
		b.OnLoad(addr)
	}
	return v, lat, nil
}

// LoadSpeculative performs a dismissable load (the VLIW ldd/lds opcodes):
// faults are squashed (ok=false, zero value, no cache fill); in-range
// accesses fill the cache even when they target protected data — this is
// the microarchitectural leak of the paper.
func (b *Bus) LoadSpeculative(addr uint64, size int) (val uint64, lat uint64, ok bool) {
	v, ok := b.Mem.ReadSpeculative(addr, size)
	if !ok {
		return 0, 0, false
	}
	lat, _ = b.DC.Access(addr)
	return v, lat, true
}

// Store performs an architectural store (write-allocate).
func (b *Bus) Store(addr uint64, size int, val uint64) (uint64, error) {
	if b.OnAccess != nil {
		if err := b.OnAccess(addr, size, true); err != nil {
			return 0, err
		}
	}
	if err := b.Mem.Write(addr, size, val); err != nil {
		return 0, err
	}
	lat, _ := b.DC.Access(addr)
	if b.OnStore != nil {
		b.OnStore(addr, size)
	}
	return lat, nil
}

// FlushLine invalidates the cache line containing addr.
func (b *Bus) FlushLine(addr uint64) { b.DC.FlushLine(addr) }

// FlushAll invalidates the whole data cache.
func (b *Bus) FlushAll() { b.DC.FlushAll() }
