package bus

import (
	"testing"

	"ghostbusters/internal/cache"
	"ghostbusters/internal/guestmem"
)

func newBus() *Bus {
	return MustNew(guestmem.New(0x1000, 1<<16), cache.DefaultConfig())
}

func TestLoadStoreTiming(t *testing.T) {
	b := newBus()
	if _, err := b.Store(0x2000, 8, 0xABCD); err != nil {
		t.Fatal(err)
	}
	v, lat, err := b.Load(0x2000, 8)
	if err != nil || v != 0xABCD {
		t.Fatalf("load = %#x, %v", v, err)
	}
	if lat != 3 { // the store allocated the line
		t.Fatalf("hit latency = %d", lat)
	}
	_, lat2, _ := b.Load(0x3000, 8)
	if lat2 != 23 {
		t.Fatalf("miss latency = %d", lat2)
	}
}

func TestFetchBypassesDataCache(t *testing.T) {
	b := newBus()
	_ = b.Mem.Write(0x1004, 4, 0xDEAD)
	w, err := b.Fetch(0x1004)
	if err != nil || w != 0xDEAD {
		t.Fatalf("fetch = %#x, %v", w, err)
	}
	if b.DC.Probe(0x1004) {
		t.Fatal("instruction fetch must not fill the data cache")
	}
}

func TestLoadFaultDoesNotFill(t *testing.T) {
	b := newBus()
	if _, _, err := b.Load(0x100000, 8); err == nil {
		t.Fatal("out-of-range load should fault")
	}
	if b.DC.Probe(0x100000) {
		t.Fatal("faulting load filled the cache")
	}
}

func TestSpeculativeLoadPaths(t *testing.T) {
	b := newBus()
	_ = b.Mem.Write(0x2000, 8, 99)
	b.Mem.Protect(0x2000, 0x2008)

	if _, _, err := b.Load(0x2000, 8); err == nil {
		t.Fatal("architectural load of protected data should fault")
	}
	v, _, ok := b.LoadSpeculative(0x2000, 8)
	if !ok || v != 99 {
		t.Fatalf("speculative load = %d, %v", v, ok)
	}
	if !b.DC.Probe(0x2000) {
		t.Fatal("speculative load must fill the cache")
	}
	if _, _, ok := b.LoadSpeculative(1<<40, 8); ok {
		t.Fatal("out-of-range speculative load must squash")
	}
}

func TestFlushOps(t *testing.T) {
	b := newBus()
	_, _, _ = b.Load(0x2000, 8)
	b.FlushLine(0x2000)
	if b.DC.Probe(0x2000) {
		t.Fatal("FlushLine failed")
	}
	_, _, _ = b.Load(0x2000, 8)
	_, _, _ = b.Load(0x2040, 8)
	b.FlushAll()
	if b.DC.Probe(0x2000) || b.DC.Probe(0x2040) {
		t.Fatal("FlushAll failed")
	}
}

func TestStoreFaultPropagates(t *testing.T) {
	b := newBus()
	if _, err := b.Store(1<<40, 8, 1); err == nil {
		t.Fatal("out-of-range store should fault")
	}
}

// The observer hooks are nil by default and their disabled checks are
// free: the load paths (architectural and speculative) stay at 0
// allocs/op, the gate keeping the scoreboard zero-cost when no one is
// watching.
func TestNilHooksZeroAllocs(t *testing.T) {
	b := newBus()
	_, _, _ = b.Load(0x2000, 8) // warm the line
	allocs := testing.AllocsPerRun(1000, func() {
		_, _, _ = b.Load(0x2000, 8)
		_, _, _ = b.LoadSpeculative(0x2000, 8)
	})
	if allocs != 0 {
		t.Fatalf("load path with nil hooks allocates %.1f objects/op, want 0", allocs)
	}
}

// Installed hooks observe both load kinds (the speculative hook is
// invoked by the VLIW core, so at bus level only OnLoad fires here).
func TestOnLoadHookObserves(t *testing.T) {
	b := newBus()
	var got []uint64
	b.OnLoad = func(addr uint64) { got = append(got, addr) }
	_, _, _ = b.Load(0x2000, 8)
	_, _, _ = b.LoadSpeculative(0x2040, 8) // must NOT trigger OnLoad
	if len(got) != 1 || got[0] != 0x2000 {
		t.Fatalf("OnLoad observed %v, want [0x2000]", got)
	}
}
