package cache

// Hierarchy is a two-level data cache: a small fast L1 in front of a
// larger L2. The Spectre side channel only needs the L1, but a second
// level makes the timing model richer — three distinguishable access
// times (L1 hit, L2 hit, memory) instead of two, matching the platforms
// the paper attacks (Denver and the Hybrid-DBT FPGA system both have a
// second-level cache behind the core).
//
// Timing: an L1 hit costs L1.HitLatency; an L1 miss that hits L2 costs
// L1.HitLatency + L2.HitLatency; a full miss additionally pays
// L2.MissPenalty. The L1 MissPenalty field is ignored when a Hierarchy
// is used. The hierarchy is non-inclusive: flushes invalidate both
// levels.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
}

// HierarchyConfig configures both levels.
type HierarchyConfig struct {
	L1 Config
	L2 Config
}

// DefaultHierarchyConfig pairs the standard 16 KiB L1 with a 128 KiB
// 8-way L2 (12-cycle L2 hit on top of the L1 probe, 60-cycle memory).
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{Sets: 64, Ways: 4, LineSize: 64, HitLatency: 3, MissPenalty: 0},
		L2: Config{Sets: 256, Ways: 8, LineSize: 64, HitLatency: 12, MissPenalty: 48},
	}
}

// NewHierarchy builds a two-level cache, rejecting invalid
// configurations with an error.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1, L2: l2}, nil
}

// MustNewHierarchy is NewHierarchy for configurations known valid.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Access models a load or store through both levels and returns the
// total latency plus which level (1, 2) hit; level 0 means memory.
func (h *Hierarchy) Access(addr uint64) (latency uint64, level int) {
	lat1, hit1 := h.L1.Access(addr)
	if hit1 {
		return lat1, 1
	}
	// lat1 includes the (zero) L1 miss penalty: the L1 probe cost.
	lat2, hit2 := h.L2.Access(addr)
	if hit2 {
		return lat1 + lat2, 2
	}
	return lat1 + lat2, 0
}

// Probe reports the fastest level currently holding addr (0 = absent).
func (h *Hierarchy) Probe(addr uint64) int {
	if h.L1.Probe(addr) {
		return 1
	}
	if h.L2.Probe(addr) {
		return 2
	}
	return 0
}

// FlushLine invalidates the line in both levels.
func (h *Hierarchy) FlushLine(addr uint64) {
	h.L1.FlushLine(addr)
	h.L2.FlushLine(addr)
}

// FlushAll empties both levels.
func (h *Hierarchy) FlushAll() {
	h.L1.FlushAll()
	h.L2.FlushAll()
}
