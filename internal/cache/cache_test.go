package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHitMissLatency(t *testing.T) {
	c := MustNew(DefaultConfig())
	lat, hit := c.Access(0x1000)
	if hit || lat != 23 {
		t.Fatalf("first access: lat=%d hit=%v, want 23 false", lat, hit)
	}
	lat, hit = c.Access(0x1000)
	if !hit || lat != 3 {
		t.Fatalf("second access: lat=%d hit=%v, want 3 true", lat, hit)
	}
	// Same line, different byte.
	if _, hit := c.Access(0x103F); !hit {
		t.Fatal("same-line access should hit")
	}
	// Next line misses.
	if _, hit := c.Access(0x1040); hit {
		t.Fatal("next-line access should miss")
	}
}

func TestFlushLine(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Access(0x2000)
	if !c.Probe(0x2000) {
		t.Fatal("line should be present")
	}
	c.FlushLine(0x2010) // same line, different offset
	if c.Probe(0x2000) {
		t.Fatal("line should be flushed")
	}
	if _, hit := c.Access(0x2000); hit {
		t.Fatal("flushed line should miss")
	}
}

func TestFlushAll(t *testing.T) {
	c := MustNew(DefaultConfig())
	for i := uint64(0); i < 32; i++ {
		c.Access(i * 64)
	}
	c.FlushAll()
	for i := uint64(0); i < 32; i++ {
		if c.Probe(i * 64) {
			t.Fatalf("line %d survived FlushAll", i)
		}
	}
}

// Flushes counts invalidated lines under both flush strategies: N valid
// lines cost N flush counts whether removed one by one or all at once.
func TestFlushCountsInvalidatedLines(t *testing.T) {
	c := MustNew(DefaultConfig())
	for i := uint64(0); i < 5; i++ {
		c.Access(i * 64)
	}
	c.FlushAll()
	if f := c.Stats().Flushes; f != 5 {
		t.Fatalf("FlushAll over 5 valid lines counted %d flushes, want 5", f)
	}
	// An empty cache has nothing to invalidate.
	c.FlushAll()
	if f := c.Stats().Flushes; f != 5 {
		t.Fatalf("FlushAll on empty cache changed the count to %d", f)
	}
	// FlushLine on an absent line likewise counts nothing.
	c.FlushLine(0)
	if f := c.Stats().Flushes; f != 5 {
		t.Fatalf("FlushLine on absent line changed the count to %d", f)
	}
	// Line-by-line over the same working set matches FlushAll's count.
	for i := uint64(0); i < 5; i++ {
		c.Access(i * 64)
	}
	for i := uint64(0); i < 5; i++ {
		c.FlushLine(i * 64)
	}
	if f := c.Stats().Flushes; f != 10 {
		t.Fatalf("line-by-line flush counted %d total, want 10", f)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := Config{Sets: 1, Ways: 2, LineSize: 64, HitLatency: 1, MissPenalty: 10}
	c := MustNew(cfg)
	c.Access(0 * 64) // A
	c.Access(1 * 64) // B
	c.Access(0 * 64) // touch A -> B is LRU
	c.Access(2 * 64) // C evicts B
	if !c.Probe(0) {
		t.Fatal("A should survive (recently used)")
	}
	if c.Probe(64) {
		t.Fatal("B should be evicted (LRU)")
	}
	if !c.Probe(128) {
		t.Fatal("C should be present")
	}
}

func TestSetIndexing(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 1, LineSize: 64, HitLatency: 1, MissPenalty: 10}
	c := MustNew(cfg)
	// Addresses in different sets don't evict each other.
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(2 * 64)
	c.Access(3 * 64)
	for i := uint64(0); i < 4; i++ {
		if !c.Probe(i * 64) {
			t.Fatalf("set %d lost its line", i)
		}
	}
	// Same set (stride = Sets*LineSize) with 1 way evicts.
	c.Access(4 * 64)
	if c.Probe(0) {
		t.Fatal("direct-mapped conflict should evict")
	}
}

func TestStats(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Access(0)
	c.Access(0)
	c.Access(64)
	c.FlushLine(0)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Flushes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1, LineSize: 64},
		{Sets: 3, Ways: 1, LineSize: 64},
		{Sets: 4, Ways: 0, LineSize: 64},
		{Sets: 4, Ways: 1, LineSize: 0},
		{Sets: 4, Ways: 1, LineSize: 48},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", cfg)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Error("default config must validate")
	}
}

// Property: immediately after Access(a), Probe(a) is true; and any
// address in the same line probes identically.
func TestAccessThenProbe(t *testing.T) {
	c := MustNew(DefaultConfig())
	f := func(a uint64, off uint8) bool {
		a &= 1<<30 - 1
		c.Access(a)
		line := a &^ (c.LineSize() - 1)
		return c.Probe(a) && c.Probe(line+uint64(off)%c.LineSize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never holds more than Ways lines per set.
func TestCapacityInvariant(t *testing.T) {
	cfg := Config{Sets: 8, Ways: 2, LineSize: 64, HitLatency: 1, MissPenalty: 5}
	c := MustNew(cfg)
	r := rand.New(rand.NewSource(5))
	addrs := make([]uint64, 0, 4096)
	for i := 0; i < 4096; i++ {
		a := uint64(r.Intn(1 << 20))
		c.Access(a)
		addrs = append(addrs, a)
	}
	// Count present distinct lines per set.
	perSet := map[int]map[uint64]bool{}
	for _, a := range addrs {
		if c.Probe(a) {
			la := a / cfg.LineSize
			set := int(la % uint64(cfg.Sets))
			if perSet[set] == nil {
				perSet[set] = map[uint64]bool{}
			}
			perSet[set][la] = true
		}
	}
	for set, lines := range perSet {
		if len(lines) > cfg.Ways {
			t.Fatalf("set %d holds %d lines, ways=%d", set, len(lines), cfg.Ways)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Sets: 3, Ways: 1, LineSize: 64}); err == nil {
		t.Fatal("New with bad config must return an error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config must panic")
		}
	}()
	MustNew(Config{Sets: 3, Ways: 1, LineSize: 64})
}

// The timed lookup is the innermost primitive of the simulator: it must
// never allocate, hit or miss, so the flat line array stays the only
// storage the cache ever touches after New.
func TestAccessZeroAllocs(t *testing.T) {
	c := MustNew(DefaultConfig())
	var addr uint64
	allocs := testing.AllocsPerRun(1000, func() {
		addr += 64
		c.Access(addr) // miss path (fill + possible eviction)
		c.Access(addr) // hit path
		c.Probe(addr)
		c.FlushLine(addr - 4096)
	})
	if allocs != 0 {
		t.Fatalf("cache access path allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := MustNew(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride over 4× the cache capacity: a realistic hit/miss mix.
		c.Access(uint64(i%1024) * 64)
	}
}
