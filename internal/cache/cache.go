// Package cache implements the timed set-associative data cache of the
// simulated processor. It is a tag-only timing model: data lives in guest
// memory; the cache decides how many cycles each access costs. The cache
// is the side channel of the Spectre attacks — speculative loads fill
// lines, and the attacker distinguishes hits from misses with rdcycle.
package cache

import "fmt"

// Config describes cache geometry and timing.
type Config struct {
	Sets        int    // number of sets (power of two)
	Ways        int    // associativity
	LineSize    uint64 // bytes per line (power of two)
	HitLatency  uint64 // cycles for a hit
	MissPenalty uint64 // extra cycles for a miss (total = HitLatency + MissPenalty)
}

// DefaultConfig returns the standard 16 KiB 4-way cache with 64-byte
// lines, 3-cycle hits and a 20-cycle miss penalty — comfortably above the
// side-channel detection threshold, like the caches in the paper's
// platforms.
func DefaultConfig() Config {
	return Config{Sets: 64, Ways: 4, LineSize: 64, HitLatency: 3, MissPenalty: 20}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: Sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	}
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: LineSize must be a positive power of two, got %d", c.LineSize)
	}
	return nil
}

// Stats accumulates access counts. Flushes counts invalidated lines:
// FlushLine contributes one per line it actually invalidates, FlushAll
// one per line that was valid when it ran.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

// HitRatePct returns the hit rate as an integer percentage (0..100),
// 0 before the first access — the shape the observability layer's
// cache-hit-rate counter track samples.
func (s Stats) HitRatePct() uint64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return s.Hits * 100 / total
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64 // last-use stamp
}

// Cache is a set-associative LRU cache timing model. The line array is
// one flat slice (set-major), so the timed lookup path — the innermost
// primitive of the whole simulator — is a single bounds-checked slice
// into contiguous memory with no per-set pointer chase and no
// allocation.
type Cache struct {
	cfg   Config
	lines []line // Sets*Ways entries; set s occupies [s*Ways, (s+1)*Ways)
	stamp uint64
	stats Stats

	// OnFlush, when non-nil, observes every flush operation after it
	// completes: the flushed address (line flushes only — 0 for a full
	// flush), how many lines were actually invalidated, and whether it
	// was a whole-cache flush. Flushes are the attacker's half of the
	// cache side channel, so the observability layer hooks here; the
	// hook stays off the Access hot path entirely.
	OnFlush func(addr uint64, lines int, all bool)
}

// New builds a cache from cfg, rejecting invalid configurations with an
// error (the simulator core never panics; see internal/trap).
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{cfg: cfg, lines: make([]line, cfg.Sets*cfg.Ways)}, nil
}

// MustNew is New for configurations known valid (tests, benchmarks).
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / c.cfg.LineSize
	return int(lineAddr % uint64(c.cfg.Sets)), lineAddr / uint64(c.cfg.Sets)
}

// Access models a load or store of the line containing addr (write-
// allocate, so both directions fill). It returns the latency in cycles
// and whether the access hit.
func (c *Cache) Access(addr uint64) (latency uint64, hit bool) {
	c.stamp++
	set, tag := c.index(addr)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.stamp
			c.stats.Hits++
			return c.cfg.HitLatency, true
		}
	}
	c.stats.Misses++
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = line{valid: true, tag: tag, lru: c.stamp}
	return c.cfg.HitLatency + c.cfg.MissPenalty, false
}

// Probe reports whether the line containing addr is present, without
// touching LRU state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// FlushLine invalidates the line containing addr (the cflush instruction).
func (c *Cache) FlushLine(addr uint64) {
	set, tag := c.index(addr)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	flushed := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i] = line{}
			c.stats.Flushes++
			flushed++
		}
	}
	if c.OnFlush != nil {
		c.OnFlush(addr, flushed, false)
	}
}

// FlushAll invalidates every line (the cflushall instruction). Like
// FlushLine, Stats.Flushes counts each line actually invalidated — not
// one per instruction — so the two flush strategies are comparable.
func (c *Cache) FlushAll() {
	flushed := 0
	for i := range c.lines {
		if c.lines[i].valid {
			c.stats.Flushes++
			flushed++
		}
		c.lines[i] = line{}
	}
	if c.OnFlush != nil {
		c.OnFlush(0, flushed, true)
	}
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint64 { return c.cfg.LineSize }
