package cache

import "testing"

func TestHierarchyThreeTimingLevels(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	// Cold: memory access through both levels.
	lat, level := h.Access(0x4000)
	if level != 0 {
		t.Fatalf("cold access hit level %d", level)
	}
	memLat := lat
	// Now both levels hold it: L1 hit.
	lat, level = h.Access(0x4000)
	if level != 1 || lat != 3 {
		t.Fatalf("L1 hit: lat=%d level=%d", lat, level)
	}
	// Evict from L1 only, keep L2: L2 hit, intermediate latency.
	h.L1.FlushLine(0x4000)
	lat, level = h.Access(0x4000)
	if level != 2 {
		t.Fatalf("expected L2 hit, got level %d", level)
	}
	if lat <= 3 || lat >= memLat {
		t.Fatalf("L2 latency %d should sit between L1 (3) and memory (%d)", lat, memLat)
	}
}

func TestHierarchyProbe(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	if h.Probe(0x100) != 0 {
		t.Fatal("empty hierarchy probes nonzero")
	}
	h.Access(0x100)
	if h.Probe(0x100) != 1 {
		t.Fatal("after access, L1 should hold the line")
	}
	h.L1.FlushLine(0x100)
	if h.Probe(0x100) != 2 {
		t.Fatal("after L1 flush, L2 should still hold the line")
	}
	h.FlushLine(0x100)
	if h.Probe(0x100) != 0 {
		t.Fatal("FlushLine must clear both levels")
	}
}

func TestHierarchyFlushAll(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	for i := uint64(0); i < 16; i++ {
		h.Access(i * 64)
	}
	h.FlushAll()
	for i := uint64(0); i < 16; i++ {
		if h.Probe(i*64) != 0 {
			t.Fatalf("line %d survived FlushAll", i)
		}
	}
}

func TestHierarchyL1EvictionFallsToL2(t *testing.T) {
	cfg := HierarchyConfig{
		L1: Config{Sets: 1, Ways: 1, LineSize: 64, HitLatency: 1, MissPenalty: 0},
		L2: Config{Sets: 64, Ways: 4, LineSize: 64, HitLatency: 5, MissPenalty: 20},
	}
	h := MustNewHierarchy(cfg)
	h.Access(0)  // fills L1+L2
	h.Access(64) // evicts 0 from the 1-entry L1, L2 keeps both
	if h.Probe(0) != 2 {
		t.Fatalf("evicted line should remain in L2, probe=%d", h.Probe(0))
	}
	lat, level := h.Access(0)
	if level != 2 || lat != 1+5 {
		t.Fatalf("L2 refill: lat=%d level=%d", lat, level)
	}
}
