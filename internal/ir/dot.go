package ir

import (
	"fmt"
	"sort"
	"strings"
)

// DotOverlay is the audit overlay Dot can render on top of the plain
// data-flow graph: poisoned nodes outlined blue with their value flow
// in bold blue, pinned (mitigated) accesses outlined red with a
// "pinned" tag, guard instructions tagged "guard". Build one by hand
// or from an AuditReport via its Overlay method.
type DotOverlay struct {
	Poisoned map[int]bool
	Pinned   map[int]bool
	Guards   map[int]bool
}

func (ov *DotOverlay) poisoned(i int) bool { return ov != nil && ov.Poisoned[i] }
func (ov *DotOverlay) pinned(i int) bool   { return ov != nil && ov.Pinned[i] }
func (ov *DotOverlay) guard(i int) bool    { return ov != nil && ov.Guards[i] }

// Dot renders the block's data-flow graph in Graphviz format, in the
// style of the paper's Figure 3: solid arrows for data dependencies,
// solid heavy arrows for memory/control ordering, dashed red arrows for
// mitigation-inserted guard dependencies, and double-lined blue arrows
// for poisoned value flow. ov (may be nil for a plain rendering)
// highlights the audited poison analysis: poisoned producers, pinned
// accesses, guard sources.
func (b *Block) Dot(ov *DotOverlay) string {
	var sb strings.Builder
	sb.WriteString("digraph block {\n")
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	fmt.Fprintf(&sb, "  label=\"block @%#x\";\n", b.EntryPC)

	for i := range b.Insts {
		in := &b.Insts[i]
		label := fmt.Sprintf("n%d: %s", i, in.Op)
		if in.IsBranch() {
			label += fmt.Sprintf("\\nexit %#x", in.BranchExit)
		}
		switch {
		case ov.pinned(i):
			label += "\\n[pinned]"
		case ov.guard(i):
			label += "\\n[guard]"
		case ov.poisoned(i):
			label += "\\n[poisoned]"
		}
		attrs := ""
		switch {
		case in.IsStore():
			attrs = ", style=filled, fillcolor=lightyellow"
		case in.IsLoad():
			attrs = ", style=filled, fillcolor=lightcyan"
		case in.IsBranch():
			attrs = ", style=filled, fillcolor=mistyrose"
		}
		switch {
		case ov.pinned(i):
			attrs += ", color=red, penwidth=2.5"
		case ov.poisoned(i):
			attrs += ", color=blue, penwidth=2"
		case ov.guard(i):
			attrs += ", color=red4, penwidth=2"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"%s];\n", i, label, attrs)
	}

	// Data-flow edges from operands.
	for i := range b.Insts {
		in := &b.Insts[i]
		for _, op := range [2]Operand{in.A, in.B} {
			if op.Kind != OpInst {
				continue
			}
			style := "solid"
			color := "black"
			if ov.poisoned(op.Inst) {
				// The paper's "poisoned" double blue arrows.
				color = "blue"
				style = "bold"
			}
			fmt.Fprintf(&sb, "  n%d -> n%d [style=%s, color=%s];\n", op.Inst, i, style, color)
		}
	}

	// Ordering edges, deduplicated and stable.
	type key struct {
		from, to int
		kind     EdgeKind
		relax    bool
	}
	seen := map[key]bool{}
	var edges []key
	for _, e := range b.Edges {
		k := key{e.From, e.To, e.Kind, e.Relaxable}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, k)
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].from != edges[b].from {
			return edges[a].from < edges[b].from
		}
		return edges[a].to < edges[b].to
	})
	for _, e := range edges {
		attr := "color=gray40"
		switch {
		case e.kind == EdgeGuard:
			// The paper's red dashed control dependency (Fig. 3C).
			attr = "color=red, style=dashed, penwidth=2"
		case e.relax:
			attr = "color=gray, style=dotted"
		}
		fmt.Fprintf(&sb, "  n%d -> n%d [%s, label=\"%s\"];\n", e.from, e.to, attr, e.kind)
	}
	sb.WriteString("}\n")
	return sb.String()
}
