package ir

import "ghostbusters/internal/riscv"

// Builder constructs a Block with register renaming and automatic
// dependency edges. The translator feeds it guest instructions in
// program order; the builder maintains the data-flow operands (which
// earlier instruction currently defines each architectural register) and
// inserts memory, control, and barrier ordering edges.
//
// Edge policy (matching a speculating DBT engine):
//   - store -> later load, addresses not provably disjoint: RELAXABLE
//     memory edge (the scheduler may hoist the load = memory dependency
//     speculation via the Memory Conflict Buffer);
//   - load -> later store, store -> store: hard memory edge (stores are
//     never executed speculatively);
//   - branch -> later load or ALU result: RELAXABLE control edge (the
//     scheduler may hoist = branch speculation into hidden registers);
//   - branch -> later store or branch: hard control edge;
//   - everything with an architectural effect -> the next branch: hard
//     edge (a taken side exit must observe all earlier effects; the
//     scheduler does no downward motion across exits);
//   - rdcycle / cflush / fence: two-sided barrier for memory operations,
//     branches, and other barriers.
type Builder struct {
	blk      *Block
	regs     [32]Operand // current definition of each arch register
	memOps   []int       // prior loads and stores (for alias edges)
	branches []int       // prior side-exit branches
	sinceBr  []int       // arch-effecting insts since the last branch
	barrier  int         // index of the last barrier, -1 if none
}

// NewBuilder starts a block at the given guest PC.
func NewBuilder(entryPC uint64) *Builder {
	return &Builder{blk: &Block{EntryPC: entryPC}, barrier: -1}
}

// Reg returns the operand currently defining architectural register r.
func (bu *Builder) Reg(r uint8) Operand {
	if r == 0 {
		return Operand{}
	}
	if bu.regs[r].Kind == OpNone {
		return RegIn(r)
	}
	return bu.regs[r]
}

// Block finalises and returns the block.
func (bu *Builder) Block() *Block {
	b := bu.blk
	return b
}

// Len returns the number of instructions emitted so far.
func (bu *Builder) Len() int { return len(bu.blk.Insts) }

// SetFallthrough records where execution continues after the block.
func (bu *Builder) SetFallthrough(pc uint64, terminator bool) {
	bu.blk.FallPC = pc
	bu.blk.TerminatorExit = terminator
}

// Emit appends an instruction, wiring dependency edges and updating the
// register renaming. It returns the instruction index.
func (bu *Builder) Emit(in Inst) int {
	idx := bu.blk.AddInst(in)
	b := bu.blk

	switch {
	case in.IsLoad():
		for _, m := range bu.memOps {
			prior := &b.Insts[m]
			if !prior.IsStore() {
				continue
			}
			switch aliases(b, m, idx) {
			case aliasNever:
				// provably disjoint: no edge
			case aliasAlways:
				b.AddEdge(Edge{From: m, To: idx, Kind: EdgeMem, Relaxable: false})
			default:
				// Unknown: the DBT engine speculates here (Spectre v4
				// vector) — relaxable edge.
				b.AddEdge(Edge{From: m, To: idx, Kind: EdgeMem, Relaxable: true})
			}
		}
		for _, br := range bu.branches {
			// Loads may be hoisted above side exits (Spectre v1 vector).
			b.AddEdge(Edge{From: br, To: idx, Kind: EdgeCtrl, Relaxable: true})
		}
		bu.memOps = append(bu.memOps, idx)
		bu.sinceBr = append(bu.sinceBr, idx)

	case in.IsStore():
		for _, m := range bu.memOps {
			if aliases(b, m, idx) == aliasNever {
				continue
			}
			b.AddEdge(Edge{From: m, To: idx, Kind: EdgeMem, Relaxable: false})
		}
		for _, br := range bu.branches {
			b.AddEdge(Edge{From: br, To: idx, Kind: EdgeCtrl, Relaxable: false})
		}
		bu.memOps = append(bu.memOps, idx)
		bu.sinceBr = append(bu.sinceBr, idx)

	case in.IsBranch(), in.Op == riscv.JALR:
		// Side-exit branches and the indirect-jump terminator: a taken
		// exit must observe every earlier architectural effect.
		for _, br := range bu.branches {
			b.AddEdge(Edge{From: br, To: idx, Kind: EdgeCtrl, Relaxable: false})
		}
		for _, e := range bu.sinceBr {
			b.AddEdge(Edge{From: e, To: idx, Kind: EdgeCtrl, Relaxable: false})
		}
		bu.branches = append(bu.branches, idx)
		bu.sinceBr = bu.sinceBr[:0]

	case in.IsBarrier():
		for _, m := range bu.memOps {
			b.AddEdge(Edge{From: m, To: idx, Kind: EdgeMem, Relaxable: false})
		}
		for _, br := range bu.branches {
			b.AddEdge(Edge{From: br, To: idx, Kind: EdgeCtrl, Relaxable: false})
		}
		if bu.barrier >= 0 {
			b.AddEdge(Edge{From: bu.barrier, To: idx, Kind: EdgeMem, Relaxable: false})
		}
		bu.barrier = idx

	default:
		// Plain ALU: may be hoisted above branches into hidden registers.
		for _, br := range bu.branches {
			b.AddEdge(Edge{From: br, To: idx, Kind: EdgeCtrl, Relaxable: true})
		}
		if in.DestArch >= 0 {
			bu.sinceBr = append(bu.sinceBr, idx)
		}
	}

	// Barrier ordering for memory ops emitted after a barrier.
	if (in.IsLoad() || in.IsStore() || in.IsBranch()) && bu.barrier >= 0 && bu.barrier != idx {
		b.AddEdge(Edge{From: bu.barrier, To: idx, Kind: EdgeMem, Relaxable: false})
	}

	if in.DestArch > 0 {
		bu.regs[in.DestArch] = FromInst(idx)
	}
	return idx
}

type aliasResult uint8

const (
	aliasUnknown aliasResult = iota
	aliasAlways
	aliasNever
)

// aliases is the trivial static alias analysis available to a DBT engine:
// it only resolves accesses with the *same base operand* (same register
// definition) and constant offsets. Everything else is unknown — which is
// exactly why DBT engines rely on memory dependency speculation (paper,
// Section III-B: "the DBT engine has no access to memory addresses, only
// register plus offset").
func aliases(b *Block, i, j int) aliasResult {
	a, c := &b.Insts[i], &b.Insts[j]
	sa, sc := a.Op.MemSize(), c.Op.MemSize()
	if sa == 0 || sc == 0 {
		return aliasUnknown // barrier pseudo mem-op
	}
	if a.A != c.A {
		return aliasUnknown
	}
	if a.Imm == c.Imm && sa == sc {
		return aliasAlways
	}
	loA, hiA := a.Imm, a.Imm+int64(sa)
	loC, hiC := c.Imm, c.Imm+int64(sc)
	if hiA <= loC || hiC <= loA {
		return aliasNever
	}
	return aliasAlways
}
