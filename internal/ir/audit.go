package ir

import "fmt"

// Audit structures record *why* the poisoning analysis reached its
// conclusions: for every poisoned node and every pinned (mitigated)
// access, the provenance chain from the source speculative load,
// through the data-flow path the poison travelled, to the guard
// branches/stores the access was made control-dependent on. They are
// produced by internal/core's audited analysis and aggregated
// machine-wide by internal/dbt; gbrun -audit and gbspectre -audit
// render them, and AuditReport.Verify replays a chain against the
// block to prove the explanation matches the graph.

// GuardKind classifies the speculation source an access was guarded
// against: a side-exit branch (Spectre v1's hoisted bounds check) or a
// possibly-aliasing store (Spectre v4's bypassed store).
type GuardKind uint8

const (
	GuardBranch GuardKind = iota
	GuardStore
)

func (k GuardKind) String() string {
	switch k {
	case GuardBranch:
		return "branch"
	case GuardStore:
		return "store"
	}
	return "?"
}

// GuardRef identifies one guard instruction implicated in a chain: the
// branch or store whose relaxable edge let the source load speculate,
// and which the mitigation therefore re-anchors the sink to.
type GuardRef struct {
	Node int       // instruction index in the block
	PC   uint64    // guest PC of the guard
	Op   string    // guest mnemonic
	Kind GuardKind // branch (v1) or store (v4)
}

// ProvenanceChain explains one analysis conclusion. Path is the
// data-flow walk the poison took, oldest first: Path[0] is the source
// speculative load that generated the poison, Path[len-1] is Node (the
// poisoned instruction, or the pinned access whose address the poison
// reached). Each consecutive pair is a producer→consumer operand step
// in the block. Guards are the speculation sources the poison is
// conditional on.
type ProvenanceChain struct {
	Node   int    // the instruction this chain explains
	PC     uint64 // its guest PC
	Op     string // its guest mnemonic
	Source int    // == Path[0], the poison-generating speculative load
	Path   []int
	Guards []GuardRef

	// Pass names the mitigation pipeline pass that produced (or, for
	// detection-only modes, explained) this chain. Empty when the
	// report was produced outside a pipeline (direct core.ApplyAudited).
	Pass string
}

// Depth is the number of data-flow steps from source to node; a source
// load explaining itself has depth 0.
func (c *ProvenanceChain) Depth() int { return len(c.Path) - 1 }

// AuditReport is the per-block output of the audited poison analysis.
type AuditReport struct {
	EntryPC uint64

	// LoadsAnalyzed counts every load in the block; SpeculativeLoads
	// those with at least one relaxable incoming edge (the scheduler
	// may hoist them); RelaxedLoads the speculative loads the analysis
	// proved safe and left speculating.
	LoadsAnalyzed    int
	SpeculativeLoads int
	RelaxedLoads     int

	// GuardEdges is the number of EdgeGuard control dependencies the
	// mitigation inserted (ghostbusters mode only).
	GuardEdges int

	// Poisoned has one chain per poisoned instruction (including the
	// source loads themselves, at depth 0). Pinned has one chain per
	// risky access — a speculative load whose address is poisoned, the
	// Spectre pattern — explaining which source load taints the
	// address and which guards the mitigation anchors it to.
	Poisoned []ProvenanceChain
	Pinned   []ProvenanceChain

	// Passes attributes the mitigation work to the pipeline passes that
	// performed it, in application order. Populated only when the block
	// was mitigated through a pipeline (internal/core/pipeline); direct
	// core.ApplyAudited leaves it empty.
	Passes []PassAttribution
}

// PassAttribution is one pipeline pass's share of the mitigation work
// on this block.
type PassAttribution struct {
	Pass          string // registered pass name
	RiskyLoads    int    // Spectre-pattern accesses this pass handled
	GuardEdges    int    // EdgeGuard dependencies it inserted
	PinnedEdges   int    // relaxable edges it made hard
	InsertedInsts int    // instructions it added to the block
}

// verifyChain replays one chain against the block: every claimed
// data-flow step must be a real operand reference, the source must be
// a load, and every guard must be a branch or store of the claimed
// kind appearing before the explained node.
func (a *AuditReport) verifyChain(b *Block, what string, c *ProvenanceChain) error {
	n := len(b.Insts)
	if c.Node < 0 || c.Node >= n {
		return fmt.Errorf("ir: audit %s chain: node n%d out of range", what, c.Node)
	}
	if len(c.Path) == 0 {
		return fmt.Errorf("ir: audit %s chain for n%d: empty path", what, c.Node)
	}
	if c.Path[0] != c.Source {
		return fmt.Errorf("ir: audit %s chain for n%d: path starts at n%d, source says n%d", what, c.Node, c.Path[0], c.Source)
	}
	if last := c.Path[len(c.Path)-1]; last != c.Node {
		return fmt.Errorf("ir: audit %s chain for n%d: path ends at n%d", what, c.Node, last)
	}
	if c.Source < 0 || c.Source >= n {
		return fmt.Errorf("ir: audit %s chain for n%d: source n%d out of range", what, c.Node, c.Source)
	}
	if !b.Insts[c.Source].IsLoad() {
		return fmt.Errorf("ir: audit %s chain for n%d: source n%d (%s) is not a load", what, c.Node, c.Source, b.Insts[c.Source].Op)
	}
	if in := &b.Insts[c.Node]; in.PC != c.PC || in.Op.String() != c.Op {
		return fmt.Errorf("ir: audit %s chain for n%d: records %s @%#x, block has %s @%#x", what, c.Node, c.Op, c.PC, in.Op, in.PC)
	}
	for step := 0; step+1 < len(c.Path); step++ {
		from, to := c.Path[step], c.Path[step+1]
		if to < 0 || to >= n || from < 0 || from >= n {
			return fmt.Errorf("ir: audit %s chain for n%d: step n%d->n%d out of range", what, c.Node, from, to)
		}
		in := &b.Insts[to]
		if !((in.A.Kind == OpInst && in.A.Inst == from) || (in.B.Kind == OpInst && in.B.Inst == from)) {
			return fmt.Errorf("ir: audit %s chain for n%d: claimed data-flow step n%d->n%d is not an operand of n%d", what, c.Node, from, to, to)
		}
	}
	for _, g := range c.Guards {
		if g.Node < 0 || g.Node >= n {
			return fmt.Errorf("ir: audit %s chain for n%d: guard n%d out of range", what, c.Node, g.Node)
		}
		if g.Node >= c.Node {
			return fmt.Errorf("ir: audit %s chain for n%d: guard n%d does not precede it", what, c.Node, g.Node)
		}
		gi := &b.Insts[g.Node]
		switch g.Kind {
		case GuardBranch:
			if !gi.IsBranch() {
				return fmt.Errorf("ir: audit %s chain for n%d: guard n%d (%s) claimed branch", what, c.Node, g.Node, gi.Op)
			}
		case GuardStore:
			if !gi.IsStore() {
				return fmt.Errorf("ir: audit %s chain for n%d: guard n%d (%s) claimed store", what, c.Node, g.Node, gi.Op)
			}
		default:
			return fmt.Errorf("ir: audit %s chain for n%d: guard n%d has unknown kind", what, c.Node, g.Node)
		}
		if gi.PC != g.PC || gi.Op.String() != g.Op {
			return fmt.Errorf("ir: audit %s chain for n%d: guard n%d records %s @%#x, block has %s @%#x", what, c.Node, g.Node, g.Op, g.PC, gi.Op, gi.PC)
		}
	}
	return nil
}

// Verify replays the report against the block it claims to describe.
// Every chain's data-flow path and guard references are checked
// structurally; with requireGuardEdges (ghostbusters mode, where pins
// materialise as EdgeGuard control dependencies) each pinned chain
// must additionally be backed by a real guard→node EdgeGuard for every
// guard, and the pinned node must have no relaxable incoming edge left
// (it can no longer be scheduled speculatively).
func (a *AuditReport) Verify(b *Block, requireGuardEdges bool) error {
	if a.EntryPC != b.EntryPC {
		return fmt.Errorf("ir: audit report for block @%#x applied to block @%#x", a.EntryPC, b.EntryPC)
	}
	for i := range a.Poisoned {
		if err := a.verifyChain(b, "poisoned", &a.Poisoned[i]); err != nil {
			return err
		}
	}
	for i := range a.Pinned {
		c := &a.Pinned[i]
		if err := a.verifyChain(b, "pinned", c); err != nil {
			return err
		}
		if len(c.Guards) == 0 {
			return fmt.Errorf("ir: audit pinned chain for n%d: no guards", c.Node)
		}
		if !requireGuardEdges {
			continue
		}
		for _, g := range c.Guards {
			found := false
			for _, e := range b.Edges {
				if e.From == g.Node && e.To == c.Node && e.Kind == EdgeGuard {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("ir: audit pinned chain for n%d: no guard edge from n%d in block", c.Node, g.Node)
			}
		}
		if b.HasRelaxableIn(c.Node) {
			return fmt.Errorf("ir: audit pinned chain for n%d: node still has a relaxable incoming edge", c.Node)
		}
	}
	return nil
}

// Overlay converts the report into the Dot rendering overlay: poisoned
// nodes, pinned accesses and their guards.
func (a *AuditReport) Overlay() *DotOverlay {
	if a == nil {
		return nil
	}
	ov := &DotOverlay{
		Poisoned: make(map[int]bool, len(a.Poisoned)),
		Pinned:   make(map[int]bool, len(a.Pinned)),
		Guards:   make(map[int]bool),
	}
	for i := range a.Poisoned {
		ov.Poisoned[a.Poisoned[i].Node] = true
	}
	for i := range a.Pinned {
		c := &a.Pinned[i]
		ov.Pinned[c.Node] = true
		for _, g := range c.Guards {
			ov.Guards[g.Node] = true
		}
	}
	return ov
}
