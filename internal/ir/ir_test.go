package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ghostbusters/internal/riscv"
)

func randFrom(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildSpectreV1 builds the IR of the paper's Fig. 1 gadget body as a
// trace: compare, side-exit branch, two dependent loads.
//
//	n0: slt  t = index < size
//	n1: beq  t, exit        (side exit if bounds check fails)
//	n2: lb   a = buffer[index]
//	n3: slli s = a << 7
//	n4: lb   b = arrayVal[s]
func buildSpectreV1(t *testing.T) *Block {
	t.Helper()
	bu := NewBuilder(0x1000)
	n0 := bu.Emit(Inst{Op: riscv.SLTU, A: RegIn(10), B: RegIn(11), DestArch: 5, PC: 0x1000})
	bu.Emit(Inst{Op: riscv.BEQ, A: FromInst(n0), B: Operand{}, DestArch: -1, PC: 0x1004, BranchExit: 0x2000})
	n2 := bu.Emit(Inst{Op: riscv.LB, A: RegIn(12), Imm: 0, DestArch: 6, PC: 0x1008})
	n3 := bu.Emit(Inst{Op: riscv.SLLI, A: FromInst(n2), Imm: 7, DestArch: 7, PC: 0x100c})
	bu.Emit(Inst{Op: riscv.LB, A: FromInst(n3), Imm: 0, DestArch: 28, PC: 0x1010})
	bu.SetFallthrough(0x1014, false)
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return b
}

// buildSpectreV4 builds the Fig. 2 gadget: slow store, then dependent
// loads that the scheduler may hoist above it.
//
//	n0: mul  v = r1 * r2        (long computation)
//	n1: sd   addrBuf[0] = v
//	n2: ld   a = addrBuf[0]     (same base, unknown vs n1? same base+imm -> aliasAlways)
//
// To get the speculative case the load uses a different base register
// (the DBT engine cannot prove the addresses equal), mirroring the paper.
func buildSpectreV4(t *testing.T) *Block {
	t.Helper()
	bu := NewBuilder(0x3000)
	n0 := bu.Emit(Inst{Op: riscv.MUL, A: RegIn(5), B: RegIn(6), DestArch: 7, PC: 0x3000})
	bu.Emit(Inst{Op: riscv.SD, A: RegIn(8), B: FromInst(n0), Imm: 0, DestArch: -1, PC: 0x3004})
	n2 := bu.Emit(Inst{Op: riscv.LD, A: RegIn(9), Imm: 0, DestArch: 10, PC: 0x3008})
	n3 := bu.Emit(Inst{Op: riscv.ADD, A: FromInst(n2), B: RegIn(11), DestArch: 12, PC: 0x300c})
	bu.Emit(Inst{Op: riscv.LB, A: FromInst(n3), Imm: 0, DestArch: 13, PC: 0x3010})
	bu.SetFallthrough(0x3014, false)
	b := bu.Block()
	if err := b.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return b
}

func findEdge(b *Block, from, to int) (Edge, bool) {
	for _, e := range b.Edges {
		if e.From == from && e.To == to {
			return e, true
		}
	}
	return Edge{}, false
}

func TestBuilderSpectreV1Edges(t *testing.T) {
	b := buildSpectreV1(t)
	// Branch -> both loads: relaxable ctrl edges.
	for _, load := range []int{2, 4} {
		e, ok := findEdge(b, 1, load)
		if !ok || e.Kind != EdgeCtrl || !e.Relaxable {
			t.Errorf("branch->load %d edge = %+v ok=%v, want relaxable ctrl", load, e, ok)
		}
	}
	// Compare (n0) must stay before the branch (arch effect before exit).
	if e, ok := findEdge(b, 0, 1); !ok || e.Relaxable {
		t.Errorf("n0->branch edge missing or relaxable: %+v %v", e, ok)
	}
}

func TestBuilderSpectreV4Edges(t *testing.T) {
	b := buildSpectreV4(t)
	// Store -> load with unprovable alias: relaxable mem edge.
	e, ok := findEdge(b, 1, 2)
	if !ok || e.Kind != EdgeMem || !e.Relaxable {
		t.Fatalf("store->load edge = %+v ok=%v, want relaxable mem", e, ok)
	}
	// Store -> second load too.
	if e, ok := findEdge(b, 1, 4); !ok || !e.Relaxable {
		t.Errorf("store->load2 edge = %+v ok=%v", e, ok)
	}
}

func TestBuilderAliasAnalysis(t *testing.T) {
	bu := NewBuilder(0)
	// Two accesses off the same incoming base register.
	bu.Emit(Inst{Op: riscv.SD, A: RegIn(8), B: RegIn(5), Imm: 0, DestArch: -1})
	n1 := bu.Emit(Inst{Op: riscv.LD, A: RegIn(8), Imm: 0, DestArch: 6}) // same addr: hard
	n2 := bu.Emit(Inst{Op: riscv.LD, A: RegIn(8), Imm: 8, DestArch: 7}) // disjoint: none
	n3 := bu.Emit(Inst{Op: riscv.LW, A: RegIn(8), Imm: 4, DestArch: 9}) // disjoint from sd(0,8)? overlaps [4,8): yes overlaps
	b := bu.Block()
	if e, ok := findEdge(b, 0, n1); !ok || e.Relaxable {
		t.Errorf("same-address st->ld should be hard edge, got %+v %v", e, ok)
	}
	if _, ok := findEdge(b, 0, n2); ok {
		t.Error("provably-disjoint st->ld should have no edge")
	}
	if e, ok := findEdge(b, 0, n3); !ok || e.Relaxable {
		t.Errorf("overlapping st->lw should be hard, got %+v %v", e, ok)
	}
}

func TestBuilderStoreOrdering(t *testing.T) {
	bu := NewBuilder(0)
	n0 := bu.Emit(Inst{Op: riscv.LD, A: RegIn(8), Imm: 0, DestArch: 5})
	n1 := bu.Emit(Inst{Op: riscv.SD, A: RegIn(9), B: FromInst(n0), Imm: 0, DestArch: -1})
	n2 := bu.Emit(Inst{Op: riscv.SD, A: RegIn(10), B: FromInst(n0), Imm: 0, DestArch: -1})
	b := bu.Block()
	// load -> store and store -> store are hard.
	if e, ok := findEdge(b, n0, n1); !ok || e.Relaxable {
		t.Errorf("ld->st edge = %+v %v, want hard", e, ok)
	}
	if e, ok := findEdge(b, n1, n2); !ok || e.Relaxable {
		t.Errorf("st->st edge = %+v %v, want hard", e, ok)
	}
}

func TestBuilderBarrier(t *testing.T) {
	bu := NewBuilder(0)
	n0 := bu.Emit(Inst{Op: riscv.LD, A: RegIn(8), Imm: 0, DestArch: 5})
	n1 := bu.Emit(Inst{Op: riscv.CSRRS, Imm: riscv.CSRCycle, DestArch: 6})
	n2 := bu.Emit(Inst{Op: riscv.LD, A: RegIn(8), Imm: 8, DestArch: 7})
	b := bu.Block()
	if e, ok := findEdge(b, n0, n1); !ok || e.Relaxable {
		t.Errorf("ld->rdcycle edge = %+v %v, want hard", e, ok)
	}
	if e, ok := findEdge(b, n1, n2); !ok || e.Relaxable {
		t.Errorf("rdcycle->ld edge = %+v %v, want hard", e, ok)
	}
}

func TestBuilderRenaming(t *testing.T) {
	bu := NewBuilder(0)
	if op := bu.Reg(5); op.Kind != OpRegIn || op.Reg != 5 {
		t.Fatalf("initial Reg(5) = %+v", op)
	}
	if op := bu.Reg(0); op.Kind != OpNone {
		t.Fatalf("Reg(0) = %+v, want none (constant zero)", op)
	}
	n0 := bu.Emit(Inst{Op: riscv.ADDI, A: RegIn(5), Imm: 1, DestArch: 5})
	if op := bu.Reg(5); op.Kind != OpInst || op.Inst != n0 {
		t.Fatalf("Reg(5) after write = %+v", op)
	}
}

func TestPinHelpers(t *testing.T) {
	b := buildSpectreV4(t)
	if !b.HasRelaxableIn(2) {
		t.Fatal("load n2 should have a relaxable in-edge")
	}
	b.PinInto(2)
	if b.HasRelaxableIn(2) {
		t.Fatal("PinInto left a relaxable edge")
	}
	// PinFrom on the store pins the other load as well.
	if !b.HasRelaxableIn(4) {
		t.Fatal("load n4 should still be relaxable")
	}
	b.PinFrom(1)
	if b.HasRelaxableIn(4) {
		t.Fatal("PinFrom(store) left load n4 relaxable")
	}
	b2 := buildSpectreV1(t)
	b2.PinAll()
	for _, e := range b2.Edges {
		if e.Relaxable {
			t.Fatal("PinAll left a relaxable edge")
		}
	}
}

func TestVerifyCatchesBadBlocks(t *testing.T) {
	cases := []func() *Block{
		func() *Block { // operand references later inst
			b := &Block{}
			b.AddInst(Inst{Op: riscv.ADD, A: FromInst(1), DestArch: 5})
			b.AddInst(Inst{Op: riscv.ADD, DestArch: 6})
			return b
		},
		func() *Block { // backward edge
			b := &Block{}
			b.AddInst(Inst{Op: riscv.ADD, DestArch: 5})
			b.AddInst(Inst{Op: riscv.ADD, DestArch: 6})
			b.AddEdge(Edge{From: 1, To: 0})
			return b
		},
		func() *Block { // branch without exit
			b := &Block{}
			b.AddInst(Inst{Op: riscv.BEQ, DestArch: -1})
			return b
		},
		func() *Block { // store defining a register
			b := &Block{}
			b.AddInst(Inst{Op: riscv.SD, DestArch: 4})
			return b
		},
		func() *Block { // relaxable guard edge
			b := &Block{}
			b.AddInst(Inst{Op: riscv.ADD, DestArch: 5})
			b.AddInst(Inst{Op: riscv.ADD, DestArch: 6})
			b.AddEdge(Edge{From: 0, To: 1, Kind: EdgeGuard, Relaxable: true})
			return b
		},
	}
	for i, mk := range cases {
		if err := mk().Verify(); err == nil {
			t.Errorf("case %d: Verify should fail", i)
		}
	}
}

func TestBlockString(t *testing.T) {
	b := buildSpectreV1(t)
	s := b.String()
	if s == "" || len(s) < 40 {
		t.Fatalf("String too short: %q", s)
	}
}

func TestDotExport(t *testing.T) {
	b := buildSpectreV4(t)
	b.AddEdge(Edge{From: 1, To: 4, Kind: EdgeGuard})
	dot := b.Dot(&DotOverlay{Poisoned: map[int]bool{2: true, 3: true}})
	for _, want := range []string{
		"digraph block",
		"n0 ->", "color=red, style=dashed", // the guard dependency
		"color=blue", // poisoned value flow
		"mem",        // edge labels
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
	// Plain rendering (no poison) still works.
	if plain := b.Dot(nil); !strings.Contains(plain, "digraph") {
		t.Error("plain Dot broken")
	}
}

// Property: any instruction sequence emitted through the Builder yields
// a block that passes Verify — the Builder maintains all IR invariants
// by construction.
func TestBuilderAlwaysProducesValidBlocks(t *testing.T) {
	ops := []struct {
		op   riscv.Op
		kind int // 0 aluRR, 1 aluRI, 2 load, 3 store, 4 branch, 5 barrier
	}{
		{riscv.ADD, 0}, {riscv.MUL, 0}, {riscv.XOR, 0}, {riscv.SLT, 0},
		{riscv.ADDI, 1}, {riscv.ANDI, 1}, {riscv.SLLI, 1},
		{riscv.LD, 2}, {riscv.LW, 2}, {riscv.LBU, 2},
		{riscv.SD, 3}, {riscv.SB, 3},
		{riscv.BEQ, 4}, {riscv.BLT, 4},
		{riscv.CSRRS, 5}, {riscv.CFLUSH, 5}, {riscv.FENCE, 5},
	}
	f := func(seed int64, length uint8) bool {
		r := randFrom(seed)
		bu := NewBuilder(0x1000)
		cur := map[uint8]int{}
		operand := func() Operand {
			reg := uint8(5 + r.Intn(10))
			if d, ok := cur[reg]; ok {
				return FromInst(d)
			}
			return RegIn(reg)
		}
		n := 1 + int(length%40)
		for i := 0; i < n; i++ {
			c := ops[r.Intn(len(ops))]
			in := Inst{Op: c.op, PC: uint64(0x1000 + 4*i), DestArch: -1}
			switch c.kind {
			case 0:
				in.A, in.B = operand(), operand()
				in.DestArch = int8(5 + r.Intn(10))
			case 1:
				in.A, in.Imm = operand(), int64(r.Intn(100))
				in.DestArch = int8(5 + r.Intn(10))
			case 2:
				in.A, in.Imm = operand(), int64(8*r.Intn(32))
				in.DestArch = int8(5 + r.Intn(10))
			case 3:
				in.A, in.B, in.Imm = operand(), operand(), int64(8*r.Intn(32))
			case 4:
				in.A, in.B, in.BranchExit = operand(), operand(), 0x9000
			case 5:
				if c.op == riscv.CSRRS {
					in.Imm = riscv.CSRCycle
					in.DestArch = int8(5 + r.Intn(10))
				}
				if c.op == riscv.CFLUSH {
					in.A = operand()
				}
			}
			id := bu.Emit(in)
			if in.DestArch > 0 {
				cur[uint8(in.DestArch)] = id
			}
		}
		bu.SetFallthrough(0x2000, false)
		return bu.Block().Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertInstsRenumbers(t *testing.T) {
	b := buildSpectreV1(t)
	before := append([]Inst(nil), b.Insts...)
	edgesBefore := append([]Edge(nil), b.Edges...)
	// Insert a two-inst TempDest chain before n3. The first element
	// references an existing instruction by its pre-insertion index
	// (0 < at, so it stays meaningful); the second references the first
	// by its final index at+0 = 3 and an existing one (n2 < at).
	chain := []Inst{
		{Op: riscv.XORI, A: FromInst(0), Imm: 1, DestArch: TempDest},
		{Op: riscv.AND, A: FromInst(3), B: FromInst(2), DestArch: TempDest},
	}
	b.InsertInsts(3, chain)
	if len(b.Insts) != len(before)+2 {
		t.Fatalf("len = %d, want %d", len(b.Insts), len(before)+2)
	}
	if b.Insts[3].A.Inst != 0 {
		t.Errorf("inserted[0].A = %v, want n0", b.Insts[3].A)
	}
	if b.Insts[4].A.Inst != 3 || b.Insts[4].B.Inst != 2 {
		t.Errorf("inserted[1] operands = %v, %v, want n3 (chain head), n2", b.Insts[4].A, b.Insts[4].B)
	}
	// Old n3 moved to index 5; its operand (n2 < at) is unshifted.
	if b.Insts[5].Op != riscv.SLLI || b.Insts[5].A.Inst != 2 {
		t.Errorf("shifted slli = %+v", b.Insts[5])
	}
	// Old n4 read n3, which is now index 5.
	if b.Insts[6].A.Inst != 5 {
		t.Errorf("shifted load reads %v, want n5", b.Insts[6].A)
	}
	shift := func(i int) int {
		if i >= 3 {
			return i + 2
		}
		return i
	}
	for k, e := range edgesBefore {
		got := b.Edges[k]
		if got.From != shift(e.From) || got.To != shift(e.To) || got.Kind != e.Kind {
			t.Errorf("edge %d = %+v, want shifted %+v", k, got, e)
		}
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertInstsEmpty(t *testing.T) {
	b := buildSpectreV1(t)
	before := append([]Inst(nil), b.Insts...)
	b.InsertInsts(2, nil)
	if len(b.Insts) != len(before) || b.Insts[2].A != before[2].A {
		t.Fatal("empty insertion changed the block")
	}
}

// TempDest instructions may read superseded values (entry value of a
// redefined register, or an earlier definition's result); the same read
// from an instruction with an architectural destination violates the
// renaming invariant.
func TestVerifyTempDestExemptions(t *testing.T) {
	mk := func(dest int8) *Block {
		return &Block{Insts: []Inst{
			{Op: riscv.ADD, A: RegIn(6), DestArch: 5},
			{Op: riscv.XORI, A: FromInst(0), Imm: 1, DestArch: 5}, // redefines x5
			{Op: riscv.ANDI, A: FromInst(0), Imm: 7, DestArch: dest},
		}}
	}
	if err := mk(TempDest).Verify(); err != nil {
		t.Fatalf("TempDest read of a superseded definition must pass Verify: %v", err)
	}
	if err := mk(7).Verify(); err == nil {
		t.Fatal("architectural read of a superseded definition must fail Verify")
	}
	withEntryRead := func(dest int8) *Block {
		b := mk(TempDest)
		b.Insts = append(b.Insts, Inst{Op: riscv.ORI, A: RegIn(5), Imm: 1, DestArch: dest})
		return b
	}
	if err := withEntryRead(TempDest).Verify(); err != nil {
		t.Fatalf("TempDest read of a redefined entry register must pass Verify: %v", err)
	}
	if err := withEntryRead(9).Verify(); err == nil {
		t.Fatal("architectural read of a redefined entry register must fail Verify")
	}
}

func TestStringRendersTempDest(t *testing.T) {
	b := &Block{Insts: []Inst{
		{Op: riscv.ADD, A: RegIn(6), DestArch: 5},
		{Op: riscv.XORI, A: FromInst(0), Imm: 1, DestArch: TempDest},
	}}
	if s := b.String(); !strings.Contains(s, "tmp") {
		t.Fatalf("String does not render TempDest as tmp:\n%s", s)
	}
}
