// Package ir defines the intermediate representation of the DBT engine:
// one data-flow graph per translation block (basic block, superblock, or
// trace). Instructions reference their operands as either block-entry
// architectural registers or results of earlier instructions; ordering
// requirements that are not visible in the data flow (memory dependencies
// and control dependencies on side-exit branches) are explicit edges.
//
// An edge may be Relaxable: the instruction scheduler is allowed to break
// it and schedule the destination before the source, which is exactly the
// software speculation of a DBT-based processor — hoisting a load above a
// conditional branch (the paper's Spectre v1 vector) or above a store
// with an unprovably-disjoint address (the Spectre v4 vector). The
// GhostBusters countermeasure (internal/core) flips Relaxable edges back
// to hard edges where its poison analysis finds the Spectre pattern.
package ir

import (
	"fmt"

	"ghostbusters/internal/riscv"
)

// OperandKind says what an Operand refers to.
type OperandKind uint8

const (
	OpNone  OperandKind = iota // unused operand slot
	OpRegIn                    // architectural register value at block entry
	OpInst                     // result of an earlier instruction in the block
)

// Operand is a data-flow reference.
type Operand struct {
	Kind OperandKind
	Reg  uint8 // for OpRegIn: architectural register number
	Inst int   // for OpInst: producer instruction index
}

// RegIn returns an operand reading arch register r at block entry.
func RegIn(r uint8) Operand {
	if r == 0 {
		return Operand{} // x0 reads as the constant zero -> no dependency
	}
	return Operand{Kind: OpRegIn, Reg: r}
}

// FromInst returns an operand reading the result of instruction i.
func FromInst(i int) Operand { return Operand{Kind: OpInst, Inst: i} }

func (o Operand) String() string {
	switch o.Kind {
	case OpRegIn:
		return "in:" + riscv.RegName(o.Reg)
	case OpInst:
		return fmt.Sprintf("n%d", o.Inst)
	}
	return "-"
}

// TempDest marks a mitigation-inserted instruction whose result lives
// only in a hidden register: it is a value producer (other instructions
// may reference it as an operand) but defines no architectural register
// and is never committed. The guest ISA never produces TempDest, so a
// mitigation pass can use it as a reliable marker for its own inserted
// code (idempotence checks). TempDest instructions are exempt from the
// renaming invariant: they may read values superseded later in the
// block — the scheduler's anti-dependence edges order them before the
// redefinition.
const TempDest int8 = -2

// Inst is one IR instruction. The operation vocabulary is the guest ISA
// (the Hybrid-DBT IR stays close to RISC-V); the VLIW backend adds its
// own speculative opcodes at code generation.
type Inst struct {
	Op  riscv.Op
	A   Operand // rs1 / load-store address base
	B   Operand // rs2 / store data
	Imm int64   // immediate / address offset / CSR number

	// DestArch is the architectural register this instruction defines,
	// or -1 for instructions without a register result (stores,
	// branches, flushes) and for x0 destinations.
	DestArch int8

	// PC is the guest address this instruction was translated from.
	PC uint64

	// BranchExit is the guest address execution continues at when a
	// (normalised) side-exit branch is taken. Inside a trace every
	// conditional branch is normalised so that taken == leave the trace.
	BranchExit uint64
}

// IsLoad reports whether the instruction reads data memory.
func (in *Inst) IsLoad() bool { return in.Op.IsLoad() }

// IsStore reports whether the instruction writes data memory.
func (in *Inst) IsStore() bool { return in.Op.IsStore() }

// IsBranch reports whether the instruction is a conditional side exit.
func (in *Inst) IsBranch() bool { return in.Op.IsBranch() }

// IsBarrier reports whether the instruction must not be reordered with
// any memory operation or branch (cycle-CSR reads and cache flushes: both
// observe or mutate the micro-architectural state the side channel uses).
func (in *Inst) IsBarrier() bool {
	switch in.Op {
	case riscv.CSRRW, riscv.CSRRS, riscv.CSRRC, riscv.CFLUSH, riscv.CFLUSHALL, riscv.FENCE:
		return true
	}
	return false
}

// EdgeKind classifies an ordering edge.
type EdgeKind uint8

const (
	// EdgeMem orders two memory operations (store->load, load->store,
	// store->store) that may alias.
	EdgeMem EdgeKind = iota
	// EdgeCtrl orders an instruction after a side-exit branch.
	EdgeCtrl
	// EdgeGuard is a mitigation-inserted control dependency (the
	// paper's red dashed arrow in Fig. 3C). Never relaxable.
	EdgeGuard
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeMem:
		return "mem"
	case EdgeCtrl:
		return "ctrl"
	case EdgeGuard:
		return "guard"
	}
	return "?"
}

// Edge requires To to be scheduled strictly after From, unless Relaxable
// and the scheduler chooses to speculate across it.
type Edge struct {
	From, To  int
	Kind      EdgeKind
	Relaxable bool
}

// Block is one translation unit: straight-line instructions with side
// exits, plus the dependency edges between them.
type Block struct {
	EntryPC uint64
	Insts   []Inst
	Edges   []Edge

	// FallPC is the guest address execution continues at when the block
	// runs to completion (no side exit taken). Zero when the block ends
	// in an unconditional control transfer handled by the last Inst.
	FallPC uint64

	// TerminatorExit reports that the block ends with an unconditional
	// jump already folded into FallPC.
	TerminatorExit bool
}

// AddInst appends an instruction and returns its index.
func (b *Block) AddInst(in Inst) int {
	b.Insts = append(b.Insts, in)
	return len(b.Insts) - 1
}

// AddEdge appends an ordering edge.
func (b *Block) AddEdge(e Edge) {
	b.Edges = append(b.Edges, e)
}

// InsertInsts inserts insts immediately before instruction at,
// renumbering every operand and edge reference in the block. Operands
// of the inserted instructions may reference existing instructions by
// their pre-insertion index (only indices < at stay meaningful) or
// earlier inserted instructions by their final index (at+k). Existing
// references map as: i < at stays i, i >= at becomes i+len(insts).
func (b *Block) InsertInsts(at int, insts []Inst) {
	n := len(insts)
	if n == 0 {
		return
	}
	shift := func(i int) int {
		if i >= at {
			return i + n
		}
		return i
	}
	for i := at; i < len(b.Insts); i++ { // earlier insts only reference earlier indices
		in := &b.Insts[i]
		if in.A.Kind == OpInst {
			in.A.Inst = shift(in.A.Inst)
		}
		if in.B.Kind == OpInst {
			in.B.Inst = shift(in.B.Inst)
		}
	}
	for k := range b.Edges {
		b.Edges[k].From = shift(b.Edges[k].From)
		b.Edges[k].To = shift(b.Edges[k].To)
	}
	b.Insts = append(b.Insts[:at], append(append([]Inst{}, insts...), b.Insts[at:]...)...)
}

// InEdges returns the indices of edges pointing at instruction i.
func (b *Block) InEdges(i int) []int {
	var out []int
	for k, e := range b.Edges {
		if e.To == i {
			out = append(out, k)
		}
	}
	return out
}

// OutEdges returns the indices of edges leaving instruction i.
func (b *Block) OutEdges(i int) []int {
	var out []int
	for k, e := range b.Edges {
		if e.From == i {
			out = append(out, k)
		}
	}
	return out
}

// HasRelaxableIn reports whether instruction i has at least one relaxable
// incoming edge — i.e. the scheduler could execute it speculatively.
func (b *Block) HasRelaxableIn(i int) bool {
	for _, e := range b.Edges {
		if e.To == i && e.Relaxable {
			return true
		}
	}
	return false
}

// PinAll makes every edge non-relaxable (the NoSpeculation baseline).
func (b *Block) PinAll() {
	for i := range b.Edges {
		b.Edges[i].Relaxable = false
	}
}

// PinFrom makes every edge leaving instruction g non-relaxable (fence
// semantics at guard g: nothing may be hoisted above it).
func (b *Block) PinFrom(g int) {
	for i := range b.Edges {
		if b.Edges[i].From == g {
			b.Edges[i].Relaxable = false
		}
	}
}

// PinInto makes every edge entering instruction i non-relaxable (the
// instruction can no longer be scheduled speculatively).
func (b *Block) PinInto(i int) {
	for k := range b.Edges {
		if b.Edges[k].To == i {
			b.Edges[k].Relaxable = false
		}
	}
}

// Verify checks structural invariants:
//   - operands only reference earlier instructions,
//   - RegIn operands only read registers not yet redefined in the block
//     (the renaming invariant Builder guarantees; the scheduler's
//     anti-dependence edges rely on it),
//   - edges go forward in program order,
//   - branch instructions carry an exit address,
//   - DestArch is consistent with the opcode.
func (b *Block) Verify() error {
	var defined [32]int
	for i := range defined {
		defined[i] = -1
	}
	for i := range b.Insts {
		in := &b.Insts[i]
		for _, op := range [2]Operand{in.A, in.B} {
			if op.Kind == OpInst {
				if op.Inst < 0 || op.Inst >= i {
					return fmt.Errorf("ir: inst %d operand references inst %d (not earlier)", i, op.Inst)
				}
				// No stale-version reads: once an architectural register
				// is redefined, values of superseded definitions are
				// dead (Builder always references the current one).
				// TempDest readers are exempt: a mitigation pass inserts
				// them at a point where a guard's operand may already be
				// superseded; the scheduler's anti-dependence edges order
				// them before the redefinition commits.
				if d := b.Insts[op.Inst].DestArch; d > 0 && defined[d] != op.Inst && in.DestArch != TempDest {
					return fmt.Errorf("ir: inst %d reads inst %d's value of x%d, superseded by inst %d (renaming violated)", i, op.Inst, d, defined[d])
				}
			}
			if op.Kind == OpRegIn {
				if op.Reg == 0 {
					return fmt.Errorf("ir: inst %d operand reads x0 as RegIn", i)
				}
				if d := defined[op.Reg]; d >= 0 && in.DestArch != TempDest {
					return fmt.Errorf("ir: inst %d reads entry value of x%d, redefined by inst %d (renaming violated)", i, op.Reg, d)
				}
			}
		}
		if in.DestArch > 0 {
			defined[in.DestArch] = i
		}
		if in.IsBranch() && in.BranchExit == 0 {
			return fmt.Errorf("ir: inst %d is a branch without an exit address", i)
		}
		if (in.IsStore() || in.IsBranch()) && in.DestArch >= 0 {
			return fmt.Errorf("ir: inst %d (%s) must not define a register", i, in.Op)
		}
	}
	for k, e := range b.Edges {
		if e.From < 0 || e.To < 0 || e.From >= len(b.Insts) || e.To >= len(b.Insts) {
			return fmt.Errorf("ir: edge %d out of range", k)
		}
		if e.From >= e.To {
			return fmt.Errorf("ir: edge %d (%d->%d) not forward in program order", k, e.From, e.To)
		}
		if e.Kind == EdgeGuard && e.Relaxable {
			return fmt.Errorf("ir: edge %d: guard edges must not be relaxable", k)
		}
	}
	return nil
}

// String renders the block for debugging and tests.
func (b *Block) String() string {
	s := fmt.Sprintf("block @%#x (%d insts)\n", b.EntryPC, len(b.Insts))
	for i := range b.Insts {
		in := &b.Insts[i]
		dest := "-"
		if in.DestArch >= 0 {
			dest = riscv.RegName(uint8(in.DestArch))
		} else if in.DestArch == TempDest {
			dest = "tmp"
		}
		s += fmt.Sprintf("  n%-3d %-8s dest=%-4s a=%-6s b=%-6s imm=%d", i, in.Op, dest, in.A, in.B, in.Imm)
		if in.IsBranch() {
			s += fmt.Sprintf(" exit=%#x", in.BranchExit)
		}
		s += "\n"
	}
	for _, e := range b.Edges {
		r := ""
		if e.Relaxable {
			r = " (relaxable)"
		}
		s += fmt.Sprintf("  edge n%d -> n%d %s%s\n", e.From, e.To, e.Kind, r)
	}
	return s
}
