package tcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ghostbusters/internal/riscv"
	"ghostbusters/internal/vliw"
)

// testProg is a tiny but fully-populated guest image: every field that
// feeds the image hash is non-zero.
func testProg() *riscv.Program {
	return &riscv.Program{
		Entry:    0x1000,
		TextBase: 0x1000,
		Text:     []uint32{0x00100513, 0x00000073},
		DataBase: 0x2000,
		Data:     []byte{1, 2, 3, 4},
	}
}

// testRegion builds a region with a non-trivial block so the disk
// round trip exercises nested serialization (bundles, recoveries,
// guest PCs).
func testRegion(pc uint64) *Region {
	return &Region{
		PC: pc, Trace: true,
		Lo: pc, Hi: pc + 8,
		SpecLoads: 2, RiskyLoads: 1, GuardEdges: 3, Pattern: true,
		Block: &vliw.Block{
			EntryPC: pc,
			Bundles: []vliw.Bundle{
				{{Kind: vliw.KAluRI, Op: riscv.ADDI, Dst: 10, Ra: 10, Imm: 1, Rec: -1, GuestPC: pc}},
				{{Kind: vliw.KJump, Imm: int64(pc + 8), Rec: -1, GuestPC: pc + 4}},
			},
			Recoveries: [][]vliw.Syllable{
				{{Kind: vliw.KJump, Imm: int64(pc), Rec: -1, GuestPC: pc}},
			},
			FallPC:     pc + 8,
			GuestInsts: 2,
		},
	}
}

// The key must separate every input that can change a deterministic
// run's translation schedule: image contents, entry point, mode,
// configuration fingerprint and the out-of-image input salt.
func TestRunKeySensitivity(t *testing.T) {
	base := RunKey(testProg(), "unsafe", "cfg", "salt")

	if again := RunKey(testProg(), "unsafe", "cfg", "salt"); again != base {
		t.Fatalf("identical inputs produced different keys:\n%+v\n%+v", base, again)
	}

	vary := map[string]Key{}
	p := testProg()
	p.Text[0] ^= 1
	vary["text word"] = RunKey(p, "unsafe", "cfg", "salt")
	p = testProg()
	p.Data[0] ^= 1
	vary["data byte"] = RunKey(p, "unsafe", "cfg", "salt")
	p = testProg()
	p.Entry += 4
	vary["entry"] = RunKey(p, "unsafe", "cfg", "salt")
	vary["mode"] = RunKey(testProg(), "fence", "cfg", "salt")
	vary["fingerprint"] = RunKey(testProg(), "unsafe", "cfg2", "salt")
	vary["salt"] = RunKey(testProg(), "unsafe", "cfg", "salt2")

	seen := map[string]string{base.Full: "base"}
	for what, k := range vary {
		if k == base {
			t.Errorf("changing the %s did not change the key", what)
		}
		if prev, dup := seen[k.Full]; dup {
			t.Errorf("%s and %s collide on %q", what, prev, k.Full)
		}
		seen[k.Full] = what
	}
	// Image-only changes must leave the config hash alone and vice
	// versa, so documents land in the right directory level.
	if vary["text word"].Config != base.Config {
		t.Error("image change perturbed the config hash")
	}
	if vary["fingerprint"].Image != base.Image {
		t.Error("fingerprint change perturbed the image hash")
	}
}

// A published run must come back bit-identical from a fresh Cache on
// the same directory — the cross-process warm-start path.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k := RunKey(testProg(), "unsafe", "cfg", "")

	c1 := New(dir)
	r1 := c1.Run(k)
	want := testRegion(0x1000)
	r1.Record(want)
	r1.Record(&Region{PC: 0x1010, Lo: 0x1010, Hi: 0x1014, Block: &vliw.Block{EntryPC: 0x1010}})
	r1.Publish()
	if err := c1.Err(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, _, persisted := c1.Stats(); persisted != 1 {
		t.Fatalf("persisted %d documents, want 1", persisted)
	}

	c2 := New(dir)
	r2 := c2.Run(k)
	got := r2.Lookup(0x1000, true, false)
	if got == nil {
		t.Fatal("published region not found by a fresh cache")
	}
	// Compare via JSON: the block's unexported dispatch-table pointer is
	// host state, not content.
	wantJS, _ := json.Marshal(want)
	gotJS, _ := json.Marshal(got)
	if string(wantJS) != string(gotJS) {
		t.Errorf("region did not round-trip:\nwant %s\ngot  %s", wantJS, gotJS)
	}
	if r2.Lookup(0x1010, false, false) == nil {
		t.Error("second region lost in the round trip")
	}
	if r2.Lookup(0x1000, false, false) != nil {
		t.Error("lookup ignores the trace bit: block-shaped probe returned the trace")
	}
	if r2.Lookup(0x9999, false, false) != nil {
		t.Error("lookup invented a region")
	}
	if err := c2.Err(); err != nil {
		t.Fatalf("load: %v", err)
	}
}

// cacheFiles returns every document under dir.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// Corrupt or foreign documents must degrade to a cold run, never to an
// error or to wrong code.
func TestLoadRejectsBadDocuments(t *testing.T) {
	k := RunKey(testProg(), "unsafe", "cfg", "")
	publish := func(t *testing.T) string {
		dir := t.TempDir()
		c := New(dir)
		r := c.Run(k)
		r.Record(testRegion(0x1000))
		r.Publish()
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		files := cacheFiles(t, dir)
		if len(files) != 1 {
			t.Fatalf("expected exactly one document, found %v", files)
		}
		return dir
	}
	cold := func(t *testing.T, dir string) {
		t.Helper()
		c := New(dir)
		if c.Run(k).Lookup(0x1000, true, false) != nil {
			t.Error("bad document served a region")
		}
	}

	t.Run("truncated", func(t *testing.T) {
		dir := publish(t)
		f := cacheFiles(t, dir)[0]
		if err := os.WriteFile(f, []byte(`{"schema":"ghostbusters/tca`), 0o644); err != nil {
			t.Fatal(err)
		}
		cold(t, dir)
	})
	t.Run("wrong schema", func(t *testing.T) {
		dir := publish(t)
		f := cacheFiles(t, dir)[0]
		doc := map[string]any{}
		raw, _ := os.ReadFile(f)
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		doc["schema"] = "ghostbusters/tcache/v0"
		out, _ := json.Marshal(doc)
		if err := os.WriteFile(f, out, 0o644); err != nil {
			t.Fatal(err)
		}
		cold(t, dir)
	})
	t.Run("foreign key", func(t *testing.T) {
		// A document whose full (unhashed) key disagrees with the probe
		// — the defense against path-hash collisions and stale
		// fingerprint rules — must be ignored.
		dir := publish(t)
		f := cacheFiles(t, dir)[0]
		doc := map[string]any{}
		raw, _ := os.ReadFile(f)
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		doc["key"] = "someone|else|entirely|"
		out, _ := json.Marshal(doc)
		if err := os.WriteFile(f, out, 0o644); err != nil {
			t.Fatal(err)
		}
		cold(t, dir)
	})
}

// A directory-less cache is a pure in-memory store: same semantics,
// nothing on disk, never an error.
func TestInMemoryCache(t *testing.T) {
	c := New("")
	k := RunKey(testProg(), "unsafe", "cfg", "")
	r := c.Run(k)
	if r.Lookup(0x1000, true, false) != nil {
		t.Fatal("empty cache returned a region")
	}
	r.Record(testRegion(0x1000))
	r.Publish()

	warm := c.Run(k)
	if warm.Lookup(0x1000, true, false) == nil {
		t.Fatal("in-memory cache lost the published region")
	}
	if c.Run(RunKey(testProg(), "fence", "cfg", "")).Lookup(0x1000, true, false) != nil {
		t.Error("region leaked across modes")
	}
	hits, misses, persisted := c.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("probe counters not maintained: hits=%d misses=%d", hits, misses)
	}
	if persisted != 0 {
		t.Errorf("in-memory cache wrote %d documents", persisted)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// Publishing the same run twice (two machines, same key) must stay
// idempotent: regions merge, the document is written once per change.
func TestPublishIdempotent(t *testing.T) {
	dir := t.TempDir()
	c := New(dir)
	k := RunKey(testProg(), "unsafe", "cfg", "")

	r1 := c.Run(k)
	r1.Record(testRegion(0x1000))
	r1.Publish()
	_, _, p1 := c.Stats()

	r2 := c.Run(k)
	r2.Record(testRegion(0x1000)) // same region, recorded by a second cold-ish run
	r2.Publish()
	_, _, p2 := c.Stats()
	if p2 != p1 {
		t.Errorf("re-publishing known regions rewrote the document (%d -> %d writes)", p1, p2)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
