// Package tcache implements the persistent translation cache of the
// execution backend: translated VLIW regions, serialized with their
// guest-PC metadata intact, keyed by everything that determines a run's
// translation output — the guest image, the run inputs, the mitigation
// mode and the full machine configuration.
//
// Correctness rests on the simulator's determinism: a run is a pure
// function of (image, inputs, config), and translation happens at fixed
// instants of that run (the profiling thresholds). Two runs with the
// same cache key therefore request exactly the same translations in the
// same order, so a cached region can be installed at precisely the
// instant a fresh compilation would have been — same guest-visible
// cycle charge, same statistics, bit-identical code. The dbt package's
// differential tests pin this down; anything that breaks the premise
// (fault injection, auditing, encode-verification, self-modifying code)
// bypasses or abandons the cache instead of risking a wrong hit.
//
// The cache has two layers: a process-wide in-memory store shared by
// every machine with the same key (an experiment sweep translates each
// kernel once per mode, not once per cell), and an optional on-disk
// layer (schema ghostbusters/tcache/v1) so separate processes share
// warm translations. Disk writes are atomic (tmp + rename) and happen
// once per run key when a clean run published new regions; a corrupt,
// missing or foreign file degrades to a cold run, never to an error.
package tcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ghostbusters/internal/riscv"
	"ghostbusters/internal/vliw"
)

// Schema identifies the on-disk document format. Bump it when Region or
// the vliw.Block serialization changes incompatibly; loading rejects
// other schemas and treats the key as cold.
const Schema = "ghostbusters/tcache/v1"

// Region is one cached translation: the compiled block (with guest PCs
// preserved — self-modifying-code invalidation and fault attribution
// need them) plus the translation-time metadata the DBT engine records
// alongside it. A region is immutable once recorded; machines share the
// same *vliw.Block pointer and rebuild only the per-block dispatch
// table, which is atomically published (see vliw.Block).
type Region struct {
	PC        uint64 `json:"pc"`
	Trace     bool   `json:"trace,omitempty"`
	NoMemSpec bool   `json:"no_mem_spec,omitempty"`

	// Lo/Hi is the guest text extent [Lo, Hi) the region was translated
	// from, for store-hook invalidation.
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`

	// Static mitigation report of the compiled code.
	SpecLoads  int  `json:"spec_loads"`
	RiskyLoads int  `json:"risky_loads"`
	GuardEdges int  `json:"guard_edges"`
	Pattern    bool `json:"pattern,omitempty"`

	Block *vliw.Block `json:"block"`
}

// regionKey identifies a region within one run: a PC is compiled at
// most once per (trace, noMemSpec) shape per run (first-pass block,
// trace upgrade, deopt retranslation are distinct shapes).
type regionKey struct {
	pc        uint64
	trace     bool
	noMemSpec bool
}

// Key addresses one deterministic run shape in the cache. The path
// components are hashes (image, config+salt) plus the sanitized mode
// name; Full keeps the unhashed material so a loaded document can be
// verified against hash collisions and stale fingerprint rules.
type Key struct {
	Image  string // hash of the guest image
	Mode   string // mitigation mode, sanitized for use as a path element
	Config string // hash of config fingerprint + input salt
	Full   string // unhashed composite, stored in the document for verification
}

// RunKey composes the cache key for one run: the guest image (text,
// data, entry point and bases), the mitigation mode, the machine
// configuration fingerprint, and a salt covering run inputs that live
// outside the image (the harness hashes the arrays it writes into guest
// memory after load — they steer profiling and therefore trace shapes).
func RunKey(p *riscv.Program, mode, fingerprint, salt string) Key {
	h := sha256.New()
	var w [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	u64(p.Entry)
	u64(p.TextBase)
	u64(uint64(len(p.Text)))
	for _, ins := range p.Text {
		binary.LittleEndian.PutUint32(w[:4], ins)
		h.Write(w[:4])
	}
	u64(p.DataBase)
	u64(uint64(len(p.Data)))
	h.Write(p.Data)
	image := hex.EncodeToString(h.Sum(nil))[:24]

	ch := sha256.Sum256([]byte(fingerprint + "\x00" + salt))
	config := hex.EncodeToString(ch[:])[:24]

	return Key{
		Image:  image,
		Mode:   sanitize(mode),
		Config: config,
		Full:   fmt.Sprintf("%s|%s|%s|%s", image, mode, fingerprint, salt),
	}
}

// sanitize maps an arbitrary mode name onto a safe path element.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '+')
		}
	}
	if len(out) == 0 {
		return "mode"
	}
	return string(out)
}

// document is the on-disk form of one key's region set.
type document struct {
	Schema  string    `json:"schema"`
	Key     string    `json:"key"`
	Regions []*Region `json:"regions"`
}

// store is the in-memory region set of one key.
type store struct {
	mu      sync.RWMutex
	regions map[regionKey]*Region
}

// Cache is the shared translation-cache handle: one per process (or per
// test), wired into dbt.Config.TransCache and safe for concurrent use
// by the experiment runner's worker pool.
type Cache struct {
	dir string // "" = in-memory only

	mu     sync.Mutex
	stores map[string]*store // key id → loaded (or fresh) store

	errMu sync.Mutex
	err   error // first persistence failure (best-effort layer)

	statMu    sync.Mutex
	hits      uint64
	misses    uint64
	persisted int
}

// New returns a cache rooted at dir; dir == "" keeps the cache
// in-memory only (process-wide sharing without persistence).
func New(dir string) *Cache {
	return &Cache{dir: dir, stores: make(map[string]*store)}
}

// DefaultDir is the conventional on-disk root: the user cache
// directory's "ghostbusters" subtree.
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("tcache: no user cache directory: %w", err)
	}
	return filepath.Join(base, "ghostbusters"), nil
}

// Err returns the first persistence error the cache swallowed (loads
// and stores are best-effort: a broken disk layer degrades to cold
// runs). Tools surface it as a warning after their run.
func (c *Cache) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func (c *Cache) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Stats reports cache effectiveness: region lookups served and missed,
// and how many documents were written to disk.
func (c *Cache) Stats() (hits, misses uint64, persisted int) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.hits, c.misses, c.persisted
}

// path returns the document path for a key: <dir>/<image>/<mode>/<config>.json.
func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.Image, k.Mode, k.Config+".json")
}

// Run opens the per-run view for a key, loading the key's disk document
// into the shared store on first use.
func (c *Cache) Run(k Key) *Run {
	id := k.Image + "/" + k.Mode + "/" + k.Config
	c.mu.Lock()
	st := c.stores[id]
	if st == nil {
		st = &store{regions: make(map[regionKey]*Region)}
		c.stores[id] = st
		if c.dir != "" {
			c.load(k, st)
		}
	}
	c.mu.Unlock()
	return &Run{c: c, key: k, st: st}
}

// load populates a fresh store from the key's disk document. Failures
// (missing file, corrupt JSON, schema or key mismatch) leave the store
// empty: the run is simply cold.
func (c *Cache) load(k Key, st *store) {
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		if !os.IsNotExist(err) {
			c.setErr(fmt.Errorf("tcache: reading %s: %w", c.path(k), err))
		}
		return
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		c.setErr(fmt.Errorf("tcache: parsing %s: %w", c.path(k), err))
		return
	}
	if doc.Schema != Schema || doc.Key != k.Full {
		// Foreign schema version or a hash collision with different key
		// material: never serve it.
		return
	}
	for _, rg := range doc.Regions {
		if rg.Block == nil {
			continue
		}
		st.regions[regionKey{rg.PC, rg.Trace, rg.NoMemSpec}] = rg
	}
}

// persist writes the key's full region set as an atomic document.
func (c *Cache) persist(k Key, regions []*Region) {
	sort.Slice(regions, func(a, b int) bool {
		ra, rb := regions[a], regions[b]
		if ra.PC != rb.PC {
			return ra.PC < rb.PC
		}
		if ra.Trace != rb.Trace {
			return rb.Trace
		}
		return rb.NoMemSpec
	})
	doc := document{Schema: Schema, Key: k.Full, Regions: regions}
	data, err := json.Marshal(&doc)
	if err != nil {
		c.setErr(fmt.Errorf("tcache: encoding %s: %w", c.path(k), err))
		return
	}
	path := c.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.setErr(fmt.Errorf("tcache: %w", err))
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tcache-*")
	if err != nil {
		c.setErr(fmt.Errorf("tcache: %w", err))
		return
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.setErr(fmt.Errorf("tcache: writing %s: %w", path, err2(werr, cerr)))
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.setErr(fmt.Errorf("tcache: %w", err))
		return
	}
	c.statMu.Lock()
	c.persisted++
	c.statMu.Unlock()
}

func err2(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// Run is one machine's view of the cache: lookups against the shared
// store during the run, fresh compilations recorded locally, and a
// single Publish on clean guest exit that merges them into the store
// and schedules the disk write. A Run is used by one machine (one
// goroutine); the shared store behind it is safe for many.
type Run struct {
	c     *Cache
	key   Key
	st    *store
	fresh []*Region
}

// Lookup returns the cached region for a translation request, or nil.
func (r *Run) Lookup(pc uint64, trace, noMemSpec bool) *Region {
	r.st.mu.RLock()
	rg := r.st.regions[regionKey{pc, trace, noMemSpec}]
	r.st.mu.RUnlock()
	r.c.statMu.Lock()
	if rg != nil {
		r.c.hits++
	} else {
		r.c.misses++
	}
	r.c.statMu.Unlock()
	return rg
}

// Record notes a freshly compiled region for publication. The region
// (including its block) must be immutable from here on.
func (r *Run) Record(rg *Region) {
	r.fresh = append(r.fresh, rg)
}

// Publish merges the run's fresh regions into the shared store and,
// when anything new landed and a disk layer is configured, rewrites the
// key's document. Call it only after a clean guest exit: a run that
// faulted or was interrupted may have recorded regions whose profiling
// instants a complete run would never reach.
func (r *Run) Publish() {
	if r == nil || len(r.fresh) == 0 {
		return
	}
	st := r.st
	st.mu.Lock()
	added := false
	for _, rg := range r.fresh {
		k := regionKey{rg.PC, rg.Trace, rg.NoMemSpec}
		if _, ok := st.regions[k]; !ok {
			st.regions[k] = rg
			added = true
		}
	}
	var snapshot []*Region
	if added && r.c.dir != "" {
		snapshot = make([]*Region, 0, len(st.regions))
		for _, rg := range st.regions {
			snapshot = append(snapshot, rg)
		}
	}
	st.mu.Unlock()
	r.fresh = nil
	if snapshot != nil {
		r.c.persist(r.key, snapshot)
	}
}
