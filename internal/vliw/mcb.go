package vliw

import "fmt"

// MCBEntries is the number of in-flight speculative loads the Memory
// Conflict Buffer tracks. The DBT engine never schedules more
// outstanding KLoadS operations than this.
const MCBEntries = 8

type mcbEntry struct {
	valid    bool
	addr     uint64
	size     uint8
	conflict bool // a later-executed store overlapped this load
	faulted  bool // the speculative load faulted (raise at the chk point)
}

// MCB is the Memory Conflict Buffer: the dedicated hardware that "stores
// and compares the addresses of speculative memory operations" (paper,
// Section II-B / III-B). A KLoadS inserts its address under a tag; every
// store compares its address against all valid entries and flags
// overlaps; the KChk at the load's original program position consumes
// the entry and triggers recovery on conflict.
type MCB struct {
	e [MCBEntries]mcbEntry
}

// Insert records a speculative load. Inserting over a still-valid tag is
// a code-generation bug and is reported as an error.
func (m *MCB) Insert(tag uint8, addr uint64, size int, faulted bool) error {
	if int(tag) >= MCBEntries {
		return fmt.Errorf("vliw: MCB tag %d out of range", tag)
	}
	if m.e[tag].valid {
		return fmt.Errorf("vliw: MCB tag %d inserted while still valid", tag)
	}
	m.e[tag] = mcbEntry{valid: true, addr: addr, size: uint8(size), faulted: faulted}
	return nil
}

// StoreCheck compares a store against all valid entries, flagging
// conflicts on overlap.
func (m *MCB) StoreCheck(addr uint64, size int) {
	lo, hi := addr, addr+uint64(size)
	for i := range m.e {
		e := &m.e[i]
		if !e.valid || e.faulted {
			continue
		}
		elo, ehi := e.addr, e.addr+uint64(e.size)
		if lo < ehi && elo < hi {
			e.conflict = true
		}
	}
}

// Consume validates and clears a tag, reporting whether recovery is
// needed and whether the original load faulted (architectural fault to
// raise now, at the load's original position).
func (m *MCB) Consume(tag uint8) (conflict, faulted bool, err error) {
	if int(tag) >= MCBEntries {
		return false, false, fmt.Errorf("vliw: MCB tag %d out of range", tag)
	}
	e := &m.e[tag]
	if !e.valid {
		return false, false, fmt.Errorf("vliw: MCB tag %d consumed while invalid", tag)
	}
	conflict, faulted = e.conflict, e.faulted
	*e = mcbEntry{}
	return conflict, faulted, nil
}

// Outstanding reports how many entries are still valid (must be zero at
// block completion).
func (m *MCB) Outstanding() int {
	n := 0
	for i := range m.e {
		if m.e[i].valid {
			n++
		}
	}
	return n
}

// Reset invalidates every entry (block exit).
func (m *MCB) Reset() {
	*m = MCB{}
}
