package vliw

import (
	"math/rand"
	"strings"
	"testing"

	"ghostbusters/internal/bus"
	"ghostbusters/internal/cache"
	"ghostbusters/internal/guestmem"
	"ghostbusters/internal/riscv"
)

func newTestBus() *bus.Bus {
	return bus.MustNew(guestmem.New(0x10000, 1<<20), cache.DefaultConfig())
}

// pad fills a bundle to the config width with nops.
func pad(cfg Config, sylls ...Syllable) Bundle {
	b := make(Bundle, cfg.Width())
	copy(b, sylls)
	return b
}

func TestExecStraightLineALU(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{
		EntryPC: 0x100,
		FallPC:  0x200,
		Bundles: []Bundle{
			pad(cfg,
				Syllable{Kind: KMovI, Dst: 5, Imm: 7},
				Syllable{Kind: KMovI, Dst: 6, Imm: 5}),
			pad(cfg, Syllable{Kind: KAluRR, Op: riscv.ADD, Dst: 7, Ra: 5, Rb: 6}),
			pad(cfg, Syllable{Kind: KAluRI, Op: riscv.SLLI, Dst: 8, Ra: 7, Imm: 2}),
		},
		GuestInsts: 4,
	}
	var regs [NumRegs]uint64
	var cycles uint64
	b := newTestBus()
	ei := c.Exec(blk, &regs, b, &cycles)
	if ei.Fault != nil {
		t.Fatalf("fault: %v", ei.Fault)
	}
	if ei.NextPC != 0x200 {
		t.Fatalf("NextPC = %#x", ei.NextPC)
	}
	if regs[7] != 12 || regs[8] != 48 {
		t.Fatalf("regs: r7=%d r8=%d", regs[7], regs[8])
	}
	if cycles != 3 {
		t.Fatalf("cycles = %d, want 3 (one per bundle)", cycles)
	}
	if c.Instret != 4 {
		t.Fatalf("instret = %d", c.Instret)
	}
}

func TestExecBundleReadsPreBundleState(t *testing.T) {
	// Swap two registers in one bundle: both reads must sample pre-bundle
	// values (the VLIW lockstep semantics).
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{Bundles: []Bundle{
		pad(cfg,
			Syllable{Kind: KAluRI, Op: riscv.ADDI, Dst: 5, Ra: 6},
			Syllable{Kind: KAluRI, Op: riscv.ADDI, Dst: 6, Ra: 5}),
	}}
	var regs [NumRegs]uint64
	regs[5], regs[6] = 111, 222
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[5] != 222 || regs[6] != 111 {
		t.Fatalf("swap failed: r5=%d r6=%d", regs[5], regs[6])
	}
}

func TestExecDoubleWriteFaults(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{Bundles: []Bundle{
		pad(cfg,
			Syllable{Kind: KMovI, Dst: 5, Imm: 1},
			Syllable{Kind: KMovI, Dst: 5, Imm: 2}),
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, newTestBus(), &cycles); ei.Fault == nil {
		t.Fatal("double write in bundle must fault")
	}
}

func TestExecLoadStoreAndMissStall(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	b := newTestBus()
	_ = b.Mem.Write(0x20000, 8, 0xCAFE)
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KMovI, Dst: 5, Imm: 0x20000}),
		pad(cfg, Syllable{Kind: KLoad, Op: riscv.LD, Dst: 6, Ra: 5}),          // miss
		pad(cfg, Syllable{Kind: KLoad, Op: riscv.LD, Dst: 7, Ra: 5}),          // hit
		pad(cfg, Syllable{Kind: KStore, Op: riscv.SD, Ra: 5, Rb: 6, Imm: 64}), // miss
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, b, &cycles)
	if ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[6] != 0xCAFE || regs[7] != 0xCAFE {
		t.Fatalf("loads: r6=%#x r7=%#x", regs[6], regs[7])
	}
	v, _ := b.Mem.Read(0x20040, 8)
	if v != 0xCAFE {
		t.Fatalf("store result = %#x", v)
	}
	// 4 bundles + 2 miss stalls of 20.
	if cycles != 4+2*20 {
		t.Fatalf("cycles = %d, want 44", cycles)
	}
}

func TestExecSideExit(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KMovI, Dst: 5, Imm: 1}),
			pad(cfg, Syllable{Kind: KBrExit, Op: riscv.BNE, Ra: 5, Rb: 0, Imm: 0x500}),
			pad(cfg, Syllable{Kind: KMovI, Dst: 6, Imm: 99}), // skipped
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.Fault != nil || !ei.SideExit || ei.NextPC != 0x500 {
		t.Fatalf("exit = %+v", ei)
	}
	if regs[6] == 99 {
		t.Fatal("bundle after exit executed")
	}
	if cycles != 2+cfg.ExitPenalty {
		t.Fatalf("cycles = %d", cycles)
	}
	if c.Stats.SideExits != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestExecBranchNotTakenFallsThrough(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KBrExit, Op: riscv.BNE, Ra: 5, Rb: 0, Imm: 0x500}),
			pad(cfg, Syllable{Kind: KMovI, Dst: 6, Imm: 99}),
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.SideExit || ei.NextPC != 0x300 || regs[6] != 99 {
		t.Fatalf("ei=%+v r6=%d", ei, regs[6])
	}
}

func TestExecJumpR(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KMovI, Dst: 1, Imm: 0x4242}),
		pad(cfg, Syllable{Kind: KJumpR, Ra: 1, Imm: 8}),
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.NextPC != 0x424A {
		t.Fatalf("NextPC = %#x", ei.NextPC)
	}
}

func TestExecDismissableLoadSquashAndCommitFault(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	// ldd from an unmapped address: squashed, poison set; commit faults.
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KMovI, Dst: 40, Imm: 0x7FFFFFFF}),
		pad(cfg, Syllable{Kind: KLoadD, Op: riscv.LD, Dst: 41, Ra: 40}),
		pad(cfg, Syllable{Kind: KCommit, Dst: 6, Ra: 41}),
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.Fault == nil || !strings.Contains(ei.Fault.Error(), "poisoned") {
		t.Fatalf("want poison fault at commit, got %+v", ei)
	}
	if c.Stats.SpecSquash != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestExecDismissableLoadSquashDiscardedOnExit(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	// ldd squashes, but the side exit is taken before the commit: the
	// squashed fault disappears, exactly like misspeculation.
	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			pad(cfg,
				Syllable{Kind: KLoadD, Op: riscv.LD, Dst: 41, Ra: 0, Imm: 0x7FFFFF00},
				Syllable{Kind: KMovI, Dst: 5, Imm: 1}),
			pad(cfg, Syllable{Kind: KBrExit, Op: riscv.BNE, Ra: 5, Rb: 0, Imm: 0x500}),
			pad(cfg, Syllable{Kind: KCommit, Dst: 6, Ra: 41}),
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.Fault != nil || !ei.SideExit {
		t.Fatalf("ei = %+v", ei)
	}
}

func TestExecDismissableLoadFillsCache(t *testing.T) {
	// The microarchitectural leak: a dismissable load of protected data
	// succeeds (value flows) and fills the cache line.
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	b := newTestBus()
	_ = b.Mem.Write(0x30000, 8, 42)
	b.Mem.Protect(0x30000, 0x30008)
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KLoadD, Op: riscv.LD, Dst: 41, Ra: 0, Imm: 0x30000}),
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, b, &cycles); ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[41] != 42 {
		t.Fatalf("r41 = %d, want the protected value", regs[41])
	}
	if !b.DC.Probe(0x30000) {
		t.Fatal("dismissable load did not fill the cache")
	}
}

// MCB flow: lds hoisted above a store to the same address; chk triggers
// recovery which re-loads the corrected value.
func TestExecMCBConflictRecovery(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	b := newTestBus()
	_ = b.Mem.Write(0x20000, 8, 1) // old value

	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			// speculative load (hoisted above the store), reads old value
			pad(cfg, Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x20000, Tag: 0},
				Syllable{Kind: KMovI, Dst: 5, Imm: 2}),
			// dependent compute
			pad(cfg, Syllable{Kind: KAluRI, Op: riscv.ADDI, Dst: 41, Ra: 40, Imm: 100}),
			// the store the load was hoisted above: same address -> conflict
			pad(cfg, Syllable{Kind: KStore, Op: riscv.SD, Ra: 0, Rb: 5, Imm: 0x20000}),
			// chk at the load's original position
			pad(cfg, Syllable{Kind: KChk, Tag: 0, Rec: 0}),
			pad(cfg, Syllable{Kind: KCommit, Dst: 6, Ra: 41}),
		},
		Recoveries: [][]Syllable{{
			{Kind: KLoad, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x20000},
			{Kind: KAluRI, Op: riscv.ADDI, Dst: 41, Ra: 40, Imm: 100},
		}},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, b, &cycles)
	if ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[6] != 102 {
		t.Fatalf("r6 = %d, want 102 (recovered store value + 100)", regs[6])
	}
	if c.Stats.Recoveries != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

// No conflict: chk validates silently, speculative value stands.
func TestExecMCBNoConflict(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	b := newTestBus()
	_ = b.Mem.Write(0x20000, 8, 7)
	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x20000, Tag: 3},
				Syllable{Kind: KMovI, Dst: 5, Imm: 2}),
			pad(cfg, Syllable{Kind: KStore, Op: riscv.SD, Ra: 0, Rb: 5, Imm: 0x20040}),
			pad(cfg, Syllable{Kind: KChk, Tag: 3, Rec: 0}),
			pad(cfg, Syllable{Kind: KCommit, Dst: 6, Ra: 40}),
		},
		Recoveries: [][]Syllable{{
			{Kind: KLoad, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x20000},
		}},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, b, &cycles)
	if ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[6] != 7 {
		t.Fatalf("r6 = %d", regs[6])
	}
	if c.Stats.Recoveries != 0 {
		t.Fatalf("unexpected recovery: %+v", c.Stats)
	}
}

func TestExecMCBOutstandingAtExitFaults(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x10000, Tag: 0}),
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, newTestBus(), &cycles); ei.Fault == nil {
		t.Fatal("unconsumed MCB entry at fallthrough must fault (codegen invariant)")
	}
}

func TestExecSideExitClearsMCB(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x10000, Tag: 0},
				Syllable{Kind: KMovI, Dst: 5, Imm: 1}),
			pad(cfg, Syllable{Kind: KBrExit, Op: riscv.BNE, Ra: 5, Rb: 0, Imm: 0x500}),
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.Fault != nil || !ei.SideExit {
		t.Fatalf("ei = %+v", ei)
	}
	if c.MCB.Outstanding() != 0 {
		t.Fatal("MCB not cleared on side exit")
	}
}

func TestExecRdcycleObservesStalls(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	b := newTestBus()
	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KCsr, Dst: 5, Imm: riscv.CSRCycle}),
			pad(cfg, Syllable{Kind: KLoad, Op: riscv.LD, Dst: 6, Ra: 0, Imm: 0x10000}), // miss
			pad(cfg, Syllable{Kind: KCsr, Dst: 7, Imm: riscv.CSRCycle}),
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, b, &cycles); ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	delta := regs[7] - regs[5]
	if delta < 20 {
		t.Fatalf("rdcycle delta = %d, want >= miss penalty", delta)
	}
}

func TestExecFlush(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	b := newTestBus()
	b.DC.Access(0x10000)
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KMovI, Dst: 5, Imm: 0x10000}),
		pad(cfg, Syllable{Kind: KFlush, Op: riscv.CFLUSH, Ra: 5}),
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, b, &cycles); ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if b.DC.Probe(0x10000) {
		t.Fatal("flush did not evict")
	}
	// flushall
	b.DC.Access(0x10000)
	blk2 := &Block{Bundles: []Bundle{pad(cfg, Syllable{Kind: KFlush, Op: riscv.CFLUSHALL})}}
	if ei := c.Exec(blk2, &regs, b, &cycles); ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if b.DC.Probe(0x10000) {
		t.Fatal("flushall did not evict")
	}
}

func TestExecArchUseOfPoisonFaults(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(use Syllable) *Block {
		return &Block{Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KLoadD, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x7FFFFF00}), // squash
			pad(cfg, use),
		}}
	}
	uses := []Syllable{
		{Kind: KStore, Op: riscv.SD, Ra: 40, Rb: 0, Imm: 0},
		{Kind: KStore, Op: riscv.SD, Ra: 0, Rb: 40, Imm: 0x10000},
		{Kind: KBrExit, Op: riscv.BEQ, Ra: 40, Rb: 0, Imm: 0x500},
		{Kind: KJumpR, Ra: 40},
		{Kind: KLoad, Op: riscv.LD, Dst: 6, Ra: 40},
		{Kind: KFlush, Op: riscv.CFLUSH, Ra: 40},
	}
	for i, u := range uses {
		c := MustNewCore(cfg)
		var regs [NumRegs]uint64
		var cycles uint64
		if ei := c.Exec(mk(u), &regs, newTestBus(), &cycles); ei.Fault == nil {
			t.Errorf("use %d (%s): poisoned architectural use must fault", i, u)
		}
	}
}

func TestExecPoisonPropagatesThroughALU(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KLoadD, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x7FFFFF00}),
		pad(cfg, Syllable{Kind: KAluRI, Op: riscv.ADDI, Dst: 41, Ra: 40, Imm: 1}),
		pad(cfg, Syllable{Kind: KLoadD, Op: riscv.LD, Dst: 42, Ra: 41}), // poisoned addr: squash again
		pad(cfg, Syllable{Kind: KCommit, Dst: 6, Ra: 42}),
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.Fault == nil || !strings.Contains(ei.Fault.Error(), "poisoned") {
		t.Fatalf("want poison fault, got %+v", ei)
	}
	if c.Stats.SpecSquash != 2 {
		t.Fatalf("squash count = %d, want 2", c.Stats.SpecSquash)
	}
}

func TestConfigValidateAndVariants(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), WideConfig(), NarrowConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	bad := Config{Slots: []SlotCap{CapALU}, LatALU: 1, LatLoad: 3}
	if bad.Validate() == nil {
		t.Error("config without mem/mul/branch slots must be invalid")
	}
	if (&Config{}).Validate() == nil {
		t.Error("empty config must be invalid")
	}
}

func TestLatencyTable(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		s    Syllable
		want uint64
	}{
		{Syllable{Kind: KAluRR, Op: riscv.ADD}, cfg.LatALU},
		{Syllable{Kind: KAluRR, Op: riscv.MUL}, cfg.LatMul},
		{Syllable{Kind: KAluRR, Op: riscv.DIV}, cfg.LatDiv},
		{Syllable{Kind: KLoad, Op: riscv.LD}, cfg.LatLoad},
		{Syllable{Kind: KLoadS, Op: riscv.LW}, cfg.LatLoad},
		{Syllable{Kind: KMovI}, cfg.LatALU},
	}
	for _, c := range cases {
		if got := cfg.Latency(&c.s); got != c.want {
			t.Errorf("Latency(%s) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestCapFor(t *testing.T) {
	if CapFor(KLoad, riscv.LD) != CapMem {
		t.Error("mem caps wrong")
	}
	if CapFor(KChk, 0) != CapALU {
		t.Error("chk should use the MCB's own port (ALU slot)")
	}
	if CapFor(KAluRR, riscv.MUL) != CapMul || CapFor(KAluRR, riscv.DIVU) != CapMul {
		t.Error("mul caps wrong")
	}
	if CapFor(KBrExit, riscv.BEQ) != CapBranch || CapFor(KJumpR, 0) != CapBranch {
		t.Error("branch caps wrong")
	}
	if CapFor(KAluRI, riscv.ADDI) != CapALU || CapFor(KCommit, 0) != CapALU {
		t.Error("alu caps wrong")
	}
}

func TestMCBUnit(t *testing.T) {
	var m MCB
	if err := m.Insert(0, 0x100, 8, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(0, 0x200, 8, false); err == nil {
		t.Fatal("double insert must error")
	}
	m.StoreCheck(0x104, 4) // overlaps
	conflict, faulted, err := m.Consume(0)
	if err != nil || !conflict || faulted {
		t.Fatalf("consume = %v %v %v", conflict, faulted, err)
	}
	if _, _, err := m.Consume(0); err == nil {
		t.Fatal("double consume must error")
	}
	// Non-overlapping store.
	_ = m.Insert(1, 0x100, 4, false)
	m.StoreCheck(0x104, 4)
	if conflict, _, _ := m.Consume(1); conflict {
		t.Fatal("adjacent store flagged as conflict")
	}
	// Faulted entries report faulted.
	_ = m.Insert(2, 0, 8, true)
	if _, faulted, _ := m.Consume(2); !faulted {
		t.Fatal("faulted flag lost")
	}
	if m.Outstanding() != 0 {
		t.Fatal("outstanding after consume")
	}
	_ = m.Insert(3, 0, 8, false)
	m.Reset()
	if m.Outstanding() != 0 {
		t.Fatal("reset did not clear")
	}
	if err := m.Insert(MCBEntries, 0, 8, false); err == nil {
		t.Fatal("tag out of range must error")
	}
}

// Encoding round trip over randomized blocks.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	kinds := []Kind{KNop, KAluRR, KAluRI, KMovI, KLoad, KLoadD, KLoadS, KStore, KChk, KBrExit, KJump, KJumpR, KCsr, KFlush, KCommit}
	ops := []riscv.Op{riscv.ADD, riscv.MUL, riscv.LD, riscv.LW, riscv.SD, riscv.BEQ, riscv.CFLUSH, riscv.ADDI, riscv.SLLI}
	for trial := 0; trial < 200; trial++ {
		width := 1 + r.Intn(8)
		blk := &Block{
			EntryPC:    uint64(r.Uint32()),
			FallPC:     uint64(r.Uint32()),
			GuestInsts: r.Intn(100),
		}
		for i := 0; i < 1+r.Intn(10); i++ {
			bun := make(Bundle, width)
			for j := range bun {
				bun[j] = Syllable{
					Kind: kinds[r.Intn(len(kinds))],
					Op:   ops[r.Intn(len(ops))],
					Dst:  uint8(r.Intn(64)),
					Ra:   uint8(r.Intn(64)),
					Rb:   uint8(r.Intn(64)),
					Imm:  int64(int32(r.Uint32())),
					Tag:  uint8(r.Intn(8)),
					Rec:  int16(r.Intn(4)) - 1,
				}
			}
			blk.Bundles = append(blk.Bundles, bun)
		}
		for i := 0; i < r.Intn(3); i++ {
			var rec []Syllable
			for j := 0; j < 1+r.Intn(4); j++ {
				rec = append(rec, Syllable{Kind: KLoad, Op: riscv.LD, Dst: uint8(r.Intn(64)), Ra: uint8(r.Intn(64)), Imm: int64(r.Intn(1 << 20))})
			}
			blk.Recoveries = append(blk.Recoveries, rec)
		}
		data, err := EncodeBlock(blk)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeBlock(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.EntryPC != blk.EntryPC || got.FallPC != blk.FallPC || got.GuestInsts != blk.GuestInsts {
			t.Fatalf("header mismatch: %+v vs %+v", got, blk)
		}
		if len(got.Bundles) != len(blk.Bundles) || len(got.Recoveries) != len(blk.Recoveries) {
			t.Fatalf("shape mismatch")
		}
		for i := range blk.Bundles {
			for j := range blk.Bundles[i] {
				want := blk.Bundles[i][j]
				want.GuestPC = 0 // not encoded
				if got.Bundles[i][j] != want {
					t.Fatalf("bundle %d syll %d: got %+v want %+v", i, j, got.Bundles[i][j], want)
				}
			}
		}
		for i := range blk.Recoveries {
			for j := range blk.Recoveries[i] {
				want := blk.Recoveries[i][j]
				want.GuestPC = 0
				if got.Recoveries[i][j] != want {
					t.Fatalf("rec %d syll %d mismatch", i, j)
				}
			}
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	blk := &Block{Bundles: []Bundle{{Syllable{Kind: KMovI, Dst: 5, Imm: 1}}}}
	data, err := EncodeBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlock(data[:8]); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := DecodeBlock(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeBlock(data[:len(data)-8]); err == nil {
		t.Error("missing pool accepted")
	}
}

func TestBlockString(t *testing.T) {
	blk := &Block{
		EntryPC: 0x100,
		Bundles: []Bundle{{
			Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 40, Ra: 5, Imm: 8, Tag: 1},
			Syllable{Kind: KChk, Tag: 1, Rec: 0},
			Syllable{Kind: KBrExit, Op: riscv.BNE, Ra: 5, Rb: 6, Imm: 0x200},
			Syllable{Kind: KCommit, Dst: 5, Ra: 40},
		}},
		Recoveries: [][]Syllable{{{Kind: KLoad, Op: riscv.LD, Dst: 40, Ra: 5, Imm: 8}}},
	}
	s := blk.String()
	for _, want := range []string{"lds", "chk", "br.", "commit", "rec0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestExecRecoveryReplaysCommitAndRefreshesLDS(t *testing.T) {
	// Conflict recovery replays a dependent lds (refreshing its MCB
	// entry) and a commit; the dependent chk then validates cleanly.
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	b := newTestBus()
	_ = b.Mem.Write(0x20000, 8, 0x20100) // pointer slot: points at 0x20100
	_ = b.Mem.Write(0x20100, 8, 7)       // old target value
	_ = b.Mem.Write(0x20200, 8, 0x20300) // corrected pointer
	_ = b.Mem.Write(0x20300, 8, 9)       // corrected target value

	blk := &Block{
		FallPC: 0x300,
		Bundles: []Bundle{
			// lds1 reads the pointer slot speculatively (stale).
			pad(cfg, Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x20000, Tag: 0},
				Syllable{Kind: KMovI, Dst: 5, Imm: 0x20200}),
			pad(cfg, Syllable{Kind: KMovI, Dst: 6, Imm: 0}),
			// lds2 dereferences it (dependent speculative load).
			pad(cfg, Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 41, Ra: 40, Tag: 1}),
			// the store the loads were hoisted above: overwrites the
			// pointer slot with the corrected pointer.
			pad(cfg, Syllable{Kind: KLoad, Op: riscv.LD, Dst: 7, Ra: 5}),
			pad(cfg, Syllable{Kind: KStore, Op: riscv.SD, Ra: 0, Rb: 7, Imm: 0x20000}),
			// chk1 detects the conflict and replays the whole slice.
			pad(cfg, Syllable{Kind: KChk, Tag: 0, Rec: 0}),
			pad(cfg, Syllable{Kind: KChk, Tag: 1, Rec: 1}),
			pad(cfg, Syllable{Kind: KCommit, Dst: 10, Ra: 41}),
		},
		Recoveries: [][]Syllable{
			{
				{Kind: KLoad, Op: riscv.LD, Dst: 40, Ra: 0, Imm: 0x20000},
				{Kind: KLoadS, Op: riscv.LD, Dst: 41, Ra: 40, Tag: 1},
			},
			{
				{Kind: KLoad, Op: riscv.LD, Dst: 41, Ra: 40},
			},
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, b, &cycles)
	if ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[10] != 9 {
		t.Fatalf("committed value = %d, want 9 (corrected chain)", regs[10])
	}
	if c.Stats.Recoveries == 0 {
		t.Fatal("no recovery ran")
	}
	if c.MCB.Outstanding() != 0 {
		t.Fatal("MCB entries left")
	}
}

func TestExecInstretCSR(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	c.Instret = 123
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KCsr, Dst: 5, Imm: riscv.CSRInstret}),
	}, GuestInsts: 7}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, newTestBus(), &cycles); ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[5] != 123 {
		t.Fatalf("instret read = %d", regs[5])
	}
	if c.Instret != 130 {
		t.Fatalf("instret after block = %d, want 130", c.Instret)
	}
}

func TestExecJumpOverridesFallthrough(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{
		FallPC: 0x999,
		Bundles: []Bundle{
			pad(cfg, Syllable{Kind: KJump, Imm: 0x1234}),
		},
	}
	var regs [NumRegs]uint64
	var cycles uint64
	ei := c.Exec(blk, &regs, newTestBus(), &cycles)
	if ei.NextPC != 0x1234 || ei.SideExit {
		t.Fatalf("ei = %+v", ei)
	}
}

func TestZeroBundleBlockCostsACycle(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{FallPC: 0x10}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, newTestBus(), &cycles); ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if cycles != 1 {
		t.Fatalf("zero-bundle dispatch cost %d cycles, want 1", cycles)
	}
}

func TestWritesToR0Discarded(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := &Block{Bundles: []Bundle{
		pad(cfg, Syllable{Kind: KMovI, Dst: 0, Imm: 99},
			Syllable{Kind: KAluRI, Op: riscv.ADDI, Dst: 5, Ra: 0, Imm: 1}),
	}}
	var regs [NumRegs]uint64
	var cycles uint64
	if ei := c.Exec(blk, &regs, newTestBus(), &cycles); ei.Fault != nil {
		t.Fatal(ei.Fault)
	}
	if regs[0] != 0 || regs[5] != 1 {
		t.Fatalf("r0=%d r5=%d", regs[0], regs[5])
	}
}
