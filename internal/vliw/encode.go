package vliw

import (
	"encoding/binary"
	"fmt"

	"ghostbusters/internal/riscv"
)

// Binary encoding of translated blocks. Each syllable packs into one
// 64-bit word; immediates that do not fit in 16 bits go through a
// per-block constant pool (the long-immediate mechanism of wide VLIWs).
// The speculative memory operations keep distinct opcodes in the encoded
// form, as the paper requires of the VLIW ISA.
//
// Word layout (LSB first):
//
//	[0:5)   kind      (5 bits)
//	[5:13)  op        (8 bits)
//	[13:19) dst       (6 bits)
//	[19:25) ra        (6 bits)
//	[25:31) rb        (6 bits)
//	[31:35) tag       (4 bits)
//	[35:47) rec+1     (12 bits, 0 = none)
//	[47]    immPool   (1 = imm is a pool index)
//	[48:64) imm16 / pool index
//
// GuestPC is debug metadata and is not part of the binary encoding.
const blockMagic = 0x3130574C49564247 // "GBVLIW01", little-endian

// EncodeBlock serialises a block to its binary form.
func EncodeBlock(b *Block) ([]byte, error) {
	var pool []uint64
	poolIdx := make(map[int64]int)
	encSyll := func(s *Syllable) (uint64, error) {
		if s.Kind > KCommit {
			return 0, fmt.Errorf("vliw: cannot encode kind %d", s.Kind)
		}
		if s.Dst > 63 || s.Ra > 63 || s.Rb > 63 {
			return 0, fmt.Errorf("vliw: register out of range in %s", s)
		}
		if s.Tag > 15 {
			return 0, fmt.Errorf("vliw: tag %d out of range", s.Tag)
		}
		if s.Rec < -1 || s.Rec >= 1<<12-2 {
			return 0, fmt.Errorf("vliw: recovery index %d out of range", s.Rec)
		}
		w := uint64(s.Kind) | uint64(s.Op)<<5 | uint64(s.Dst)<<13 |
			uint64(s.Ra)<<19 | uint64(s.Rb)<<25 | uint64(s.Tag)<<31 |
			uint64(s.Rec+1)<<35
		if s.Imm >= -(1<<15) && s.Imm < 1<<15 {
			w |= uint64(uint16(s.Imm)) << 48
		} else {
			idx, ok := poolIdx[s.Imm]
			if !ok {
				idx = len(pool)
				pool = append(pool, uint64(s.Imm))
				poolIdx[s.Imm] = idx
			}
			if idx >= 1<<16 {
				return 0, fmt.Errorf("vliw: constant pool overflow")
			}
			w |= 1<<47 | uint64(idx)<<48
		}
		return w, nil
	}

	width := 0
	if len(b.Bundles) > 0 {
		width = len(b.Bundles[0])
	}
	for i, bun := range b.Bundles {
		if len(bun) != width {
			return nil, fmt.Errorf("vliw: bundle %d has width %d, want %d", i, len(bun), width)
		}
	}

	var words []uint64
	words = append(words, blockMagic, b.EntryPC, b.FallPC,
		uint64(uint32(b.GuestInsts))|uint64(width)<<32,
		uint64(uint32(len(b.Bundles)))|uint64(uint32(len(b.Recoveries)))<<32)
	// Reserve header; syllables appended after pool is known? Pool grows
	// while encoding, so encode syllables first into a scratch list.
	var body []uint64
	for _, bun := range b.Bundles {
		for i := range bun {
			w, err := encSyll(&bun[i])
			if err != nil {
				return nil, err
			}
			body = append(body, w)
		}
	}
	for _, rec := range b.Recoveries {
		body = append(body, uint64(len(rec)))
		for i := range rec {
			w, err := encSyll(&rec[i])
			if err != nil {
				return nil, err
			}
			body = append(body, w)
		}
	}
	words = append(words, body...)
	words = append(words, uint64(len(pool)))
	words = append(words, pool...)

	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out, nil
}

// DecodeBlock parses the binary form produced by EncodeBlock.
func DecodeBlock(data []byte) (*Block, error) {
	if len(data)%8 != 0 || len(data) < 6*8 {
		return nil, fmt.Errorf("vliw: truncated block image")
	}
	words := make([]uint64, len(data)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	if words[0] != blockMagic {
		return nil, fmt.Errorf("vliw: bad magic %#x", words[0])
	}
	b := &Block{EntryPC: words[1], FallPC: words[2]}
	b.GuestInsts = int(uint32(words[3]))
	width := int(words[3] >> 32)
	nBundles := int(uint32(words[4]))
	nRec := int(words[4] >> 32)

	need := 5 + nBundles*width
	pos := 5

	// The pool sits at the end; locate it by walking the recoveries.
	// First pass: compute body length.
	rp := need
	for r := 0; r < nRec; r++ {
		if rp >= len(words) {
			return nil, fmt.Errorf("vliw: truncated recovery table")
		}
		rp += 1 + int(words[rp])
	}
	if rp >= len(words) {
		return nil, fmt.Errorf("vliw: missing constant pool")
	}
	poolLen := int(words[rp])
	if rp+1+poolLen != len(words) {
		return nil, fmt.Errorf("vliw: pool length mismatch")
	}
	pool := words[rp+1:]

	decSyll := func(w uint64) (Syllable, error) {
		var s Syllable
		s.Kind = Kind(w & 0x1F)
		s.Op = riscv.Op(uint8(w >> 5 & 0xFF))
		s.Dst = uint8(w >> 13 & 0x3F)
		s.Ra = uint8(w >> 19 & 0x3F)
		s.Rb = uint8(w >> 25 & 0x3F)
		s.Tag = uint8(w >> 31 & 0xF)
		s.Rec = int16(w>>35&0xFFF) - 1
		idx := uint16(w >> 48)
		if w>>47&1 == 1 {
			if int(idx) >= len(pool) {
				return s, fmt.Errorf("vliw: pool index %d out of range", idx)
			}
			s.Imm = int64(pool[idx])
		} else {
			s.Imm = int64(int16(idx))
		}
		if s.Kind > KCommit {
			return s, fmt.Errorf("vliw: bad kind %d", s.Kind)
		}
		return s, nil
	}

	for i := 0; i < nBundles; i++ {
		bun := make(Bundle, width)
		for j := 0; j < width; j++ {
			s, err := decSyll(words[pos])
			if err != nil {
				return nil, err
			}
			bun[j] = s
			pos++
		}
		b.Bundles = append(b.Bundles, bun)
	}
	for r := 0; r < nRec; r++ {
		n := int(words[pos])
		pos++
		rec := make([]Syllable, n)
		for j := 0; j < n; j++ {
			s, err := decSyll(words[pos])
			if err != nil {
				return nil, err
			}
			rec[j] = s
			pos++
		}
		b.Recoveries = append(b.Recoveries, rec)
	}
	return b, nil
}
