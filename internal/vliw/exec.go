package vliw

import (
	"ghostbusters/internal/bus"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/trap"
)

// ExitInfo reports how a translated block finished.
type ExitInfo struct {
	NextPC   uint64
	SideExit bool        // a trace side exit was taken (static misprediction)
	Fault    *trap.Fault // architectural fault, nil otherwise
	FaultPC  uint64      // guest PC of the faulting operation
}

// Stats accumulates dynamic execution counters of the core.
type Stats struct {
	Bundles    uint64
	SideExits  uint64
	Recoveries uint64 // MCB conflicts that ran recovery code
	SpecLoads  uint64 // ldd/lds issued
	SpecSquash uint64 // dismissable loads whose fault was squashed
}

// Core executes translated blocks in order, bundle by bundle, with the
// cycle accounting of an in-order VLIW: one cycle per bundle, the whole
// machine stalls on a cache miss, taken side exits pay a refill penalty,
// and MCB conflicts pay the DBT-generated recovery sequence.
//
// Speculative results carry a poison bit (the NaT-style deferred
// exception of Transmeta-like machines): a dismissable load whose fault
// was squashed poisons its destination; poison propagates through ALU
// operations; any architectural use (store, branch, commit, indirect
// jump, architectural load address) of a poisoned value raises the fault
// at that point — i.e. at the speculated instruction's original program
// position, never on a misspeculated path.
type Core struct {
	Cfg   Config
	MCB   MCB
	Stats Stats

	// Tracer, when non-nil, receives speculation- and exit-level trace
	// events timed in machine cycles (spec-load issue/squash, MCB
	// recovery, side exits). A nil tracer costs one predictable branch
	// per candidate event; the dbt machine wires Config.Tracer here.
	Tracer *obs.Tracer

	// Instret counts guest instructions retired by translated code.
	Instret uint64

	// scr holds the per-bundle scratch state, kept on the core so the
	// steady-state execution loop is allocation-free: the pending-write
	// and recovery lists grow to the widest bundle once and are then
	// reused for every bundle of every block.
	scr execScratch

	// fr is the per-Exec frame the threaded-dispatch handlers operate
	// on (see threaded.go), kept on the core for the same reason.
	fr execFrame
}

// execScratch is reusable per-bundle working state. The written flags are
// cleared by replaying the writes list (every set flag has a matching
// list entry), so a bundle's bookkeeping costs O(writes), not O(NumRegs).
type execScratch struct {
	writes  []pendingWrite
	recov   []int16
	written [NumRegs]bool
}

// reset clears any flags left behind by the previous bundle — or by a
// faulted earlier run, which can abandon the scratch mid-bundle — and
// truncates the lists, keeping their capacity.
func (s *execScratch) reset() {
	for _, w := range s.writes {
		s.written[w.reg] = false
	}
	s.writes = s.writes[:0]
	s.recov = s.recov[:0]
}

// NewCore builds a core, rejecting invalid configurations with an error
// (the simulator core never panics; see internal/trap).
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{Cfg: cfg}, nil
}

// MustNewCore is NewCore for configurations known valid (tests).
func MustNewCore(cfg Config) *Core {
	c, err := NewCore(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

type pendingWrite struct {
	reg    uint8
	val    uint64
	poison bool
}

// errPoisonUse is the deferred exception of a squashed speculative load
// delivered at an architectural use of its poisoned result — by
// construction at the speculated instruction's original program
// position, never on a misspeculated path.
func errPoisonUse(sy *Syllable) *trap.Fault {
	f := trap.Newf(trap.DeferredFault, "architectural use of poisoned (squashed speculative) value by %s", sy)
	f.PC = sy.GuestPC
	return f
}

// errInternal flags a violated translator/scheduler invariant.
func errInternal(pc uint64, format string, args ...any) *trap.Fault {
	f := trap.Newf(trap.Internal, format, args...)
	f.PC = pc
	return f
}

// Exec runs one translated block. regs is the persistent physical
// register file (0..31 architectural, 32..63 hidden); b is the shared
// memory system; cycles is the machine cycle counter, advanced in place
// so rdcycle inside the block observes real time.
//
// Dispatch is threaded-code style: the block's predecoded dop table
// (built once, see threaded.go) is walked with one indirect call per
// live operation; bundle boundaries are pseudo-ops carrying the write
// phase, MCB recoveries and the exit decision. Semantics and cycle
// accounting are identical to the original per-bundle interpreter.
func (c *Core) Exec(blk *Block, regs *[NumRegs]uint64, b *bus.Bus, cycles *uint64) ExitInfo {
	fr := &c.fr
	fr.regs, fr.b, fr.cycles, fr.blk = regs, b, cycles, blk
	fr.hitLat = b.DC.Config().HitLatency
	fr.poisoned = [NumRegs]bool{}
	fr.exitTaken, fr.haveNext = false, false
	c.scr.reset()

	// Dispatching any block costs at least one cycle (the chain jump),
	// so zero-bundle blocks (pure jumps) cannot loop for free.
	if len(blk.Bundles) == 0 {
		*cycles++
		if n := c.MCB.Outstanding(); n != 0 {
			c.fail(errInternal(0, "vliw: %d MCB entries outstanding at block fallthrough", n), 0)
			return fr.exit
		}
		c.Instret += uint64(blk.GuestInsts)
		return ExitInfo{NextPC: blk.FallPC}
	}

	dec := blk.decoded()
	*cycles++
	c.Stats.Bundles++
	ops := dec.ops
	for i := 0; i < len(ops); i++ {
		d := &ops[i]
		if d.fn(c, d) != ctlNext {
			return fr.exit
		}
	}
	// Unreachable: the final bundle's terminator always stops.
	return fr.exit
}

// execRecovery re-executes a speculative load and its forward slice
// sequentially (one syllable per cycle) with architectural semantics —
// the hardware "rolls back and re-executes the instruction correctly"
// (paper, Section III-B). Dependent speculative loads refresh their MCB
// entries with the corrected address so their own chk still validates.
func (c *Core) execRecovery(seq []Syllable, regs *[NumRegs]uint64, poisoned *[NumRegs]bool, b *bus.Bus, cycles *uint64) *ExitInfo {
	hitLat := b.DC.Config().HitLatency
	read := func(r uint8) uint64 {
		if r == 0 {
			return 0
		}
		return regs[r]
	}
	write := func(r uint8, v uint64, p bool) {
		if r != 0 {
			regs[r] = v
			poisoned[r] = p
		}
	}
	failf := func(sy *Syllable, err error) *ExitInfo {
		c.MCB.Reset()
		f := trap.From(err)
		if f.PC == 0 {
			f.PC = sy.GuestPC
		}
		return &ExitInfo{Fault: f, FaultPC: sy.GuestPC}
	}
	for i := range seq {
		sy := &seq[i]
		*cycles++
		switch sy.Kind {
		case KAluRR:
			p := (sy.Ra != 0 && poisoned[sy.Ra]) || (sy.Rb != 0 && poisoned[sy.Rb])
			write(sy.Dst, riscv.EvalALU(sy.Op, read(sy.Ra), read(sy.Rb)), p)
		case KAluRI:
			write(sy.Dst, riscv.EvalALUImm(sy.Op, read(sy.Ra), sy.Imm), sy.Ra != 0 && poisoned[sy.Ra])
		case KMovI:
			write(sy.Dst, uint64(sy.Imm), false)
		case KCommit:
			if sy.Ra != 0 && poisoned[sy.Ra] {
				return failf(sy, errPoisonUse(sy))
			}
			write(sy.Dst, read(sy.Ra), false)
		case KLoad:
			if sy.Ra != 0 && poisoned[sy.Ra] {
				return failf(sy, errPoisonUse(sy))
			}
			addr := read(sy.Ra) + uint64(sy.Imm)
			v, lat, err := b.Load(addr, sy.Op.MemSize())
			if err != nil {
				return failf(sy, err)
			}
			if lat > hitLat {
				*cycles += lat - hitLat
			}
			write(sy.Dst, riscv.ExtendLoad(sy.Op, v), false)
		case KLoadD, KLoadS:
			// Still ahead of its own chk: keep dismissable semantics and
			// refresh the MCB entry with the corrected address.
			squashed := sy.Ra != 0 && poisoned[sy.Ra]
			var val, addr uint64
			if !squashed {
				addr = read(sy.Ra) + uint64(sy.Imm)
				v, lat, ok := b.LoadSpeculative(addr, sy.Op.MemSize())
				if ok {
					if lat > hitLat {
						*cycles += lat - hitLat
					}
					val = riscv.ExtendLoad(sy.Op, v)
					if b.OnSpecLoad != nil {
						b.OnSpecLoad(sy.GuestPC, addr, *cycles)
					}
				} else {
					squashed = true
				}
			}
			if sy.Kind == KLoadS {
				if _, _, err := c.MCB.Consume(sy.Tag); err != nil {
					return failf(sy, err)
				}
				if err := c.MCB.Insert(sy.Tag, addr, sy.Op.MemSize(), squashed); err != nil {
					return failf(sy, err)
				}
			}
			write(sy.Dst, val, squashed)
		default:
			return failf(sy, errInternal(sy.GuestPC, "vliw: kind %s not allowed in recovery code", sy.Kind))
		}
	}
	return nil
}
