package vliw

import (
	"testing"

	"ghostbusters/internal/riscv"
)

// steadyStateBlock is a representative translated block: immediates, ALU
// work, a speculative (MCB) load with its chk, a store and a not-taken
// side exit — the mix a Fig. 4 kernel inner loop compiles to.
func steadyStateBlock(cfg Config) *Block {
	return &Block{
		EntryPC: 0x100,
		FallPC:  0x200,
		Bundles: []Bundle{
			pad(cfg,
				Syllable{Kind: KMovI, Dst: 5, Imm: 0x20000},
				Syllable{Kind: KMovI, Dst: 6, Imm: 3}),
			pad(cfg,
				Syllable{Kind: KLoadS, Op: riscv.LD, Dst: 7, Ra: 5, Tag: 0},
				Syllable{Kind: KAluRI, Op: riscv.ADDI, Dst: 8, Ra: 6, Imm: 4}),
			pad(cfg, Syllable{Kind: KStore, Op: riscv.SD, Ra: 5, Rb: 8, Imm: 64}),
			pad(cfg, Syllable{Kind: KChk, Tag: 0, Rec: -1}),
			pad(cfg, Syllable{Kind: KAluRR, Op: riscv.ADD, Dst: 9, Ra: 7, Rb: 8}),
			pad(cfg, Syllable{Kind: KBrExit, Op: riscv.BEQ, Ra: 9, Rb: 0, Imm: 0x300}),
		},
		GuestInsts: 7,
	}
}

// The steady-state Exec path must not allocate: scratch buffers live on
// the Core and are reused across calls. This is the 0 allocs/op gate the
// perf work promises.
func TestExecSteadyStateZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := steadyStateBlock(cfg)
	b := newTestBus()
	var regs [NumRegs]uint64
	var cycles uint64

	// Warm-up: first calls may grow the scratch slices to capacity.
	for i := 0; i < 3; i++ {
		if ei := c.Exec(blk, &regs, b, &cycles); ei.Fault != nil {
			t.Fatal(ei.Fault)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if ei := c.Exec(blk, &regs, b, &cycles); ei.Fault != nil {
			t.Fatal(ei.Fault)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Exec allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkExecSteadyState(b *testing.B) {
	cfg := DefaultConfig()
	c := MustNewCore(cfg)
	blk := steadyStateBlock(cfg)
	bs := newTestBus()
	var regs [NumRegs]uint64
	var cycles uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ei := c.Exec(blk, &regs, bs, &cycles); ei.Fault != nil {
			b.Fatal(ei.Fault)
		}
	}
}
