package vliw

import (
	"ghostbusters/internal/bus"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/trap"
)

// This file implements the threaded-code dispatch engine: instead of
// re-interpreting each syllable's Kind/Op through nested switches on
// every execution, a block is predecoded once into a flat table of dops
// — nops stripped, one handler function pointer per operation, ALU /
// branch / extend semantics resolved to direct function values, and a
// bundle-terminator pseudo-op carrying the write-phase, recovery and
// exit logic. The table is built at translation time (or lazily on
// first dispatch) and shared read-only afterwards, so the steady-state
// execution loop stays allocation-free.

// ctl is a handler's verdict: continue with the next dop, or stop the
// block (c.fr.exit holds the completed ExitInfo, fault or not).
type ctl uint8

const (
	ctlNext ctl = iota
	ctlStop
)

// dop is one predecoded operation. The handler fn interprets the other
// fields; alu/ext/cmp are the pre-resolved semantic functions so the
// hot path never switches on riscv.Op again. sy points back into the
// block's bundle storage for diagnostics (poison faults print the
// original syllable).
type dop struct {
	fn  func(c *Core, d *dop) ctl
	alu func(a, b uint64) uint64
	ext func(v uint64) uint64
	cmp func(a, b uint64) bool
	sy  *Syllable
	imm int64
	pc  uint64
	dst uint8
	ra  uint8
	rb  uint8
	tag uint8
	siz uint8
	rec int16
}

// decoded is the immutable threaded-dispatch table of one block.
type decoded struct {
	ops []dop
}

// execFrame is the per-Exec machine state shared by the dop handlers,
// kept on the Core so dispatch is allocation-free.
type execFrame struct {
	regs      *[NumRegs]uint64
	b         *bus.Bus
	cycles    *uint64
	blk       *Block
	hitLat    uint64
	exitTo    uint64
	exitPC    uint64
	nextPC    uint64
	exitTaken bool
	haveNext  bool
	poisoned  [NumRegs]bool
	exit      ExitInfo
}

func (fr *execFrame) read(r uint8) uint64 {
	if r == 0 {
		return 0
	}
	return fr.regs[r]
}

func (fr *execFrame) poisonIn(r uint8) bool { return r != 0 && fr.poisoned[r] }

// fail terminates the block with a fault, mirroring the architectural
// contract: the MCB is drained and the fault is pinned to the guest PC
// of the operation when lower layers did not set one.
func (c *Core) fail(err error, pc uint64) ctl {
	c.MCB.Reset()
	f := trap.From(err)
	if f.PC == 0 {
		f.PC = pc
	}
	c.fr.exit = ExitInfo{Fault: f, FaultPC: pc}
	return ctlStop
}

// push records a pending register write for the bundle's write phase.
func (c *Core) push(d *dop, v uint64, p bool) ctl {
	if d.dst == 0 {
		return ctlNext
	}
	scr := &c.scr
	if scr.written[d.dst] {
		return c.fail(errInternal(d.pc, "vliw: double write of r%d in one bundle", d.dst), d.pc)
	}
	scr.written[d.dst] = true
	scr.writes = append(scr.writes, pendingWrite{d.dst, v, p})
	return ctlNext
}

func opAluRR(c *Core, d *dop) ctl {
	fr := &c.fr
	p := fr.poisonIn(d.ra) || fr.poisonIn(d.rb)
	return c.push(d, d.alu(fr.read(d.ra), fr.read(d.rb)), p)
}

func opAluRI(c *Core, d *dop) ctl {
	fr := &c.fr
	return c.push(d, d.alu(fr.read(d.ra), uint64(d.imm)), fr.poisonIn(d.ra))
}

func opMovI(c *Core, d *dop) ctl {
	return c.push(d, uint64(d.imm), false)
}

func opLoad(c *Core, d *dop) ctl {
	fr := &c.fr
	if fr.poisonIn(d.ra) {
		return c.fail(errPoisonUse(d.sy), d.pc)
	}
	addr := fr.read(d.ra) + uint64(d.imm)
	v, lat, err := fr.b.Load(addr, int(d.siz))
	if err != nil {
		return c.fail(err, d.pc)
	}
	if lat > fr.hitLat {
		*fr.cycles += lat - fr.hitLat // stall-on-miss
	}
	return c.push(d, d.ext(v), false)
}

// specLoad is the shared body of KLoadD/KLoadS: dismissable semantics,
// poison on squash, ground-truth observer hook, spec-level tracing.
func specLoad(c *Core, d *dop, mcb bool) ctl {
	fr := &c.fr
	c.Stats.SpecLoads++
	squashed := fr.poisonIn(d.ra)
	var val uint64
	var addr uint64
	if !squashed {
		addr = fr.read(d.ra) + uint64(d.imm)
		v, lat, ok := fr.b.LoadSpeculative(addr, int(d.siz))
		if ok {
			if lat > fr.hitLat {
				*fr.cycles += lat - fr.hitLat
			}
			val = d.ext(v)
			if fr.b.OnSpecLoad != nil {
				// The ground-truth observer: this cache fill
				// happened under speculation (see bus.OnSpecLoad).
				fr.b.OnSpecLoad(d.pc, addr, *fr.cycles)
			}
		} else {
			squashed = true
		}
	}
	if squashed {
		c.Stats.SpecSquash++
	}
	if c.Tracer.SpecOn() {
		c.Tracer.Emit(obs.Event{Kind: obs.EvSpecLoad, Cycle: *fr.cycles, PC: d.pc, Arg1: addr})
		if squashed {
			c.Tracer.Emit(obs.Event{Kind: obs.EvSpecSquash, Cycle: *fr.cycles, PC: d.pc, Arg1: addr})
		}
	}
	if mcb {
		if err := c.MCB.Insert(d.tag, addr, int(d.siz), squashed); err != nil {
			return c.fail(err, d.pc)
		}
		if c.Tracer.SpecOn() {
			c.Tracer.Emit(obs.Event{Kind: obs.EvCounter, Cycle: *fr.cycles,
				Arg1: uint64(c.MCB.Outstanding()), Str: obs.CtrMCBOccupancy})
		}
	}
	return c.push(d, val, squashed)
}

func opLoadD(c *Core, d *dop) ctl { return specLoad(c, d, false) }
func opLoadS(c *Core, d *dop) ctl { return specLoad(c, d, true) }

func opStore(c *Core, d *dop) ctl {
	fr := &c.fr
	if fr.poisonIn(d.ra) || fr.poisonIn(d.rb) {
		return c.fail(errPoisonUse(d.sy), d.pc)
	}
	addr := fr.read(d.ra) + uint64(d.imm)
	lat, err := fr.b.Store(addr, int(d.siz), fr.read(d.rb))
	if err != nil {
		return c.fail(err, d.pc)
	}
	if lat > fr.hitLat {
		*fr.cycles += lat - fr.hitLat
	}
	c.MCB.StoreCheck(addr, int(d.siz))
	return ctlNext
}

func opChk(c *Core, d *dop) ctl {
	fr := &c.fr
	conflict, faulted, err := c.MCB.Consume(d.tag)
	if err != nil {
		return c.fail(err, d.pc)
	}
	if c.Tracer.SpecOn() {
		c.Tracer.Emit(obs.Event{Kind: obs.EvCounter, Cycle: *fr.cycles,
			Arg1: uint64(c.MCB.Outstanding()), Str: obs.CtrMCBOccupancy})
	}
	if faulted {
		// The speculative load faults at its original
		// program position (exception no longer deferred).
		return c.fail(trap.Newf(trap.DeferredFault, "speculative load fault delivered at chk"), d.pc)
	}
	if conflict {
		c.scr.recov = append(c.scr.recov, d.rec)
	}
	return ctlNext
}

func opBrExit(c *Core, d *dop) ctl {
	fr := &c.fr
	if fr.poisonIn(d.ra) || fr.poisonIn(d.rb) {
		return c.fail(errPoisonUse(d.sy), d.pc)
	}
	if d.cmp(fr.read(d.ra), fr.read(d.rb)) {
		fr.exitTaken = true
		fr.exitTo = uint64(d.imm)
		fr.exitPC = d.pc
	}
	return ctlNext
}

func opJump(c *Core, d *dop) ctl {
	fr := &c.fr
	fr.nextPC, fr.haveNext = uint64(d.imm), true
	return ctlNext
}

func opJumpR(c *Core, d *dop) ctl {
	fr := &c.fr
	if fr.poisonIn(d.ra) {
		return c.fail(errPoisonUse(d.sy), d.pc)
	}
	fr.nextPC, fr.haveNext = fr.read(d.ra)+uint64(d.imm), true
	return ctlNext
}

func opCsr(c *Core, d *dop) ctl {
	fr := &c.fr
	var v uint64
	switch d.imm {
	case riscv.CSRCycle, riscv.CSRTime:
		v = *fr.cycles
	case riscv.CSRInstret:
		v = c.Instret
	}
	return c.push(d, v, false)
}

func opFlushAll(c *Core, d *dop) ctl {
	c.fr.b.FlushAll()
	return ctlNext
}

func opFlushLine(c *Core, d *dop) ctl {
	fr := &c.fr
	if fr.poisonIn(d.ra) {
		return c.fail(errPoisonUse(d.sy), d.pc)
	}
	fr.b.FlushLine(fr.read(d.ra))
	return ctlNext
}

func opCommit(c *Core, d *dop) ctl {
	fr := &c.fr
	if fr.poisonIn(d.ra) {
		return c.fail(errPoisonUse(d.sy), d.pc)
	}
	return c.push(d, fr.read(d.ra), false)
}

func opBadKind(c *Core, d *dop) ctl {
	return c.fail(errInternal(d.pc, "vliw: unknown syllable kind %d", d.sy.Kind), d.pc)
}

// finishBundle runs the bundle's write phase, any MCB recoveries
// detected in check order, and the exit decision — the tail of the old
// per-bundle interpreter loop, verbatim.
func (c *Core) finishBundle() ctl {
	fr := &c.fr
	scr := &c.scr

	// Write phase: all bundle results commit together.
	for _, w := range scr.writes {
		fr.regs[w.reg] = w.val
		fr.poisoned[w.reg] = w.poison
	}

	blk := fr.blk
	for _, rec := range scr.recov {
		if int(rec) < 0 || int(rec) >= len(blk.Recoveries) {
			return c.fail(errInternal(0, "vliw: recovery %d out of range", rec), 0)
		}
		c.Stats.Recoveries++
		*fr.cycles += c.Cfg.RecoveryPenalty
		if c.Tracer.SpecOn() {
			var rpc uint64
			if seq := blk.Recoveries[rec]; len(seq) > 0 {
				rpc = seq[0].GuestPC
			}
			c.Tracer.Emit(obs.Event{Kind: obs.EvRecovery, Cycle: *fr.cycles, PC: rpc, Arg1: uint64(rec)})
		}
		if ei := c.execRecovery(blk.Recoveries[rec], fr.regs, &fr.poisoned, fr.b, fr.cycles); ei != nil {
			fr.exit = *ei
			return ctlStop
		}
	}

	if fr.exitTaken {
		*fr.cycles += c.Cfg.ExitPenalty
		c.Stats.SideExits++
		if c.Tracer.BlockOn() {
			c.Tracer.Emit(obs.Event{Kind: obs.EvSideExit, Cycle: *fr.cycles, PC: fr.exitPC, Arg1: fr.exitTo})
		}
		c.MCB.Reset()
		c.Instret += uint64(blk.GuestInsts) // approximate retirement
		fr.exit = ExitInfo{NextPC: fr.exitTo, SideExit: true}
		return ctlStop
	}
	if fr.haveNext {
		if n := c.MCB.Outstanding(); n != 0 {
			return c.fail(errInternal(0, "vliw: %d MCB entries outstanding at block exit", n), 0)
		}
		c.Instret += uint64(blk.GuestInsts)
		fr.exit = ExitInfo{NextPC: fr.nextPC}
		return ctlStop
	}
	return ctlNext
}

// opEndBundle terminates a non-final bundle: finish it, then open the
// next one (cycle, bundle count, scratch reset — the old loop header).
func opEndBundle(c *Core, d *dop) ctl {
	if r := c.finishBundle(); r != ctlNext {
		return r
	}
	*c.fr.cycles++
	c.Stats.Bundles++
	c.scr.reset()
	return ctlNext
}

// opEndBlock terminates the final bundle: finish it, then fall through
// to the block's FallPC.
func opEndBlock(c *Core, d *dop) ctl {
	if r := c.finishBundle(); r != ctlNext {
		return r
	}
	fr := &c.fr
	if n := c.MCB.Outstanding(); n != 0 {
		return c.fail(errInternal(0, "vliw: %d MCB entries outstanding at block fallthrough", n), 0)
	}
	c.Instret += uint64(fr.blk.GuestInsts)
	fr.exit = ExitInfo{NextPC: fr.blk.FallPC}
	return ctlStop
}

// buildDecoded flattens a block into its threaded-dispatch table.
func buildDecoded(blk *Block) *decoded {
	ops := make([]dop, 0, 8)
	for bi := range blk.Bundles {
		bundle := blk.Bundles[bi]
		for i := range bundle {
			sy := &bundle[i]
			if sy.Kind == KNop {
				continue
			}
			d := dop{
				sy: sy, imm: sy.Imm, pc: sy.GuestPC,
				dst: sy.Dst, ra: sy.Ra, rb: sy.Rb,
				tag: sy.Tag, rec: sy.Rec,
			}
			switch sy.Kind {
			case KAluRR:
				d.fn, d.alu = opAluRR, aluFunc(sy.Op)
			case KAluRI:
				d.fn, d.alu = opAluRI, aluImmFunc(sy.Op)
			case KMovI:
				d.fn = opMovI
			case KLoad:
				d.fn, d.siz, d.ext = opLoad, uint8(sy.Op.MemSize()), extendFunc(sy.Op)
			case KLoadD:
				d.fn, d.siz, d.ext = opLoadD, uint8(sy.Op.MemSize()), extendFunc(sy.Op)
			case KLoadS:
				d.fn, d.siz, d.ext = opLoadS, uint8(sy.Op.MemSize()), extendFunc(sy.Op)
			case KStore:
				d.fn, d.siz = opStore, uint8(sy.Op.MemSize())
			case KChk:
				d.fn = opChk
			case KBrExit:
				d.fn, d.cmp = opBrExit, branchFunc(sy.Op)
			case KJump:
				d.fn = opJump
			case KJumpR:
				d.fn = opJumpR
			case KCsr:
				d.fn = opCsr
			case KFlush:
				if sy.Op == riscv.CFLUSHALL {
					d.fn = opFlushAll
				} else {
					d.fn = opFlushLine
				}
			case KCommit:
				d.fn = opCommit
			default:
				d.fn = opBadKind
			}
			ops = append(ops, d)
		}
		term := dop{fn: opEndBundle}
		if bi == len(blk.Bundles)-1 {
			term.fn = opEndBlock
		}
		ops = append(ops, term)
	}
	return &decoded{ops: ops}
}

// Pre-resolved semantic functions. Named package-level functions for
// the common operations keep decode allocation-light; rare or unknown
// operations fall back to a closure over the generic evaluator so the
// semantics (including the zero result for unknown ops) stay identical
// to the switch-based interpreter.

func aluAdd(a, b uint64) uint64  { return a + b }
func aluSub(a, b uint64) uint64  { return a - b }
func aluSll(a, b uint64) uint64  { return a << (b & 63) }
func aluSrl(a, b uint64) uint64  { return a >> (b & 63) }
func aluSra(a, b uint64) uint64  { return uint64(int64(a) >> (b & 63)) }
func aluXor(a, b uint64) uint64  { return a ^ b }
func aluOr(a, b uint64) uint64   { return a | b }
func aluAnd(a, b uint64) uint64  { return a & b }
func aluMul(a, b uint64) uint64  { return a * b }
func aluAddw(a, b uint64) uint64 { return uint64(int64(int32(a + b))) }
func aluSubw(a, b uint64) uint64 { return uint64(int64(int32(a - b))) }
func aluSllw(a, b uint64) uint64 { return uint64(int64(int32(uint32(a) << (b & 31)))) }
func aluSrlw(a, b uint64) uint64 { return uint64(int64(int32(uint32(a) >> (b & 31)))) }
func aluSraw(a, b uint64) uint64 { return uint64(int64(int32(a) >> (b & 31))) }
func aluSlt(a, b uint64) uint64 {
	if int64(a) < int64(b) {
		return 1
	}
	return 0
}
func aluSltu(a, b uint64) uint64 {
	if a < b {
		return 1
	}
	return 0
}

// aluFunc resolves a register-register ALU op to a direct function.
func aluFunc(op riscv.Op) func(a, b uint64) uint64 {
	switch op {
	case riscv.ADD:
		return aluAdd
	case riscv.SUB:
		return aluSub
	case riscv.SLL:
		return aluSll
	case riscv.SLT:
		return aluSlt
	case riscv.SLTU:
		return aluSltu
	case riscv.XOR:
		return aluXor
	case riscv.SRL:
		return aluSrl
	case riscv.SRA:
		return aluSra
	case riscv.OR:
		return aluOr
	case riscv.AND:
		return aluAnd
	case riscv.ADDW:
		return aluAddw
	case riscv.SUBW:
		return aluSubw
	case riscv.SLLW:
		return aluSllw
	case riscv.SRLW:
		return aluSrlw
	case riscv.SRAW:
		return aluSraw
	case riscv.MUL:
		return aluMul
	}
	return func(a, b uint64) uint64 { return riscv.EvalALU(op, a, b) }
}

// aluImmFunc resolves a register-immediate ALU op to a two-operand
// function (the handler passes the decoded immediate as b). Every RI
// op's semantics coincide with its RR counterpart under that calling
// convention; anything unmapped falls back to the generic evaluator.
func aluImmFunc(op riscv.Op) func(a, b uint64) uint64 {
	switch op {
	case riscv.ADDI:
		return aluAdd
	case riscv.SLTI:
		return aluSlt
	case riscv.SLTIU:
		return aluSltu
	case riscv.XORI:
		return aluXor
	case riscv.ORI:
		return aluOr
	case riscv.ANDI:
		return aluAnd
	case riscv.SLLI:
		return aluSll
	case riscv.SRLI:
		return aluSrl
	case riscv.SRAI:
		return aluSra
	case riscv.ADDIW:
		return aluAddw
	case riscv.SLLIW:
		return aluSllw
	case riscv.SRLIW:
		return aluSrlw
	case riscv.SRAIW:
		return aluSraw
	}
	return func(a, b uint64) uint64 { return riscv.EvalALUImm(op, a, int64(b)) }
}

func extIdent(v uint64) uint64 { return v }
func extB(v uint64) uint64     { return uint64(int64(int8(v))) }
func extH(v uint64) uint64     { return uint64(int64(int16(v))) }
func extW(v uint64) uint64     { return uint64(int64(int32(v))) }

// extendFunc resolves a load op's sign/zero extension.
func extendFunc(op riscv.Op) func(v uint64) uint64 {
	switch op {
	case riscv.LB:
		return extB
	case riscv.LH:
		return extH
	case riscv.LW:
		return extW
	case riscv.LD, riscv.LBU, riscv.LHU, riscv.LWU:
		return extIdent
	}
	return func(v uint64) uint64 { return riscv.ExtendLoad(op, v) }
}

func brEq(a, b uint64) bool    { return a == b }
func brNe(a, b uint64) bool    { return a != b }
func brLt(a, b uint64) bool    { return int64(a) < int64(b) }
func brGe(a, b uint64) bool    { return int64(a) >= int64(b) }
func brLtu(a, b uint64) bool   { return a < b }
func brGeu(a, b uint64) bool   { return a >= b }
func brNever(a, b uint64) bool { return false }

// branchFunc resolves a side-exit condition.
func branchFunc(op riscv.Op) func(a, b uint64) bool {
	switch op {
	case riscv.BEQ:
		return brEq
	case riscv.BNE:
		return brNe
	case riscv.BLT:
		return brLt
	case riscv.BGE:
		return brGe
	case riscv.BLTU:
		return brLtu
	case riscv.BGEU:
		return brGeu
	}
	return brNever
}
