// Package vliw defines the target ISA and the in-order execution core of
// the simulated DBT-based processor: wide bundles of syllables executed
// in lockstep, a register file twice the architectural size (the upper
// half are the paper's "hidden registers" for speculative results), and
// the Memory Conflict Buffer hardware that backs memory dependency
// speculation (Gallagher et al., ASPLOS'94; used by Transmeta, Denver and
// Hybrid-DBT).
//
// Speculative memory operations are distinct opcodes, exactly as the
// paper describes ("those speculative memory operations are clearly
// identified in the binaries, i.e. using a distinct opcode in the VLIW
// ISA"): KLoadD is a dismissable load hoisted above a side exit, KLoadS
// is an MCB-checked load hoisted above a store, KChk validates an MCB
// entry at the load's original position and branches to DBT-generated
// recovery code on conflict.
package vliw

import (
	"fmt"
	"sync/atomic"

	"ghostbusters/internal/riscv"
)

// NumRegs is the physical register file size. Registers 0..31 mirror the
// guest architectural registers; 32..63 are hidden registers invisible
// to the guest ISA, used for results of speculatively-hoisted
// instructions until their commit point.
const NumRegs = 64

// Kind is the syllable operation class.
type Kind uint8

const (
	KNop    Kind = iota
	KAluRR       // Dst = EvalALU(Op, R[Ra], R[Rb])
	KAluRI       // Dst = EvalALUImm(Op, R[Ra], Imm)
	KMovI        // Dst = Imm (long-immediate move)
	KLoad        // Dst = extend(Op, mem[R[Ra]+Imm]); architectural
	KLoadD       // dismissable load: faults squashed (hoisted above branch)
	KLoadS       // MCB load: dismissable + records (addr,size) under Tag
	KStore       // mem[R[Ra]+Imm] = R[Rb]; checks MCB for conflicts
	KChk         // validate MCB Tag; on conflict run recovery Rec
	KBrExit      // side exit: if EvalBranch(Op, R[Ra], R[Rb]) leave trace to Imm
	KJump        // block end: continue at guest PC Imm
	KJumpR       // block end: continue at guest PC R[Ra]+Imm (indirect)
	KCsr         // Dst = CSR[Imm] (cycle / instret)
	KFlush       // cflush line R[Ra] (Op=CFLUSH) or whole cache (CFLUSHALL)
	KCommit      // Dst(arch) = R[Ra](hidden): publish a speculative result
	// at its original program position; faults if the value
	// is poisoned (squashed dismissable load, NaT-style)
)

var kindNames = [...]string{
	KNop: "nop", KAluRR: "alu", KAluRI: "alui", KMovI: "movi",
	KLoad: "ld", KLoadD: "ldd", KLoadS: "lds", KStore: "st",
	KChk: "chk", KBrExit: "br.exit", KJump: "jump", KJumpR: "jumpr",
	KCsr: "csr", KFlush: "flush", KCommit: "commit",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMem reports whether the syllable kind uses the memory unit.
func (k Kind) IsMem() bool {
	switch k {
	case KLoad, KLoadD, KLoadS, KStore, KChk, KFlush, KCsr:
		return true
	}
	return false
}

// IsLoad reports whether the kind reads data memory.
func (k Kind) IsLoad() bool { return k == KLoad || k == KLoadD || k == KLoadS }

// IsControl reports whether the kind can redirect execution.
func (k Kind) IsControl() bool {
	return k == KBrExit || k == KJump || k == KJumpR
}

// Syllable is one operation inside a bundle.
type Syllable struct {
	Kind Kind
	Op   riscv.Op // semantic sub-operation (ALU op, load size, branch cond)
	Dst  uint8    // destination physical register
	Ra   uint8    // first source
	Rb   uint8    // second source
	Imm  int64    // immediate / displacement / exit PC / CSR number
	Tag  uint8    // MCB tag for KLoadS / KChk
	Rec  int16    // recovery sequence index for KChk, -1 if none

	GuestPC uint64 // guest address this syllable derives from (debugging)
}

func (s Syllable) String() string {
	switch s.Kind {
	case KNop:
		return "nop"
	case KAluRR:
		return fmt.Sprintf("%s r%d, r%d, r%d", s.Op, s.Dst, s.Ra, s.Rb)
	case KAluRI:
		return fmt.Sprintf("%si r%d, r%d, %d", s.Op, s.Dst, s.Ra, s.Imm)
	case KMovI:
		return fmt.Sprintf("movi r%d, %d", s.Dst, s.Imm)
	case KLoad, KLoadD, KLoadS:
		return fmt.Sprintf("%s.%s r%d, %d(r%d)", s.Kind, s.Op, s.Dst, s.Imm, s.Ra)
	case KStore:
		return fmt.Sprintf("st.%s r%d, %d(r%d)", s.Op, s.Rb, s.Imm, s.Ra)
	case KChk:
		return fmt.Sprintf("chk t%d, rec%d", s.Tag, s.Rec)
	case KCommit:
		return fmt.Sprintf("commit r%d, r%d", s.Dst, s.Ra)
	case KBrExit:
		return fmt.Sprintf("br.%s r%d, r%d -> %#x", s.Op, s.Ra, s.Rb, uint64(s.Imm))
	case KJump:
		return fmt.Sprintf("jump %#x", uint64(s.Imm))
	case KJumpR:
		return fmt.Sprintf("jumpr %d(r%d)", s.Imm, s.Ra)
	case KCsr:
		return fmt.Sprintf("csr r%d, %#x", s.Dst, s.Imm)
	case KFlush:
		if s.Op == riscv.CFLUSHALL {
			return "flushall"
		}
		return fmt.Sprintf("flush (r%d)", s.Ra)
	}
	return s.Kind.String()
}

// Bundle is one issue group: IssueWidth syllables executing in lockstep.
// All reads sample the register state before the bundle; writes apply
// after the bundle.
type Bundle []Syllable

// Block is a translated code region: the unit the DBT engine produces
// and the core executes.
type Block struct {
	EntryPC uint64
	Bundles []Bundle
	// Recoveries holds DBT-generated recovery sequences for KChk: the
	// speculative load re-executed architecturally plus its forward
	// slice, run sequentially on conflict.
	Recoveries [][]Syllable
	// FallPC is where execution continues when the block completes
	// without a control syllable redirecting it.
	FallPC uint64
	// GuestInsts is the number of guest instructions this block covers
	// (instret accounting).
	GuestInsts int

	// dec caches the block's threaded-dispatch table (see threaded.go).
	// Built once — at translation time via Prepare, or lazily on first
	// Exec — and immutable afterwards; atomic so blocks installed from
	// a shared translation cache can be executed by concurrent
	// machines without a lock.
	dec atomic.Pointer[decoded]
}

// decoded returns the block's threaded-dispatch table, building it on
// first use. Concurrent first uses may build it twice; both tables are
// equivalent and the loser is dropped.
func (b *Block) decoded() *decoded {
	if d := b.dec.Load(); d != nil {
		return d
	}
	d := buildDecoded(b)
	b.dec.Store(d)
	return d
}

// Prepare eagerly builds the threaded-dispatch table so the first
// dispatch of a freshly translated (or cache-installed) block doesn't
// pay the decode cost inside the measured hot loop.
func (b *Block) Prepare() { b.decoded() }

// SlotCap is a bitmask of syllable classes a slot can issue.
type SlotCap uint8

const (
	CapALU SlotCap = 1 << iota
	CapMem
	CapMul
	CapBranch
)

// Config describes the core geometry and static latencies. The scheduler
// spaces dependent syllables by these latencies; at run time the only
// dynamic timing is cache-miss stalls and side-exit penalties.
type Config struct {
	Slots []SlotCap // per-slot capabilities; len(Slots) == issue width

	LatALU  uint64 // ALU result latency (cycles)
	LatMul  uint64 // multiply latency
	LatDiv  uint64 // divide latency
	LatLoad uint64 // load-use latency on a cache hit

	ExitPenalty     uint64 // pipeline refill after a taken side exit
	RecoveryPenalty uint64 // fixed cost of entering MCB recovery
}

// DefaultConfig returns the standard 4-issue core: one memory unit, one
// multiplier, one branch unit, ALU everywhere — the Hybrid-DBT shape.
func DefaultConfig() Config {
	return Config{
		Slots: []SlotCap{
			CapALU | CapMem,
			CapALU | CapMul,
			CapALU,
			CapALU | CapBranch,
		},
		LatALU: 1, LatMul: 3, LatDiv: 8, LatLoad: 3,
		ExitPenalty: 3, RecoveryPenalty: 5,
	}
}

// WideConfig returns an 8-issue core (two memory units), for the
// issue-width ablation.
func WideConfig() Config {
	return Config{
		Slots: []SlotCap{
			CapALU | CapMem,
			CapALU | CapMem,
			CapALU | CapMul,
			CapALU | CapMul,
			CapALU,
			CapALU,
			CapALU,
			CapALU | CapBranch,
		},
		LatALU: 1, LatMul: 3, LatDiv: 8, LatLoad: 3,
		ExitPenalty: 3, RecoveryPenalty: 5,
	}
}

// NarrowConfig returns a 2-issue core, for the issue-width ablation.
func NarrowConfig() Config {
	return Config{
		Slots: []SlotCap{
			CapALU | CapMem,
			CapALU | CapMul | CapBranch,
		},
		LatALU: 1, LatMul: 3, LatDiv: 8, LatLoad: 3,
		ExitPenalty: 3, RecoveryPenalty: 5,
	}
}

// Width returns the issue width.
func (c *Config) Width() int { return len(c.Slots) }

// CapFor returns the capability class a syllable kind requires.
func CapFor(k Kind, op riscv.Op) SlotCap {
	switch k {
	case KNop:
		return 0
	case KAluRR, KAluRI:
		switch op {
		case riscv.MUL, riscv.MULH, riscv.MULHSU, riscv.MULHU, riscv.MULW,
			riscv.DIV, riscv.DIVU, riscv.REM, riscv.REMU,
			riscv.DIVW, riscv.DIVUW, riscv.REMW, riscv.REMUW:
			return CapMul
		}
		return CapALU
	case KMovI, KCommit:
		return CapALU
	case KLoad, KLoadD, KLoadS, KStore, KCsr, KFlush:
		return CapMem
	case KChk:
		// The MCB has its own comparison port (Gallagher-style check
		// instructions do not occupy the D-cache port).
		return CapALU
	case KBrExit, KJump, KJumpR:
		return CapBranch
	}
	return CapALU
}

// Latency returns the static result latency of a syllable under cfg.
func (c *Config) Latency(s *Syllable) uint64 {
	switch s.Kind {
	case KLoad, KLoadD, KLoadS:
		return c.LatLoad
	case KAluRR, KAluRI:
		switch CapFor(s.Kind, s.Op) {
		case CapMul:
			switch s.Op {
			case riscv.DIV, riscv.DIVU, riscv.REM, riscv.REMU,
				riscv.DIVW, riscv.DIVUW, riscv.REMW, riscv.REMUW:
				return c.LatDiv
			}
			return c.LatMul
		}
		return c.LatALU
	}
	return c.LatALU
}

// Validate checks the configuration is usable.
func (c *Config) Validate() error {
	if len(c.Slots) == 0 {
		return fmt.Errorf("vliw: config has no slots")
	}
	var caps SlotCap
	for _, s := range c.Slots {
		caps |= s
	}
	for _, need := range []SlotCap{CapALU, CapMem, CapMul, CapBranch} {
		if caps&need == 0 {
			return fmt.Errorf("vliw: no slot provides capability %#x", need)
		}
	}
	if c.LatALU == 0 || c.LatLoad == 0 {
		return fmt.Errorf("vliw: latencies must be nonzero")
	}
	return nil
}

// String renders a block's schedule for debugging.
func (b *Block) String() string {
	s := fmt.Sprintf("vliw block @%#x (%d bundles, falls to %#x)\n", b.EntryPC, len(b.Bundles), b.FallPC)
	for i, bun := range b.Bundles {
		s += fmt.Sprintf("  %3d: ", i)
		for j, sy := range bun {
			if j > 0 {
				s += " | "
			}
			s += sy.String()
		}
		s += "\n"
	}
	for i, rec := range b.Recoveries {
		s += fmt.Sprintf("  rec%d:", i)
		for _, sy := range rec {
			s += " {" + sy.String() + "}"
		}
		s += "\n"
	}
	return s
}
