package polybench_test

import (
	"strings"
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/polybench"
)

// small sizes keep the full-matrix test quick while still reaching the
// trace-translation thresholds.
var testSizes = map[string]int{
	"gemm": 10, "2mm": 8, "3mm": 8, "atax": 16, "bicg": 16, "mvt": 16,
	"gesummv": 12, "gemver": 12, "syrk": 10, "syr2k": 8, "trmm": 10,
	"floyd-warshall": 8, "durbin": 12, "nussinov": 10,
	"doitgen": 6, "trisolv": 16, "jacobi-1d": 64, "jacobi-2d": 12,
	"seidel-2d": 10,
}

// Every kernel must produce reference-identical results under every
// mitigation mode — this is the master end-to-end correctness sweep of
// the whole DBT pipeline over realistic loop nests.
func TestAllKernelsAllModes(t *testing.T) {
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			n := testSizes[k.Name]
			if n == 0 {
				n = k.DefaultN
			}
			for _, mode := range harness.Fig4Modes {
				spec, err := k.Make(n)
				if err != nil {
					t.Fatalf("%s: make: %v", k.Name, err)
				}
				cfg := dbt.DefaultConfig()
				cfg.Mitigation = mode
				if _, err := harness.RunSpec(spec, cfg); err != nil {
					t.Fatalf("%s under %s: %v", k.Name, mode, err)
				}
			}
		})
	}
}

func TestMatmulPtrAllModes(t *testing.T) {
	for _, mode := range harness.Fig4Modes {
		spec, err := polybench.MakeMatmulPtr(10)
		if err != nil {
			t.Fatal(err)
		}
		cfg := dbt.DefaultConfig()
		cfg.Mitigation = mode
		run, err := harness.RunSpec(spec, cfg)
		if err != nil {
			t.Fatalf("matmul-ptr under %s: %v", mode, err)
		}
		// The pointer layout must trigger the Spectre pattern detector
		// under the analysing modes.
		if mode == core.ModeGhostBusters && run.Stats.PatternsFound == 0 {
			t.Error("pointer-layout matmul did not trigger the poison analysis")
		}
	}
}

func TestFlatGemmHasNoPattern(t *testing.T) {
	spec, err := polybench.MakeGemm(10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.Mitigation = core.ModeGhostBusters
	run, err := harness.RunSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flat affine accesses never use loaded values as addresses: the
	// paper's observation that the pattern is rare in the standard suite.
	if run.Stats.PatternsFound != 0 {
		t.Errorf("flat gemm flagged %d patterns; expected none", run.Stats.PatternsFound)
	}
}

func TestKernelsExerciseSpeculation(t *testing.T) {
	spec, err := polybench.MakeGemm(10)
	if err != nil {
		t.Fatal(err)
	}
	run, err := harness.RunSpec(spec, dbt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats.SpecLoads == 0 {
		t.Error("gemm under unsafe issued no speculative loads")
	}
	if run.Stats.Traces == 0 {
		t.Error("gemm built no traces")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"gemm", "jacobi-1d", "matmul-ptr"} {
		k, err := polybench.ByName(name)
		if err != nil || k.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, k.Name, err)
		}
	}
	if _, err := polybench.ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestSpecSourcesAssemble(t *testing.T) {
	for _, k := range polybench.All() {
		spec, err := k.Make(6)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if !strings.Contains(spec.Source, "main:") || !strings.Contains(spec.Source, "ecall") {
			t.Errorf("%s: malformed source", k.Name)
		}
		if len(spec.Outputs) == 0 || len(spec.Expected) == 0 {
			t.Errorf("%s: no outputs declared", k.Name)
		}
	}
}
