// Package polybench provides the data-intensive integer loop kernels the
// evaluation runs under the different mitigation modes (the paper bases
// its Figure 4 on Polybench, "because DBT processors are more efficient
// on data-intensive applications"). Every kernel is generated as rv64im
// assembly by the kbuild DSL and paired with a native Go reference
// implementation, so each benchmark run is also a correctness check of
// the whole DBT pipeline.
//
// rv64im has no floating point, so the kernels are the integer variants
// of the same loop nests (DESIGN.md documents the substitution).
package polybench

import (
	"fmt"

	"ghostbusters/internal/kbuild"
)

// Spec is a fully-instantiated kernel: assembly source, initial data,
// and the reference results to validate against. A Spec is read-only
// after Make returns — the harness shares one Spec between concurrently
// running machines, so callers must not mutate it.
type Spec struct {
	Name     string
	N        int
	Source   string
	Arrays   []*kbuild.Array
	Inputs   map[string][]int64
	Outputs  []string
	Expected map[string][]int64
}

// Kernel is a kernel generator at a choosable size.
type Kernel struct {
	Name     string
	DefaultN int
	Make     func(n int) (*Spec, error)
}

// CacheKey identifies the artifact Make(n) produces: the generated
// source, the assembled image and the reference outputs are all pure
// functions of (kernel name, n), so the key is exactly that pair. A zero
// n normalises to DefaultN, matching the harness's size handling.
func (k Kernel) CacheKey(n int) string {
	if n == 0 {
		n = k.DefaultN
	}
	return fmt.Sprintf("%s/n%d", k.Name, n)
}

// All returns the benchmark suite in Figure 4 order.
func All() []Kernel {
	return []Kernel{
		{"gemm", 20, MakeGemm},
		{"2mm", 16, Make2mm},
		{"3mm", 14, Make3mm},
		{"atax", 48, MakeAtax},
		{"bicg", 48, MakeBicg},
		{"mvt", 48, MakeMvt},
		{"gesummv", 40, MakeGesummv},
		{"gemver", 40, MakeGemver},
		{"syrk", 18, MakeSyrk},
		{"syr2k", 16, MakeSyr2k},
		{"trmm", 20, MakeTrmm},
		{"doitgen", 12, MakeDoitgen},
		{"trisolv", 48, MakeTrisolv},
		{"durbin", 32, MakeDurbin},
		{"floyd-warshall", 14, MakeFloydWarshall},
		{"nussinov", 24, MakeNussinov},
		{"jacobi-1d", 400, MakeJacobi1D},
		{"jacobi-2d", 28, MakeJacobi2D},
		{"seidel-2d", 28, MakeSeidel2D},
	}
}

// ByName returns the kernel generator with the given name.
func ByName(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	if name == "matmul-ptr" {
		return Kernel{"matmul-ptr", 20, MakeMatmulPtr}, nil
	}
	return Kernel{}, fmt.Errorf("polybench: unknown kernel %q", name)
}

// fill produces deterministic small input values: reproducible across
// the guest and the reference, bounded to keep products readable.
func fill(name string, n int) []int64 {
	out := make([]int64, n)
	h := int64(0)
	for _, c := range name {
		h = h*31 + int64(c)
	}
	for i := range out {
		out[i] = (h+int64(i)*7)%19 - 9
	}
	return out
}

// finish assembles the spec: generate source, snapshot inputs, run the
// reference to compute expected outputs.
func finish(name string, n int, b *kbuild.Builder, inputs map[string][]int64, outputs []string, ref func(map[string][]int64)) (*Spec, error) {
	src, err := b.Program()
	if err != nil {
		return nil, err
	}
	// The reference mutates a deep copy of the inputs in place.
	work := make(map[string][]int64, len(inputs))
	for k, v := range inputs {
		cp := make([]int64, len(v))
		copy(cp, v)
		work[k] = cp
	}
	ref(work)
	expected := make(map[string][]int64, len(outputs))
	for _, o := range outputs {
		expected[o] = work[o]
	}
	return &Spec{
		Name: name, N: n, Source: src,
		Arrays: b.Arrays(), Inputs: inputs,
		Outputs: outputs, Expected: expected,
	}, nil
}

const (
	alpha = 2
	beta  = 3
)

// MakeGemm builds C = beta*C + alpha*A*B.
func MakeGemm(n int) (*Spec, error) { return makeGemmLayout("gemm", n, false) }

// MakeMatmulPtr is the paper's modified matrix multiplication: 2-D
// arrays represented as arrays of row pointers, so every access is a
// double indirection and the Spectre pattern occurs in the hot loop
// (Section V-B, last experiment). The kernel is the textbook ikj
// form with C[i][j] accumulated in memory: the inner loop stores to C
// through one double indirection while loading B and C through others,
// so the row-pointer loads are speculated above the store (poisoned)
// and the element loads become the risky accesses.
func MakeMatmulPtr(n int) (*Spec, error) {
	name := "matmul_ptr"
	b := kbuild.New(name)
	A := b.Array2DPtr("A", n, n)
	B2 := b.Array2DPtr("B", n, n)
	C := b.Array2DPtr("C", n, n)
	bA, bB, bC := b.BasePtr(A), b.BasePtr(B2), b.BasePtr(C)
	av := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.For(0, n, func(j kbuild.Var) {
			b.Store(C, bC, b.Mul(b.Load(C, bC, i, j), beta), i, j)
		})
		b.For(0, n, func(k kbuild.Var) {
			b.Set(av, b.Mul(b.Load(A, bA, i, k), alpha))
			b.For(0, n, func(j kbuild.Var) {
				t := b.Mul(av, b.Load(B2, bB, k, j))
				b.Store(C, bC, b.Add(b.Load(C, bC, i, j), t), i, j)
			})
		})
	})
	in := map[string][]int64{
		"A": fill(name+"A", n*n), "B": fill(name+"B", n*n), "C": fill(name+"C", n*n),
	}
	return finish(name, n, b, in, []string{"C"}, func(m map[string][]int64) {
		a, bb, c := m["A"], m["B"], m["C"]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c[i*n+j] *= beta
			}
			for k := 0; k < n; k++ {
				av := a[i*n+k] * alpha
				for j := 0; j < n; j++ {
					c[i*n+j] += av * bb[k*n+j]
				}
			}
		}
	})
}

func makeGemmLayout(name string, n int, ptr bool) (*Spec, error) {
	b := kbuild.New(name)
	mk := b.Array2D
	if ptr {
		mk = b.Array2DPtr
	}
	A := mk("A", n, n)
	B := mk("B", n, n)
	C := mk("C", n, n)
	bA, bB, bC := b.BasePtr(A), b.BasePtr(B), b.BasePtr(C)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.For(0, n, func(j kbuild.Var) {
			b.Set(acc, b.Mul(b.Load(C, bC, i, j), beta))
			b.For(0, n, func(k kbuild.Var) {
				t := b.Mul(b.Load(A, bA, i, k), b.Load(B, bB, k, j))
				b.AddTo(acc, b.Mul(t, alpha))
			})
			b.Store(C, bC, acc, i, j)
		})
	})
	in := map[string][]int64{
		"A": fill(name+"A", n*n), "B": fill(name+"B", n*n), "C": fill(name+"C", n*n),
	}
	return finish(name, n, b, in, []string{"C"}, func(m map[string][]int64) {
		a, bb, c := m["A"], m["B"], m["C"]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := c[i*n+j] * beta
				for k := 0; k < n; k++ {
					acc += alpha * a[i*n+k] * bb[k*n+j]
				}
				c[i*n+j] = acc
			}
		}
	})
}

// Make2mm builds tmp = alpha*A*B, then D = tmp*C + beta*D.
func Make2mm(n int) (*Spec, error) {
	b := kbuild.New("k2mm")
	A := b.Array2D("A", n, n)
	B := b.Array2D("B", n, n)
	C := b.Array2D("C", n, n)
	D := b.Array2D("D", n, n)
	T := b.Array2D("T", n, n)
	acc := b.Local(0)

	bA, bB, bT := b.BasePtr(A), b.BasePtr(B), b.BasePtr(T)
	b.For(0, n, func(i kbuild.Var) {
		b.For(0, n, func(j kbuild.Var) {
			b.Set(acc, 0)
			b.For(0, n, func(k kbuild.Var) {
				t := b.Mul(b.Load(A, bA, i, k), b.Load(B, bB, k, j))
				b.AddTo(acc, b.Mul(t, alpha))
			})
			b.Store(T, bT, acc, i, j)
		})
	})
	b.Free(bA)
	b.Free(bB)
	bC, bD := b.BasePtr(C), b.BasePtr(D)
	b.For(0, n, func(i kbuild.Var) {
		b.For(0, n, func(j kbuild.Var) {
			b.Set(acc, b.Mul(b.Load(D, bD, i, j), beta))
			b.For(0, n, func(k kbuild.Var) {
				b.AddTo(acc, b.Mul(b.Load(T, bT, i, k), b.Load(C, bC, k, j)))
			})
			b.Store(D, bD, acc, i, j)
		})
	})
	in := map[string][]int64{
		"A": fill("2mmA", n*n), "B": fill("2mmB", n*n),
		"C": fill("2mmC", n*n), "D": fill("2mmD", n*n),
		"T": make([]int64, n*n),
	}
	return finish("2mm", n, b, in, []string{"D", "T"}, func(m map[string][]int64) {
		a, bb, c, d, tmp := m["A"], m["B"], m["C"], m["D"], m["T"]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := int64(0)
				for k := 0; k < n; k++ {
					acc += alpha * a[i*n+k] * bb[k*n+j]
				}
				tmp[i*n+j] = acc
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := d[i*n+j] * beta
				for k := 0; k < n; k++ {
					acc += tmp[i*n+k] * c[k*n+j]
				}
				d[i*n+j] = acc
			}
		}
	})
}

// Make3mm builds E = A*B, F = C*D, G = E*F.
func Make3mm(n int) (*Spec, error) {
	b := kbuild.New("k3mm")
	A := b.Array2D("A", n, n)
	B := b.Array2D("B", n, n)
	C := b.Array2D("C", n, n)
	D := b.Array2D("D", n, n)
	E := b.Array2D("E", n, n)
	F := b.Array2D("F", n, n)
	G := b.Array2D("G", n, n)
	acc := b.Local(0)

	mm := func(x, y, z *kbuild.Array) {
		bx, by, bz := b.BasePtr(x), b.BasePtr(y), b.BasePtr(z)
		b.For(0, n, func(i kbuild.Var) {
			b.For(0, n, func(j kbuild.Var) {
				b.Set(acc, 0)
				b.For(0, n, func(k kbuild.Var) {
					b.AddTo(acc, b.Mul(b.Load(x, bx, i, k), b.Load(y, by, k, j)))
				})
				b.Store(z, bz, acc, i, j)
			})
		})
		b.Free(bx)
		b.Free(by)
		b.Free(bz)
	}
	mm(A, B, E)
	mm(C, D, F)
	mm(E, F, G)
	in := map[string][]int64{
		"A": fill("3mmA", n*n), "B": fill("3mmB", n*n),
		"C": fill("3mmC", n*n), "D": fill("3mmD", n*n),
		"E": make([]int64, n*n), "F": make([]int64, n*n), "G": make([]int64, n*n),
	}
	return finish("3mm", n, b, in, []string{"G"}, func(m map[string][]int64) {
		mulRef := func(x, y, z []int64) {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					acc := int64(0)
					for k := 0; k < n; k++ {
						acc += x[i*n+k] * y[k*n+j]
					}
					z[i*n+j] = acc
				}
			}
		}
		mulRef(m["A"], m["B"], m["E"])
		mulRef(m["C"], m["D"], m["F"])
		mulRef(m["E"], m["F"], m["G"])
	})
}

// MakeAtax builds y = A^T (A x).
func MakeAtax(n int) (*Spec, error) {
	b := kbuild.New("atax")
	A := b.Array2D("A", n, n)
	X := b.Array("X", n)
	Y := b.Array("Y", n)
	T := b.Array("T", n)
	bA, bX, bY, bT := b.BasePtr(A), b.BasePtr(X), b.BasePtr(Y), b.BasePtr(T)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.Set(acc, 0)
		b.For(0, n, func(j kbuild.Var) {
			b.AddTo(acc, b.Mul(b.Load(A, bA, i, j), b.Load(X, bX, j)))
		})
		b.Store(T, bT, acc, i)
		b.For(0, n, func(j kbuild.Var) {
			t := b.Add(b.Load(Y, bY, j), b.Mul(b.Load(A, bA, i, j), acc))
			b.Store(Y, bY, t, j)
		})
	})
	in := map[string][]int64{
		"A": fill("ataxA", n*n), "X": fill("ataxX", n),
		"Y": make([]int64, n), "T": make([]int64, n),
	}
	return finish("atax", n, b, in, []string{"Y", "T"}, func(m map[string][]int64) {
		a, x, y, tmp := m["A"], m["X"], m["Y"], m["T"]
		for i := 0; i < n; i++ {
			acc := int64(0)
			for j := 0; j < n; j++ {
				acc += a[i*n+j] * x[j]
			}
			tmp[i] = acc
			for j := 0; j < n; j++ {
				y[j] += a[i*n+j] * acc
			}
		}
	})
}

// MakeBicg builds s = A^T r and q = A p.
func MakeBicg(n int) (*Spec, error) {
	b := kbuild.New("bicg")
	A := b.Array2D("A", n, n)
	S := b.Array("S", n)
	Q := b.Array("Q", n)
	P := b.Array("P", n)
	R := b.Array("R", n)
	bA, bS, bQ, bP, bR := b.BasePtr(A), b.BasePtr(S), b.BasePtr(Q), b.BasePtr(P), b.BasePtr(R)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		ri := b.Load(R, bR, i)
		riv := b.Local(0)
		b.Set(riv, ri)
		b.Set(acc, 0)
		b.For(0, n, func(j kbuild.Var) {
			sj := b.Add(b.Load(S, bS, j), b.Mul(riv, b.Load(A, bA, i, j)))
			b.Store(S, bS, sj, j)
			b.AddTo(acc, b.Mul(b.Load(A, bA, i, j), b.Load(P, bP, j)))
		})
		qOld := b.Load(Q, bQ, i)
		b.Store(Q, bQ, b.Add(qOld, acc), i)
		b.Free(riv)
	})
	in := map[string][]int64{
		"A": fill("bicgA", n*n), "P": fill("bicgP", n), "R": fill("bicgR", n),
		"S": make([]int64, n), "Q": make([]int64, n),
	}
	return finish("bicg", n, b, in, []string{"S", "Q"}, func(m map[string][]int64) {
		a, s, q, p, r := m["A"], m["S"], m["Q"], m["P"], m["R"]
		for i := 0; i < n; i++ {
			acc := int64(0)
			for j := 0; j < n; j++ {
				s[j] += r[i] * a[i*n+j]
				acc += a[i*n+j] * p[j]
			}
			q[i] += acc
		}
	})
}

// MakeMvt builds x1 += A y1 and x2 += A^T y2.
func MakeMvt(n int) (*Spec, error) {
	b := kbuild.New("mvt")
	A := b.Array2D("A", n, n)
	X1 := b.Array("X1", n)
	X2 := b.Array("X2", n)
	Y1 := b.Array("Y1", n)
	Y2 := b.Array("Y2", n)
	bA, bX1, bX2, bY1, bY2 := b.BasePtr(A), b.BasePtr(X1), b.BasePtr(X2), b.BasePtr(Y1), b.BasePtr(Y2)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.Set(acc, b.Load(X1, bX1, i))
		b.For(0, n, func(j kbuild.Var) {
			b.AddTo(acc, b.Mul(b.Load(A, bA, i, j), b.Load(Y1, bY1, j)))
		})
		b.Store(X1, bX1, acc, i)
	})
	b.For(0, n, func(i kbuild.Var) {
		b.Set(acc, b.Load(X2, bX2, i))
		b.For(0, n, func(j kbuild.Var) {
			b.AddTo(acc, b.Mul(b.Load(A, bA, j, i), b.Load(Y2, bY2, j)))
		})
		b.Store(X2, bX2, acc, i)
	})
	in := map[string][]int64{
		"A": fill("mvtA", n*n), "X1": fill("mvtX1", n), "X2": fill("mvtX2", n),
		"Y1": fill("mvtY1", n), "Y2": fill("mvtY2", n),
	}
	return finish("mvt", n, b, in, []string{"X1", "X2"}, func(m map[string][]int64) {
		a, x1, x2, y1, y2 := m["A"], m["X1"], m["X2"], m["Y1"], m["Y2"]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x1[i] += a[i*n+j] * y1[j]
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x2[i] += a[j*n+i] * y2[j]
			}
		}
	})
}

// MakeGesummv builds y = alpha*A*x + beta*B*x.
func MakeGesummv(n int) (*Spec, error) {
	b := kbuild.New("gesummv")
	A := b.Array2D("A", n, n)
	B2 := b.Array2D("B", n, n)
	X := b.Array("X", n)
	Y := b.Array("Y", n)
	bA, bB, bX, bY := b.BasePtr(A), b.BasePtr(B2), b.BasePtr(X), b.BasePtr(Y)
	sa := b.Local(0)
	sb := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.Set(sa, 0)
		b.Set(sb, 0)
		b.For(0, n, func(j kbuild.Var) {
			x := b.Load(X, bX, j)
			xv := b.Local(0)
			b.Set(xv, x)
			b.AddTo(sa, b.Mul(b.Load(A, bA, i, j), xv))
			b.AddTo(sb, b.Mul(b.Load(B2, bB, i, j), xv))
			b.Free(xv)
		})
		t := b.Add(b.Mul(sa, alpha), b.Mul(sb, beta))
		b.Store(Y, bY, t, i)
	})
	in := map[string][]int64{
		"A": fill("gesummvA", n*n), "B": fill("gesummvB", n*n),
		"X": fill("gesummvX", n), "Y": make([]int64, n),
	}
	return finish("gesummv", n, b, in, []string{"Y"}, func(m map[string][]int64) {
		a, bb, x, y := m["A"], m["B"], m["X"], m["Y"]
		for i := 0; i < n; i++ {
			var sa, sb int64
			for j := 0; j < n; j++ {
				sa += a[i*n+j] * x[j]
				sb += bb[i*n+j] * x[j]
			}
			y[i] = alpha*sa + beta*sb
		}
	})
}

// MakeGemver builds the gemver composite: rank-2 update of A, then
// x += beta*A^T*y, x += z, w += alpha*A*x.
func MakeGemver(n int) (*Spec, error) {
	b := kbuild.New("gemver")
	A := b.Array2D("A", n, n)
	U1 := b.Array("U1", n)
	V1 := b.Array("V1", n)
	U2 := b.Array("U2", n)
	V2 := b.Array("V2", n)
	X := b.Array("X", n)
	Y := b.Array("Y", n)
	Z := b.Array("Z", n)
	W := b.Array("W", n)

	bA := b.BasePtr(A)
	{
		bU1, bV1, bU2, bV2 := b.BasePtr(U1), b.BasePtr(V1), b.BasePtr(U2), b.BasePtr(V2)
		b.For(0, n, func(i kbuild.Var) {
			b.For(0, n, func(j kbuild.Var) {
				t := b.Add(b.Load(A, bA, i, j), b.Mul(b.Load(U1, bU1, i), b.Load(V1, bV1, j)))
				t2 := b.Add(t, b.Mul(b.Load(U2, bU2, i), b.Load(V2, bV2, j)))
				b.Store(A, bA, t2, i, j)
			})
		})
		b.Free(bU1)
		b.Free(bV1)
		b.Free(bU2)
		b.Free(bV2)
	}
	acc := b.Local(0)
	{
		bX, bY := b.BasePtr(X), b.BasePtr(Y)
		b.For(0, n, func(i kbuild.Var) {
			b.Set(acc, b.Load(X, bX, i))
			b.For(0, n, func(j kbuild.Var) {
				t := b.Mul(b.Load(A, bA, j, i), b.Load(Y, bY, j))
				b.AddTo(acc, b.Mul(t, beta))
			})
			b.Store(X, bX, acc, i)
		})
		b.Free(bY)
		bZ := b.BasePtr(Z)
		b.For(0, n, func(i kbuild.Var) {
			t := b.Add(b.Load(X, bX, i), b.Load(Z, bZ, i))
			b.Store(X, bX, t, i)
		})
		b.Free(bZ)
		bW := b.BasePtr(W)
		b.For(0, n, func(i kbuild.Var) {
			b.Set(acc, b.Load(W, bW, i))
			b.For(0, n, func(j kbuild.Var) {
				t := b.Mul(b.Load(A, bA, i, j), b.Load(X, bX, j))
				b.AddTo(acc, b.Mul(t, alpha))
			})
			b.Store(W, bW, acc, i)
		})
	}
	in := map[string][]int64{
		"A":  fill("gemverA", n*n),
		"U1": fill("gemverU1", n), "V1": fill("gemverV1", n),
		"U2": fill("gemverU2", n), "V2": fill("gemverV2", n),
		"X": fill("gemverX", n), "Y": fill("gemverY", n),
		"Z": fill("gemverZ", n), "W": make([]int64, n),
	}
	return finish("gemver", n, b, in, []string{"A", "X", "W"}, func(m map[string][]int64) {
		a, u1, v1, u2, v2 := m["A"], m["U1"], m["V1"], m["U2"], m["V2"]
		x, y, z, w := m["X"], m["Y"], m["Z"], m["W"]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i*n+j] += u1[i]*v1[j] + u2[i]*v2[j]
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x[i] += beta * a[j*n+i] * y[j]
			}
		}
		for i := 0; i < n; i++ {
			x[i] += z[i]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w[i] += alpha * a[i*n+j] * x[j]
			}
		}
	})
}

// MakeSyrk builds C = beta*C + alpha*A*A^T.
func MakeSyrk(n int) (*Spec, error) {
	b := kbuild.New("syrk")
	A := b.Array2D("A", n, n)
	C := b.Array2D("C", n, n)
	bA, bC := b.BasePtr(A), b.BasePtr(C)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.For(0, n, func(j kbuild.Var) {
			b.Set(acc, b.Mul(b.Load(C, bC, i, j), beta))
			b.For(0, n, func(k kbuild.Var) {
				t := b.Mul(b.Load(A, bA, i, k), b.Load(A, bA, j, k))
				b.AddTo(acc, b.Mul(t, alpha))
			})
			b.Store(C, bC, acc, i, j)
		})
	})
	in := map[string][]int64{"A": fill("syrkA", n*n), "C": fill("syrkC", n*n)}
	return finish("syrk", n, b, in, []string{"C"}, func(m map[string][]int64) {
		a, c := m["A"], m["C"]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := c[i*n+j] * beta
				for k := 0; k < n; k++ {
					acc += alpha * a[i*n+k] * a[j*n+k]
				}
				c[i*n+j] = acc
			}
		}
	})
}

// MakeSyr2k builds C = beta*C + alpha*(A*B^T + B*A^T).
func MakeSyr2k(n int) (*Spec, error) {
	b := kbuild.New("syr2k")
	A := b.Array2D("A", n, n)
	B2 := b.Array2D("B", n, n)
	C := b.Array2D("C", n, n)
	bA, bB, bC := b.BasePtr(A), b.BasePtr(B2), b.BasePtr(C)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.For(0, n, func(j kbuild.Var) {
			b.Set(acc, b.Mul(b.Load(C, bC, i, j), beta))
			b.For(0, n, func(k kbuild.Var) {
				t1 := b.Mul(b.Load(A, bA, i, k), b.Load(B2, bB, j, k))
				b.AddTo(acc, b.Mul(t1, alpha))
				t2 := b.Mul(b.Load(B2, bB, i, k), b.Load(A, bA, j, k))
				b.AddTo(acc, b.Mul(t2, alpha))
			})
			b.Store(C, bC, acc, i, j)
		})
	})
	in := map[string][]int64{
		"A": fill("syr2kA", n*n), "B": fill("syr2kB", n*n), "C": fill("syr2kC", n*n),
	}
	return finish("syr2k", n, b, in, []string{"C"}, func(m map[string][]int64) {
		a, bb, c := m["A"], m["B"], m["C"]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := c[i*n+j] * beta
				for k := 0; k < n; k++ {
					acc += alpha * a[i*n+k] * bb[j*n+k]
					acc += alpha * bb[i*n+k] * a[j*n+k]
				}
				c[i*n+j] = acc
			}
		}
	})
}

// MakeTrmm builds the triangular matrix multiply B = alpha*A*B with A
// unit-lower-triangular (triangular inner loop bound).
func MakeTrmm(n int) (*Spec, error) {
	b := kbuild.New("trmm")
	A := b.Array2D("A", n, n)
	B2 := b.Array2D("B", n, n)
	bA, bB := b.BasePtr(A), b.BasePtr(B2)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.For(0, n, func(j kbuild.Var) {
			b.Set(acc, b.Load(B2, bB, i, j))
			b.For(0, i, func(k kbuild.Var) {
				b.AddTo(acc, b.Mul(b.Load(A, bA, i, k), b.Load(B2, bB, k, j)))
			})
			b.Store(B2, bB, b.Mul(acc, alpha), i, j)
		})
	})
	in := map[string][]int64{"A": fill("trmmA", n*n), "B": fill("trmmB", n*n)}
	return finish("trmm", n, b, in, []string{"B"}, func(m map[string][]int64) {
		a, bb := m["A"], m["B"]
		out := make([]int64, n*n)
		copy(out, bb)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := bb[i*n+j]
				for k := 0; k < i; k++ {
					acc += a[i*n+k] * out[k*n+j]
				}
				out[i*n+j] = acc * alpha
			}
		}
		copy(bb, out)
	})
}

// MakeDoitgen builds sum[p] = sum_s A[r][q][s] * C4[s][p] with the 3-D
// tensor flattened to (r*q, s).
func MakeDoitgen(n int) (*Spec, error) {
	b := kbuild.New("doitgen")
	rq := n * n
	A := b.Array2D("A", rq, n)
	C4 := b.Array2D("C4", n, n)
	S := b.Array("S", n)
	bA, bC, bS := b.BasePtr(A), b.BasePtr(C4), b.BasePtr(S)
	acc := b.Local(0)
	b.For(0, rq, func(r kbuild.Var) {
		b.For(0, n, func(p kbuild.Var) {
			b.Set(acc, 0)
			b.For(0, n, func(s kbuild.Var) {
				b.AddTo(acc, b.Mul(b.Load(A, bA, r, s), b.Load(C4, bC, s, p)))
			})
			b.Store(S, bS, acc, p)
		})
		b.For(0, n, func(p kbuild.Var) {
			b.Store(A, bA, b.Load(S, bS, p), r, p)
		})
	})
	in := map[string][]int64{
		"A": fill("doitgenA", rq*n), "C4": fill("doitgenC4", n*n), "S": make([]int64, n),
	}
	return finish("doitgen", n, b, in, []string{"A"}, func(m map[string][]int64) {
		a, c4 := m["A"], m["C4"]
		s := make([]int64, n)
		for r := 0; r < rq; r++ {
			for p := 0; p < n; p++ {
				acc := int64(0)
				for k := 0; k < n; k++ {
					acc += a[r*n+k] * c4[k*n+p]
				}
				s[p] = acc
			}
			for p := 0; p < n; p++ {
				a[r*n+p] = s[p]
			}
		}
	})
}

// MakeTrisolv solves L x = b for a lower-triangular L by forward
// substitution (integer division).
func MakeTrisolv(n int) (*Spec, error) {
	b := kbuild.New("trisolv")
	L := b.Array2D("L", n, n)
	X := b.Array("X", n)
	B2 := b.Array("B", n)
	bL, bX, bB := b.BasePtr(L), b.BasePtr(X), b.BasePtr(B2)
	acc := b.Local(0)
	b.For(0, n, func(i kbuild.Var) {
		b.Set(acc, b.Load(B2, bB, i))
		b.For(0, i, func(j kbuild.Var) {
			t := b.Mul(b.Load(L, bL, i, j), b.Load(X, bX, j))
			b.Set(acc, b.Sub(acc, t))
		})
		b.Store(X, bX, b.Div(acc, b.Load(L, bL, i, i)), i)
	})
	lvals := fill("trisolvL", n*n)
	for i := 0; i < n; i++ {
		lvals[i*n+i] = int64(3 + i%5) // nonzero diagonal
	}
	in := map[string][]int64{
		"L": lvals, "B": fill("trisolvB", n), "X": make([]int64, n),
	}
	return finish("trisolv", n, b, in, []string{"X"}, func(m map[string][]int64) {
		l, x, bb := m["L"], m["X"], m["B"]
		for i := 0; i < n; i++ {
			acc := bb[i]
			for j := 0; j < i; j++ {
				acc -= l[i*n+j] * x[j]
			}
			x[i] = acc / l[i*n+i]
		}
	})
}

// MakeFloydWarshall builds the all-pairs shortest-path kernel: the min
// is computed branchlessly (sub/shift-mask/and), keeping the hot loop
// straight-line — a different instruction mix from the mul/add kernels.
func MakeFloydWarshall(n int) (*Spec, error) {
	b := kbuild.New("floyd")
	D := b.Array2D("D", n, n)
	bD := b.BasePtr(D)
	ikv := b.Local(0)
	b.For(0, n, func(k kbuild.Var) {
		b.For(0, n, func(i kbuild.Var) {
			b.Set(ikv, b.Load(D, bD, i, k))
			b.For(0, n, func(j kbuild.Var) {
				alt := b.Add(ikv, b.Load(D, bD, k, j))
				best := b.Min(b.Load(D, bD, i, j), alt)
				b.Store(D, bD, best, i, j)
			})
		})
	})
	// Non-negative edge weights keep the min semantics intuitive.
	vals := fill("floydD", n*n)
	for i := range vals {
		if vals[i] < 0 {
			vals[i] = -vals[i]
		}
		vals[i] += 1
	}
	for i := 0; i < n; i++ {
		vals[i*n+i] = 0
	}
	in := map[string][]int64{"D": vals}
	return finish("floyd-warshall", n, b, in, []string{"D"}, func(m map[string][]int64) {
		d := m["D"]
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if alt := d[i*n+k] + d[k*n+j]; alt < d[i*n+j] {
						d[i*n+j] = alt
					}
				}
			}
		}
	})
}

// MakeDurbin builds the Levinson-Durbin Toeplitz solver (integer form):
// a serial outer recurrence with an inner dot product and a reversal
// update, giving a very different dependence structure from the dense
// kernels (alpha/beta kept as integer divisions).
func MakeDurbin(n int) (*Spec, error) {
	b := kbuild.New("durbin")
	R := b.Array("R", n+1)
	Y := b.Array("Y", n)
	Z := b.Array("Z", n)
	bR, bY, bZ := b.BasePtr(R), b.BasePtr(Y), b.BasePtr(Z)
	acc := b.Local(0)
	b.Store(Y, bY, b.Sub(0, b.Load(R, bR, 1)), 0)
	b.For(1, n, func(k kbuild.Var) {
		// acc = r[k+1] + sum_{i<k} r[k-i] * y[i]  (scaled integer form)
		b.Set(acc, b.Load(R, bR, b.Add(k, 1)))
		b.For(0, k, func(i kbuild.Var) {
			idx := b.Sub(k, i)
			b.AddTo(acc, b.Mul(b.Load(R, bR, idx), b.Load(Y, bY, i)))
		})
		// alpha = -acc / (1 + |r1|) — integer shrinkage keeps values tame
		den := b.Add(b.Load(R, bR, 0), 1)
		alpha := b.Div(b.Sub(0, acc), den)
		al := b.Local(0)
		b.Set(al, alpha)
		// z[i] = y[i] + alpha * y[k-1-i]
		b.For(0, k, func(i kbuild.Var) {
			rev := b.Sub(b.Sub(k, 1), i)
			t := b.Add(b.Load(Y, bY, i), b.Mul(al, b.Load(Y, bY, rev)))
			b.Store(Z, bZ, t, i)
		})
		b.For(0, k, func(i kbuild.Var) {
			b.Store(Y, bY, b.Load(Z, bZ, i), i)
		})
		b.Store(Y, bY, al, k)
		b.Free(al)
	})
	rv := fill("durbinR", n+1)
	for i := range rv {
		if rv[i] < 0 {
			rv[i] = -rv[i]
		}
		rv[i]++ // positive, nonzero
	}
	in := map[string][]int64{"R": rv, "Y": make([]int64, n), "Z": make([]int64, n)}
	return finish("durbin", n, b, in, []string{"Y"}, func(m map[string][]int64) {
		r, y, z := m["R"], m["Y"], m["Z"]
		y[0] = -r[1]
		for k := 1; k < n; k++ {
			acc := r[k+1]
			for i := 0; i < k; i++ {
				acc += r[k-i] * y[i]
			}
			alpha := -acc / (r[0] + 1)
			for i := 0; i < k; i++ {
				z[i] = y[i] + alpha*y[k-1-i]
			}
			copy(y[:k], z[:k])
			y[k] = alpha
		}
	})
}

// MakeNussinov builds the Nussinov-style dynamic-programming recurrence
// over the upper triangle with a branchless max — table cells depend on
// cells computed earlier in the same sweep (store-to-load within the
// kernel's own output array).
func MakeNussinov(n int) (*Spec, error) {
	b := kbuild.New("nussinov")
	S := b.Array2D("S", n, n)
	W := b.Array("W", n)
	bS, bW := b.BasePtr(S), b.BasePtr(W)
	best := b.Local(0)
	b.For(1, n, func(d kbuild.Var) {
		lim := b.Local(0)
		b.Set(lim, b.Sub(n, d))
		b.For(0, lim, func(i kbuild.Var) {
			j := b.Local(0)
			b.Set(j, b.Add(i, d))
			// best = max(S[i+1][j-1] + pair(i, j), S[i+1][j], S[i][j-1])
			p := b.Add(b.Load(W, bW, i), b.Load(W, bW, j))
			diag := b.Add(b.Load(S, bS, b.Add(i, 1), b.Sub(j, 1)), b.Shr(p, 3))
			b.Set(best, b.Max(diag, b.Load(S, bS, b.Add(i, 1), j)))
			b.Set(best, b.Max(best, b.Load(S, bS, i, b.Sub(j, 1))))
			b.Store(S, bS, best, i, j)
			b.Free(j)
		})
		b.Free(lim)
	})
	wv := fill("nussinovW", n)
	for i := range wv {
		if wv[i] < 0 {
			wv[i] = -wv[i]
		}
	}
	in := map[string][]int64{"S": make([]int64, n*n), "W": wv}
	return finish("nussinov", n, b, in, []string{"S"}, func(m map[string][]int64) {
		s, w := m["S"], m["W"]
		for d := 1; d < n; d++ {
			for i := 0; i+d < n; i++ {
				j := i + d
				pair := (w[i] + w[j]) >> 3
				best := s[(i+1)*n+(j-1)] + pair
				if v := s[(i+1)*n+j]; v > best {
					best = v
				}
				if v := s[i*n+(j-1)]; v > best {
					best = v
				}
				s[i*n+j] = best
			}
		}
	})
}
