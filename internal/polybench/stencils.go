package polybench

import "ghostbusters/internal/kbuild"

// Stencil kernels. Jacobi variants compute into a second array and swap
// roles each step; Seidel updates in place, which creates store-to-load
// dependencies the memory speculation must handle (and sometimes roll
// back on).

const stencilSteps = 8

// MakeJacobi1D builds T iterations of the 3-point Jacobi smoother.
func MakeJacobi1D(n int) (*Spec, error) {
	b := kbuild.New("jacobi1d")
	A := b.Array("A", n)
	B2 := b.Array("B", n)
	bA, bB := b.BasePtr(A), b.BasePtr(B2)
	step := func(src *kbuild.Array, bs kbuild.Var, dst *kbuild.Array, bd kbuild.Var) {
		b.For(1, n-1, func(i kbuild.Var) {
			l := b.Load(src, bs, b.Add(i, -1))
			c := b.Load(src, bs, i)
			r := b.Load(src, bs, b.Add(i, 1))
			s := b.Add(b.Add(l, c), r)
			b.Store(dst, bd, b.Div(s, 3), i)
		})
	}
	b.For(0, stencilSteps, func(kbuild.Var) {
		step(A, bA, B2, bB)
		step(B2, bB, A, bA)
	})
	av := fill("jacobi1dA", n)
	bv := make([]int64, n)
	in := map[string][]int64{"A": av, "B": bv}
	return finish("jacobi-1d", n, b, in, []string{"A", "B"}, func(m map[string][]int64) {
		a, bb := m["A"], m["B"]
		for t := 0; t < stencilSteps; t++ {
			for i := 1; i < n-1; i++ {
				bb[i] = (a[i-1] + a[i] + a[i+1]) / 3
			}
			for i := 1; i < n-1; i++ {
				a[i] = (bb[i-1] + bb[i] + bb[i+1]) / 3
			}
		}
	})
}

// MakeJacobi2D builds T iterations of the 5-point Jacobi smoother.
func MakeJacobi2D(n int) (*Spec, error) {
	b := kbuild.New("jacobi2d")
	A := b.Array2D("A", n, n)
	B2 := b.Array2D("B", n, n)
	bA, bB := b.BasePtr(A), b.BasePtr(B2)
	step := func(src *kbuild.Array, bs kbuild.Var, dst *kbuild.Array, bd kbuild.Var) {
		b.For(1, n-1, func(i kbuild.Var) {
			b.For(1, n-1, func(j kbuild.Var) {
				c := b.Load(src, bs, i, j)
				l := b.Load(src, bs, i, b.Add(j, -1))
				r := b.Load(src, bs, i, b.Add(j, 1))
				u := b.Load(src, bs, b.Add(i, -1), j)
				d := b.Load(src, bs, b.Add(i, 1), j)
				s := b.Add(b.Add(b.Add(b.Add(c, l), r), u), d)
				b.Store(dst, bd, b.Div(s, 5), i, j)
			})
		})
	}
	b.For(0, stencilSteps, func(kbuild.Var) {
		step(A, bA, B2, bB)
		step(B2, bB, A, bA)
	})
	in := map[string][]int64{"A": fill("jacobi2dA", n*n), "B": make([]int64, n*n)}
	return finish("jacobi-2d", n, b, in, []string{"A", "B"}, func(m map[string][]int64) {
		a, bb := m["A"], m["B"]
		ref := func(src, dst []int64) {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					dst[i*n+j] = (src[i*n+j] + src[i*n+j-1] + src[i*n+j+1] + src[(i-1)*n+j] + src[(i+1)*n+j]) / 5
				}
			}
		}
		for t := 0; t < stencilSteps; t++ {
			ref(a, bb)
			ref(bb, a)
		}
	})
}

// MakeSeidel2D builds T iterations of the in-place 9-point Gauss-Seidel
// sweep: every load of the west/north neighbours reads values stored
// earlier in the same sweep.
func MakeSeidel2D(n int) (*Spec, error) {
	b := kbuild.New("seidel2d")
	A := b.Array2D("A", n, n)
	bA := b.BasePtr(A)
	b.For(0, stencilSteps, func(kbuild.Var) {
		b.For(1, n-1, func(i kbuild.Var) {
			b.For(1, n-1, func(j kbuild.Var) {
				im, ip := b.Add(i, -1), b.Add(i, 1)
				imv, ipv := b.Local(0), b.Local(0)
				b.Set(imv, im)
				b.Set(ipv, ip)
				jm, jp := b.Add(j, -1), b.Add(j, 1)
				jmv, jpv := b.Local(0), b.Local(0)
				b.Set(jmv, jm)
				b.Set(jpv, jp)
				s := b.Load(A, bA, imv, jmv)
				s = b.Add(s, b.Load(A, bA, imv, j))
				s = b.Add(s, b.Load(A, bA, imv, jpv))
				s = b.Add(s, b.Load(A, bA, i, jmv))
				s = b.Add(s, b.Load(A, bA, i, j))
				s = b.Add(s, b.Load(A, bA, i, jpv))
				s = b.Add(s, b.Load(A, bA, ipv, jmv))
				s = b.Add(s, b.Load(A, bA, ipv, j))
				s = b.Add(s, b.Load(A, bA, ipv, jpv))
				b.Store(A, bA, b.Div(s, 9), i, j)
				b.Free(imv)
				b.Free(ipv)
				b.Free(jmv)
				b.Free(jpv)
			})
		})
	})
	in := map[string][]int64{"A": fill("seidel2dA", n*n)}
	return finish("seidel-2d", n, b, in, []string{"A"}, func(m map[string][]int64) {
		a := m["A"]
		for t := 0; t < stencilSteps; t++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					a[i*n+j] = (a[(i-1)*n+j-1] + a[(i-1)*n+j] + a[(i-1)*n+j+1] +
						a[i*n+j-1] + a[i*n+j] + a[i*n+j+1] +
						a[(i+1)*n+j-1] + a[(i+1)*n+j] + a[(i+1)*n+j+1]) / 9
				}
			}
		}
	})
}
