package detect

import (
	"encoding/json"
	"fmt"
	"strings"

	"ghostbusters/internal/obs"
)

// ReportSchema identifies the verdict document format. Consumers pin
// it; the schema only ever grows fields (same contract as the audit
// and bench docs).
const ReportSchema = "ghostbusters/detect/v1"

// Report is the detector's typed verdict for one run: the alarm, the
// evidence behind it, and the inferred phase timeline on the
// simulated-cycle axis. It marshals deterministically — two runs over
// the same event stream produce byte-identical JSON.
type Report struct {
	Schema string `json:"schema"`
	Config Config `json:"config"`

	// Alarm is the verdict; AlarmCycle is the simulated cycle of the
	// transient refill that crossed both thresholds (0 if no alarm).
	Alarm      bool   `json:"alarm"`
	AlarmCycle uint64 `json:"alarm_cycle,omitempty"`

	// Confidence in [0, 1]: 0.5 at exactly the alarm thresholds,
	// saturating at twice them. See confidence().
	Confidence float64 `json:"confidence"`

	// Rounds counts prime→trigger alternations; Slots counts distinct
	// cache lines transiently refilled after a flush.
	Rounds uint64 `json:"rounds"`
	Slots  uint64 `json:"slots"`

	// Per-phase window census over the whole run.
	BenignWindows  uint64 `json:"benign_windows"`
	PrimeWindows   uint64 `json:"prime_windows"`
	TriggerWindows uint64 `json:"trigger_windows"`
	ProbeWindows   uint64 `json:"probe_windows"`

	Counters Counters `json:"counters"`

	// Intervals is the phase timeline (maximal same-phase window
	// runs, benign elided). Truncated is set when the timeline hit
	// Config.MaxIntervals; the census and counters above still cover
	// the whole run.
	Intervals []Interval `json:"intervals"`
	Truncated bool       `json:"truncated,omitempty"`

	// LastCycle is the final observed event cycle (the timeline's
	// right edge).
	LastCycle uint64 `json:"last_cycle"`
}

// JSON renders the report as stable, indented JSON with a trailing
// newline (the same framing the audit documents use).
func (r *Report) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// phaseValue maps an interval's phase name back to its track value.
var phaseValue = map[string]uint64{
	phaseNames[PhaseBenign]:  uint64(PhaseBenign),
	phaseNames[PhasePrime]:   uint64(PhasePrime),
	phaseNames[PhaseTrigger]: uint64(PhaseTrigger),
	phaseNames[PhaseProbe]:   uint64(PhaseProbe),
}

// TrackEvents renders the verdict as obs counter events so the
// inferred attack timeline overlays the raw counter tracks in a
// Perfetto trace: a step track of the window phase, the cumulative
// rounds staircase, and a latched alarm pulse. Emit them through the
// run's tracer after the run (the detector only knows the timeline
// once the stream ends).
func (r *Report) TrackEvents() []obs.Event {
	var evs []obs.Event
	step := func(cycle, v uint64) {
		evs = append(evs, obs.Event{Kind: obs.EvCounter, Cycle: cycle, Arg1: v, Str: obs.CtrDetectPhase})
	}
	for i, iv := range r.Intervals {
		step(iv.FromCycle, phaseValue[iv.Phase])
		// Step back to benign unless the next interval starts flush
		// against this one.
		if i+1 >= len(r.Intervals) || r.Intervals[i+1].FromCycle != iv.ToCycle {
			step(iv.ToCycle, uint64(PhaseBenign))
		}
		evs = append(evs, obs.Event{Kind: obs.EvCounter, Cycle: iv.ToCycle,
			Arg1: iv.Rounds, Str: obs.CtrDetectRounds})
	}
	if r.Alarm {
		evs = append(evs, obs.Event{Kind: obs.EvCounter, Cycle: r.AlarmCycle,
			Arg1: 1, Str: obs.CtrDetectAlarm})
	}
	return evs
}

// EmitTracks appends the report's detection tracks to a tracer (a
// no-op for a nil or disabled tracer).
func (r *Report) EmitTracks(tr *obs.Tracer) {
	if !tr.BlockOn() {
		return
	}
	for _, e := range r.TrackEvents() {
		tr.Emit(e)
	}
}

// AddMetrics merges the verdict into a unified metrics snapshot under
// stable detect.* names (same contract as dbt.Stats.Snapshot and
// attack.Leakage.AddMetrics: never rename, only add).
func (r *Report) AddMetrics(s obs.Snapshot) {
	alarm := uint64(0)
	if r.Alarm {
		alarm = 1
	}
	s["detect.alarm"] = alarm
	s["detect.alarm_cycle"] = r.AlarmCycle
	s["detect.rounds"] = r.Rounds
	s["detect.slots"] = r.Slots
	s["detect.windows"] = r.Counters.Windows
	s["detect.prime_windows"] = r.PrimeWindows
	s["detect.trigger_windows"] = r.TriggerWindows
	s["detect.probe_windows"] = r.ProbeWindows
	s["detect.transient_refills"] = r.Counters.TransientRefills
	s["detect.flushes"] = r.Counters.Flushes
}

// Format renders the verdict for humans.
func (r *Report) Format() string {
	var sb strings.Builder
	if r.Alarm {
		fmt.Fprintf(&sb, "detect: ALARM — prime→trigger rounds %d, transient slots %d, confidence %.2f\n",
			r.Rounds, r.Slots, r.Confidence)
		fmt.Fprintf(&sb, "  first alarm @cycle %d\n", r.AlarmCycle)
	} else if r.Rounds > 0 || r.Slots > 0 {
		fmt.Fprintf(&sb, "detect: below threshold — rounds %d, slots %d, confidence %.2f\n",
			r.Rounds, r.Slots, r.Confidence)
	} else {
		fmt.Fprintf(&sb, "detect: no attack phases observed\n")
	}
	fmt.Fprintf(&sb, "  windows: %d × %d cycles — %s\n",
		r.Counters.Windows, r.Config.WindowCycles, joinPhases(r))
	fmt.Fprintf(&sb, "  evidence: flushes %d (%d full, %d lines), spec loads %d, transient refills %d, squashes %d, recoveries %d, side exits %d\n",
		r.Counters.Flushes, r.Counters.FullFlushes, r.Counters.FlushedLines,
		r.Counters.SpecLoads, r.Counters.TransientRefills,
		r.Counters.Squashes, r.Counters.Recoveries, r.Counters.SideExits)
	if n := len(r.Intervals); n > 0 {
		trunc := ""
		if r.Truncated {
			trunc = " (truncated)"
		}
		fmt.Fprintf(&sb, "  timeline%s:\n", trunc)
		for _, iv := range r.Intervals {
			fmt.Fprintf(&sb, "    [%12d, %12d) %s\n", iv.FromCycle, iv.ToCycle, iv.Phase)
		}
	}
	return sb.String()
}
