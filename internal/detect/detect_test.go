package detect

import (
	"bytes"
	"testing"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/obs"
)

// runAttack executes one attack variant with a fresh detector riding
// the tracer and returns the verdict plus the ground truth.
func runAttack(t *testing.T, v attack.Variant, mode core.Mode, dcfg Config) (*Report, *attack.Leakage) {
	t.Helper()
	det := New(dcfg)
	cfg := dbt.DefaultConfig()
	cfg.Mitigation = mode
	cfg.Tracer = obs.New(obs.LevelSpec, det)
	res, err := attack.Run(v, cfg, attack.Params{Secret: evalSecret})
	if cerr := cfg.Tracer.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return det.Report(), res.Leakage
}

// An unsafe run of either variant leaks — and must alarm, with the
// alarm at or after the first secret-dependent fill minus the benefit
// of earlier probe-array refills (the latency is reported, not
// asserted: the detector keys on behaviour, not the secret).
func TestUnsafeAttacksAlarm(t *testing.T) {
	for _, v := range []attack.Variant{attack.V1, attack.V4} {
		rep, leak := runAttack(t, v, core.ModeUnsafe, Config{})
		if leak.BitsLeaked == 0 {
			t.Fatalf("%s: unsafe run leaked nothing; corpus broken", v)
		}
		if !rep.Alarm {
			t.Errorf("%s: unsafe leaking run did not alarm:\n%s", v, rep.Format())
		}
		if rep.Confidence < 0.5 {
			t.Errorf("%s: alarmed with confidence %v < 0.5", v, rep.Confidence)
		}
		if len(rep.Intervals) == 0 {
			t.Errorf("%s: alarmed but timeline is empty", v)
		}
		t.Logf("%s: rounds=%d slots=%d alarm@%d truth@%d",
			v, rep.Rounds, rep.Slots, rep.AlarmCycle, leak.FirstSecretFillCycle)
	}
}

// Modes that forbid speculative loads leave the detector nothing to
// key on: no transient refills, no rounds, no alarm.
func TestNoSpeculationModesStaySilent(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNoSpeculation, core.ModeFence} {
		rep, leak := runAttack(t, attack.V1, mode, Config{})
		if leak.BitsLeaked != 0 {
			t.Fatalf("%s leaked %d bits; mitigation broken", mode, leak.BitsLeaked)
		}
		if rep.Alarm {
			t.Errorf("%s: no-speculation run alarmed:\n%s", mode, rep.Format())
		}
	}
}

// Same stream → byte-identical report, including across independent
// executions of the full simulation.
func TestReportDeterminism(t *testing.T) {
	rep1, _ := runAttack(t, attack.V1, core.ModeUnsafe, Config{})
	rep2, _ := runAttack(t, attack.V1, core.ModeUnsafe, Config{})
	j1, err := rep1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := rep2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("two identical runs produced different reports:\n%s\n---\n%s", j1, j2)
	}
}

// recordSink captures the raw event stream for replay.
type recordSink struct{ evs []obs.Event }

func (r *recordSink) WriteEvents(evs []obs.Event) error {
	r.evs = append(r.evs, evs...)
	return nil
}
func (r *recordSink) Close() error { return nil }

// The classification must not depend on how the tracer batches the
// stream: replaying the same events one at a time, in odd-sized
// chunks, or in one giant batch must produce byte-identical reports.
func TestBatchSizeIndependence(t *testing.T) {
	rec := &recordSink{}
	cfg := dbt.DefaultConfig()
	cfg.Tracer = obs.New(obs.LevelSpec, rec)
	if _, err := attack.Run(attack.V1, cfg, attack.Params{Secret: evalSecret}); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rec.evs) == 0 {
		t.Fatal("no events recorded")
	}

	replay := func(chunk int) []byte {
		det := New(Config{})
		for i := 0; i < len(rec.evs); i += chunk {
			end := i + chunk
			if end > len(rec.evs) {
				end = len(rec.evs)
			}
			if err := det.WriteEvents(rec.evs[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		j, err := det.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	want := replay(len(rec.evs))
	for _, chunk := range []int{1, 7, 1024} {
		if got := replay(chunk); !bytes.Equal(got, want) {
			t.Errorf("chunk size %d changed the report:\n%s\n---\n%s", chunk, got, want)
		}
	}
}

// Chaining is a host-side accelerator with identical guest-visible
// behaviour; the detector must reach the same verdict either way.
func TestDetectionParityChainedVsUnchained(t *testing.T) {
	run := func(disable bool) []byte {
		det := New(Config{})
		cfg := dbt.DefaultConfig()
		cfg.DisableChaining = disable
		cfg.Tracer = obs.New(obs.LevelSpec, det)
		if _, err := attack.Run(attack.V1, cfg, attack.Params{Secret: evalSecret}); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.Close(); err != nil {
			t.Fatal(err)
		}
		j, err := det.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	chained, unchained := run(false), run(true)
	if !bytes.Equal(chained, unchained) {
		t.Errorf("chained and unchained backends disagree:\n%s\n---\n%s", chained, unchained)
	}
}

// The detector's phase tracks must decorate the timeline it reports.
func TestTrackEventsMatchIntervals(t *testing.T) {
	rep, _ := runAttack(t, attack.V1, core.ModeUnsafe, Config{})
	evs := rep.TrackEvents()
	if len(evs) == 0 {
		t.Fatal("alarmed report produced no track events")
	}
	var sawPhase, sawAlarm bool
	for _, e := range evs {
		if e.Kind != obs.EvCounter {
			t.Fatalf("track event with kind %d, want EvCounter", e.Kind)
		}
		switch e.Str {
		case obs.CtrDetectPhase:
			sawPhase = true
		case obs.CtrDetectAlarm:
			sawAlarm = true
			if e.Cycle != rep.AlarmCycle {
				t.Errorf("alarm track at cycle %d, report says %d", e.Cycle, rep.AlarmCycle)
			}
		}
	}
	if !sawPhase || !sawAlarm {
		t.Errorf("tracks missing phase (%v) or alarm (%v)", sawPhase, sawAlarm)
	}
}

// A flush-free stream (every polybench kernel) must classify every
// window benign and never arm the latch, whatever the load pattern.
func TestFlushFreeStreamIsBenign(t *testing.T) {
	det := New(Config{})
	var evs []obs.Event
	for i := uint64(0); i < 10000; i++ {
		evs = append(evs, obs.Event{Kind: obs.EvSpecLoad, Cycle: i * 17, PC: 0x100, Arg1: (i % 512) * 64})
	}
	if err := det.WriteEvents(evs); err != nil {
		t.Fatal(err)
	}
	rep := det.Report()
	if rep.Alarm || rep.Rounds != 0 || rep.PrimeWindows != 0 || rep.TriggerWindows != 0 {
		t.Errorf("flush-free stream classified as attack:\n%s", rep.Format())
	}
	if rep.BenignWindows == 0 {
		t.Error("no benign windows recorded")
	}
}

// One benign flush plus a cold refill must stay far below threshold.
func TestSingleFlushDoesNotAlarm(t *testing.T) {
	det := New(Config{})
	evs := []obs.Event{
		{Kind: obs.EvCacheFlush, Cycle: 100, Arg1: 64, Arg2: 1},
		{Kind: obs.EvSpecLoad, Cycle: 200, Arg1: 0x4000},
	}
	if err := det.WriteEvents(evs); err != nil {
		t.Fatal(err)
	}
	rep := det.Report()
	if rep.Alarm {
		t.Errorf("single flush+refill alarmed:\n%s", rep.Format())
	}
	if rep.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", rep.Rounds)
	}
}
