package detect

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/polybench"
)

// The acceptance gate: across the full corpus — every polybench
// kernel (benign) and both Spectre variants under every mitigation
// mode — the detector must catch every truth-leaking run and never
// alarm on a benign kernel. Run under -race with 8 workers this also
// pins the per-cell detector isolation contract.
func TestEvalFullMatrix(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 4
	}
	var started, finished atomic.Int64
	ecfg := EvalConfig{
		Workers: 8,
		KernelN: n,
		OnCell: func(u harness.CellUpdate) {
			if u.Done {
				finished.Add(1)
			} else {
				started.Add(1)
			}
		},
	}
	doc, err := Eval(context.Background(), dbt.DefaultConfig(), ecfg)
	if err != nil {
		t.Fatal(err)
	}

	nModes := len(pipeline.Modes())
	wantCells := (len(polybench.All()) + 2) * nModes
	if doc.Schema != EvalSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, EvalSchema)
	}
	if len(doc.Cells) != wantCells {
		t.Errorf("cells = %d, want %d", len(doc.Cells), wantCells)
	}
	if got := started.Load(); got != int64(wantCells) {
		t.Errorf("OnCell starts = %d, want %d", got, wantCells)
	}
	if got := finished.Load(); got != int64(wantCells) {
		t.Errorf("OnCell finishes = %d, want %d", got, wantCells)
	}

	s := doc.Summary
	if s.TruthPositives < 2 {
		t.Fatalf("truth positives = %d, want >= 2 (unsafe v1+v4); corpus broken", s.TruthPositives)
	}
	if s.Recall != 1.0 {
		t.Errorf("recall = %v, want 1.0 — missed leaking runs:\n%s", s.Recall, doc.Table())
	}
	if s.BenignAlarms != 0 {
		t.Errorf("benign alarms = %d, want 0:\n%s", s.BenignAlarms, doc.Table())
	}
	for _, c := range doc.Cells {
		if c.Report == nil || c.Report.Schema != ReportSchema {
			t.Fatalf("cell %s/%s: missing or mis-schemed report", c.Bench, c.Mode)
		}
		if c.Class == "benign" && c.TruthLeak {
			t.Fatalf("cell %s/%s: benign cell labeled as leaking", c.Bench, c.Mode)
		}
	}
	t.Logf("recall %d/%d, benign %d cells %d alarms, blocked flagged %d/%d, mean latency %+.0f",
		s.TruePositives, s.TruthPositives, s.BenignCells, s.BenignAlarms,
		s.BlockedAttackAlarms, s.BlockedAttackCells, s.MeanAlarmLatencyCycles)
}

// The evaluation document must be byte-identical at any worker count:
// per-cell detectors see only their own machine's stream, and cell
// order is deterministic.
func TestEvalDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("two full matrix sweeps")
	}
	run := func(workers int) []byte {
		doc, err := Eval(context.Background(), dbt.DefaultConfig(),
			EvalConfig{Workers: workers, KernelN: 4})
		if err != nil {
			t.Fatal(err)
		}
		j, err := doc.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	if seq, par := run(1), run(8); !bytes.Equal(seq, par) {
		t.Error("eval doc differs between 1 and 8 workers")
	}
}
