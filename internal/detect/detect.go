// Package detect is an online attack-phase detector for the simulated
// DBT machine: a streaming classifier that consumes the live obs event
// stream (as an obs.Sink, typically behind an obs.Tee so a trace file
// and the detector observe the same stream) and partitions the run's
// simulated-cycle axis into benign / prime / trigger / probe windows.
//
// The heuristics are the cache-timing-attack shape Spectify-style
// detectors key on, restated in terms this simulator can observe
// exactly instead of sampling:
//
//   - prime:   flush bursts. A Flush+Reload attacker must evict the
//     probe array before every round — cflushall, or a line-by-line
//     cflush sweep. Benign polybench kernels never execute a flush.
//   - trigger: transient refills. A speculative load (EvSpecLoad)
//     that fills a cache line *after* that line was flushed is the
//     transient-execution half of the channel: data entered the cache
//     under speculation into a freshly-primed set. MCB recovery
//     spikes shortly after a prime count as corroborating trigger
//     evidence (the v4 attack round is recovery-heavy).
//   - probe:   the quiet measurement tail that follows — activity
//     with no flushes and no transient refills, within a bounded
//     horizon of the last prime/trigger window.
//
// The alarm itself is event-level, not window-level, so its latency is
// one cycle, not one window: every full (or sufficiently wide) flush
// arms a "primed" latch; the first transient refill while primed
// consumes the latch and counts one prime→trigger round. The detector
// raises the alarm once enough rounds have alternated over enough
// distinct cache lines — a single cold-miss after a benign flush never
// fires, a probe loop walking candidate values does.
//
// Everything is deterministic: same event stream (in any batch
// partitioning) → same Report, byte for byte. The detector allocates
// only on its own slow paths; when it is not attached, the obs layer's
// nil-tracer contract keeps the machine's hot path at 0 allocs/op.
package detect

import (
	"fmt"
	"strings"

	"ghostbusters/internal/obs"
)

// Phase classifies one window of simulated cycles.
type Phase uint8

const (
	// PhaseBenign: no attack-shaped activity.
	PhaseBenign Phase = iota
	// PhasePrime: flush-burst window (cache eviction before a round).
	PhasePrime
	// PhaseTrigger: transient refills landed in primed lines (or MCB
	// recovery spikes inside the attack horizon).
	PhaseTrigger
	// PhaseProbe: post-trigger activity with no priming or refills —
	// the attacker timing its reloads.
	PhaseProbe

	numPhases
)

var phaseNames = [numPhases]string{"benign", "prime", "trigger", "probe"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Config tunes the detector. The zero value selects the defaults
// below; all fields are plain data so a config embeds verbatim into
// the eval doc and the report.
type Config struct {
	// WindowCycles is the classification window on the simulated-cycle
	// axis. Default 1024.
	WindowCycles uint64 `json:"window_cycles"`
	// MinFlushLines arms the primed latch when a line-by-line flush
	// sweep has evicted at least this many lines since the last
	// trigger (a cflushall always arms it). Default 8.
	MinFlushLines uint64 `json:"min_flush_lines"`
	// MinRounds is how many prime→trigger alternations the alarm
	// needs. Default 4.
	MinRounds uint64 `json:"min_rounds"`
	// MinSlots is how many distinct cache lines must have been
	// transiently refilled before the alarm fires. Default 3: even a
	// single-byte leak refills the bounds line, the buffer line and
	// one secret-dependent probe line, while a benign periodic-flush
	// workload re-warming one or two hot lines stays below it.
	MinSlots uint64 `json:"min_slots"`
	// HorizonWindows bounds how far past the last prime/trigger window
	// activity still classifies as probe. Default 8.
	HorizonWindows int64 `json:"horizon_windows"`
	// MaxIntervals caps the report's interval list; further phase
	// changes only update the aggregate counters and set Truncated.
	// Default 256.
	MaxIntervals int `json:"max_intervals"`
}

func (c Config) withDefaults() Config {
	if c.WindowCycles == 0 {
		c.WindowCycles = 1024
	}
	if c.MinFlushLines == 0 {
		c.MinFlushLines = 8
	}
	if c.MinRounds == 0 {
		c.MinRounds = 4
	}
	if c.MinSlots == 0 {
		c.MinSlots = 3
	}
	if c.HorizonWindows == 0 {
		c.HorizonWindows = 8
	}
	if c.MaxIntervals == 0 {
		c.MaxIntervals = 256
	}
	return c
}

// maxTracked bounds every per-line map so an adversarial event stream
// (or the fuzzer) cannot grow detector state without limit. Lines
// beyond the cap still count in the aggregate counters; they just stop
// contributing new generation/slot entries.
const maxTracked = 1 << 15

// window accumulates the features of the current classification
// window; it is reset at every window boundary.
type window struct {
	events       uint64
	flushes      uint64
	fullFlushes  uint64
	flushedLines uint64
	specLoads    uint64
	refills      uint64
	recoveries   uint64
	squashes     uint64
	sideExits    uint64
}

// Detector is the streaming classifier. It implements obs.Sink, so it
// attaches anywhere a sink does — most usefully as an obs.Tee
// observer next to a trace file. Like every sink owned by a tracer it
// is single-goroutine state; under the parallel harness each matrix
// cell builds its own Detector.
type Detector struct {
	cfg Config

	// Window state. Windows are aligned to the absolute cycle grid
	// (window i covers [i*W, (i+1)*W)), so classification is
	// independent of how the tracer batches events.
	started  bool
	winIndex uint64
	w        window
	// lastCycle is the maximum cycle observed; events that arrive
	// out of order (adversarial streams) clamp into the current
	// window rather than rewinding it.
	lastCycle uint64

	// Flush-epoch tracking. gen is a monotone generation counter
	// bumped on every flush; a line's "covering generation" is the
	// newest flush that evicted it (full flush or its own line
	// flush). A speculative load is a transient refill when its
	// line's covering generation is newer than the line's last
	// refill — i.e. the line was flushed and speculation filled it
	// back in.
	gen          uint64
	fullFlushGen uint64
	lineGen      map[uint64]uint64
	refillGen    map[uint64]uint64
	slots        map[uint64]struct{}

	// Alarm state machine.
	primed     bool
	primeLines uint64
	rounds     uint64
	alarmed    bool
	alarmCycle uint64

	// Report accumulators.
	totals       Counters
	phaseWindows [numPhases]uint64
	intervals    []Interval
	truncated    bool
	lastAttack   int64 // window index of the last prime/trigger window, -1 before any
	haveAttack   bool
	finalized    bool
}

// New builds a detector with the given configuration (zero value =
// defaults).
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), lastAttack: -1}
}

// WriteEvents feeds a batch of trace events to the classifier. It
// never fails: a detector is a pure observer and must not be able to
// poison the primary trace stream it rides along with.
func (d *Detector) WriteEvents(evs []obs.Event) error {
	if d == nil || d.finalized {
		return nil
	}
	for i := range evs {
		d.event(&evs[i])
	}
	return nil
}

// Close finalizes the last open window. Further writes are ignored.
func (d *Detector) Close() error {
	if d == nil || d.finalized {
		return nil
	}
	if d.started {
		d.closeWindow()
	}
	d.finalized = true
	return nil
}

// event processes one trace event.
func (d *Detector) event(e *obs.Event) {
	w := d.cfg.WindowCycles
	cycle := e.Cycle
	if cycle < d.lastCycle {
		cycle = d.lastCycle // clamp out-of-order events forward
	}
	d.lastCycle = cycle
	idx := cycle / w
	if !d.started {
		d.started = true
		d.winIndex = idx
	} else if idx > d.winIndex {
		d.closeWindow()
		d.winIndex = idx
	} else {
		idx = d.winIndex // late event inside the current window
	}
	d.w.events++

	switch e.Kind {
	case obs.EvCacheFlush:
		d.w.flushes++
		d.w.flushedLines += e.Arg1
		d.totals.Flushes++
		d.totals.FlushedLines += e.Arg1
		d.gen++
		if e.Arg2 == 1 { // cflushall
			d.w.fullFlushes++
			d.totals.FullFlushes++
			d.fullFlushGen = d.gen
			d.primed = true
			d.primeLines = 0
		} else {
			line := e.Arg3 >> 6
			d.setGen(&d.lineGen, line, d.gen)
			d.primeLines += e.Arg1
			if d.primeLines >= d.cfg.MinFlushLines {
				d.primed = true
			}
		}

	case obs.EvSpecLoad:
		d.w.specLoads++
		d.totals.SpecLoads++
		line := e.Arg1 >> 6
		covering := d.fullFlushGen
		if g, ok := d.lineGen[line]; ok && g > covering {
			covering = g
		}
		if covering == 0 {
			return // line never flushed: an ordinary speculative load
		}
		if last, ok := d.refillGen[line]; ok && last >= covering {
			return // already refilled since that flush
		}
		d.setGen(&d.refillGen, line, covering)
		d.w.refills++
		d.totals.TransientRefills++
		if _, ok := d.slots[line]; !ok && len(d.slots) < maxTracked {
			if d.slots == nil {
				d.slots = make(map[uint64]struct{}, 64)
			}
			d.slots[line] = struct{}{}
		}
		if d.primed {
			d.primed = false
			d.primeLines = 0
			d.rounds++
		}
		if !d.alarmed && d.rounds >= d.cfg.MinRounds && uint64(len(d.slots)) >= d.cfg.MinSlots {
			d.alarmed = true
			d.alarmCycle = cycle
		}

	case obs.EvSpecSquash:
		d.w.squashes++
		d.totals.Squashes++
	case obs.EvRecovery:
		d.w.recoveries++
		d.totals.Recoveries++
	case obs.EvSideExit:
		d.w.sideExits++
		d.totals.SideExits++
	}
}

// setGen writes m[line] = g, respecting the tracking cap. Existing
// entries always update (no unbounded growth either way).
func (d *Detector) setGen(m *map[uint64]uint64, line, g uint64) {
	if *m == nil {
		*m = make(map[uint64]uint64, 64)
	}
	if _, ok := (*m)[line]; !ok && len(*m) >= maxTracked {
		return
	}
	(*m)[line] = g
}

// closeWindow classifies the finished window and folds it into the
// report accumulators.
func (d *Detector) closeWindow() {
	w := &d.w
	idx := d.winIndex
	phase := PhaseBenign
	inHorizon := d.haveAttack && int64(idx)-d.lastAttack <= d.cfg.HorizonWindows
	switch {
	case w.refills > 0:
		phase = PhaseTrigger
	case w.recoveries > 0 && inHorizon:
		// MCB recovery spikes right after priming corroborate a
		// trigger even when the refill heuristic missed (the v4 round
		// is recovery-heavy by construction).
		phase = PhaseTrigger
	case w.fullFlushes > 0 || w.flushedLines >= d.cfg.MinFlushLines:
		phase = PhasePrime
	case w.events > 0 && inHorizon:
		phase = PhaseProbe
	}
	if phase == PhasePrime || phase == PhaseTrigger {
		d.lastAttack = int64(idx)
		d.haveAttack = true
	}
	d.phaseWindows[phase]++
	d.totals.Windows++

	if phase != PhaseBenign {
		from := idx * d.cfg.WindowCycles
		to := from + d.cfg.WindowCycles
		if n := len(d.intervals); n > 0 &&
			d.intervals[n-1].Phase == phase.String() && d.intervals[n-1].ToCycle == from {
			d.intervals[n-1].ToCycle = to
			d.intervals[n-1].Rounds = d.rounds
		} else if n < d.cfg.MaxIntervals {
			d.intervals = append(d.intervals, Interval{
				Phase: phase.String(), FromCycle: from, ToCycle: to, Rounds: d.rounds,
			})
		} else {
			d.truncated = true
		}
	}
	d.w = window{}
}

// Alarmed reports whether the alarm has fired so far. Valid mid-stream
// (e.g. for live per-cell alarm counters) as well as after Close.
func (d *Detector) Alarmed() bool { return d != nil && d.alarmed }

// Report finalizes the stream (if Close has not run yet) and builds
// the typed verdict. Calling it repeatedly returns equal values.
//
// When the detector sits behind an obs.Tracer, flush the tracer first:
// the tracer buffers events (obs.DefaultBufferEvents at a time), so a
// Report taken without Tracer.Flush or Tracer.Close misses the
// buffered tail of the run — silently, since a truncated stream is
// indistinguishable from a short one.
func (d *Detector) Report() *Report {
	d.Close()
	cfg := d.cfg
	r := &Report{
		Schema:    ReportSchema,
		Config:    cfg,
		Alarm:     d.alarmed,
		Rounds:    d.rounds,
		Slots:     uint64(len(d.slots)),
		Counters:  d.totals,
		Intervals: append([]Interval(nil), d.intervals...),
		Truncated: d.truncated,
		LastCycle: d.lastCycle,
	}
	if d.alarmed {
		r.AlarmCycle = d.alarmCycle
	}
	r.BenignWindows = d.phaseWindows[PhaseBenign]
	r.PrimeWindows = d.phaseWindows[PhasePrime]
	r.TriggerWindows = d.phaseWindows[PhaseTrigger]
	r.ProbeWindows = d.phaseWindows[PhaseProbe]
	r.Confidence = confidence(cfg, d.rounds, uint64(len(d.slots)))
	return r
}

// confidence maps the two alarm drivers onto [0, 1]: each contributes
// up to 0.5, saturating at twice its alarm threshold. An alarmed run
// therefore always reports ≥ 0.5; a silent run with zero rounds and
// zero slots reports 0. Deterministic by construction (no float
// accumulation across the stream — computed once from two integers).
func confidence(cfg Config, rounds, slots uint64) float64 {
	half := func(v, threshold uint64) float64 {
		f := float64(v) / float64(2*threshold)
		if f > 0.5 {
			f = 0.5
		}
		return f
	}
	if rounds == 0 && slots == 0 {
		return 0
	}
	return half(rounds, cfg.MinRounds) + half(slots, cfg.MinSlots)
}

// Counters are the detector's aggregate evidence counts over the whole
// run — the "triggering counters" of the verdict schema.
type Counters struct {
	Windows          uint64 `json:"windows"`
	Flushes          uint64 `json:"flushes"`
	FullFlushes      uint64 `json:"full_flushes"`
	FlushedLines     uint64 `json:"flushed_lines"`
	SpecLoads        uint64 `json:"spec_loads"`
	TransientRefills uint64 `json:"transient_refills"`
	Squashes         uint64 `json:"squashes"`
	Recoveries       uint64 `json:"recoveries"`
	SideExits        uint64 `json:"side_exits"`
}

// Interval is one maximal run of same-phase windows on the simulated
// cycle axis; [FromCycle, ToCycle). Rounds is the cumulative
// prime→trigger round count when the interval closed, so the interval
// list doubles as the rounds staircase for the Perfetto track.
type Interval struct {
	Phase     string `json:"phase"`
	FromCycle uint64 `json:"from_cycle"`
	ToCycle   uint64 `json:"to_cycle"`
	Rounds    uint64 `json:"rounds,omitempty"`
}

func (d *Detector) String() string {
	if d == nil {
		return "detect: disabled"
	}
	return fmt.Sprintf("detect: rounds=%d slots=%d alarmed=%v", d.rounds, len(d.slots), d.alarmed)
}

// joinPhases renders the per-phase window census compactly.
func joinPhases(r *Report) string {
	parts := []string{
		fmt.Sprintf("%d benign", r.BenignWindows),
		fmt.Sprintf("%d prime", r.PrimeWindows),
		fmt.Sprintf("%d trigger", r.TriggerWindows),
		fmt.Sprintf("%d probe", r.ProbeWindows),
	}
	return strings.Join(parts, ", ")
}
