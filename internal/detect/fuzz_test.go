package detect

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ghostbusters/internal/obs"
)

// eventsFromFuzz decodes an arbitrary byte string into a trace-event
// stream: 11 bytes per event (kind, 4-byte cycle delta — sometimes
// negative via wrap to exercise the out-of-order clamp — 4-byte
// address, flush width, flags). The decoder is intentionally
// permissive: every input is a valid stream.
func eventsFromFuzz(data []byte) []obs.Event {
	var evs []obs.Event
	var cycle uint64
	counters := []string{obs.CtrCacheHitRate, obs.CtrMCBOccupancy, obs.CtrPinnedLoads}
	for len(data) >= 11 {
		kind := obs.EventKind(data[0] % 16)
		delta := binary.LittleEndian.Uint32(data[1:5])
		addr := uint64(binary.LittleEndian.Uint32(data[5:9]))
		width := uint64(data[9])
		flags := data[10]
		data = data[11:]

		if flags&1 != 0 && cycle > uint64(delta%4096) {
			cycle -= uint64(delta % 4096) // out-of-order event
		} else {
			cycle += uint64(delta % 100000)
		}
		e := obs.Event{Kind: kind, Cycle: cycle, PC: addr, Arg1: addr}
		switch kind {
		case obs.EvCacheFlush:
			e.Arg1 = width
			e.Arg2 = uint64(flags >> 1 & 1)
			e.Arg3 = addr
		case obs.EvCounter:
			e.Str = counters[int(flags)%len(counters)]
			e.Arg1 = width
		}
		evs = append(evs, e)
	}
	return evs
}

// FuzzWindowClassifier throws adversarial event streams at the
// detector: it must never panic, stay within its state caps, produce
// a well-formed report, and classify independently of how the stream
// is batched.
func FuzzWindowClassifier(f *testing.F) {
	// Seeds: a plausible attack round, an out-of-order burst, a
	// counter-heavy stream, and junk.
	attack := make([]byte, 0, 44)
	for _, row := range [][11]byte{
		{byte(obs.EvCacheFlush), 10, 0, 0, 0, 0, 0x40, 0, 0, 64, 2},
		{byte(obs.EvSpecLoad), 50, 0, 0, 0, 0, 0x40, 0, 0, 0, 0},
		{byte(obs.EvCacheFlush), 10, 0, 0, 0, 0, 0x40, 0, 0, 64, 2},
		{byte(obs.EvSpecLoad), 50, 0, 0, 0, 0, 0x80, 0, 0, 0, 0},
	} {
		attack = append(attack, row[:]...)
	}
	f.Add(attack)
	f.Add([]byte{byte(obs.EvSpecLoad), 0xFF, 0xFF, 0, 0, 1, 2, 3, 4, 9, 1})
	f.Add(bytes.Repeat([]byte{byte(obs.EvCounter), 1, 0, 0, 0, 5, 0, 0, 0, 42, 2}, 8))
	f.Add([]byte("arbitrary junk that is not event-shaped at all......"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		evs := eventsFromFuzz(data)

		det := New(Config{})
		if err := det.WriteEvents(evs); err != nil {
			t.Fatalf("detector sink failed: %v", err)
		}
		rep := det.Report()
		whole, err := rep.JSON()
		if err != nil {
			t.Fatalf("report does not marshal: %v", err)
		}

		// Well-formedness invariants.
		if rep.Counters.Windows != rep.BenignWindows+rep.PrimeWindows+rep.TriggerWindows+rep.ProbeWindows {
			t.Fatalf("window census does not add up: %+v", rep)
		}
		if len(rep.Intervals) > rep.Config.MaxIntervals {
			t.Fatalf("interval cap violated: %d > %d", len(rep.Intervals), rep.Config.MaxIntervals)
		}
		var prevTo uint64
		for _, iv := range rep.Intervals {
			if iv.FromCycle >= iv.ToCycle {
				t.Fatalf("empty or inverted interval %+v", iv)
			}
			if iv.FromCycle < prevTo {
				t.Fatalf("overlapping intervals at %+v", iv)
			}
			prevTo = iv.ToCycle
		}
		if rep.Alarm && (rep.Rounds < rep.Config.MinRounds || rep.Slots < rep.Config.MinSlots) {
			t.Fatalf("alarm below thresholds: %+v", rep)
		}
		if rep.Confidence < 0 || rep.Confidence > 1 {
			t.Fatalf("confidence %v outside [0,1]", rep.Confidence)
		}

		// Batch-partition independence: re-run in chunks of 3.
		det2 := New(Config{})
		for i := 0; i < len(evs); i += 3 {
			end := i + 3
			if end > len(evs) {
				end = len(evs)
			}
			_ = det2.WriteEvents(evs[i:end])
		}
		chunked, err := det2.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(whole, chunked) {
			t.Fatalf("batching changed the verdict:\n%s\n---\n%s", whole, chunked)
		}
	})
}
