package detect

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/core"
	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/polybench"
)

// EvalSchema identifies the evaluation document format.
const EvalSchema = "ghostbusters/detect-eval/v1"

// evalSecret is the evaluation corpus secret: 8 distinct byte values,
// so an unsafe run's ground truth is 8 distinct leaked probe lines and
// recall is measured against a non-degenerate positive.
var evalSecret = []byte{0x11, 0x23, 0x35, 0x47, 0x59, 0x6B, 0x7D, 0x8F}

// EvalConfig parameterizes one evaluation sweep.
type EvalConfig struct {
	// Detector is the configuration under evaluation (zero value =
	// defaults).
	Detector Config
	// Workers/Timeout/Retries/Backoff go straight to the harness
	// Runner fanning the matrix out.
	Workers int
	Timeout time.Duration
	Retries int
	Backoff time.Duration
	// KernelN overrides every kernel's problem size (0 = per-kernel
	// default). The benign corpus only needs enough cycles to span
	// many detector windows, so eval callers typically shrink it.
	KernelN int
	// Kernels is the benign corpus (nil = polybench.All()).
	Kernels []polybench.Kernel
	// Modes is the mitigation-mode axis (nil = pipeline.Modes()).
	Modes []core.Mode
	// Secret overrides the attack corpus secret (nil = evalSecret).
	Secret []byte
	// OnCell, when non-nil, receives the harness's per-cell progress
	// stream (started/finished); must be safe for concurrent use.
	OnCell func(harness.CellUpdate)
}

// EvalCell is one scored matrix cell: a (benchmark, mode) run, its
// ground-truth label, and the detector's verdict on it.
type EvalCell struct {
	Bench string `json:"bench"`
	Mode  string `json:"mode"`
	// Class is "benign" (polybench kernel: structurally no attack)
	// or "attack" (a Spectre PoC ran, whether or not it leaked).
	Class string `json:"class"`
	// TruthLeak is the scoreboard's ground truth: the run actually
	// leaked secret bits into the cache. Always false for benign.
	TruthLeak  bool `json:"truth_leak"`
	BitsLeaked int  `json:"bits_leaked,omitempty"`

	Alarm      bool    `json:"alarm"`
	Confidence float64 `json:"confidence"`
	Rounds     uint64  `json:"rounds"`
	Slots      uint64  `json:"slots"`

	// TruthTriggerCycle is the scoreboard's first secret-dependent
	// speculative fill; LatencyCycles = AlarmCycle − TruthTriggerCycle
	// (negative when the detector fired on attack behaviour before
	// the first secret bit actually moved). Only meaningful when both
	// an alarm and a truth trigger exist (LatencyValid).
	TruthTriggerCycle  uint64 `json:"truth_trigger_cycle,omitempty"`
	TruthProbeHitCycle uint64 `json:"truth_probe_hit_cycle,omitempty"`
	AlarmCycle         uint64 `json:"alarm_cycle,omitempty"`
	LatencyValid       bool   `json:"latency_valid,omitempty"`
	LatencyCycles      int64  `json:"latency_cycles,omitempty"`

	Cycles uint64  `json:"cycles"`
	Report *Report `json:"report"`
}

// EvalSummary aggregates the corpus into the headline numbers. The
// detector is judged on two gated figures — recall over truth-leaking
// cells and the false-positive rate over benign cells — plus an
// ungated, honestly-reported third: mitigated attack runs the detector
// still flags. Those runs execute the full attack choreography (flush
// bursts, speculative probe loads); flagging them is behaviourally
// correct detection of an attack *attempt*, so they are reported as
// their own class instead of being laundered into either gated rate.
type EvalSummary struct {
	Cells       int `json:"cells"`
	AttackCells int `json:"attack_cells"`
	BenignCells int `json:"benign_cells"`

	// TruthPositives = attack cells that actually leaked (scoreboard
	// ground truth); TruePositives of them alarmed.
	TruthPositives int `json:"truth_positives"`
	TruePositives  int `json:"true_positives"`
	FalseNegatives int `json:"false_negatives"`

	// BenignAlarms counts alarms on benign kernels — the gated FPR.
	BenignAlarms int     `json:"benign_alarms"`
	BenignFPR    float64 `json:"benign_fpr"`

	// BlockedAttackCells = attack cells whose mitigation prevented the
	// leak; BlockedAttackAlarms of them still alarmed (attack attempt
	// flagged).
	BlockedAttackCells  int     `json:"blocked_attack_cells"`
	BlockedAttackAlarms int     `json:"blocked_attack_alarms"`
	BlockedAttackRate   float64 `json:"blocked_attack_flag_rate"`

	// Precision counts every alarm on a non-leaking cell (benign or
	// blocked) as a false positive — the strictest reading.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`

	// MeanAlarmLatencyCycles averages AlarmCycle − TruthTriggerCycle
	// over cells where both exist.
	LatencyCells           int     `json:"latency_cells,omitempty"`
	MeanAlarmLatencyCycles float64 `json:"mean_alarm_latency_cycles,omitempty"`
}

// EvalDoc is the full evaluation document: schema, the detector
// config under test, the summary, and every scored cell in
// deterministic (bench-major, mode-minor) order.
type EvalDoc struct {
	Schema      string      `json:"schema"`
	Detector    Config      `json:"detector"`
	Modes       []string    `json:"modes"`
	SecretBytes int         `json:"secret_bytes"`
	Summary     EvalSummary `json:"summary"`
	Cells       []EvalCell  `json:"cells"`
}

// JSON renders the document as stable, indented JSON with a trailing
// newline.
func (d *EvalDoc) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// cellData is what an eval bench deposits for its cell: the verdict
// and (for attacks) the ground-truth scoreboard.
type cellData struct {
	rep  *Report
	leak *attack.Leakage
}

type evalState struct {
	dcfg Config
	mu   sync.Mutex
	m    map[string]*cellData
}

func (s *evalState) put(bench string, mode core.Mode, d *cellData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[bench+"|"+mode.String()] = d
}

func (s *evalState) get(bench string, mode core.Mode) *cellData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[bench+"|"+mode.String()]
}

// observe wraps a bench so each cell runs with its own detector
// attached as the tracer sink. The machine never flushes cfg.Tracer
// itself, so the wrapper closes the tracer to push the stream's tail
// into the detector before reading the verdict.
func (s *evalState) observe(b harness.Bench, after func(run *harness.KernelRun, cfg dbt.Config) *cellData) harness.Bench {
	inner := b.Run
	return harness.Bench{
		Name: b.Name,
		Run: func(ctx context.Context, cfg dbt.Config, arts *harness.Artifacts) (*harness.KernelRun, error) {
			det := New(s.dcfg)
			tr := obs.New(obs.LevelSpec, det)
			cfg.Tracer = tr
			run, err := inner(ctx, cfg, arts)
			_ = tr.Close() // detector sinks never fail
			if err != nil {
				return nil, err
			}
			d := after(run, cfg)
			d.rep = det.Report()
			s.put(b.Name, cfg.Mitigation, d)
			return run, nil
		},
	}
}

func (s *evalState) kernelBench(k polybench.Kernel, n int) harness.Bench {
	return s.observe(harness.KernelBench(k, n),
		func(*harness.KernelRun, dbt.Config) *cellData { return &cellData{} })
}

func (s *evalState) attackBench(v attack.Variant, secret []byte) harness.Bench {
	name := v.String()
	return s.observe(harness.Bench{
		Name: name,
		Run: func(_ context.Context, cfg dbt.Config, _ *harness.Artifacts) (*harness.KernelRun, error) {
			res, err := attack.Run(v, cfg, attack.Params{Secret: secret})
			if err != nil {
				return nil, err
			}
			run := &harness.KernelRun{Name: name, Mode: cfg.Mitigation, Cycles: res.Cycles, Stats: res.Stats}
			s.put(name+"|leak", cfg.Mitigation, &cellData{leak: res.Leakage})
			return run, nil
		},
	}, func(run *harness.KernelRun, cfg dbt.Config) *cellData {
		d := s.get(name+"|leak", cfg.Mitigation)
		if d == nil {
			d = &cellData{}
		}
		return d
	})
}

// Eval runs the full labeled corpus — every benign kernel and both
// Spectre variants, across the mitigation-mode axis — with a private
// detector per cell, and scores the verdicts against ground truth.
// Deterministic at any worker count: cell order is bench-major, and
// each cell's detector sees exactly its own machine's event stream.
func Eval(ctx context.Context, base dbt.Config, ecfg EvalConfig) (*EvalDoc, error) {
	modes := ecfg.Modes
	if modes == nil {
		modes = pipeline.Modes()
	}
	kernels := ecfg.Kernels
	if kernels == nil {
		kernels = polybench.All()
	}
	secret := ecfg.Secret
	if secret == nil {
		secret = evalSecret
	}

	st := &evalState{dcfg: ecfg.Detector.withDefaults(), m: make(map[string]*cellData)}
	var benches []harness.Bench
	benign := make(map[string]bool)
	for _, k := range kernels {
		b := st.kernelBench(k, ecfg.KernelN)
		benign[b.Name] = true
		benches = append(benches, b)
	}
	for _, v := range []attack.Variant{attack.V1, attack.V4} {
		benches = append(benches, st.attackBench(v, secret))
	}

	r := &harness.Runner{
		Workers:   ecfg.Workers,
		Timeout:   ecfg.Timeout,
		Retries:   ecfg.Retries,
		Backoff:   ecfg.Backoff,
		Artifacts: harness.NewArtifacts(),
		OnCell:    ecfg.OnCell,
	}
	rows, err := r.RunMatrix(ctx, base, benches, modes)
	if err != nil {
		return nil, err
	}

	doc := &EvalDoc{
		Schema:      EvalSchema,
		Detector:    st.dcfg,
		SecretBytes: len(secret),
	}
	for _, m := range modes {
		doc.Modes = append(doc.Modes, m.String())
	}
	for bi, b := range benches {
		for _, mode := range modes {
			d := st.get(b.Name, mode)
			if d == nil || d.rep == nil {
				return nil, fmt.Errorf("detect: eval cell %s (%s) produced no report", b.Name, mode)
			}
			cell := EvalCell{
				Bench:      b.Name,
				Mode:       mode.String(),
				Class:      "attack",
				Alarm:      d.rep.Alarm,
				Confidence: d.rep.Confidence,
				Rounds:     d.rep.Rounds,
				Slots:      d.rep.Slots,
				AlarmCycle: d.rep.AlarmCycle,
				Cycles:     rows[bi].Cycles[mode],
				Report:     d.rep,
			}
			if benign[b.Name] {
				cell.Class = "benign"
			}
			if d.leak != nil {
				cell.TruthLeak = d.leak.BitsLeaked > 0
				cell.BitsLeaked = d.leak.BitsLeaked
				cell.TruthTriggerCycle = d.leak.FirstSecretFillCycle
				cell.TruthProbeHitCycle = d.leak.FirstProbeHitCycle
				if cell.Alarm && cell.TruthTriggerCycle != 0 {
					cell.LatencyValid = true
					cell.LatencyCycles = int64(cell.AlarmCycle) - int64(cell.TruthTriggerCycle)
				}
			}
			doc.Cells = append(doc.Cells, cell)
		}
	}
	doc.Summary = summarize(doc.Cells)
	return doc, nil
}

func summarize(cells []EvalCell) EvalSummary {
	var s EvalSummary
	s.Cells = len(cells)
	alarms := 0
	var latencySum int64
	for _, c := range cells {
		if c.Alarm {
			alarms++
		}
		if c.Class == "benign" {
			s.BenignCells++
			if c.Alarm {
				s.BenignAlarms++
			}
			continue
		}
		s.AttackCells++
		if c.TruthLeak {
			s.TruthPositives++
			if c.Alarm {
				s.TruePositives++
			} else {
				s.FalseNegatives++
			}
		} else {
			s.BlockedAttackCells++
			if c.Alarm {
				s.BlockedAttackAlarms++
			}
		}
		if c.LatencyValid {
			s.LatencyCells++
			latencySum += c.LatencyCycles
		}
	}
	if s.TruthPositives > 0 {
		s.Recall = float64(s.TruePositives) / float64(s.TruthPositives)
	}
	if s.BenignCells > 0 {
		s.BenignFPR = float64(s.BenignAlarms) / float64(s.BenignCells)
	}
	if s.BlockedAttackCells > 0 {
		s.BlockedAttackRate = float64(s.BlockedAttackAlarms) / float64(s.BlockedAttackCells)
	}
	if alarms > 0 {
		s.Precision = float64(s.TruePositives) / float64(alarms)
	}
	if s.LatencyCells > 0 {
		s.MeanAlarmLatencyCycles = float64(latencySum) / float64(s.LatencyCells)
	}
	return s
}

// Table renders the evaluation for humans: headline rates, one row
// per attack cell, and the benign corpus aggregated (individual rows
// only for the cells that — wrongly — alarmed).
func (d *EvalDoc) Table() string {
	var sb strings.Builder
	s := d.Summary
	fmt.Fprintf(&sb, "detect eval: recall %.0f%% (%d/%d leaking cells), benign FPR %.0f%% (%d/%d), precision %.2f\n",
		100*s.Recall, s.TruePositives, s.TruthPositives,
		100*s.BenignFPR, s.BenignAlarms, s.BenignCells, s.Precision)
	fmt.Fprintf(&sb, "blocked attacks flagged: %d/%d (attack attempt visible despite mitigation)\n",
		s.BlockedAttackAlarms, s.BlockedAttackCells)
	if s.LatencyCells > 0 {
		fmt.Fprintf(&sb, "mean alarm latency: %+.0f cycles from first secret-dependent fill (%d cells)\n",
			s.MeanAlarmLatencyCycles, s.LatencyCells)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-12s %-14s %-8s %-6s %-6s %10s %7s %7s %12s\n",
		"bench", "mode", "truth", "alarm", "conf", "rounds", "slots", "refills", "latency")
	for _, c := range d.Cells {
		if c.Class != "attack" && !c.Alarm {
			continue
		}
		truth := "clean"
		if c.TruthLeak {
			truth = "LEAK"
		}
		alarm := "-"
		if c.Alarm {
			alarm = "ALARM"
		}
		lat := ""
		if c.LatencyValid {
			lat = fmt.Sprintf("%+d", c.LatencyCycles)
		}
		fmt.Fprintf(&sb, "%-12s %-14s %-8s %-6s %-6.2f %10d %7d %7d %12s\n",
			c.Bench, c.Mode, truth, alarm, c.Confidence,
			c.Rounds, c.Slots, c.Report.Counters.TransientRefills, lat)
	}
	fmt.Fprintf(&sb, "\nbenign corpus: %d cells, %d alarms\n", s.BenignCells, s.BenignAlarms)
	return sb.String()
}
