package detect

import (
	"testing"

	"ghostbusters/internal/attack"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/obs"
)

// nopSink is the baseline observer: it pays for spec-level event
// generation and batch delivery but does no work per event, so the
// delta against the detector sink is exactly the classifier's cost.
type nopSink struct{}

func (nopSink) WriteEvents([]obs.Event) error { return nil }
func (nopSink) Close() error                  { return nil }

// benchAttackRun runs the v1 PoC once per iteration with the sink
// built by mk attached at spec level. Compare the pair below with
// benchstat: the detector must stay within ~5% of the no-op observer
// (the budget for "detection on" vs "tracing on"); detection fully off
// is the nil-tracer case, pinned at 0 allocs/op by the obs tests.
func benchAttackRun(b *testing.B, mk func() obs.Sink) {
	params := attack.Params{Secret: []byte{0x11, 0x23, 0x35, 0x47, 0x59, 0x6B, 0x7D, 0x8F}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := dbt.DefaultConfig()
		tr := obs.New(obs.LevelSpec, mk())
		cfg.Tracer = tr
		if _, err := attack.Run(attack.V1, cfg, params); err != nil {
			b.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackObserved(b *testing.B) {
	benchAttackRun(b, func() obs.Sink { return nopSink{} })
}

func BenchmarkAttackDetected(b *testing.B) {
	benchAttackRun(b, func() obs.Sink { return New(Config{}) })
}

// BenchmarkDetectorStream isolates the classifier itself: one full v1
// attack event stream (recorded once) replayed through a fresh
// detector per iteration, in tracer-sized batches. The per-event cost
// is ns/op divided by the reported events/op metric.
func BenchmarkDetectorStream(b *testing.B) {
	rec := &recordSink{}
	cfg := dbt.DefaultConfig()
	tr := obs.New(obs.LevelSpec, rec)
	cfg.Tracer = tr
	params := attack.Params{Secret: []byte{0x11, 0x23, 0x35, 0x47, 0x59, 0x6B, 0x7D, 0x8F}}
	if _, err := attack.Run(attack.V1, cfg, params); err != nil {
		b.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		b.Fatal(err)
	}
	evs := rec.evs
	if len(evs) == 0 {
		b.Fatal("recorded no events")
	}

	const batch = obs.DefaultBufferEvents
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(Config{})
		for off := 0; off < len(evs); off += batch {
			end := off + batch
			if end > len(evs) {
				end = len(evs)
			}
			if err := d.WriteEvents(evs[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		if !d.Alarmed() {
			b.Fatal("replayed attack stream did not alarm")
		}
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}
