package guestmem

import (
	"testing"
	"testing/quick"

	"ghostbusters/internal/trap"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(0x1000, 0x10000)
	f := func(off uint16, val uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr := 0x1000 + uint64(off)
		if addr+uint64(size) > m.Top() {
			// Accesses straddling the top must fault, not wrap.
			if err := m.Write(addr, size, val); err == nil {
				return false
			}
			return true
		}
		if err := m.Write(addr, size, val); err != nil {
			return false
		}
		got, err := m.Read(addr, size)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return got == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndian(t *testing.T) {
	m := New(0, 64)
	if err := m.Write(0, 8, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	b, _ := m.ReadBytes(0, 8)
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, b[i], want[i])
		}
	}
	v, _ := m.Read(2, 2)
	if v != 0x0506 {
		t.Fatalf("read(2,2) = %#x", v)
	}
}

func TestBounds(t *testing.T) {
	m := New(0x1000, 0x100)
	cases := []struct {
		addr uint64
		size int
	}{
		{0xFFF, 1},      // below base
		{0x1100, 1},     // past top
		{0x10FF, 2},     // straddles top
		{^uint64(0), 8}, // wraparound
	}
	for _, c := range cases {
		if _, err := m.Read(c.addr, c.size); err == nil {
			t.Errorf("Read(%#x, %d) should fault", c.addr, c.size)
		}
		if err := m.Write(c.addr, c.size, 0); err == nil {
			t.Errorf("Write(%#x, %d) should fault", c.addr, c.size)
		}
	}
	if _, err := m.Read(0x1000, 8); err != nil {
		t.Errorf("in-range read faulted: %v", err)
	}
	if _, err := m.Read(0x10F8, 8); err != nil {
		t.Errorf("last-qword read faulted: %v", err)
	}
}

func TestProtection(t *testing.T) {
	m := New(0, 0x1000)
	if err := m.Write(0x100, 8, 0xABCD); err != nil {
		t.Fatal(err)
	}
	m.Protect(0x100, 0x108)

	if _, err := m.Read(0x100, 8); err == nil {
		t.Fatal("protected read should fault")
	}
	// Overlapping partial reads fault too.
	if _, err := m.Read(0xFC, 8); err == nil {
		t.Fatal("read overlapping protected region should fault")
	}
	if _, err := m.Read(0x104, 1); err == nil {
		t.Fatal("read inside protected region should fault")
	}
	// Adjacent reads are fine.
	if _, err := m.Read(0x108, 8); err != nil {
		t.Fatalf("read after region faulted: %v", err)
	}
	if _, err := m.Read(0xF8, 8); err != nil {
		t.Fatalf("read before region faulted: %v", err)
	}
	// Writes are not protected (read-protection only).
	if err := m.Write(0x100, 8, 1); err != nil {
		t.Fatalf("write to protected region faulted: %v", err)
	}
	// Speculative read squashes nothing: value flows.
	v, ok := m.ReadSpeculative(0x100, 8)
	if !ok || v != 1 {
		t.Fatalf("speculative read = %#x ok=%v", v, ok)
	}
	// Clearing protection restores access.
	m.Protect(0, 0)
	if _, err := m.Read(0x100, 8); err != nil {
		t.Fatalf("read after unprotect faulted: %v", err)
	}
}

func TestReadSpeculativeOutOfRange(t *testing.T) {
	m := New(0x1000, 0x100)
	if _, ok := m.ReadSpeculative(0x2000, 8); ok {
		t.Fatal("out-of-range speculative read should squash")
	}
	if _, ok := m.ReadSpeculative(0x1000, 8); !ok {
		t.Fatal("in-range speculative read should succeed")
	}
}

func TestBytesHelpers(t *testing.T) {
	m := New(0, 64)
	if err := m.WriteBytes(8, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadBytes(8, 3)
	if err != nil || b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatalf("ReadBytes = %v, %v", b, err)
	}
	if err := m.WriteBytes(62, []byte{1, 2, 3}); err == nil {
		t.Fatal("WriteBytes past end should fault")
	}
	if _, err := m.ReadBytes(62, 3); err == nil {
		t.Fatal("ReadBytes past end should fault")
	}
}

func TestReadWord32(t *testing.T) {
	m := New(0x1000, 64)
	_ = m.Write(0x1004, 4, 0xDEADBEEF)
	w, err := m.ReadWord32(0x1004)
	if err != nil || w != 0xDEADBEEF {
		t.Fatalf("ReadWord32 = %#x, %v", w, err)
	}
	if _, err := m.ReadWord32(0x1040); err == nil {
		t.Fatal("fetch past end should fault")
	}
}

func TestStrictAlign(t *testing.T) {
	m := New(0x1000, 0x100)
	// Default: unaligned data accesses are handled in hardware.
	if err := m.Write(0x1001, 8, 0x1122334455667788); err != nil {
		t.Fatalf("unaligned write without StrictAlign faulted: %v", err)
	}
	if v, err := m.Read(0x1001, 8); err != nil || v != 0x1122334455667788 {
		t.Fatalf("unaligned read without StrictAlign = %#x, %v", v, err)
	}

	m.StrictAlign = true
	for _, c := range []struct {
		addr uint64
		size int
	}{{0x1001, 2}, {0x1002, 4}, {0x1004, 8}} {
		_, err := m.Read(c.addr, c.size)
		f := trap.As(err)
		if f == nil || f.Kind != trap.MisalignedAccess || f.Addr != c.addr {
			t.Errorf("Read(%#x, %d) = %v, want misaligned-access at that addr", c.addr, c.size, err)
		}
		if err := m.Write(c.addr, c.size, 0); !trap.IsKind(err, trap.MisalignedAccess) {
			t.Errorf("Write(%#x, %d) = %v, want misaligned-access", c.addr, c.size, err)
		}
		if _, ok := m.ReadSpeculative(c.addr, c.size); ok {
			t.Errorf("speculative Read(%#x, %d) should squash under StrictAlign", c.addr, c.size)
		}
	}
	// Aligned accesses and byte accesses are unaffected.
	if _, err := m.Read(0x1008, 8); err != nil {
		t.Errorf("aligned read faulted: %v", err)
	}
	if _, err := m.Read(0x1003, 1); err != nil {
		t.Errorf("byte read faulted: %v", err)
	}
	// Reset clears the flag (pooled reuse must not leak strictness).
	m.Reset()
	if m.StrictAlign {
		t.Error("Reset must clear StrictAlign")
	}
}

func TestFetchAlwaysAligned(t *testing.T) {
	m := New(0x1000, 64) // StrictAlign off: fetch is still strict
	err := func() error { _, err := m.ReadWord32(0x1002); return err }()
	f := trap.As(err)
	if f == nil || f.Kind != trap.MisalignedAccess || f.Addr != 0x1002 {
		t.Fatalf("misaligned fetch = %v, want misaligned-access at 0x1002", err)
	}
	if !trap.IsKind(func() error { _, err := m.ReadWord32(0x2000); return err }(), trap.OutOfRangeAccess) {
		t.Fatal("out-of-range fetch should be out-of-range-access")
	}
}

func TestGeometryAccessors(t *testing.T) {
	m := New(0x2000, 0x800)
	if m.Base() != 0x2000 || m.Size() != 0x800 || m.Top() != 0x2800 {
		t.Fatalf("geometry: base=%#x size=%#x top=%#x", m.Base(), m.Size(), m.Top())
	}
}
