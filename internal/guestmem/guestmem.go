// Package guestmem implements the flat guest physical memory of the
// simulated DBT-based processor, including an optional protected region
// used to model "a memory location which should not be readable" in the
// Spectre proof-of-concept (architectural reads fault; dismissable
// speculative loads squash the fault but still touch the cache).
package guestmem

import (
	"encoding/binary"
	"fmt"
)

// Memory is a flat little-endian guest memory starting at Base.
type Memory struct {
	base uint64
	data []byte

	protStart, protEnd uint64 // [start, end) read-protected when protEnd > protStart
}

// ErrFault describes an invalid guest memory access.
type ErrFault struct {
	Addr uint64
	Size int
	Why  string
}

func (e *ErrFault) Error() string {
	return fmt.Sprintf("guestmem: %s at %#x size %d", e.Why, e.Addr, e.Size)
}

// New allocates size bytes of guest memory based at base.
func New(base, size uint64) *Memory {
	return &Memory{base: base, data: make([]byte, size)}
}

// Base returns the lowest valid guest address.
func (m *Memory) Base() uint64 { return m.base }

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Top returns one past the highest valid guest address.
func (m *Memory) Top() uint64 { return m.base + uint64(len(m.data)) }

// Protect marks [start, end) as read-protected. Architectural loads from
// the region fault. Pass start == end to clear protection.
func (m *Memory) Protect(start, end uint64) {
	m.protStart, m.protEnd = start, end
}

// Protected reports whether any byte of [addr, addr+size) is protected.
func (m *Memory) Protected(addr uint64, size int) bool {
	return m.protEnd > m.protStart && addr < m.protEnd && addr+uint64(size) > m.protStart
}

func (m *Memory) check(addr uint64, size int) error {
	if addr < m.base || addr+uint64(size) > m.Top() || addr+uint64(size) < addr {
		return &ErrFault{Addr: addr, Size: size, Why: "out-of-range access"}
	}
	return nil
}

// Read returns size bytes at addr as a zero-extended little-endian value.
// It enforces the protected region.
func (m *Memory) Read(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	if m.Protected(addr, size) {
		return 0, &ErrFault{Addr: addr, Size: size, Why: "read of protected region"}
	}
	return m.readRaw(addr, size), nil
}

// ReadSpeculative is the dismissable-load path: faults (range or
// protection) are squashed and report ok=false with a zero value, exactly
// like the VLIW ldd opcode. The caller still models the cache fill for
// in-range addresses.
func (m *Memory) ReadSpeculative(addr uint64, size int) (val uint64, ok bool) {
	if m.check(addr, size) != nil {
		return 0, false
	}
	// Protected data CAN be read speculatively: that is the leak the
	// paper demonstrates. The fault is squashed, the value flows.
	return m.readRaw(addr, size), true
}

func (m *Memory) readRaw(addr uint64, size int) uint64 {
	off := addr - m.base
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.data[off+uint64(i)]) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of val at addr.
func (m *Memory) Write(addr uint64, size int, val uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	off := addr - m.base
	for i := 0; i < size; i++ {
		m.data[off+uint64(i)] = byte(val >> (8 * i))
	}
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr-m.base:])
	return out, nil
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	copy(m.data[addr-m.base:], b)
	return nil
}

// ReadWord32 fetches a 32-bit instruction word (no protection check:
// instruction fetch is not part of the modelled side channel).
func (m *Memory) ReadWord32(addr uint64) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[addr-m.base:]), nil
}
