// Package guestmem implements the flat guest physical memory of the
// simulated DBT-based processor, including an optional protected region
// used to model "a memory location which should not be readable" in the
// Spectre proof-of-concept (architectural reads fault; dismissable
// speculative loads squash the fault but still touch the cache).
package guestmem

import (
	"encoding/binary"
	"sync"

	"ghostbusters/internal/trap"
)

// pageShift is the dirty-tracking granularity: 4 KiB pages. Coarse enough
// that marking a page is one store on the write path, fine enough that a
// Reset of a typical guest (text + data at the bottom, a little stack at
// the top) touches kilobytes instead of the whole image.
const pageShift = 12

// Memory is a flat little-endian guest memory starting at Base.
type Memory struct {
	base uint64
	data []byte

	// dirty marks pages that may hold nonzero bytes. Reset zeroes only
	// those, which is what makes pooled reuse of a multi-megabyte guest
	// image cheap: allocating (and the runtime zeroing) a fresh 16 MiB
	// buffer per run used to dominate the whole simulator's host profile.
	dirty []bool

	protStart, protEnd uint64 // [start, end) read-protected when protEnd > protStart

	// StrictAlign makes scalar data accesses trap on misalignment. The
	// default (false) matches the paper's platforms, which handle
	// unaligned data accesses in hardware — the Spectre v4 PoC relies on
	// one. Instruction fetch is always strictly aligned (IALIGN=32).
	StrictAlign bool
}

// fault builds a typed guest trap for an invalid access. Guest memory
// knows only the kind and the address; the interpreter and the VLIW core
// enrich the same fault with the guest PC, and the machine dispatch loop
// with the cycle count and translated-block identity.
func fault(kind trap.Kind, addr uint64, size int, why string) *trap.Fault {
	f := trap.Newf(kind, "%s (size %d)", why, size)
	f.Addr = addr
	return f
}

// New allocates size bytes of guest memory based at base.
func New(base, size uint64) *Memory {
	return &Memory{
		base:  base,
		data:  make([]byte, size),
		dirty: make([]bool, (size+(1<<pageShift)-1)>>pageShift),
	}
}

// pools recycles Memory instances per (base, size) geometry, so the
// simulator can run thousands of short guests without allocating — and
// the runtime zeroing — a fresh multi-megabyte image each time.
var pools sync.Map // [2]uint64{base, size} -> *sync.Pool

func poolFor(base, size uint64) *sync.Pool {
	p, _ := pools.LoadOrStore([2]uint64{base, size}, &sync.Pool{})
	return p.(*sync.Pool)
}

// NewPooled returns a zeroed Memory of the requested geometry, reusing a
// recycled instance when one is available. The result is indistinguishable
// from New's: all bytes zero, no protection.
func NewPooled(base, size uint64) *Memory {
	if v := poolFor(base, size).Get(); v != nil {
		return v.(*Memory)
	}
	return New(base, size)
}

// Recycle resets the memory and returns it to the reuse pool. Ownership
// transfers to the pool: the caller must not touch m afterwards.
func (m *Memory) Recycle() {
	m.Reset()
	poolFor(m.base, uint64(len(m.data))).Put(m)
}

// Reset restores the memory to its freshly-allocated state — all bytes
// zero, protection cleared — zeroing only the pages that were written.
func (m *Memory) Reset() {
	for p, d := range m.dirty {
		if !d {
			continue
		}
		lo := p << pageShift
		hi := lo + 1<<pageShift
		if hi > len(m.data) {
			hi = len(m.data)
		}
		clear(m.data[lo:hi])
		m.dirty[p] = false
	}
	m.protStart, m.protEnd = 0, 0
	m.StrictAlign = false
}

// markDirty records that [addr, addr+size) was written. Bounds are
// already validated by the caller.
func (m *Memory) markDirty(addr uint64, size int) {
	lo := (addr - m.base) >> pageShift
	hi := (addr - m.base + uint64(size) - 1) >> pageShift
	m.dirty[lo] = true
	if hi != lo {
		for p := lo + 1; p <= hi; p++ {
			m.dirty[p] = true
		}
	}
}

// Base returns the lowest valid guest address.
func (m *Memory) Base() uint64 { return m.base }

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Top returns one past the highest valid guest address.
func (m *Memory) Top() uint64 { return m.base + uint64(len(m.data)) }

// Protect marks [start, end) as read-protected. Architectural loads from
// the region fault. Pass start == end to clear protection.
func (m *Memory) Protect(start, end uint64) {
	m.protStart, m.protEnd = start, end
}

// Protected reports whether any byte of [addr, addr+size) is protected.
func (m *Memory) Protected(addr uint64, size int) bool {
	return m.protEnd > m.protStart && addr < m.protEnd && addr+uint64(size) > m.protStart
}

func (m *Memory) check(addr uint64, size int) error {
	if addr < m.base || addr+uint64(size) > m.Top() || addr+uint64(size) < addr {
		return fault(trap.OutOfRangeAccess, addr, size, "access outside guest memory")
	}
	return nil
}

// checkScalar validates a scalar data access of size 1, 2, 4 or 8
// bytes: in range always, and aligned to its own size when StrictAlign
// is set.
func (m *Memory) checkScalar(addr uint64, size int) error {
	if m.StrictAlign && addr&uint64(size-1) != 0 {
		return fault(trap.MisalignedAccess, addr, size, "misaligned scalar access")
	}
	return m.check(addr, size)
}

// Read returns size bytes at addr as a zero-extended little-endian value.
// It enforces natural alignment and the protected region.
func (m *Memory) Read(addr uint64, size int) (uint64, error) {
	if err := m.checkScalar(addr, size); err != nil {
		return 0, err
	}
	if m.Protected(addr, size) {
		return 0, fault(trap.ProtectedAccess, addr, size, "read of protected region")
	}
	return m.readRaw(addr, size), nil
}

// ReadSpeculative is the dismissable-load path: faults (range, alignment
// or protection) are squashed and report ok=false with a zero value,
// exactly like the VLIW ldd opcode. The caller still models the cache
// fill for in-range addresses.
func (m *Memory) ReadSpeculative(addr uint64, size int) (val uint64, ok bool) {
	if m.checkScalar(addr, size) != nil {
		return 0, false
	}
	// Protected data CAN be read speculatively: that is the leak the
	// paper demonstrates. The fault is squashed, the value flows.
	return m.readRaw(addr, size), true
}

func (m *Memory) readRaw(addr uint64, size int) uint64 {
	off := addr - m.base
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.data[off+uint64(i)]) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of val at addr. Like Read, it
// enforces natural alignment.
func (m *Memory) Write(addr uint64, size int, val uint64) error {
	if err := m.checkScalar(addr, size); err != nil {
		return err
	}
	if size > 0 {
		m.markDirty(addr, size)
	}
	off := addr - m.base
	for i := 0; i < size; i++ {
		m.data[off+uint64(i)] = byte(val >> (8 * i))
	}
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr-m.base:])
	return out, nil
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	if len(b) > 0 {
		m.markDirty(addr, len(b))
	}
	copy(m.data[addr-m.base:], b)
	return nil
}

// ReadWord32 fetches a 32-bit instruction word (no protection check:
// instruction fetch is not part of the modelled side channel). A
// misaligned or out-of-range fetch address always faults, regardless of
// StrictAlign — instructions are 4-byte aligned on this machine.
func (m *Memory) ReadWord32(addr uint64) (uint32, error) {
	if addr&3 != 0 {
		return 0, fault(trap.MisalignedAccess, addr, 4, "misaligned instruction fetch")
	}
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[addr-m.base:]), nil
}
