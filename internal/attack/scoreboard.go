package attack

import (
	"fmt"
	"strings"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/obs"
	"ghostbusters/internal/riscv"
)

// Probe-array geometry shared by both guest programs: 256 candidate
// byte values, one 128-byte-spaced slot each (two cache lines apart, so
// adjacent candidates never share a line).
const (
	probeStride = 128
	probeSlots  = 256
)

// Scoreboard is the side channel's ground-truth observer. It watches
// the machine's memory system from the host side — it cannot influence
// timing — and records which probe-array lines the victim actually
// touched speculatively versus which lines anything touched
// architecturally. That separates what *information entered the cache*
// (the leak the mitigation must prevent) from what the attacker's
// timing loop managed to *recover* (which can fail for boring reasons:
// noise, thresholds, eviction). A mitigation is judged on the former.
//
// Speculative touches are attributed by guest PC and counted only when
// they come from the victim gadget itself; the attacker's own probe
// loads (which also hit the probe array, architecturally or even
// speculatively once the probe loop is translated) never score.
type Scoreboard struct {
	secret    []byte
	probeLo   uint64 // arrayVal
	probeHi   uint64
	victimLo  uint64 // the victim gadget's guest-PC range
	victimHi  uint64
	tracer    *obs.Tracer
	specLine  [probeSlots]bool // victim speculatively filled this slot's line
	archLine  [probeSlots]bool // anything architecturally touched this slot
	leakedNow int              // running leaked-byte count for the counter track

	// SpecTouches counts victim speculative loads of the probe array;
	// ArchTouches counts architectural probe-array loads (mostly the
	// attacker's timing probes).
	SpecTouches uint64
	ArchTouches uint64

	// Per-phase ground-truth timestamps, in simulated cycles (0 =
	// never happened). firstSecretFill is the first *secret-dependent*
	// speculative fill — the true trigger instant a detector's alarm
	// latency is measured against; firstProbeHit is the first
	// architectural probe load that lands on a line the victim had
	// already filled speculatively (the attacker's first measurable
	// signal). The architectural hook carries no cycle, so the
	// scoreboard reads the machine's live cycle counter.
	secretSet       [probeSlots]bool
	machine         *dbt.Machine
	firstSecretFill uint64
	firstProbeHit   uint64
}

// newScoreboard resolves the guest symbols the observer needs. Both
// attack programs lay the gadget out the same way: `arrayVal` is the
// probe array and `victim` is the last text routine, so the gadget
// spans [victim, end-of-text).
func newScoreboard(prog *riscv.Program, secret []byte, tr *obs.Tracer) (*Scoreboard, error) {
	probe, ok := prog.Symbol("arrayVal")
	if !ok {
		return nil, fmt.Errorf("attack: guest defines no arrayVal symbol")
	}
	victim, ok := prog.Symbol("victim")
	if !ok {
		return nil, fmt.Errorf("attack: guest defines no victim symbol")
	}
	s := &Scoreboard{
		secret:   secret,
		probeLo:  probe,
		probeHi:  probe + probeStride*probeSlots,
		victimLo: victim,
		victimHi: prog.TextBase + uint64(4*len(prog.Text)),
		tracer:   tr,
	}
	for _, b := range secret {
		s.secretSet[b] = true
	}
	return s, nil
}

// attach installs the observer on the machine's bus, chaining any hook
// already present so it keeps observing.
func (s *Scoreboard) attach(m *dbt.Machine) {
	s.machine = m
	b := m.Bus()
	prevLoad := b.OnLoad
	b.OnLoad = func(addr uint64) {
		if prevLoad != nil {
			prevLoad(addr)
		}
		if addr < s.probeLo || addr >= s.probeHi {
			return
		}
		s.ArchTouches++
		slot := (addr - s.probeLo) / probeStride
		s.archLine[slot] = true
		if s.firstProbeHit == 0 && s.specLine[slot] {
			s.firstProbeHit = s.machine.Cycles()
		}
	}
	prevSpec := b.OnSpecLoad
	b.OnSpecLoad = func(pc, addr, cycle uint64) {
		if prevSpec != nil {
			prevSpec(pc, addr, cycle)
		}
		if pc < s.victimLo || pc >= s.victimHi {
			return
		}
		if addr < s.probeLo || addr >= s.probeHi {
			return
		}
		s.SpecTouches++
		slot := (addr - s.probeLo) / probeStride
		if s.firstSecretFill == 0 && slot < probeSlots && s.secretSet[slot] {
			s.firstSecretFill = cycle
		}
		if s.specLine[slot] {
			return
		}
		s.specLine[slot] = true
		if n := s.countLeaked(); n != s.leakedNow {
			s.leakedNow = n
			if s.tracer.SpecOn() {
				s.tracer.Emit(obs.Event{Kind: obs.EvCounter, Cycle: cycle,
					Arg1: uint64(n), Str: obs.CtrLeakedBytes})
			}
		}
	}
}

// countLeaked counts secret bytes whose probe line the victim has
// speculatively filled so far.
func (s *Scoreboard) countLeaked() int {
	n := 0
	for _, b := range s.secret {
		if s.specLine[b] {
			n++
		}
	}
	return n
}

// ByteVerdict is the scoreboard's judgment on one secret byte.
type ByteVerdict struct {
	Index int
	Value byte
	// Leaked is the ground truth: the victim speculatively filled the
	// cache line indexed by this byte's value, so the information left
	// the architectural domain regardless of whether the attacker's
	// timing loop noticed.
	Leaked bool
	// Correct reports whether the attacker's recovered byte matched.
	Correct bool
}

// Leakage is the scoreboard's summary for one attack run.
type Leakage struct {
	SecretBytes int
	// LeakedBytes and BitsLeaked are ground truth (speculative fills);
	// BytesCorrect is the attacker's recovery accuracy. BitsLeaked is
	// simply 8 bits per leaked byte: once the line is in the cache the
	// whole byte value is encoded in *which* line it is.
	LeakedBytes  int
	BitsLeaked   int
	BytesCorrect int
	// Distinct probe-array lines touched speculatively by the victim /
	// architecturally by anyone, plus the raw touch counts.
	SpecLines   int
	ArchLines   int
	SpecTouches uint64
	ArchTouches uint64
	// Per-phase ground-truth timestamps in simulated cycles, 0 when
	// the phase never happened. FirstSecretFillCycle is the first
	// secret-dependent speculative fill (the true trigger instant —
	// detector alarm latency is measured from here);
	// FirstProbeHitCycle is the first architectural probe load that
	// hit a speculatively-filled line (the attacker's first signal).
	FirstSecretFillCycle uint64
	FirstProbeHitCycle   uint64
	Verdicts             []ByteVerdict
}

// finish scores the run: ground truth from the observed speculative
// fills, accuracy from the attacker's recovered bytes.
func (s *Scoreboard) finish(recovered []byte) *Leakage {
	l := &Leakage{
		SecretBytes:          len(s.secret),
		SpecTouches:          s.SpecTouches,
		ArchTouches:          s.ArchTouches,
		FirstSecretFillCycle: s.firstSecretFill,
		FirstProbeHitCycle:   s.firstProbeHit,
	}
	for _, t := range s.specLine {
		if t {
			l.SpecLines++
		}
	}
	for _, t := range s.archLine {
		if t {
			l.ArchLines++
		}
	}
	for i, b := range s.secret {
		v := ByteVerdict{Index: i, Value: b, Leaked: s.specLine[b]}
		if i < len(recovered) && recovered[i] == b {
			v.Correct = true
		}
		if v.Leaked {
			l.LeakedBytes++
		}
		if v.Correct {
			l.BytesCorrect++
		}
		l.Verdicts = append(l.Verdicts, v)
	}
	l.BitsLeaked = 8 * l.LeakedBytes
	return l
}

// Accuracy is the per-trial recovery accuracy in [0, 1]: the fraction
// of secret bytes the attacker's timing loop got right.
func (l *Leakage) Accuracy() float64 {
	if l.SecretBytes == 0 {
		return 0
	}
	return float64(l.BytesCorrect) / float64(l.SecretBytes)
}

// AddMetrics merges the scoreboard into a unified metrics snapshot
// under the stable attack.* names (same contract as dbt.Stats.Snapshot:
// never rename, only add).
func (l *Leakage) AddMetrics(s obs.Snapshot) {
	s["attack.secret_bytes"] = uint64(l.SecretBytes)
	s["attack.leaked_bytes"] = uint64(l.LeakedBytes)
	s["attack.bits_leaked"] = uint64(l.BitsLeaked)
	s["attack.bytes_correct"] = uint64(l.BytesCorrect)
	s["attack.spec_lines"] = uint64(l.SpecLines)
	s["attack.arch_lines"] = uint64(l.ArchLines)
	s["attack.spec_touches"] = l.SpecTouches
	s["attack.arch_touches"] = l.ArchTouches
	s["attack.first_secret_fill_cycle"] = l.FirstSecretFillCycle
	s["attack.first_probe_hit_cycle"] = l.FirstProbeHitCycle
}

func (l *Leakage) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ground truth: %d/%d bytes leaked into the cache (%d bits); attacker recovered %d (accuracy %.0f%%)\n",
		l.LeakedBytes, l.SecretBytes, l.BitsLeaked, l.BytesCorrect, 100*l.Accuracy())
	fmt.Fprintf(&sb, "probe lines: %d speculative (victim), %d architectural; touches: %d spec, %d arch\n",
		l.SpecLines, l.ArchLines, l.SpecTouches, l.ArchTouches)
	if l.FirstSecretFillCycle != 0 {
		fmt.Fprintf(&sb, "timeline: first secret-dependent spec fill @cycle %d", l.FirstSecretFillCycle)
		if l.FirstProbeHitCycle != 0 {
			fmt.Fprintf(&sb, ", first probe hit @cycle %d", l.FirstProbeHitCycle)
		}
		sb.WriteString("\n")
	}
	for _, v := range l.Verdicts {
		leak := "contained"
		if v.Leaked {
			leak = "LEAKED"
		}
		rec := "missed"
		if v.Correct {
			rec = "recovered"
		}
		fmt.Fprintf(&sb, "  byte %d (0x%02x): %s, %s\n", v.Index, v.Value, leak, rec)
	}
	return sb.String()
}
