// Package attack implements the paper's two Spectre proof-of-concept
// attacks on the DBT-based processor (Section III), end to end in guest
// code:
//
//   - SpectreV1 exploits trace-based scheduling: after training the DBT
//     profiler to merge the bounds-checked access into a superblock, the
//     dependent loads of Fig. 1 are hoisted above the bounds-check
//     branch and execute with an out-of-bounds index even though the
//     branch exits, pushing a secret-dependent line into the data cache.
//
//   - SpectreV4 exploits memory dependency speculation: the load of
//     Fig. 2 is hoisted above a slow store to an unprovably-aliasing
//     address (the Memory Conflict Buffer later detects the conflict and
//     repairs the architectural state), so it briefly observes a planted
//     malicious index, and its dependent accesses leak the secret
//     through the cache before the rollback.
//
// Both attacks recover the secret with a flush + time side channel:
// flush the probe array, trigger the victim, then time a single probe
// load per candidate value with rdcycle (one victim call per candidate,
// so probes never evict each other). The recovered bytes are written to
// guest memory and read back by the harness.
package attack

import (
	"fmt"
	"math/rand"
	"strings"

	"ghostbusters/internal/core"
	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/riscv"
)

// Variant selects the Spectre proof of concept.
type Variant int

const (
	// V1 is the bounds-check-bypass variant (paper Section III-A,
	// corresponding to Spectre v1).
	V1 Variant = iota
	// V4 is the memory-dependency-speculation variant (paper Section
	// III-B, corresponding to Spectre v4 / speculative store bypass).
	V4
)

func (v Variant) String() string {
	if v == V1 {
		return "spectre-v1"
	}
	return "spectre-v4"
}

// FlushMode selects how the attacker evicts the probe array.
type FlushMode int

const (
	// FlushAll uses the whole-cache flush instruction.
	FlushAll FlushMode = iota
	// FlushLineByLine flushes each probe line individually, like the
	// paper's RISC-V attack ("has to perform an explicit line by line
	// flush, which slows down the attack").
	FlushLineByLine
)

// Params configures an attack run.
type Params struct {
	Secret        []byte    // bytes to steal; nil picks a random 8-byte secret
	TrainRounds   int       // victim executions used to train the DBT engine (default 64)
	Flush         FlushMode // how the attacker evicts the probe array
	Seed          int64     // secret generator seed when Secret == nil
	ProtectSecret bool      // read-protect the secret region (architectural reads fault)
}

// Result reports an attack run.
type Result struct {
	Variant   Variant
	Secret    []byte
	Recovered []byte
	// BytesCorrect counts recovered bytes matching the secret.
	BytesCorrect int
	Cycles       uint64
	Stats        dbt.Stats
	// Leakage is the ground-truth side-channel scoreboard: which
	// secret-dependent lines the victim actually pushed into the cache,
	// independent of whether the attacker's timing loop recovered them.
	Leakage *Leakage
	// Audit is the machine-wide provenance audit, non-nil only when the
	// run's dbt.Config had Audit set.
	Audit *dbt.Audit
}

// Success reports full secret recovery.
func (r *Result) Success() bool { return r.BytesCorrect == len(r.Secret) }

func (r *Result) String() string {
	return fmt.Sprintf("%s: %d/%d bytes recovered (spec loads %d, recoveries %d, patterns %d)",
		r.Variant, r.BytesCorrect, len(r.Secret), r.Stats.SpecLoads, r.Stats.Recoveries, r.Stats.PatternsFound)
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.TrainRounds == 0 {
		out.TrainRounds = 64
	}
	if len(out.Secret) == 0 {
		r := rand.New(rand.NewSource(out.Seed + 1))
		out.Secret = make([]byte, 8)
		for i := range out.Secret {
			// Avoid 0x00 (never probed: the benign index) and 0x01 (the
			// argmin default when nothing hits).
			out.Secret[i] = byte(0x10 + r.Intn(0xE0))
		}
	}
	return out
}

// Source renders the attack's guest program as assembly text for the
// given machine configuration (the embedded probe threshold depends on
// the cache timing). It is what Run assembles internally, exported so
// callers can ship the identical attack to a remote simulator (e.g. a
// gbserve run job) or inspect the gadget.
func Source(v Variant, cfg dbt.Config, params Params) (string, error) {
	p := params.withDefaults()
	// A probe latency below this threshold is a cache hit, in both
	// interpreted and translated execution.
	thresh := cfg.Cache.HitLatency + cfg.Cache.MissPenalty/2 + cfg.Interp.BaseCPI
	switch v {
	case V1:
		return buildV1Source(&p, thresh), nil
	case V4:
		return buildV4Source(&p, thresh), nil
	default:
		return "", fmt.Errorf("attack: unknown variant %d", v)
	}
}

// Run executes the attack under the given machine configuration and
// reports how much of the secret leaked. The machine configuration
// controls the mitigation mode; the guest binary is identical across
// modes, exactly like the paper's experiment.
func Run(v Variant, cfg dbt.Config, params Params) (*Result, error) {
	p := params.withDefaults()
	src, err := Source(v, cfg, p)
	if err != nil {
		return nil, err
	}
	prog, err := riscv.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("attack: assembling %s: %w", v, err)
	}
	m, err := dbt.New(cfg)
	if err != nil {
		return nil, err
	}
	// The recovered bytes are copied out below, so the guest memory can
	// be recycled as soon as the run is over.
	defer m.Release()
	if err := m.Load(prog); err != nil {
		return nil, err
	}
	sb, err := newScoreboard(prog, p.Secret, cfg.Tracer)
	if err != nil {
		return nil, err
	}
	sb.attach(m)
	if p.ProtectSecret {
		sec, ok := prog.Symbol("secret")
		if !ok {
			return nil, fmt.Errorf("attack: %s guest defines no secret symbol", v)
		}
		m.Mem().Protect(sec, sec+uint64(len(p.Secret)))
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("attack: %s run: %w", v, err)
	}
	if res.Exit.Code != 0 {
		return nil, fmt.Errorf("attack: %s guest exited with %d", v, res.Exit.Code)
	}
	recAddr, ok := prog.Symbol("recovered")
	if !ok {
		return nil, fmt.Errorf("attack: %s guest defines no recovered symbol", v)
	}
	rec, err := m.Mem().ReadBytes(recAddr, len(p.Secret))
	if err != nil {
		return nil, err
	}
	out := &Result{
		Variant:   v,
		Secret:    p.Secret,
		Recovered: rec,
		Cycles:    res.Cycles,
		Stats:     res.Stats,
		Leakage:   sb.finish(rec),
		Audit:     m.Audit(),
	}
	out.BytesCorrect = out.Leakage.BytesCorrect
	return out, nil
}

// secretBytesDirective renders the secret as a .byte directive.
func secretBytesDirective(secret []byte) string {
	parts := make([]string, len(secret))
	for i, b := range secret {
		parts[i] = fmt.Sprintf("0x%02x", b)
	}
	return "\t.byte " + strings.Join(parts, ", ")
}

// flushSequence emits the attacker's eviction code. With line-by-line
// flushing, the probe array and the victim's working set are evicted one
// cflush at a time, as in the paper's RISC-V attack ("has to perform an
// explicit line by line flush"). extra lists additional data symbols of
// the victim to evict.
func flushSequence(mode FlushMode, extra ...string) string {
	if mode == FlushAll {
		return "\tcflushall\n"
	}
	s := `	# line-by-line flush of the probe array and victim data
	la t0, arrayVal
	li t1, 512            # 32768 bytes / 64-byte lines
flush_loop:
	cflush t0
	addi t0, t0, 64
	addi t1, t1, -1
	bgtz t1, flush_loop
	la t0, buffer
	cflush t0
`
	for _, sym := range extra {
		s += "\tla t0, " + sym + "\n\tcflush t0\n"
	}
	return s
}

// probeSequence times one probe load of arrayVal[v*128]: a latency below
// THRESH is a cache hit, i.e. the victim speculatively touched this
// candidate's line. Registers: s2 = candidate v, s3 = recovered value.
// Falls through to label probe_next. The threshold works in both
// interpreted and translated execution, so the probe loop is immune to
// the DBT engine re-translating it mid-scan.
const probeSequence = `	la t0, arrayVal
	slli t1, s2, 7
	add t0, t0, t1
	rdcycle t2
	lbu t3, 0(t0)
	rdcycle t4
	sub t5, t4, t2
	li t6, THRESH
	bge t5, t6, probe_next
	mv s3, s2             # hit: the victim cached this candidate
probe_next:
`

// buildV1Source emits the complete Spectre v1 guest program (Fig. 1 plus
// the training, flush, trigger and probe phases).
func buildV1Source(p *Params, thresh uint64) string {
	n := len(p.Secret)
	return fmt.Sprintf(`
	.equ SECLEN, %d
	.equ TRAIN, %d
	.equ THRESH, %d
	.data
size:	.dword 16
buffer:	.space 16
secret:
%s
	.align 6
arrayVal:
	.space 32768
recovered:
	.space SECLEN
	.text
main:
	# Phase 1: train the branch profile and let the DBT engine build
	# the victim superblock with the loads hoisted above the check.
	li s0, 0
train:
	andi a0, s0, 15
	call victim
	addi s0, s0, 1
	li t0, TRAIN
	blt s0, t0, train

	li s1, 0              # secret byte index
attack_byte:
	li s2, 1              # candidate value (0 is the benign index)
	li s3, 1              # recovered value (1 = nothing hit)
probe_v:
	# Phase 2: flush, then trigger with the out-of-bounds index.
%s	la t0, secret
	la t1, buffer
	sub a0, t0, t1
	add a0, a0, s1
	call victim
	# Phase 3: time one probe load for this candidate.
%s	addi s2, s2, 1
	li t6, 256
	blt s2, t6, probe_v
	la t0, recovered
	add t0, t0, s1
	sb s3, 0(t0)
	addi s1, s1, 1
	li t0, SECLEN
	blt s1, t0, attack_byte
	li a0, 0
	ecall

	# The Fig. 1 gadget: bounds check, secret-dependent double load.
victim:
	la t0, size
	ld t0, 0(t0)
	bgeu a0, t0, vdone
	la t1, buffer
	add t1, t1, a0
	lbu t2, 0(t1)         # reads the secret when a0 is out of bounds
	slli t2, t2, 7        # * 128
	la t3, arrayVal
	add t3, t3, t2
	lbu t4, 0(t3)         # pushes a secret-dependent line into the cache
vdone:
	ret
`, n, p.TrainRounds, thresh, secretBytesDirective(p.Secret), flushSequence(p.Flush, "size"), probeSequence)
}

// buildV4Source emits the complete Spectre v4 guest program (Fig. 2: a
// slow store whose address the DBT engine cannot disambiguate, bypassed
// by a speculative load of a planted malicious index).
func buildV4Source(p *Params, thresh uint64) string {
	n := len(p.Secret)
	return fmt.Sprintf(`
	.equ SECLEN, %d
	.equ TRAIN, %d
	.equ THRESH, %d
	.data
addrBuf:
	.space 64
buffer:	.space 16
secret:
%s
	.align 6
arrayVal:
	.space 32768
recovered:
	.space SECLEN
one:	.dword 1
	.text
main:
	# Phase 1: train with a benign planted index so the DBT engine
	# translates the victim with memory speculation.
	li s0, 0
train:
	li a0, 0
	call plant
	call victim
	addi s0, s0, 1
	li t0, TRAIN
	blt s0, t0, train

	li s1, 0
attack_byte:
	li s2, 1
	li s3, 1
probe_v:
%s	la t0, secret
	la t1, buffer
	sub a0, t0, t1
	add a0, a0, s1
	call plant            # addrBuf[0] = malicious index
	call victim
%s	addi s2, s2, 1
	li t6, 256
	blt s2, t6, probe_v
	la t0, recovered
	add t0, t0, s1
	sb s3, 0(t0)
	addi s1, s1, 1
	li t0, SECLEN
	blt s1, t0, attack_byte
	li a0, 0
	ecall

plant:
	la t0, addrBuf
	sd a0, 0(t0)
	ret

	# The Fig. 2 gadget: a store whose value comes off a long
	# computation, followed by a dependent double load. The DBT engine
	# cannot prove the store and the load disjoint (different address
	# registers), so it hoists the load above the store; the MCB later
	# detects the conflict and repairs the architectural state, but the
	# cache already holds the secret-dependent line.
victim:
	la t5, one
	ld t6, 0(t5)
	mul t2, t6, t6        # long computation producing the safe index 0
	mul t2, t2, t6
	mul t2, t2, t6
	mul t2, t2, t6
	mul t2, t2, t6
	mul t2, t2, t6
	sub t2, t2, t6        # 1 - 1 = 0
	la t1, addrBuf
	sd t2, 0(t1)          # addrBuf[j] = safe index (slow)
	la t0, addrBuf
	ld a1, 0(t0)          # speculatively reads the planted index
	la t3, buffer
	add t3, t3, a1
	lbu a2, 0(t3)         # reads the secret
	slli a2, a2, 7
	la t4, arrayVal
	add t4, t4, a2
	lbu a3, 0(t4)         # leaks it through the cache
	ret
`, n, p.TrainRounds, thresh, secretBytesDirective(p.Secret), flushSequence(p.Flush, "addrBuf", "one"), probeSequence)
}

// Matrix runs both variants under every mitigation mode and returns the
// paper's Section V-A proof-of-concept matrix.
type MatrixEntry struct {
	Variant Variant
	Mode    core.Mode
	Result  *Result
}

// RunMatrix evaluates both attacks under every registered mitigation
// mode with the base machine configuration. The mode list derives from
// the mitigation-pass registry, so a newly registered pipeline appears
// in the matrix automatically.
func RunMatrix(base dbt.Config, params Params) ([]MatrixEntry, error) {
	var out []MatrixEntry
	for _, v := range []Variant{V1, V4} {
		for _, mode := range pipeline.Modes() {
			cfg := base
			cfg.Mitigation = mode
			res, err := Run(v, cfg, params)
			if err != nil {
				return nil, fmt.Errorf("attack matrix %s/%s: %w", v, mode, err)
			}
			out = append(out, MatrixEntry{Variant: v, Mode: mode, Result: res})
		}
	}
	return out, nil
}
