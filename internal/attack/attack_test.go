package attack

import (
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/core/pipeline"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/vliw"
)

func cfgWithMode(mode core.Mode) dbt.Config {
	cfg := dbt.DefaultConfig()
	cfg.Mitigation = mode
	return cfg
}

func TestSpectreV1LeaksUnderUnsafe(t *testing.T) {
	res, err := Run(V1, cfgWithMode(core.ModeUnsafe), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("v1 should fully recover the secret under unsafe: %s\nsecret    %x\nrecovered %x",
			res, res.Secret, res.Recovered)
	}
	if res.Stats.SpecLoads == 0 {
		t.Error("no speculative loads issued")
	}
}

func TestSpectreV4LeaksUnderUnsafe(t *testing.T) {
	res, err := Run(V4, cfgWithMode(core.ModeUnsafe), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("v4 should fully recover the secret under unsafe: %s\nsecret    %x\nrecovered %x",
			res, res.Secret, res.Recovered)
	}
	if res.Stats.Recoveries == 0 {
		t.Error("v4 never triggered an MCB recovery (the rollback the paper describes)")
	}
}

func TestMitigationsStopV1(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation} {
		res, err := Run(V1, cfgWithMode(mode), Params{})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.BytesCorrect != 0 {
			t.Errorf("%s: v1 recovered %d/%d bytes; mitigation failed", mode, res.BytesCorrect, len(res.Secret))
		}
	}
}

func TestMitigationsStopV4(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation} {
		res, err := Run(V4, cfgWithMode(mode), Params{})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.BytesCorrect != 0 {
			t.Errorf("%s: v4 recovered %d/%d bytes; mitigation failed", mode, res.BytesCorrect, len(res.Secret))
		}
	}
}

// The ported mitigation zoo must close the side channel at the ground
// truth: the scoreboard counts the secret-dependent cache lines the
// victim speculatively filled, independent of whether the attacker's
// timing loop decoded them.
func TestPortedMitigationsLeakZeroBits(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeLoadFence, core.ModeSFIClamp, core.ModeFenceMin} {
		for _, v := range []Variant{V1, V4} {
			res, err := Run(v, cfgWithMode(mode), Params{})
			if err != nil {
				t.Fatalf("%s/%s: %v", v, mode, err)
			}
			if res.Leakage == nil {
				t.Fatalf("%s/%s: no scoreboard", v, mode)
			}
			if res.Leakage.BitsLeaked != 0 || res.Leakage.LeakedBytes != 0 {
				t.Errorf("%s/%s: ground truth says %d bits (%d bytes) leaked",
					v, mode, res.Leakage.BitsLeaked, res.Leakage.LeakedBytes)
			}
			if res.BytesCorrect != 0 {
				t.Errorf("%s/%s: attacker recovered %d bytes", v, mode, res.BytesCorrect)
			}
		}
	}
}

// sfi-clamp is the one mitigation that neutralises the leak while
// keeping the risky loads speculative — the distinguishing property of
// masking over fencing.
func TestSFIClampKeepsSpeculating(t *testing.T) {
	res, err := Run(V1, cfgWithMode(core.ModeSFIClamp), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpecLoads == 0 {
		t.Error("sfi-clamp issued no speculative loads; masking should preserve speculation")
	}
	if res.Leakage.BitsLeaked != 0 {
		t.Errorf("sfi-clamp leaked %d bits", res.Leakage.BitsLeaked)
	}
}

func TestGhostBustersDetectsPattern(t *testing.T) {
	for _, v := range []Variant{V1, V4} {
		res, err := Run(v, cfgWithMode(core.ModeGhostBusters), Params{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PatternsFound == 0 {
			t.Errorf("%s: poison analysis found no Spectre pattern in the victim", v)
		}
		if res.Stats.RiskyLoads == 0 || res.Stats.GuardEdges == 0 {
			t.Errorf("%s: no risky loads pinned (risky=%d edges=%d)", v, res.Stats.RiskyLoads, res.Stats.GuardEdges)
		}
	}
}

func TestGhostBustersKeepsSpeculating(t *testing.T) {
	// The fine-grained countermeasure pins only the risky access: the
	// rest of the program should still issue speculative loads.
	res, err := Run(V1, cfgWithMode(core.ModeGhostBusters), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpecLoads == 0 {
		t.Error("ghostbusters disabled all speculation; it should be fine-grained")
	}
}

func TestLineByLineFlushAlsoWorks(t *testing.T) {
	res, err := Run(V1, cfgWithMode(core.ModeUnsafe), Params{Flush: FlushLineByLine, Secret: []byte{0x42, 0xA7}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("v1 with line-by-line flush failed: recovered %x", res.Recovered)
	}
}

func TestProtectedSecretStillLeaks(t *testing.T) {
	// The paper: "we can read the value of a memory location which
	// should not be readable". With the secret region read-protected,
	// architectural loads fault, but the dismissable speculative load
	// still exfiltrates it.
	res, err := Run(V1, cfgWithMode(core.ModeUnsafe), Params{ProtectSecret: true, Secret: []byte{0x5C, 0x99, 0x23}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("v1 against protected secret failed: recovered %x", res.Recovered)
	}
}

func TestDistinctSecrets(t *testing.T) {
	// Different secrets recover differently (no accidental constants).
	a, err := Run(V1, cfgWithMode(core.ModeUnsafe), Params{Secret: []byte{0x11, 0x22, 0x33}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(V1, cfgWithMode(core.ModeUnsafe), Params{Secret: []byte{0xAA, 0xBB, 0xCC}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Success() || !b.Success() {
		t.Fatalf("recoveries failed: %x / %x", a.Recovered, b.Recovered)
	}
	if string(a.Recovered) == string(b.Recovered) {
		t.Error("different secrets recovered identically")
	}
}

func TestRunMatrix(t *testing.T) {
	entries, err := RunMatrix(dbt.DefaultConfig(), Params{Secret: []byte{0x7E, 0x3B}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(pipeline.Modes()); len(entries) != want {
		t.Fatalf("matrix has %d entries, want %d (2 variants x all registered modes)", len(entries), want)
	}
	for _, e := range entries {
		vulnerable := e.Mode == core.ModeUnsafe
		if vulnerable && !e.Result.Success() {
			t.Errorf("%s/%s: expected full leak, got %d/%d", e.Variant, e.Mode, e.Result.BytesCorrect, len(e.Result.Secret))
		}
		if !vulnerable && e.Result.BytesCorrect != 0 {
			t.Errorf("%s/%s: leak survived mitigation (%d bytes)", e.Variant, e.Mode, e.Result.BytesCorrect)
		}
	}
}

func TestAttacksAcrossCoreWidths(t *testing.T) {
	secret := []byte{0x9D, 0x31}
	for name, mk := range map[string]func() vliw.Config{
		"narrow": vliw.NarrowConfig,
		"wide":   vliw.WideConfig,
	} {
		for _, v := range []Variant{V1, V4} {
			cfg := dbt.DefaultConfig()
			cfg.Core = mk()
			res, err := Run(v, cfg, Params{Secret: secret})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v, err)
			}
			if !res.Success() {
				t.Errorf("%s: %s failed to leak (recovered %x)", name, v, res.Recovered)
			}
			cfg.Mitigation = core.ModeGhostBusters
			res2, err := Run(v, cfg, Params{Secret: secret})
			if err != nil {
				t.Fatalf("%s/%s mitigated: %v", name, v, err)
			}
			if res2.BytesCorrect != 0 {
				t.Errorf("%s: %s leaked through the mitigation", name, v)
			}
		}
	}
}

func TestAttackAcrossMissPenalties(t *testing.T) {
	for _, penalty := range []uint64{8, 40} {
		cfg := dbt.DefaultConfig()
		cfg.Cache.MissPenalty = penalty
		res, err := Run(V1, cfg, Params{Secret: []byte{0xB5}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success() {
			t.Errorf("miss penalty %d: attack failed", penalty)
		}
	}
}

func TestAdaptiveRetranslationDegradesV4(t *testing.T) {
	// Transmeta-style deoptimisation is an incidental v4 mitigation: the
	// victim block conflicts on every call, gets retranslated without
	// memory speculation, and the window closes after the first few
	// probe rounds — the attack no longer recovers the full secret.
	cfg := dbt.DefaultConfig()
	cfg.AdaptiveRetranslation = true
	res, err := Run(V4, cfg, Params{Secret: []byte{0x5E, 0x2C, 0x81, 0x44}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success() {
		t.Errorf("v4 fully recovered the secret despite adaptive retranslation")
	}
	// v1 is unaffected (no MCB conflicts to trigger deoptimisation).
	res1, err := Run(V1, cfg, Params{Secret: []byte{0x5E, 0x2C}})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Success() {
		t.Errorf("v1 should still leak under adaptive retranslation: %x", res1.Recovered)
	}
}
