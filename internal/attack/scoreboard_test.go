package attack

import (
	"testing"

	"ghostbusters/internal/core"
	"ghostbusters/internal/obs"
)

// The acceptance criterion: under the unsafe baseline the ground-truth
// scoreboard reports the entire secret entering the cache (8 bits per
// byte), for both variants.
func TestScoreboardGroundTruthUnsafe(t *testing.T) {
	secret := []byte{0x42, 0xA7, 0x19}
	for _, v := range []Variant{V1, V4} {
		res, err := Run(v, cfgWithMode(core.ModeUnsafe), Params{Secret: secret})
		if err != nil {
			t.Fatal(err)
		}
		l := res.Leakage
		if l == nil {
			t.Fatalf("%s: no scoreboard", v)
		}
		if l.BitsLeaked != 8*len(secret) {
			t.Errorf("%s: ground truth %d bits leaked, want %d", v, l.BitsLeaked, 8*len(secret))
		}
		if l.LeakedBytes != len(secret) || l.SecretBytes != len(secret) {
			t.Errorf("%s: leaked %d/%d bytes", v, l.LeakedBytes, l.SecretBytes)
		}
		if l.SpecTouches == 0 {
			t.Errorf("%s: victim never touched the probe array speculatively", v)
		}
		if l.ArchTouches == 0 {
			t.Errorf("%s: attacker's probes never touched the probe array architecturally", v)
		}
		for _, bv := range l.Verdicts {
			if !bv.Leaked || !bv.Correct {
				t.Errorf("%s byte %d: leaked=%v correct=%v, want both", v, bv.Index, bv.Leaked, bv.Correct)
			}
		}
		if l.Accuracy() != 1 {
			t.Errorf("%s: accuracy %v, want 1", v, l.Accuracy())
		}
	}
}

// Under the mitigations the ground truth must be zero bits — not just
// "the attacker failed to recover", but "no secret-dependent line was
// ever speculatively filled by the victim".
func TestScoreboardGroundTruthMitigated(t *testing.T) {
	secret := []byte{0x42, 0xA7}
	for _, v := range []Variant{V1, V4} {
		for _, mode := range []core.Mode{core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation} {
			res, err := Run(v, cfgWithMode(mode), Params{Secret: secret})
			if err != nil {
				t.Fatalf("%s/%s: %v", v, mode, err)
			}
			l := res.Leakage
			if l.BitsLeaked != 0 || l.LeakedBytes != 0 {
				t.Errorf("%s/%s: ground truth says %d bits leaked under mitigation", v, mode, l.BitsLeaked)
			}
			if l.Accuracy() != 0 {
				t.Errorf("%s/%s: attacker accuracy %v under mitigation", v, mode, l.Accuracy())
			}
		}
	}
}

// The scoreboard distinguishes information-in-the-cache from
// recovered-by-the-attacker: verdicts carry both judgments.
func TestScoreboardVerdictsIndependent(t *testing.T) {
	res, err := Run(V1, cfgWithMode(core.ModeUnsafe), Params{Secret: []byte{0x33}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Leakage.Verdicts); got != 1 {
		t.Fatalf("verdict count %d", got)
	}
	v := res.Leakage.Verdicts[0]
	if v.Value != 0x33 || v.Index != 0 {
		t.Fatalf("verdict identity wrong: %+v", v)
	}
}

// AddMetrics publishes the stable attack.* names into a snapshot.
func TestScoreboardMetricsNames(t *testing.T) {
	res, err := Run(V1, cfgWithMode(core.ModeUnsafe), Params{Secret: []byte{0x42, 0xA7}})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Stats.Snapshot(res.Cycles)
	res.Leakage.AddMetrics(snap)
	for _, name := range []string{
		"attack.secret_bytes", "attack.leaked_bytes", "attack.bits_leaked",
		"attack.bytes_correct", "attack.spec_lines", "attack.arch_lines",
		"attack.spec_touches", "attack.arch_touches",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if snap["attack.bits_leaked"] != 16 || snap["attack.bytes_correct"] != 2 {
		t.Errorf("metric values wrong: bits=%d correct=%d", snap["attack.bits_leaked"], snap["attack.bytes_correct"])
	}
	// The core counters from the machine must still be there: the
	// scoreboard adds, never replaces.
	if _, ok := snap["sim.cycles"]; !ok {
		t.Error("AddMetrics clobbered the machine snapshot")
	}
}

// With a spec-level tracer attached, the scoreboard emits the
// leaked-bytes counter track as the leak progresses.
func TestScoreboardLeakedBytesCounter(t *testing.T) {
	tr := obs.New(obs.LevelSpec, nil)
	cfg := cfgWithMode(core.ModeUnsafe)
	cfg.Tracer = tr
	res, err := Run(V1, cfg, Params{Secret: []byte{0x42, 0xA7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leakage.BitsLeaked != 16 {
		t.Fatalf("leak did not happen: %d bits", res.Leakage.BitsLeaked)
	}
	var last uint64
	seen := 0
	for _, e := range tr.Events() {
		if e.Kind == obs.EvCounter && e.Str == obs.CtrLeakedBytes {
			seen++
			if e.Arg1 < last {
				t.Errorf("leaked-bytes counter regressed: %d after %d", e.Arg1, last)
			}
			last = e.Arg1
		}
	}
	// The ring keeps only recent events, so we may not see every step,
	// but the final value must be present and correct.
	if seen == 0 {
		t.Fatal("no leaked-bytes counter events recorded")
	}
	if last != 2 {
		t.Errorf("final leaked-bytes counter %d, want 2", last)
	}
}

// Auditing composes with the attack: the run's Result carries the
// machine-wide provenance audit, and it replays.
func TestAttackCarriesAudit(t *testing.T) {
	cfg := cfgWithMode(core.ModeGhostBusters)
	cfg.Audit = true
	res, err := Run(V1, cfg, Params{Secret: []byte{0x42}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil {
		t.Fatal("no audit on the result with Config.Audit set")
	}
	if err := res.Audit.Verify(); err != nil {
		t.Fatalf("attack audit replay failed: %v", err)
	}
	if res.Audit.Totals().Pinned == 0 {
		t.Error("victim gadget produced no pinned accesses under ghostbusters")
	}
	// Auditing off: no audit retained.
	res2, err := Run(V1, cfgWithMode(core.ModeGhostBusters), Params{Secret: []byte{0x42}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Audit != nil {
		t.Error("audit present without Config.Audit")
	}
}
