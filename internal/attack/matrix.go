package attack

import (
	"encoding/json"
	"fmt"

	"ghostbusters/internal/core"
)

// LeakMatrixSchema versions the machine-readable leakage matrix. Fields
// are never renamed, only added (the same compatibility rule the
// metrics snapshots follow), so CI validators stay valid.
const LeakMatrixSchema = "ghostbusters/leakmatrix/v1"

// LeakCell is one (variant × mitigation) cell of the leakage matrix:
// the ground-truth leakage from the side-channel scoreboard plus the
// attack's cost under that mitigation.
type LeakCell struct {
	Variant string `json:"variant"`
	Mode    string `json:"mode"`

	// Ground truth from the scoreboard (speculative secret-dependent
	// cache fills), independent of the attacker's timing recovery.
	SecretBytes int `json:"secret_bytes"`
	LeakedBytes int `json:"leaked_bytes"`
	BitsLeaked  int `json:"bits_leaked"`

	// BytesCorrect is what the attacker's timing loop recovered.
	BytesCorrect int `json:"bytes_correct"`

	// Cycles is the full attack run under this mitigation; Slowdown is
	// relative to the unsafe baseline of the same variant (0 when the
	// matrix has no unsafe cell to normalise against).
	Cycles   uint64  `json:"cycles"`
	Slowdown float64 `json:"slowdown"`
}

// LeakMatrix is the variants × mitigations leakage matrix the ROADMAP
// asks for: every cell reports slowdown and ground-truth bits leaked.
type LeakMatrix struct {
	Schema string     `json:"schema"`
	Cells  []LeakCell `json:"cells"`
}

// BuildLeakMatrix folds RunMatrix entries into the leakage matrix.
func BuildLeakMatrix(entries []MatrixEntry) *LeakMatrix {
	baseline := map[Variant]uint64{}
	for _, e := range entries {
		if e.Mode == core.ModeUnsafe {
			baseline[e.Variant] = e.Result.Cycles
		}
	}
	m := &LeakMatrix{Schema: LeakMatrixSchema}
	for _, e := range entries {
		cell := LeakCell{
			Variant:      e.Variant.String(),
			Mode:         e.Mode.String(),
			SecretBytes:  len(e.Result.Secret),
			BytesCorrect: e.Result.BytesCorrect,
			Cycles:       e.Result.Cycles,
		}
		if l := e.Result.Leakage; l != nil {
			cell.LeakedBytes = l.LeakedBytes
			cell.BitsLeaked = l.BitsLeaked
		}
		if b := baseline[e.Variant]; b > 0 {
			cell.Slowdown = float64(e.Result.Cycles) / float64(b)
		}
		m.Cells = append(m.Cells, cell)
	}
	return m
}

// JSON renders the matrix with stable indentation for CI artifacts.
func (m *LeakMatrix) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("attack: encoding leak matrix: %w", err)
	}
	return append(out, '\n'), nil
}
