// Package oo7scan implements a static, whole-binary Spectre-gadget
// scanner in the style of oo7 (Wang et al., "Oo7: Low-overhead Defense
// against Spectre Attacks via Binary Analysis"), which the paper
// contrasts with its own approach in Section VI: oo7 must taint-analyse
// the entire binary because an out-of-order processor speculates across
// arbitrary control flow, whereas a DBT engine only speculates inside
// one IR block, so the GhostBusters analysis is block-local.
//
// The scanner reconstructs a control-flow graph from the guest text,
// then walks a bounded speculative window past every conditional branch
// (following both directions, through fall-throughs, jumps, and calls),
// tainting the destinations of loads and propagating taint through ALU
// operations. A memory access whose address depends on a tainted value
// inside the window is a Spectre-v1-style gadget. The comparison the
// evaluation makes (see BenchmarkAblation_OO7 and the package tests):
// the whole-binary scan visits orders of magnitude more instructions
// than the sum of the DBT engine's block-local analyses for the same
// detection result.
package oo7scan

import (
	"fmt"
	"sort"

	"ghostbusters/internal/riscv"
)

// Gadget is one detected Spectre pattern.
type Gadget struct {
	BranchPC uint64 // the mistrainable conditional branch
	Load1PC  uint64 // the speculative load producing the tainted value
	Load2PC  uint64 // the access using the tainted value as an address
	Depth    int    // instructions between the branch and Load2
}

func (g Gadget) String() string {
	return fmt.Sprintf("branch %#x -> load %#x -> access %#x (depth %d)", g.BranchPC, g.Load1PC, g.Load2PC, g.Depth)
}

// Report is the scan result.
type Report struct {
	Gadgets []Gadget
	// InstsVisited counts instruction visits during the taint walks —
	// the analysis cost the paper argues a DBT engine avoids.
	InstsVisited int
	// Branches is the number of conditional branches analysed.
	Branches int
}

// Config bounds the scan.
type Config struct {
	// Window is the speculative depth in instructions explored past
	// each branch (oo7 uses the reorder-buffer size; default 64).
	Window int
	// MaxPaths bounds path enumeration per branch (default 64).
	MaxPaths int
}

// DefaultConfig mirrors a 64-entry speculation window.
func DefaultConfig() Config { return Config{Window: 64, MaxPaths: 64} }

// Scan analyses the whole program.
func Scan(p *riscv.Program, cfg Config) (*Report, error) {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.MaxPaths <= 0 {
		cfg.MaxPaths = 64
	}
	insts := make(map[uint64]riscv.Inst, len(p.Text))
	for i, w := range p.Text {
		insts[p.TextBase+uint64(4*i)] = riscv.Decode(w)
	}

	rep := &Report{}
	seen := map[Gadget]bool{}
	for pc, in := range insts {
		if !in.Op.IsBranch() {
			continue
		}
		rep.Branches++
		// Speculation follows the mispredicted direction; the attacker
		// can mistrain either way, so explore both.
		for _, start := range []uint64{pc + 4, pc + uint64(in.Imm)} {
			w := walker{
				insts:  insts,
				cfg:    cfg,
				branch: pc,
				rep:    rep,
				seen:   seen,
			}
			w.walk(start, taintState{}, 0)
		}
	}
	sort.Slice(rep.Gadgets, func(a, b int) bool {
		if rep.Gadgets[a].BranchPC != rep.Gadgets[b].BranchPC {
			return rep.Gadgets[a].BranchPC < rep.Gadgets[b].BranchPC
		}
		return rep.Gadgets[a].Load2PC < rep.Gadgets[b].Load2PC
	})
	return rep, nil
}

// taintState tracks, per architectural register, the PC of the
// speculative load that tainted it (0 = clean).
type taintState struct {
	taint [32]uint64
}

type walker struct {
	insts  map[uint64]riscv.Inst
	cfg    Config
	branch uint64
	rep    *Report
	seen   map[Gadget]bool
	paths  int
}

// walk explores straight-line speculation from pc with the given taint,
// depth instructions deep. Control splits fork the walk (bounded).
func (w *walker) walk(pc uint64, st taintState, depth int) {
	for depth < w.cfg.Window {
		in, ok := w.insts[pc]
		if !ok || in.Op == riscv.OpIllegal {
			return
		}
		w.rep.InstsVisited++
		depth++

		switch {
		case in.Op == riscv.ECALL, in.Op == riscv.EBREAK:
			return // speculation cannot usefully continue past a trap

		case in.Op.IsBranch():
			// A nested branch: speculation may go either way.
			if w.paths < w.cfg.MaxPaths {
				w.paths++
				w.walk(pc+uint64(in.Imm), st, depth)
			}
			pc += 4
			continue

		case in.Op == riscv.JAL:
			if in.Rd != 0 {
				st.taint[in.Rd] = 0 // link register overwritten, clean
			}
			pc += uint64(in.Imm)
			continue

		case in.Op == riscv.JALR:
			// Indirect target unknown statically: oo7 over-approximates;
			// we conservatively stop this path (a return).
			return

		case in.Op.IsLoad():
			if st.taint[in.Rs1] != 0 {
				g := Gadget{BranchPC: w.branch, Load1PC: st.taint[in.Rs1], Load2PC: pc, Depth: depth}
				if !w.seen[g] {
					w.seen[g] = true
					w.rep.Gadgets = append(w.rep.Gadgets, g)
				}
			}
			if in.Rd != 0 {
				// Every load in the window is speculative: taint.
				st.taint[in.Rd] = pc
			}
			pc += 4
			continue

		case in.Op.IsStore():
			if st.taint[in.Rs1] != 0 {
				g := Gadget{BranchPC: w.branch, Load1PC: st.taint[in.Rs1], Load2PC: pc, Depth: depth}
				if !w.seen[g] {
					w.seen[g] = true
					w.rep.Gadgets = append(w.rep.Gadgets, g)
				}
			}
			pc += 4
			continue

		default:
			// ALU and CSR: propagate taint through operands.
			if in.Rd != 0 {
				var t uint64
				fk, _ := in.Op.Info()
				if st.taint[in.Rs1] != 0 {
					t = st.taint[in.Rs1]
				}
				if fk == riscv.FmtR && st.taint[in.Rs2] != 0 {
					t = st.taint[in.Rs2]
				}
				switch in.Op {
				case riscv.LUI, riscv.AUIPC, riscv.CSRRW, riscv.CSRRS, riscv.CSRRC:
					t = 0 // constants and CSR reads are clean
				}
				st.taint[in.Rd] = t
			}
			pc += 4
		}
	}
}
